// Command ocht-bench regenerates the tables and figures of the paper's
// evaluation (Section V). Each experiment prints the same rows/series the
// paper reports, at a configurable laptop-friendly scale.
//
// Usage:
//
//	ocht-bench -exp fig4            # one experiment
//	ocht-bench -exp all -sf 0.05    # everything, larger TPC-H scale
//	ocht-bench -list                # list experiments
//
// With -serve-url it becomes a load generator against a running
// ocht-serve instance instead of running local experiments:
//
//	ocht-bench -serve-url http://localhost:8080 -clients 8 -duration 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ocht/internal/bench"
)

func main() {
	cfg := bench.DefaultConfig()
	exp := flag.String("exp", "all", "experiment to run (see -list)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Float64Var(&cfg.TPCHSF, "sf", cfg.TPCHSF, "TPC-H scale factor")
	flag.IntVar(&cfg.BIRows, "birows", cfg.BIRows, "BI workload rows")
	flag.IntVar(&cfg.Reps, "reps", cfg.Reps, "repetitions (fastest run reported)")
	flag.IntVar(&cfg.MaxCard, "maxcard", cfg.MaxCard, "Fig 8 maximum build cardinality")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.IntVar(&cfg.Workers, "workers", cfg.Workers, "parallel workers for the scaling experiment")
	jsonOut := flag.String("json-out", "", "write a machine-readable perf report to this file and exit (full join/agg/scaling/scan/compress report, or the standalone scaling report with -exp scaling)")
	serveURL := flag.String("serve-url", "", "load-generator mode: base URL of a running ocht-serve")
	clients := flag.Int("clients", 4, "loadgen concurrent clients")
	duration := flag.Duration("duration", 10*time.Second, "loadgen run length")
	timeout := flag.Duration("timeout", 0, "loadgen per-query deadline sent to the server (0 = server default)")
	flag.Parse()

	if *serveURL != "" {
		err := bench.LoadGen(os.Stdout, bench.LoadGenConfig{
			URL:      *serveURL,
			Clients:  *clients,
			Duration: *duration,
			Timeout:  *timeout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, name := range bench.RunnerNames {
			fmt.Println(name)
		}
		return
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		write := bench.PerfJSON
		if *exp == "scaling" {
			write = bench.ScalingJSON
		}
		if err := write(f, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		return
	}
	if *exp == "all" {
		bench.All(os.Stdout, cfg)
		return
	}
	run, ok := bench.Runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}
	run(os.Stdout, cfg)
}
