// Command ocht-bench regenerates the tables and figures of the paper's
// evaluation (Section V). Each experiment prints the same rows/series the
// paper reports, at a configurable laptop-friendly scale.
//
// Usage:
//
//	ocht-bench -exp fig4            # one experiment
//	ocht-bench -exp all -sf 0.05    # everything, larger TPC-H scale
//	ocht-bench -list                # list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"ocht/internal/bench"
)

func main() {
	cfg := bench.DefaultConfig()
	exp := flag.String("exp", "all", "experiment to run (see -list)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Float64Var(&cfg.TPCHSF, "sf", cfg.TPCHSF, "TPC-H scale factor")
	flag.IntVar(&cfg.BIRows, "birows", cfg.BIRows, "BI workload rows")
	flag.IntVar(&cfg.Reps, "reps", cfg.Reps, "repetitions (fastest run reported)")
	flag.IntVar(&cfg.MaxCard, "maxcard", cfg.MaxCard, "Fig 8 maximum build cardinality")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.IntVar(&cfg.Workers, "workers", cfg.Workers, "parallel workers for the scaling experiment")
	flag.Parse()

	if *list {
		for _, name := range bench.RunnerNames {
			fmt.Println(name)
		}
		return
	}
	if *exp == "all" {
		bench.All(os.Stdout, cfg)
		return
	}
	run, ok := bench.Runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}
	run(os.Stdout, cfg)
}
