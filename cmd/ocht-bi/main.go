// Command ocht-bi generates the CommonGovernment-like Public-BI workload
// and runs its 20 queries vanilla vs USSR, printing the Table III columns.
//
// Usage:
//
//	ocht-bi -rows 200000
//	ocht-bi -rows 200000 -q 6 -show
package main

import (
	"flag"
	"fmt"
	"time"

	"ocht/internal/bi"
	"ocht/internal/core"
	"ocht/internal/exec"
)

func main() {
	rows := flag.Int("rows", 100_000, "contracts rows")
	qn := flag.Int("q", 0, "query number (0 = all 20)")
	show := flag.Bool("show", false, "print query results")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	fmt.Printf("generating BI workload, %d rows (seed %d)...\n", *rows, *seed)
	cat := bi.Gen(*rows, *seed)

	queries := []int{*qn}
	if *qn == 0 {
		queries = queries[:0]
		for q := 1; q <= bi.NumQueries; q++ {
			queries = append(queries, q)
		}
	}
	fmt.Printf("%-5s %10s %10s %8s %10s %7s %9s\n",
		"query", "vanilla", "ussr", "speedup", "ussr(kB)", "rej(%)", "#strings")
	for _, q := range queries {
		vq := exec.NewQCtx(core.Vanilla())
		start := time.Now()
		tRes := bi.Q(q, cat, vq)
		vTime := time.Since(start)

		uq := exec.NewQCtx(core.Flags{UseUSSR: true})
		start = time.Now()
		uRes := bi.Q(q, cat, uq)
		uTime := time.Since(start)
		st := uq.Store.U.Stats()

		fmt.Printf("Q%-4d %10v %10v %7.2fx %10.1f %7.1f %9d\n",
			q, vTime.Round(time.Microsecond), uTime.Round(time.Microsecond),
			float64(vTime)/float64(uTime), float64(st.SizeBytes)/1024,
			st.RejectionRatio(), st.Count)
		if *show {
			fmt.Print(uRes)
		}
		_ = tRes
	}
}
