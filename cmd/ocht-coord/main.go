// Command ocht-coord runs the scatter-gather coordinator: an HTTP/JSON
// SQL front-end that hash-partitions writes across shard engine
// processes and answers SELECTs by pushing filters and partial
// aggregation down to the shards, then merging the partials locally.
//
// Usage:
//
//	ocht-coord -addr :8090 -shards http://localhost:8081,http://localhost:8082
//	ocht-coord -shards http://s0,http://s1 -replicas 'http://s0r;http://s1r' -replica-reads
//	ocht-coord -shards ... -partition-keys 'orders=o_orderkey,lineitem=l_orderkey' -broadcast region,nation
//	curl -s localhost:8090/query -d '{"sql":"SELECT COUNT(*) FROM lineitem"}'
//
// -replicas takes one comma-separated replica list per shard, with ';'
// separating shards, aligned with -shards order. An empty slot means
// the shard has no replicas.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ocht/internal/core"
	"ocht/internal/dist"
	"ocht/internal/server"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	shardsFlag := flag.String("shards", "", "comma-separated shard primary base URLs (required)")
	replicasFlag := flag.String("replicas", "", "per-shard replica URLs: ';' between shards, ',' within a shard")
	partKeys := flag.String("partition-keys", "", "table=column pairs, comma-separated")
	broadcast := flag.String("broadcast", "", "comma-separated tables replicated to every shard")
	replicaReads := flag.Bool("replica-reads", false, "route reads to caught-up replicas")
	workers := flag.Int("workers", 0, "per-shard subquery parallelism (0 = shard default)")
	shardTimeout := flag.Duration("shard-timeout", 30*time.Second, "per-shard subquery deadline")
	retries := flag.Int("retries", 2, "retries per shard after transient failures")
	retryBackoff := flag.Duration("retry-backoff", 100*time.Millisecond, "initial retry backoff (doubles per attempt)")
	hedgeDelay := flag.Duration("hedge-delay", 500*time.Millisecond, "straggler hedge delay (0 = no hedging)")
	statusTTL := flag.Duration("status-ttl", time.Second, "replica catch-up status cache TTL")
	flag.Parse()

	if *shardsFlag == "" {
		fmt.Fprintln(os.Stderr, "-shards is required")
		os.Exit(1)
	}
	var shards []dist.ShardConfig
	for _, p := range strings.Split(*shardsFlag, ",") {
		shards = append(shards, dist.ShardConfig{Primary: strings.TrimSuffix(strings.TrimSpace(p), "/")})
	}
	if *replicasFlag != "" {
		groups := strings.Split(*replicasFlag, ";")
		if len(groups) > len(shards) {
			fmt.Fprintf(os.Stderr, "-replicas lists %d shards, -shards has %d\n", len(groups), len(shards))
			os.Exit(1)
		}
		for i, g := range groups {
			for _, rep := range strings.Split(g, ",") {
				if rep = strings.TrimSuffix(strings.TrimSpace(rep), "/"); rep != "" {
					shards[i].Replicas = append(shards[i].Replicas, rep)
				}
			}
		}
	}
	keys := map[string]string{}
	if *partKeys != "" {
		for _, pair := range strings.Split(*partKeys, ",") {
			table, col, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "bad -partition-keys entry %q (want table=column)\n", pair)
				os.Exit(1)
			}
			keys[table] = col
		}
	}
	bcast := map[string]bool{}
	if *broadcast != "" {
		for _, t := range strings.Split(*broadcast, ",") {
			bcast[strings.TrimSpace(t)] = true
		}
	}

	coord, err := dist.New(dist.Config{
		Shards:        shards,
		PartitionKeys: keys,
		Broadcast:     bcast,
		Workers:       *workers,
		Flags:         core.All(),
		ReplicaReads:  *replicaReads,
		StatusTTL:     *statusTTL,
		Fanout: dist.FanoutConfig{
			ShardTimeout: *shardTimeout,
			Retries:      *retries,
			RetryBackoff: *retryBackoff,
			HedgeDelay:   *hedgeDelay,
		},
	}, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, server.QueryResponse{Error: "POST only"})
			return
		}
		var req server.QueryRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, server.QueryResponse{Error: "bad request body: " + err.Error()})
			return
		}
		start := time.Now()
		res, err := coord.Query(r.Context(), req.SQL)
		if err != nil {
			status := http.StatusBadRequest
			if r.Context().Err() != nil {
				status = 499
			}
			writeJSON(w, status, server.QueryResponse{Error: err.Error()})
			return
		}
		resp := server.QueryResponse{
			Columns:      res.Columns,
			RowCount:     len(res.Rows),
			RowsAffected: res.RowsAffected,
			ElapsedMs:    float64(time.Since(start).Microseconds()) / 1000,
		}
		resp.Rows = make([][]any, len(res.Rows))
		for i, row := range res.Rows {
			cells := make([]any, len(row))
			for j, v := range row {
				cells[j] = dist.RenderCell(v)
			}
			resp.Rows[i] = cells
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/cluster/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"shards":   shards,
			"replicas": coord.ReplicaState(),
		})
	})

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "coordinating %d shards on %s\n", len(shards), *addr)

	select {
	case sig := <-done:
		fmt.Fprintf(os.Stderr, "received %v, draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
			os.Exit(1)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
