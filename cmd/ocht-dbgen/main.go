// Command ocht-dbgen generates the TPC-H or BI workload datasets and
// writes them to disk in the engine's columnar format, for reuse by
// ocht-sql -load or ocht.Open.
//
// Usage:
//
//	ocht-dbgen -data tpch -sf 0.1 -out ./tpch-sf01
//	ocht-dbgen -data bi -rows 500000 -out ./bi-data
package main

import (
	"flag"
	"fmt"
	"os"

	"ocht/internal/bi"
	"ocht/internal/storage"
	"ocht/internal/tpch"
)

func main() {
	data := flag.String("data", "tpch", "dataset: tpch | bi")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	rows := flag.Int("rows", 100_000, "BI workload rows")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "output directory (required)")
	sealCompress := flag.String("seal-compress", "auto", "string-block seal compression: on | off | auto (keep only when smaller)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "-out is required")
		os.Exit(1)
	}
	mode, err := storage.ParseCompressMode(*sealCompress)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	storage.SetSealCompression(mode)
	var cat *storage.Catalog
	switch *data {
	case "tpch":
		fmt.Printf("generating TPC-H SF %g...\n", *sf)
		cat = tpch.Gen(*sf, *seed)
	case "bi":
		fmt.Printf("generating BI workload (%d rows)...\n", *rows)
		cat = bi.Gen(*rows, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown -data %q\n", *data)
		os.Exit(1)
	}
	if err := cat.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d tables to %s\n", cat.Tables(), *out)
}
