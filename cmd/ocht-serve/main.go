// Command ocht-serve runs the query service: an HTTP/JSON SQL server over
// a generated (or loaded) dataset, with admission control, per-query
// deadlines, a plan cache, USSR pooling and a /metrics surface.
//
// Usage:
//
//	ocht-serve -addr :8080 -data tpch -sf 0.01
//	ocht-serve -load ./dataset -max-inflight 8 -queue 64
//	ocht-serve -data none -data-dir ./state -fsync always
//	ocht-serve -data none -data-dir ./replica -replica-of http://localhost:8080
//	curl -s localhost:8080/query -d '{"sql":"SELECT COUNT(*) FROM lineitem"}'
//	curl -s localhost:8080/query -d '{"sql":"CREATE TABLE ev (id BIGINT NOT NULL, kind TEXT)"}'
//	curl -s localhost:8080/metrics
//
// With -data-dir the server opens a WAL-backed ingest engine rooted at
// that directory: tables previously created there are recovered (sealed
// checkpoints + WAL replay) before the listener starts, and CREATE
// TABLE / INSERT / COPY statements are accepted on POST /query.
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight queries finish (or
// hit their deadlines), then the ingest engine checkpoints and closes,
// then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ocht/internal/bi"
	"ocht/internal/core"
	"ocht/internal/dist"
	"ocht/internal/ingest"
	"ocht/internal/server"
	"ocht/internal/sql"
	"ocht/internal/storage"
	"ocht/internal/tpch"
)

func parseFlags(s string) (core.Flags, error) {
	switch s {
	case "vanilla":
		return core.Vanilla(), nil
	case "ussr":
		return core.Flags{UseUSSR: true}, nil
	case "cht":
		return core.Flags{Compress: true}, nil
	case "cht+split":
		return core.Flags{Compress: true, Split: true}, nil
	case "all":
		return core.All(), nil
	}
	return core.Flags{}, fmt.Errorf("unknown -flags %q (vanilla|ussr|cht|cht+split|all)", s)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "tpch", "dataset: tpch | bi | both | none")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	rows := flag.Int("rows", 50_000, "BI workload rows")
	seed := flag.Int64("seed", 42, "generator seed")
	load := flag.String("load", "", "load a saved dataset directory (see ocht-dbgen) instead of generating")
	flagsName := flag.String("flags", "all", "engine configuration")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "default parallel workers per query")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent executing queries (0 = 2x GOMAXPROCS)")
	maxQueue := flag.Int("queue", 64, "admission wait-queue length")
	queueTimeout := flag.Duration("queue-timeout", 2*time.Second, "max wait for an execution slot")
	defTimeout := flag.Duration("default-timeout", 30*time.Second, "per-query deadline when the client sends none")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
	planCache := flag.Int("plan-cache", 256, "plan cache entries")
	maxRows := flag.Int("max-result-rows", 1<<20, "rows returned per response before truncation")
	dataDir := flag.String("data-dir", "", "enable the write path: WAL + checkpoint directory (recovered at boot)")
	fsync := flag.String("fsync", "always", "WAL durability: always | interval | none (with -data-dir)")
	replicaOf := flag.String("replica-of", "", "run as a read replica of this primary base URL (requires -data-dir; refuses client writes)")
	pollInterval := flag.Duration("replica-poll", 250*time.Millisecond, "WAL poll period when caught up (with -replica-of)")
	sealCompress := flag.String("seal-compress", "auto", "string-block seal compression: on | off | auto (keep only when smaller)")
	flag.Parse()

	if *replicaOf != "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "-replica-of requires -data-dir for the replayed state")
		os.Exit(1)
	}

	flags, err := parseFlags(*flagsName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	mode, err := storage.ParseCompressMode(*sealCompress)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	storage.SetSealCompression(mode)

	var cat *storage.Catalog
	if *load != "" {
		cat, err = storage.LoadCatalog(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		cat = storage.NewCatalog()
		add := func(src *storage.Catalog, names ...string) {
			for _, n := range names {
				cat.Add(src.Table(n))
			}
		}
		if *data == "tpch" || *data == "both" {
			fmt.Fprintf(os.Stderr, "generating TPC-H SF %g...\n", *sf)
			add(tpch.Gen(*sf, *seed), "region", "nation", "supplier", "customer",
				"part", "partsupp", "orders", "lineitem")
		}
		if *data == "bi" || *data == "both" {
			fmt.Fprintf(os.Stderr, "generating BI workload (%d rows)...\n", *rows)
			add(bi.Gen(*rows, *seed), "contracts", "vendors")
		}
	}

	// The write path: recover WAL-backed tables into the catalog before
	// the listener starts, so the first request already sees them.
	var eng *ingest.Engine
	if *dataDir != "" {
		policy, err := ingest.ParseFsyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		eng, err = ingest.Open(*dataDir, cat, ingest.Config{
			Fsync: policy,
			Logf:  func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ingest: %v\n", err)
			os.Exit(1)
		}
		st := eng.Stats()
		fmt.Fprintf(os.Stderr, "ingest: %s (%d tables, %d rows recovered, fsync=%s)\n",
			*dataDir, st.Tables, st.RecoveredRows, policy)
	}
	if cat.Tables() == 0 && eng == nil {
		fmt.Fprintln(os.Stderr, "no tables loaded; check -data/-load (or pass -data-dir for a write-only start)")
		os.Exit(1)
	}

	// Warm the plan machinery once so the first real query does not pay
	// for lazy initialization paths.
	warmup(cat)

	// Replica mode: tail the primary's WAL before serving, then keep
	// pulling in the background. The server refuses client writes; all
	// rows arrive through segment replay.
	var repl *dist.Replica
	var replicaStatus func() server.ReplicaStatus
	if *replicaOf != "" {
		repl = &dist.Replica{Primary: *replicaOf, Engine: eng, Interval: *pollInterval}
		if _, err := repl.CatchUp(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "replica: initial catch-up: %v (will keep retrying)\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "replica: caught up with %s\n", *replicaOf)
		}
		go repl.Run()
		replicaStatus = repl.Status
	}

	srv := server.New(cat, server.Config{
		Flags:          flags,
		Workers:        *workers,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueTimeout:   *queueTimeout,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		PlanCacheSize:  *planCache,
		MaxResultRows:  *maxRows,
		Ingest:         eng,
		ReadOnly:       *replicaOf != "",
		ReplicaStatus:  replicaStatus,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serving on %s (%d tables, flags=%s, workers=%d)\n",
		*addr, cat.Tables(), *flagsName, *workers)

	select {
	case sig := <-done:
		fmt.Fprintf(os.Stderr, "received %v, draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
			os.Exit(1)
		}
		// Requests have drained; seal, checkpoint and close the WAL so
		// the next boot recovers from checkpoints instead of replaying.
		if repl != nil {
			repl.Stop()
		}
		if eng != nil {
			if err := eng.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ingest close: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Fprintln(os.Stderr, "shutdown complete")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// warmup parses one trivial statement per table so the first served
// request measures query time, not lazy metadata setup.
func warmup(cat *storage.Catalog) {
	defer func() { recover() }()
	for _, name := range []string{"lineitem", "orders", "contracts"} {
		func() {
			defer func() { recover() }()
			stmt, err := sql.Parse("SELECT COUNT(*) FROM " + name + " LIMIT 1")
			if err != nil {
				return
			}
			sql.Plan(stmt, cat)
		}()
	}
}
