// Command ocht-sql is an interactive SQL shell over a generated dataset:
// TPC-H, the BI workload, or both. Queries run under a selectable engine
// configuration; \timing and \flags expose the paper's techniques at the
// prompt.
//
// Usage:
//
//	ocht-sql -data tpch -sf 0.01
//	ocht-sql -data bi -rows 100000
//	echo "SELECT COUNT(*) FROM lineitem" | ocht-sql -data tpch
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ocht/internal/bi"
	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/sql"
	"ocht/internal/storage"
	"ocht/internal/tpch"
)

func main() {
	data := flag.String("data", "tpch", "dataset: tpch | bi | both")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	rows := flag.Int("rows", 50_000, "BI workload rows")
	seed := flag.Int64("seed", 42, "generator seed")
	load := flag.String("load", "", "load a saved dataset directory (see ocht-dbgen) instead of generating")
	flag.Parse()

	if *load != "" {
		loaded, err := storage.LoadCatalog(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		repl(loaded)
		return
	}
	cat := storage.NewCatalog()
	add := func(src *storage.Catalog, names ...string) {
		for _, n := range names {
			cat.Add(src.Table(n))
		}
	}
	if *data == "tpch" || *data == "both" {
		fmt.Fprintf(os.Stderr, "generating TPC-H SF %g...\n", *sf)
		add(tpch.Gen(*sf, *seed), "region", "nation", "supplier", "customer",
			"part", "partsupp", "orders", "lineitem")
	}
	if *data == "bi" || *data == "both" {
		fmt.Fprintf(os.Stderr, "generating BI workload (%d rows)...\n", *rows)
		add(bi.Gen(*rows, *seed), "contracts", "vendors")
	}
	repl(cat)
}

// repl reads statements from stdin and executes them against cat.
func repl(cat *storage.Catalog) {
	flags := core.All()
	timing := true
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(os.Stderr, `ready. \flags vanilla|ussr|cht|all, \timing on|off, \q to quit`)
	for {
		fmt.Fprint(os.Stderr, "ocht> ")
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\q`:
			return
		case strings.HasPrefix(line, `\timing`):
			timing = !strings.HasSuffix(line, "off")
			continue
		case strings.HasPrefix(line, `\flags`):
			switch strings.TrimSpace(strings.TrimPrefix(line, `\flags`)) {
			case "vanilla":
				flags = core.Vanilla()
			case "ussr":
				flags = core.Flags{UseUSSR: true}
			case "cht":
				flags = core.Flags{Compress: true}
			case "all":
				flags = core.All()
			default:
				fmt.Fprintln(os.Stderr, "unknown flags; use vanilla|ussr|cht|all")
			}
			continue
		}
		qc := exec.NewQCtx(flags)
		start := time.Now()
		res, err := sql.Run(line, cat, qc)
		el := time.Since(start)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		fmt.Print(res)
		if timing {
			fmt.Fprintf(os.Stderr, "(%d rows, %v, hash tables %d bytes)\n",
				len(res.Rows), el.Round(time.Microsecond), qc.HashTableBytes())
		}
	}
}
