// Command ocht-sql is an interactive SQL shell over a generated dataset:
// TPC-H, the BI workload, or both. Queries run under a selectable engine
// configuration; \timing and \flags expose the paper's techniques at the
// prompt.
//
// Usage:
//
//	ocht-sql -data tpch -sf 0.01
//	ocht-sql -data bi -rows 100000
//	ocht-sql -data none -data-dir ./state    # writable: CREATE/INSERT/COPY
//	echo "SELECT COUNT(*) FROM lineitem" | ocht-sql -data tpch
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ocht/internal/bi"
	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/ingest"
	"ocht/internal/sql"
	"ocht/internal/storage"
	"ocht/internal/tpch"
)

func main() {
	data := flag.String("data", "tpch", "dataset: tpch | bi | both | none")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	rows := flag.Int("rows", 50_000, "BI workload rows")
	seed := flag.Int64("seed", 42, "generator seed")
	load := flag.String("load", "", "load a saved dataset directory (see ocht-dbgen) instead of generating")
	dataDir := flag.String("data-dir", "", "enable CREATE/INSERT/COPY: WAL + checkpoint directory (recovered at start)")
	fsync := flag.String("fsync", "always", "WAL durability: always | interval | none (with -data-dir)")
	eagerScan := flag.Bool("eager-scan", false, "decompress every block at scan time (disables compressed execution)")
	noZoneSkip := flag.Bool("no-zone-skip", false, "read every block even when zone maps prove it empty")
	sealCompress := flag.String("seal-compress", "auto", "string-block seal compression: on | off | auto (keep only when smaller)")
	flag.Parse()

	mode, err := storage.ParseCompressMode(*sealCompress)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	storage.SetSealCompression(mode)

	var cat *storage.Catalog
	if *load != "" {
		loaded, err := storage.LoadCatalog(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cat = loaded
	} else {
		cat = storage.NewCatalog()
		add := func(src *storage.Catalog, names ...string) {
			for _, n := range names {
				cat.Add(src.Table(n))
			}
		}
		if *data == "tpch" || *data == "both" {
			fmt.Fprintf(os.Stderr, "generating TPC-H SF %g...\n", *sf)
			add(tpch.Gen(*sf, *seed), "region", "nation", "supplier", "customer",
				"part", "partsupp", "orders", "lineitem")
		}
		if *data == "bi" || *data == "both" {
			fmt.Fprintf(os.Stderr, "generating BI workload (%d rows)...\n", *rows)
			add(bi.Gen(*rows, *seed), "contracts", "vendors")
		}
	}

	var eng *ingest.Engine
	if *dataDir != "" {
		policy, err := ingest.ParseFsyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		eng, err = ingest.Open(*dataDir, cat, ingest.Config{Fsync: policy})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st := eng.Stats()
		fmt.Fprintf(os.Stderr, "ingest: %s (%d tables, %d rows recovered)\n",
			*dataDir, st.Tables, st.RecoveredRows)
		defer func() {
			if err := eng.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ingest close:", err)
			}
		}()
	}
	repl(cat, eng, *eagerScan, *noZoneSkip)
}

// isWriteSQL reports whether the statement's leading keyword routes it
// to the ingest engine rather than the query planner.
func isWriteSQL(q string) bool {
	word, _, _ := strings.Cut(strings.TrimSpace(q), " ")
	switch strings.ToUpper(word) {
	case "CREATE", "INSERT", "COPY":
		return true
	}
	return false
}

// repl reads statements from stdin and executes them against cat; write
// statements go through eng when one is attached.
func repl(cat *storage.Catalog, eng *ingest.Engine, eagerScan, noZoneSkip bool) {
	flags := core.All()
	timing := true
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(os.Stderr, `ready. \flags vanilla|ussr|cht|all, \timing on|off, \q to quit`)
	for {
		fmt.Fprint(os.Stderr, "ocht> ")
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\q`:
			return
		case strings.HasPrefix(line, `\timing`):
			timing = !strings.HasSuffix(line, "off")
			continue
		case strings.HasPrefix(line, `\flags`):
			switch strings.TrimSpace(strings.TrimPrefix(line, `\flags`)) {
			case "vanilla":
				flags = core.Vanilla()
			case "ussr":
				flags = core.Flags{UseUSSR: true}
			case "cht":
				flags = core.Flags{Compress: true}
			case "all":
				flags = core.All()
			default:
				fmt.Fprintln(os.Stderr, "unknown flags; use vanilla|ussr|cht|all")
			}
			continue
		}
		if isWriteSQL(line) {
			if eng == nil {
				fmt.Fprintln(os.Stderr, "read-only session: restart with -data-dir to enable writes")
				continue
			}
			stmt, err := sql.ParseStatement(line)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				continue
			}
			start := time.Now()
			n, err := eng.Apply(stmt)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				continue
			}
			if timing {
				fmt.Fprintf(os.Stderr, "(%d rows affected, %v)\n", n, time.Since(start).Round(time.Microsecond))
			}
			continue
		}
		qc := exec.NewQCtx(flags)
		qc.EagerMaterialize = eagerScan
		qc.DisableZoneSkip = noZoneSkip
		start := time.Now()
		res, err := sql.Run(line, cat, qc)
		el := time.Since(start)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		fmt.Print(res)
		if timing {
			fmt.Fprintf(os.Stderr, "(%d rows, %v, hash tables %d bytes)\n",
				len(res.Rows), el.Round(time.Microsecond), qc.HashTableBytes())
		}
	}
}
