// Command ocht-tpch generates a TPC-H database and runs its 22 queries
// under a selectable engine configuration, printing results, runtimes and
// hash-table footprints.
//
// Usage:
//
//	ocht-tpch -sf 0.01 -q 1                 # one query, optimized engine
//	ocht-tpch -sf 0.01 -q 3 -flags vanilla  # baseline
//	ocht-tpch -sf 0.05                      # the whole power run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
	"ocht/internal/tpch"
)

func parseFlags(s string) (core.Flags, error) {
	switch s {
	case "vanilla":
		return core.Vanilla(), nil
	case "ussr":
		return core.Flags{UseUSSR: true}, nil
	case "cht":
		return core.Flags{Compress: true}, nil
	case "cht+split":
		return core.Flags{Compress: true, Split: true}, nil
	case "all":
		return core.All(), nil
	}
	return core.Flags{}, fmt.Errorf("unknown -flags %q (vanilla|ussr|cht|cht+split|all)", s)
}

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor")
	qn := flag.Int("q", 0, "query number (0 = power run)")
	flagsName := flag.String("flags", "all", "engine configuration")
	show := flag.Bool("show", false, "print query results")
	seed := flag.Int64("seed", 42, "generator seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers (1 = serial)")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none); timed-out queries report CANCELED")
	partBits := flag.Int("partbits", -1, "hash-table radix partition bits (-1 = adaptive, 0 = monolithic)")
	eagerScan := flag.Bool("eager-scan", false, "decompress every block at scan time (disables compressed execution)")
	noZoneSkip := flag.Bool("no-zone-skip", false, "read every block even when zone maps prove it empty")
	sealCompress := flag.String("seal-compress", "auto", "string-block seal compression: on | off | auto (keep only when smaller)")
	flag.Parse()
	exec.DefaultPartitionBits = *partBits

	flags, err := parseFlags(*flagsName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mode, err := storage.ParseCompressMode(*sealCompress)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	storage.SetSealCompression(mode)
	fmt.Printf("generating TPC-H SF %g (seed %d)...\n", *sf, *seed)
	cat := tpch.Gen(*sf, *seed)

	run := func(q int) {
		qc := exec.NewQCtx(flags)
		qc.Workers = *workers
		qc.EagerMaterialize = *eagerScan
		qc.DisableZoneSkip = *noZoneSkip
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		start := time.Now()
		res, err := tpch.QContext(ctx, q, cat, qc)
		el := time.Since(start)
		if err != nil {
			fmt.Printf("Q%-3d %10v  CANCELED (%v)\n", q, el.Round(time.Microsecond), err)
			return
		}
		fmt.Printf("Q%-3d %10v  rows=%-6d HT=%-10d peak=%d",
			q, el.Round(time.Microsecond), len(res.Rows),
			qc.HashTableBytes(), qc.PeakMemoryBytes())
		if skipped := qc.Stats.Counter(exec.CtrBlocksSkipped); skipped > 0 {
			fmt.Printf("  zskip=%d/%d", skipped, skipped+qc.Stats.Counter(exec.CtrBlocksRead))
		}
		if fp := qc.WorkerFootprints(); len(fp) > 0 {
			fmt.Printf("  workerHT=%v", fp)
		}
		fmt.Println()
		if *show {
			fmt.Print(res)
		}
	}
	if *qn != 0 {
		run(*qn)
		return
	}
	for q := 1; q <= 22; q++ {
		run(q)
	}
}
