// Command ocht-vet runs the ocht engine-invariant analyzers over the
// module. It loads every package from source using only the standard
// library (go/parser + go/types) and reports diagnostics in the usual
// file:line:col format, exiting non-zero if any analyzer fires.
//
// Usage:
//
//	ocht-vet [-run name[,name...]] [dir]
//
// dir defaults to the current directory; the module root is discovered by
// walking up to go.mod. -run restricts the suite to the named analyzers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ocht/internal/analysis"
)

func main() {
	runFilter := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runFilter != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*runFilter, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range suite {
			if want[a.Name] {
				kept = append(kept, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "ocht-vet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		suite = kept
	}

	dir := "."
	if flag.NArg() > 0 {
		// Accept a directory or the conventional ./... pattern; loading is
		// always whole-module.
		arg := strings.TrimSuffix(flag.Arg(0), "...")
		arg = strings.TrimSuffix(arg, "/")
		if arg != "" && arg != "." {
			dir = arg
		}
	}

	loader, err := analysis.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocht-vet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocht-vet: %v\n", err)
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, suite)
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ocht-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
