// Command ocht-vet runs the ocht engine-invariant analyzers over the
// module. It loads every package from source using only the standard
// library (go/parser + go/types) and reports diagnostics in the usual
// file:line:col format, exiting non-zero if any analyzer fires.
//
// Usage:
//
//	ocht-vet [-run name[,name...]] [-pkg suffix[,suffix...]] \
//	         [-json] [-baseline file] [dir]
//
// dir defaults to the current directory; the module root is discovered by
// walking up to go.mod. Loading and analysis are always whole-module
// (cross-package facts need every dependency visited); -run restricts
// which analyzers run, -pkg restricts which packages' findings are
// *reported* (import-path suffix match, e.g. -pkg internal/dist).
//
// -json writes a machine-readable report to stdout. -baseline subtracts
// the findings recorded in the given vet-baseline.json first: only new
// findings are reported and only new findings fail the run — CI stays
// green on a known debt while refusing fresh violations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ocht/internal/analysis"
)

func main() {
	runFilter := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	pkgFilter := flag.String("pkg", "", "comma-separated import-path suffixes to report on (default: all)")
	jsonOut := flag.Bool("json", false, "write findings as JSON to stdout")
	baseline := flag.String("baseline", "", "baseline report; findings present in it are not reported")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runFilter != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*runFilter, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range suite {
			if want[a.Name] {
				kept = append(kept, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "ocht-vet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		suite = kept
	}

	dir := "."
	if flag.NArg() > 0 {
		// Accept a directory or the conventional ./... pattern; loading is
		// always whole-module.
		arg := strings.TrimSuffix(flag.Arg(0), "...")
		arg = strings.TrimSuffix(arg, "/")
		if arg != "" && arg != "." {
			dir = arg
		}
	}

	loader, err := analysis.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocht-vet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocht-vet: %v\n", err)
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, suite)
	if *pkgFilter != "" {
		var suffixes []string
		for _, s := range strings.Split(*pkgFilter, ",") {
			if s = strings.TrimSpace(s); s != "" {
				suffixes = append(suffixes, s)
			}
		}
		var kept []analysis.Diagnostic
		for _, d := range diags {
			for _, s := range suffixes {
				if d.PkgPath == s || strings.HasSuffix(d.PkgPath, "/"+s) {
					kept = append(kept, d)
					break
				}
			}
		}
		diags = kept
	}

	report := analysis.NewReport(loader.Root, diags)
	if *baseline != "" {
		base, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ocht-vet: %v\n", err)
			os.Exit(2)
		}
		report = report.Subtract(base)
	}

	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ocht-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range report.Findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if n := len(report.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "ocht-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
