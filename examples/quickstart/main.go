// Quickstart: build a small table, run a grouped aggregation under the
// vanilla baseline and under all three paper techniques, and compare the
// hash-table footprints.
package main

import (
	"fmt"

	"ocht"
)

func main() {
	db := ocht.NewDB()
	b := db.CreateTable("orders",
		ocht.ColStr("status"),
		ocht.ColInt32("store"),
		ocht.ColInt64("price"),
		ocht.ColInt32("quantity"),
	)
	statuses := []string{"OPEN", "SHIPPED", "DELIVERED", "RETURNED"}
	for i := 0; i < 100_000; i++ {
		b.Row(statuses[i%4], int32(i%5000), int64(i%9973)+100, int32(i%50)+1)
	}
	b.Finish()

	for _, cfg := range []struct {
		name  string
		flags ocht.Flags
	}{
		{"vanilla", ocht.Vanilla()},
		{"optimistically compressed", ocht.All()},
	} {
		q := db.Query(cfg.flags).
			Scan("orders").
			GroupBy("status", "store").
			Agg(ocht.Sum("price"), ocht.Avg("quantity"), ocht.CountAll()).
			OrderBy(2, true). // by sum_price, descending
			Limit(3)
		res := q.Run()
		fmt.Printf("--- %s (hash tables: %d bytes total, %d bytes hot) ---\n",
			cfg.name, q.HashTableBytes(), q.HashTableHotBytes())
		fmt.Print(res)
	}
}
