// Selective-join example: Optimistic Splitting for joins (Section III-B).
// When most probes miss, only the thin packed keys need to stay hot; the
// payload moves to the cold area. This example builds the same join with
// hot and cold payload placement and compares probe time and the hot
// working set.
//
// Usage: go run ./examples/selectivejoin [-build 1000000] [-probe 1000000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"ocht/internal/core"
	"ocht/internal/domain"
	"ocht/internal/join"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

func main() {
	nBuild := flag.Int("build", 1_000_000, "build-side rows")
	nProbe := flag.Int("probe", 1_000_000, "probe-side rows (99% misses)")
	flag.Parse()

	keyDom := domain.New(0, int64(*nBuild)*100) // ~1% of probes hit
	keys := []core.KeyCol{{Name: "k", Type: vec.I64, Dom: keyDom}}
	payload := []join.PayloadCol{
		{Name: "p1", Type: vec.I64, Dom: domain.Unknown},
		{Name: "p2", Type: vec.I64, Dom: domain.Unknown},
		{Name: "p3", Type: vec.I64, Dom: domain.Unknown},
		{Name: "p4", Type: vec.I64, Dom: domain.Unknown},
	}

	for _, mode := range []struct {
		name      string
		selective bool
	}{
		{"payload hot (default)", false},
		{"payload cold (selective join)", true},
	} {
		store := strs.NewStore(false)
		j, err := join.New(core.Flags{Compress: true, Split: true}, keys, payload, store,
			join.Options{Selective: mode.selective, CapacityHint: *nBuild})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(1))
		kv := vec.New(vec.I64, vec.Size)
		ps := make([]*vec.Vector, 4)
		for i := range ps {
			ps[i] = vec.New(vec.I64, vec.Size)
		}
		rows := make([]int32, vec.Size)
		for i := range rows {
			rows[i] = int32(i)
		}
		for done := 0; done < *nBuild; done += vec.Size {
			for i := 0; i < vec.Size; i++ {
				kv.I64[i] = rng.Int63n(keyDom.Max + 1)
				for _, p := range ps {
					p.I64[i] = rng.Int63()
				}
			}
			j.Build([]*vec.Vector{kv}, ps, rows)
		}

		start := time.Now()
		matches := 0
		for done := 0; done < *nProbe; done += vec.Size {
			for i := 0; i < vec.Size; i++ {
				kv.I64[i] = rng.Int63n(keyDom.Max + 1)
			}
			mr, _ := j.Probe([]*vec.Vector{kv}, rows)
			matches += len(mr)
		}
		probeTime := time.Since(start)
		t := j.Table()
		fmt.Printf("%-30s probe=%-10v matches=%-6d hot=%8d B  cold=%8d B\n",
			mode.name, probeTime.Round(time.Millisecond), matches,
			t.HotAreaBytes(), t.ColdAreaBytes())
	}
}
