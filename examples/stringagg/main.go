// String-heavy aggregation example: the USSR at work. Groups a column of
// frequent long strings and shows the speedup from pre-computed hashes
// and reference equality, plus the USSR's fill statistics — a miniature
// of the paper's Figure 7 and Table III.
//
// Usage: go run ./examples/stringagg [-rows 500000] [-len 64] [-distinct 100]
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"ocht"
	"ocht/internal/exec"
)

func main() {
	rows := flag.Int("rows", 500_000, "number of rows")
	length := flag.Int("len", 64, "string length")
	distinct := flag.Int("distinct", 100, "distinct strings")
	flag.Parse()

	words := make([]string, *distinct)
	for i := range words {
		base := fmt.Sprintf("customer-%06d-", i)
		words[i] = (base + strings.Repeat("x", *length))[:*length]
	}
	db := ocht.NewDB()
	b := db.CreateTable("events", ocht.ColStr("who"), ocht.ColInt64("n"))
	for i := 0; i < *rows; i++ {
		b.Row(words[i%len(words)], int64(i%1000))
	}
	b.Finish()

	run := func(name string, flags ocht.Flags) (*exec.QCtx, time.Duration) {
		q := db.Query(flags).Scan("events").GroupBy("who").Agg(ocht.Sum("n"), ocht.CountAll())
		start := time.Now()
		res := q.Run()
		el := time.Since(start)
		fmt.Printf("%-22s %10v  groups=%d\n", name, el.Round(time.Millisecond), len(res.Rows))
		return q.Context(), el
	}
	_, vTime := run("vanilla (heap strings)", ocht.Vanilla())
	qc, uTime := run("with USSR", ocht.Flags{UseUSSR: true})
	fmt.Printf("speedup: %.2fx\n\n", float64(vTime)/float64(uTime))

	st := qc.Store.U.Stats()
	fmt.Printf("USSR: %d strings, %.1f kB used, %d candidates, %d rejected (%.1f%%), avg len %.0f\n",
		st.Count, float64(st.SizeBytes)/1024, st.Candidates, st.Rejected,
		st.RejectionRatio(), st.AvgLen())
	fmt.Printf("fast hashes: %d, slow hashes: %d\n", qc.Store.HashFast, qc.Store.HashSlow)
}
