// TPC-H example: generate the benchmark database at a small scale factor
// and run queries under the vanilla baseline and the fully optimized
// configuration, reporting runtimes and hash-table footprints — a
// miniature of the paper's Figure 4 / Figure 5 experiment.
//
// Usage: go run ./examples/tpch [-sf 0.01] [-q 5]
package main

import (
	"flag"
	"fmt"
	"time"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor")
	qn := flag.Int("q", 0, "query number (0 = all 22)")
	flag.Parse()

	fmt.Printf("generating TPC-H SF %g...\n", *sf)
	cat := tpch.Gen(*sf, 42)

	queries := []int{*qn}
	if *qn == 0 {
		queries = queries[:0]
		for q := 1; q <= 22; q++ {
			queries = append(queries, q)
		}
	}
	fmt.Printf("%-5s %12s %12s %9s %12s %12s\n",
		"query", "vanilla", "optimized", "speedup", "HT vanilla", "HT optimized")
	for _, q := range queries {
		vq := exec.NewQCtx(core.Vanilla())
		start := time.Now()
		vres := tpch.Q(q, cat, vq)
		vTime := time.Since(start)

		oq := exec.NewQCtx(core.All())
		start = time.Now()
		ores := tpch.Q(q, cat, oq)
		oTime := time.Since(start)

		if len(vres.Rows) != len(ores.Rows) {
			panic(fmt.Sprintf("Q%d: result mismatch", q))
		}
		fmt.Printf("Q%-4d %12v %12v %8.2fx %12d %12d\n",
			q, vTime.Round(time.Microsecond), oTime.Round(time.Microsecond),
			float64(vTime)/float64(oTime), vq.HashTableBytes(), oq.HashTableBytes())
	}
}
