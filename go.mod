module ocht

go 1.22
