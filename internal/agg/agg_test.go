package agg

import (
	"math"
	"math/rand"
	"testing"

	"ocht/internal/core"
	"ocht/internal/domain"
	"ocht/internal/i128"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

func TestOpSumMatchesFullSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const groups, n = 16, 50_000
	common := make([]uint64, groups)
	except := make([]int64, groups)
	full := make([]i128.Int, groups)
	g := make([]int32, n)
	v := make([]int64, n)
	for i := 0; i < n; i++ {
		g[i] = int32(rng.Intn(groups))
		// Large magnitudes provoke plenty of carries/borrows.
		v[i] = rng.Int63() - rng.Int63()
		if rng.Intn(4) == 0 {
			v[i] = math.MaxInt64 - int64(rng.Intn(5))
		}
	}
	OpSum(common, except, g, v)
	FullSum(full, g, v)
	for i := 0; i < groups; i++ {
		if CombineOpSum(common[i], except[i]) != full[i] {
			t.Errorf("group %d: optimistic %v != full %v",
				i, CombineOpSum(common[i], except[i]), full[i])
		}
	}
}

func TestOpSumPosMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const groups, n = 8, 50_000
	common := make([]uint64, groups)
	except := make([]int64, groups)
	full := make([]i128.Int, groups)
	g := make([]int32, n)
	v := make([]int64, n)
	for i := 0; i < n; i++ {
		g[i] = int32(rng.Intn(groups))
		v[i] = rng.Int63() // non-negative, near 2^62: frequent carries
	}
	OpSumPos(common, except, g, v)
	FullSumPos(full, g, v)
	for i := 0; i < groups; i++ {
		if CombineOpSum(common[i], except[i]) != full[i] {
			t.Errorf("group %d mismatch", i)
		}
	}
}

func TestOpCount16(t *testing.T) {
	const groups = 3
	common := make([]uint16, groups)
	except := make([]uint64, groups)
	g := make([]int32, 0, 200_000)
	want := [groups]int64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200_000; i++ {
		k := int32(rng.Intn(groups))
		g = append(g, k)
		want[k]++
	}
	OpCount16(common, except, g)
	for i := 0; i < groups; i++ {
		if got := CombineOpCount(common[i], except[i]); got != want[i] {
			t.Errorf("group %d: got %d want %d", i, got, want[i])
		}
	}
}

func TestOpMinMaxMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const groups, n = 32, 20_000
	domMin := int64(-1000)
	minB := make([]uint32, groups)
	minE := make([]int64, groups)
	maxB := make([]uint32, groups)
	maxE := make([]int64, groups)
	for i := range minB {
		minB[i], minE[i] = MinInitBound, MinInitExcept
		maxB[i], maxE[i] = MaxInitBound, MaxInitExcept
	}
	g := make([]int32, n)
	v := make([]int64, n)
	wantMin := make([]int64, groups)
	wantMax := make([]int64, groups)
	for i := range wantMin {
		wantMin[i], wantMax[i] = math.MaxInt64, math.MinInt64
	}
	for i := 0; i < n; i++ {
		g[i] = int32(rng.Intn(groups))
		v[i] = domMin + rng.Int63n(1<<40) // exceeds the 32-bit bound range
		if wantMin[g[i]] > v[i] {
			wantMin[g[i]] = v[i]
		}
		if wantMax[g[i]] < v[i] {
			wantMax[g[i]] = v[i]
		}
	}
	OpMin(minB, minE, g, v, domMin)
	OpMax(maxB, maxE, g, v, domMin)
	for i := 0; i < groups; i++ {
		if minE[i] != wantMin[i] {
			t.Errorf("min group %d: got %d want %d", i, minE[i], wantMin[i])
		}
		if maxE[i] != wantMax[i] {
			t.Errorf("max group %d: got %d want %d", i, maxE[i], wantMax[i])
		}
	}
}

func TestBoundOfOrderPreserving(t *testing.T) {
	domMin := int64(-50)
	prev := uint32(0)
	for _, v := range []int64{-50, -1, 0, 1, 1 << 20, 1 << 31, 1 << 33, math.MaxInt64} {
		b := boundOf(v, domMin)
		if b < prev {
			t.Errorf("boundOf not monotone at %d", v)
		}
		prev = b
	}
	if boundOf(math.MaxInt64, domMin) != 0xFFFFFFFF {
		t.Error("saturation")
	}
	if boundOf(-51, domMin) != 0 {
		t.Error("below-domain clamp")
	}
}

// aggHarness runs a grouped aggregation over a core.Table with the given
// flags and returns per-key results.
func aggHarness(t *testing.T, flags core.Flags, specs []Spec, keys []int64, vals []int64, keyDom domain.D) (map[int64][]i128.Int, *core.Table, *Aggregator) {
	t.Helper()
	store := strs.NewStore(flags.UseUSSR)
	schema, err := core.NewKeySchema(flags, []core.KeyCol{{Name: "k", Type: vec.I64, Dom: keyDom}}, store)
	if err != nil {
		t.Fatal(err)
	}
	ag := NewAggregator(flags, specs)
	tab := core.NewTable(schema, ag.HotBytes, ag.ColdBytes, 16)
	for start := 0; start < len(keys); start += vec.Size {
		end := start + vec.Size
		if end > len(keys) {
			end = len(keys)
		}
		n := end - start
		kv := vec.New(vec.I64, n)
		vv := vec.New(vec.I64, n)
		copy(kv.I64, keys[start:end])
		copy(vv.I64, vals[start:end])
		rows := make([]int32, n)
		for i := range rows {
			rows[i] = int32(i)
		}
		p := schema.Prepare([]*vec.Vector{kv}, rows)
		hashes := make([]uint64, n)
		schema.Hash(p, rows, hashes)
		recs := make([]int32, n)
		_, newRecs := tab.FindOrInsert(p, hashes, rows, recs)
		ag.Init(tab, newRecs)
		for ai := range specs {
			ag.Update(tab, ai, recs, rows, vv)
		}
	}
	// Extract results keyed by the reconstructed group key.
	nG := tab.Len()
	recIdx := make([]int32, nG)
	rows := make([]int32, nG)
	for i := range recIdx {
		recIdx[i], rows[i] = int32(i), int32(i)
	}
	keyOut := vec.New(vec.I64, nG)
	tab.LoadKey(0, recIdx, keyOut, rows)
	res := map[int64][]i128.Int{}
	for ai := range specs {
		out := vec.New(ag.ResultType(ai), nG)
		ag.Result(tab, ai, recIdx, out, rows)
		for i := 0; i < nG; i++ {
			k := keyOut.I64[i]
			for len(res[k]) <= ai {
				res[k] = append(res[k], i128.Int{})
			}
			if out.Typ == vec.I128 {
				res[k][ai] = out.I128[i]
			} else {
				res[k][ai] = i128.FromInt64(out.I64[i])
			}
		}
	}
	return res, tab, ag
}

func TestAggregatorEndToEndAllFlagCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 30_000
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Intn(100))
		vals[i] = rng.Int63n(1<<50) - 1<<49
	}
	valDom := domain.New(-(1 << 49), 1<<49-1)
	specs := []Spec{
		{Func: Sum, InType: vec.I64, InDom: valDom, MaxRows: 1 << 40}, // forces 128-bit
		{Func: Count, InType: vec.I64, InDom: valDom, MaxRows: n},
		{Func: Min, InType: vec.I64, InDom: valDom, MaxRows: n},
		{Func: Max, InType: vec.I64, InDom: valDom, MaxRows: n},
	}
	// Oracle.
	type acc struct {
		sum      i128.Int
		cnt      int64
		min, max int64
	}
	oracle := map[int64]*acc{}
	for i := range keys {
		a, ok := oracle[keys[i]]
		if !ok {
			a = &acc{min: math.MaxInt64, max: math.MinInt64}
			oracle[keys[i]] = a
		}
		a.sum = i128.AddInt64(a.sum, vals[i])
		a.cnt++
		if vals[i] < a.min {
			a.min = vals[i]
		}
		if vals[i] > a.max {
			a.max = vals[i]
		}
	}
	combos := []core.Flags{
		{}, {Split: true}, {Compress: true}, {Compress: true, Split: true}, core.All(),
	}
	for _, flags := range combos {
		res, _, _ := aggHarness(t, flags, specs, keys, vals, domain.New(0, 99))
		if len(res) != len(oracle) {
			t.Fatalf("flags %+v: %d groups, want %d", flags, len(res), len(oracle))
		}
		for k, a := range oracle {
			r, ok := res[k]
			if !ok {
				t.Fatalf("flags %+v: group %d missing", flags, k)
			}
			if r[0] != a.sum {
				t.Errorf("flags %+v group %d: sum %v want %v", flags, k, r[0], a.sum)
			}
			if r[1].Int64() != a.cnt {
				t.Errorf("flags %+v group %d: count %d want %d", flags, k, r[1].Int64(), a.cnt)
			}
			if r[2].Int64() != a.min || r[3].Int64() != a.max {
				t.Errorf("flags %+v group %d: min/max mismatch", flags, k)
			}
		}
	}
}

func TestSumWidthDecision(t *testing.T) {
	small := Spec{Func: Sum, InType: vec.I32, InDom: domain.New(0, 1000), MaxRows: 1 << 20}
	big := Spec{Func: Sum, InType: vec.I64, InDom: domain.New(0, 1<<40), MaxRows: 1 << 40}

	opt := NewAggregator(core.Flags{Compress: true, Split: true}, []Spec{small, big})
	if opt.layouts[0].kind != kSumI64 {
		t.Error("provably-fitting sum must use 64 bits")
	}
	if opt.layouts[1].kind != kSumSplitPos {
		t.Error("non-negative overflowing sum must use the positive optimistic kind")
	}

	van := NewAggregator(core.Vanilla(), []Spec{small, big})
	if van.layouts[0].kind != kSumI64 {
		t.Error("vanilla i32 sum uses 64 bits")
	}
	if van.layouts[1].kind != kSumFull128 {
		t.Error("vanilla wide sum must use the full 128-bit aggregate")
	}

	neg := Spec{Func: Sum, InType: vec.I64, InDom: domain.New(-(1 << 40), 1<<40), MaxRows: 1 << 40}
	split := NewAggregator(core.Flags{Split: true}, []Spec{neg})
	if split.layouts[0].kind != kSumSplit {
		t.Error("signed overflowing sum must use the generic optimistic kind")
	}
}

func TestHotColdWidths(t *testing.T) {
	specs := []Spec{
		{Func: Sum, InType: vec.I64, InDom: domain.New(0, 1<<40), MaxRows: 1 << 40},
		{Func: Count, InType: vec.I64, MaxRows: 1 << 40},
		{Func: Min, InType: vec.I64, InDom: domain.New(0, 1<<40), MaxRows: 1 << 40},
	}
	full := NewAggregator(core.Vanilla(), specs)
	split := NewAggregator(core.Flags{Split: true}, specs)
	// Full: 16 (sum128) + 8 (count) + 8 (min) = 32 hot, 0 cold.
	if full.HotBytes != 32 || full.ColdBytes != 0 {
		t.Errorf("full widths: hot=%d cold=%d", full.HotBytes, full.ColdBytes)
	}
	// Split: 8 (sum) + 2 (count16) + 4 (min bound) = 14 hot, 24 cold.
	if split.HotBytes != 14 || split.ColdBytes != 24 {
		t.Errorf("split widths: hot=%d cold=%d", split.HotBytes, split.ColdBytes)
	}
	if split.HotBytes >= full.HotBytes {
		t.Error("splitting must shrink the hot working set")
	}
}

func TestCountSplitLongRun(t *testing.T) {
	// Push a single group past multiple 16-bit flushes through the
	// table-integrated path.
	flags := core.Flags{Split: true}
	const n = 300_000
	keys := make([]int64, n)
	vals := make([]int64, n)
	res, _, _ := aggHarness(t, flags,
		[]Spec{{Func: CountStar, InType: vec.I64, MaxRows: n}},
		keys, vals, domain.Const(0))
	if got := res[0][0].Int64(); got != n {
		t.Errorf("count = %d, want %d", got, n)
	}
}

func TestOpSumPosVectorMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const groups = 8
	common := make([]uint64, groups)
	except := make([]int64, groups)
	full := make([]i128.Int, groups)
	// Many batches with values near 2^61: the fast path must hand over to
	// the checked path before any overflow is possible.
	const maxVal = int64(1) << 61
	for batch := 0; batch < 64; batch++ {
		g := make([]int32, 1024)
		v := make([]int64, 1024)
		for i := range g {
			g[i] = int32(rng.Intn(groups))
			v[i] = rng.Int63n(maxVal + 1)
		}
		OpSumPosVector(common, except, g, v, maxVal)
		FullSumPos(full, g, v)
	}
	for i := 0; i < groups; i++ {
		if CombineOpSum(common[i], except[i]) != full[i] {
			t.Errorf("group %d: vector-checked %v != full %v",
				i, CombineOpSum(common[i], except[i]), full[i])
		}
	}
}

func TestOpSumPosVectorWorstCaseWrap(t *testing.T) {
	// A batch whose worst-case product wraps uint64 must take the checked
	// path and still be correct.
	common := make([]uint64, 1)
	except := make([]int64, 1)
	full := make([]i128.Int, 1)
	g := make([]int32, 4096)
	v := make([]int64, 4096)
	for i := range v {
		v[i] = math.MaxInt64
	}
	OpSumPosVector(common, except, g, v, math.MaxInt64)
	FullSumPos(full, g, v)
	if CombineOpSum(common[0], except[0]) != full[0] {
		t.Error("wrap-guard failed")
	}
}
