package agg

import (
	"encoding/binary"
	"fmt"

	"ocht/internal/core"
	"ocht/internal/domain"
	"ocht/internal/i128"
	"ocht/internal/vec"
)

// Func enumerates the aggregate functions of Table I. AVG is rewritten
// into SUM and COUNT by the planner, as in the paper.
type Func uint8

// Aggregate functions.
const (
	Sum Func = iota
	Min
	Max
	Count     // COUNT(col): the planner filters NULLs before Update
	CountStar // COUNT(*)
)

func (f Func) String() string {
	switch f {
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Count:
		return "count"
	case CountStar:
		return "count(*)"
	}
	return "invalid"
}

// Spec describes one aggregate to maintain.
type Spec struct {
	Func    Func
	InType  vec.Type // input column type (drives the vanilla SUM width)
	InDom   domain.D // input value domain (drives SUM width and MIN/MAX bounds)
	MaxRows int64    // worst-case number of input rows (drives SUM width)
}

// kind is the resolved physical implementation of a Spec.
type kind uint8

const (
	kSumI64     kind = iota // sum provably fits 64 bits: 8B hot
	kSumFull128             // full 128-bit sum: 16B hot (the baseline)
	kSumSplit               // optimistic: 8B hot common + 8B cold carry
	kSumSplitPos
	kCountFull  // 8B hot
	kCountSplit // 2B hot + 8B cold
	kMinFull    // 8B hot
	kMinSplit   // 4B hot bound + 8B cold minimum
	kMaxFull
	kMaxSplit
	kMinStr // 8B hot string reference (0 = no value yet)
	kMaxStr
)

type layout struct {
	kind     kind
	hotOff   int
	coldOff  int
	domMin   int64
	maxRows  int64
	positive bool
}

// Aggregator lays aggregate state out across the hot and cold extra areas
// of a core.Table and provides vectorized update/finalize kernels.
type Aggregator struct {
	Flags   core.Flags
	Specs   []Spec
	layouts []layout
	// HotBytes and ColdBytes are the extra record widths to reserve when
	// creating the table.
	HotBytes  int
	ColdBytes int
}

// NewAggregator resolves the physical layout of the given aggregates
// under the given flags (Split selects the optimistic forms).
func NewAggregator(flags core.Flags, specs []Spec) *Aggregator {
	a := &Aggregator{Flags: flags, Specs: specs}
	for _, s := range specs {
		var l layout
		l.domMin = s.InDom.Min
		l.maxRows = s.MaxRows
		switch s.Func {
		case Sum:
			switch {
			case flags.Compress && domain.SumFitsInt64(s.InDom, s.MaxRows):
				// Domain derivation proves 64 bits suffice: no overflow
				// handling needed at all (Section II-A).
				l.kind = kSumI64
			case !flags.Compress && !flags.Split && s.InType.Width() <= 4:
				// Vanilla engines sum narrow integers in 64 bits by SQL
				// typing rules without any overflow analysis.
				l.kind = kSumI64
			case flags.Split && s.InDom.NonNegative():
				// Min/Max information proves all inputs non-negative:
				// the simplified overflow logic applies (Section III-A).
				l.kind = kSumSplitPos
				l.positive = true
			case flags.Split:
				l.kind = kSumSplit
			default:
				l.kind = kSumFull128
			}
		case Count, CountStar:
			if flags.Split {
				l.kind = kCountSplit
			} else {
				l.kind = kCountFull
			}
		case Min:
			switch {
			case s.InType == vec.Str:
				l.kind = kMinStr
			case flags.Split:
				l.kind = kMinSplit
			default:
				l.kind = kMinFull
			}
		case Max:
			switch {
			case s.InType == vec.Str:
				l.kind = kMaxStr
			case flags.Split:
				l.kind = kMaxSplit
			default:
				l.kind = kMaxFull
			}
		}
		l.hotOff = a.HotBytes
		l.coldOff = a.ColdBytes
		a.HotBytes += hotBytes(l.kind)
		a.ColdBytes += coldBytes(l.kind)
		a.layouts = append(a.layouts, l)
	}
	return a
}

func hotBytes(k kind) int {
	switch k {
	case kSumFull128:
		return 16
	case kCountSplit:
		return 2
	case kMinSplit, kMaxSplit:
		return 4
	default:
		return 8
	}
}

func coldBytes(k kind) int {
	switch k {
	case kSumSplit, kSumSplitPos, kCountSplit, kMinSplit, kMaxSplit:
		return 8
	default:
		return 0
	}
}

// Init sets the initial aggregate state of newly created group records.
// Records are zero-initialized by the table; only MIN/MAX need non-zero
// starting values.
func (a *Aggregator) Init(tab *core.Table, recs []int32) {
	minInit, maxInit := MinInitExcept, MaxInitExcept
	for ai, l := range a.layouts {
		switch l.kind {
		case kMinFull:
			for _, rec := range recs {
				binary.LittleEndian.PutUint64(a.hot(tab, rec, ai), uint64(minInit))
			}
		case kMaxFull:
			for _, rec := range recs {
				binary.LittleEndian.PutUint64(a.hot(tab, rec, ai), uint64(maxInit))
			}
		case kMinSplit:
			for _, rec := range recs {
				binary.LittleEndian.PutUint32(a.hot(tab, rec, ai), MinInitBound)
				binary.LittleEndian.PutUint64(a.cold(tab, rec, ai), uint64(minInit))
			}
		case kMaxSplit:
			for _, rec := range recs {
				binary.LittleEndian.PutUint32(a.hot(tab, rec, ai), MaxInitBound)
				binary.LittleEndian.PutUint64(a.cold(tab, rec, ai), uint64(maxInit))
			}
		}
	}
}

func (a *Aggregator) hot(tab *core.Table, rec int32, ai int) []byte {
	return tab.HotRow(rec)[a.layouts[ai].hotOff:]
}

func (a *Aggregator) cold(tab *core.Table, rec int32, ai int) []byte {
	return tab.ColdRow(rec)[a.layouts[ai].coldOff:]
}

// Update folds the active rows' input values into aggregate ai of their
// group records: recs[row] names the record of each active row. For
// CountStar, input may be nil.
func (a *Aggregator) Update(tab *core.Table, ai int, recs []int32, rows []int32, input *vec.Vector) {
	l := a.layouts[ai]
	var val func(int32) int64
	if input != nil {
		switch input.Typ {
		case vec.I64:
			d := input.I64
			val = func(r int32) int64 { return d[r] }
		case vec.I32:
			d := input.I32
			val = func(r int32) int64 { return int64(d[r]) }
		case vec.I16:
			d := input.I16
			val = func(r int32) int64 { return int64(d[r]) }
		case vec.I8:
			d := input.I8
			val = func(r int32) int64 { return int64(d[r]) }
		default:
			val = func(r int32) int64 { return input.Int64At(int(r)) }
		}
	}
	// Direct offsets into the raw record areas: the table cannot grow
	// during aggregate updates, so the buffers are stable here.
	hot := tab.RawHot()
	hw := tab.HotWidth()
	hOff := tab.Schema.KeyBytes() + l.hotOff
	cold := tab.RawCold()
	cw := tab.ColdWidth()
	cOff := tab.Schema.ColdBytes() + l.coldOff
	hotAt := func(r int32) []byte { return hot[int(recs[r])*hw+hOff:] }
	coldAt := func(r int32) []byte { return cold[int(recs[r])*cw+cOff:] }
	switch l.kind {
	case kSumI64:
		for _, r := range rows {
			b := hotAt(r)
			binary.LittleEndian.PutUint64(b, uint64(int64(binary.LittleEndian.Uint64(b))+val(r)))
		}
	case kSumFull128:
		for _, r := range rows {
			b := hotAt(r)
			x := i128.Int{Lo: binary.LittleEndian.Uint64(b), Hi: int64(binary.LittleEndian.Uint64(b[8:]))}
			x = i128.AddInt64(x, val(r))
			binary.LittleEndian.PutUint64(b, x.Lo)
			binary.LittleEndian.PutUint64(b[8:], uint64(x.Hi))
		}
	case kSumSplit:
		for _, r := range rows {
			v := val(r)
			hb := hotAt(r)
			old := binary.LittleEndian.Uint64(hb)
			sum := old + uint64(v)
			binary.LittleEndian.PutUint64(hb, sum)
			overflow := sum < uint64(v)
			positive := v >= 0
			if overflow == positive { // rare: carry/borrow into the cold area
				cb := coldAt(r)
				c := int64(binary.LittleEndian.Uint64(cb))
				if positive {
					c++
				} else {
					c--
				}
				binary.LittleEndian.PutUint64(cb, uint64(c))
			}
		}
	case kSumSplitPos:
		for _, r := range rows {
			v := uint64(val(r))
			hb := hotAt(r)
			old := binary.LittleEndian.Uint64(hb)
			sum := old + v
			binary.LittleEndian.PutUint64(hb, sum)
			if sum < old { // rare carry
				cb := coldAt(r)
				binary.LittleEndian.PutUint64(cb, binary.LittleEndian.Uint64(cb)+1)
			}
		}
	case kCountFull:
		for _, r := range rows {
			b := hotAt(r)
			binary.LittleEndian.PutUint64(b, binary.LittleEndian.Uint64(b)+1)
		}
	case kCountSplit:
		for _, r := range rows {
			hb := hotAt(r)
			c := binary.LittleEndian.Uint16(hb) + 1
			if c == 0xFFFF { // flush into the cold counter
				cb := coldAt(r)
				binary.LittleEndian.PutUint64(cb, binary.LittleEndian.Uint64(cb)+0xFFFF)
				c = 0
			}
			binary.LittleEndian.PutUint16(hb, c)
		}
	case kMinFull:
		for _, r := range rows {
			v := val(r)
			b := hotAt(r)
			if v < int64(binary.LittleEndian.Uint64(b)) {
				binary.LittleEndian.PutUint64(b, uint64(v))
			}
		}
	case kMaxFull:
		for _, r := range rows {
			v := val(r)
			b := hotAt(r)
			if v > int64(binary.LittleEndian.Uint64(b)) {
				binary.LittleEndian.PutUint64(b, uint64(v))
			}
		}
	case kMinSplit:
		for _, r := range rows {
			v := val(r)
			hb := hotAt(r)
			bv := boundOf(v, l.domMin)
			if bv > binary.LittleEndian.Uint32(hb) {
				continue // cannot become the new minimum: hot-only check
			}
			cb := coldAt(r)
			if v < int64(binary.LittleEndian.Uint64(cb)) {
				binary.LittleEndian.PutUint64(cb, uint64(v))
				binary.LittleEndian.PutUint32(hb, bv)
			}
		}
	case kMaxSplit:
		for _, r := range rows {
			v := val(r)
			hb := hotAt(r)
			bv := boundOf(v, l.domMin)
			if bv < binary.LittleEndian.Uint32(hb) {
				continue // cannot become the new maximum
			}
			cb := coldAt(r)
			if v > int64(binary.LittleEndian.Uint64(cb)) {
				binary.LittleEndian.PutUint64(cb, uint64(v))
				binary.LittleEndian.PutUint32(hb, bv)
			}
		}
	case kMinStr, kMaxStr:
		// Lexicographic MIN/MAX over string references via the query's
		// string store; reference 0 marks "no value yet".
		store := tab.Schema.Store
		wantLess := l.kind == kMinStr
		refs := input.Str
		for _, r := range rows {
			v := refs[r]
			b := hotAt(r)
			cur := vec.StrRef(binary.LittleEndian.Uint64(b))
			if cur == 0 {
				binary.LittleEndian.PutUint64(b, uint64(v))
				continue
			}
			c := store.Compare(v, cur)
			if (wantLess && c < 0) || (!wantLess && c > 0) {
				binary.LittleEndian.PutUint64(b, uint64(v))
			}
		}
	default:
		panic(fmt.Sprintf("agg: unknown kind %d", l.kind))
	}
}

// ResultType returns the output vector type of aggregate ai.
func (a *Aggregator) ResultType(ai int) vec.Type {
	switch a.layouts[ai].kind {
	case kSumFull128, kSumSplit, kSumSplitPos:
		return vec.I128
	case kMinStr, kMaxStr:
		return vec.Str
	default:
		return vec.I64
	}
}

// Result materializes aggregate ai of the given records into out at the
// given positions, recombining split state (common + exception).
func (a *Aggregator) Result(tab *core.Table, ai int, recs []int32, out *vec.Vector, rows []int32) {
	l := a.layouts[ai]
	for i, rec := range recs {
		r := int(rows[i])
		switch l.kind {
		case kSumI64, kCountFull, kMinFull, kMaxFull:
			out.SetInt64(r, int64(binary.LittleEndian.Uint64(a.hot(tab, rec, ai))))
		case kSumFull128:
			b := a.hot(tab, rec, ai)
			out.I128[r] = i128.Int{Lo: binary.LittleEndian.Uint64(b), Hi: int64(binary.LittleEndian.Uint64(b[8:]))}
		case kSumSplit, kSumSplitPos:
			common := binary.LittleEndian.Uint64(a.hot(tab, rec, ai))
			except := int64(binary.LittleEndian.Uint64(a.cold(tab, rec, ai)))
			out.I128[r] = CombineOpSum(common, except)
		case kCountSplit:
			common := binary.LittleEndian.Uint16(a.hot(tab, rec, ai))
			except := binary.LittleEndian.Uint64(a.cold(tab, rec, ai))
			out.SetInt64(r, CombineOpCount(common, except))
		case kMinSplit, kMaxSplit:
			out.SetInt64(r, int64(binary.LittleEndian.Uint64(a.cold(tab, rec, ai))))
		case kMinStr, kMaxStr:
			ref := vec.StrRef(binary.LittleEndian.Uint64(a.hot(tab, rec, ai)))
			if ref == 0 {
				ref = 1 // all inputs NULL: the null string reference
			}
			out.Str[r] = ref
		}
	}
}
