// Package agg implements the paper's aggregation kernels: the full-width
// 128-bit SUM baseline and the Optimistic Aggregates of Section III-A
// (Table I), which split each aggregate into a small frequently-accessed
// common case and a rarely-accessed exception.
//
// This file holds the columnar kernels exactly mirroring the paper's
// opsum pseudo-code; aggregator.go integrates the same logic into the
// NSM hot/cold records of the optimistically compressed hash table.
package agg

import "ocht/internal/i128"

// OpSum is the paper's opsum: a 64-bit unsigned common-case addition with
// a carry exception counter. It handles positive as well as negative
// values. common[g] accumulates the low 64 bits; except[g] counts carries
// (positive) and borrows (negative), so the true sum is
// except[g]*2^64 + common[g] in two's complement.
func OpSum(common []uint64, except []int64, groups []int32, values []int64) {
	for i, g := range groups {
		v := values[i]
		old := common[g]
		common[g] = old + uint64(v)
		// Rare: handle overflows.
		overflow := common[g] < uint64(v)
		positive := v >= 0
		if overflow == positive { // !(overflow ^ positive)
			if positive {
				except[g]++
			} else {
				except[g]--
			}
		}
	}
}

// OpSumPos is the positive-only variant: when Min/Max information proves
// the absence of negative values the overflow test simplifies, which the
// paper's micro-benchmarks show is the fastest flavour for values up to
// 2^61 (Figure 11).
func OpSumPos(common []uint64, except []int64, groups []int32, values []int64) {
	for i, g := range groups {
		v := uint64(values[i])
		old := common[g]
		sum := old + v
		common[g] = sum
		if sum < old { // carry
			except[g]++
		}
	}
}

// FullSum is the baseline: every update reads, widens and writes a full
// 128-bit aggregate.
func FullSum(aggs []i128.Int, groups []int32, values []int64) {
	for i, g := range groups {
		aggs[g] = i128.AddInt64(aggs[g], values[i])
	}
}

// FullSumPos is the baseline restricted to non-negative inputs; the
// sign-extension disappears but the 128-bit read-modify-write remains.
func FullSumPos(aggs []i128.Int, groups []int32, values []int64) {
	for i, g := range groups {
		a := aggs[g]
		lo := a.Lo + uint64(values[i])
		if lo < a.Lo {
			a.Hi++
		}
		a.Lo = lo
		aggs[g] = a
	}
}

// CombineOpSum reconstructs the exact 128-bit sum of a split aggregate.
func CombineOpSum(common uint64, except int64) i128.Int {
	return i128.Int{Hi: except, Lo: common}
}

// OpCount16 is the optimistic COUNT: a 16-bit common-case counter flushed
// into the 64-bit exception after 2^16-1 iterations (Table I).
func OpCount16(common []uint16, except []uint64, groups []int32) {
	for _, g := range groups {
		common[g]++
		if common[g] == 0xFFFF {
			except[g] += 0xFFFF
			common[g] = 0
		}
	}
}

// CombineOpCount reconstructs the exact count of a split counter.
func CombineOpCount(common uint16, except uint64) int64 {
	return int64(except + uint64(common))
}

// OpMin is the optimistic MIN of Table I: bounds[g] holds a saturating
// 32-bit upper bound on the true minimum (relative to domMin), and the
// full minimum lives in the exception area. Values whose bound exceeds
// the stored bound cannot become the new minimum and never touch the
// exception (cold) side.
func OpMin(bounds []uint32, except []int64, groups []int32, values []int64, domMin int64) {
	for i, g := range groups {
		v := values[i]
		bv := boundOf(v, domMin)
		if bv > bounds[g] {
			continue // cannot become the new minimum
		}
		if v < except[g] {
			except[g] = v
			bounds[g] = boundOf(v, domMin)
		}
	}
}

// OpMax is the symmetric optimistic MAX: bounds[g] is a saturating lower
// bound on the true maximum.
func OpMax(bounds []uint32, except []int64, groups []int32, values []int64, domMin int64) {
	for i, g := range groups {
		v := values[i]
		bv := boundOf(v, domMin)
		if bv < bounds[g] {
			continue // cannot become the new maximum
		}
		if v > except[g] {
			except[g] = v
			bounds[g] = boundOf(v, domMin)
		}
	}
}

// boundOf maps a value to its saturating 32-bit order-preserving code
// relative to the domain minimum: v1 <= v2 implies boundOf(v1) <=
// boundOf(v2), with ties only at the saturation point.
func boundOf(v, domMin int64) uint32 {
	d := uint64(v) - uint64(domMin) // v >= domMin by domain derivation
	if v < domMin {                 // defensive: clamp below-domain outliers
		return 0
	}
	if d > 0xFFFFFFFF {
		return 0xFFFFFFFF
	}
	return uint32(d)
}

// MinInitBound and MinInitExcept are the initial state of an OpMin group:
// the bound is saturated high so the first value always passes, and the
// exception starts at +infinity.
const (
	MinInitBound  = uint32(0xFFFFFFFF)
	MinInitExcept = int64(1<<63 - 1)
	MaxInitBound  = uint32(0)
	MaxInitExcept = int64(-1 << 63)
)

// OpSumPosVector is the paper's deferred future-work idea (Section III-B):
// "for aggregates with few groups ... keep more aggressive overflow bounds
// that guarantee that a batch of aggregate updates cannot overflow the
// partial aggregate. This way, overflow checking could be done once per
// vector, rather than for every tuple."
//
// Before each batch it checks every group's headroom against the batch's
// worst case (len(values) * maxVal); if no group can overflow, it runs a
// check-free addition loop. Inputs must be non-negative and bounded by
// maxVal. Only profitable for small group counts, where the pre-check is
// cheap relative to the batch.
func OpSumPosVector(common []uint64, except []int64, groups []int32, values []int64, maxVal int64) {
	worst := uint64(len(values)) * uint64(maxVal)
	// Detect wrap-around of the worst-case product itself.
	safe := maxVal >= 0 && (maxVal == 0 || worst/uint64(maxVal) == uint64(len(values)))
	if safe {
		limit := ^uint64(0) - worst
		for _, c := range common {
			if c > limit {
				safe = false
				break
			}
		}
	}
	if safe {
		// Check-free fast path: no per-tuple overflow handling at all.
		for i, g := range groups {
			common[g] += uint64(values[i])
		}
		return
	}
	OpSumPos(common, except, groups, values)
}
