package agg

import (
	"encoding/binary"
	"fmt"

	"ocht/internal/core"
	"ocht/internal/vec"
)

// Merge folds the aggregate state of record srcRec in src into record
// dstRec in dst. Both tables must have been created from the same
// Aggregator (same flags and specs), so their hot/cold layouts agree; the
// parallel executor uses this to combine per-worker partial aggregates
// into one table during the merge phase.
//
// Split states merge exactly: the optimistic common/exception pair of a
// SUM is the (Lo, Hi) of a 128-bit two's-complement sum, so merging is a
// 128-bit addition whose unsigned low-word carry feeds the exception
// word; COUNT hot counters re-apply the 0xFFFF flush rule; MIN/MAX pick
// the winning cold (exact) value and take its hot bound along, preserving
// the bound invariant.
func (a *Aggregator) Merge(dst *core.Table, dstRec int32, src *core.Table, srcRec int32) {
	for ai, l := range a.layouts {
		dh := a.hot(dst, dstRec, ai)
		sh := a.hot(src, srcRec, ai)
		switch l.kind {
		case kSumI64:
			binary.LittleEndian.PutUint64(dh,
				binary.LittleEndian.Uint64(dh)+binary.LittleEndian.Uint64(sh))
		case kSumFull128:
			dLo := binary.LittleEndian.Uint64(dh)
			sLo := binary.LittleEndian.Uint64(sh)
			lo := dLo + sLo
			hi := int64(binary.LittleEndian.Uint64(dh[8:])) + int64(binary.LittleEndian.Uint64(sh[8:]))
			if lo < dLo {
				hi++
			}
			binary.LittleEndian.PutUint64(dh, lo)
			binary.LittleEndian.PutUint64(dh[8:], uint64(hi))
		case kSumSplit, kSumSplitPos:
			dc := a.cold(dst, dstRec, ai)
			sc := a.cold(src, srcRec, ai)
			dLo := binary.LittleEndian.Uint64(dh)
			sLo := binary.LittleEndian.Uint64(sh)
			lo := dLo + sLo
			except := int64(binary.LittleEndian.Uint64(dc)) + int64(binary.LittleEndian.Uint64(sc))
			if lo < dLo { // carry from the common parts
				except++
			}
			binary.LittleEndian.PutUint64(dh, lo)
			binary.LittleEndian.PutUint64(dc, uint64(except))
		case kCountFull:
			binary.LittleEndian.PutUint64(dh,
				binary.LittleEndian.Uint64(dh)+binary.LittleEndian.Uint64(sh))
		case kCountSplit:
			dc := a.cold(dst, dstRec, ai)
			sc := a.cold(src, srcRec, ai)
			sum := uint32(binary.LittleEndian.Uint16(dh)) + uint32(binary.LittleEndian.Uint16(sh))
			except := binary.LittleEndian.Uint64(dc) + binary.LittleEndian.Uint64(sc)
			if sum >= 0xFFFF { // both hot counters are < 0xFFFF: one flush suffices
				sum -= 0xFFFF
				except += 0xFFFF
			}
			binary.LittleEndian.PutUint16(dh, uint16(sum))
			binary.LittleEndian.PutUint64(dc, except)
		case kMinFull:
			if v := int64(binary.LittleEndian.Uint64(sh)); v < int64(binary.LittleEndian.Uint64(dh)) {
				binary.LittleEndian.PutUint64(dh, uint64(v))
			}
		case kMaxFull:
			if v := int64(binary.LittleEndian.Uint64(sh)); v > int64(binary.LittleEndian.Uint64(dh)) {
				binary.LittleEndian.PutUint64(dh, uint64(v))
			}
		case kMinSplit:
			dc := a.cold(dst, dstRec, ai)
			sc := a.cold(src, srcRec, ai)
			if v := int64(binary.LittleEndian.Uint64(sc)); v < int64(binary.LittleEndian.Uint64(dc)) {
				binary.LittleEndian.PutUint64(dc, uint64(v))
				copy(dh[:4], sh[:4]) // winner's saturating bound
			}
		case kMaxSplit:
			dc := a.cold(dst, dstRec, ai)
			sc := a.cold(src, srcRec, ai)
			if v := int64(binary.LittleEndian.Uint64(sc)); v > int64(binary.LittleEndian.Uint64(dc)) {
				binary.LittleEndian.PutUint64(dc, uint64(v))
				copy(dh[:4], sh[:4])
			}
		case kMinStr, kMaxStr:
			sv := vec.StrRef(binary.LittleEndian.Uint64(sh))
			if sv == 0 {
				continue // src group saw no values
			}
			dv := vec.StrRef(binary.LittleEndian.Uint64(dh))
			if dv == 0 {
				binary.LittleEndian.PutUint64(dh, uint64(sv))
				continue
			}
			c := dst.Schema.Store.Compare(sv, dv)
			if (l.kind == kMinStr && c < 0) || (l.kind == kMaxStr && c > 0) {
				binary.LittleEndian.PutUint64(dh, uint64(sv))
			}
		default:
			panic(fmt.Sprintf("agg: merge of unknown kind %d", l.kind))
		}
	}
}
