package agg

import (
	"math"
	"testing"

	"ocht/internal/core"
	"ocht/internal/domain"
	"ocht/internal/i128"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

// allFlagCombos are the flag settings a distributed reducer can meet:
// every optimistic layout kind appears under at least one of them.
var allFlagCombos = []core.Flags{
	{},
	{Compress: true},
	{Split: true},
	{Compress: true, Split: true},
}

// TestMergeEmptyPartialIdentity checks that merging a freshly initialized
// record — a shard that saw zero rows for the group — into a populated
// record leaves every aggregate unchanged, and that merging two empty
// records yields the initial state. The distributed reducer relies on
// this: a shard with no rows for a group contributes the Init sentinels
// (MaxInt64 for MIN, MinInt64 for MAX, zero sums and counts), which must
// act as merge identities.
func TestMergeEmptyPartialIdentity(t *testing.T) {
	keyDom := domain.New(0, 4)
	valDom := domain.New(-1000, math.MaxInt64)
	specs := []Spec{
		{Func: Sum, InType: vec.I64, InDom: valDom, MaxRows: 1 << 40},
		{Func: Count, InType: vec.I64, InDom: valDom, MaxRows: 1 << 20},
		{Func: Min, InType: vec.I64, InDom: valDom, MaxRows: 1 << 20},
		{Func: Max, InType: vec.I64, InDom: valDom, MaxRows: 1 << 20},
	}
	for _, flags := range allFlagCombos {
		want, tabA, agA := aggHarness(t, flags, specs,
			[]int64{1, 1, 1}, []int64{7, -3, 1 << 40}, keyDom)

		// An "empty shard": same key inserted, Init run, no updates.
		store := strs.NewStore(flags.UseUSSR)
		schema, err := core.NewKeySchema(flags, []core.KeyCol{{Name: "k", Type: vec.I64, Dom: keyDom}}, store)
		if err != nil {
			t.Fatal(err)
		}
		agB := NewAggregator(flags, specs)
		tabB := core.NewTable(schema, agB.HotBytes, agB.ColdBytes, 4)
		kv := vec.New(vec.I64, 1)
		kv.I64[0] = 1
		rows := []int32{0}
		p := schema.Prepare([]*vec.Vector{kv}, rows)
		hashes := make([]uint64, 1)
		schema.Hash(p, rows, hashes)
		recs := make([]int32, 1)
		_, newRecs := tabB.FindOrInsert(p, hashes, rows, recs)
		agB.Init(tabB, newRecs)

		// empty → populated: no change.
		mergeInto(t, tabA, agA, tabB)
		got := extractByKey(t, tabA, agA, len(specs))
		for ai := range specs {
			if got[1][ai] != want[1][ai] {
				t.Errorf("flags %+v agg %d: empty-partial merge changed %v to %v",
					flags, ai, want[1][ai], got[1][ai])
			}
		}

		// empty → empty: still the identity (MIN sentinel MaxInt64, MAX
		// sentinel MinInt64, zero sum/count).
		agA.Merge(tabB, recs[0], tabB, recs[0])
		emptied := extractByKey(t, tabB, agB, len(specs))
		wantEmpty := []i128.Int{
			i128.FromInt64(0), i128.FromInt64(0),
			i128.FromInt64(MinInitExcept), i128.FromInt64(MaxInitExcept),
		}
		for ai := range specs {
			if emptied[1][ai] != wantEmpty[ai] {
				t.Errorf("flags %+v agg %d: empty+empty merge = %v, want identity %v",
					flags, ai, emptied[1][ai], wantEmpty[ai])
			}
		}
	}
}

// TestMergeSingleShardOnlyGroups pins the case where hash partitioning
// sends every row of some groups to one shard: after merging, groups
// present on only one side must come through bit-exact under every flag
// combination, alongside groups both shards touched.
func TestMergeSingleShardOnlyGroups(t *testing.T) {
	keyDom := domain.New(0, 10)
	valDom := domain.New(math.MinInt64+1, math.MaxInt64)
	specs := []Spec{
		{Func: Sum, InType: vec.I64, InDom: valDom, MaxRows: 1 << 40},
		{Func: CountStar, MaxRows: 1 << 20},
		{Func: Min, InType: vec.I64, InDom: valDom, MaxRows: 1 << 20},
		{Func: Max, InType: vec.I64, InDom: valDom, MaxRows: 1 << 20},
	}
	// Key 3 lives only on shard A, key 7 only on shard B, key 5 on both.
	keysA := []int64{3, 3, 5}
	valsA := []int64{math.MaxInt64 - 2, -17, 40}
	keysB := []int64{7, 5, 7}
	valsB := []int64{-(math.MaxInt64 - 5), -40, 1 << 45}
	whole, _, _ := aggHarness(t, core.Flags{}, specs,
		append(append([]int64{}, keysA...), keysB...),
		append(append([]int64{}, valsA...), valsB...), keyDom)
	for _, flags := range allFlagCombos {
		_, tabA, agA := aggHarness(t, flags, specs, keysA, valsA, keyDom)
		_, tabB, _ := aggHarness(t, flags, specs, keysB, valsB, keyDom)
		mergeInto(t, tabA, agA, tabB)
		if tabA.Len() != 3 {
			t.Fatalf("flags %+v: merged table has %d groups, want 3", flags, tabA.Len())
		}
		got := extractByKey(t, tabA, agA, len(specs))
		for k, wantAggs := range whole {
			for ai, w := range wantAggs {
				if got[k][ai] != w {
					t.Errorf("flags %+v key %d agg %d: merged %v want %v",
						flags, k, ai, got[k][ai], w)
				}
			}
		}
	}
}

// TestMergeSkewedMinMaxCarries drives the split MIN/MAX layouts through a
// skewed shard split: one shard holds a single extreme row per group, the
// other holds everything else, with values beyond the 32-bit hot bound
// range and below the domain minimum used for bound clamping. The merge
// must carry the exact cold value and the winner's saturating bound in
// both merge directions.
func TestMergeSkewedMinMaxCarries(t *testing.T) {
	keyDom := domain.New(0, 4)
	valDom := domain.New(-50, math.MaxInt64)
	specs := []Spec{
		{Func: Min, InType: vec.I64, InDom: valDom, MaxRows: 1 << 20},
		{Func: Max, InType: vec.I64, InDom: valDom, MaxRows: 1 << 20},
	}
	// Shard A: one row per group, holding the global extreme for key 0
	// (tiny min) but an unremarkable value for key 1. Shard B: bulk rows
	// whose values saturate the 32-bit bound (boundOf → 0xFFFFFFFF).
	keysA := []int64{0, 1}
	valsA := []int64{-50, 12}
	keysB := []int64{0, 0, 1, 1, 1}
	valsB := []int64{math.MaxInt64 - 1, 1 << 40, math.MaxInt64, -49, 3}
	whole, _, _ := aggHarness(t, core.Flags{}, specs,
		append(append([]int64{}, keysA...), keysB...),
		append(append([]int64{}, valsA...), valsB...), keyDom)
	for _, flags := range allFlagCombos {
		// Both directions: skewed-into-bulk and bulk-into-skewed.
		for dir := 0; dir < 2; dir++ {
			ka, va, kb, vb := keysA, valsA, keysB, valsB
			if dir == 1 {
				ka, va, kb, vb = keysB, valsB, keysA, valsA
			}
			_, dst, agD := aggHarness(t, flags, specs, ka, va, keyDom)
			_, src, _ := aggHarness(t, flags, specs, kb, vb, keyDom)
			mergeInto(t, dst, agD, src)
			got := extractByKey(t, dst, agD, len(specs))
			for k, wantAggs := range whole {
				for ai, w := range wantAggs {
					if got[k][ai] != w {
						t.Errorf("flags %+v dir %d key %d agg %d: merged %v want %v",
							flags, dir, k, ai, got[k][ai], w)
					}
				}
			}
		}
	}
}

// TestMergeStringAllNullGroups covers the string MIN/MAX no-value marker
// (reference 0) the reducer meets when a shard's group was entirely NULL:
// null source is skipped, null destination adopts the source, and two
// null sides stay null (Result emits the null string reference 1).
func TestMergeStringAllNullGroups(t *testing.T) {
	flags := core.Flags{}
	store := strs.NewStore(false)
	keyDom := domain.New(0, 4)
	schema, err := core.NewKeySchema(flags, []core.KeyCol{{Name: "k", Type: vec.I64, Dom: keyDom}}, store)
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{Func: Min, InType: vec.Str, MaxRows: 16},
		{Func: Max, InType: vec.Str, MaxRows: 16},
	}
	ag := NewAggregator(flags, specs)
	if ag.layouts[0].kind != kMinStr || ag.layouts[1].kind != kMaxStr {
		t.Fatalf("string specs resolved to kinds %d/%d", ag.layouts[0].kind, ag.layouts[1].kind)
	}
	newTab := func() *core.Table {
		return core.NewTable(schema, ag.HotBytes, ag.ColdBytes, 4)
	}
	insertKey := func(tab *core.Table, k int64) int32 {
		kv := vec.New(vec.I64, 1)
		kv.I64[0] = k
		rows := []int32{0}
		p := schema.Prepare([]*vec.Vector{kv}, rows)
		hashes := make([]uint64, 1)
		schema.Hash(p, rows, hashes)
		recs := make([]int32, 1)
		_, newRecs := tab.FindOrInsert(p, hashes, rows, recs)
		ag.Init(tab, newRecs)
		return recs[0]
	}
	update := func(tab *core.Table, rec int32, s string) {
		sv := vec.New(vec.Str, 1)
		sv.Str[0] = store.Intern(s)
		for ai := range specs {
			ag.Update(tab, ai, []int32{rec}, []int32{0}, sv)
		}
	}
	result := func(tab *core.Table, rec int32, ai int) vec.StrRef {
		out := vec.New(vec.Str, 1)
		ag.Result(tab, ai, []int32{rec}, out, []int32{0})
		return out.Str[0]
	}

	withVals := newTab()
	rv := insertKey(withVals, 1)
	update(withVals, rv, "melon")
	update(withVals, rv, "apple")
	allNull := newTab()
	rn := insertKey(allNull, 1)

	// Null source skipped: values survive unchanged.
	ag.Merge(withVals, rv, allNull, rn)
	if got := store.Get(result(withVals, rv, 0)); got != "apple" {
		t.Errorf("min after null-src merge = %q, want apple", got)
	}
	if got := store.Get(result(withVals, rv, 1)); got != "melon" {
		t.Errorf("max after null-src merge = %q, want melon", got)
	}

	// Null destination adopts the source's value.
	allNull2 := newTab()
	rn2 := insertKey(allNull2, 1)
	ag.Merge(allNull2, rn2, withVals, rv)
	if got := store.Get(result(allNull2, rn2, 0)); got != "apple" {
		t.Errorf("min after adopt merge = %q, want apple", got)
	}

	// Null + null stays null: Result must emit the null reference.
	bothA, bothB := newTab(), newTab()
	ra, rb := insertKey(bothA, 1), insertKey(bothB, 1)
	ag.Merge(bothA, ra, bothB, rb)
	if got := result(bothA, ra, 0); got != strs.NullRef {
		t.Errorf("null+null min ref = %d, want null ref %d", got, strs.NullRef)
	}
}

// TestLoadPartialRoundTrip checks LoadPartial against Result: loading a
// finalized value into a scratch record and re-finalizing must reproduce
// it exactly for every layout kind, including values past 64-bit sums,
// counts past the 16-bit hot counter, and MIN/MAX beyond the 32-bit
// bound range.
func TestLoadPartialRoundTrip(t *testing.T) {
	keyDom := domain.New(0, 4)
	valDom := domain.New(-50, math.MaxInt64)
	posDom := domain.New(0, math.MaxInt64)
	specs := []Spec{
		{Func: Sum, InType: vec.I64, InDom: valDom, MaxRows: 1 << 40},
		{Func: Sum, InType: vec.I64, InDom: posDom, MaxRows: 1 << 40},
		{Func: Count, InType: vec.I64, InDom: valDom, MaxRows: 1 << 40},
		{Func: Min, InType: vec.I64, InDom: valDom, MaxRows: 1 << 20},
		{Func: Max, InType: vec.I64, InDom: valDom, MaxRows: 1 << 20},
	}
	sums := []i128.Int{
		i128.FromInt64(0),
		i128.FromInt64(-7),
		i128.FromInt64(math.MaxInt64),
		{Hi: 3, Lo: 0xDEADBEEF},            // past 64 bits
		{Hi: -1, Lo: ^uint64(0) - 41},      // negative 128-bit value
	}
	ints := []int64{0, -50, 123456789, math.MaxInt64, MinInitExcept, MaxInitExcept}
	for _, flags := range allFlagCombos {
		store := strs.NewStore(flags.UseUSSR)
		schema, err := core.NewKeySchema(flags, []core.KeyCol{{Name: "k", Type: vec.I64, Dom: keyDom}}, store)
		if err != nil {
			t.Fatal(err)
		}
		ag := NewAggregator(flags, specs)
		tab := core.NewTable(schema, ag.HotBytes, ag.ColdBytes, 4)
		kv := vec.New(vec.I64, 1)
		rows := []int32{0}
		p := schema.Prepare([]*vec.Vector{kv}, rows)
		hashes := make([]uint64, 1)
		schema.Hash(p, rows, hashes)
		recs := make([]int32, 1)
		_, newRecs := tab.FindOrInsert(p, hashes, rows, recs)
		ag.Init(tab, newRecs)
		rec := recs[0]

		for ai := 0; ai < 2; ai++ { // the two SUM layouts
			for _, s := range sums {
				ag.LoadPartial(tab, rec, ai, Partial{Sum: s})
				out := vec.New(ag.ResultType(ai), 1)
				ag.Result(tab, ai, []int32{rec}, out, rows)
				var got i128.Int
				if out.Typ == vec.I128 {
					got = out.I128[0]
				} else {
					got = i128.FromInt64(out.I64[0])
				}
				// kSumI64 can only represent 64-bit values; skip the wide ones.
				if ag.layouts[ai].kind == kSumI64 && (s.Hi != 0 && s.Hi != -1) {
					continue
				}
				if got != s {
					t.Errorf("flags %+v sum agg %d: round-trip %v -> %v", flags, ai, s, got)
				}
			}
		}
		for _, ai := range []int{2, 3, 4} { // COUNT, MIN, MAX
			for _, v := range ints {
				if ai == 2 && v < 0 {
					continue // counts are non-negative
				}
				ag.LoadPartial(tab, rec, ai, Partial{I: v})
				out := vec.New(ag.ResultType(ai), 1)
				ag.Result(tab, ai, []int32{rec}, out, rows)
				if out.I64[0] != v {
					t.Errorf("flags %+v agg %d: round-trip %d -> %d", flags, ai, v, out.I64[0])
				}
			}
		}
	}
}

// TestLoadPartialMergeMatchesDirect simulates the scatter-gather reducer
// end to end: three skewed "shards" aggregate disjoint row ranges, their
// finalized per-group values are reloaded through LoadPartial into a
// one-record scratch table, and Merge folds them into the coordinator's
// table. The result must match aggregating the whole data set directly —
// including the 0xFFFF count-flush interaction when a reloaded whole
// count meets a hot counter, and sum carries across the (Lo, Hi) words.
func TestLoadPartialMergeMatchesDirect(t *testing.T) {
	const n = 200_000
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i % 3)
		switch i % 5 {
		case 0:
			vals[i] = math.MaxInt64 - int64(i%9) // force 128-bit sums
		case 1:
			vals[i] = -(math.MaxInt64 - int64(i%7))
		default:
			vals[i] = int64(i)<<18 - 1<<36 // beyond 32-bit bounds
		}
	}
	keyDom := domain.New(0, 4)
	valDom := domain.New(math.MinInt64+1, math.MaxInt64)
	specs := []Spec{
		{Func: Sum, InType: vec.I64, InDom: valDom, MaxRows: 1 << 40},
		{Func: CountStar, MaxRows: 1 << 40},
		{Func: Min, InType: vec.I64, InDom: valDom, MaxRows: 1 << 20},
		{Func: Max, InType: vec.I64, InDom: valDom, MaxRows: 1 << 20},
	}
	// Heavily skewed split: 70% / 29.9% / 0.1%.
	cuts := []int{0, n * 7 / 10, n - n/1000, n}
	for _, flags := range allFlagCombos {
		whole, _, _ := aggHarness(t, flags, specs, keys, vals, keyDom)

		// The coordinator's merge-side table and the one-record scratch
		// table, sharing one aggregator as dist's reducer does.
		store := strs.NewStore(flags.UseUSSR)
		schema, err := core.NewKeySchema(flags, []core.KeyCol{{Name: "k", Type: vec.I64, Dom: keyDom}}, store)
		if err != nil {
			t.Fatal(err)
		}
		ag := NewAggregator(flags, specs)
		dst := core.NewTable(schema, ag.HotBytes, ag.ColdBytes, 8)
		scratch := core.NewTable(schema, ag.HotBytes, ag.ColdBytes, 4)
		kv := vec.New(vec.I64, 1)
		rows := []int32{0}
		p := schema.Prepare([]*vec.Vector{kv}, rows)
		hashes := make([]uint64, 1)
		schema.Hash(p, rows, hashes)
		srecs := make([]int32, 1)
		scratch.FindOrInsert(p, hashes, rows, srecs)
		srec := srecs[0]

		for s := 0; s+1 < len(cuts); s++ {
			// Shard s computes and finalizes its partials...
			_, stab, sag := aggHarness(t, flags, specs,
				keys[cuts[s]:cuts[s+1]], vals[cuts[s]:cuts[s+1]], keyDom)
			nG := stab.Len()
			recIdx := make([]int32, nG)
			prows := make([]int32, nG)
			for i := range recIdx {
				recIdx[i], prows[i] = int32(i), int32(i)
			}
			keyOut := vec.New(vec.I64, nG)
			stab.LoadKey(0, recIdx, keyOut, prows)
			outs := make([]*vec.Vector, len(specs))
			for ai := range specs {
				outs[ai] = vec.New(sag.ResultType(ai), nG)
				sag.Result(stab, ai, recIdx, outs[ai], prows)
			}
			// ...and the coordinator reduces them row by row.
			for i := 0; i < nG; i++ {
				kv.I64[0] = keyOut.I64[i]
				p := schema.Prepare([]*vec.Vector{kv}, rows)
				schema.Hash(p, rows, hashes)
				recs := make([]int32, 1)
				_, newRecs := dst.FindOrInsert(p, hashes, rows, recs)
				ag.Init(dst, newRecs)
				for ai := range specs {
					var part Partial
					if outs[ai].Typ == vec.I128 {
						part.Sum = outs[ai].I128[i]
					} else if ag.layouts[ai].kind == kSumI64 {
						part.Sum = i128.FromInt64(outs[ai].I64[i])
					} else {
						part.I = outs[ai].I64[i]
					}
					ag.LoadPartial(scratch, srec, ai, part)
				}
				ag.Merge(dst, recs[0], scratch, srec)
			}
		}

		got := extractByKey(t, dst, ag, len(specs))
		for k, wantAggs := range whole {
			for ai, w := range wantAggs {
				if got[k][ai] != w {
					t.Errorf("flags %+v key %d agg %d: reduced %v want %v",
						flags, k, ai, got[k][ai], w)
				}
			}
		}
	}
}

// extractByKey re-finalizes every group of tab into a key → aggregate
// values map, widening 64-bit results to i128 for uniform comparison.
func extractByKey(t *testing.T, tab *core.Table, ag *Aggregator, nSpecs int) map[int64][]i128.Int {
	t.Helper()
	nG := tab.Len()
	recIdx := make([]int32, nG)
	rows := make([]int32, nG)
	for i := range recIdx {
		recIdx[i], rows[i] = int32(i), int32(i)
	}
	keyOut := vec.New(vec.I64, nG)
	tab.LoadKey(0, recIdx, keyOut, rows)
	res := map[int64][]i128.Int{}
	for ai := 0; ai < nSpecs; ai++ {
		out := vec.New(ag.ResultType(ai), nG)
		ag.Result(tab, ai, recIdx, out, rows)
		for i := 0; i < nG; i++ {
			k := keyOut.I64[i]
			for len(res[k]) <= ai {
				res[k] = append(res[k], i128.Int{})
			}
			if out.Typ == vec.I128 {
				res[k][ai] = out.I128[i]
			} else {
				res[k][ai] = i128.FromInt64(out.I64[i])
			}
		}
	}
	return res
}
