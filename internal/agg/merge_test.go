package agg

import (
	"math"
	"math/rand"
	"testing"

	"ocht/internal/core"
	"ocht/internal/domain"
	"ocht/internal/i128"
	"ocht/internal/vec"
)

// mergeInto folds every record of src into dst, the way the parallel
// driver's merge phase does: load the key back, find-or-insert it in dst,
// then combine the aggregate states record by record.
func mergeInto(t *testing.T, dstTab *core.Table, dstAg *Aggregator, srcTab *core.Table) {
	t.Helper()
	n := srcTab.Len()
	for base := 0; base < n; base += vec.Size {
		cnt := n - base
		if cnt > vec.Size {
			cnt = vec.Size
		}
		recIdx := make([]int32, cnt)
		rows := make([]int32, cnt)
		for i := range recIdx {
			recIdx[i], rows[i] = int32(base+i), int32(i)
		}
		keys := vec.New(vec.I64, cnt)
		srcTab.LoadKey(0, recIdx, keys, rows)
		p := dstTab.Schema.Prepare([]*vec.Vector{keys}, rows)
		hashes := make([]uint64, cnt)
		dstTab.Schema.Hash(p, rows, hashes)
		recs := make([]int32, cnt)
		_, newRecs := dstTab.FindOrInsert(p, hashes, rows, recs)
		dstAg.Init(dstTab, newRecs)
		for i := 0; i < cnt; i++ {
			dstAg.Merge(dstTab, recs[i], srcTab, recIdx[i])
		}
	}
}

// TestMergeMatchesSingleTable aggregates a data set whole and in two
// halves (merging the second table into the first) under every flag
// combination, and demands identical per-group results. The value
// distribution forces the optimistic machinery through its exception
// paths: sums carry past 64 bits, per-group counts overflow the 16-bit
// hot counter, min/max values exceed the 32-bit hot bound range.
func TestMergeMatchesSingleTable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 160_000
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Intn(2)) // few groups: counts overflow 0xFFFF
		switch rng.Intn(3) {
		case 0:
			vals[i] = math.MaxInt64 - int64(rng.Intn(7)) // sum carries
		case 1:
			vals[i] = -(math.MaxInt64 - int64(rng.Intn(7)))
		default:
			vals[i] = rng.Int63n(1<<40) - 1<<39 // beyond 32-bit bounds
		}
	}
	keyDom := domain.New(0, 4)
	valDom := domain.New(math.MinInt64+1, math.MaxInt64)
	specs := []Spec{
		{Func: Sum, InType: vec.I64, InDom: valDom, MaxRows: 1 << 40},
		{Func: Count, InType: vec.I64, InDom: valDom, MaxRows: n},
		{Func: CountStar, MaxRows: n},
		{Func: Min, InType: vec.I64, InDom: valDom, MaxRows: n},
		{Func: Max, InType: vec.I64, InDom: valDom, MaxRows: n},
	}
	for _, flags := range []core.Flags{
		{},
		{Compress: true},
		{Split: true},
		{Compress: true, Split: true},
	} {
		whole, _, _ := aggHarness(t, flags, specs, keys, vals, keyDom)
		_, tabA, agA := aggHarness(t, flags, specs, keys[:n/2], vals[:n/2], keyDom)
		_, tabB, _ := aggHarness(t, flags, specs, keys[n/2:], vals[n/2:], keyDom)
		mergeInto(t, tabA, agA, tabB)

		// Re-extract tabA's merged state and compare per key.
		nG := tabA.Len()
		recIdx := make([]int32, nG)
		rows := make([]int32, nG)
		for i := range recIdx {
			recIdx[i], rows[i] = int32(i), int32(i)
		}
		keyOut := vec.New(vec.I64, nG)
		tabA.LoadKey(0, recIdx, keyOut, rows)
		for ai := range specs {
			out := vec.New(agA.ResultType(ai), nG)
			agA.Result(tabA, ai, recIdx, out, rows)
			for i := 0; i < nG; i++ {
				var got i128.Int
				if out.Typ == vec.I128 {
					got = out.I128[i]
				} else {
					got = i128.FromInt64(out.I64[i])
				}
				want := whole[keyOut.I64[i]][ai]
				if got != want {
					t.Errorf("flags %+v agg %d key %d: merged %v want %v",
						flags, ai, keyOut.I64[i], got, want)
				}
			}
		}
	}
}

// TestMergeDisjointKeys checks that merging tables with non-overlapping
// key sets inserts the source groups unchanged.
func TestMergeDisjointKeys(t *testing.T) {
	keyDom := domain.New(0, 100)
	valDom := domain.New(-1000, 1000)
	specs := []Spec{
		{Func: Sum, InType: vec.I64, InDom: valDom, MaxRows: 10},
		{Func: Min, InType: vec.I64, InDom: valDom, MaxRows: 10},
	}
	flags := core.Flags{Compress: true, Split: true}
	_, tabA, agA := aggHarness(t, flags, specs, []int64{1, 1, 2}, []int64{10, 20, 30}, keyDom)
	_, tabB, _ := aggHarness(t, flags, specs, []int64{7, 7}, []int64{-5, 40}, keyDom)
	mergeInto(t, tabA, agA, tabB)
	if tabA.Len() != 3 {
		t.Fatalf("merged table has %d groups, want 3", tabA.Len())
	}
	recIdx := []int32{0, 1, 2}
	rows := []int32{0, 1, 2}
	keyOut := vec.New(vec.I64, 3)
	tabA.LoadKey(0, recIdx, keyOut, rows)
	sum := vec.New(agA.ResultType(0), 3)
	min := vec.New(agA.ResultType(1), 3)
	agA.Result(tabA, 0, recIdx, sum, rows)
	agA.Result(tabA, 1, recIdx, min, rows)
	want := map[int64][2]int64{1: {30, 10}, 2: {30, 30}, 7: {35, -5}}
	for i := 0; i < 3; i++ {
		w, okKey := want[keyOut.I64[i]]
		if !okKey {
			t.Fatalf("unexpected key %d", keyOut.I64[i])
		}
		var s int64
		if sum.Typ == vec.I128 {
			s = sum.I128[i].Int64()
		} else {
			s = sum.I64[i]
		}
		if s != w[0] || min.I64[i] != w[1] {
			t.Errorf("key %d: sum %d min %d, want %d %d", keyOut.I64[i], s, min.I64[i], w[0], w[1])
		}
	}
}
