package agg

import (
	"encoding/binary"
	"fmt"

	"ocht/internal/core"
	"ocht/internal/i128"
	"ocht/internal/vec"
)

// Partial is one finalized partial-aggregate value, as produced by
// Result on some other aggregation table — typically on another shard of
// a distributed query, where it crossed the wire as a row of the shard
// subquery result. LoadPartial writes it back into record state so that
// Merge can fold it exactly as the parallel worker merge folds in-memory
// partial tables: the scatter-gather reducer is the same code path as
// the single-node merge phase.
type Partial struct {
	// Null marks "this shard saw no values for the group" (string MIN/MAX
	// over an all-NULL group). Null partials must not be loaded; callers
	// skip the merge instead.
	Null bool
	// Sum carries SUM partials (exact 128-bit).
	Sum i128.Int
	// I carries COUNT and integer MIN/MAX partials.
	I int64
	// Str carries string MIN/MAX partials as a reference into the store
	// the destination table's key schema resolves against.
	Str vec.StrRef
}

// LoadPartial overwrites the state of aggregate ai in record rec with the
// given finalized partial value — the inverse of Result. Every hot and
// cold byte of the aggregate's layout is written, so a single scratch
// record can be reloaded for each incoming partial without re-running
// Init. The loaded state obeys the same invariants Update maintains:
// split sums store (Lo, Hi) as (common, exception), split counts keep the
// hot counter below the 0xFFFF flush threshold, and split MIN/MAX store
// the exact value cold with a conservative saturating bound hot — so a
// subsequent Merge from the scratch record is exact.
func (a *Aggregator) LoadPartial(tab *core.Table, rec int32, ai int, p Partial) {
	if p.Null {
		panic("agg: LoadPartial of a NULL partial; skip the merge instead")
	}
	l := a.layouts[ai]
	h := a.hot(tab, rec, ai)
	switch l.kind {
	case kSumI64:
		binary.LittleEndian.PutUint64(h, uint64(p.Sum.Int64()))
	case kSumFull128:
		binary.LittleEndian.PutUint64(h, p.Sum.Lo)
		binary.LittleEndian.PutUint64(h[8:], uint64(p.Sum.Hi))
	case kSumSplit, kSumSplitPos:
		// The optimistic pair is the (Lo, Hi) of the 128-bit sum; Merge
		// re-adds with carry, so loading the words directly is exact.
		binary.LittleEndian.PutUint64(h, p.Sum.Lo)
		binary.LittleEndian.PutUint64(a.cold(tab, rec, ai), uint64(p.Sum.Hi))
	case kCountFull:
		binary.LittleEndian.PutUint64(h, uint64(p.I))
	case kCountSplit:
		// Hot counter 0 keeps the "< 0xFFFF" invariant Merge relies on;
		// the whole count rides in the exception word.
		binary.LittleEndian.PutUint16(h, 0)
		binary.LittleEndian.PutUint64(a.cold(tab, rec, ai), uint64(p.I))
	case kMinFull, kMaxFull:
		binary.LittleEndian.PutUint64(h, uint64(p.I))
	case kMinSplit, kMaxSplit:
		binary.LittleEndian.PutUint32(h, boundOf(p.I, l.domMin))
		binary.LittleEndian.PutUint64(a.cold(tab, rec, ai), uint64(p.I))
	case kMinStr, kMaxStr:
		binary.LittleEndian.PutUint64(h, uint64(p.Str))
	default:
		panic(fmt.Sprintf("agg: LoadPartial of unknown kind %d", l.kind))
	}
}
