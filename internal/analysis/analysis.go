// Package analysis is a stdlib-only static-analysis framework for the
// engine's own invariants: selection-vector discipline in vectorized
// kernels, unsafe-pointer hygiene around the USSR region, 64-bit atomic
// alignment, cancellation polls in long loops, and durable-write error
// handling in the WAL paths.
//
// It deliberately depends on nothing outside the standard library
// (go/parser + go/ast + go/types); the repository's no-dependency
// constraint applies to its tooling too. The shape mirrors
// golang.org/x/tools/go/analysis — an Analyzer holds a Run function over
// a Pass carrying one type-checked package — but is cut down to exactly
// what the ocht-vet suite needs.
//
// Each static rule has a dynamic counterpart in the ocht_debug
// build-tag-gated assertion layer (vec.AssertSel, ussr.AssertResident,
// hashtab.AssertPacked); DESIGN.md "Invariants & static analysis" maps
// the rules to their runtime twins.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports violations via pass.Reportf.
	Run func(*Pass)
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path (virtual for fixture packages)
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
	facts *factStore
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	PkgPath  string // import path of the package the finding is in
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		PkgPath:  p.Path,
	})
}

// PathHasSuffix reports whether the package's import path ends in one of
// the given module-relative suffixes (e.g. "internal/ingest"). Fixture
// packages override their virtual path with a //ocht:path directive, so
// path-scoped analyzers behave identically under test.
func (p *Pass) PathHasSuffix(suffixes ...string) bool {
	for _, s := range suffixes {
		if p.Path == s || strings.HasSuffix(p.Path, "/"+s) {
			return true
		}
	}
	return false
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Run executes the analyzers over the packages and returns all
// diagnostics sorted by position, after filtering suppressions.
//
// The packages must be in dependency order (imports first) — that is the
// order Loader.LoadAll returns — so facts an analyzer exports while
// visiting a package are available to its passes over every importing
// package. Findings carrying a same-line or preceding-line
// //ocht:allow(<analyzer>) directive with a justification are filtered
// out; malformed or unused directives become findings themselves.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	facts := newFactStore()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
				facts:    facts,
			}
			a.Run(pass)
		}
	}
	diags = applyAllows(pkgs, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// funcDocHasDirective reports whether the function's doc comment carries
// the given //ocht:<name> directive on a line of its own.
func funcDocHasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//"+directive {
			return true
		}
	}
	return false
}

// walkFuncBody visits every node of a function body except nested
// function literals, which have their own execution context (a closure's
// body does not run when the enclosing loop iterates).
func walkFuncBody(body ast.Node, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != body {
			f(n) // visible to the callback (e.g. hotalloc flags the closure itself)
			return false
		}
		return f(n)
	})
}
