package analysis

import (
	"go/ast"
	"go/types"
)

// Suite returns every ocht analyzer, in the order ocht-vet runs them.
func Suite() []*Analyzer {
	return []*Analyzer{
		HotAlloc,
		SelVec,
		UnsafePtr,
		AtomicField,
		CancelPoll,
		WALErr,
		EncSwitch,
		ViewLife,
		GoCtx,
		GuardedBy,
		ErrClass,
	}
}

// exprKey renders an expression to a stable string for use as a map key
// and in diagnostics.
func exprKey(e ast.Expr) string {
	return types.ExprString(e)
}
