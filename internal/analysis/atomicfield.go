package analysis

import (
	"go/ast"
	"go/types"
)

// atomic64Funcs are the sync/atomic entry points operating on raw 64-bit
// words through a pointer.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// AtomicField enforces the two rules raw 64-bit atomics need:
//
//   - a struct field passed to atomic.*Int64/*Uint64 must sit at an
//     8-byte-aligned offset under 32-bit struct layout (GOARCH=386 packs
//     words at 4-byte alignment, and misaligned 64-bit atomics fault on
//     386/ARM) — the field must be first or preceded only by 8-byte
//     multiples;
//   - a field accessed atomically anywhere must be accessed atomically
//     everywhere: one plain read racing one atomic write is still a data
//     race.
//
// Fields typed atomic.Int64/atomic.Uint64 are exempt from the alignment
// rule — the runtime guarantees their alignment via the align64 marker —
// and immune to mixed access because their word is unexported. That is
// the pattern this analyzer pushes toward; server/metrics.go and the
// storage catalog version are the references.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "flags 64-bit atomic struct fields not alignment-guaranteed on " +
		"32-bit targets, and fields accessed both atomically and plainly",
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) {
	// Pass 1: find every &x.f handed to a 64-bit atomic and check its
	// 32-bit layout offset.
	atomicFields := map[*types.Var]bool{}
	atomicSelNodes := map[*ast.SelectorExpr]bool{}
	sizes32 := types.SizesFor("gc", "386")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomic64Call(pass, call) || len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op.String() != "&" {
				return true
			}
			se, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel, ok := pass.Info.Selections[se]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			field, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			atomicFields[field] = true
			atomicSelNodes[se] = true
			if off, known := fieldOffset32(sizes32, sel); known && off%8 != 0 {
				pass.Reportf(se.Pos(),
					"64-bit atomic access to field %s at 32-bit offset %d (not 8-byte aligned); move it to the front of the struct, pad it, or use atomic.Int64/atomic.Uint64",
					se.Sel.Name, off)
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: any other access to those fields is a mixed atomic/plain
	// access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSelNodes[se] {
				return true
			}
			sel, ok := pass.Info.Selections[se]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			field, ok := sel.Obj().(*types.Var)
			if ok && atomicFields[field] {
				pass.Reportf(se.Pos(),
					"field %s is accessed atomically elsewhere but plainly here; mixed atomic/non-atomic access is a data race",
					se.Sel.Name)
			}
			return true
		})
	}
}

func isAtomic64Call(pass *Pass, call *ast.CallExpr) bool {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomic64Funcs[se.Sel.Name] {
		return false
	}
	id, ok := se.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// fieldOffset32 computes the field's byte offset within its outermost
// struct under 32-bit (GOARCH=386) layout, following the selection's
// embedding path. Mirrors go vet's sync/atomic alignment rule: the struct
// itself is assumed allocation-aligned, so a multiple-of-8 offset is what
// guarantees the field's alignment.
func fieldOffset32(sizes types.Sizes, sel *types.Selection) (int64, bool) {
	recv := sel.Recv()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	var off int64
	t := recv
	for _, idx := range sel.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			fields[i] = st.Field(i)
		}
		offs := sizes.Offsetsof(fields)
		off += offs[idx]
		t = st.Field(idx).Type()
	}
	return off, true
}
