package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pollNames are the calls that count as a cancellation poll.
var pollNames = map[string]bool{
	"checkCancel": true,
	"CheckCancel": true,
	"stopped":     true,
	"Stopped":     true,
}

// CancelPoll enforces the engine's cancellation discipline: a canceled
// query (deadline, client disconnect, server drain) must stop within one
// vector of work.
//
//   - In internal/exec, every loop that pulls batches — calls a Next
//     method with a *QCtx argument — must poll cancellation inside the
//     loop body (qc.checkCancel(), or a select on a Done()/done channel).
//   - In internal/ingest, every loop inside a background runner (method
//     name run*) must either block on channels (a select with a receive
//     case) or poll a stop signal per iteration; a runner walking tables
//     with no poll keeps sealing long after Close.
var CancelPoll = &Analyzer{
	Name: "cancelpoll",
	Doc: "flags batch/morsel loops in internal/exec and background-runner " +
		"loops in internal/ingest with no cancellation poll on any path",
	Run: runCancelPoll,
}

func runCancelPoll(pass *Pass) {
	inExec := pass.PathHasSuffix("internal/exec")
	inIngest := pass.PathHasSuffix("internal/ingest")
	if !inExec && !inIngest {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inExec {
				checkPullLoops(pass, fd)
			}
			if inIngest && strings.HasPrefix(fd.Name.Name, "run") {
				checkRunnerLoops(pass, fd)
			}
		}
	}
}

// checkPullLoops flags loops that drain an operator without polling.
func checkPullLoops(pass *Pass, fd *ast.FuncDecl) {
	walkFuncBody(fd.Body, func(n ast.Node) bool {
		body := loopBody(n)
		if body == nil {
			return true
		}
		if hasNextCall(pass, body) && !hasPoll(body) {
			pass.Reportf(n.Pos(),
				"loop in %s pulls batches (.Next(qc)) but never polls cancellation; add qc.checkCancel() so canceled queries stop within one vector",
				fd.Name.Name)
		}
		return true
	})
}

// checkRunnerLoops flags background-runner loops that neither block on
// channels nor poll a stop signal.
func checkRunnerLoops(pass *Pass, fd *ast.FuncDecl) {
	walkFuncBody(fd.Body, func(n ast.Node) bool {
		body := loopBody(n)
		if body == nil {
			return true
		}
		if !hasChannelWait(body) && !hasPoll(body) {
			pass.Reportf(n.Pos(),
				"loop in background runner %s has no channel wait or stop poll; it keeps running after shutdown",
				fd.Name.Name)
		}
		return true
	})
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch t := n.(type) {
	case *ast.ForStmt:
		return t.Body
	case *ast.RangeStmt:
		// Ranging over a channel is itself a blocking channel wait;
		// treated as such by hasChannelWait via the range check there.
		return t.Body
	}
	return nil
}

// hasNextCall reports whether the body calls a method named Next with a
// single argument of type *QCtx (matched by type name, so fixtures
// declaring their own QCtx exercise the rule).
func hasNextCall(pass *Pass, body ast.Node) bool {
	found := false
	walkFuncBody(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		se, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || se.Sel.Name != "Next" || len(call.Args) != 1 {
			return true
		}
		if isQCtxPtr(pass.TypeOf(call.Args[0])) {
			found = true
		}
		return true
	})
	return found
}

func isQCtxPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj().Name() == "QCtx"
}

// hasPoll reports whether the body calls a recognized poll function or
// selects on a done channel.
func hasPoll(body ast.Node) bool {
	found := false
	walkFuncBody(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch t := n.(type) {
		case *ast.CallExpr:
			if se, ok := t.Fun.(*ast.SelectorExpr); ok && pollNames[se.Sel.Name] {
				found = true
			}
			if id, ok := t.Fun.(*ast.Ident); ok && pollNames[id.Name] {
				found = true
			}
		case *ast.SelectStmt:
			if selectHasReceive(t) {
				found = true
			}
		}
		return true
	})
	return found
}

// hasChannelWait reports whether the body contains a select with a
// receive case or a direct channel receive.
func hasChannelWait(body ast.Node) bool {
	found := false
	walkFuncBody(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch t := n.(type) {
		case *ast.SelectStmt:
			if selectHasReceive(t) {
				found = true
			}
		case *ast.UnaryExpr:
			if t.Op.String() == "<-" {
				found = true
			}
		}
		return true
	})
	return found
}

func selectHasReceive(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
				return true
			}
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				if u, ok := r.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
					return true
				}
			}
		}
	}
	return false
}
