package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// encNames are the three vector encodings every dispatch must account for.
var encNames = []string{"EncPlain", "EncDict", "EncPacked"}

// encPayloadFields are the Vector payload slices whose raw indexing is only
// meaningful for specific encodings: the typed slices (nil under EncDict /
// EncPacked), the dictionary code slice (nil under EncPlain and for
// bit-packed code columns), and the packed words. Bool/F64/I128 are absent:
// no encoding applies to them, plain access is always safe.
var encPayloadFields = map[string]bool{
	"Str":    true,
	"I8":     true,
	"I16":    true,
	"I32":    true,
	"I64":    true,
	"Codes":  true,
	"Packed": true,
}

// encConsumerPackages are where batch vectors arrive from scans still in
// their stored encoding, so raw payload access needs proof of plainness.
var encConsumerPackages = []string{
	"internal/exec",
	"internal/agg",
	"internal/join",
}

// materializerNames are the seed materializers: a vector assigned from one
// of these calls is plain by contract. Wrappers (exec.ensureBuf and
// friends) are discovered by the plain-result fact below.
var materializerNames = map[string]bool{
	"Materialize": true, // (*vec.Vector).Materialize
	"ensurePlain": true, // exec's late-materialization boundary
	"EnsurePlain": true,
	"New":         true, // vec.New allocates a plain vector
	"NewBatch":    true,
}

// encodedSrcFact marks a function that may return a batch-sourced vector
// (one that can still carry a stored encoding) — exec.Expr.Eval is the
// canonical case: for a column expression it passes the scan's zero-copy
// view straight through.
type encodedSrcFact struct{}

func (encodedSrcFact) AFact() {}

// plainResultFact marks a function whose vector results are always plain
// (every return is a materializer result or a fresh allocation), so
// assigning from it clears the encoded taint.
type plainResultFact struct{}

func (plainResultFact) AFact() {}

// EncSwitch enforces the compressed-execution dispatch invariant
// (PAPER.md's optimistic compression: a plain-looking vector may be dict
// codes or packed words):
//
//   - every `switch x.Enc` must cover EncPlain/EncDict/EncPacked or carry
//     a default clause;
//   - an if/else-if chain dispatching on .Enc equality (two or more arms)
//     must end in an else or cover all three encodings — a single
//     fast-path guard (`if v.Enc == EncPacked { ...; return }`) is fine;
//   - in the consumer packages, raw payload indexing (v.Str[i], v.Codes,
//     v.I64, v.Packed...) of a vector that arrived from a batch
//     (b.Vecs[i], or a call carrying the encoded-source fact, e.g.
//     Expr.Eval) must be dominated by an encoding branch on that vector or
//     by a materializer call (ensurePlain, Materialize, vec.New — or any
//     function the plain-result fact marks, discovered cross-package).
var EncSwitch = &Analyzer{
	Name: "encswitch",
	Doc: "flags non-exhaustive dispatch over vec.Vector.Enc and raw payload " +
		"access to possibly-encoded batch vectors without a dominating " +
		"encoding branch or materializer call",
	Run: runEncSwitch,
}

func runEncSwitch(pass *Pass) {
	for _, f := range pass.Files {
		checkEncDispatch(pass, f)
	}
	if !pass.PathHasSuffix(encConsumerPackages...) {
		return
	}
	// Phase 1: derive encoded-source / plain-result facts for this
	// package's functions, iterating to a fixpoint so declaration order
	// inside the package does not matter.
	for i := 0; i < 5; i++ {
		changed := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if deriveEncFacts(pass, fd) {
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	// Phase 2: check payload accesses.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w := &encWalker{pass: pass, state: map[string]int{}, report: true}
				w.block(fd.Body, nil)
			}
		}
	}
}

// --- dispatch exhaustiveness ---

// checkEncDispatch flags non-exhaustive switches and if-chains over Enc.
func checkEncDispatch(pass *Pass, f *ast.File) {
	// else-if statements are visited through their parent chain.
	elseIfs := map[*ast.IfStmt]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok {
			if child, ok := ifs.Else.(*ast.IfStmt); ok {
				elseIfs[child] = true
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.SwitchStmt:
			checkEncSwitch(pass, t)
		case *ast.IfStmt:
			if !elseIfs[t] {
				checkEncIfChain(pass, t)
			}
		}
		return true
	})
}

func isEncodingType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Encoding"
}

// encConstName returns the Enc* constant name an expression denotes, or "".
func encConstName(e ast.Expr) string {
	name := ""
	switch t := e.(type) {
	case *ast.Ident:
		name = t.Name
	case *ast.SelectorExpr:
		name = t.Sel.Name
	}
	for _, enc := range encNames {
		if name == enc {
			return enc
		}
	}
	return ""
}

func checkEncSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isEncodingType(pass.TypeOf(sw.Tag)) {
		return
	}
	covered := map[string]bool{}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: exhaustive by construction
		}
		for _, e := range cc.List {
			if name := encConstName(e); name != "" {
				covered[name] = true
			}
		}
	}
	if missing := missingEncs(covered); len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch over %s does not handle %s and has no default; a plain-looking vector may be dict codes or packed words — cover every encoding or materialize first",
			exprKey(sw.Tag), strings.Join(missing, ", "))
	}
}

// checkEncIfChain inspects an if/else-if chain whose conditions are Enc
// equality tests. Chains of length one are guards, not dispatches.
func checkEncIfChain(pass *Pass, ifs *ast.IfStmt) {
	covered := map[string]bool{}
	arms := 0
	cur := ifs
	for {
		name, ok := encEqualityCond(pass, cur.Cond)
		if !ok {
			return // mixed conditions: not a pure encoding dispatch
		}
		covered[name] = true
		arms++
		switch e := cur.Else.(type) {
		case *ast.IfStmt:
			cur = e
			continue
		case nil:
			if arms >= 2 {
				if missing := missingEncs(covered); len(missing) > 0 {
					pass.Reportf(ifs.Pos(),
						"encoding dispatch handles only %d of 3 encodings (missing %s) and has no else; add the remaining arms or a materializing fallback",
						len(covered), strings.Join(missing, ", "))
				}
			}
			return
		default:
			return // final else: every encoding lands somewhere
		}
	}
}

// encEqualityCond matches `x.Enc == EncFoo` (either operand order).
func encEqualityCond(pass *Pass, cond ast.Expr) (string, bool) {
	b, ok := cond.(*ast.BinaryExpr)
	if !ok || b.Op != token.EQL {
		return "", false
	}
	if !isEncodingType(pass.TypeOf(b.X)) {
		return "", false
	}
	if name := encConstName(b.Y); name != "" {
		return name, true
	}
	if name := encConstName(b.X); name != "" {
		return name, true
	}
	return "", false
}

func missingEncs(covered map[string]bool) []string {
	var missing []string
	for _, enc := range encNames {
		if !covered[enc] {
			missing = append(missing, enc)
		}
	}
	sort.Strings(missing)
	return missing
}

// --- payload-access taint tracking ---

const (
	taintNone = iota
	taintEncoded
	taintPlain
)

// encWalker walks one function body in source order, tracking which
// vector-typed expressions are possibly encoded (batch-sourced) or proven
// plain (materializer results), and which enclosing branches guard on the
// vector's encoding.
type encWalker struct {
	pass   *Pass
	state  map[string]int // exprKey -> taint
	report bool           // phase 2 reports; phase 1 only derives facts

	sawVecReturn  bool
	allPlainRets  bool
	sawEncodedRet bool
}

// deriveEncFacts runs the tracking walk without reporting and exports
// facts about fd. Returns whether a new fact appeared.
func deriveEncFacts(pass *Pass, fd *ast.FuncDecl) bool {
	w := &encWalker{pass: pass, state: map[string]int{}, allPlainRets: true}
	w.block(fd.Body, nil)
	obj := pass.Info.Defs[fd.Name]
	if obj == nil {
		return false
	}
	changed := false
	if w.sawEncodedRet && !pass.HasObjectFact(obj, &encodedSrcFact{}) {
		pass.ExportObjectFact(obj, &encodedSrcFact{})
		changed = true
	}
	if w.sawVecReturn && w.allPlainRets && !w.sawEncodedRet && !pass.HasObjectFact(obj, &plainResultFact{}) {
		pass.ExportObjectFact(obj, &plainResultFact{})
		changed = true
	}
	return changed
}

func (w *encWalker) block(b *ast.BlockStmt, guards []string) {
	for _, s := range b.List {
		w.stmt(s, guards)
	}
}

func (w *encWalker) stmt(s ast.Stmt, guards []string) {
	switch t := s.(type) {
	case *ast.BlockStmt:
		w.block(t, guards)
	case *ast.IfStmt:
		if t.Init != nil {
			w.stmt(t.Init, guards)
		}
		w.exprs(guards, t.Cond)
		g := guards
		if mentionsEnc(t.Cond) {
			g = append(guards, exprKey(t.Cond))
		}
		w.block(t.Body, g)
		if t.Else != nil {
			w.stmt(t.Else, g)
		}
	case *ast.SwitchStmt:
		if t.Init != nil {
			w.stmt(t.Init, guards)
		}
		g := guards
		if t.Tag != nil {
			w.exprs(guards, t.Tag)
			if mentionsEnc(t.Tag) {
				g = append(guards, exprKey(t.Tag))
			}
		}
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.exprs(g, cc.List...)
				for _, cs := range cc.Body {
					w.stmt(cs, g)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, cs := range cc.Body {
					w.stmt(cs, guards)
				}
			}
		}
	case *ast.ForStmt:
		if t.Init != nil {
			w.stmt(t.Init, guards)
		}
		if t.Cond != nil {
			w.exprs(guards, t.Cond)
		}
		w.block(t.Body, guards)
		if t.Post != nil {
			w.stmt(t.Post, guards)
		}
	case *ast.RangeStmt:
		w.exprs(guards, t.X)
		w.block(t.Body, guards)
	case *ast.SelectStmt:
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, guards)
				}
				for _, cs := range cc.Body {
					w.stmt(cs, guards)
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(t.Stmt, guards)
	case *ast.AssignStmt:
		w.exprs(guards, t.Rhs...)
		w.exprs(guards, t.Lhs...)
		w.assign(t)
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(guards, vs.Values...)
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							w.state[name.Name] = w.classOf(vs.Values[i])
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.exprs(guards, t.X)
	case *ast.ReturnStmt:
		w.exprs(guards, t.Results...)
		for _, r := range t.Results {
			if !isVectorExpr(w.pass, r) {
				continue
			}
			w.sawVecReturn = true
			switch w.classOf(r) {
			case taintEncoded:
				w.sawEncodedRet = true
			case taintPlain:
			default:
				w.allPlainRets = false
			}
		}
	case *ast.DeferStmt:
		w.exprs(guards, t.Call)
	case *ast.GoStmt:
		w.exprs(guards, t.Call)
	case *ast.SendStmt:
		w.exprs(guards, t.Chan, t.Value)
	case *ast.IncDecStmt:
		w.exprs(guards, t.X)
	}
}

// assign updates the taint state from an assignment. A multi-value call
// assignment applies the call's class to every vector-typed LHS.
func (w *encWalker) assign(t *ast.AssignStmt) {
	if len(t.Rhs) == 1 && len(t.Lhs) > 1 {
		class := w.classOf(t.Rhs[0])
		for _, l := range t.Lhs {
			if isVectorExpr(w.pass, l) {
				w.state[exprKey(l)] = class
			}
		}
		return
	}
	for i, l := range t.Lhs {
		if i < len(t.Rhs) && isVectorExpr(w.pass, l) {
			w.state[exprKey(l)] = w.classOf(t.Rhs[i])
		}
	}
}

// classOf classifies a vector-producing expression.
func (w *encWalker) classOf(e ast.Expr) int {
	switch t := e.(type) {
	case *ast.CallExpr:
		if obj := calleeObject(w.pass, t); obj != nil {
			if materializerNames[obj.Name()] {
				return taintPlain
			}
			if w.pass.HasObjectFact(obj, &plainResultFact{}) {
				return taintPlain
			}
			if w.pass.HasObjectFact(obj, &encodedSrcFact{}) {
				return taintEncoded
			}
		}
		return taintNone
	case *ast.IndexExpr:
		if isBatchVecsSel(t) {
			return taintEncoded
		}
		return taintNone
	case *ast.UnaryExpr:
		if t.Op == token.AND {
			if _, ok := t.X.(*ast.CompositeLit); ok {
				return taintPlain
			}
		}
	case *ast.CompositeLit:
		return taintPlain
	case *ast.Ident:
		return w.state[t.Name]
	case *ast.SelectorExpr:
		return w.state[exprKey(t)]
	}
	return taintNone
}

// exprs inspects expressions for raw payload accesses, descending into
// function literals with the current guard context.
func (w *encWalker) exprs(guards []string, es ...ast.Expr) {
	for _, e := range es {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.FuncLit:
				w.block(t.Body, guards)
				return false
			case *ast.IndexExpr:
				w.checkAccess(t.X, guards)
			case *ast.SliceExpr:
				w.checkAccess(t.X, guards)
			}
			return true
		})
	}
}

// checkAccess reports raw payload indexing of a possibly-encoded vector.
func (w *encWalker) checkAccess(x ast.Expr, guards []string) {
	if !w.report {
		return
	}
	sel, ok := x.(*ast.SelectorExpr)
	if !ok || !encPayloadFields[sel.Sel.Name] {
		return
	}
	if !isVectorExpr(w.pass, sel.X) {
		return
	}
	baseKey := exprKey(sel.X)
	tainted := w.state[baseKey] == taintEncoded || isBatchVecsSel(sel.X)
	if !tainted {
		return
	}
	for _, g := range guards {
		if strings.Contains(g, baseKey+".Enc") || strings.Contains(g, baseKey+".Codes") ||
			strings.Contains(g, baseKey+".IsPlain") {
			return
		}
	}
	pass := w.pass
	pass.Reportf(sel.Pos(),
		"%s.%s indexed raw but %s arrived from a batch and may still be dict- or FoR-encoded; branch on %s.Enc or materialize (ensurePlain/Materialize) first",
		baseKey, sel.Sel.Name, baseKey, baseKey)
}

// isBatchVecsSel matches `<ident>.Vecs[...]` — the way scan views enter
// operator code: an incoming batch held in a local or parameter
// (`b.Vecs[e.col]`). Owned output batches reached through a field chain
// (`e.out.Vecs[ci]`) are exempt: the operator allocated those plain with
// vec.New in its constructor and is the only writer.
func isBatchVecsSel(e ast.Expr) bool {
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	sel, ok := idx.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Vecs" {
		return false
	}
	_, ok = sel.X.(*ast.Ident)
	return ok
}

// mentionsEnc reports whether an expression textually involves a .Enc,
// .Codes or .IsPlain test — the encoding-awareness marker for guards.
func mentionsEnc(e ast.Expr) bool {
	s := exprKey(e)
	return strings.Contains(s, ".Enc") || strings.Contains(s, ".Codes") || strings.Contains(s, ".IsPlain")
}

// isVectorExpr reports whether e's static type is vec.Vector or a pointer
// to it (matched by type name so fixtures declaring their own Vector
// exercise the rule).
func isVectorExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Vector"
}

// calleeObject resolves the called function or method's object.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pass.Info.Uses[fun.Sel]
	}
	return nil
}
