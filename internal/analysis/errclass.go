package analysis

import (
	"go/ast"
	"go/types"
)

// wireFact marks a function whose errors originate from the shard wire
// protocol: methods on the dist Client (seed) and, transitively, every
// error-returning function that calls one (Replica.CatchUp wraps
// Client.WALEntries; its callers face wire errors too).
type wireFact struct{}

func (wireFact) AFact() {}

// ErrClass enforces the wire-error classification rule in internal/dist:
// errors crossing the shard boundary split into transient faults (worth a
// retry or a hedge) and fatal protocol/application errors (retrying loops
// forever or hides corruption), and the Transient classifier is the one
// place that decides. Two patterns defeat it:
//
//   - discarding a wire call's error (blank assignment or bare call
//     statement) — the fatal case vanishes;
//   - a retry loop (one that can `continue` past a wire call) that never
//     consults Transient — fatal errors are retried forever.
var ErrClass = &Analyzer{
	Name: "errclass",
	Doc: "flags wire-boundary errors in internal/dist that bypass the " +
		"Transient classifier: discarded Client-call errors and retry loops " +
		"that never classify before retrying",
	Run: runErrClass,
}

func runErrClass(pass *Pass) {
	if !pass.PathHasSuffix("internal/dist") {
		return
	}
	// Rounds 1-2 derive wire facts (declaration order independent),
	// round 3 reports.
	for round := 0; round < 3; round++ {
		report := round == 2
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				deriveWireFact(pass, fd)
				if report {
					checkErrClass(pass, fd)
				}
			}
		}
	}
}

// deriveWireFact seeds methods on *Client and propagates to
// error-returning functions that call a wire function.
func deriveWireFact(pass *Pass, fd *ast.FuncDecl) {
	obj := pass.Info.Defs[fd.Name]
	if obj == nil || pass.HasObjectFact(obj, &wireFact{}) {
		return
	}
	if isClientMethod(pass, fd) && returnsError(obj) {
		pass.ExportObjectFact(obj, &wireFact{})
		return
	}
	if !returnsError(obj) {
		return
	}
	wire := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if wire {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := calleeObject(pass, call); callee != nil && pass.HasObjectFact(callee, &wireFact{}) {
				wire = true
			}
		}
		return !wire
	})
	if wire {
		pass.ExportObjectFact(obj, &wireFact{})
	}
}

func isClientMethod(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Client"
}

func returnsError(obj types.Object) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	return errorResultIndex(sig) >= 0
}

// errorResultIndex returns the position of the (last) error result, or -1.
func errorResultIndex(sig *types.Signature) int {
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" {
			return i
		}
	}
	return -1
}

func checkErrClass(pass *Pass, fd *ast.FuncDecl) {
	// Rule 1: discarded wire errors, anywhere in the body (including
	// closures: a hedge goroutine dropping errors is still a drop).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.ExprStmt:
			if call, ok := t.X.(*ast.CallExpr); ok {
				if name, idx := wireCallWithError(pass, call); idx >= 0 {
					pass.Reportf(call.Pos(),
						"error from wire call %s discarded; run it through Transient and surface fatal errors instead of dropping them",
						name)
				}
			}
			return false
		case *ast.AssignStmt:
			if len(t.Rhs) == 1 {
				if call, ok := t.Rhs[0].(*ast.CallExpr); ok {
					if name, idx := wireCallWithError(pass, call); idx >= 0 && idx < len(t.Lhs) {
						if id, ok := t.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
							pass.Reportf(call.Pos(),
								"error from wire call %s assigned to _; run it through Transient and surface fatal errors instead of dropping them",
								name)
						}
					}
				}
			}
		}
		return true
	})
	// Rule 2: retry loops without classification. Closures spawned inside
	// the loop run on their own schedule, so walkFuncBody skips them here.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch t := n.(type) {
		case *ast.ForStmt:
			body = t.Body
		case *ast.RangeStmt:
			body = t.Body
		default:
			return true
		}
		wireName := ""
		canRetry := false
		classified := false
		walkFuncBody(body, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.CallExpr:
				if name, idx := wireCallWithError(pass, t); idx >= 0 && wireName == "" {
					wireName = name
				}
			case *ast.BranchStmt:
				if t.Tok.String() == "continue" {
					canRetry = true
				}
			case *ast.Ident:
				if t.Name == "Transient" {
					classified = true
				}
			}
			return true
		})
		if wireName != "" && canRetry && !classified {
			pass.Reportf(n.Pos(),
				"retry loop around wire call %s never consults Transient; classify the error before retrying so fatal errors stop the loop",
				wireName)
		}
		return true
	})
}

// wireCallWithError returns the callee name and the error-result index of
// a call to a wire-fact function, or ("", -1).
func wireCallWithError(pass *Pass, call *ast.CallExpr) (string, int) {
	obj := calleeObject(pass, call)
	if obj == nil || !pass.HasObjectFact(obj, &wireFact{}) {
		return "", -1
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return "", -1
	}
	return obj.Name(), errorResultIndex(sig)
}
