package analysis

import (
	"go/types"
	"reflect"
	"sort"
)

// Fact is a typed statement an analyzer exports about one declaration —
// "this function materializes its vector result", "this function makes a
// wire call" — for passes over downstream packages to consume. The shape
// mirrors golang.org/x/tools go/analysis facts, cut down to the in-process
// case: the whole module is loaded at once, packages run in dependency
// order (see Loader.LoadAll), so a fact exported while analyzing package P
// is visible to every pass over a package that imports P. No encoding, no
// fact files.
//
// Facts are namespaced per analyzer: an analyzer only sees facts it
// exported itself. Each fact type should be a small struct implementing
// AFact; lookups match on the concrete type.
type Fact interface{ AFact() }

// factStore holds every exported fact for one Run, keyed by analyzer,
// object and concrete fact type.
type factStore struct {
	m map[factKey]Fact
}

type factKey struct {
	analyzer string
	obj      types.Object
	typ      reflect.Type
}

func newFactStore() *factStore {
	return &factStore{m: map[factKey]Fact{}}
}

// ExportObjectFact records a fact about obj, visible to later passes of
// the same analyzer (including passes over importing packages — packages
// run in dependency order). Re-exporting overwrites, which is what the
// within-package fixpoint loops want.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || f == nil {
		return
	}
	p.facts.m[factKey{p.Analyzer.Name, obj, reflect.TypeOf(f)}] = f
}

// ImportObjectFact copies the fact of f's concrete type about obj into f
// and reports whether one was found. f must be a pointer to a fact struct.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if obj == nil {
		return false
	}
	got, ok := p.facts.m[factKey{p.Analyzer.Name, obj, reflect.TypeOf(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// HasObjectFact reports whether a fact of f's concrete type exists for obj
// without copying it.
func (p *Pass) HasObjectFact(obj types.Object, f Fact) bool {
	if obj == nil {
		return false
	}
	_, ok := p.facts.m[factKey{p.Analyzer.Name, obj, reflect.TypeOf(f)}]
	return ok
}

// FactedObjects returns every object the analyzer exported a fact of f's
// concrete type about, sorted by name for deterministic iteration. Used by
// tests to pin the cross-package fact contract.
func (p *Pass) FactedObjects(f Fact) []types.Object {
	t := reflect.TypeOf(f)
	var out []types.Object
	for k := range p.facts.m {
		if k.analyzer == p.Analyzer.Name && k.typ == t {
			out = append(out, k.obj)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
