package analysis

import "testing"

type testFact struct{ Tag string }

func (testFact) AFact() {}

// TestObjectFacts pins the fact store contract: per-analyzer namespacing,
// copy-out semantics, and cross-pass visibility (two passes sharing a
// store model one analyzer visiting two packages in dependency order).
func TestObjectFacts(t *testing.T) {
	pkg := loadSrc(t, `package p

func A() {}
func B() {}
`)
	objA := pkg.Types.Scope().Lookup("A")
	objB := pkg.Types.Scope().Lookup("B")
	if objA == nil || objB == nil {
		t.Fatal("fixture objects missing")
	}

	store := newFactStore()
	exporter := &Pass{Analyzer: &Analyzer{Name: "one"}, facts: store}
	exporter.ExportObjectFact(objA, &testFact{Tag: "wire"})

	// A later pass of the same analyzer (downstream package) sees it.
	consumer := &Pass{Analyzer: &Analyzer{Name: "one"}, facts: store}
	var got testFact
	if !consumer.ImportObjectFact(objA, &got) || got.Tag != "wire" {
		t.Fatalf("ImportObjectFact = %v, %q; want true, wire", true, got.Tag)
	}
	if consumer.HasObjectFact(objB, &testFact{}) {
		t.Error("fact leaked to an object it was not exported on")
	}

	// A different analyzer sees nothing: facts are namespaced.
	other := &Pass{Analyzer: &Analyzer{Name: "two"}, facts: store}
	if other.HasObjectFact(objA, &testFact{}) {
		t.Error("fact leaked across analyzers")
	}

	exporter.ExportObjectFact(objB, &testFact{Tag: "also"})
	objs := consumer.FactedObjects(&testFact{})
	if len(objs) != 2 || objs[0].Name() != "A" || objs[1].Name() != "B" {
		t.Fatalf("FactedObjects = %v, want [A B]", objs)
	}
}
