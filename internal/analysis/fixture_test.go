package analysis

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ocht/internal/vec"
)

// runFixtures loads every fixture package under testdata/<analyzer> (the
// directory itself plus any subdirectories containing Go files), runs the
// analyzer alone, and matches diagnostics against `// want "substr"`
// comments: each want line must produce a diagnostic containing the
// substring, and every diagnostic must land on a want line.
func runFixtures(t *testing.T, a *Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", a.Name)
	var dirs []string
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("reading %s: %v", root, err)
	}
	hasGo := false
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join(root, e.Name()))
		} else if strings.HasSuffix(e.Name(), ".go") {
			hasGo = true
		}
	}
	if hasGo {
		dirs = append(dirs, root)
	}
	if len(dirs) == 0 {
		t.Fatalf("no fixture packages under %s", root)
	}

	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for _, dir := range dirs {
		pkg, err := loader.LoadFixture(dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", dir, err)
		}
		diags := Run([]*Package{pkg}, []*Analyzer{a})
		fired = fired || len(diags) > 0
		checkWants(t, pkg, diags)
	}
	if !fired {
		t.Errorf("analyzer %s produced no diagnostics on its fixtures; the seeded violations are not firing", a.Name)
	}
}

// checkWants compares diagnostics with the fixture's want comments.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	type want struct {
		substr  string
		matched bool
	}
	wants := map[int][]*want{} // line -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "// want ")
				if !ok {
					continue
				}
				substr, err := strconv.Unquote(strings.TrimSpace(rest))
				if err != nil {
					t.Fatalf("%s: bad want comment %q: %v", pkg.Fset.Position(c.Pos()), c.Text, err)
				}
				line := pkg.Fset.Position(c.Pos()).Line
				wants[line] = append(wants[line], &want{substr: substr})
			}
		}
	}
	for _, d := range diags {
		ws := wants[d.Pos.Line]
		matched := false
		for _, w := range ws {
			if !w.matched && strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic containing %q", pkg.Dir, line, w.substr)
			}
		}
	}
}

func TestHotAllocFixtures(t *testing.T)    { runFixtures(t, HotAlloc) }
func TestSelVecFixtures(t *testing.T)      { runFixtures(t, SelVec) }
func TestUnsafePtrFixtures(t *testing.T)   { runFixtures(t, UnsafePtr) }
func TestAtomicFieldFixtures(t *testing.T) { runFixtures(t, AtomicField) }
func TestCancelPollFixtures(t *testing.T)  { runFixtures(t, CancelPoll) }
func TestWALErrFixtures(t *testing.T)      { runFixtures(t, WALErr) }
func TestEncSwitchFixtures(t *testing.T)   { runFixtures(t, EncSwitch) }
func TestViewLifeFixtures(t *testing.T)    { runFixtures(t, ViewLife) }
func TestGoCtxFixtures(t *testing.T)       { runFixtures(t, GoCtx) }
func TestGuardedByFixtures(t *testing.T)   { runFixtures(t, GuardedBy) }
func TestErrClassFixtures(t *testing.T)    { runFixtures(t, ErrClass) }

// TestVecMaxLenPinned keeps the analyzer's duplicated constant in sync
// with the engine's real batch capacity.
func TestVecMaxLenPinned(t *testing.T) {
	if VecMaxLen != vec.MaxLen {
		t.Fatalf("analysis.VecMaxLen = %d, vec.MaxLen = %d; update selvec.go", VecMaxLen, vec.MaxLen)
	}
}

// TestSuiteNames guards the -run filter contract.
func TestSuiteNames(t *testing.T) {
	want := []string{
		"hotalloc", "selvec", "unsafeptr", "atomicfield", "cancelpoll", "walerr",
		"encswitch", "viewlife", "goctx", "guardedby", "errclass",
	}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing doc or run", a.Name)
		}
	}
}
