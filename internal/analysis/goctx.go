package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// goctxPackages are the layers that spawn background goroutines: the
// distribution fan-out, the HTTP server, and the ingest WAL/sealer
// runners. Pure kernel packages never spawn and stay out of scope.
var goctxPackages = []string{
	"internal/dist",
	"internal/server",
	"internal/ingest",
}

// goctxPollNames are the cancellation-poll helpers (shared with the
// cancelpoll analyzer): calling one inside the goroutine body counts as a
// shutdown path.
var goctxPollNames = map[string]bool{
	"checkCancel": true,
	"CheckCancel": true,
	"stopped":     true,
	"Stopped":     true,
}

// GoCtx enforces goroutine shutdown discipline in the long-running
// layers: every `go` statement must spawn work that can be told to stop —
// by selecting/receiving on ctx.Done() or a stop/done/quit channel, by
// calling a stop-poll helper, by being WaitGroup-joined (wg.Done in the
// body), or by bounding all its work with a context it passes downstream.
// A goroutine with none of these outlives Close() and leaks.
var GoCtx = &Analyzer{
	Name: "goctx",
	Doc: "flags goroutines in internal/dist, internal/server and " +
		"internal/ingest with no shutdown path (no ctx.Done()/stop-channel " +
		"select, no WaitGroup join, no context-bounded calls)",
	Run: runGoCtx,
}

func runGoCtx(pass *Pass) {
	if !pass.PathHasSuffix(goctxPackages...) {
		return
	}
	// Resolve named spawn targets to their same-package bodies.
	bodies := map[types.Object]*ast.BlockStmt{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					bodies[obj] = fd.Body
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body ast.Node
			switch fun := gs.Call.Fun.(type) {
			case *ast.FuncLit:
				body = fun.Body
			default:
				if obj := calleeObject(pass, gs.Call); obj != nil {
					if b, ok := bodies[obj]; ok {
						body = b
					}
				}
			}
			// A context handed to the spawned function bounds it even when
			// the body is out of reach (external callee).
			if goCallPassesContext(pass, gs.Call) {
				return true
			}
			if body == nil {
				pass.Reportf(gs.Pos(),
					"goroutine spawns an unresolvable function with no context argument; give it a ctx or a stop channel so Close() can reach it")
				return true
			}
			if !hasShutdownPath(pass, body) {
				pass.Reportf(gs.Pos(),
					"goroutine has no shutdown path: select/receive on ctx.Done() or a stop channel, join it with a WaitGroup (wg.Done), or bound its work with a context")
			}
			return true
		})
	}
}

// goCallPassesContext reports whether the go statement's call carries a
// context.Context argument.
func goCallPassesContext(pass *Pass, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if isContextType(pass.TypeOf(a)) {
			return true
		}
	}
	return false
}

// hasShutdownPath scans a goroutine body for any accepted stop mechanism.
func hasShutdownPath(pass *Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch t := n.(type) {
		case *ast.UnaryExpr:
			if t.Op == token.ARROW && isStopSource(pass, t.X) {
				found = true
			}
		case *ast.RangeStmt:
			// Ranging over a channel ends when the sender closes it.
			if typ := pass.TypeOf(t.X); typ != nil {
				if _, ok := typ.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := t.Fun.(type) {
			case *ast.Ident:
				if goctxPollNames[fun.Name] {
					found = true
				}
			case *ast.SelectorExpr:
				if goctxPollNames[fun.Sel.Name] {
					found = true
				}
				if fun.Sel.Name == "Done" && isWaitGroup(pass.TypeOf(fun.X)) {
					found = true // joined: the spawner's Wait bounds its lifetime
				}
			}
			if goCallPassesContext(pass, t) {
				found = true // work is bounded by a context downstream
			}
		}
		return !found
	})
	return found
}

// isStopSource matches the receive operand: ctx.Done() (or any Done()
// call returning a channel) and channels whose name says shutdown.
func isStopSource(pass *Pass, e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.CallExpr:
		if sel, ok := t.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	case *ast.Ident:
		return isStopName(t.Name)
	case *ast.SelectorExpr:
		return isStopName(t.Sel.Name)
	}
	return false
}

func isStopName(name string) bool {
	n := strings.ToLower(name)
	for _, w := range []string{"stop", "done", "quit", "close", "shutdown"} {
		if strings.Contains(n, w) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}
