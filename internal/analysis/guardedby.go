package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// guardedByRE matches the field annotation: //ocht:guarded-by <mutexField>
var guardedByRE = regexp.MustCompile(`^//ocht:guarded-by[ \t]+([A-Za-z_][A-Za-z0-9_]*)$`)

// guardFact marks a struct field as protected by a sibling mutex field.
// Exported as an object fact so accesses from importing packages are
// checked too (the annotation travels with the field, not the package).
type guardFact struct {
	Mutex string
}

func (guardFact) AFact() {}

// GuardedBy checks //ocht:guarded-by annotations: every read or write of
// an annotated field must be preceded (in source order, within the same
// function) by a Lock or RLock call on the named sibling mutex of the
// same base expression — or happen in a constructor (New*/new*/Make*/
// make*-named function, or on a base constructed locally), where no other
// goroutine can hold a reference yet. Helpers called with the lock held
// by convention carry an //ocht:allow(guardedby) with that justification.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "checks //ocht:guarded-by <mutex> field annotations: accesses must " +
		"be dominated by <base>.<mutex>.Lock()/RLock() or sit in the owning " +
		"constructor",
	Run: runGuardedBy,
}

func runGuardedBy(pass *Pass) {
	// Collect this package's annotations into facts.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex := guardDirective(field)
				if mutex == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						pass.ExportObjectFact(obj, &guardFact{Mutex: mutex})
					}
				}
			}
			return true
		})
	}
	// Check accesses, including to annotated fields of imported packages.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkGuardedAccesses(pass, fd)
			}
		}
	}
}

// guardDirective extracts the mutex name from a field's doc or trailing
// comment.
func guardDirective(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedByRE.FindStringSubmatch(strings.TrimSpace(c.Text)); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl) {
	if isConstructorName(fd.Name.Name) {
		return
	}
	body := fd.Body
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		if obj == nil {
			return true
		}
		var fact guardFact
		if !pass.ImportObjectFact(obj, &fact) {
			return true
		}
		baseKey := exprKey(sel.X)
		if baseConstructedLocally(pass, sel.X, fd) {
			return true
		}
		if lockDominates(pass, body, baseKey, fact.Mutex, sel.Pos()) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is //ocht:guarded-by %s but no %s.%s.Lock()/RLock() precedes this access in %s; lock first (or //ocht:allow(guardedby) when the caller holds it)",
			baseKey, sel.Sel.Name, fact.Mutex, baseKey, fact.Mutex, fd.Name.Name)
		return true
	})
}

// lockDominates reports a source-preceding <base>.<mutex>.Lock/RLock call
// within the function. Source order approximates dominance for the
// lock-at-entry style the codebase uses; helpers relying on caller-held
// locks use suppressions instead.
func lockDominates(pass *Pass, body *ast.BlockStmt, baseKey, mutex string, before token.Pos) bool {
	want := baseKey + "." + mutex
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= before {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if exprKey(sel.X) == want {
			found = true
		}
		return !found
	})
	return found
}

// baseConstructedLocally reports whether the access base is a variable
// declared inside this function (a value under construction: not yet
// shared, so the lock is not needed).
func baseConstructedLocally(pass *Pass, base ast.Expr, fd *ast.FuncDecl) bool {
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	// Declared within the function body (not a parameter or receiver:
	// those arrive shared).
	return obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End()
}

func isConstructorName(name string) bool {
	for _, p := range []string{"New", "new", "Make", "make", "Open", "open"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
