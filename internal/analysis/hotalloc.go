package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// hotPackages are the module-relative package suffixes whose primitive
// kernels run once per value (not once per batch); allocations there turn
// a cache-resident tight loop into a garbage factory.
var hotPackages = []string{
	"internal/vec",
	"internal/pack",
	"internal/agg",
	"internal/join",
	"internal/exec",
	"internal/core",
	"internal/hashtab",
	"internal/storage", // block unpack/view kernels feed every scan
}

// hotNameRE is the primitive naming convention: the paper-style kernel
// prefixes (OpSum, FullSum, PackWord, UnpackColumn, MatchRecords,
// HashWords and their unexported spellings), plus the SWAR and
// batch-hash kernel families (SwarCmpConst, Mix64Batch) and the
// comparison kernels (CmpOp dispatchers, cmpPackedConst). Functions
// outside the convention opt in with a //ocht:hot doc directive.
var hotNameRE = regexp.MustCompile(`^(Op|Full|Pack|Unpack|Match|Hash|Swar|Mix|Cmp|op|full|pack|unpack|match|hash|swar|mix|cmp)[A-Z0-9]`)

// HotAlloc flags heap allocations, interface conversions (boxing) and
// closures inside hot kernels: functions in the kernel packages matching
// the primitive naming convention, or any function annotated //ocht:hot.
// The check is intra-procedural; a kernel that delegates its allocation
// to a per-batch setup helper (pack.Plan.kernels, pack.getter) is fine —
// that is the idiom the rule is meant to push code toward.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags make/new, composite-literal allocations, string<->[]byte " +
		"conversions, interface boxing, closures and defers inside per-value " +
		"kernels (//ocht:hot or primitive naming convention)",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	if !pass.PathHasSuffix(hotPackages...) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !funcDocHasDirective(fd, "ocht:hot") && !hotNameRE.MatchString(fd.Name.Name) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	walkFuncBody(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(t.Pos(), "closure allocated inside hot kernel %s; hoist it to per-batch setup", name)
			return true
		case *ast.DeferStmt:
			pass.Reportf(t.Pos(), "defer inside hot kernel %s; defers cost per call, handle cleanup at batch level", name)
		case *ast.UnaryExpr:
			if t.Op.String() == "&" {
				if _, isLit := t.X.(*ast.CompositeLit); isLit {
					pass.Reportf(t.Pos(), "heap allocation (&composite literal) inside hot kernel %s", name)
				}
			}
		case *ast.CompositeLit:
			// Slice and map literals allocate; struct/array values may stay
			// on the stack, so only reference types are flagged.
			switch pass.TypeOf(t).Underlying().(type) {
			case *types.Slice, *types.Map, *types.Chan:
				pass.Reportf(t.Pos(), "slice/map literal allocation inside hot kernel %s", name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, name, t)
		}
		return true
	})
}

func checkHotCall(pass *Pass, name string, call *ast.CallExpr) {
	// Builtin allocators.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make", "new":
			if obj, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && obj != nil {
				pass.Reportf(call.Pos(), "%s() inside hot kernel %s; allocate in Open/setup and reuse", id.Name, name)
				return
			}
		}
	}
	// Type conversions: interface boxing and string<->[]byte copies.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pass.TypeOf(call.Args[0])
		if from == nil {
			return
		}
		if types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()) {
			pass.Reportf(call.Pos(), "interface conversion (boxing) inside hot kernel %s", name)
			return
		}
		if isStringByteConv(to, from) {
			pass.Reportf(call.Pos(), "string<->[]byte conversion allocates inside hot kernel %s", name)
		}
		return
	}
	// Implicit boxing: concrete arguments passed to interface parameters
	// (fmt.Sprintf and friends are the classic offenders).
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if sl, isSlice := params.At(params.Len() - 1).Type().(*types.Slice); isSlice {
				pt = sl.Elem()
			}
		}
		if pt == nil {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil {
			continue
		}
		if types.IsInterface(pt.Underlying()) && !types.IsInterface(at.Underlying()) && !isUntypedNil(at) {
			pass.Reportf(arg.Pos(), "argument boxed into interface parameter inside hot kernel %s", name)
		}
	}
}

func isStringByteConv(to, from types.Type) bool {
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
