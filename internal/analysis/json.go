package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Finding is one diagnostic in the machine-readable report. File paths are
// module-root-relative so the checked-in baseline is stable across
// checkouts; Line/Col are informational and deliberately excluded from
// baseline matching (a baselined finding must not resurface as "new" just
// because unrelated edits shifted it).
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Package  string `json:"package"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Report is the -json output document and the vet-baseline.json schema.
type Report struct {
	Findings []Finding `json:"findings"`
}

// NewReport converts diagnostics into a report, relativizing file paths
// against the module root.
func NewReport(root string, diags []Diagnostic) *Report {
	r := &Report{Findings: []Finding{}}
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		r.Findings = append(r.Findings, Finding{
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Package:  d.PkgPath,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return r
}

// WriteJSON renders the report with stable formatting.
func (r *Report) WriteJSON(w *os.File) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadBaseline reads a baseline report from disk. A missing file is an
// empty baseline, so a fresh checkout without one still vets strictly.
func LoadBaseline(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Report{}, nil
		}
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	return &r, nil
}

// baselineKey identifies a finding for baseline matching: file + analyzer
// + message, not line/col (see Finding).
func baselineKey(f Finding) string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// Subtract returns the findings of r not covered by the baseline. The
// baseline is a multiset: two identical findings with one baselined leave
// one new.
func (r *Report) Subtract(base *Report) *Report {
	budget := map[string]int{}
	for _, f := range base.Findings {
		budget[baselineKey(f)]++
	}
	out := &Report{Findings: []Finding{}}
	for _, f := range r.Findings {
		k := baselineKey(f)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out.Findings = append(out.Findings, f)
	}
	return out
}
