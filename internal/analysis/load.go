package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Dir   string
	Path  string // import path; fixtures may override via //ocht:path
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Imports lists the module-internal packages this package imports —
	// the edges LoadAll orders the result by.
	Imports []string
}

// Loader parses and type-checks the module's packages using only the
// standard library: module-internal imports resolve against the parsed
// source tree, everything else (the stdlib) goes through the compiler's
// source importer. No `go list`, no export data, no external tooling.
type Loader struct {
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod

	Fset *token.FileSet

	std  types.ImporterFrom
	pkgs map[string]*loadEntry
}

type loadEntry struct {
	dir      string
	files    []*ast.File
	pkg      *Package
	checking bool
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Root:   root,
		Module: module,
		Fset:   fset,
		pkgs:   map[string]*loadEntry{},
	}
	if srcImp, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom); ok {
		l.std = srcImp
	} else {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return l, nil
}

func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(strings.Trim(strings.TrimSpace(rest), `"`)), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadAll parses and type-checks every non-test package under the module
// root, skipping testdata and hidden directories.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs := map[string]bool{}
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.Root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dirs[filepath.Dir(p)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var paths []string
	for dir := range dirs {
		path, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if path != "" {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	var out []*Package
	for _, path := range paths {
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return topoSort(out), nil
}

// topoSort orders packages so every package comes after the packages it
// imports. Cross-package facts require this: an analyzer visiting
// internal/exec must already have visited internal/vec, or the facts it
// wants to consume were never exported. The input's alphabetical order
// only satisfied that by accident of current package names ("exec" >
// "core" but also "agg" < "vec" — aggregation consumes vec facts and
// would have run first). Ties keep alphabetical order so the output is
// deterministic.
func topoSort(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	out := make([]*Package, 0, len(pkgs))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.Path] {
		case 1, 2:
			return // cycle (rejected earlier by check) or already emitted
		}
		state[p.Path] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[p.Path] = 2
		out = append(out, p)
	}
	for _, p := range pkgs { // input is alphabetical: deterministic ties
		visit(p)
	}
	return out
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses the non-test Go files of dir and registers the package
// under its import path. Returns "" for directories with no Go files.
func (l *Loader) parseDir(dir string) (string, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return "", err
	}
	if _, ok := l.pkgs[path]; ok {
		return path, nil
	}
	files, err := l.parseFiles(dir)
	if err != nil {
		return "", err
	}
	if len(files) == 0 {
		return "", nil
	}
	l.pkgs[path] = &loadEntry{dir: dir, files: files}
	return path, nil
}

func (l *Loader) parseFiles(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !buildTagsSatisfied(f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// buildTagsSatisfied evaluates a file's //go:build constraint (if any)
// under the default build configuration: current GOOS/GOARCH, the gc
// compiler, and no custom tags. Files gated behind tags like ocht_debug
// are excluded, matching what `go build ./...` compiles — the analyzers
// must see exactly one of each //go:build pair.
func buildTagsSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc"
			})
		}
	}
	return true
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// check type-checks the registered package at path, resolving
// module-internal imports recursively and stdlib imports via the source
// importer.
func (l *Loader) check(path string) (*Package, error) {
	ent, ok := l.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("analysis: package %s not loaded", path)
	}
	if ent.pkg != nil {
		return ent.pkg, nil
	}
	if ent.checking {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	ent.checking = true
	defer func() { ent.checking = false }()

	imp := importerFunc(func(ip string) (*types.Package, error) {
		if e, ok := l.pkgs[ip]; ok {
			pkg, err := l.check(ip)
			if err != nil {
				return nil, err
			}
			_ = e
			return pkg.Types, nil
		}
		if strings.HasPrefix(ip, l.Module+"/") {
			// A module-internal import not seen yet (single-dir loads):
			// parse it on demand.
			dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(ip, l.Module+"/")))
			if _, err := l.parseDir(dir); err != nil {
				return nil, err
			}
			pkg, err := l.check(ip)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
		return l.std.Import(ip)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(path, l.Fset, ent.files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var internal []string
	seen := map[string]bool{}
	for _, f := range ent.files {
		for _, spec := range f.Imports {
			ip := strings.Trim(spec.Path.Value, `"`)
			if (ip == l.Module || strings.HasPrefix(ip, l.Module+"/")) && !seen[ip] {
				seen[ip] = true
				internal = append(internal, ip)
			}
		}
	}
	sort.Strings(internal)
	ent.pkg = &Package{
		Dir:     ent.dir,
		Path:    path,
		Fset:    l.Fset,
		Files:   ent.files,
		Types:   tpkg,
		Info:    info,
		Imports: internal,
	}
	return ent.pkg, nil
}

// LoadFixture parses and type-checks a standalone fixture directory
// (typically under testdata, which LoadAll skips). The fixture's virtual
// import path defaults to its directory name; a //ocht:path directive in
// any of its files overrides it, letting fixtures exercise path-scoped
// analyzers (e.g. the internal/ingest scoping of walerr). Fixtures may
// import the standard library only.
func (l *Loader) LoadFixture(dir string) (*Package, error) {
	files, err := l.parseFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in fixture %s", dir)
	}
	path := filepath.Base(dir)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "//ocht:path "); ok {
					path = strings.TrimSpace(rest)
				}
			}
		}
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := &types.Config{Importer: importerFunc(func(ip string) (*types.Package, error) {
		return l.std.Import(ip)
	})}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture %s: %w", dir, err)
	}
	return &Package{Dir: dir, Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}
