package analysis

import "testing"

// TestTopoSortOrdersImportsFirst pins the load-order fix: alphabetical
// order put "ocht/a" before its dependency "ocht/z", so fact-consuming
// passes ran before the facts existed.
func TestTopoSortOrdersImportsFirst(t *testing.T) {
	pkgs := []*Package{
		{Path: "ocht/a", Imports: []string{"ocht/z"}},
		{Path: "ocht/m", Imports: []string{"ocht/a", "ocht/z"}},
		{Path: "ocht/z"},
	}
	got := topoSort(pkgs)
	index := map[string]int{}
	for i, p := range got {
		index[p.Path] = i
	}
	if len(got) != len(pkgs) {
		t.Fatalf("topoSort dropped packages: %d != %d", len(got), len(pkgs))
	}
	if !(index["ocht/z"] < index["ocht/a"] && index["ocht/a"] < index["ocht/m"]) {
		order := make([]string, len(got))
		for i, p := range got {
			order[i] = p.Path
		}
		t.Fatalf("wrong order: %v", order)
	}
}

// TestLoadAllDependencyOrder loads the real module and checks every
// package appears after all of its module-internal imports — the
// invariant cross-package facts depend on.
func TestLoadAllDependencyOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	index := map[string]int{}
	for i, p := range pkgs {
		index[p.Path] = i
	}
	for _, p := range pkgs {
		for _, imp := range p.Imports {
			di, ok := index[imp]
			if !ok {
				t.Errorf("%s imports %s, which LoadAll did not return", p.Path, imp)
				continue
			}
			if di >= index[p.Path] {
				t.Errorf("%s (index %d) loaded before its import %s (index %d)",
					p.Path, index[p.Path], imp, di)
			}
		}
	}
}
