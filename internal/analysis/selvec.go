package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// VecMaxLen mirrors vec.MaxLen (== vec.Size). The analyzer cannot import
// ocht/internal/vec — fixtures type-check without the module — so the
// constant is duplicated here; selvec_vec_test.go pins the two together.
const VecMaxLen = 1024

// vecDataFields are the data-slice fields of vec.Vector. Indexing one of
// these by a loop induction variable while a selection vector is in scope
// reads the wrong physical positions for every selective batch.
var vecDataFields = map[string]bool{
	"Bool": true, "I8": true, "I16": true, "I32": true,
	"I64": true, "I128": true, "F64": true, "Str": true, "Nulls": true,
}

// SelVec enforces selection-vector discipline in the kernel packages:
//
//   - ranging over a selection vector and indexing the same slice by both
//     the loop index and the selected element (one of them is wrong);
//   - ranging over a selection vector while ignoring its elements and
//     reading column data at the loop induction variable (the classic
//     forgot-the-sel bug — dense writes indexed by the induction variable
//     are the legitimate gather idiom and stay allowed);
//   - constant indexes or element values at or past vec.MaxLen, the batch
//     capacity every selection entry must stay below.
var SelVec = &Analyzer{
	Name: "selvec",
	Doc: "flags kernels that index columns by the loop induction variable " +
		"when a selection vector is in scope, and selection-vector entries " +
		"or indexes past vec.MaxLen",
	Run: runSelVec,
}

func runSelVec(pass *Pass) {
	if !pass.PathHasSuffix(hotPackages...) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.RangeStmt:
				checkSelRange(pass, t)
			case *ast.IndexExpr:
				checkSelConstIndex(pass, t)
			case *ast.AssignStmt:
				checkSelConstStore(pass, t)
			}
			return true
		})
	}
}

// isSelExpr reports whether e denotes a selection vector: an []int32
// expression named sel/rows, a .Sel field, or a Rows() call.
func (p *Pass) isSelExpr(e ast.Expr) bool {
	if !isInt32Slice(p.TypeOf(e)) {
		return false
	}
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name == "sel" || t.Name == "rows" || t.Name == "probeRows"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Sel" || t.Sel.Name == "sel" || t.Sel.Name == "rows"
	case *ast.CallExpr:
		if se, ok := t.Fun.(*ast.SelectorExpr); ok {
			return se.Sel.Name == "Rows"
		}
	case *ast.SliceExpr:
		return p.isSelExpr(t.X)
	}
	return false
}

func isInt32Slice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int32
}

func checkSelRange(pass *Pass, rs *ast.RangeStmt) {
	if !pass.isSelExpr(rs.X) {
		return
	}
	idxName := identName(rs.Key)
	valName := identName(rs.Value)

	if idxName != "" && valName != "" {
		// Mixed indexing: the same slice indexed by both the position in
		// the selection vector and the selected physical row.
		byIdx := map[string]ast.Node{}
		byVal := map[string]bool{}
		walkFuncBody(rs.Body, func(n ast.Node) bool {
			ix, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			switch identName(ix.Index) {
			case idxName:
				byIdx[exprKey(ix.X)] = ix
			case valName:
				byVal[exprKey(ix.X)] = true
			}
			return true
		})
		for key, node := range byIdx {
			if byVal[key] {
				pass.Reportf(node.Pos(),
					"slice %s indexed by both the selection-vector index %q and element %q in the same loop; one of them addresses the wrong rows",
					key, idxName, valName)
			}
		}
		return
	}

	if idxName == "" || valName != "" {
		return
	}
	// `for i := range sel` with the element ignored: reading column data
	// at i uses the dense position where a physical row is required.
	writes := selWriteTargets(rs.Body)
	walkFuncBody(rs.Body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok || identName(ix.Index) != idxName || writes[ix] {
			return true
		}
		if se, ok := ix.X.(*ast.SelectorExpr); ok && vecDataFields[se.Sel.Name] && isSliceType(pass.TypeOf(ix.X)) {
			pass.Reportf(ix.Pos(),
				"column %s read at loop induction variable %q while ranging over a selection vector; index by the selection element (%s[%s]) instead",
				exprKey(ix.X), idxName, exprKey(rs.X), idxName)
		}
		return true
	})
}

// selWriteTargets collects the IndexExprs appearing as assignment
// targets, i.e. dense scatter writes, which are legitimate.
func selWriteTargets(body ast.Node) map[*ast.IndexExpr]bool {
	writes := map[*ast.IndexExpr]bool{}
	walkFuncBody(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				writes[ix] = true
			}
		}
		return true
	})
	return writes
}

// checkSelConstIndex flags sel[k] with constant k >= vec.MaxLen.
func checkSelConstIndex(pass *Pass, ix *ast.IndexExpr) {
	if !pass.isSelExpr(ix.X) {
		return
	}
	if v, ok := intConst(pass, ix.Index); ok && v >= VecMaxLen {
		pass.Reportf(ix.Pos(), "selection vector indexed at constant %d >= vec.MaxLen (%d)", v, VecMaxLen)
	}
}

// checkSelConstStore flags sel[i] = k with constant k >= vec.MaxLen:
// entries are physical row numbers inside one batch.
func checkSelConstStore(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok || !pass.isSelExpr(ix.X) {
			continue
		}
		if v, ok := intConst(pass, as.Rhs[i]); ok && v >= VecMaxLen {
			pass.Reportf(as.Rhs[i].Pos(),
				"selection-vector entry %d >= vec.MaxLen (%d); entries are physical row positions within one batch", v, VecMaxLen)
		}
	}
}

func intConst(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	if tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	return v, exact
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func identName(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return ""
	}
	return id.Name
}
