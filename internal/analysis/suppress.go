package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// AllowName is the pseudo-analyzer name diagnostics about the suppression
// mechanism itself are reported under (missing justification, unused
// directives).
const AllowName = "allow"

// allowRE matches a suppression directive. The justification text after
// the closing parenthesis is mandatory: an allow with no reason is itself
// a finding — future readers must know why the rule does not apply.
var allowRE = regexp.MustCompile(`^//ocht:allow\(([a-zA-Z0-9_-]+)\)[ \t]*(.*)$`)

// allowEntry is one parsed //ocht:allow(<analyzer>) <justification>
// directive. Line-level entries suppress findings on their own line or the
// line directly below (trailing comments and the comment-above idiom);
// entries inside a function's doc comment suppress findings of that
// analyzer anywhere in the function body.
type allowEntry struct {
	file          string
	line          int
	analyzer      string
	justification string
	pkgPath       string
	// bodyStart/bodyEnd, when non-zero, widen the entry to a whole
	// function (the directive sat in its doc comment).
	bodyStart, bodyEnd int
	used               bool
}

// applyAllows filters suppressed diagnostics and appends diagnostics for
// malformed (justification-free) and unused directives. Unused directives
// are only reported for analyzers that actually ran, so a -run subset
// never flags the other analyzers' suppressions.
func applyAllows(pkgs []*Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	var entries []*allowEntry
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			// Doc-comment directives widen to the declared function's body.
			funcRange := map[int][2]int{} // directive line -> body line range
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || fd.Body == nil {
					continue
				}
				start := pkg.Fset.Position(fd.Body.Pos()).Line
				end := pkg.Fset.Position(fd.Body.End()).Line
				for _, c := range fd.Doc.List {
					if allowRE.MatchString(strings.TrimSpace(c.Text)) {
						funcRange[pkg.Fset.Position(c.Pos()).Line] = [2]int{start, end}
					}
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRE.FindStringSubmatch(strings.TrimSpace(c.Text))
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					e := &allowEntry{
						file:          pos.Filename,
						line:          pos.Line,
						analyzer:      m[1],
						justification: strings.TrimSpace(m[2]),
						pkgPath:       pkg.Path,
					}
					if r, ok := funcRange[pos.Line]; ok {
						e.bodyStart, e.bodyEnd = r[0], r[1]
					}
					if e.justification == "" {
						out = append(out, Diagnostic{
							Pos:      pos,
							Analyzer: AllowName,
							Message:  "//ocht:allow(" + e.analyzer + ") is missing its justification; say why the rule does not apply here",
							PkgPath:  pkg.Path,
						})
						continue // a justification-free allow suppresses nothing
					}
					entries = append(entries, e)
				}
			}
		}
	}

	for _, d := range diags {
		suppressed := false
		for _, e := range entries {
			if e.analyzer != d.Analyzer || e.file != d.Pos.Filename {
				continue
			}
			if d.Pos.Line == e.line || d.Pos.Line == e.line+1 ||
				(e.bodyStart != 0 && d.Pos.Line >= e.bodyStart && d.Pos.Line <= e.bodyEnd) {
				e.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}

	for _, e := range entries {
		if !e.used && ran[e.analyzer] {
			out = append(out, Diagnostic{
				Pos:      positionAt(e),
				Analyzer: AllowName,
				Message:  "unused //ocht:allow(" + e.analyzer + "): it suppresses nothing; remove it",
				PkgPath:  e.pkgPath,
			})
		}
	}
	return out
}

func positionAt(e *allowEntry) (p token.Position) {
	p.Filename = e.file
	p.Line = e.line
	p.Column = 1
	return p
}
