package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSrc parses+checks one in-memory fixture package.
func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// fakeCallVet reports every call to val(); the tests below aim allow
// directives at its diagnostics.
var fakeCallVet = &Analyzer{
	Name: "fake",
	Doc:  "test analyzer: flags calls to val",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "val" {
						p.Reportf(call.Pos(), "call to val")
					}
				}
				return true
			})
		}
	},
}

func TestAllowDirectives(t *testing.T) {
	pkg := loadSrc(t, `package p

func val() int { return 1 }

func suppressedLineAbove() int {
	//ocht:allow(fake) the raw value is deliberate here
	return val()
}

func missingJustification() int {
	//ocht:allow(fake)
	return val()
}

//ocht:allow(fake) stale directive: nothing in this function fires
func stale() int { return 0 }

//ocht:allow(fake) whole-body suppression via the doc comment
func docSuppressed() int { return val() + val() }

func unsuppressed() int { return val() }
`)
	diags := Run([]*Package{pkg}, []*Analyzer{fakeCallVet})
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	want := []struct{ analyzer, substr string }{
		{AllowName, "missing its justification"},
		{"fake", "call to val"}, // the justification-free allow suppresses nothing
		{AllowName, "unused //ocht:allow(fake)"},
		{"fake", "call to val"}, // unsuppressed()
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(want), strings.Join(got, "\n"))
	}
	for i, w := range want {
		if diags[i].Analyzer != w.analyzer || !strings.Contains(diags[i].Message, w.substr) {
			t.Errorf("diag[%d] = %s: %s, want analyzer %s containing %q",
				i, diags[i].Analyzer, diags[i].Message, w.analyzer, w.substr)
		}
	}
}

// TestAllowUnusedOnlyForRanAnalyzers checks a -run subset does not flag
// suppressions belonging to analyzers that did not run.
func TestAllowUnusedOnlyForRanAnalyzers(t *testing.T) {
	pkg := loadSrc(t, `package p

func val() int { return 1 }

func f() int {
	//ocht:allow(otheranalyzer) justified elsewhere; its analyzer is not running
	return 0
}
`)
	diags := Run([]*Package{pkg}, []*Analyzer{fakeCallVet})
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics, got %v", diags)
	}
}
