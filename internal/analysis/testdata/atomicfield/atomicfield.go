// Package fixture seeds 64-bit atomic alignment and mixed-access
// violations.
//
//ocht:path ocht/internal/server
package fixture

import "sync/atomic"

// badCounter puts the atomic word after a bool: offset 4 under 32-bit
// layout, which faults on 386/ARM.
type badCounter struct {
	closed bool
	count  int64
}

func (c *badCounter) inc() {
	atomic.AddInt64(&c.count, 1) // want "not 8-byte aligned"
}

// mixed is aligned (field first) but read plainly elsewhere.
type mixed struct {
	n     int64
	label string
}

func (m *mixed) bump() {
	atomic.AddInt64(&m.n, 1)
}

func (m *mixed) read() int64 {
	return m.n // want "accessed atomically elsewhere but plainly here"
}

// good pads the word to an 8-byte offset and touches it atomically only.
type good struct {
	gen int32
	_   int32
	n   uint64
}

func (g *good) load() uint64 {
	return atomic.LoadUint64(&g.n)
}

// typedGood is the pattern the analyzer pushes toward: the typed atomic
// wrappers are alignment-guaranteed by the runtime and cannot be accessed
// plainly.
type typedGood struct {
	closed bool
	count  atomic.Int64
}

func (t *typedGood) inc() {
	t.count.Add(1)
}
