// Package fixture seeds pull-loop cancellation violations. QCtx mirrors
// the engine's query context by name, which is how the analyzer matches.
//
//ocht:path ocht/internal/exec
package fixture

// QCtx is the fixture's stand-in for exec.QCtx.
type QCtx struct {
	done chan struct{}
}

func (q *QCtx) checkCancel() {}

// Done exposes the cancellation channel.
func (q *QCtx) Done() <-chan struct{} { return q.done }

// Batch is a unit of pulled work.
type Batch struct{ N int }

// Operator is the pull interface.
type Operator interface {
	Next(qc *QCtx) *Batch
}

// drainBad pulls batches forever without ever polling cancellation.
func drainBad(op Operator, qc *QCtx) int {
	n := 0
	for { // want "pulls batches (.Next(qc)) but never polls cancellation"
		b := op.Next(qc)
		if b == nil {
			break
		}
		n += b.N
	}
	return n
}

// drainGood polls once per pulled batch.
func drainGood(op Operator, qc *QCtx) int {
	n := 0
	for {
		qc.checkCancel()
		b := op.Next(qc)
		if b == nil {
			break
		}
		n += b.N
	}
	return n
}

// drainSelect waits on the done channel instead of polling.
func drainSelect(op Operator, qc *QCtx) int {
	n := 0
	for {
		select {
		case <-qc.Done():
			return n
		default:
		}
		b := op.Next(qc)
		if b == nil {
			break
		}
		n += b.N
	}
	return n
}

// scalarLoop has no batch pulls; loops without Next calls are out of
// scope.
func scalarLoop(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
