// Package fixture seeds background-runner loops that outlive shutdown.
//
//ocht:path ocht/internal/ingest
package fixture

type table struct{}

func (t *table) seal() {}

type engine struct {
	stopCh chan struct{}
	tick   chan struct{}
	tables []*table
}

func (e *engine) stopped() bool {
	select {
	case <-e.stopCh:
		return true
	default:
		return false
	}
}

// runSealerBad blocks correctly in the outer loop but walks tables with
// no stop poll: a long table list keeps sealing after Close.
func (e *engine) runSealerBad() {
	for {
		select {
		case <-e.stopCh:
			return
		case <-e.tick:
		}
		for _, t := range e.tables { // want "no channel wait or stop poll"
			t.seal()
		}
	}
}

// runSealerGood polls the stop signal per table.
func (e *engine) runSealerGood() {
	for {
		select {
		case <-e.stopCh:
			return
		case <-e.tick:
		}
		for _, t := range e.tables {
			if e.stopped() {
				return
			}
			t.seal()
		}
	}
}

// drainAll is not a run* background runner; its loops are out of scope.
func (e *engine) drainAll() {
	for _, t := range e.tables {
		t.seal()
	}
}
