// Package fixture seeds encoding-dispatch violations. Vector/Encoding
// mirror the engine's vec types by name, which is how the analyzer
// matches; the virtual path puts the payload-access rule in scope.
//
//ocht:path ocht/internal/exec
package fixture

// Encoding mirrors vec.Encoding.
type Encoding uint8

// The three encodings every dispatch must account for.
const (
	EncPlain Encoding = iota
	EncDict
	EncPacked
)

// StrRef mirrors vec.StrRef.
type StrRef struct{ Off, Len uint32 }

// Vector mirrors vec.Vector's payload layout.
type Vector struct {
	Enc    Encoding
	I64    []int64
	Str    []StrRef
	Codes  []uint32
	Packed []uint64
}

// Batch mirrors vec.Batch: its vectors arrive in their stored encoding.
type Batch struct {
	Vecs []*Vector
}

// New mirrors vec.New: a freshly allocated vector is plain.
func New() *Vector { return &Vector{} }

// Materialize decodes into a fresh plain vector.
func (v *Vector) Materialize() *Vector { return New() }

// lenBad dispatches on the encoding but forgets the packed case.
func lenBad(v *Vector) int {
	switch v.Enc { // want "does not handle EncPacked"
	case EncPlain:
		return len(v.I64)
	case EncDict:
		return len(v.Codes)
	}
	return 0
}

// lenDefault is exhaustive by way of a default clause.
func lenDefault(v *Vector) int {
	switch v.Enc {
	case EncDict:
		return len(v.Codes)
	default:
		return len(v.I64)
	}
	return 0
}

// chainBad dispatches with an if chain and drops packed vectors on the
// floor.
func chainBad(v *Vector) int64 {
	if v.Enc == EncPlain { // want "missing EncPacked"
		return v.I64[0]
	} else if v.Enc == EncDict {
		return int64(v.Codes[0])
	}
	return 0
}

// chainElse is fine: the trailing else catches every encoding.
func chainElse(v *Vector) int64 {
	if v.Enc == EncPlain {
		return v.I64[0]
	} else if v.Enc == EncDict {
		return int64(v.Codes[0])
	} else {
		return int64(v.Packed[0])
	}
}

// fastPath is a single guard, not a dispatch: exempt.
func fastPath(v *Vector) int64 {
	if v.Enc == EncPacked {
		return int64(v.Packed[0])
	}
	return v.I64[0]
}

// rawAccess indexes a batch vector's payload with no encoding proof.
func rawAccess(b *Batch) int64 {
	v := b.Vecs[0]
	return v.I64[0] // want "may still be dict- or FoR-encoded"
}

// rawDirect indexes the batch slot inline; same violation.
func rawDirect(b *Batch) int64 {
	return b.Vecs[1].I64[0] // want "may still be dict- or FoR-encoded"
}

// guarded proves plainness by branching on the encoding first.
func guarded(b *Batch) int64 {
	v := b.Vecs[0]
	if v.Enc == EncPlain {
		return v.I64[0]
	}
	return 0
}

// materialized decodes before touching the payload.
func materialized(b *Batch) int64 {
	v := b.Vecs[0]
	v = v.Materialize()
	return v.I64[0]
}

// viewOf passes a batch vector through: it earns the encoded-source fact.
func viewOf(b *Batch) *Vector { return b.Vecs[1] }

// viaFact shows the fact propagating through the call.
func viaFact(b *Batch) int64 {
	v := viewOf(b)
	return v.I64[0] // want "may still be dict- or FoR-encoded"
}

// fresh returns a materializer result: it earns the plain-result fact.
func fresh() *Vector { return New() }

// viaPlainFact assigns from a plain-result function: clean.
func viaPlainFact(b *Batch) int64 {
	_ = b
	v := fresh()
	return v.I64[0]
}

// suppressed documents a deliberate raw read.
func suppressed(b *Batch) int64 {
	v := b.Vecs[0]
	//ocht:allow(encswitch) decoder self-test reads raw words deliberately
	return v.I64[0]
}
