// Package fixture seeds wire-error classification violations. Client and
// Transient mirror the dist layer's wire client and classifier by name;
// the virtual path puts the rule in scope.
//
//ocht:path ocht/internal/dist
package fixture

import "errors"

// Client mirrors dist.Client: its methods are the wire boundary.
type Client struct{}

// ShardQuery is a wire call.
func (c *Client) ShardQuery(shard string) (int, error) {
	_ = shard
	return 0, errors.New("boom")
}

// Push is a wire call with only an error result.
func (c *Client) Push(shard string) error {
	_ = shard
	return errors.New("boom")
}

// Transient mirrors dist.Transient: the one place that classifies wire
// errors into retryable and fatal.
func Transient(err error) bool { return err == nil }

// dropBare discards a wire error by calling for side effects only.
func dropBare(c *Client) {
	c.Push("a") // want "error from wire call Push discarded"
}

// dropBlank discards a wire error with a blank assignment.
func dropBlank(c *Client) int {
	n, _ := c.ShardQuery("a") // want "assigned to _"
	return n
}

// retryNoClassify retries wire errors without asking what kind they are:
// a fatal protocol error loops three times for nothing.
func retryNoClassify(c *Client) int {
	for i := 0; i < 3; i++ { // want "never consults Transient"
		n, err := c.ShardQuery("a")
		if err != nil {
			continue
		}
		return n
	}
	return -1
}

// retryClassified is the sanctioned retry loop: fatal errors bail out.
func retryClassified(c *Client) int {
	for i := 0; i < 3; i++ {
		n, err := c.ShardQuery("a")
		if err != nil {
			if !Transient(err) {
				return -1
			}
			continue
		}
		return n
	}
	return -1
}

// pull wraps a wire call and returns its error: it inherits the wire
// fact, so its callers face the same rules.
func pull(c *Client) error { return c.Push("b") }

// dropWrapped shows the fact propagating through the wrapper.
func dropWrapped(c *Client) {
	pull(c) // want "error from wire call pull discarded"
}

// forward neither drops nor blindly retries: fine.
func forward(c *Client) error {
	if err := c.Push("c"); err != nil {
		return err
	}
	return nil
}

// suppressed documents a fire-and-forget probe.
func suppressed(c *Client) {
	//ocht:allow(errclass) warm-up probe; the caller only cares about side effects
	c.Push("warmup")
}
