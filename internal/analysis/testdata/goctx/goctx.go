// Package fixture seeds goroutine shutdown-discipline violations. The
// virtual path places it in the dist layer, where the rule applies.
//
//ocht:path ocht/internal/dist
package fixture

import (
	"context"
	"sync"
)

var sink int

// spin runs forever with no way to stop it.
func spin() {
	n := 0
	for {
		n++
		sink = n
	}
}

// leakLit spawns an unstoppable closure.
func leakLit(work chan int) {
	go func() { // want "no shutdown path"
		for {
			sink += <-work
		}
	}()
}

// leakNamed spawns an unstoppable named function.
func leakNamed() {
	go spin() // want "no shutdown path"
}

// stopAware selects on a stop channel: fine.
func stopAware(stop chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case w := <-work:
				sink += w
			}
		}
	}()
}

// ctxAware selects on ctx.Done(): fine.
func ctxAware(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case w := <-work:
				sink += w
			}
		}
	}()
}

// joined is WaitGroup-bounded: the spawner's Wait joins it.
func joined(wg *sync.WaitGroup, xs []int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, x := range xs {
			sink += x
		}
	}()
}

// ranged drains a channel until the sender closes it: fine.
func ranged(work chan int) {
	go func() {
		for w := range work {
			sink += w
		}
	}()
}

// bounded hands the goroutine a context: its work is cancellable
// downstream even though the body is out of analysis reach.
func bounded(ctx context.Context) {
	go waitOn(ctx)
}

func waitOn(ctx context.Context) { <-ctx.Done() }

// suppressed documents a process-lifetime goroutine.
func suppressed() {
	//ocht:allow(goctx) process-lifetime metrics pump; dies with the process
	go spin()
}
