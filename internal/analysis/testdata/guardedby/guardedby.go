// Package fixture seeds //ocht:guarded-by violations: annotated fields
// accessed without the named mutex held.
package fixture

import "sync"

type counterSet struct {
	mu sync.Mutex
	//ocht:guarded-by mu
	counts map[string]int
	name   string // unannotated: free access
}

// newCounterSet is a constructor: the value is not shared yet.
func newCounterSet(name string) *counterSet {
	c := &counterSet{counts: map[string]int{}}
	c.counts["boot"] = 1
	c.name = name
	return c
}

// Inc locks before touching the guarded field: fine.
func (c *counterSet) Inc(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[k]++
}

// Peek reads the guarded map with no lock anywhere in sight.
func (c *counterSet) Peek(k string) int {
	return c.counts[k] // want "no c.mu.Lock()/RLock() precedes this access in Peek"
}

// incLocked relies on the caller holding mu, and says so.
func (c *counterSet) incLocked(k string) {
	//ocht:allow(guardedby) callers hold c.mu; only Inc and Merge reach here
	c.counts[k]++
}

// Merge locks once and calls the locked-convention helper.
func (c *counterSet) Merge(other map[string]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range other {
		for i := 0; i < v; i++ {
			c.incLocked(k)
		}
	}
}

// construct builds a local value: under construction, no lock needed.
func construct() map[string]int {
	local := &counterSet{counts: map[string]int{}}
	local.counts["x"] = 1
	return local.counts
}

type gauge struct {
	mu sync.RWMutex
	//ocht:guarded-by mu
	v int64
}

// Load takes the read lock: fine.
func (g *gauge) Load() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// bump forgets the lock entirely.
func (g *gauge) bump() {
	g.v++ // want "no g.mu.Lock()/RLock() precedes this access in bump"
}
