// Package fixture seeds hotalloc violations and their corrected forms.
//
//ocht:path ocht/internal/vec
package fixture

// sink is an interface-taking helper; passing a concrete value to it
// boxes the argument.
func sink(v interface{}) {}

// cleanup is a plain helper so defer statements don't also box arguments.
func cleanup() {}

type pair struct{ a, b int64 }

// OpBad is hot by the primitive naming convention and allocates every
// which way.
func OpBad(dst, src []int64, rows []int32) {
	tmp := make([]int64, 16) // want "make() inside hot kernel OpBad"
	_ = tmp
	f := func(x int64) int64 { return x + 1 } // want "closure allocated inside hot kernel OpBad"
	for i, r := range rows {
		dst[i] = f(src[r])
	}
	p := &pair{a: 1, b: 2} // want "heap allocation (&composite literal) inside hot kernel OpBad"
	_ = p
	xs := []int64{1, 2} // want "slice/map literal allocation inside hot kernel OpBad"
	_ = xs
	defer cleanup() // want "defer inside hot kernel OpBad"
}

// HashBad boxes and copies strings inside the loop.
func HashBad(dst []uint64, keys []string) {
	for i, k := range keys {
		b := []byte(k) // want "string<->[]byte conversion allocates inside hot kernel HashBad"
		_ = b
		sink(i)             // want "argument boxed into interface parameter inside hot kernel HashBad"
		v := interface{}(k) // want "interface conversion (boxing) inside hot kernel HashBad"
		_ = v
		dst[i] = uint64(len(k))
	}
}

// inDomainish is outside the naming convention but opts in.
//
//ocht:hot
func inDomainish(lo, hi, x int64) bool {
	bounds := []int64{lo, hi} // want "slice/map literal allocation inside hot kernel inDomainish"
	return x >= bounds[0] && x <= bounds[1]
}

// OpClean is a hot kernel written the right way: no allocations, scalar
// work only.
func OpClean(dst, src []int64, rows []int32) {
	for i, r := range rows {
		dst[i] = src[r] + 1
	}
}

// buildPlan is per-batch setup — not hot by name, not annotated — where
// allocating closures and slices is exactly where they belong.
func buildPlan(n int) (func(int64) int64, []int64) {
	scratch := make([]int64, n)
	add := func(x int64) int64 { return x + int64(n) }
	return add, scratch
}

// SwarBad is hot by the SWAR kernel naming convention.
func SwarBad(words []uint64, out []bool) {
	scratch := make([]uint64, 2) // want "make() inside hot kernel SwarBad"
	_ = scratch
	for i := range out {
		out[i] = words[i/8]&1 == 1
	}
}

// mixBatchBad is the unexported batch-hash spelling.
func mixBatchBad(w, out []uint64) {
	lanes := []uint64{0, 1} // want "slice/map literal allocation inside hot kernel mixBatchBad"
	for i := range w {
		out[i] = w[i] ^ lanes[i&1]
	}
}

// cmpPackedish follows the comparison-kernel convention and stays clean.
func cmpPackedish(words []uint64, c uint64, out []bool) {
	for i := range out {
		out[i] = words[i] >= c
	}
}
