// Package fixture seeds selection-vector violations and the corrected
// idioms. The Vector type mirrors vec.Vector's data fields.
//
//ocht:path ocht/internal/agg
package fixture

// Vector mirrors the engine's column layout.
type Vector struct {
	I64   []int64
	F64   []float64
	Nulls []bool
}

// OpMixed indexes the same slice by both the selection position and the
// selected row — one of them is wrong.
func OpMixed(acc *Vector, sel []int32) {
	for i, r := range sel {
		acc.I64[i] += acc.I64[r] // want "indexed by both the selection-vector index"
	}
}

// OpForgot ranges over the selection vector but reads the column at the
// dense loop position — the classic forgot-the-sel bug.
func OpForgot(dst []int64, src *Vector, sel []int32) {
	for i := range sel {
		dst[i] = src.I64[i] // want "read at loop induction variable"
	}
}

// OpGather is the corrected form: the selection element addresses the
// column, the induction variable addresses the dense output.
func OpGather(dst []int64, src *Vector, sel []int32) {
	for i, r := range sel {
		dst[i] = src.I64[r]
	}
}

// OpDenseInit writes a column at the induction variable with the
// selection ignored — the legitimate dense-initialization idiom.
func OpDenseInit(dst *Vector, rows []int32) {
	for i := range rows {
		dst.Nulls[i] = false
	}
}

// OpConstBounds exercises the vec.MaxLen bounds rules.
func OpConstBounds(sel []int32) int32 {
	sel[0] = 4096    // want "selection-vector entry 4096"
	return sel[1024] // want "selection vector indexed at constant 1024"
}

// OpDenseLoop ranges over plain column data, not a selection vector; the
// analyzer must stay silent.
func OpDenseLoop(dst []int64, src *Vector) {
	for i, v := range src.I64 {
		dst[i] = v
	}
}
