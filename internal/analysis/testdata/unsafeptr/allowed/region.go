// Package fixture exercises the in-allowlist unsafe rules against a
// USSR-style self-aligned region.
//
//ocht:path ocht/internal/ussr
package fixture

import "unsafe"

const regionBytes = 512 << 10

type region struct {
	base unsafe.Pointer
}

// goodMasked keeps the offset inside the region by masking.
func (r *region) goodMasked(off uint32) unsafe.Pointer {
	return unsafe.Add(r.base, int(off)&(regionBytes-1))
}

// goodMod keeps the offset inside the region by wrapping.
func (r *region) goodMod(off int) unsafe.Pointer {
	return unsafe.Add(r.base, off%regionBytes)
}

// goodConst uses a constant offset below the region size.
func (r *region) goodConst() unsafe.Pointer {
	return unsafe.Add(r.base, regionBytes-8)
}

// badUnbounded adds an arbitrary offset that can escape the region.
func (r *region) badUnbounded(off uint32) unsafe.Pointer {
	return unsafe.Add(r.base, int(off)) // want "not provably inside the 512 kB self-aligned region"
}

// badConst addresses one past the region.
func (r *region) badConst() unsafe.Pointer {
	return unsafe.Add(r.base, regionBytes) // want "constant pointer offset 524288 outside the 512 kB self-aligned region"
}

// badOldStyle is the pre-1.17 arithmetic spelling with an unbounded
// offset.
func (r *region) badOldStyle(off uintptr) unsafe.Pointer {
	return unsafe.Pointer(uintptr(r.base) + off) // want "not provably inside the 512 kB self-aligned region"
}

// badStash stores a uintptr; the GC no longer tracks the pointer.
func (r *region) badStash() uintptr {
	p := uintptr(r.base) // want "converted to uintptr and stored"
	return p
}
