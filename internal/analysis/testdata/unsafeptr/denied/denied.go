// Package fixture imports unsafe from outside the allowlist.
//
//ocht:path ocht/internal/exec
package fixture

import "unsafe" // want "import of unsafe outside the allowlist"

// Sizeof is here only to use the import.
func Sizeof(x int64) uintptr {
	return unsafe.Sizeof(x)
}
