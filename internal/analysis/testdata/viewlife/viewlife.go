// Package fixture seeds zero-copy view lifetime violations. Dict/Column
// mirror the storage layer's scratch-returning accessors by name.
//
//ocht:path ocht/internal/storage
package fixture

// StrRef mirrors vec.StrRef.
type StrRef struct{ Off, Len uint32 }

// Dict decodes strings into a shared scratch buffer.
type Dict struct {
	scratch []byte
}

// StrAt returns the i'th string's bytes, aliasing the scratch: valid only
// until the next StrAt call.
func (d *Dict) StrAt(i int) []byte {
	_ = i
	return d.scratch
}

// Column owns per-column view scratch.
type Column struct {
	refScratch []StrRef
	dict       Dict
}

// ViewBlock returns zero-copy refs into the column's scratch.
func (c *Column) ViewBlock(i int) (int, []StrRef, []byte) {
	_ = i
	return len(c.refScratch), c.refScratch, nil
}

// Block exposes the compressed code words of a sealed block.
type Block struct{ ZCodes []uint32 }

type holder struct {
	refs  []StrRef
	bytes []byte
}

type cache struct{ codes []uint32 }

var global []byte

// escapeField parks view refs in a struct field: use-after-overwrite.
func escapeField(c *Column, h *holder) {
	_, refs, _ := c.ViewBlock(0)
	h.refs = refs // want "stored into field h.refs"
}

// escapeGlobal leaks scratch bytes into a package variable.
func escapeGlobal(d *Dict) {
	global = d.StrAt(3) // want "package variable global"
}

// escapeMap parks scratch bytes in a map.
func escapeMap(d *Dict, m map[int][]byte) {
	m[7] = d.StrAt(7) // want "element m[7]"
}

// escapeZCodes retains a sealed block's compressed words.
func escapeZCodes(b *Block, c *cache) {
	c.codes = b.ZCodes // want "stored into field c.codes"
}

// rawName wraps a view accessor under another name: it earns the view
// fact, so its callers' results taint too.
func rawName(d *Dict) []byte { return d.StrAt(0) }

// escapeViaWrapper shows the fact propagating through rawName.
func escapeViaWrapper(d *Dict, h *holder) {
	h.bytes = rawName(d) // want "stored into field h.bytes"
}

// copies shows the sanctioned escapes: conversions and appends copy.
func copies(d *Dict, h *holder) string {
	name := string(d.StrAt(1))                   // string() copies
	h.bytes = append([]byte(nil), d.StrAt(2)...) // append copies
	return name
}

// localUse is the intended pattern: consume the view before the next call.
func localUse(d *Dict) int {
	b := d.StrAt(4)
	n := 0
	for _, x := range b {
		n += int(x)
	}
	return n
}

// retained documents an audited store: the holder owns the scratch and
// hands it back on the next call.
func retained(c *Column, h *holder) {
	_, refs, _ := c.ViewBlock(0)
	//ocht:retain-checked h owns this scratch and passes it back to the next ViewBlock
	h.refs = refs
}

// suppressed shows the generic allow escape hatch also applies.
func suppressed(b *Block, c *cache) {
	//ocht:allow(viewlife) cache is invalidated before the block is resealed
	c.codes = b.ZCodes
}
