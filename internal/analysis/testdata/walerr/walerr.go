// Package fixture seeds dropped durable-write errors on the WAL path.
//
//ocht:path ocht/internal/ingest
package fixture

import (
	"bufio"
	"bytes"
	"os"
)

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}

// finishBad drops every error that decides durability.
func finishBad(f *os.File, bw *bufio.Writer, dir string) {
	bw.Flush()   // want "error from bw.Flush dropped"
	f.Sync()     // want "error from f.Sync dropped"
	f.Close()    // want "error from f.Close dropped"
	syncDir(dir) // want "error from syncDir dropped"
}

// finishGood propagates or explicitly discards each one.
func finishGood(f *os.File, bw *bufio.Writer, dir string) error {
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // explicit discard on the error path: allowed
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return syncDir(dir)
}

// buffered writes to an in-memory buffer; bytes.Buffer writes cannot
// fail, so dropping the result is fine.
func buffered(buf *bytes.Buffer, b []byte) {
	buf.Write(b)
}
