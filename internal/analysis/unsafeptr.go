package analysis

import (
	"go/ast"
	"go/types"
)

// ussrRegionBytes is the USSR data-region size (512 kB): the self-aligned
// region any unsafe pointer arithmetic must stay inside.
const ussrRegionBytes = 512 << 10

// unsafeAllowed are the only packages permitted to import unsafe: the
// string subsystems that mirror the paper's raw-pointer representation.
var unsafeAllowed = []string{
	"internal/ussr",
	"internal/strheap",
	"internal/strhash",
}

// UnsafePtr restricts unsafe to the string-subsystem allowlist and, inside
// the allowlist, enforces the two rules that keep pointer arithmetic sound:
// a pointer round-tripped through uintptr must stay within a single
// expression (a stored uintptr is invisible to the GC and stale after any
// move), and offsets added to a region base must be provably inside the
// 512 kB self-aligned region — a constant below the region size, or an
// expression masked/modulo'd by one.
var UnsafePtr = &Analyzer{
	Name: "unsafeptr",
	Doc: "restricts unsafe to internal/ussr, internal/strheap and " +
		"internal/strhash, and flags stored uintptrs and unbounded pointer " +
		"offsets that can escape the 512 kB self-aligned region",
	Run: runUnsafePtr,
}

func runUnsafePtr(pass *Pass) {
	allowed := pass.PathHasSuffix(unsafeAllowed...)
	for _, f := range pass.Files {
		importsUnsafe := false
		for _, imp := range f.Imports {
			if imp.Path.Value == `"unsafe"` {
				importsUnsafe = true
				if !allowed {
					pass.Reportf(imp.Pos(),
						"import of unsafe outside the allowlist (internal/ussr, internal/strheap, internal/strhash)")
				}
			}
		}
		if !importsUnsafe || !allowed {
			continue
		}
		checkUnsafeUsage(pass, f)
	}
}

func checkUnsafeUsage(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range t.Rhs {
				if conv := asUintptrOfPointer(pass, rhs); conv != nil {
					pass.Reportf(conv.Pos(),
						"unsafe.Pointer converted to uintptr and stored; the GC does not track uintptrs — keep the round-trip inside one expression")
				}
			}
		case *ast.ValueSpec:
			for _, v := range t.Values {
				if conv := asUintptrOfPointer(pass, v); conv != nil {
					pass.Reportf(conv.Pos(),
						"unsafe.Pointer converted to uintptr and stored; the GC does not track uintptrs — keep the round-trip inside one expression")
				}
			}
		case *ast.CallExpr:
			if isUnsafeCall(pass, t, "Add") && len(t.Args) == 2 {
				checkRegionOffset(pass, t.Args[1])
			}
			// unsafe.Pointer(uintptr(p) + off) — the pre-1.17 arithmetic
			// spelling.
			if isUnsafeCall(pass, t, "Pointer") && len(t.Args) == 1 {
				if bin, ok := t.Args[0].(*ast.BinaryExpr); ok && bin.Op.String() == "+" {
					checkRegionOffset(pass, bin.Y)
				}
			}
		}
		return true
	})
}

// asUintptrOfPointer returns the conversion call if e is uintptr(x) with
// x an unsafe.Pointer.
func asUintptrOfPointer(pass *Pass, e ast.Expr) *ast.CallExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Uintptr {
		return nil
	}
	at := pass.TypeOf(call.Args[0])
	if at == nil {
		return nil
	}
	if b2, ok := at.Underlying().(*types.Basic); ok && b2.Kind() == types.UnsafePointer {
		return call
	}
	return nil
}

func isUnsafeCall(pass *Pass, call *ast.CallExpr, name string) bool {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || se.Sel.Name != name {
		return false
	}
	id, ok := se.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "unsafe"
}

// checkRegionOffset accepts offsets provably inside the region: integer
// constants below 512 kB, or expressions whose top-level operation masks
// (&) or wraps (%) by a constant at most the region size. Everything else
// can address past the self-aligned region and is flagged.
func checkRegionOffset(pass *Pass, off ast.Expr) {
	if v, ok := intConst(pass, off); ok {
		if v < 0 || v >= ussrRegionBytes {
			pass.Reportf(off.Pos(), "constant pointer offset %d outside the 512 kB self-aligned region", v)
		}
		return
	}
	if e, ok := off.(*ast.ParenExpr); ok {
		checkRegionOffset(pass, e.X)
		return
	}
	if conv, ok := off.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		if tv, isType := pass.Info.Types[conv.Fun]; isType && tv.IsType() {
			checkRegionOffset(pass, conv.Args[0])
			return
		}
	}
	if bin, ok := off.(*ast.BinaryExpr); ok {
		switch bin.Op.String() {
		case "&":
			if boundedBy(pass, bin.X, bin.Y, ussrRegionBytes-1) {
				return
			}
		case "%":
			if v, isConst := intConst(pass, bin.Y); isConst && v > 0 && v <= ussrRegionBytes {
				return
			}
		case "*":
			// slot*8 style scaling: bounded iff one side is a bounded mask
			// expression; conservatively recurse into both operands.
			checkRegionOffset(pass, bin.X)
			checkRegionOffset(pass, bin.Y)
			return
		}
	}
	pass.Reportf(off.Pos(),
		"pointer offset is not provably inside the 512 kB self-aligned region; mask it (off & (regionSize-1)) or bound it with a constant")
}

// boundedBy reports whether either operand of an & is a constant <= bound.
func boundedBy(pass *Pass, x, y ast.Expr, bound int64) bool {
	if v, ok := intConst(pass, x); ok && v >= 0 && v <= bound {
		return true
	}
	if v, ok := intConst(pass, y); ok && v >= 0 && v <= bound {
		return true
	}
	return false
}
