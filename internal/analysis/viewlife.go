package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// viewRootNames are the zero-copy accessors whose slice results alias
// per-column scratch buffers that the next ViewBlock/StrAt call on the
// same receiver overwrites: storage.Column.ViewBlock (dictionary refs),
// Column.StrAt / blockzip.Dict.StrAt (string bytes decoded into scratch).
var viewRootNames = map[string]bool{
	"ViewBlock": true,
	"StrAt":     true,
}

// viewRootFields are struct fields whose slices alias the sealed block's
// compressed payload (valid only while the block is resident).
var viewRootFields = map[string]bool{
	"ZCodes": true,
}

// retainDirective marks a store the author has audited: the receiver is
// the scratch's owner, or the alias provably dies before the next view.
const retainDirective = "//ocht:retain-checked"

// viewFact marks a function that returns scratch-aliased slices, so its
// callers' results are tainted too (e.g. storage.Column.StrAt wraps
// blockzip.Dict.StrAt; both are roots by name, but wrappers with other
// names are caught through this fact).
type viewFact struct{}

func (viewFact) AFact() {}

// ViewLife enforces the zero-copy lifetime rule from the sealed-block
// read path: slices returned by ViewBlock/StrAt/ZCodes alias reusable
// scratch (or the compressed block itself) and are valid only until the
// next view call — storing one into a struct field, map, slice element or
// package variable is a use-after-overwrite waiting to happen. Escaping
// stores must either copy (string(b), append, copy) — which the taint
// tracking recognizes as cleansing — or carry a //ocht:retain-checked
// comment on the store's line or the line above.
var ViewLife = &Analyzer{
	Name: "viewlife",
	Doc: "flags zero-copy view slices (ViewBlock refs, StrAt bytes, ZCodes) " +
		"escaping into fields, maps or globals without an explicit copy or " +
		"//ocht:retain-checked audit marker",
	Run: runViewLife,
}

func runViewLife(pass *Pass) {
	// Two rounds so a package-internal wrapper declared after its caller
	// still contributes its fact; only the last round reports.
	for round := 0; round < 2; round++ {
		report := round == 1
		for _, f := range pass.Files {
			retained := retainLines(pass, f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				v := &viewWalker{pass: pass, tainted: map[string]bool{}, retained: retained, report: report}
				ast.Inspect(fd.Body, v.visit)
				if v.returnsView {
					if obj := pass.Info.Defs[fd.Name]; obj != nil && !pass.HasObjectFact(obj, &viewFact{}) {
						pass.ExportObjectFact(obj, &viewFact{})
					}
				}
			}
		}
	}
}

// retainLines collects the line numbers carrying a retain directive.
func retainLines(pass *Pass, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), retainDirective) {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

type viewWalker struct {
	pass        *Pass
	tainted     map[string]bool // exprKey of slice-typed locals aliasing scratch
	retained    map[int]bool
	report      bool
	returnsView bool
}

func (v *viewWalker) visit(n ast.Node) bool {
	switch t := n.(type) {
	case *ast.AssignStmt:
		v.assign(t)
	case *ast.ReturnStmt:
		for _, r := range t.Results {
			if v.isView(r) {
				v.returnsView = true
			}
		}
	}
	return true
}

func (v *viewWalker) assign(t *ast.AssignStmt) {
	// A multi-value call taints every slice-typed LHS (ViewBlock returns
	// (count, refs, bytes): the int is harmless, both slices alias).
	if len(t.Rhs) == 1 && len(t.Lhs) > 1 {
		if v.isView(t.Rhs[0]) {
			for _, l := range t.Lhs {
				v.sink(l, t.Rhs[0])
			}
		}
		return
	}
	for i, l := range t.Lhs {
		if i < len(t.Rhs) {
			if v.isView(t.Rhs[i]) {
				v.sink(l, t.Rhs[i])
			} else if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
				// Reassignment from a clean value clears the taint.
				delete(v.tainted, id.Name)
			}
		}
	}
}

// sink records taint for local variables and reports escaping stores.
func (v *viewWalker) sink(lhs ast.Expr, rhs ast.Expr) {
	if !isSliceLike(v.pass.TypeOf(lhs)) {
		return
	}
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if obj := v.pass.Info.Defs[l]; obj != nil {
			v.tainted[l.Name] = true
			return
		}
		obj := v.pass.Info.Uses[l]
		if obj != nil && obj.Parent() == v.pass.Pkg.Scope() {
			v.escape(lhs, "package variable "+l.Name)
			return
		}
		v.tainted[l.Name] = true
	case *ast.SelectorExpr:
		v.escape(lhs, "field "+exprKey(l))
	case *ast.IndexExpr:
		v.escape(lhs, "element "+exprKey(l))
	case *ast.StarExpr:
		v.escape(lhs, "pointee "+exprKey(l))
	}
}

func (v *viewWalker) escape(lhs ast.Expr, what string) {
	if !v.report {
		return
	}
	line := v.pass.Fset.Position(lhs.Pos()).Line
	if v.retained[line] || v.retained[line-1] {
		return
	}
	v.pass.Reportf(lhs.Pos(),
		"zero-copy view stored into %s outlives its scratch buffer (the next ViewBlock/StrAt overwrites it); copy it (string(b), append, copy) or mark the store %s with why the alias is safe",
		what, retainDirective)
}

// isView reports whether e produces a scratch-aliased slice: a root call
// (by name or fact), a ZCodes field read, a tainted local, or a reslice
// of one of those. Conversions (string(b)) and append/copy results are
// fresh memory and naturally classify as clean.
func (v *viewWalker) isView(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.CallExpr:
		obj := calleeObject(v.pass, t)
		if obj == nil {
			return false
		}
		if _, isFunc := obj.(*types.Func); !isFunc {
			return false // conversion through a named type: a copy for strings
		}
		if viewRootNames[obj.Name()] {
			return true
		}
		return v.pass.HasObjectFact(obj, &viewFact{})
	case *ast.SelectorExpr:
		if viewRootFields[t.Sel.Name] && isSliceLike(v.pass.TypeOf(t)) {
			return true
		}
		return v.tainted[exprKey(t)]
	case *ast.Ident:
		return v.tainted[t.Name]
	case *ast.SliceExpr:
		return v.isView(t.X)
	case *ast.ParenExpr:
		return v.isView(t.X)
	}
	return false
}

// isSliceLike reports whether t is a slice (possibly via a named type).
func isSliceLike(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
