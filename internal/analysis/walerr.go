package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// durableMethods are the file-handle methods whose errors decide whether
// acknowledged data actually reached disk.
var durableMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"Sync":        true,
	"Close":       true,
	"Truncate":    true,
	"Flush":       true,
}

// WALErr flags dropped errors from durable-write calls in the WAL and
// checkpoint paths (internal/ingest, internal/storage): fsync/Write/Close
// on *os.File, Flush/Write on *bufio.Writer, Write/Close through io
// interfaces, and local fsync helpers (func names containing "Sync" or
// starting with "sync"). A statement-position call discards every result;
// that is how a torn WAL gets acknowledged.
//
// An explicit `_ = f.Close()` is allowed — it is a visible, reviewable
// statement that the error is intentionally unused (error-path cleanup
// where a failure is already being returned). Deferred closes are also
// allowed: this repository's durable paths all close explicitly before
// rename/ack, so deferred closes are read-side cleanup.
var WALErr = &Analyzer{
	Name: "walerr",
	Doc: "flags dropped errors from fsync/Write/Close/Flush on files and " +
		"sync helpers in internal/ingest and internal/storage",
	Run: runWALErr,
}

func runWALErr(pass *Pass) {
	if !pass.PathHasSuffix("internal/ingest", "internal/storage") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, is := durableCall(pass, call); is && callReturnsError(pass, call) {
				pass.Reportf(call.Pos(),
					"error from %s dropped; a failed durable write here acknowledges data that never reached disk — handle it, or discard explicitly with `_ =`",
					name)
			}
			return true
		})
	}
}

// durableCall reports whether the call is a durable-write call and
// returns a display name for it.
func durableCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if durableMethods[name] {
			if sel, ok := pass.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				if isDurableRecv(sel.Recv()) {
					return exprKey(fun.X) + "." + name, true
				}
				return "", false
			}
			// Package-qualified function, e.g. a helper imported elsewhere.
		}
		if isSyncHelperName(name) && isFuncCall(pass, fun.Sel) {
			return name, true
		}
	case *ast.Ident:
		if isSyncHelperName(fun.Name) && isFuncCall(pass, fun) {
			return fun.Name, true
		}
	}
	return "", false
}

// isDurableRecv matches *os.File, os.File, *bufio.Writer, and io-style
// interfaces containing the method. bytes.Buffer and friends (whose
// writes cannot fail meaningfully) stay exempt.
func isDurableRecv(recv types.Type) bool {
	t := recv
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "os.File", "bufio.Writer":
				return true
			}
		}
	}
	return types.IsInterface(recv.Underlying())
}

// isSyncHelperName matches local fsync helpers: syncDir, writeFileSync...
func isSyncHelperName(name string) bool {
	return strings.HasPrefix(name, "sync") || strings.Contains(name, "Sync")
}

func isFuncCall(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.Info.Uses[id].(*types.Func)
	return ok
}

func callReturnsError(pass *Pass, call *ast.CallExpr) bool {
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}
