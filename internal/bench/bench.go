// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (Section V), each printing the same
// rows/series the paper reports. EXPERIMENTS.md records paper-vs-measured
// shape for every runner.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"
)

// Config scales the experiments. The paper ran SF 100 on a dual-socket
// Xeon; the defaults here finish on a laptop while preserving every
// relative comparison.
type Config struct {
	TPCHSF  float64 // TPC-H scale factor (paper: 100)
	BIRows  int     // BI contracts rows (paper: ~8 GiB/table)
	Reps    int     // repetitions; the fastest (hot) run is reported
	Seed    int64
	MaxCard int // Fig 8 maximum build cardinality (paper: 10^8)
	Workers int // parallel worker count for the scaling experiment
}

// DefaultConfig returns laptop-scale defaults.
func DefaultConfig() Config {
	return Config{TPCHSF: 0.01, BIRows: 100_000, Reps: 3, Seed: 42,
		MaxCard: 1 << 20, Workers: runtime.GOMAXPROCS(0)}
}

// Runner names every experiment.
var Runners = map[string]func(w io.Writer, cfg Config){
	"fig4":     Fig4,
	"table2":   Table2,
	"fig5":     Fig5,
	"table3":   Table3,
	"fig6":     Fig6,
	"fig7":     Fig7,
	"fig8":     Fig8,
	"fig9":     Fig9,
	"table4":   Table4,
	"fig10":    Fig10,
	"fig11":    Fig11,
	"scaling":  Scaling,
	"ingest":   IngestExp,
	"joinsel":  JoinSel,
	"scansel":  ScanSel,
	"compress": CompressExp,
	"dist":     DistExp,
}

// RunnerNames lists the experiments in paper order; the scaling and
// ingest experiments (not in the paper, which measures single-threaded
// reads over static data) go last.
var RunnerNames = []string{
	"fig4", "table2", "fig5", "table3", "fig6",
	"fig7", "fig8", "fig9", "table4", "fig10", "fig11", "scaling", "ingest",
	"joinsel", "scansel", "compress", "dist",
}

// All runs every experiment in paper order.
func All(w io.Writer, cfg Config) {
	for _, name := range RunnerNames {
		Runners[name](w, cfg)
		fmt.Fprintln(w)
	}
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "=== %s ===\n", title)
}

func line(w io.Writer, cells ...string) {
	fmt.Fprintln(w, strings.Join(cells, "  "))
}

func humanBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fkB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func best(reps int, f func() time.Duration) time.Duration {
	bestD := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		if d := f(); d < bestD {
			bestD = d
		}
	}
	return bestD
}
