package bench

import (
	"bytes"
	"strings"
	"testing"
)

// smokeConfig is tiny: these tests check that every experiment runs and
// produces plausibly-shaped output, not performance.
func smokeConfig() Config {
	return Config{TPCHSF: 0.002, BIRows: 5_000, Reps: 1, Seed: 1, MaxCard: 1 << 15}
}

func TestFig4SmokeAndShape(t *testing.T) {
	var buf bytes.Buffer
	Fig4(&buf, smokeConfig())
	out := buf.String()
	if strings.Count(out, "\n") < 23 {
		t.Fatalf("Fig4 must print 22 query rows:\n%s", out)
	}
	if !strings.Contains(out, "Q1 ") || !strings.Contains(out, "Q22") {
		t.Error("missing query rows")
	}
}

func TestTable2Smoke(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf, smokeConfig())
	if !strings.Contains(buf.String(), "factor:") {
		t.Error("Table II output shape")
	}
}

func TestFig5Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig5(&buf, smokeConfig())
	if strings.Count(buf.String(), "%") < 22*3 {
		t.Error("Fig5 must print three improvement columns per query")
	}
}

func TestTable3Smoke(t *testing.T) {
	var buf bytes.Buffer
	Table3(&buf, smokeConfig())
	out := buf.String()
	if strings.Count(out, "Q") < 20 {
		t.Fatalf("Table III must print 20 queries:\n%s", out)
	}
}

func TestFig6Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig6(&buf, smokeConfig())
	out := buf.String()
	for _, want := range []string{"Q1 vanilla", "Q1 ussr", "Q4 ussr", "hash computation"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig7(&buf, smokeConfig())
	if strings.Count(buf.String(), "x") < 9 {
		t.Error("Fig7 rows missing")
	}
}

func TestFig8Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig8(&buf, smokeConfig())
	out := buf.String()
	if !strings.Contains(out, "(a) 4 keys") || !strings.Contains(out, "(b) 2 keys") {
		t.Fatalf("Fig8 variants missing:\n%s", out)
	}
}

func TestFig9Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig9(&buf, smokeConfig())
	if strings.Count(buf.String(), "[0,") != 8 {
		t.Errorf("Fig9 must print 4 domains x 2 key counts:\n%s", buf.String())
	}
}

func TestTable4SmokeAndShape(t *testing.T) {
	var buf bytes.Buffer
	Table4(&buf, smokeConfig())
	out := buf.String()
	if strings.Count(out, "linear") != 3 || strings.Count(out, "concise") != 3 {
		t.Fatalf("Table IV must have 3 cardinalities per design:\n%s", out)
	}
}

func TestFig10Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig10(&buf, smokeConfig())
	if strings.Count(buf.String(), "\n") < 7 {
		t.Error("Fig10 rows missing")
	}
}

func TestFig11Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig11(&buf, smokeConfig())
	out := buf.String()
	if !strings.Contains(out, "groups=4") || !strings.Contains(out, "groups=1024") {
		t.Fatalf("Fig11 group variants missing:\n%s", out)
	}
}

func TestTable4CompressionWins(t *testing.T) {
	// The compressed table must undercut every baseline for wide records.
	ours := compressedFootprint(1<<14, 16, 1)
	for _, d := range []string{"linear", "concise", "chained"} {
		base := baselineFootprint(d, 1<<14, 16, 1)
		if base <= ours {
			t.Errorf("%s %dB should exceed compressed %dB", d, base, ours)
		}
	}
}

func TestScalingRunShape(t *testing.T) {
	cfg := smokeConfig()
	cfg.Workers = 2
	// Enough rows that the wide-group estimate clears the
	// PartitionMinGroups floor and the adaptive plan partitions.
	rep := ScalingRun(cfg, 20_000)
	if rep.Schema != "ocht-scaling/1" || rep.Cpus < 1 || rep.Gomaxprocs < 1 {
		t.Fatalf("report header: %+v", rep)
	}
	if want := len(scalingPlans) * 3; len(rep.Points) != want {
		t.Fatalf("%d points, want %d", len(rep.Points), want)
	}
	byPlan := map[string][]ScalePoint{}
	for _, p := range rep.Points {
		byPlan[p.Plan] = append(byPlan[p.Plan], p)
		if p.Workers == 1 && p.Speedup != 1.0 {
			t.Errorf("%s w1 speedup %v, want 1", p.Plan, p.Speedup)
		}
		if p.TimeMs <= 0 || p.Groups <= 0 || p.MRowsPerSec <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
	// The wide-group adaptive plan must actually take the owner-computes
	// path under parallel workers; the low-cardinality Q1 plan must not.
	for _, p := range byPlan["widegroup-partitioned"] {
		if p.Workers > 1 && !p.PartitionWise {
			t.Errorf("widegroup-partitioned w%d did not go partition-wise", p.Workers)
		}
	}
	for _, p := range byPlan["q1-lowcard"] {
		if p.PartitionWise {
			t.Errorf("q1-lowcard w%d went partition-wise despite the floor", p.Workers)
		}
	}
	for _, p := range byPlan["widegroup-merge"] {
		if p.PartitionWise {
			t.Errorf("widegroup-merge w%d went partition-wise despite bits=0", p.Workers)
		}
	}
}

func TestScalingSmoke(t *testing.T) {
	var buf bytes.Buffer
	Scaling(&buf, smokeConfig())
	out := buf.String()
	for _, want := range []string{`"workers":1`, `"workers":2`, `"workers":4`, `"worker_ht_bytes"`, `"speedup"`} {
		if !strings.Contains(out, want) {
			t.Errorf("scaling output missing %q:\n%s", want, out)
		}
	}
	// The serial point reports no per-worker tables; parallel points must
	// report one footprint per worker.
	if !strings.Contains(out, `"worker_ht_bytes":[]`) {
		t.Error("workers=1 must report an empty footprint list")
	}
}
