package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ocht/internal/bi"
	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
	"ocht/internal/ussr"
)

var (
	biMu      sync.Mutex
	biRowsKey int
	biCatVal  *storage.Catalog
)

func biCatalog(cfg Config) *storage.Catalog {
	biMu.Lock()
	defer biMu.Unlock()
	if biCatVal == nil || biRowsKey != cfg.BIRows {
		biCatVal = bi.Gen(cfg.BIRows, cfg.Seed)
		biRowsKey = cfg.BIRows
	}
	return biCatVal
}

// Table3 prints the BI workload speedups and USSR statistics of Table III
// for the CommonGovernment-like workbook: per query the USSR-alone speedup
// over vanilla, the USSR fill size, rejection statistics, resident string
// count, average string length, and the baseline runtime and hash-table
// size.
func Table3(w io.Writer, cfg Config) {
	cat := biCatalog(cfg)
	header(w, fmt.Sprintf("Table III: CommonGovernment-like workbook, %d rows", cfg.BIRows))
	fmt.Fprintf(w, "%-5s %8s %10s %8s %9s %11s %9s %7s %10s %9s\n",
		"query", "speedup", "ussr(kB)", "rej(%)", "#rejected",
		"#candidates", "#strings", "avglen", "base(ms)", "baseHT")
	for q := 1; q <= bi.NumQueries; q++ {
		baseline := best(cfg.Reps, func() time.Duration {
			qc := exec.NewQCtx(core.Vanilla())
			start := time.Now()
			bi.Q(q, cat, qc)
			return time.Since(start)
		})
		var htBytes int
		{
			qc := exec.NewQCtx(core.Vanilla())
			bi.Q(q, cat, qc)
			htBytes = qc.HashTableBytes()
		}
		var stats ussr.Stats
		withU := best(cfg.Reps, func() time.Duration {
			qc := exec.NewQCtx(core.Flags{UseUSSR: true})
			start := time.Now()
			bi.Q(q, cat, qc)
			el := time.Since(start)
			stats = qc.Store.U.Stats()
			return el
		})
		speedup := float64(baseline) / float64(withU)
		fmt.Fprintf(w, "Q%-4d %7.1fx %10.1f %8.1f %9d %11d %9d %7.0f %10.2f %9s\n",
			q, speedup, float64(stats.SizeBytes)/1024, stats.RejectionRatio(),
			stats.Rejected, stats.Candidates, stats.Count, stats.AvgLen(),
			float64(baseline.Microseconds())/1000, humanBytes(htBytes))
	}
}

// Fig6 prints the per-primitive query time breakdown of Figure 6 for BI
// Q1, Q2 and Q4, vanilla vs USSR.
func Fig6(w io.Writer, cfg Config) {
	cat := biCatalog(cfg)
	header(w, "Figure 6: query time breakdown (vanilla vs USSR)")
	buckets := []string{
		exec.StatScan, exec.StatHash, exec.StatLookup,
		exec.StatAggregate, exec.StatOther,
	}
	for _, q := range []int{1, 2, 4} {
		for _, mode := range []struct {
			name  string
			flags core.Flags
		}{{"vanilla", core.Vanilla()}, {"ussr", core.Flags{UseUSSR: true}}} {
			qc := exec.NewQCtx(mode.flags)
			start := time.Now()
			bi.Q(q, cat, qc)
			total := time.Since(start)
			fmt.Fprintf(w, "Q%d %-8s total=%-12v", q, mode.name, total.Round(time.Microsecond))
			accounted := time.Duration(0)
			snap := qc.Stats.Snapshot()
			for _, b := range buckets[:4] {
				d := snap[b]
				accounted += d
				fmt.Fprintf(w, " %s=%v", b, d.Round(time.Microsecond))
			}
			rest := total - accounted
			if rest < 0 {
				rest = 0
			}
			fmt.Fprintf(w, " %s=%v\n", exec.StatOther, rest.Round(time.Microsecond))
		}
	}
}
