package bench

import (
	"fmt"
	"io"
	"time"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
	"ocht/internal/tpch"
)

// CompressPoint reports the seal-compression experiment for one
// string-heavy TPC-H table: resident footprint both ways, point string
// access latency (the O(1)-ish bucket decode against the plain dictionary
// lookup), and LIKE-scan throughput where predicates run on codes either
// way and only the dictionary representation differs.
type CompressPoint struct {
	Table           string  `json:"table"`
	PlainBytes      int64   `json:"plain_bytes"`
	CompressedBytes int64   `json:"compressed_bytes"`
	Ratio           float64 `json:"ratio"`
	NsStrAtPlain    float64 `json:"ns_strat_plain"`
	NsStrAtComp     float64 `json:"ns_strat_compressed"`
	NsRowLikePlain  float64 `json:"ns_row_like_plain"`
	NsRowLikeComp   float64 `json:"ns_row_like_compressed"`
	ResultRows      int     `json:"result_rows"`
}

// compressTables names the string-heavy tables and the comment column the
// LIKE scan and point accesses drive.
var compressTables = []struct{ table, col, pattern string }{
	{"orders", "o_comment", "%pending%"},
	{"customer", "c_comment", "%carefully%"},
	{"part", "p_name", "%green%"},
}

// genCompressCat generates the TPC-H catalog under an explicit
// seal-compression mode, restoring the process defaults afterwards.
func genCompressCat(cfg Config, mode storage.CompressMode) *storage.Catalog {
	storage.SetSealCompression(mode)
	storage.SetCompressMinRows(1)
	defer func() {
		storage.SetSealCompression(storage.CompressAuto)
		storage.SetCompressMinRows(4096)
	}()
	return tpch.Gen(cfg.TPCHSF, cfg.Seed)
}

// strAtNs measures one point string access over the column, cycling
// through pseudo-random rows of pseudo-random blocks.
func strAtNs(reps int, c *storage.Column) float64 {
	const accesses = 1 << 14
	var scratch []byte
	nBlocks := c.Blocks()
	d := best(reps, func() time.Duration {
		start := time.Now()
		for i := 0; i < accesses; i++ {
			bi := int((int64(i) * 2654435761) % int64(nBlocks))
			row := (i * 7919) % c.Block(bi).N
			_, _, scratch = c.StrAt(bi, row, scratch)
		}
		return time.Since(start)
	})
	return float64(d.Nanoseconds()) / accesses
}

// likeScanNs measures a LIKE-filtered count over the table's comment
// column, ns per input row; the dictionary verdict table evaluates the
// pattern once per distinct string, so this is dominated by per-block
// dictionary setup plus the code-domain row loop.
func likeScanNs(reps int, t *storage.Table, col, pattern string) (nsPerRow float64, rows int) {
	d := best(reps, func() time.Duration {
		qc := exec.NewQCtx(core.All())
		sc := exec.NewScan(t, col)
		m := sc.Meta()
		f := exec.NewFilter(sc, exec.Like(exec.Col(m, col), pattern))
		plan := exec.NewHashAgg(f, nil, nil,
			[]exec.AggExpr{{Func: agg.CountStar, Name: "cnt"}})
		start := time.Now()
		res := exec.Run(qc, plan)
		rows = int(res.Rows[0][0].I)
		return time.Since(start)
	})
	return float64(d.Nanoseconds()) / float64(t.Rows()), rows
}

// CompressRun measures the seal-compression experiment and returns one
// point per string-heavy table.
func CompressRun(cfg Config) []CompressPoint {
	plainCat := genCompressCat(cfg, storage.CompressOff)
	compCat := genCompressCat(cfg, storage.CompressOn)
	var out []CompressPoint
	for _, tc := range compressTables {
		pt, ct := plainCat.Table(tc.table), compCat.Table(tc.table)
		_, plainBytes := pt.Footprint()
		compBytes, _ := ct.Footprint()
		p := CompressPoint{
			Table:           tc.table,
			PlainBytes:      plainBytes,
			CompressedBytes: compBytes,
			Ratio:           float64(plainBytes) / float64(compBytes),
			NsStrAtPlain:    strAtNs(cfg.Reps, pt.Col(tc.col)),
			NsStrAtComp:     strAtNs(cfg.Reps, ct.Col(tc.col)),
		}
		var plainRows int
		p.NsRowLikePlain, plainRows = likeScanNs(cfg.Reps, pt, tc.col, tc.pattern)
		p.NsRowLikeComp, p.ResultRows = likeScanNs(cfg.Reps, ct, tc.col, tc.pattern)
		if p.ResultRows != plainRows {
			panic(fmt.Sprintf("bench: compress: %s LIKE diverged: %d vs %d rows",
				tc.table, p.ResultRows, plainRows))
		}
		out = append(out, p)
	}
	return out
}

// CompressExp prints the seal-compression experiment.
func CompressExp(w io.Writer, cfg Config) {
	header(w, "Compress: sealed-block string compression (pair-table dictionaries)")
	fmt.Fprintf(w, "TPC-H SF %g, whole-table resident footprint, point StrAt, LIKE count scan\n", cfg.TPCHSF)
	line(w, "table", "plain", "compressed", "ratio", "StrAt-plain", "StrAt-comp", "LIKE-plain", "LIKE-comp")
	for _, p := range CompressRun(cfg) {
		fmt.Fprintf(w, "%-9s %9s %10s %6.2fx %9.1fns %9.1fns %7.1fns/row %7.1fns/row\n",
			p.Table, humanBytes(int(p.PlainBytes)), humanBytes(int(p.CompressedBytes)),
			p.Ratio, p.NsStrAtPlain, p.NsStrAtComp, p.NsRowLikePlain, p.NsRowLikeComp)
	}
}
