package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"ocht/internal/core"
	"ocht/internal/dist"
	"ocht/internal/exec"
	"ocht/internal/ingest"
	"ocht/internal/server"
	"ocht/internal/sql"
	"ocht/internal/storage"
)

// DistExp measures scatter-gather execution: the same aggregate workload
// through a coordinator at 1, 2 and 4 shards versus a single-node engine
// holding all the data, with results checked for equality per query. The
// shard count is the knob: partial aggregation below the exchange keeps
// the merged row volume proportional to group count, not row count, so
// the coordinator's merge cost stays flat as shards scale.
func DistExp(w io.Writer, cfg Config) {
	header(w, "Dist: scatter-gather aggregates, coordinator vs single node")
	rows := cfg.BIRows
	if rows > 200_000 {
		rows = 200_000
	}
	fmt.Fprintf(w, "rows=%d reps=%d (hot run reported)\n", rows, cfg.Reps)

	writes := distWrites(rows)
	queries := []string{
		"SELECT COUNT(*) FROM dx",
		"SELECT grp, COUNT(*), SUM(v), MIN(v), MAX(v) FROM dx GROUP BY grp",
		"SELECT grp, SUM(v) FROM dx WHERE v > 100 GROUP BY grp HAVING SUM(v) > 1000",
		"SELECT grp, AVG(v) FROM dx GROUP BY grp",
	}

	// Single-node reference: same rows, one engine, direct execution.
	refDir, err := os.MkdirTemp("", "ocht-dist-bench-*")
	if err != nil {
		fmt.Fprintf(w, "dist: %v\n", err)
		return
	}
	defer os.RemoveAll(refDir)
	refCat := storage.NewCatalog()
	refEng, err := ingest.Open(refDir, refCat, ingest.Config{DisableSealer: true})
	if err != nil {
		fmt.Fprintf(w, "dist: %v\n", err)
		return
	}
	defer refEng.Close()
	for _, stmt := range writes {
		s, perr := sql.ParseStatement(stmt)
		if perr != nil {
			fmt.Fprintf(w, "dist: %v\n", perr)
			return
		}
		if _, aerr := refEng.Apply(s); aerr != nil {
			fmt.Fprintf(w, "dist: %v\n", aerr)
			return
		}
	}
	refAnswer := map[string][]string{}
	for _, q := range queries {
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < cfg.Reps; rep++ {
			start := time.Now()
			res, rerr := sql.Run(q, refCat, exec.NewQCtx(core.All()))
			if rerr != nil {
				fmt.Fprintf(w, "dist: %v\n", rerr)
				return
			}
			if d := time.Since(start); d < best {
				best = d
			}
			refAnswer[q] = renderDistRows(res.Rows)
		}
		emitDistPoint(w, 0, q, best, len(refAnswer[q]), true)
	}

	for _, nShards := range []int{1, 2, 4} {
		var shardEnvs []func()
		var shards []dist.ShardConfig
		fail := false
		for i := 0; i < nShards; i++ {
			dir, derr := os.MkdirTemp("", "ocht-dist-shard-*")
			if derr != nil {
				fmt.Fprintf(w, "dist: %v\n", derr)
				return
			}
			cat := storage.NewCatalog()
			eng, oerr := ingest.Open(dir, cat, ingest.Config{DisableSealer: true})
			if oerr != nil {
				fmt.Fprintf(w, "dist: %v\n", oerr)
				os.RemoveAll(dir)
				return
			}
			srv := server.New(cat, server.Config{Flags: core.All(), Workers: 1, Ingest: eng})
			ts := httptest.NewServer(srv.Handler())
			shards = append(shards, dist.ShardConfig{Primary: ts.URL})
			shardEnvs = append(shardEnvs, func() { ts.Close(); eng.Close(); os.RemoveAll(dir) })
		}
		coord, cerr := dist.New(dist.Config{
			Shards: shards,
			Flags:  core.All(),
			Fanout: dist.FanoutConfig{ShardTimeout: time.Minute, Retries: 1},
		}, nil)
		if cerr != nil {
			fmt.Fprintf(w, "dist: %v\n", cerr)
			fail = true
		}
		ctx := context.Background()
		if !fail {
			for _, stmt := range writes {
				if _, werr := coord.Query(ctx, stmt); werr != nil {
					fmt.Fprintf(w, "dist: shard load: %v\n", werr)
					fail = true
					break
				}
			}
		}
		if !fail {
			for _, q := range queries {
				best := time.Duration(1<<62 - 1)
				var got []string
				for rep := 0; rep < cfg.Reps; rep++ {
					start := time.Now()
					res, qerr := coord.Query(ctx, q)
					if qerr != nil {
						fmt.Fprintf(w, "dist: %v\n", qerr)
						fail = true
						break
					}
					if d := time.Since(start); d < best {
						best = d
					}
					got = renderDistRows(res.Rows)
				}
				if fail {
					break
				}
				match := fmt.Sprint(got) == fmt.Sprint(refAnswer[q])
				emitDistPoint(w, nShards, q, best, len(got), match)
				if !match {
					fmt.Fprintf(w, "dist: MISMATCH at shards=%d for %q\n", nShards, q)
				}
			}
		}
		for _, cleanup := range shardEnvs {
			cleanup()
		}
		if fail {
			return
		}
	}
}

// distWrites builds the workload: one partitioned fact table with a
// low-cardinality group column and skewed values, loaded in 1k batches.
func distWrites(rows int) []string {
	writes := []string{"CREATE TABLE dx (k BIGINT NOT NULL, grp TEXT NOT NULL, v BIGINT)"}
	const batch = 1000
	for base := 0; base < rows; base += batch {
		stmt := "INSERT INTO dx VALUES "
		n := batch
		if base+n > rows {
			n = rows - base
		}
		for i := 0; i < n; i++ {
			k := base + i
			if i > 0 {
				stmt += ", "
			}
			v := fmt.Sprintf("%d", (int64(k)*2654435761)%10_000)
			if k%31 == 0 {
				v = "NULL"
			}
			stmt += fmt.Sprintf("(%d, 'g%d', %s)", k, k%23, v)
		}
		writes = append(writes, stmt)
	}
	return writes
}

func renderDistRows(rows [][]exec.Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += "|"
			}
			s += fmt.Sprint(dist.RenderCell(v))
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

// emitDistPoint prints one JSON record; shards=0 is the single-node
// reference.
func emitDistPoint(w io.Writer, shards int, query string, d time.Duration, rows int, match bool) {
	rec := map[string]any{
		"exp":         "dist",
		"shards":      shards,
		"query":       query,
		"ms":          float64(d.Microseconds()) / 1000,
		"result_rows": rows,
		"match":       match,
	}
	b, _ := json.Marshal(rec)
	fmt.Fprintln(w, string(b))
}
