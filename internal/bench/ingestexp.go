package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"ocht/internal/ingest"
	"ocht/internal/sql"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// IngestExp measures the WAL-backed write path: rows/sec as a function of
// batch size under each fsync policy, plus one multi-writer point per
// policy that shows group commit amortizing fsyncs (commit_groups well
// under commit_requests). One JSON record per point. Durability is the
// knob: fsync=always pays one disk flush per commit group, so small
// batches are fsync-bound and large batches approach the fsync=none
// encode/publish ceiling.
func IngestExp(w io.Writer, cfg Config) {
	header(w, "Ingest: WAL group commit, rows/sec vs batch size and fsync policy")
	rows := cfg.BIRows / 10
	if rows < 1_000 {
		rows = 1_000
	}
	fmt.Fprintf(w, "rows/point=%d (fsync=always capped at 256 commits/point)\n", rows)

	for _, policy := range []ingest.FsyncPolicy{ingest.FsyncNone, ingest.FsyncInterval, ingest.FsyncAlways} {
		for _, batch := range []int{1, 16, 256, 4096} {
			n := rows
			if policy == ingest.FsyncAlways && n > batch*256 {
				// One fsync per commit: cap the commit count so the
				// batch=1 point finishes on laptop disks.
				n = batch * 256
			}
			ingestPoint(w, policy, batch, 1, n)
		}
		ingestPoint(w, policy, 8, 8, rows)
	}
}

// ingestPoint ingests n rows in batches of the given size across the
// given number of concurrent writers into a fresh engine, and emits one
// JSON record with throughput and the engine's commit/WAL counters.
func ingestPoint(w io.Writer, policy ingest.FsyncPolicy, batch, writers, n int) {
	dir, err := os.MkdirTemp("", "ocht-ingest-bench-*")
	if err != nil {
		fmt.Fprintf(w, "ingest: %v\n", err)
		return
	}
	defer os.RemoveAll(dir)
	eng, err := ingest.Open(dir, storage.NewCatalog(), ingest.Config{Fsync: policy})
	if err != nil {
		fmt.Fprintf(w, "ingest: %v\n", err)
		return
	}
	err = eng.CreateTable("bench", []sql.ColDef{
		{Name: "id", Type: vec.I64, Nullable: false},
		{Name: "tag", Type: vec.Str, Nullable: false},
		{Name: "v", Type: vec.I64, Nullable: false},
	}, false)
	if err != nil {
		fmt.Fprintf(w, "ingest: %v\n", err)
		return
	}

	tags := []string{"alpha", "beta", "gamma", "delta"}
	mkBatch := func(start, count int) []ingest.Row {
		out := make([]ingest.Row, count)
		for i := range out {
			id := start + i
			out[i] = ingest.Row{ingest.Int(int64(id)), ingest.Str(tags[id%len(tags)]), ingest.Int(int64(id * 7))}
		}
		return out
	}

	per := n / writers
	start := time.Now()
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for off := 0; off < per; off += batch {
				count := batch
				if off+count > per {
					count = per - off
				}
				if _, err := eng.Insert("bench", mkBatch(wr*per+off, count)); err != nil {
					fmt.Fprintf(os.Stderr, "ingest bench: %v\n", err)
					return
				}
			}
		}(wr)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := eng.Stats()
	if err := eng.Close(); err != nil {
		fmt.Fprintf(w, "ingest close: %v\n", err)
		return
	}

	rec := struct {
		Exp          string  `json:"exp"`
		Fsync        string  `json:"fsync"`
		Batch        int     `json:"batch"`
		Writers      int     `json:"writers"`
		Rows         int64   `json:"rows"`
		TimeMs       float64 `json:"time_ms"`
		RowsPerSec   float64 `json:"rows_per_sec"`
		CommitGroups int64   `json:"commit_groups"`
		CommitReqs   int64   `json:"commit_requests"`
		WalSyncs     int64   `json:"wal_syncs"`
		WalMB        float64 `json:"wal_mb"`
		BlocksSealed int64   `json:"blocks_sealed"`
	}{
		Exp: "ingest", Fsync: policy.String(), Batch: batch, Writers: writers,
		Rows:         st.RowsIngested,
		TimeMs:       float64(elapsed.Microseconds()) / 1000,
		RowsPerSec:   float64(st.RowsIngested) / elapsed.Seconds(),
		CommitGroups: st.CommitGroups,
		CommitReqs:   st.CommitRequests,
		WalSyncs:     st.WALSyncs,
		WalMB:        float64(st.WALBytes) / (1 << 20),
		BlocksSealed: st.BlocksSealed,
	}
	js, _ := json.Marshal(rec)
	fmt.Fprintln(w, string(js))
}
