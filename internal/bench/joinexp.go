package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ocht/internal/cachesim"
	"ocht/internal/core"
	"ocht/internal/domain"
	"ocht/internal/hashtab"
	"ocht/internal/join"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

// buildSyntheticJoin creates and fills a join with nKeys key columns over
// the given domain, and payload columns over [0, 10]. Zero-value opts give
// the monolithic, Bloom-free table the paper experiments measure.
func buildSyntheticJoin(flags core.Flags, nKeys int, keyDom domain.D, payloads, card int, opts join.Options, rng *rand.Rand) (*join.Join, []*vec.Vector) {
	store := strs.NewStore(flags.UseUSSR)
	keys := make([]core.KeyCol, nKeys)
	for i := range keys {
		keys[i] = core.KeyCol{Name: fmt.Sprintf("k%d", i), Type: vec.I64, Dom: keyDom}
	}
	pls := make([]join.PayloadCol, payloads)
	for i := range pls {
		pls[i] = join.PayloadCol{Name: fmt.Sprintf("p%d", i), Type: vec.I64, Dom: domain.New(0, 10)}
	}
	if opts.CapacityHint == 0 {
		opts.CapacityHint = card
	}
	j, err := join.New(flags, keys, pls, store, opts)
	if err != nil {
		panic(err)
	}
	span := keyDom.Max - keyDom.Min + 1
	keyVecs := make([]*vec.Vector, nKeys)
	plVecs := make([]*vec.Vector, payloads)
	for i := range keyVecs {
		keyVecs[i] = vec.New(vec.I64, vec.Size)
	}
	for i := range plVecs {
		plVecs[i] = vec.New(vec.I64, vec.Size)
	}
	rows := make([]int32, vec.Size)
	for i := range rows {
		rows[i] = int32(i)
	}
	for done := 0; done < card; done += vec.Size {
		n := card - done
		if n > vec.Size {
			n = vec.Size
		}
		for _, kv := range keyVecs {
			for i := 0; i < n; i++ {
				kv.I64[i] = keyDom.Min + rng.Int63n(span)
			}
		}
		for _, pv := range plVecs {
			for i := 0; i < n; i++ {
				pv.I64[i] = rng.Int63n(11)
			}
		}
		j.Build(keyVecs, plVecs, rows[:n])
	}
	return j, keyVecs
}

// probeOnce probes nProbe random keys (drawn from the key domain) and
// fetches all payload columns for the matches — the paper's "hash probe
// including tuple reconstruction cost".
func probeOnce(j *join.Join, nKeys int, keyDom domain.D, payloads, nProbe int, rng *rand.Rand) time.Duration {
	span := keyDom.Max - keyDom.Min + 1
	keyVecs := make([]*vec.Vector, nKeys)
	for i := range keyVecs {
		keyVecs[i] = vec.New(vec.I64, vec.Size)
	}
	rows := make([]int32, vec.Size)
	for i := range rows {
		rows[i] = int32(i)
	}
	out := vec.New(vec.I64, vec.Size)
	var elapsed time.Duration
	for done := 0; done < nProbe; done += vec.Size {
		for _, kv := range keyVecs {
			for i := 0; i < vec.Size; i++ {
				kv.I64[i] = keyDom.Min + rng.Int63n(span)
			}
		}
		start := time.Now()
		mr, mc := j.Probe(keyVecs, rows)
		for pi := 0; pi < payloads; pi++ {
			for chunk := 0; chunk < len(mc); chunk += vec.Size {
				end := chunk + vec.Size
				if end > len(mc) {
					end = len(mc)
				}
				outRows := rows[:end-chunk]
				j.FetchPayload(pi, mc[chunk:end], out, outRows)
			}
		}
		sink = len(mr)
		elapsed += time.Since(start)
	}
	return elapsed
}

// llcMisses replays the probe access pattern of the join's hash table
// against a modeled L3 cache (19.25 MB, 11-way, 64 B lines — the paper's
// Xeon Gold 6126) and returns the miss count. The replay touches, per
// probe, the directory bucket, and per chain record the next link and the
// hot record; payload bytes are touched for matches.
func llcMisses(j *join.Join, nKeys int, keyDom domain.D, nProbe int, rng *rand.Rand) uint64 {
	cache := cachesim.New(19*1024*1024+256*1024, 11, 64)
	t := j.Table()
	schema := j.Schema
	span := keyDom.Max - keyDom.Min + 1

	// Synthetic address space: directory, links, hot and cold areas.
	const (
		dirBase  = 0x1000_0000_0000
		nextBase = 0x2000_0000_0000
		hotBase  = 0x3000_0000_0000
		coldBase = 0x4000_0000_0000
	)
	keyVecs := make([]*vec.Vector, nKeys)
	for i := range keyVecs {
		keyVecs[i] = vec.New(vec.I64, vec.Size)
	}
	rows := make([]int32, vec.Size)
	for i := range rows {
		rows[i] = int32(i)
	}
	hashes := make([]uint64, vec.Size)
	hotW := uint64(t.HotWidth())
	coldW := uint64(t.ColdWidth())

	// Warm the cache with one pass, then measure the second.
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			cache.ResetCounters()
		}
		for done := 0; done < nProbe; done += vec.Size {
			for _, kv := range keyVecs {
				for i := 0; i < vec.Size; i++ {
					kv.I64[i] = keyDom.Min + rng.Int63n(span)
				}
			}
			p := schema.Prepare(keyVecs, rows)
			schema.Hash(p, rows, hashes)
			for _, r := range rows {
				h := hashes[r]
				cache.AccessRange(dirBase+(h&uint64(dirMask(t)))*4, 4)
				for rec := t.Head(h); rec >= 0; rec = t.Next(rec) {
					cache.AccessRange(nextBase+uint64(rec)*4, 4)
					cache.AccessRange(hotBase+uint64(rec)*hotW, int(hotW))
					if coldW > 0 {
						cache.AccessRange(coldBase+uint64(rec)*coldW, int(coldW))
					}
				}
			}
		}
	}
	return cache.Misses
}

// dirMask approximates the directory size (next power of two of Len).
func dirMask(t *core.Table) int {
	size := 16
	for size < t.Len() {
		size <<= 1
	}
	return size - 1
}

// Fig8 reproduces the hash-probe speedup and LLC-miss curves vs build
// cardinality: (a) 4 keys in [0, 1000] where the schema suggests 64-bit
// integers, (b) 2 keys in [0, 10^6] (the paper's variant declares them
// 128-bit; packable inputs here are 64-bit, which preserves the
// wide-schema-vs-packed contrast). Four payload columns in [0, 10].
func Fig8(w io.Writer, cfg Config) {
	header(w, "Figure 8: hash probe speedup & modeled LLC misses vs build cardinality")
	variants := []struct {
		name  string
		nKeys int
		dom   domain.D
	}{
		{"(a) 4 keys in [0,1000]", 4, domain.New(0, 1000)},
		{"(b) 2 keys in [0,10^6]", 2, domain.New(0, 1_000_000)},
	}
	for _, v := range variants {
		fmt.Fprintln(w, v.name)
		line(w, "cardinality", "vanilla", "compact", "speedup", "LLCmiss(van)", "LLCmiss(cmp)")
		for card := 1 << 14; card <= cfg.MaxCard; card <<= 2 {
			nProbe := card
			if nProbe > 1<<18 {
				nProbe = 1 << 18
			}
			res := map[string]time.Duration{}
			misses := map[string]uint64{}
			for _, mode := range []struct {
				name  string
				flags core.Flags
			}{{"vanilla", core.Vanilla()}, {"compact", core.Flags{Compress: true, Split: true}}} {
				rng := rand.New(rand.NewSource(cfg.Seed))
				j, _ := buildSyntheticJoin(mode.flags, v.nKeys, v.dom, 4, card, join.Options{}, rng)
				res[mode.name] = best(cfg.Reps, func() time.Duration {
					return probeOnce(j, v.nKeys, v.dom, 4, nProbe, rand.New(rand.NewSource(cfg.Seed+1)))
				})
				missProbe := nProbe
				if missProbe > 1<<16 {
					missProbe = 1 << 16
				}
				misses[mode.name] = llcMisses(j, v.nKeys, v.dom, missProbe, rand.New(rand.NewSource(cfg.Seed+2)))
			}
			fmt.Fprintf(w, "%-11d %9v %9v %7.2fx %12d %12d\n",
				card,
				res["vanilla"].Round(time.Microsecond),
				res["compact"].Round(time.Microsecond),
				float64(res["vanilla"])/float64(res["compact"]),
				misses["vanilla"], misses["compact"])
		}
	}
}

// Fig9 reproduces hash-join build time (a) and hash-table size (b) vs the
// key domain, for 2 and 4 keys without payload columns.
func Fig9(w io.Writer, cfg Config) {
	header(w, "Figure 9: hash join build time and table size vs key domain")
	line(w, "domain", "keys", "vanilla-build", "compact-build", "vanilla-size", "compact-size")
	card := cfg.MaxCard / 4
	if card < 1<<16 {
		card = 1 << 16
	}
	for _, domMax := range []int64{10, 1000, 10_000, 1_000_000} {
		for _, nKeys := range []int{2, 4} {
			dom := domain.New(0, domMax)
			var times [2]time.Duration
			var sizes [2]int
			for mi, flags := range []core.Flags{core.Vanilla(), {Compress: true, Split: true}} {
				var jEnd *join.Join
				times[mi] = best(cfg.Reps, func() time.Duration {
					rng := rand.New(rand.NewSource(cfg.Seed))
					start := time.Now()
					j, _ := buildSyntheticJoin(flags, nKeys, dom, 0, card, join.Options{}, rng)
					el := time.Since(start)
					jEnd = j
					return el
				})
				sizes[mi] = jEnd.Table().MemoryBytes()
			}
			fmt.Fprintf(w, "[0,%-8d] %d  %13v %13v %12s %12s\n",
				domMax, nKeys,
				times[0].Round(time.Millisecond), times[1].Round(time.Millisecond),
				humanBytes(sizes[0]), humanBytes(sizes[1]))
		}
	}
}

// Table4 compares the compressed hash table's footprint against linear,
// Concise and bucket-chained designs: n records of k 64-bit values (the
// first being the key), all values in [0, 2^16), linear tables at 50%
// fill.
func Table4(w io.Writer, cfg Config) {
	header(w, "Table IV: footprint reduction vs other hash table designs (higher is better)")
	valueCounts := []int{1, 2, 4, 8, 16, 24, 32}
	cards := []int{1 << 10, 1 << 17, 1 << 20} // 1k / "1M" / "1G" scaled
	cardNames := []string{"1k", "128k", "1M"}

	fmt.Fprintf(w, "%-22s", "design \\ #values")
	for _, k := range valueCounts {
		fmt.Fprintf(w, "%7d", k)
	}
	fmt.Fprintln(w)
	for ciIdx, card := range cards {
		ours := make([]int, len(valueCounts))
		for ki, k := range valueCounts {
			ours[ki] = compressedFootprint(card, k, cfg.Seed)
		}
		for _, design := range []string{"linear", "concise", "chained"} {
			fmt.Fprintf(w, "%-10s n=%-9s", design, cardNames[ciIdx])
			for ki, k := range valueCounts {
				base := baselineFootprint(design, card, k, cfg.Seed)
				fmt.Fprintf(w, "%6.1fx", float64(base)/float64(ours[ki]))
			}
			fmt.Fprintln(w)
		}
	}
}

// compressedFootprint builds our compressed chained table with 1 key and
// k-1 value columns, all in [0, 2^16), and returns its footprint.
func compressedFootprint(card, k int, seed int64) int {
	dom := domain.New(0, 1<<16-1)
	keys := []core.KeyCol{{Name: "k", Type: vec.I64, Dom: dom}}
	pls := make([]join.PayloadCol, k-1)
	for i := range pls {
		pls[i] = join.PayloadCol{Name: fmt.Sprintf("v%d", i), Type: vec.I64, Dom: dom}
	}
	store := strs.NewStore(false)
	j, err := join.New(core.Flags{Compress: true, Split: true}, keys, pls, store,
		join.Options{CapacityHint: card})
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	kv := vec.New(vec.I64, vec.Size)
	plVecs := make([]*vec.Vector, k-1)
	for i := range plVecs {
		plVecs[i] = vec.New(vec.I64, vec.Size)
	}
	rows := make([]int32, vec.Size)
	for i := range rows {
		rows[i] = int32(i)
	}
	for done := 0; done < card; done += vec.Size {
		n := card - done
		if n > vec.Size {
			n = vec.Size
		}
		for i := 0; i < n; i++ {
			kv.I64[i] = rng.Int63n(1 << 16)
		}
		for _, pv := range plVecs {
			for i := 0; i < n; i++ {
				pv.I64[i] = rng.Int63n(1 << 16)
			}
		}
		j.Build([]*vec.Vector{kv}, plVecs, rows[:n])
	}
	return j.Table().MemoryBytes()
}

func baselineFootprint(design string, card, k int, seed int64) int {
	rowWidth := 8 * k
	var t hashtab.Table
	switch design {
	case "linear":
		t = hashtab.NewLinear(rowWidth, card, 50)
	case "concise":
		t = hashtab.NewConcise(rowWidth, card)
	case "chained":
		t = hashtab.NewChained(rowWidth, card)
	}
	rng := rand.New(rand.NewSource(seed))
	rec := make([]byte, rowWidth)
	for i := 0; i < card; i++ {
		key := uint64(i) // unique keys keep the linear table insertable
		putLE64(rec, key)
		for v := 1; v < k; v++ {
			putLE64(rec[v*8:], uint64(rng.Int63n(1<<16)))
		}
		t.Insert(key, rec)
	}
	return t.MemoryBytes()
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// JoinSelVariant is one variant's measurement of the selective-join
// experiment, in the shape the -json-out perf report records.
type JoinSelVariant struct {
	Name             string  `json:"name"`
	PartitionBits    int     `json:"partition_bits"`
	NsPerProbeRow    float64 `json:"ns_per_probe_row"`
	BytesPerBuildRow float64 `json:"bytes_per_build_row"`
	BloomShedPct     float64 `json:"bloom_shed_pct"`
	SpeedupVsBase    float64 `json:"speedup_vs_baseline"`
}

// joinSelCard sizes the selective-join build: 2^20 records put the hot
// area well past 4x a 512 KB L2, the regime where radix partitioning and
// the Bloom pre-pass matter.
const joinSelCard = 1 << 20

// JoinSelRun measures a miss-heavy single-key probe (~1.6% hit rate, the
// selective semi-join regime) against a build larger than 4x L2, in three
// configurations: the monolithic baseline, radix-partitioned build, and
// partitioned build with the Bloom-guarded probe pre-pass.
func JoinSelRun(cfg Config) []JoinSelVariant {
	const nProbe = 1 << 20
	dom := domain.New(0, (1<<26)-1)
	flags := core.Flags{Compress: true, Split: true}
	variants := []struct {
		name string
		opts join.Options
	}{
		{"monolithic", join.Options{PartitionBits: 0, Bloom: join.BloomOff}},
		{"partitioned", join.Options{PartitionBits: -1, Bloom: join.BloomOff, EstRows: joinSelCard}},
		{"partitioned+bloom", join.Options{PartitionBits: -1, Bloom: join.BloomOn, EstRows: joinSelCard, Selective: true}},
	}
	out := make([]JoinSelVariant, 0, len(variants))
	var baseNs float64
	for _, v := range variants {
		rng := rand.New(rand.NewSource(cfg.Seed))
		j, _ := buildSyntheticJoin(flags, 1, dom, 2, joinSelCard, v.opts, rng)
		el := best(cfg.Reps, func() time.Duration {
			return probeOnce(j, 1, dom, 2, nProbe, rand.New(rand.NewSource(cfg.Seed+1)))
		})
		ns := float64(el.Nanoseconds()) / float64(nProbe)
		r := JoinSelVariant{
			Name:             v.name,
			PartitionBits:    j.Bits(),
			NsPerProbeRow:    ns,
			BytesPerBuildRow: float64(j.MemoryBytes()) / float64(j.Len()),
		}
		if checked, dropped := j.BloomStats(); checked > 0 {
			r.BloomShedPct = 100 * float64(dropped) / float64(checked)
		}
		if len(out) == 0 {
			baseNs = ns
		}
		r.SpeedupVsBase = baseNs / ns
		out = append(out, r)
	}
	return out
}

// JoinSel prints the selective-join experiment.
func JoinSel(w io.Writer, cfg Config) {
	header(w, "JoinSel: selective probe vs radix partitioning and Bloom pre-pass")
	fmt.Fprintf(w, "build=%d rows (hot area > 4x L2), probe=2^20 rows, ~1.6%% hit rate\n", joinSelCard)
	line(w, "variant", "bits", "ns/probe-row", "bytes/build-row", "bloom-shed", "speedup")
	for _, v := range JoinSelRun(cfg) {
		fmt.Fprintf(w, "%-18s %4d %13.1f %15.1f %9.1f%% %7.2fx\n",
			v.Name, v.PartitionBits, v.NsPerProbeRow, v.BytesPerBuildRow,
			v.BloomShedPct, v.SpeedupVsBase)
	}
}
