package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadGenConfig drives a running ocht-serve instance over HTTP.
type LoadGenConfig struct {
	URL      string        // server base URL, e.g. http://localhost:8080
	Clients  int           // concurrent client goroutines
	Duration time.Duration // how long to generate load
	Timeout  time.Duration // per-query deadline sent with every request (0 = server default)
	Queries  []string      // statement mix; empty = DefaultLoadQueries
}

// DefaultLoadQueries is a mixed TPC-H statement set: point aggregates,
// group-bys and a join, so the server's plan cache, USSR pool and
// parallel executor all see traffic.
var DefaultLoadQueries = []string{
	"SELECT COUNT(*) FROM lineitem",
	"SELECT l_returnflag, l_linestatus, COUNT(*), SUM(l_quantity) FROM lineitem GROUP BY l_returnflag, l_linestatus",
	"SELECT o_orderstatus, COUNT(*) FROM orders GROUP BY o_orderstatus",
	"SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority",
	"SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment",
	"SELECT n_name, COUNT(*) FROM nation JOIN region ON n_regionkey = r_regionkey GROUP BY n_name",
}

// LoadGenReport is the JSON record LoadGen prints: client-side counts
// and latencies plus the server's own /metrics document for
// cross-checking (plan-cache hit rate, pool reuse, admission behavior).
type LoadGenReport struct {
	Exp           string  `json:"exp"`
	Clients       int     `json:"clients"`
	DurationSec   float64 `json:"duration_sec"`
	Requests      int64   `json:"requests"`
	OK            int64   `json:"ok"`
	Rejected      int64   `json:"rejected"` // HTTP 429
	Canceled      int64   `json:"canceled"` // HTTP 504
	Failed        int64   `json:"failed"`   // other non-200
	QPS           float64 `json:"qps"`
	MeanMs        float64 `json:"mean_ms"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	ServerMetrics any     `json:"server_metrics"`
}

// LoadGen hammers the server with the statement mix from Clients
// goroutines for Duration, then prints one LoadGenReport as JSON.
func LoadGen(w io.Writer, cfg LoadGenConfig) error {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	queries := cfg.Queries
	if len(queries) == 0 {
		queries = DefaultLoadQueries
	}

	// Fail fast if the server is not there.
	hc := &http.Client{Timeout: cfg.Timeout + 30*time.Second}
	resp, err := hc.Get(cfg.URL + "/healthz")
	if err != nil {
		return fmt.Errorf("loadgen: server not reachable: %w", err)
	}
	resp.Body.Close()

	var ok, rejected, canceled, failed atomic.Int64
	var mu sync.Mutex
	var latencies []time.Duration

	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var local []time.Duration
			for i := 0; time.Now().Before(deadline); i++ {
				q := queries[(c+i)%len(queries)]
				body, _ := json.Marshal(map[string]any{
					"sql":        q,
					"timeout_ms": int(cfg.Timeout / time.Millisecond),
				})
				start := time.Now()
				resp, err := hc.Post(cfg.URL+"/query", "application/json", bytes.NewReader(body))
				el := time.Since(start)
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				local = append(local, el)
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				case http.StatusGatewayTimeout:
					canceled.Add(1)
				default:
					failed.Add(1)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	rep := LoadGenReport{
		Exp:         "loadgen",
		Clients:     cfg.Clients,
		DurationSec: cfg.Duration.Seconds(),
		OK:          ok.Load(),
		Rejected:    rejected.Load(),
		Canceled:    canceled.Load(),
		Failed:      failed.Load(),
	}
	rep.Requests = rep.OK + rep.Rejected + rep.Canceled + rep.Failed
	rep.QPS = float64(rep.OK) / cfg.Duration.Seconds()
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		var sum time.Duration
		for _, d := range latencies {
			sum += d
		}
		rep.MeanMs = ms(sum) / float64(len(latencies))
		rep.P50Ms = ms(latencies[len(latencies)*50/100])
		rep.P90Ms = ms(latencies[len(latencies)*90/100])
		rep.P99Ms = ms(latencies[len(latencies)*99/100])
		rep.MaxMs = ms(latencies[len(latencies)-1])
	}

	// Attach the server's own view so one record carries both sides.
	if mresp, err := hc.Get(cfg.URL + "/metrics"); err == nil {
		var sm any
		if json.NewDecoder(mresp.Body).Decode(&sm) == nil {
			rep.ServerMetrics = sm
		}
		mresp.Body.Close()
	}

	js, _ := json.Marshal(rep)
	fmt.Fprintln(w, string(js))
	return nil
}
