package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

// Fig7 reproduces the group-by-on-string-keys micro-benchmark: a
// SELECT COUNT(*) FROM T GROUP BY s query over 10 unique strings of equal
// length, for lengths 2..512. It reports the USSR speedup of the string
// comparison, the hash computation and the whole query (the paper sees
// 2-50x, 4-80x and up to ~25x respectively, growing with length).
func Fig7(w io.Writer, cfg Config) {
	header(w, "Figure 7: group-by on string keys, speedup vs string length")
	line(w, "length", "compare", "hash", "whole query")
	const nRows = 200_000
	for _, length := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512} {
		words := make([]string, 10)
		for i := range words {
			base := fmt.Sprintf("s%02d", i)
			words[i] = (base + strings.Repeat("x", length))[:length]
		}
		col := storage.NewColumn("s", vec.Str, false)
		for i := 0; i < nRows; i++ {
			col.AppendString(words[i%10])
		}
		tab := storage.NewTable("t", col)
		tab.Seal()

		// Whole query.
		run := func(flags core.Flags) time.Duration {
			return best(cfg.Reps, func() time.Duration {
				qc := exec.NewQCtx(flags)
				s := exec.NewScan(tab, "s")
				m := s.Meta()
				h := exec.NewHashAgg(s, []string{"s"}, []*exec.Expr{exec.Col(m, "s")},
					[]exec.AggExpr{{Func: agg.CountStar, Name: "cnt"}})
				start := time.Now()
				exec.Run(qc, h)
				return time.Since(start)
			})
		}
		vanilla := run(core.Vanilla())
		withU := run(core.Flags{UseUSSR: true})

		// Isolated hash and compare primitives over the two backings.
		cmpSpeed, hashSpeed := stringPrimitiveSpeedups(words, cfg.Reps)
		fmt.Fprintf(w, "%-6d %7.1fx %7.1fx %7.1fx\n",
			length, cmpSpeed, hashSpeed, float64(vanilla)/float64(withU))
	}
}

// stringPrimitiveSpeedups measures Store.Equal and Store.Hash over
// heap-backed vs USSR-backed references for the given distinct strings.
func stringPrimitiveSpeedups(words []string, reps int) (cmp, hash float64) {
	const n = 1 << 15
	heap := strs.NewStore(false)
	fast := strs.NewStore(true)
	hRefs := make([]vec.StrRef, n)
	uRefs := make([]vec.StrRef, n)
	for i := 0; i < n; i++ {
		hRefs[i] = heap.Intern(words[i%len(words)])
		uRefs[i] = fast.Intern(words[i%len(words)])
	}
	timeEqual := func(st *strs.Store, refs []vec.StrRef) time.Duration {
		return best(reps, func() time.Duration {
			start := time.Now()
			acc := 0
			for i := 0; i < n-1; i++ {
				if st.Equal(refs[i], refs[i+1]) {
					acc++
				}
			}
			sink = acc
			return time.Since(start)
		})
	}
	timeHash := func(st *strs.Store, refs []vec.StrRef) time.Duration {
		return best(reps, func() time.Duration {
			start := time.Now()
			var acc uint64
			for i := 0; i < n; i++ {
				acc ^= st.Hash(refs[i])
			}
			sinkU = acc
			return time.Since(start)
		})
	}
	cmp = float64(timeEqual(heap, hRefs)) / float64(timeEqual(fast, uRefs))
	hash = float64(timeHash(heap, hRefs)) / float64(timeHash(fast, uRefs))
	return cmp, hash
}

// sink variables defeat dead-code elimination in the micro loops.
var (
	sink  int
	sinkU uint64
)
