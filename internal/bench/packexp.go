package bench

import (
	"fmt"
	"io"
	"time"

	"ocht/internal/cycles"
	"ocht/internal/domain"
	"ocht/internal/i128"
	"ocht/internal/pack"
	"ocht/internal/vec"
)

// Fig10 reproduces the compression-overhead micro-benchmark: cycles per
// output value for bit-packing the first 8 bits of 2, 3 or 4 inputs of
// types int8..int128 into 32-bit and 64-bit outputs. The paper measures
// 1-2 output values per cycle for native types and a marked slowdown for
// 128-bit inputs; absolute cycles here are nominal (wall time at 3 GHz),
// but the native-vs-128-bit contrast is what the figure shows.
func Fig10(w io.Writer, cfg Config) {
	header(w, "Figure 10: pack cycles per output value (8 bits taken per input)")
	line(w, "output", "inputs", "int8", "int16", "int32", "int64", "int128")
	const n = vec.Size
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	out := make([]uint64, n)
	const passes = 2000

	for _, wordBits := range []int{32, 64} {
		for _, nIn := range []int{2, 3, 4} {
			fmt.Fprintf(w, "%-7d %-7d", wordBits, nIn)
			for _, typ := range []vec.Type{vec.I8, vec.I16, vec.I32, vec.I64} {
				cols := make([]pack.Col, nIn)
				vecs := make([]*vec.Vector, nIn)
				for i := range cols {
					cols[i] = pack.Col{Name: "c", Type: typ, Dom: domain.New(0, 255)}
					v := vec.New(typ, n)
					for r := 0; r < n; r++ {
						v.SetInt64(r, int64(r%256))
					}
					vecs[i] = v
				}
				plan, err := pack.NewPlan(cols, wordBits)
				if err != nil {
					panic(err)
				}
				d := best(cfg.Reps, func() time.Duration {
					start := time.Now()
					for p := 0; p < passes; p++ {
						for wd := 0; wd < plan.Words; wd++ {
							plan.PackWord(wd, vecs, rows, out)
						}
					}
					return time.Since(start)
				})
				fmt.Fprintf(w, " %6.2f", cycles.PerItem(d, n*passes))
			}
			// 128-bit inputs: no packing plan exists for them (Optimistic
			// Splitting removes the need); the paper packs their low 8
			// bits with a dedicated wide-input kernel, reproduced here.
			wide := make([][]i128.Int, nIn)
			for i := range wide {
				wide[i] = make([]i128.Int, n)
				for r := 0; r < n; r++ {
					wide[i][r] = i128.FromInt64(int64(r % 256))
				}
			}
			d := best(cfg.Reps, func() time.Duration {
				start := time.Now()
				for p := 0; p < passes; p++ {
					packI128Lo8(wide, rows, out)
				}
				return time.Since(start)
			})
			fmt.Fprintf(w, " %6.2f\n", cycles.PerItem(d, n*passes))
		}
	}
}

// packI128Lo8 packs the low 8 bits of each 128-bit input column into one
// output word — the wide-input kernel of Figure 10. It deliberately uses
// the same per-column accessor structure as the native pack kernels
// (pack.PackWord) so the only difference is reading 16-byte values: both
// halves of each input participate, like the paper's int128 kernels.
func packI128Lo8(cols [][]i128.Int, rows []int32, out []uint64) {
	type slice struct {
		get      func(int) uint64
		base     uint64
		srcShift uint
		mask     uint64
		outShift uint
	}
	ks := make([]slice, len(cols))
	for c, colv := range cols {
		colv := colv
		ks[c] = slice{
			get: func(i int) uint64 {
				v := colv[i]
				// A real 128-bit normalization touches both words.
				return v.Lo ^ uint64(v.Hi>>63)<<63
			},
			mask:     0xFF,
			outShift: uint(8 * c),
		}
	}
	for _, r := range rows {
		var word uint64
		for _, k := range ks {
			word |= ((k.get(int(r)) - k.base) >> k.srcShift & k.mask) << k.outShift
		}
		out[r] = word
	}
}

// Fig11 reproduces the Optimistic SUM micro-benchmark: summing 64-bit
// values equal to a constant 2^x into a 128-bit aggregate, comparing the
// full 128-bit kernel against the optimistic split kernel (generic and
// positive-only), for 4 and 1024 groups, with the exception counts.
func Fig11(w io.Writer, cfg Config) {
	header(w, "Figure 11: 128-bit SUM methods, cycles/item vs input magnitude")
	const n = 1 << 20
	for _, groups := range []int{4, 1024} {
		fmt.Fprintf(w, "groups=%d\n", groups)
		line(w, "x", "full", "full(>=0)", "opt", "opt(>=0)", "#exceptions")
		g := make([]int32, n)
		for i := range g {
			g[i] = int32(i % groups)
		}
		vals := make([]int64, n)
		for _, x := range []uint{36, 42, 48, 54, 60, 62} {
			v := int64(1) << x
			for i := range vals {
				vals[i] = v
			}
			full := make([]i128.Int, groups)
			dFull := benchSum(cfg.Reps, func() { fullSumLoop(full, g, vals) })
			dFullPos := benchSum(cfg.Reps, func() { fullSumPosLoop(full, g, vals) })

			common := make([]uint64, groups)
			except := make([]int64, groups)
			dOpt := benchSum(cfg.Reps, func() {
				zero64(common)
				zeroI64(except)
				optSumLoop(common, except, g, vals)
			})
			var exceptions int64
			dOptPos := benchSum(cfg.Reps, func() {
				zero64(common)
				zeroI64(except)
				optSumPosLoop(common, except, g, vals)
				exceptions = 0
				for _, e := range except {
					exceptions += e
				}
			})
			fmt.Fprintf(w, "2^%-3d %6.2f %9.2f %6.2f %8.2f %12d\n",
				x,
				cycles.PerItem(dFull, n), cycles.PerItem(dFullPos, n),
				cycles.PerItem(dOpt, n), cycles.PerItem(dOptPos, n),
				exceptions)
		}
	}
}

func benchSum(reps int, f func()) time.Duration {
	return best(reps, func() time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	})
}

func zero64(s []uint64) {
	for i := range s {
		s[i] = 0
	}
}

func zeroI64(s []int64) {
	for i := range s {
		s[i] = 0
	}
}
