package bench

import (
	"encoding/json"
	"io"
	"time"

	"ocht/internal/core"
	"ocht/internal/exec"
)

// PerfReport is the machine-readable perf trajectory written by
// `ocht-bench -json-out FILE`: one before/after record per subsystem the
// cache-conscious probe pipeline touches. The checked-in BENCH_join.json
// at the repo root tracks these numbers across changes.
type PerfReport struct {
	Schema   string           `json:"schema"`
	Seed     int64            `json:"seed"`
	Join     []JoinSelVariant `json:"join"`
	Agg      []AggPoint       `json:"agg"`
	Scaling  []ScalePoint     `json:"scaling"`
	Scan     []ScanPoint      `json:"scan"`
	Compress []CompressPoint  `json:"compress"`
}

// AggPoint measures the Q1-style grouped aggregation end to end for one
// group-table configuration.
type AggPoint struct {
	Name          string  `json:"name"`
	PartitionBits int     `json:"partition_bits"`
	NsPerRow      float64 `json:"ns_per_row"`
	Groups        int     `json:"groups"`
}

// PerfJSON runs the join/agg/scaling perf probes and writes the report.
// The scaling section is the same sweep as the standalone
// BENCH_scaling.json report, at the smaller BIRows scale.
func PerfJSON(w io.Writer, cfg Config) error {
	rep := PerfReport{
		Schema:   "ocht-perf/1",
		Seed:     cfg.Seed,
		Join:     JoinSelRun(cfg),
		Agg:      aggPoints(cfg),
		Scaling:  ScalingRun(cfg, cfg.BIRows).Points,
		Scan:     ScanSelRun(cfg),
		Compress: CompressRun(cfg),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func aggPoints(cfg Config) []AggPoint {
	rows := cfg.BIRows
	fact := scalingFact(rows, cfg.Seed)
	var out []AggPoint
	for _, v := range []struct {
		name string
		bits int
	}{{"q1agg-monolithic", 0}, {"q1agg-partitioned", -1}} {
		bestD := time.Duration(1<<63 - 1)
		groups := 0
		for rep := 0; rep < cfg.Reps; rep++ {
			qc := exec.NewQCtx(core.All())
			start := time.Now()
			res := exec.Run(qc, scalingPlan(fact, v.bits))
			if el := time.Since(start); el < bestD {
				bestD, groups = el, len(res.Rows)
			}
		}
		out = append(out, AggPoint{
			Name:          v.name,
			PartitionBits: v.bits,
			NsPerRow:      float64(bestD.Nanoseconds()) / float64(rows),
			Groups:        groups,
		})
	}
	return out
}

