package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// Scaling measures morsel-driven parallel execution on a TPC-H Q1-style
// hash aggregation: a selective date filter over a multi-block fact table,
// grouped on two low-cardinality string keys with the full Q1 aggregate
// mix. For every worker count it reports wall time, speedup over the
// workers=1 serial path, and — as one JSON record per point — the private
// hash-table footprint of every worker, which bounds the per-worker hot
// working set the paper's cache argument depends on.
func Scaling(w io.Writer, cfg Config) {
	header(w, "Scaling: morsel-driven parallel Q1-style aggregation")
	rows := cfg.BIRows * 10
	fact := scalingFact(rows, cfg.Seed)
	blocks := fact.Cols[0].Blocks()
	fmt.Fprintf(w, "rows=%d blocks=%d morsel=%d rows (one storage block)\n",
		rows, blocks, storage.BlockRows)

	plan := func() exec.Op { return scalingPlan(fact, -1) }

	series := []int{1, 2, 4}
	if cfg.Workers > 4 {
		series = append(series, cfg.Workers)
	}
	var base time.Duration
	for _, workers := range series {
		best := time.Duration(1<<63 - 1)
		var qc *exec.QCtx
		var nRows int
		for rep := 0; rep < cfg.Reps+1; rep++ {
			c := exec.NewQCtx(core.All())
			c.Workers = workers
			start := time.Now()
			res := exec.Run(c, plan())
			if el := time.Since(start); el < best {
				best, qc, nRows = el, c, len(res.Rows)
			}
		}
		if workers == 1 {
			base = best
		}
		rec := struct {
			Exp           string             `json:"exp"`
			Workers       int                `json:"workers"`
			TimeMs        float64            `json:"time_ms"`
			Speedup       float64            `json:"speedup"`
			Groups        int                `json:"groups"`
			HTBytes       int                `json:"ht_bytes"`
			WorkerHTBytes []int              `json:"worker_ht_bytes"`
			EngineStatsMs map[string]float64 `json:"engine_stats_ms"`
		}{
			Exp: "scaling", Workers: workers,
			TimeMs:        float64(best.Microseconds()) / 1000,
			Speedup:       float64(base) / float64(best),
			Groups:        nRows,
			HTBytes:       qc.HashTableBytes(),
			EngineStatsMs: map[string]float64{},
		}
		// Snapshot, not per-bucket Get: one consistent race-free copy of
		// the merged worker stats.
		for k, d := range qc.Stats.Snapshot() {
			rec.EngineStatsMs[k] = float64(d.Microseconds()) / 1000
		}
		if fp := qc.WorkerFootprints(); fp != nil {
			rec.WorkerHTBytes = fp
		} else {
			rec.WorkerHTBytes = []int{}
		}
		js, _ := json.Marshal(rec)
		fmt.Fprintln(w, string(js))
	}
}

// ScalingReport is the standalone machine-readable scaling record written
// by `ocht-bench -exp scaling -json-out BENCH_scaling.json`. It pins down
// the machine it ran on (cpus, GOMAXPROCS) so a flat curve from a
// single-CPU container is distinguishable from a real parallel
// regression: the CI scaling job regenerates it on a multi-core runner
// and gates on the partition-wise 4-worker speedup there.
type ScalingReport struct {
	Schema     string       `json:"schema"`
	Seed       int64        `json:"seed"`
	Cpus       int          `json:"cpus"`
	Gomaxprocs int          `json:"gomaxprocs"`
	Rows       int          `json:"rows"`
	Points     []ScalePoint `json:"points"`
}

// ScalePoint is one (plan, worker count) cell of the parallel aggregation
// sweep. Speedup is relative to the same plan at workers=1.
// PartitionWise records whether the owner-computes partition-wise driver
// actually ran (the CtrPartitionWiseAggs counter), so the JSON is
// self-describing about which merge strategy produced each number.
type ScalePoint struct {
	Plan          string  `json:"plan,omitempty"`
	Workers       int     `json:"workers"`
	PartitionBits int     `json:"partition_bits"`
	PartitionWise bool    `json:"partition_wise"`
	Groups        int     `json:"groups"`
	TimeMs        float64 `json:"time_ms"`
	Speedup       float64 `json:"speedup"`
	MRowsPerSec   float64 `json:"mrows_per_sec"`
}

// scalingPlans are the sweep variants: the low-cardinality Q1 mix (6
// groups — stays on the contended agg.Merge path by design, the adaptive
// floor keeps it monolithic), the wide-group plan forced monolithic (the
// merge-bottleneck baseline), and the same wide-group plan adaptive,
// which partitions and goes owner-computes under parallel workers.
var scalingPlans = []struct {
	Name string
	Bits int
	Wide bool
}{
	{"q1-lowcard", -1, false},
	{"widegroup-merge", 0, true},
	{"widegroup-partitioned", -1, true},
}

// ScalingRun executes the scaling sweep over rows input rows and returns
// the report. The fastest of Reps+1 runs is kept per cell.
func ScalingRun(cfg Config, rows int) ScalingReport {
	fact := scalingFact(rows, cfg.Seed)
	series := []int{1, 2, 4}
	if cfg.Workers > 4 {
		series = append(series, cfg.Workers)
	}
	rep := ScalingReport{
		Schema:     "ocht-scaling/1",
		Seed:       cfg.Seed,
		Cpus:       runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Rows:       rows,
	}
	for _, pl := range scalingPlans {
		var base time.Duration
		for _, workers := range series {
			bestD := time.Duration(1<<63 - 1)
			var bqc *exec.QCtx
			groups := 0
			for r := 0; r < cfg.Reps+1; r++ {
				qc := exec.NewQCtx(core.All())
				qc.Workers = workers
				var op exec.Op
				if pl.Wide {
					op = scalingWidePlan(fact, pl.Bits)
				} else {
					op = scalingPlan(fact, pl.Bits)
				}
				start := time.Now()
				res := exec.Run(qc, op)
				if el := time.Since(start); el < bestD {
					bestD, bqc, groups = el, qc, len(res.Rows)
				}
			}
			if workers == 1 {
				base = bestD
			}
			rep.Points = append(rep.Points, ScalePoint{
				Plan:          pl.Name,
				Workers:       workers,
				PartitionBits: pl.Bits,
				PartitionWise: bqc.Stats.Counter(exec.CtrPartitionWiseAggs) > 0,
				Groups:        groups,
				TimeMs:        float64(bestD.Microseconds()) / 1000,
				Speedup:       float64(base) / float64(bestD),
				MRowsPerSec:   float64(rows) / 1e6 / bestD.Seconds(),
			})
		}
	}
	return rep
}

// ScalingJSON writes the standalone scaling report for
// `ocht-bench -exp scaling -json-out FILE`.
func ScalingJSON(w io.Writer, cfg Config) error {
	rep := ScalingRun(cfg, cfg.BIRows*10)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// scalingWidePlan aggregates the same filtered scan into ~100k suppkey
// groups: far past the PartitionMinGroups floor, so the adaptive chooser
// radix-partitions the group table and the parallel driver takes the
// owner-computes partition-wise path.
func scalingWidePlan(fact *storage.Table, bits int) exec.Op {
	sc := exec.NewScan(fact, "suppkey", "quantity", "extendedprice", "shipdate")
	m := sc.Meta()
	fl := exec.NewFilter(sc, exec.Le(exec.Col(m, "shipdate"), exec.Int(19980902)))
	fm := fl.Meta()
	ha := exec.NewHashAgg(fl,
		[]string{"suppkey"},
		[]*exec.Expr{exec.Col(fm, "suppkey")},
		[]exec.AggExpr{
			{Func: agg.Sum, Arg: exec.Col(fm, "quantity"), Name: "sum_qty"},
			{Func: agg.Sum, Arg: exec.Col(fm, "extendedprice"), Name: "sum_price"},
			{Func: agg.CountStar, Name: "n"},
		})
	ha.PartitionBits = bits
	return ha
}

// scalingPlan builds the Q1-style aggregation over the fact table with
// the given radix width for the group table (-1 = adaptive).
func scalingPlan(fact *storage.Table, bits int) exec.Op {
	sc := exec.NewScan(fact, "returnflag", "linestatus", "quantity", "extendedprice", "discount", "shipdate")
	m := sc.Meta()
	fl := exec.NewFilter(sc, exec.Le(exec.Col(m, "shipdate"), exec.Int(19980902)))
	fm := fl.Meta()
	price := exec.Col(fm, "extendedprice")
	disc := exec.Col(fm, "discount")
	ha := exec.NewHashAgg(fl,
		[]string{"returnflag", "linestatus"},
		[]*exec.Expr{exec.Col(fm, "returnflag"), exec.Col(fm, "linestatus")},
		[]exec.AggExpr{
			{Func: agg.Sum, Arg: exec.Col(fm, "quantity"), Name: "sum_qty"},
			{Func: agg.Sum, Arg: price, Name: "sum_base_price"},
			{Func: agg.Sum, Arg: exec.Mul(price, exec.Sub(exec.Int(100), disc)), Name: "sum_disc_price"},
			{Func: exec.Avg, Arg: exec.Col(fm, "quantity"), Name: "avg_qty"},
			{Func: agg.CountStar, Name: "count_order"},
		})
	ha.PartitionBits = bits
	return ha
}

// scalingFact generates a lineitem-like fact table: big enough to span
// several storage blocks (morsels) with the Q1 column mix.
func scalingFact(rows int, seed int64) *storage.Table {
	flags := []string{"A", "N", "R"}
	statuses := []string{"F", "O"}
	rf := storage.NewColumn("returnflag", vec.Str, false)
	ls := storage.NewColumn("linestatus", vec.Str, false)
	qty := storage.NewColumn("quantity", vec.I8, false)
	price := storage.NewColumn("extendedprice", vec.I32, false)
	disc := storage.NewColumn("discount", vec.I8, false)
	ship := storage.NewColumn("shipdate", vec.I32, false)
	supp := storage.NewColumn("suppkey", vec.I32, false)
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(n int) int {
		state = state*2862933555777941757 + 3037000493
		return int((state >> 33) % uint64(n))
	}
	for i := 0; i < rows; i++ {
		rf.AppendString(flags[next(3)])
		ls.AppendString(statuses[next(2)])
		qty.AppendInt(int64(1 + next(50)))
		price.AppendInt(int64(100_000 + next(9_000_000)))
		disc.AppendInt(int64(next(11)))
		ship.AppendInt(int64(19920101 + next(70000)))
		supp.AppendInt(int64(next(100_000)))
	}
	t := storage.NewTable("scaling_lineitem", rf, ls, qty, price, disc, ship, supp)
	t.Seal()
	return t
}
