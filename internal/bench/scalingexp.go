package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// Scaling measures morsel-driven parallel execution on a TPC-H Q1-style
// hash aggregation: a selective date filter over a multi-block fact table,
// grouped on two low-cardinality string keys with the full Q1 aggregate
// mix. For every worker count it reports wall time, speedup over the
// workers=1 serial path, and — as one JSON record per point — the private
// hash-table footprint of every worker, which bounds the per-worker hot
// working set the paper's cache argument depends on.
func Scaling(w io.Writer, cfg Config) {
	header(w, "Scaling: morsel-driven parallel Q1-style aggregation")
	rows := cfg.BIRows * 10
	fact := scalingFact(rows, cfg.Seed)
	blocks := fact.Cols[0].Blocks()
	fmt.Fprintf(w, "rows=%d blocks=%d morsel=%d rows (one storage block)\n",
		rows, blocks, storage.BlockRows)

	plan := func() exec.Op { return scalingPlan(fact, -1) }

	series := []int{1, 2, 4}
	if cfg.Workers > 4 {
		series = append(series, cfg.Workers)
	}
	var base time.Duration
	for _, workers := range series {
		best := time.Duration(1<<63 - 1)
		var qc *exec.QCtx
		var nRows int
		for rep := 0; rep < cfg.Reps+1; rep++ {
			c := exec.NewQCtx(core.All())
			c.Workers = workers
			start := time.Now()
			res := exec.Run(c, plan())
			if el := time.Since(start); el < best {
				best, qc, nRows = el, c, len(res.Rows)
			}
		}
		if workers == 1 {
			base = best
		}
		rec := struct {
			Exp           string             `json:"exp"`
			Workers       int                `json:"workers"`
			TimeMs        float64            `json:"time_ms"`
			Speedup       float64            `json:"speedup"`
			Groups        int                `json:"groups"`
			HTBytes       int                `json:"ht_bytes"`
			WorkerHTBytes []int              `json:"worker_ht_bytes"`
			EngineStatsMs map[string]float64 `json:"engine_stats_ms"`
		}{
			Exp: "scaling", Workers: workers,
			TimeMs:        float64(best.Microseconds()) / 1000,
			Speedup:       float64(base) / float64(best),
			Groups:        nRows,
			HTBytes:       qc.HashTableBytes(),
			EngineStatsMs: map[string]float64{},
		}
		// Snapshot, not per-bucket Get: one consistent race-free copy of
		// the merged worker stats.
		for k, d := range qc.Stats.Snapshot() {
			rec.EngineStatsMs[k] = float64(d.Microseconds()) / 1000
		}
		if fp := qc.WorkerFootprints(); fp != nil {
			rec.WorkerHTBytes = fp
		} else {
			rec.WorkerHTBytes = []int{}
		}
		js, _ := json.Marshal(rec)
		fmt.Fprintln(w, string(js))
	}
}

// scalingPlan builds the Q1-style aggregation over the fact table with
// the given radix width for the group table (-1 = adaptive).
func scalingPlan(fact *storage.Table, bits int) exec.Op {
	sc := exec.NewScan(fact, "returnflag", "linestatus", "quantity", "extendedprice", "discount", "shipdate")
	m := sc.Meta()
	fl := exec.NewFilter(sc, exec.Le(exec.Col(m, "shipdate"), exec.Int(19980902)))
	fm := fl.Meta()
	price := exec.Col(fm, "extendedprice")
	disc := exec.Col(fm, "discount")
	ha := exec.NewHashAgg(fl,
		[]string{"returnflag", "linestatus"},
		[]*exec.Expr{exec.Col(fm, "returnflag"), exec.Col(fm, "linestatus")},
		[]exec.AggExpr{
			{Func: agg.Sum, Arg: exec.Col(fm, "quantity"), Name: "sum_qty"},
			{Func: agg.Sum, Arg: price, Name: "sum_base_price"},
			{Func: agg.Sum, Arg: exec.Mul(price, exec.Sub(exec.Int(100), disc)), Name: "sum_disc_price"},
			{Func: exec.Avg, Arg: exec.Col(fm, "quantity"), Name: "avg_qty"},
			{Func: agg.CountStar, Name: "count_order"},
		})
	ha.PartitionBits = bits
	return ha
}

// scalingFact generates a lineitem-like fact table: big enough to span
// several storage blocks (morsels) with the Q1 column mix.
func scalingFact(rows int, seed int64) *storage.Table {
	flags := []string{"A", "N", "R"}
	statuses := []string{"F", "O"}
	rf := storage.NewColumn("returnflag", vec.Str, false)
	ls := storage.NewColumn("linestatus", vec.Str, false)
	qty := storage.NewColumn("quantity", vec.I8, false)
	price := storage.NewColumn("extendedprice", vec.I32, false)
	disc := storage.NewColumn("discount", vec.I8, false)
	ship := storage.NewColumn("shipdate", vec.I32, false)
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(n int) int {
		state = state*2862933555777941757 + 3037000493
		return int((state >> 33) % uint64(n))
	}
	for i := 0; i < rows; i++ {
		rf.AppendString(flags[next(3)])
		ls.AppendString(statuses[next(2)])
		qty.AppendInt(int64(1 + next(50)))
		price.AppendInt(int64(100_000 + next(9_000_000)))
		disc.AppendInt(int64(next(11)))
		ship.AppendInt(int64(19920101 + next(70000)))
	}
	t := storage.NewTable("scaling_lineitem", rf, ls, qty, price, disc, ship)
	t.Seal()
	return t
}
