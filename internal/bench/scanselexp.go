package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
	"ocht/internal/tpch"
)

// ScanPoint is one variant of the selective-scan experiment, in the shape
// the -json-out perf report records. BlocksRead/BlocksSkipped partition
// the blocks the scan considered; BytesDecompressed counts bytes actually
// produced by decompression (zero-copy encoded views only pay their
// per-block dictionary tables).
type ScanPoint struct {
	Name              string  `json:"name"`
	NsPerRow          float64 `json:"ns_per_row"`
	BlocksRead        int64   `json:"blocks_read"`
	BlocksSkipped     int64   `json:"blocks_skipped"`
	BytesDecompressed int64   `json:"bytes_decompressed"`
	ResultRows        int     `json:"result_rows"`
}

// The scansel experiment needs a multi-block lineitem so zone-map
// skipping has blocks to skip; SF 0.1 yields ~600k rows (~10 blocks).
const scanSelMinSF = 0.1

var (
	scanSelMu   sync.Mutex
	scanSelSF   float64
	scanSelSeed int64
	scanSelCat  *storage.Catalog
)

func scanSelCatalog(cfg Config) *storage.Catalog {
	sf := cfg.TPCHSF
	if sf < scanSelMinSF {
		sf = scanSelMinSF
	}
	scanSelMu.Lock()
	defer scanSelMu.Unlock()
	if scanSelCat == nil || scanSelSF != sf || scanSelSeed != cfg.Seed {
		scanSelCat = tpch.Gen(sf, cfg.Seed)
		scanSelSF, scanSelSeed = sf, cfg.Seed
	}
	return scanSelCat
}

// scanSelPlan builds the selective aggregation the experiment measures: a
// ~5% l_orderkey range filter over lineitem feeding a small group-by.
// lineitem is generated in orderkey order, so block zone maps carve the
// key space into disjoint ranges and the filter's pushed-down zone range
// prunes most blocks.
func scanSelPlan(t *storage.Table) exec.Op {
	sc := exec.NewScan(t, "l_orderkey", "l_returnflag", "l_extendedprice")
	m := sc.Meta()
	dom := m[0].Dom
	span := dom.Max - dom.Min
	lo := dom.Min + span*45/100
	hi := dom.Min + span*50/100
	f := exec.NewFilter(sc, exec.Between(exec.Col(m, "l_orderkey"), exec.Int(lo), exec.Int(hi)))
	return exec.NewHashAgg(f,
		[]string{"l_returnflag"}, []*exec.Expr{exec.Col(m, "l_returnflag")},
		[]exec.AggExpr{
			{Func: agg.Sum, Arg: exec.Col(m, "l_extendedprice"), Name: "sum_price"},
			{Func: agg.CountStar, Name: "cnt"},
		})
}

// ScanSelRun measures the selective scan in three configurations: the
// eager-materializing baseline (every block decompressed, no skipping),
// compressed execution without zone skipping (isolates the zero-copy
// encoded views), and the full compressed default (encoded views + zone
// pruning).
func ScanSelRun(cfg Config) []ScanPoint {
	cat := scanSelCatalog(cfg)
	t := cat.Table("lineitem")
	rows := t.Rows()
	variants := []struct {
		name   string
		eager  bool
		noskip bool
	}{
		{"materialized", true, true},
		{"compressed-noskip", false, true},
		{"compressed", false, false},
	}
	out := make([]ScanPoint, 0, len(variants))
	for _, v := range variants {
		bestD := time.Duration(1<<63 - 1)
		p := ScanPoint{Name: v.name}
		for rep := 0; rep < cfg.Reps; rep++ {
			qc := exec.NewQCtx(core.All())
			qc.EagerMaterialize = v.eager
			qc.DisableZoneSkip = v.noskip
			plan := scanSelPlan(t)
			start := time.Now()
			res := exec.Run(qc, plan)
			if el := time.Since(start); el < bestD {
				bestD = el
				p.NsPerRow = float64(el.Nanoseconds()) / float64(rows)
				p.BlocksRead = qc.Stats.Counter(exec.CtrBlocksRead)
				p.BlocksSkipped = qc.Stats.Counter(exec.CtrBlocksSkipped)
				p.BytesDecompressed = qc.Stats.Counter(exec.CtrBytesDecompressed)
				p.ResultRows = len(res.Rows)
			}
		}
		out = append(out, p)
	}
	return out
}

// ScanSel prints the selective-scan experiment.
func ScanSel(w io.Writer, cfg Config) {
	cat := scanSelCatalog(cfg)
	t := cat.Table("lineitem")
	header(w, "ScanSel: selective scan with compressed blocks and zone-map skipping")
	fmt.Fprintf(w, "lineitem=%d rows, ~5%% l_orderkey range filter into group-by\n", t.Rows())
	line(w, "variant", "ns/row", "blocks-read", "blocks-skipped", "bytes-decompressed", "rows")
	for _, p := range ScanSelRun(cfg) {
		fmt.Fprintf(w, "%-18s %8.1f %11d %14d %18s %6d\n",
			p.Name, p.NsPerRow, p.BlocksRead, p.BlocksSkipped,
			humanBytes(int(p.BytesDecompressed)), p.ResultRows)
	}
}
