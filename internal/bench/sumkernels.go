package bench

import (
	"ocht/internal/agg"
	"ocht/internal/i128"
)

// Thin aliases binding Figure 11 to the aggregation kernels.

func fullSumLoop(aggs []i128.Int, groups []int32, vals []int64) {
	agg.FullSum(aggs, groups, vals)
}

func fullSumPosLoop(aggs []i128.Int, groups []int32, vals []int64) {
	agg.FullSumPos(aggs, groups, vals)
}

func optSumLoop(common []uint64, except []int64, groups []int32, vals []int64) {
	agg.OpSum(common, except, groups, vals)
}

func optSumPosLoop(common []uint64, except []int64, groups []int32, vals []int64) {
	agg.OpSumPos(common, except, groups, vals)
}
