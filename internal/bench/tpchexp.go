package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
	"ocht/internal/tpch"
)

// tpchConfig names one engine configuration of the TPC-H experiments.
type tpchConfig struct {
	name  string
	flags core.Flags
}

var tpchConfigs = []tpchConfig{
	{"vanilla", core.Vanilla()},
	{"ussr", core.Flags{UseUSSR: true}},
	{"cht", core.Flags{Compress: true}},
	{"all", core.All()},
}

// numTPCHConfigs must match len(tpchConfigs).
const numTPCHConfigs = 4

// tpchRun caches one full power run per configuration.
type tpchRun struct {
	times    [numTPCHConfigs][22]time.Duration
	htBytes  [numTPCHConfigs][22]int
	hotBytes [numTPCHConfigs][22]int
}

var (
	tpchMu     sync.Mutex
	tpchCatSF  float64
	tpchCatVal *storage.Catalog
	tpchRunKey Config
	tpchRunVal *tpchRun
)

func tpchCatalog(cfg Config) *storage.Catalog {
	tpchMu.Lock()
	defer tpchMu.Unlock()
	if tpchCatVal == nil || tpchCatSF != cfg.TPCHSF {
		tpchCatVal = tpch.Gen(cfg.TPCHSF, cfg.Seed)
		tpchCatSF = cfg.TPCHSF
	}
	return tpchCatVal
}

// runTPCH executes the TPC-H power run under every configuration,
// measuring per-query hot runtime and hash-table footprints.
func runTPCH(cfg Config) *tpchRun {
	cat := tpchCatalog(cfg)
	tpchMu.Lock()
	if tpchRunVal != nil && tpchRunKey == cfg {
		r := tpchRunVal
		tpchMu.Unlock()
		return r
	}
	tpchMu.Unlock()

	r := &tpchRun{}
	for ci := range tpchConfigs {
		for q := 0; q < 22; q++ {
			r.times[ci][q] = time.Duration(1<<63 - 1)
		}
	}
	// Interleave configurations within each repetition so that machine
	// noise hits all of them alike; keep the fastest (hot) run per
	// configuration, the paper's measurement discipline.
	for rep := 0; rep < cfg.Reps+1; rep++ {
		for q := 1; q <= 22; q++ {
			for ci, c := range tpchConfigs {
				qc := exec.NewQCtx(c.flags)
				start := time.Now()
				tpch.Q(q, cat, qc)
				el := time.Since(start)
				if rep == 0 {
					// Warm-up round: record footprints only.
					r.htBytes[ci][q-1] = qc.HashTableBytes()
					r.hotBytes[ci][q-1] = qc.HashTableHotBytes()
					continue
				}
				if el < r.times[ci][q-1] {
					r.times[ci][q-1] = el
				}
			}
		}
	}
	tpchMu.Lock()
	tpchRunKey, tpchRunVal = cfg, r
	tpchMu.Unlock()
	return r
}

func configIndex(name string) int {
	for i, c := range tpchConfigs {
		if c.name == name {
			return i
		}
	}
	panic("bench: unknown config " + name)
}

// Fig4 prints the hash-table footprint shrinking factors of Figure 4:
// "CHT alone" (total footprint under compression) and "CHT + Optimistic
// (hot area)" against the vanilla baseline, with the absolute vanilla
// footprint per query.
func Fig4(w io.Writer, cfg Config) {
	r := runTPCH(cfg)
	van, cht, all := configIndex("vanilla"), configIndex("cht"), configIndex("all")
	header(w, fmt.Sprintf("Figure 4: hash table footprint shrinking factor, TPC-H SF %g", cfg.TPCHSF))
	line(w, "query", "baseline", "CHT alone", "CHT+Optimistic(hot)")
	for q := 0; q < 22; q++ {
		base := r.htBytes[van][q]
		f1 := factor(base, r.htBytes[cht][q])
		f2 := factor(base, r.hotBytes[all][q])
		fmt.Fprintf(w, "Q%-4d %10s %10.2fx %10.2fx\n", q+1, humanBytes(base), f1, f2)
	}
}

// Table2 prints the total (hot+cold) footprint reduction of Table II.
func Table2(w io.Writer, cfg Config) {
	r := runTPCH(cfg)
	van, all := configIndex("vanilla"), configIndex("all")
	header(w, "Table II: total footprint reduction, vanilla vs CHT+Optimistic+USSR")
	fmt.Fprint(w, "query:  ")
	for q := 0; q < 22; q++ {
		fmt.Fprintf(w, "%5d", q+1)
	}
	fmt.Fprint(w, "\nfactor: ")
	for q := 0; q < 22; q++ {
		fmt.Fprintf(w, "%5.1f", factor(r.htBytes[van][q], r.htBytes[all][q]))
	}
	fmt.Fprintln(w)
}

// Fig5 prints the per-query runtime improvement of Figure 5 for the three
// configurations (USSR alone, CHT alone, all three), with the baseline
// runtime per query.
func Fig5(w io.Writer, cfg Config) {
	r := runTPCH(cfg)
	van := configIndex("vanilla")
	header(w, fmt.Sprintf("Figure 5: %% improvement over TPC-H power run, SF %g", cfg.TPCHSF))
	line(w, "query", "baseline", "USSR alone", "CHT alone", "CHT+Opt+USSR")
	for q := 0; q < 22; q++ {
		base := r.times[van][q]
		fmt.Fprintf(w, "Q%-4d %10v", q+1, base.Round(time.Microsecond))
		for _, name := range []string{"ussr", "cht", "all"} {
			d := r.times[configIndex(name)][q]
			fmt.Fprintf(w, " %9.1f%%", improvement(base, d))
		}
		fmt.Fprintln(w)
	}
}

func factor(base, v int) float64 {
	if v == 0 {
		return 0
	}
	return float64(base) / float64(v)
}

func improvement(base, v time.Duration) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (1 - float64(v)/float64(base))
}
