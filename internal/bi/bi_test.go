package bi

import (
	"sort"
	"strings"
	"testing"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
)

var testCat *storage.Catalog

func catFor(t testing.TB) *storage.Catalog {
	if testCat == nil {
		testCat = Gen(20_000, 9)
	}
	return testCat
}

func resKey(r *exec.Result) []string {
	rows := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return rows
}

func TestGen(t *testing.T) {
	cat := catFor(t)
	c := cat.Table("contracts")
	if c.Rows() != 20_000 {
		t.Fatalf("rows %d", c.Rows())
	}
	// String-dominant schema: at least half the columns are strings.
	strCols := 0
	for _, colm := range c.Cols {
		if colm.Type.String() == "str" {
			strCols++
		}
	}
	if strCols*2 < len(c.Cols) {
		t.Errorf("only %d/%d string columns", strCols, len(c.Cols))
	}
	// description is near-unique, agency is low-cardinality.
	if d := c.Col("description").DictStats(); d < c.Rows()/2 {
		t.Errorf("description dictionary too small: %d", d)
	}
	if a := c.Col("agency").DictStats(); a > nAgencies*c.Col("agency").Blocks() {
		t.Errorf("agency dictionary too large: %d", a)
	}
}

func TestAllQueriesAgreeAcrossFlags(t *testing.T) {
	cat := catFor(t)
	combos := []core.Flags{
		core.Vanilla(),
		{UseUSSR: true},
		core.All(),
	}
	for q := 1; q <= NumQueries; q++ {
		var ref []string
		for _, flags := range combos {
			qc := exec.NewQCtx(flags)
			got := resKey(Q(q, cat, qc))
			if ref == nil {
				ref = got
				continue
			}
			if len(ref) != len(got) {
				t.Errorf("Q%d: row count %d vs %d under %+v", q, len(ref), len(got), flags)
				continue
			}
			for i := range ref {
				if ref[i] != got[i] {
					t.Errorf("Q%d row %d differs under %+v:\n%s\nvs\n%s", q, i, flags, ref[i], got[i])
					break
				}
			}
		}
	}
}

func TestUSSRRegimes(t *testing.T) {
	cat := catFor(t)
	// Q1 (agency): dictionary fits, no rejections.
	qc := exec.NewQCtx(core.All())
	Q(1, cat, qc)
	s1 := qc.Store.U.Stats()
	if s1.Rejected != 0 {
		t.Errorf("Q1 should have no rejections, got %d", s1.Rejected)
	}
	if s1.Count == 0 || s1.Count > 200 {
		t.Errorf("Q1 resident strings: %d", s1.Count)
	}
	// Q6 (description): dictionary overflows, rejections appear.
	qc6 := exec.NewQCtx(core.All())
	Q(6, cat, qc6)
	s6 := qc6.Store.U.Stats()
	if s6.Rejected == 0 {
		t.Error("Q6 must overflow the USSR")
	}
	if s6.SizeBytes < 400*1024 {
		t.Errorf("Q6 USSR usage only %d bytes", s6.SizeBytes)
	}
	if s6.AvgLen() <= 0 {
		t.Error("avg length")
	}
}

func TestNullsGroupTogether(t *testing.T) {
	cat := catFor(t)
	qc := exec.NewQCtx(core.All())
	r := Q(10, cat, qc) // dept has ~5% NULLs
	nullRows := 0
	for _, row := range r.Rows {
		if row[0].Null {
			nullRows++
		}
	}
	if nullRows != 1 {
		t.Errorf("expected exactly one NULL dept group, got %d", nullRows)
	}
}
