package bi

import (
	"fmt"
	"testing"

	"ocht/internal/core"
	"ocht/internal/exec"
)

// TestAllQueriesCompressedMatchEager checks the string-heavy BI workload —
// where scans emit dictionary-coded blocks and LIKE/EQ predicates run on
// codes — against the eager-materialize oracle at every worker count.
func TestAllQueriesCompressedMatchEager(t *testing.T) {
	cat := catFor(t)
	for q := 1; q <= NumQueries; q++ {
		oracle := exec.NewQCtx(core.All())
		oracle.EagerMaterialize = true
		oracle.DisableZoneSkip = true
		want := resKey(Q(q, cat, oracle))
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("q%d/w%d", q, workers), func(t *testing.T) {
				qc := exec.NewQCtx(core.All())
				qc.Workers = workers
				got := resKey(Q(q, cat, qc))
				if len(got) != len(want) {
					t.Fatalf("compressed %d rows, eager oracle %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("row %d:\n  compressed %s\n  eager      %s", i, got[i], want[i])
					}
				}
			})
		}
	}
}
