// Package bi implements a Public-BI-Benchmark-style workload modeled on
// the paper's CommonGovernment workbook (Section V-B, Table III).
//
// Substitution note: the Tableau Public data is closed (400 GB of user
// workbooks); this generator reproduces the three workload properties the
// paper's observations hinge on:
//
//  1. string-dominant schemas (half of all columns are strings, many
//     "dates and numerics stored as strings"),
//  2. most string columns draw from low/medium-cardinality domains with
//     Zipfian frequencies — they fit the USSR and profit from
//     pointer-equality and pre-computed hashes,
//  3. a few columns (description, award id) have very large dictionaries
//     that overflow the 512 kB region, producing the rejection regime of
//     the paper's Q6/Q8/Q20.
//
// NULL values are common, as the paper notes for the real workbooks.
package bi

import (
	"fmt"
	"math/rand"

	"ocht/internal/storage"
	"ocht/internal/vec"
)

// Cardinalities of the string domains.
const (
	nAgencies  = 60
	nStates    = 56
	nDepts     = 320
	nTypes     = 12
	nStatuses  = 6
	nVendors   = 2500
	nProducts  = 14000
	nOfficeIDs = 900
)

var statuses = []string{"ACTIVE", "CLOSED", "PENDING", "CANCELLED", "EXPIRED", "UNDER REVIEW"}
var contractTypes = []string{
	"FIRM FIXED PRICE", "COST PLUS FIXED FEE", "TIME AND MATERIALS",
	"LABOR HOURS", "COST NO FEE", "COST SHARING", "FIXED PRICE INCENTIVE",
	"FIXED PRICE REDETERMINATION", "INDEFINITE DELIVERY", "BLANKET PURCHASE",
	"COOPERATIVE AGREEMENT", "PURCHASE ORDER"}

var stateNames = []string{
	"ALABAMA", "ALASKA", "ARIZONA", "ARKANSAS", "CALIFORNIA", "COLORADO",
	"CONNECTICUT", "DELAWARE", "FLORIDA", "GEORGIA", "HAWAII", "IDAHO",
	"ILLINOIS", "INDIANA", "IOWA", "KANSAS", "KENTUCKY", "LOUISIANA",
	"MAINE", "MARYLAND", "MASSACHUSETTS", "MICHIGAN", "MINNESOTA",
	"MISSISSIPPI", "MISSOURI", "MONTANA", "NEBRASKA", "NEVADA",
	"NEW HAMPSHIRE", "NEW JERSEY", "NEW MEXICO", "NEW YORK",
	"NORTH CAROLINA", "NORTH DAKOTA", "OHIO", "OKLAHOMA", "OREGON",
	"PENNSYLVANIA", "RHODE ISLAND", "SOUTH CAROLINA", "SOUTH DAKOTA",
	"TENNESSEE", "TEXAS", "UTAH", "VERMONT", "VIRGINIA", "WASHINGTON",
	"WEST VIRGINIA", "WISCONSIN", "WYOMING", "PUERTO RICO", "GUAM",
	"DISTRICT OF COLUMBIA", "AMERICAN SAMOA", "NORTHERN MARIANAS",
	"VIRGIN ISLANDS"}

// zipf draws Zipf-distributed indices in [0, n): real BI string columns
// are heavily skewed toward a few frequent values.
type zipf struct{ z *rand.Zipf }

func newZipf(rng *rand.Rand, n int) zipf {
	return zipf{rand.NewZipf(rng, 1.3, 4, uint64(n-1))}
}

func (z zipf) draw() int { return int(z.z.Uint64()) }

// Gen generates the CommonGovernment-like "contracts" table with the
// given number of rows, plus a small "vendors" dimension table.
func Gen(rows int, seed int64) *storage.Catalog {
	rng := rand.New(rand.NewSource(seed))
	cat := storage.NewCatalog()

	agencyNames := make([]string, nAgencies)
	for i := range agencyNames {
		agencyNames[i] = fmt.Sprintf("DEPARTMENT OF %s ADMINISTRATION %02d", stateNames[i%len(stateNames)], i)
	}
	deptNames := make([]string, nDepts)
	for i := range deptNames {
		deptNames[i] = fmt.Sprintf("OFFICE OF PROCUREMENT SERVICES REGION %03d", i)
	}
	vendorNames := make([]string, nVendors)
	for i := range vendorNames {
		vendorNames[i] = fmt.Sprintf("VENDOR %05d INCORPORATED SERVICES", i)
	}
	productNames := make([]string, nProducts)
	for i := range productNames {
		productNames[i] = fmt.Sprintf("PRODUCT-SERVICE CODE %06d CATEGORY %03d", i, i%512)
	}

	agency := storage.NewColumn("agency", vec.Str, false)
	dept := storage.NewColumn("dept", vec.Str, true)
	state := storage.NewColumn("state", vec.Str, true)
	ctype := storage.NewColumn("contract_type", vec.Str, false)
	status := storage.NewColumn("status", vec.Str, false)
	vendor := storage.NewColumn("vendor", vec.Str, true)
	product := storage.NewColumn("product", vec.Str, false)
	descr := storage.NewColumn("description", vec.Str, false)
	awardID := storage.NewColumn("award_id", vec.Str, false)
	yearStr := storage.NewColumn("year_str", vec.Str, false) // a date stored as string, per the workload study
	amount := storage.NewColumn("amount", vec.I64, false)
	yearNum := storage.NewColumn("year", vec.I32, false)
	offices := storage.NewColumn("office_id", vec.I32, false)

	zAgency := newZipf(rng, nAgencies)
	zDept := newZipf(rng, nDepts)
	zState := newZipf(rng, len(stateNames))
	zVendor := newZipf(rng, nVendors)
	zProduct := newZipf(rng, nProducts)

	for i := 0; i < rows; i++ {
		agency.AppendString(agencyNames[zAgency.draw()])
		if rng.Intn(20) == 0 {
			dept.AppendNull()
		} else {
			dept.AppendString(deptNames[zDept.draw()])
		}
		if rng.Intn(15) == 0 {
			state.AppendNull()
		} else {
			state.AppendString(stateNames[zState.draw()])
		}
		ctype.AppendString(contractTypes[rng.Intn(nTypes)])
		status.AppendString(statuses[rng.Intn(nStatuses)])
		if rng.Intn(25) == 0 {
			vendor.AppendNull()
		} else {
			vendor.AppendString(vendorNames[zVendor.draw()])
		}
		product.AppendString(productNames[zProduct.draw()])
		// description and award_id are near-unique: their dictionaries
		// overflow the USSR (the paper's Q6/Q8/Q20 regime).
		descr.AppendString(fmt.Sprintf("CONTRACT ACTION %09d MODIFICATION %03d", i, rng.Intn(1000)))
		awardID.AppendString(fmt.Sprintf("AW-%04d-%07d", rng.Intn(10000), i))
		y := 2010 + rng.Intn(10)
		yearStr.AppendString(fmt.Sprintf("%d", y))
		amount.AppendInt(int64(rng.Intn(10_000_000)) + 100)
		yearNum.AppendInt(int64(y))
		offices.AppendInt(int64(rng.Intn(nOfficeIDs)))
	}
	contracts := storage.NewTable("contracts",
		agency, dept, state, ctype, status, vendor, product, descr, awardID,
		yearStr, amount, yearNum, offices)
	contracts.Seal()
	cat.Add(contracts)

	vName := storage.NewColumn("v_name", vec.Str, false)
	vState := storage.NewColumn("v_state", vec.Str, false)
	vSize := storage.NewColumn("v_size", vec.I32, false)
	for i := 0; i < nVendors; i++ {
		vName.AppendString(vendorNames[i])
		vState.AppendString(stateNames[rng.Intn(len(stateNames))])
		vSize.AppendInt(int64(rng.Intn(5)))
	}
	vendors := storage.NewTable("vendors", vName, vState, vSize)
	vendors.Seal()
	cat.Add(vendors)
	return cat
}
