package bi

import (
	"fmt"
	"testing"

	"ocht/internal/core"
	"ocht/internal/exec"
)

// TestAllQueriesParallelMatchSerial checks every BI workload query at
// several worker counts against the serial oracle. The BI queries group
// almost exclusively on strings, so this exercises cross-worker string
// reference resolution (USSR hits and private-heap exceptions) in the
// merge phase.
func TestAllQueriesParallelMatchSerial(t *testing.T) {
	cat := catFor(t)
	flagSets := []struct {
		name  string
		flags core.Flags
	}{
		{"vanilla", core.Vanilla()},
		{"all", core.All()},
	}
	for _, fs := range flagSets {
		for q := 1; q <= NumQueries; q++ {
			serial := resKey(Q(q, cat, exec.NewQCtx(fs.flags)))
			for _, workers := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("%s/q%d/w%d", fs.name, q, workers), func(t *testing.T) {
					qc := exec.NewQCtx(fs.flags)
					qc.Workers = workers
					got := resKey(Q(q, cat, qc))
					if len(got) != len(serial) {
						t.Fatalf("row count %d, serial %d", len(got), len(serial))
					}
					for i := range got {
						if got[i] != serial[i] {
							t.Fatalf("row %d:\n  parallel %s\n  serial   %s", i, got[i], serial[i])
						}
					}
				})
			}
		}
	}
}
