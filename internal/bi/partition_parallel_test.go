package bi

import (
	"fmt"
	"testing"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
)

// TestAllQueriesPartitionBitsSealModes drives every BI query through the
// parallel engine at forced radix widths {0, 3, 6} — pinning both the
// agg.Merge path (0) and the owner-computes partition-wise path (3, 6) —
// over BOTH catalog generations (plain and compressed sealed string
// blocks), against the adaptive serial oracle of the same catalog.
func TestAllQueriesPartitionBitsSealModes(t *testing.T) {
	gen := func(mode storage.CompressMode) *storage.Catalog {
		storage.SetSealCompression(mode)
		storage.SetCompressMinRows(1)
		defer func() {
			storage.SetSealCompression(storage.CompressAuto)
			storage.SetCompressMinRows(4096)
		}()
		return Gen(20_000, 9)
	}
	cats := []struct {
		name string
		cat  *storage.Catalog
	}{
		{"plain", gen(storage.CompressOff)},
		{"compressed", gen(storage.CompressOn)},
	}
	defer func(old int) { exec.DefaultPartitionBits = old }(exec.DefaultPartitionBits)
	for _, c := range cats {
		for q := 1; q <= NumQueries; q++ {
			exec.DefaultPartitionBits = -1
			serial := resKey(Q(q, c.cat, exec.NewQCtx(core.All())))
			for _, bits := range []int{0, 3, 6} {
				for _, workers := range []int{1, 2, 4, 8} {
					t.Run(fmt.Sprintf("%s/q%d/bits%d/w%d", c.name, q, bits, workers), func(t *testing.T) {
						exec.DefaultPartitionBits = bits
						qc := exec.NewQCtx(core.All())
						qc.Workers = workers
						got := resKey(Q(q, c.cat, qc))
						if len(got) != len(serial) {
							t.Fatalf("row count %d, serial %d", len(got), len(serial))
						}
						for i := range got {
							if got[i] != serial[i] {
								t.Fatalf("row %d:\n  parallel %s\n  serial   %s", i, got[i], serial[i])
							}
						}
					})
				}
			}
		}
	}
}
