package bi

import (
	"fmt"

	"ocht/internal/agg"
	"ocht/internal/exec"
	"ocht/internal/storage"
)

type e = exec.Expr

var (
	col = exec.Col
	ci  = exec.Int
	cs  = exec.Str
)

// Q runs BI workload query n (1..20). The mix follows the paper's
// CommonGovernment profile: almost all queries are aggregations over
// string columns with small results, a few (Q6, Q8, Q20) group on
// very-high-cardinality strings whose dictionaries overflow the USSR.
func Q(n int, cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	if n < 1 || n > 20 {
		panic(fmt.Sprintf("bi: no query %d", n))
	}
	return biQueries[n-1](cat, qc)
}

// NumQueries is the number of workload queries.
const NumQueries = 20

// groupCount builds SELECT keys..., COUNT(*), SUM(amount) FROM contracts
// [WHERE pred] GROUP BY keys. extra lists additional columns the predicate
// touches.
func groupCount(cat *storage.Catalog, qc *exec.QCtx, keys []string, pred func(m []exec.Meta) *e, extra ...string) *exec.Result {
	cols := append([]string{}, keys...)
	cols = append(cols, "amount")
	for _, x := range extra {
		dup := false
		for _, c := range cols {
			if c == x {
				dup = true
				break
			}
		}
		if !dup {
			cols = append(cols, x)
		}
	}
	s := exec.NewScan(cat.Table("contracts"), cols...)
	m := s.Meta()
	var src exec.Op = s
	if pred != nil {
		src = exec.NewFilter(s, pred(m))
	}
	keyExprs := make([]*e, len(keys))
	for i, k := range keys {
		keyExprs[i] = col(m, k)
	}
	h := exec.NewHashAgg(src, keys, keyExprs, []exec.AggExpr{
		{Func: agg.CountStar, Name: "cnt"},
		{Func: agg.Sum, Arg: col(m, "amount"), Name: "total"},
	})
	return exec.Run(qc, h).OrderBy(exec.SortKey{Col: len(keys), Desc: true}).Limit(1000)
}

var biQueries = [NumQueries]func(*storage.Catalog, *exec.QCtx) *exec.Result{
	// Q1: spend per agency — low-cardinality long strings, the USSR
	// sweet spot.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"agency"}, nil)
	},
	// Q2: contracts per status — tiny dictionary.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"status"}, nil)
	},
	// Q3: agency x status matrix.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"agency", "status"}, nil)
	},
	// Q4: contract types.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"contract_type"}, nil)
	},
	// Q5: spend per vendor — medium cardinality (thousands of strings).
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"vendor"}, nil)
	},
	// Q6: count per description — near-unique strings; the dictionary
	// does not fit the USSR (the paper's rejection regime).
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"description"}, nil)
	},
	// Q7: spend per product code — large dictionary, partially resident.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"product"}, nil)
	},
	// Q8: award ids of one year — another overflowing dictionary.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"award_id"}, func(m []exec.Meta) *e {
			return exec.Eq(col(m, "year"), ci(2015))
		}, "year")
	},
	// Q9: state x contract type.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"state", "contract_type"}, nil)
	},
	// Q10: departments of active contracts (NULL-able group key).
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"dept"}, func(m []exec.Meta) *e {
			return exec.Eq(col(m, "status"), cs("ACTIVE"))
		}, "status")
	},
	// Q11: product x year.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"product", "year"}, nil)
	},
	// Q12: big-ticket agencies.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"agency"}, func(m []exec.Meta) *e {
			return exec.Gt(col(m, "amount"), ci(5_000_000))
		})
	},
	// Q13: agency x year trend.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"agency", "year_str"}, nil)
	},
	// Q14: California vendors.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"vendor"}, func(m []exec.Meta) *e {
			return exec.Eq(col(m, "state"), cs("CALIFORNIA"))
		}, "state")
	},
	// Q15: spend per state, known states only.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"state"}, func(m []exec.Meta) *e {
			return exec.IsNotNull(col(m, "state"))
		})
	},
	// Q16: three-way string group.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"agency", "contract_type", "status"}, nil)
	},
	// Q17: recent expired contracts per agency.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"agency"}, func(m []exec.Meta) *e {
			return exec.And(
				exec.Ge(col(m, "year"), ci(2016)),
				exec.Eq(col(m, "status"), cs("EXPIRED")))
		}, "year", "status")
	},
	// Q18: departments overall.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"dept"}, nil)
	},
	// Q19: the year-stored-as-string column the workload study calls out.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		return groupCount(cat, qc, []string{"year_str", "status"}, nil)
	},
	// Q20: vendor join + grouping on award ids — a large unified
	// dictionary plus a join, the paper's third no-benefit query.
	func(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
		c := exec.NewScan(cat.Table("contracts"), "vendor", "award_id", "amount", "year")
		cm := c.Meta()
		cf := exec.NewFilter(c, exec.Lt(col(cm, "year"), ci(2013)))
		v := exec.NewScan(cat.Table("vendors"), "v_name", "v_state")
		j := exec.NewHashJoin(exec.Inner, cf, v,
			[]string{"vendor"}, []string{"v_name"}, []string{"v_state"})
		jm := j.Meta()
		h := exec.NewHashAgg(j,
			[]string{"award_id", "v_state"},
			[]*e{col(jm, "award_id"), col(jm, "v_state")},
			[]exec.AggExpr{{Func: agg.Sum, Arg: col(jm, "amount"), Name: "total"}})
		return exec.Run(qc, h).OrderBy(exec.SortKey{Col: 2, Desc: true}).Limit(1000)
	},
}
