package bi

import (
	"fmt"
	"testing"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
)

// TestAllQueriesSealCompressedMatchPlain runs the string-heavy BI workload
// — LIKE-dominated predicates over wide text columns — against two
// generations of the same catalog: string blocks sealed compressed versus
// plain. Every query at every worker count must match byte-identically;
// with compression on, the dictionary verdict tables evaluate predicates
// on bit-packed codes and only surviving rows resolve strings.
func TestAllQueriesSealCompressedMatchPlain(t *testing.T) {
	gen := func(mode storage.CompressMode) *storage.Catalog {
		storage.SetSealCompression(mode)
		storage.SetCompressMinRows(1)
		defer func() {
			storage.SetSealCompression(storage.CompressAuto)
			storage.SetCompressMinRows(4096)
		}()
		return Gen(20_000, 9)
	}
	plainCat := gen(storage.CompressOff)
	compCat := gen(storage.CompressOn)
	ct := compCat.Table("contracts")
	someCompressed := false
	for _, c := range ct.Cols {
		for bi := 0; bi < c.Blocks(); bi++ {
			someCompressed = someCompressed || c.Block(bi).DictCompressed()
		}
	}
	if !someCompressed {
		t.Fatal("forced compression sealed no compressed string blocks")
	}
	for q := 1; q <= NumQueries; q++ {
		want := resKey(Q(q, plainCat, exec.NewQCtx(core.All())))
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("q%d/w%d", q, workers), func(t *testing.T) {
				qc := exec.NewQCtx(core.All())
				qc.Workers = workers
				got := resKey(Q(q, compCat, qc))
				if len(got) != len(want) {
					t.Fatalf("compressed %d rows, plain %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("row %d:\n  compressed %s\n  plain      %s", i, got[i], want[i])
					}
				}
			})
		}
	}
}
