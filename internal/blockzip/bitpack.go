package blockzip

// PackedU32 is a fixed-width bit-packed vector of uint32 values with O(1)
// random access: each value is Bits wide, packed into 64-bit words with no
// value crossing a word boundary (the same word layout the storage engine's
// frame-of-reference integer blocks and the vec.EncPacked views use, so a
// packed code column can alias straight into a vector view).
type PackedU32 struct {
	Bits  int
	N     int
	Words []uint64
}

// bitsForU32 returns the width needed to store values in [0, max].
func bitsForU32(max uint32) int {
	bits := 1
	for uint64(1)<<uint(bits) <= uint64(max) {
		bits++
	}
	return bits
}

// PackU32 bit-packs vals at the width needed for max. max must be >= every
// element of vals.
func PackU32(vals []uint32, max uint32) PackedU32 {
	bits := bitsForU32(max)
	per := 64 / bits
	words := make([]uint64, (len(vals)+per-1)/per)
	for i, v := range vals {
		words[i/per] |= uint64(v) << (uint(i%per) * uint(bits))
	}
	return PackedU32{Bits: bits, N: len(vals), Words: words}
}

// At returns element i.
//
//ocht:hot
func (p *PackedU32) At(i int) uint32 {
	per := 64 / p.Bits
	w := p.Words[i/per]
	return uint32((w >> (uint(i%per) * uint(p.Bits))) & (1<<uint(p.Bits) - 1))
}

// Bytes is the resident size of the packed words.
func (p *PackedU32) Bytes() int { return len(p.Words) * 8 }

// WordsFor returns the number of 64-bit words a packed vector of n values
// at the given width occupies — used by deserializers to size reads.
func WordsFor(n, bits int) int {
	per := 64 / bits
	return (n + per - 1) / per
}
