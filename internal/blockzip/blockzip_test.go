package blockzip

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// corpus builds n pseudo-sentences from a small vocabulary — the shape of
// TPC-H comment columns, where pair tables shine.
func corpus(n int, seed int64) []string {
	words := []string{
		"furiously", "carefully", "quickly", "express", "regular", "special",
		"pending", "ironic", "final", "bold", "deposits", "requests",
		"accounts", "packages", "instructions", "theodolites", "pinto",
		"beans", "foxes", "dependencies", "sleep", "nag", "haggle", "wake",
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		var b strings.Builder
		for w := 0; w < 4+rng.Intn(5); w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(words[rng.Intn(len(words))])
		}
		out[i] = b.String()
	}
	return out
}

func buildOrDie(t *testing.T, strs []string) *Dict {
	t.Helper()
	d, err := Build(strs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRoundTripAllEntries(t *testing.T) {
	for _, tc := range [][]string{
		{""},
		{"", "a", "aa", "ab"},
		{"solo"},
		corpus(7, 1),     // partial bucket
		corpus(16, 2),    // exactly one bucket
		corpus(1000, 3),  // many buckets
		{"x", "x", "x"},  // duplicates allowed
		{"\x00\xff\x00"}, // binary-unsafe bytes
	} {
		d := buildOrDie(t, tc)
		if d.Len() != len(tc) {
			t.Fatalf("Len %d, want %d", d.Len(), len(tc))
		}
		var buf []byte
		for i, want := range tc {
			var got []byte
			got, _, buf = d.StrAt(i, buf)
			if string(got) != want {
				t.Fatalf("StrAt(%d) = %q, want %q", i, got, want)
			}
		}
		seen := 0
		d.ForEach(func(i int, s []byte) {
			if string(s) != tc[i] {
				t.Fatalf("ForEach(%d) = %q, want %q", i, s, tc[i])
			}
			seen++
		})
		if seen != len(tc) {
			t.Fatalf("ForEach visited %d of %d", seen, len(tc))
		}
	}
}

// TestStrAtDecodesOnlyTheBucket is the random-access acceptance check: a
// point access must decompress only the requested entry's bucket chain,
// never the whole dictionary.
func TestStrAtDecodesOnlyTheBucket(t *testing.T) {
	strs := corpus(4096, 7)
	sorted, _ := SortWithPermutation(strs)
	d := buildOrDie(t, sorted)
	total := d.RawBytes()
	var buf []byte
	for _, i := range []int{0, 1, 15, 16, 100, 4095} {
		var dec int
		_, dec, buf = d.StrAt(i, buf)
		// The chain decodes at most a bucket's worth of strings; with
		// ~16-60 byte entries that is orders of magnitude below the
		// dictionary, but assert the hard structural bound too.
		chain := i%16 + 1
		if maxChain := chain * (d.MaxLen() + 1); dec > maxChain {
			t.Fatalf("StrAt(%d) decoded %d bytes, bucket chain bound is %d", i, dec, maxChain)
		}
		if int64(dec)*20 > total {
			t.Fatalf("StrAt(%d) decoded %d of %d total bytes — not random access", i, dec, total)
		}
	}
}

func TestCompressionRatioOnRedundantText(t *testing.T) {
	strs := corpus(20000, 11)
	sorted, _ := SortWithPermutation(strs)
	d := buildOrDie(t, sorted)
	raw := d.RawBytes()
	comp := int64(d.CompressedBytes())
	if comp*2 > raw {
		t.Fatalf("compressed %d bytes of %d raw — expected at least 2x on redundant text", comp, raw)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, strs := range [][]string{
		{"", "b", "c"},
		corpus(777, 5),
	} {
		sorted, _ := SortWithPermutation(strs)
		d := buildOrDie(t, sorted)
		blob := d.Marshal()
		d2, err := Unmarshal(blob)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, d2.Marshal()) {
			t.Fatal("marshal round trip is not byte-identical")
		}
		var buf []byte
		for i, want := range sorted {
			var got []byte
			got, _, buf = d2.StrAt(i, buf)
			if string(got) != want {
				t.Fatalf("after round trip StrAt(%d) = %q, want %q", i, got, want)
			}
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	sorted, _ := SortWithPermutation(corpus(300, 9))
	d := buildOrDie(t, sorted)
	good := d.Marshal()
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil blob accepted")
	}
	for n := 0; n < len(good); n += 13 {
		if _, err := Unmarshal(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Every byte, three mutations: must never panic, and whatever parses
	// must decode every entry without panicking.
	for at := 0; at < len(good); at++ {
		for _, mut := range []byte{good[at] ^ 0x01, good[at] ^ 0x80, 0xff} {
			bad := append([]byte(nil), good...)
			bad[at] = mut
			d2, err := Unmarshal(bad)
			if err != nil {
				continue
			}
			d2.ForEach(func(int, []byte) {})
			var buf []byte
			_, _, buf = d2.StrAt(d2.Len()-1, buf)
			_ = buf
		}
	}
}

func TestBudgetError(t *testing.T) {
	big := []string{strings.Repeat("x", 100), strings.Repeat("y", 100)}
	if _, err := Build(big, 150); err == nil {
		t.Fatal("over-budget dictionary accepted")
	} else if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := Build(nil, 0); err == nil {
		t.Fatal("empty dictionary accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	strs, _ := SortWithPermutation(corpus(2000, 13))
	a := buildOrDie(t, strs).Marshal()
	b := buildOrDie(t, strs).Marshal()
	if !bytes.Equal(a, b) {
		t.Fatal("Build is not deterministic")
	}
}

func TestSortWithPermutation(t *testing.T) {
	strs := []string{"pear", "apple", "fig", "apple2"}
	sorted, remap := SortWithPermutation(strs)
	for old, s := range strs {
		if sorted[remap[old]] != s {
			t.Fatalf("remap broken: strs[%d]=%q landed at %d=%q", old, s, remap[old], sorted[remap[old]])
		}
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatalf("not sorted: %q > %q", sorted[i-1], sorted[i])
		}
	}
}

func TestPackedU32(t *testing.T) {
	for _, max := range []uint32{0, 1, 2, 7, 255, 1 << 20} {
		vals := make([]uint32, 1000)
		rng := rand.New(rand.NewSource(int64(max) + 1))
		for i := range vals {
			vals[i] = rng.Uint32() % (max + 1)
		}
		p := PackU32(vals, max)
		if p.N != len(vals) || len(p.Words) != WordsFor(p.N, p.Bits) {
			t.Fatalf("max %d: sizing mismatch", max)
		}
		for i, v := range vals {
			if got := p.At(i); got != v {
				t.Fatalf("max %d: At(%d) = %d, want %d", max, i, got, v)
			}
		}
	}
}

func BenchmarkStrAt(b *testing.B) {
	sorted, _ := SortWithPermutation(corpus(65536/4, 21))
	d, err := Build(sorted, 0)
	if err != nil {
		b.Fatal(err)
	}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, buf = d.StrAt(i%d.Len(), buf)
	}
}

func ExampleDict_StrAt() {
	sorted, remap := SortWithPermutation([]string{"pending deposits", "pending requests", "bold accounts"})
	d, _ := Build(sorted, 0)
	s, _, _ := d.StrAt(int(remap[0]), nil)
	fmt.Println(string(s))
	// Output: pending deposits
}
