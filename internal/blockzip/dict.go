// Package blockzip implements the compressed sealed-block string codecs:
// an OnPair-style pair-table compressor for short strings (decode is pure
// table lookups, so individual strings decompress without touching their
// neighbours) layered under a front-coded bucketed dictionary with
// O(1)-ish random access, plus fixed-width bit-packed vectors for
// dictionary code columns and delta/FoR framing for the dictionary's
// entry offsets.
//
// The design follows the optimistic-compression thesis of the source
// paper one layer down the stack: sealed blocks stay compressed in RAM,
// and only the strings a query actually needs are ever decoded.
package blockzip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Tuning and safety limits.
const (
	// DefaultBucketShift gives 16-entry buckets: a point access decodes at
	// most 16 strings (its bucket chain), which keeps StrAt "O(1)-ish"
	// while front-coding still amortizes shared prefixes.
	DefaultBucketShift = 4

	// DefaultBudget caps the raw bytes of one block dictionary the codec
	// will accept; larger dictionaries must be declined explicitly (the
	// sealer falls back to plain encoding), never silently truncated.
	DefaultBudget = 64 << 20

	maxBucketShift = 8
	maxDictEntries = 1 << 24
	maxLcp         = 1<<16 - 1
)

// ErrBudget is returned by Build when the dictionary's raw bytes exceed
// the per-block budget. Callers must keep the plain encoding.
var ErrBudget = errors.New("blockzip: dictionary exceeds per-block budget")

// Dict is a compressed string dictionary over one sealed block: strings
// are grouped into 2^bucketShift-entry buckets, each entry is front-coded
// against its predecessor within the bucket (bucket heads are stored
// whole), and the resulting payloads are pair-table encoded. Entry
// offsets into the symbol stream are framed as per-bucket anchors plus
// bit-packed in-bucket deltas, so locating an entry is O(1).
//
// A Dict is immutable after Build/Unmarshal and safe for concurrent
// readers.
type Dict struct {
	n           int
	bucketShift uint

	table *pairTable

	syms    []uint16  // concatenated per-entry symbol streams
	lcps    []uint16  // per entry: shared prefix with the previous entry (0 at bucket heads)
	anchors []uint32  // per bucket: absolute start of the bucket head in syms
	rel     PackedU32 // per entry: start offset relative to its bucket anchor

	rawBytes int64 // total decoded bytes of all entries
	maxLen   int   // longest decoded entry
}

// Len returns the number of strings in the dictionary.
func (d *Dict) Len() int { return d.n }

// RawBytes returns the total decoded size of all entries — the bytes a
// plain []string dictionary would hold (excluding slice headers).
func (d *Dict) RawBytes() int64 { return d.rawBytes }

// MaxLen returns the length of the longest entry, for scratch sizing.
func (d *Dict) MaxLen() int { return d.maxLen }

// CompressedBytes returns the resident footprint of the dictionary: the
// pair table, symbol stream, front-coding metadata and offset framing.
func (d *Dict) CompressedBytes() int {
	return len(d.table.expBytes) + 4*len(d.table.expOff) +
		2*len(d.syms) + 2*len(d.lcps) + 4*len(d.anchors) + d.rel.Bytes()
}

// span returns the symbol range of entry i.
func (d *Dict) span(i int) (start, end int) {
	b := i >> d.bucketShift
	start = int(d.anchors[b]) + int(d.rel.At(i))
	last := (b+1)<<d.bucketShift - 1
	if i < last && i+1 < d.n {
		end = int(d.anchors[b]) + int(d.rel.At(i+1))
	} else if b+1 < len(d.anchors) {
		end = int(d.anchors[b+1])
	} else {
		end = len(d.syms)
	}
	return start, end
}

// appendEntry decodes entry i's payload onto buf (whose leading bytes must
// already hold the shared prefix) and returns the extended buffer plus the
// payload bytes produced.
//
//ocht:hot
func (d *Dict) appendEntry(i int, buf []byte) ([]byte, int) {
	start, end := d.span(i)
	n0 := len(buf)
	for _, sym := range d.syms[start:end] {
		buf = append(buf, d.table.expansion(sym)...)
	}
	return buf, len(buf) - n0
}

// StrAt decodes entry i into buf (reused across calls; pass nil on the
// first call) and returns the decoded string plus the number of bytes the
// access actually decompressed. Only the entry's bucket chain is decoded —
// at most 2^bucketShift strings — never the whole dictionary, never the
// whole block: this is the random-access contract the point-gather paths
// rely on.
func (d *Dict) StrAt(i int, buf []byte) (s []byte, decoded int, scratch []byte) {
	head := i &^ (1<<d.bucketShift - 1)
	buf = buf[:0]
	dec := 0
	for j := head; j <= i; j++ {
		lcp := int(d.lcps[j])
		if lcp > len(buf) {
			lcp = len(buf)
		}
		buf = buf[:lcp]
		var n int
		buf, n = d.appendEntry(j, buf)
		dec += n
	}
	return buf, dec, buf
}

// ForEach decodes every entry in order, calling fn with the entry index
// and its bytes. The byte slice is reused between calls; fn must copy if
// it retains. This is the bulk path block-view setup uses to intern each
// distinct dictionary string exactly once per block.
func (d *Dict) ForEach(fn func(i int, s []byte)) {
	var buf []byte
	for i := 0; i < d.n; i++ {
		if i&(1<<d.bucketShift-1) == 0 {
			buf = buf[:0]
		} else {
			lcp := int(d.lcps[i])
			if lcp > len(buf) {
				lcp = len(buf)
			}
			buf = buf[:lcp]
		}
		buf, _ = d.appendEntry(i, buf)
		fn(i, buf)
	}
}

// Build compresses strs (order-preserving: entry i of the result is
// strs[i]) with the given raw-byte budget; 0 means DefaultBudget. It
// returns ErrBudget when the dictionary is too large to compress within
// budget — the caller must then keep its plain encoding — and never
// silently drops or truncates entries.
func Build(strs []string, budget int) (*Dict, error) {
	if len(strs) == 0 {
		return nil, errors.New("blockzip: empty dictionary")
	}
	if len(strs) > maxDictEntries {
		return nil, fmt.Errorf("blockzip: %d entries exceed limit", len(strs))
	}
	if budget <= 0 {
		budget = DefaultBudget
	}
	var raw int64
	maxLen := 0
	for _, s := range strs {
		raw += int64(len(s))
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	if raw > int64(budget) {
		return nil, fmt.Errorf("%w: %d bytes > %d", ErrBudget, raw, budget)
	}
	d := &Dict{n: len(strs), bucketShift: DefaultBucketShift, rawBytes: raw, maxLen: maxLen}
	bucket := 1 << d.bucketShift

	// Front-code: bucket heads whole, later entries as (lcp, suffix).
	lcps := make([]uint16, len(strs))
	payloads := make([][]byte, len(strs))
	for i, s := range strs {
		lcp := 0
		if i%bucket != 0 {
			prev := strs[i-1]
			max := len(prev)
			if len(s) < max {
				max = len(s)
			}
			if max > maxLcp {
				max = maxLcp
			}
			for lcp < max && s[lcp] == prev[lcp] {
				lcp++
			}
		}
		lcps[i] = uint16(lcp)
		payloads[i] = []byte(s[lcp:])
	}
	d.lcps = lcps

	table, seqs := learnPairs(payloads)
	d.table = table

	// Concatenate the symbol streams and frame the offsets: one absolute
	// anchor per bucket, bit-packed deltas within.
	nBuckets := (len(strs) + bucket - 1) / bucket
	d.anchors = make([]uint32, nBuckets)
	relOffs := make([]uint32, len(strs))
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	d.syms = make([]uint16, 0, total)
	maxRel := uint32(0)
	for i, s := range seqs {
		if i%bucket == 0 {
			d.anchors[i/bucket] = uint32(len(d.syms))
		}
		relOffs[i] = uint32(len(d.syms)) - d.anchors[i/bucket]
		if relOffs[i] > maxRel {
			maxRel = relOffs[i]
		}
		d.syms = append(d.syms, s...)
	}
	d.rel = PackU32(relOffs, maxRel)
	return d, nil
}

// SortWithPermutation sorts strs and returns remap, where remap[oldIndex]
// is the entry's new index — the helper seal-time compression uses to
// reorder a block dictionary (front-coding wants sorted neighbours) while
// rewriting the block's codes.
func SortWithPermutation(strs []string) (sorted []string, remap []int32) {
	idx := make([]int, len(strs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return strs[idx[a]] < strs[idx[b]] })
	sorted = make([]string, len(strs))
	remap = make([]int32, len(strs))
	for newI, oldI := range idx {
		sorted[newI] = strs[oldI]
		remap[oldI] = int32(newI)
	}
	return sorted, remap
}

// Marshal serializes the dictionary deterministically (little-endian).
// The pair table travels as the literal-prefixed expansion byte stream
// plus one length byte per learned symbol (expansions are capped at
// maxExpansion, so a byte suffices); offsets are rebuilt on load.
func (d *Dict) Marshal() []byte {
	nsym := d.table.nsym()
	size := 4 + 1 + 4 + (nsym - baseSyms) + 4 + len(d.table.expBytes) + 4 + 2*len(d.syms) +
		2*len(d.lcps) + 4 + 4*len(d.anchors) + 1 + 4 + 8*len(d.rel.Words) + 8 + 4
	out := make([]byte, 0, size)
	p32 := func(v uint32) { out = binary.LittleEndian.AppendUint32(out, v) }
	p32(uint32(d.n))
	out = append(out, byte(d.bucketShift))
	p32(uint32(nsym))
	for s := baseSyms; s < nsym; s++ {
		out = append(out, byte(d.table.expOff[s+1]-d.table.expOff[s]))
	}
	p32(uint32(len(d.table.expBytes)))
	out = append(out, d.table.expBytes...)
	p32(uint32(len(d.syms)))
	for _, s := range d.syms {
		out = binary.LittleEndian.AppendUint16(out, s)
	}
	for _, l := range d.lcps {
		out = binary.LittleEndian.AppendUint16(out, l)
	}
	p32(uint32(len(d.anchors)))
	for _, a := range d.anchors {
		p32(a)
	}
	out = append(out, byte(d.rel.Bits))
	p32(uint32(len(d.rel.Words)))
	for _, w := range d.rel.Words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	out = binary.LittleEndian.AppendUint64(out, uint64(d.rawBytes))
	p32(uint32(d.maxLen))
	return out
}

// reader is a bounds-checked little-endian cursor over a marshal blob.
type reader struct {
	b   []byte
	pos int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.pos+n > len(r.b) {
		r.err = errors.New("blockzip: truncated dictionary")
		return false
	}
	return true
}

func (r *reader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.pos:])
	r.pos += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v
}

// Unmarshal deserializes and fully validates a dictionary. Damaged input
// returns an error — never a panic and never an unvalidated structure: a
// Dict that Unmarshal accepts is safe for unchecked StrAt/ForEach decoding
// (the WAL-recovery and fuzz paths rely on this).
func Unmarshal(data []byte) (*Dict, error) {
	r := &reader{b: data}
	d := &Dict{}
	d.n = int(r.u32())
	d.bucketShift = uint(r.u8())
	nsym := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if d.n <= 0 || d.n > maxDictEntries {
		return nil, fmt.Errorf("blockzip: entry count %d out of range", d.n)
	}
	if d.bucketShift > maxBucketShift {
		return nil, fmt.Errorf("blockzip: bucket shift %d out of range", d.bucketShift)
	}
	if nsym < baseSyms || nsym > maxSyms {
		return nil, fmt.Errorf("blockzip: symbol count %d out of range", nsym)
	}
	// Per-symbol expansion lengths rebuild the offset table: the first 256
	// symbols are the literal bytes, every learned symbol records its
	// expansion length explicitly.
	expOff := make([]uint32, nsym+1)
	for i := 0; i <= baseSyms; i++ {
		expOff[i] = uint32(i)
	}
	for s := baseSyms; s < nsym; s++ {
		l := int(r.u8())
		if l < 2 || l > maxExpansion {
			if r.err != nil {
				return nil, r.err
			}
			return nil, fmt.Errorf("blockzip: symbol %d expansion length %d out of range", s, l)
		}
		expOff[s+1] = expOff[s] + uint32(l)
	}
	expLen := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if expLen != int(expOff[nsym]) {
		return nil, fmt.Errorf("blockzip: expansion bytes %d, offsets say %d", expLen, expOff[nsym])
	}
	if !r.need(expLen) {
		return nil, r.err
	}
	expBytes := append([]byte(nil), r.b[r.pos:r.pos+expLen]...)
	r.pos += expLen
	nSyms := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if nSyms < 0 || nSyms > len(data)/2 {
		return nil, fmt.Errorf("blockzip: symbol stream length %d out of range", nSyms)
	}
	syms := make([]uint16, nSyms)
	for i := range syms {
		syms[i] = r.u16()
	}
	lcps := make([]uint16, d.n)
	for i := range lcps {
		lcps[i] = r.u16()
	}
	nAnchors := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	bucket := 1 << d.bucketShift
	if want := (d.n + bucket - 1) / bucket; nAnchors != want {
		return nil, fmt.Errorf("blockzip: %d anchors for %d entries", nAnchors, d.n)
	}
	anchors := make([]uint32, nAnchors)
	for i := range anchors {
		anchors[i] = r.u32()
	}
	relBits := int(r.u8())
	relWords := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if relBits < 1 || relBits > 32 {
		return nil, fmt.Errorf("blockzip: offset width %d out of range", relBits)
	}
	if relWords != WordsFor(d.n, relBits) {
		return nil, fmt.Errorf("blockzip: %d offset words, want %d", relWords, WordsFor(d.n, relBits))
	}
	words := make([]uint64, relWords)
	for i := range words {
		words[i] = r.u64()
	}
	d.rawBytes = int64(r.u64())
	d.maxLen = int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("blockzip: %d trailing bytes", len(data)-r.pos)
	}

	d.table = &pairTable{expOff: expOff, expBytes: expBytes}
	d.syms = syms
	d.lcps = lcps
	d.anchors = anchors
	d.rel = PackedU32{Bits: relBits, N: d.n, Words: words}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// validate re-decodes the whole dictionary with bounds checks, verifying
// every structural invariant unchecked decoding later relies on.
func (d *Dict) validate() error {
	if len(d.lcps) != d.n {
		return errors.New("blockzip: lcp table size mismatch")
	}
	nsym := d.table.nsym()
	for _, s := range d.syms {
		if int(s) >= nsym {
			return fmt.Errorf("blockzip: symbol %d out of range [0,%d)", s, nsym)
		}
	}
	for i := 1; i < len(d.table.expOff); i++ {
		if d.table.expOff[i] < d.table.expOff[i-1] {
			return errors.New("blockzip: expansion offsets not monotonic")
		}
	}
	if int(d.table.expOff[nsym]) != len(d.table.expBytes) {
		return errors.New("blockzip: expansion offsets do not cover the byte stream")
	}
	// Entry spans must tile [0, len(syms)) in order.
	prevEnd := 0
	for i := 0; i < d.n; i++ {
		b := i >> d.bucketShift
		if int(d.anchors[b]) > len(d.syms) {
			return errors.New("blockzip: anchor past symbol stream")
		}
		start, end := d.span(i)
		if start != prevEnd || end < start || end > len(d.syms) {
			return fmt.Errorf("blockzip: entry %d span [%d,%d) breaks tiling at %d", i, start, end, prevEnd)
		}
		prevEnd = end
	}
	if prevEnd != len(d.syms) {
		return errors.New("blockzip: entries do not cover the symbol stream")
	}
	// Full decode: lcp chains must be in range and the totals must match.
	var total int64
	maxLen := 0
	var buf []byte
	for i := 0; i < d.n; i++ {
		if i&(1<<d.bucketShift-1) == 0 {
			buf = buf[:0]
		} else {
			if int(d.lcps[i]) > len(buf) {
				return fmt.Errorf("blockzip: entry %d lcp %d exceeds previous length %d", i, d.lcps[i], len(buf))
			}
			buf = buf[:d.lcps[i]]
		}
		buf, _ = d.appendEntry(i, buf)
		if len(buf) > d.maxLen {
			return fmt.Errorf("blockzip: entry %d longer than recorded max %d", i, d.maxLen)
		}
		if len(buf) > maxLen {
			maxLen = len(buf)
		}
		total += int64(len(buf))
	}
	if total != d.rawBytes {
		return fmt.Errorf("blockzip: decoded %d bytes, recorded %d", total, d.rawBytes)
	}
	if maxLen != d.maxLen {
		return fmt.Errorf("blockzip: decoded max length %d, recorded %d", maxLen, d.maxLen)
	}
	return nil
}
