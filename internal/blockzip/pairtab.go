package blockzip

import "sort"

// Pair-table codec (OnPair-style): a per-block symbol table where symbols
// 0..255 are the literal bytes and every further symbol is the
// concatenation of two existing symbols. Learning greedily admits the most
// frequent adjacent symbol pairs round by round, so after a few rounds
// frequent substrings (whole words of a comment vocabulary, shared date or
// key prefixes) collapse into single 16-bit symbols. Decoding one string is
// a sequence of table lookups — no shared state with its neighbours — which
// is what gives the dictionary O(1)-ish random access.
const (
	baseSyms     = 256
	maxSyms      = 1 << 16
	maxExpansion = 32 // longest byte expansion a symbol may carry

	learnRounds   = 12
	pairsPerRound = 256
	minPairCount  = 4
)

// pairTable maps each symbol to its byte expansion: symbol s expands to
// ExpBytes[ExpOff[s]:ExpOff[s+1]]. Literals expand to themselves.
type pairTable struct {
	expOff   []uint32
	expBytes []byte
}

func (t *pairTable) nsym() int { return len(t.expOff) - 1 }

// expansion returns the bytes symbol s decodes to.
//
//ocht:hot
func (t *pairTable) expansion(s uint16) []byte {
	return t.expBytes[t.expOff[s]:t.expOff[s+1]]
}

func newLiteralTable() *pairTable {
	t := &pairTable{
		expOff:   make([]uint32, baseSyms+1),
		expBytes: make([]byte, baseSyms),
	}
	for i := 0; i < baseSyms; i++ {
		t.expOff[i] = uint32(i)
		t.expBytes[i] = byte(i)
	}
	t.expOff[baseSyms] = baseSyms
	return t
}

// learnPairs trains a pair table on the given payloads and returns the
// table together with each payload encoded as a symbol sequence. The
// procedure is deterministic: pair candidates are ranked by (count desc,
// pair value asc) and replacement is leftmost-first, so the same input
// always produces the same table and encoding — the file format's
// byte-identical round trips rely on this.
func learnPairs(payloads [][]byte) (*pairTable, [][]uint16) {
	table := newLiteralTable()
	seqs := make([][]uint16, len(payloads))
	for i, p := range payloads {
		s := make([]uint16, len(p))
		for j, b := range p {
			s[j] = uint16(b)
		}
		seqs[i] = s
	}
	expLen := make([]int, baseSyms, maxSyms)
	for i := range expLen {
		expLen[i] = 1
	}
	counts := make(map[uint32]int32)
	for round := 0; round < learnRounds && table.nsym() < maxSyms; round++ {
		for k := range counts {
			delete(counts, k)
		}
		for _, s := range seqs {
			for k := 0; k+1 < len(s); k++ {
				a, b := s[k], s[k+1]
				if expLen[a]+expLen[b] > maxExpansion {
					continue
				}
				counts[uint32(a)<<16|uint32(b)]++
			}
		}
		type cand struct {
			key uint32
			cnt int32
		}
		cands := make([]cand, 0, len(counts))
		for key, cnt := range counts {
			a, b := uint16(key>>16), uint16(key)
			// Admitting a pair saves 2 bytes per occurrence in the symbol
			// stream but costs its expansion plus an offset entry in the
			// table; require the trade to pay off.
			if cnt >= minPairCount && 2*int(cnt) > expLen[a]+expLen[b]+4 {
				cands = append(cands, cand{key, cnt})
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].cnt != cands[j].cnt {
				return cands[i].cnt > cands[j].cnt
			}
			return cands[i].key < cands[j].key
		})
		admit := pairsPerRound
		if room := maxSyms - table.nsym(); admit > room {
			admit = room
		}
		if admit > len(cands) {
			admit = len(cands)
		}
		newPairs := make(map[uint32]uint16, admit)
		for _, c := range cands[:admit] {
			a, b := uint16(c.key>>16), uint16(c.key)
			sym := uint16(table.nsym())
			table.expBytes = append(table.expBytes, table.expansion(a)...)
			table.expBytes = append(table.expBytes, table.expansion(b)...)
			table.expOff = append(table.expOff, uint32(len(table.expBytes)))
			expLen = append(expLen, expLen[a]+expLen[b])
			newPairs[c.key] = sym
		}
		// Rewrite every sequence, replacing admitted pairs leftmost-first.
		for si, s := range seqs {
			out := s[:0]
			k := 0
			for k < len(s) {
				if k+1 < len(s) {
					if sym, ok := newPairs[uint32(s[k])<<16|uint32(s[k+1])]; ok {
						out = append(out, sym)
						k += 2
						continue
					}
				}
				out = append(out, s[k])
				k++
			}
			seqs[si] = out
		}
	}
	return table, seqs
}
