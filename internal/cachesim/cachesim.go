// Package cachesim models a set-associative LRU cache. The paper explains
// the Figure 8 probe speedups through hardware LLC-miss counters; pure Go
// cannot read those, so the benchmark harness replays the hash-table
// access pattern of each probe against this model, sized like the paper's
// Xeon Gold 6126 L3 (19.25 MB), to regenerate the miss curves.
package cachesim

// Cache is a set-associative cache with LRU replacement and a
// write-allocate policy (reads and writes are both plain accesses).
type Cache struct {
	sets     [][]uint64 // per set: line tags in LRU order (front = MRU)
	ways     int
	lineBits uint
	setMask  uint64

	Accesses uint64
	Misses   uint64
}

// New creates a cache of the given total size, associativity and line
// size. Sizes are rounded down to powers of two of sets.
func New(sizeBytes, ways, lineBytes int) *Cache {
	if ways <= 0 {
		ways = 8
	}
	if lineBytes <= 0 {
		lineBytes = 64
	}
	lineBits := uint(0)
	for 1<<(lineBits+1) <= lineBytes {
		lineBits++
	}
	nSets := sizeBytes / (ways * (1 << lineBits))
	// Round down to a power of two.
	p := 1
	for p*2 <= nSets {
		p *= 2
	}
	if p < 1 {
		p = 1
	}
	c := &Cache{
		sets:     make([][]uint64, p),
		ways:     ways,
		lineBits: lineBits,
		setMask:  uint64(p - 1),
	}
	return c
}

// Access touches one byte address.
func (c *Cache) Access(addr uint64) {
	c.Accesses++
	line := addr >> c.lineBits
	set := line & c.setMask
	s := c.sets[set]
	for i, tag := range s {
		if tag == line {
			// Hit: move to MRU.
			copy(s[1:i+1], s[:i])
			s[0] = line
			return
		}
	}
	c.Misses++
	if len(s) < c.ways {
		s = append(s, 0)
	}
	copy(s[1:], s)
	s[0] = line
	c.sets[set] = s
}

// AccessRange touches n consecutive bytes starting at addr.
func (c *Cache) AccessRange(addr uint64, n int) {
	first := addr >> c.lineBits
	last := (addr + uint64(n) - 1) >> c.lineBits
	for line := first; line <= last; line++ {
		c.Access(line << c.lineBits)
	}
}

// MissRatio returns Misses/Accesses.
func (c *Cache) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.Accesses, c.Misses = 0, 0
}

// ResetCounters clears the counters but keeps cache contents (to measure
// a hot phase after warmup).
func (c *Cache) ResetCounters() { c.Accesses, c.Misses = 0, 0 }
