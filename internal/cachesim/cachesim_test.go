package cachesim

import "testing"

func TestHitAfterMiss(t *testing.T) {
	c := New(1<<20, 8, 64)
	c.Access(0x1000)
	if c.Misses != 1 {
		t.Fatal("first access must miss")
	}
	c.Access(0x1000)
	c.Access(0x1010) // same line
	if c.Misses != 1 {
		t.Fatalf("same-line accesses must hit, misses=%d", c.Misses)
	}
	if c.Accesses != 3 {
		t.Fatalf("accesses=%d", c.Accesses)
	}
}

func TestWorkingSetFitsNoSteadyMisses(t *testing.T) {
	// A working set half the cache size must converge to zero misses.
	c := New(1<<20, 8, 64)
	const ws = 1 << 19
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			c.ResetCounters()
		}
		for a := uint64(0); a < ws; a += 64 {
			c.Access(a)
		}
	}
	if c.Misses != 0 {
		t.Errorf("steady-state misses on a fitting working set: %d", c.Misses)
	}
}

func TestWorkingSetExceedsThrashes(t *testing.T) {
	// A sequential sweep over 4x the cache size must miss every line.
	c := New(1<<16, 8, 64)
	const ws = 1 << 18
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			c.ResetCounters()
		}
		for a := uint64(0); a < ws; a += 64 {
			c.Access(a)
		}
	}
	if c.MissRatio() < 0.99 {
		t.Errorf("sequential over-capacity sweep should thrash, ratio=%f", c.MissRatio())
	}
}

func TestAssociativityConflicts(t *testing.T) {
	// More distinct lines mapping to one set than ways must evict.
	c := New(1<<12, 2, 64) // 32 sets, 2 ways
	stride := uint64(32 * 64)
	for i := uint64(0); i < 3; i++ {
		c.Access(i * stride) // all map to set 0
	}
	c.ResetCounters()
	c.Access(0) // evicted by the third line
	if c.Misses != 1 {
		t.Error("LRU eviction expected in a 2-way set")
	}
}

func TestAccessRangeSpansLines(t *testing.T) {
	c := New(1<<20, 8, 64)
	c.AccessRange(60, 8) // crosses a line boundary
	if c.Accesses != 2 {
		t.Errorf("expected 2 line touches, got %d", c.Accesses)
	}
}

func TestReset(t *testing.T) {
	c := New(1<<16, 4, 64)
	c.Access(0)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("counters after reset")
	}
	c.Access(0)
	if c.Misses != 1 {
		t.Error("contents must be dropped by Reset")
	}
}
