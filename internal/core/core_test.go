package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ocht/internal/domain"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

var allFlagCombos = []Flags{
	{},
	{Compress: true},
	{UseUSSR: true},
	{Split: true},
	{Compress: true, Split: true},
	{Compress: true, UseUSSR: true},
	{UseUSSR: true, Split: true},
	{Compress: true, Split: true, UseUSSR: true},
}

func flagName(f Flags) string {
	return fmt.Sprintf("compress=%v,split=%v,ussr=%v", f.Compress, f.Split, f.UseUSSR)
}

// buildIntBatch builds two int key columns with values in small domains.
func buildIntBatch(n int, rng *rand.Rand) (cols []*vec.Vector, rows []int32) {
	a := vec.New(vec.I64, n)
	b := vec.New(vec.I32, n)
	for i := 0; i < n; i++ {
		a.I64[i] = int64(rng.Intn(47)) - 4
		b.I32[i] = int32(rng.Intn(998)) + 3
	}
	rows = make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	return []*vec.Vector{a, b}, rows
}

func intKeyCols() []KeyCol {
	return []KeyCol{
		{Name: "a", Type: vec.I64, Dom: domain.New(-4, 42)},
		{Name: "b", Type: vec.I32, Dom: domain.New(3, 1000)},
	}
}

func TestGroupByAllFlagCombos(t *testing.T) {
	for _, flags := range allFlagCombos {
		t.Run(flagName(flags), func(t *testing.T) {
			store := strs.NewStore(flags.UseUSSR)
			schema, err := NewKeySchema(flags, intKeyCols(), store)
			if err != nil {
				t.Fatal(err)
			}
			tab := NewTable(schema, 8, 0, 16)
			rng := rand.New(rand.NewSource(3))
			oracle := map[[2]int64]int32{}
			for batch := 0; batch < 8; batch++ {
				cols, rows := buildIntBatch(512, rng)
				p := schema.Prepare(cols, rows)
				hashes := make([]uint64, 512)
				schema.Hash(p, rows, hashes)
				recOut := make([]int32, 512)
				tab.FindOrInsert(p, hashes, rows, recOut)
				for _, r := range rows {
					key := [2]int64{cols[0].I64[r], int64(cols[1].I32[r])}
					if prev, ok := oracle[key]; ok {
						if prev != recOut[r] {
							t.Fatalf("key %v mapped to records %d and %d", key, prev, recOut[r])
						}
					} else {
						oracle[key] = recOut[r]
					}
				}
			}
			if tab.Len() != len(oracle) {
				t.Fatalf("table has %d groups, oracle %d", tab.Len(), len(oracle))
			}
			// Reconstruct keys and compare against the oracle inverse.
			recIdx := make([]int32, tab.Len())
			rows := make([]int32, tab.Len())
			for i := range recIdx {
				recIdx[i] = int32(i)
				rows[i] = int32(i)
			}
			outA := vec.New(vec.I64, tab.Len())
			outB := vec.New(vec.I32, tab.Len())
			tab.LoadKey(0, recIdx, outA, rows)
			tab.LoadKey(1, recIdx, outB, rows)
			for i := 0; i < tab.Len(); i++ {
				key := [2]int64{outA.I64[i], int64(outB.I32[i])}
				rec, ok := oracle[key]
				if !ok || rec != int32(i) {
					t.Fatalf("record %d reconstructs to unknown key %v", i, key)
				}
			}
		})
	}
}

func TestCompressedFootprintSmaller(t *testing.T) {
	mk := func(flags Flags) *Table {
		store := strs.NewStore(flags.UseUSSR)
		schema, err := NewKeySchema(flags, intKeyCols(), store)
		if err != nil {
			t.Fatal(err)
		}
		tab := NewTable(schema, 0, 0, 16)
		rng := rand.New(rand.NewSource(5))
		for batch := 0; batch < 16; batch++ {
			cols, rows := buildIntBatch(1024, rng)
			p := schema.Prepare(cols, rows)
			hashes := make([]uint64, 1024)
			schema.Hash(p, rows, hashes)
			recOut := make([]int32, 1024)
			tab.FindOrInsert(p, hashes, rows, recOut)
		}
		return tab
	}
	vanilla := mk(Vanilla())
	comp := mk(Flags{Compress: true})
	if vanilla.Len() != comp.Len() {
		t.Fatalf("group counts differ: %d vs %d", vanilla.Len(), comp.Len())
	}
	// Keys: i64+i32 = 12 bytes vanilla vs 16 bits packed = 4 bytes (32-bit word).
	if comp.HotWidth() >= vanilla.HotWidth() {
		t.Errorf("compressed record %dB should be below vanilla %dB",
			comp.HotWidth(), vanilla.HotWidth())
	}
	if comp.MemoryBytes() >= vanilla.MemoryBytes() {
		t.Errorf("compressed table %dB should undercut vanilla %dB",
			comp.MemoryBytes(), vanilla.MemoryBytes())
	}
}

func TestStringKeysAllFlagCombos(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for _, flags := range allFlagCombos {
		t.Run(flagName(flags), func(t *testing.T) {
			store := strs.NewStore(flags.UseUSSR)
			cols := []KeyCol{{Name: "s", Type: vec.Str}}
			schema, err := NewKeySchema(flags, cols, store)
			if err != nil {
				t.Fatal(err)
			}
			tab := NewTable(schema, 0, 0, 16)
			rng := rand.New(rand.NewSource(9))
			const n = 1024
			for batch := 0; batch < 4; batch++ {
				v := vec.New(vec.Str, n)
				// Intern per occurrence: without the USSR this makes
				// non-canonical heap refs, the tricky case.
				for i := 0; i < n; i++ {
					v.Str[i] = store.Intern(words[rng.Intn(len(words))])
				}
				rows := make([]int32, n)
				for i := range rows {
					rows[i] = int32(i)
				}
				p := schema.Prepare([]*vec.Vector{v}, rows)
				hashes := make([]uint64, n)
				schema.Hash(p, rows, hashes)
				recOut := make([]int32, n)
				tab.FindOrInsert(p, hashes, rows, recOut)
			}
			if tab.Len() != len(words) {
				t.Fatalf("expected %d groups, got %d", len(words), tab.Len())
			}
			// Reconstruct and verify the strings.
			recIdx := make([]int32, tab.Len())
			rows := make([]int32, tab.Len())
			for i := range recIdx {
				recIdx[i], rows[i] = int32(i), int32(i)
			}
			out := vec.New(vec.Str, tab.Len())
			tab.LoadKey(0, recIdx, out, rows)
			got := map[string]bool{}
			for i := 0; i < tab.Len(); i++ {
				got[store.Get(out.Str[i])] = true
			}
			for _, w := range words {
				if !got[w] {
					t.Errorf("group %q lost", w)
				}
			}
		})
	}
}

func TestStringExceptionPath(t *testing.T) {
	// Fill the USSR so some strings become exceptions (slot code 0),
	// then group over a mix of resident and exception strings.
	flags := All()
	store := strs.NewStore(true)
	for i := 0; i < 40_000; i++ {
		store.Intern(fmt.Sprintf("fill-%06d-abcdefghijklmnop", i))
	}
	schema, err := NewKeySchema(flags, []KeyCol{{Name: "s", Type: vec.Str}}, store)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(schema, 0, 0, 16)
	const n = 600
	v := vec.New(vec.Str, n)
	distinct := map[string]bool{}
	exceptions := 0
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("key-%d", i%200) // 200 distinct, 3 occurrences each
		v.Str[i] = store.Intern(s)
		if !v.Str[i].InUSSR() {
			exceptions++
		}
		distinct[s] = true
	}
	if exceptions == 0 {
		t.Fatal("test setup: expected some exception strings")
	}
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	p := schema.Prepare([]*vec.Vector{v}, rows)
	hashes := make([]uint64, n)
	schema.Hash(p, rows, hashes)
	recOut := make([]int32, n)
	tab.FindOrInsert(p, hashes, rows, recOut)
	if tab.Len() != len(distinct) {
		t.Fatalf("expected %d groups, got %d (exception grouping broken)", len(distinct), tab.Len())
	}
	// Reconstruct all keys, including cold exception refs.
	recIdx := make([]int32, tab.Len())
	outRows := make([]int32, tab.Len())
	for i := range recIdx {
		recIdx[i], outRows[i] = int32(i), int32(i)
	}
	out := vec.New(vec.Str, tab.Len())
	tab.LoadKey(0, recIdx, out, outRows)
	for i := 0; i < tab.Len(); i++ {
		s := store.Get(out.Str[i])
		if !distinct[s] {
			t.Errorf("reconstructed unknown key %q", s)
		}
	}
}

func TestJoinBuildProbe(t *testing.T) {
	for _, flags := range []Flags{Vanilla(), {Compress: true}, All()} {
		t.Run(flagName(flags), func(t *testing.T) {
			store := strs.NewStore(flags.UseUSSR)
			schema, err := NewKeySchema(flags, intKeyCols(), store)
			if err != nil {
				t.Fatal(err)
			}
			tab := NewTable(schema, 0, 0, 16)
			// Build side: keys (i, i%37+3), one duplicate pair per i%3==0.
			const nb = 500
			a := vec.New(vec.I64, nb)
			b := vec.New(vec.I32, nb)
			for i := 0; i < nb; i++ {
				a.I64[i] = int64(i%47) - 4
				b.I32[i] = int32(i%37) + 3
			}
			rows := make([]int32, nb)
			for i := range rows {
				rows[i] = int32(i)
			}
			p := schema.Prepare([]*vec.Vector{a, b}, rows)
			hashes := make([]uint64, nb)
			schema.Hash(p, rows, hashes)
			recOut := make([]int32, nb)
			tab.InsertBatch(p, hashes, rows, recOut)
			if tab.Len() != nb {
				t.Fatalf("build inserted %d", tab.Len())
			}

			// Probe with a known key and count matches against a scan.
			pa := vec.New(vec.I64, 1)
			pb := vec.New(vec.I32, 1)
			pa.I64[0] = 10
			pb.I32[0] = 20
			prows := []int32{0}
			pp := schema.Prepare([]*vec.Vector{pa, pb}, prows)
			ph := make([]uint64, 1)
			schema.Hash(pp, prows, ph)
			mrows, mrecs := tab.ProbeChains(pp, ph, prows, nil, nil)
			want := 0
			for i := 0; i < nb; i++ {
				if int64(i%47)-4 == 10 && i%37+3 == 20 {
					want++
				}
			}
			if len(mrows) != want || len(mrecs) != want {
				t.Errorf("probe found %d matches, want %d", len(mrows), want)
			}

			// A key outside the build domain must not match (and must not
			// crash the compressed comparison).
			pa.I64[0] = 1 << 40
			pp = schema.Prepare([]*vec.Vector{pa, pb}, prows)
			schema.Hash(pp, prows, ph)
			mrows, _ = tab.ProbeChains(pp, ph, prows, nil, nil)
			if len(mrows) != 0 {
				t.Error("out-of-domain probe matched")
			}
		})
	}
}

func TestHotColdSeparation(t *testing.T) {
	flags := All()
	store := strs.NewStore(true)
	schema, err := NewKeySchema(flags, []KeyCol{{Name: "s", Type: vec.Str}}, store)
	if err != nil {
		t.Fatal(err)
	}
	// Hot record: one 32- or 64-bit word holding the 16-bit slot code.
	if schema.KeyBytes() > 8 {
		t.Errorf("slot-coded string key area is %dB; expected at most one word", schema.KeyBytes())
	}
	if schema.ColdBytes() != 8 {
		t.Errorf("cold exception ref must be 8B, got %d", schema.ColdBytes())
	}
	tab := NewTable(schema, 4, 2, 16)
	if tab.HotWidth() != schema.KeyBytes()+4 {
		t.Error("hot extra accounting")
	}
	if tab.ColdWidth() != 10 {
		t.Error("cold extra accounting")
	}
}

func TestHotColdRowAccess(t *testing.T) {
	store := strs.NewStore(false)
	schema, _ := NewKeySchema(Vanilla(), intKeyCols(), store)
	tab := NewTable(schema, 8, 16, 4)
	cols, rows := buildIntBatch(4, rand.New(rand.NewSource(1)))
	p := schema.Prepare(cols, rows)
	hashes := make([]uint64, 4)
	schema.Hash(p, rows, hashes)
	recOut := make([]int32, 4)
	tab.InsertBatch(p, hashes, rows, recOut)
	hr := tab.HotRow(recOut[0])
	if len(hr) != 8 {
		t.Fatalf("hot row len %d", len(hr))
	}
	hr[0] = 0xAB
	if tab.HotRow(recOut[0])[0] != 0xAB {
		t.Error("hot row writes must persist")
	}
	cr := tab.ColdRow(recOut[0])
	if len(cr) != 16 {
		t.Fatalf("cold row len %d", len(cr))
	}
	cr[15] = 0xCD
	if tab.ColdRow(recOut[0])[15] != 0xCD {
		t.Error("cold row writes must persist")
	}
}

func TestDirectoryGrowth(t *testing.T) {
	store := strs.NewStore(false)
	schema, _ := NewKeySchema(Flags{Compress: true}, []KeyCol{
		{Name: "k", Type: vec.I64, Dom: domain.New(0, 1<<20)},
	}, store)
	tab := NewTable(schema, 0, 0, 4)
	const n = 20_000
	for start := 0; start < n; start += 1000 {
		v := vec.New(vec.I64, 1000)
		for i := range v.I64 {
			v.I64[i] = int64(start + i)
		}
		rows := make([]int32, 1000)
		for i := range rows {
			rows[i] = int32(i)
		}
		p := schema.Prepare([]*vec.Vector{v}, rows)
		hashes := make([]uint64, 1000)
		schema.Hash(p, rows, hashes)
		recOut := make([]int32, 1000)
		tab.FindOrInsert(p, hashes, rows, recOut)
	}
	if tab.Len() != n {
		t.Fatalf("lost groups across growth: %d", tab.Len())
	}
	// Everything must still be findable after rehashes.
	v := vec.New(vec.I64, 1)
	v.I64[0] = 12345
	rows := []int32{0}
	p := schema.Prepare([]*vec.Vector{v}, rows)
	hashes := make([]uint64, 1)
	schema.Hash(p, rows, hashes)
	recOut := make([]int32, 1)
	newRows, _ := tab.FindOrInsert(p, hashes, rows, recOut)
	if len(newRows) != 0 {
		t.Error("existing key re-inserted after growth")
	}
}

func TestGlobalAggregateNoKeys(t *testing.T) {
	store := strs.NewStore(false)
	schema, err := NewKeySchema(All(), nil, store)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(schema, 8, 0, 4)
	rows := []int32{0, 1, 2}
	p := schema.Prepare(nil, rows)
	hashes := make([]uint64, 3)
	schema.Hash(p, rows, hashes)
	recOut := make([]int32, 3)
	tab.FindOrInsert(p, hashes, rows, recOut)
	if tab.Len() != 1 {
		t.Fatalf("global aggregate must have exactly one group, got %d", tab.Len())
	}
	if recOut[0] != recOut[2] {
		t.Error("all rows must map to the single group")
	}
}
