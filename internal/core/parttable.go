package core

import "encoding/binary"

// Radix-partitioned hash tables (cache-conscious execution, DESIGN.md).
//
// A monolithic build side that outgrows L2/L3 turns every probe into a
// random-access cache miss. PartTable splits one logical table into
// 2^bits partitions routed by the top bits of the key hash, so each
// partition's directory, chain links and hot records form a working set
// small enough to stay cache-resident while it is being built or probed
// partition-at-a-time. The bucket directory keeps using the low hash bits
// and the Bloom pre-pass remixes the hash, so the three consumers of one
// hash stay independent.
//
// Records are addressed two ways: per-partition LOCAL indices (what the
// underlying Tables speak, used for payload scatter/gather) and GLOBAL
// encoded indices `local<<bits | part` (what probes hand to callers, so a
// match fits in one int32 like before).

// PartitionTargetBytes is the hot working-set budget per partition: half
// of a 1 MiB per-core L2, leaving headroom for the probe-side batch
// state. The adaptive chooser picks the smallest partition count that
// fits the build-side estimate under this budget.
const PartitionTargetBytes = 512 << 10

// MaxPartitionBits caps the radix fan-out at 64 partitions; beyond that
// the per-partition directories stop paying for their fixed overhead.
const MaxPartitionBits = 6

// ChoosePartitionBits picks the radix bits for a build side of estRows
// records of hotWidth bytes, from the optimizer's cardinality bound
// (which descends from the scan's zone-map metadata). Each record also
// carries 8 bytes of directory head + chain link.
func ChoosePartitionBits(estRows int64, hotWidth int) int {
	if estRows <= 0 {
		return 0
	}
	per := int64(hotWidth + 8)
	if estRows > (int64(1)<<40)/per {
		return MaxPartitionBits // saturated estimate: assume huge
	}
	bytes := estRows * per
	bits := 0
	for bytes > PartitionTargetBytes && bits < MaxPartitionBits {
		bytes >>= 1
		bits++
	}
	return bits
}

// PartTable is a radix-partitioned hash table: 2^bits Tables sharing one
// KeySchema, routed by the top bits of the key hash.
type PartTable struct {
	Schema *KeySchema
	bits   uint
	parts  []*Table

	// partRows is the build-side grouping scratch. Building is
	// single-threaded per PartTable (parallel workers own private
	// tables; join builds run on the template before the fork), so the
	// scratch lives here; the probe path takes caller-owned scratch
	// because probe clones share one built PartTable.
	partRows [][]int32
}

// NewPartTable creates a partitioned table; capacityHint sizes the whole
// logical table and is split across partitions. bits outside [0,
// MaxPartitionBits] are clamped.
func NewPartTable(schema *KeySchema, hotExtra, coldExtra, capacityHint, bits int) *PartTable {
	if bits < 0 {
		bits = 0
	}
	if bits > MaxPartitionBits {
		bits = MaxPartitionBits
	}
	n := 1 << bits
	pt := &PartTable{
		Schema:   schema,
		bits:     uint(bits),
		parts:    make([]*Table, n),
		partRows: make([][]int32, n),
	}
	hint := capacityHint >> bits
	if hint < 16 {
		hint = 16
	}
	for i := range pt.parts {
		pt.parts[i] = NewTable(schema, hotExtra, coldExtra, hint)
	}
	return pt
}

// NewPartTableFromParts assembles a partitioned table from 2^bits
// already-built partition Tables. The partition-wise parallel aggregation
// driver uses it to install tables each owner worker built with its own
// (layout-identical) KeySchema: record addressing, emission and footprint
// accounting then work exactly as if the partitions had been built here,
// while key matching inside each partition stayed on its owner's string
// store. len(parts) must be a power of two <= 2^MaxPartitionBits.
func NewPartTableFromParts(schema *KeySchema, parts []*Table) *PartTable {
	bits := 0
	for 1<<bits < len(parts) {
		bits++
	}
	if 1<<bits != len(parts) || bits > MaxPartitionBits {
		panic("core: NewPartTableFromParts needs a power-of-two partition count")
	}
	return &PartTable{
		Schema:   schema,
		bits:     uint(bits),
		parts:    parts,
		partRows: make([][]int32, len(parts)),
	}
}

// Bits returns the radix bit count.
func (pt *PartTable) Bits() int { return int(pt.bits) }

// NParts returns the partition count.
func (pt *PartTable) NParts() int { return len(pt.parts) }

// Part returns partition i.
func (pt *PartTable) Part(i int) *Table { return pt.parts[i] }

// Parts returns all partitions (footprint registration).
func (pt *PartTable) Parts() []*Table { return pt.parts }

// PartOf routes a key hash to its partition: the top bits, disjoint from
// the low bits the bucket directories consume.
func (pt *PartTable) PartOf(h uint64) uint32 { return uint32(h >> (64 - pt.bits)) }

// EncodeRec packs a (partition, local record) pair into a global record.
func (pt *PartTable) EncodeRec(part uint32, local int32) int32 {
	return local<<pt.bits | int32(part)
}

// DecodeRec splits a global record into its partition and local record.
func (pt *PartTable) DecodeRec(grec int32) (part uint32, local int32) {
	return uint32(grec) & uint32(len(pt.parts)-1), grec >> pt.bits
}

// Len returns the total number of records across partitions.
func (pt *PartTable) Len() int {
	n := 0
	for _, t := range pt.parts {
		n += t.n
	}
	return n
}

// HotAreaBytes sums the partitions' hot working sets.
func (pt *PartTable) HotAreaBytes() int {
	n := 0
	for _, t := range pt.parts {
		n += t.HotAreaBytes()
	}
	return n
}

// ColdAreaBytes sums the partitions' cold areas.
func (pt *PartTable) ColdAreaBytes() int {
	n := 0
	for _, t := range pt.parts {
		n += t.ColdAreaBytes()
	}
	return n
}

// MemoryBytes sums the partitions' footprints.
func (pt *PartTable) MemoryBytes() int { return pt.HotAreaBytes() + pt.ColdAreaBytes() }

// PartitionRows groups the active rows by partition into reused scratch:
// the local-partitioning pass of a radix build. The returned slices are
// valid until the next call and are indexed by partition.
//
//ocht:hot
func (pt *PartTable) PartitionRows(hashes []uint64, rows []int32) [][]int32 {
	if pt.bits == 0 {
		pt.partRows[0] = append(pt.partRows[0][:0], rows...)
		return pt.partRows
	}
	for p := range pt.partRows {
		pt.partRows[p] = pt.partRows[p][:0]
	}
	for _, r := range rows {
		p := pt.PartOf(hashes[r])
		pt.partRows[p] = append(pt.partRows[p], r)
	}
	return pt.partRows
}

// ProbeChainsStaged is the two-phase batched probe: phase one snapshots
// every active row's bucket head into the heads scratch — independent
// loads over the partition directories that the hardware prefetcher can
// overlap — and phase two walks the chains from those snapshots, which
// are exact because a built table is immutable during probing. Appends
// every matching (probe row, encoded global record) pair to the provided
// slices and returns them. heads must hold at least len(rows) entries.
//
//ocht:hot
func (pt *PartTable) ProbeChainsStaged(p *Prepared, hashes []uint64, rows []int32, heads []int32, outRows, outRecs []int32) ([]int32, []int32) {
	parts := pt.parts
	for i, r := range rows {
		h := hashes[r]
		t := parts[pt.PartOf(h)]
		heads[i] = t.heads[h&t.mask]
	}
	if s := pt.Schema; s.intOnly && s.plan != nil && s.plan.Words == 1 && s.plan.WordBits == 64 {
		// Single-word fast path, as in Table.ProbeChains: the whole key
		// is one packed 64-bit word; one load, one compare per record.
		w0 := p.words[0]
		for i, r := range rows {
			if !p.inDom[r] {
				continue
			}
			h := hashes[r]
			part := pt.PartOf(h)
			t := parts[part]
			key := w0[r]
			hw := t.hotWidth
			for rec := heads[i]; rec >= 0; rec = t.next[rec] {
				if binary.LittleEndian.Uint64(t.hot[int(rec)*hw:]) == key {
					outRows = append(outRows, r)
					outRecs = append(outRecs, pt.EncodeRec(part, rec))
				}
			}
		}
		return outRows, outRecs
	}
	for i, r := range rows {
		h := hashes[r]
		part := pt.PartOf(h)
		t := parts[part]
		row := int(r)
		for rec := heads[i]; rec >= 0; rec = t.next[rec] {
			if t.matchOne(p, row, rec) {
				outRows = append(outRows, r)
				outRecs = append(outRecs, pt.EncodeRec(part, rec))
			}
		}
	}
	return outRows, outRecs
}
