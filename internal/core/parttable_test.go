package core

import (
	"math/rand"
	"sort"
	"testing"

	"ocht/internal/strs"
	"ocht/internal/vec"
)

func TestChoosePartitionBits(t *testing.T) {
	cases := []struct {
		rows     int64
		hotWidth int
		want     int
	}{
		{0, 16, 0},
		{-1, 16, 0},
		{1000, 16, 0},                      // 24KB fits one partition
		{100_000, 16, 3},                   // 2.4MB -> 8 partitions of ~300KB
		{4 << 20, 16, 6},                   // 100MB saturates the cap
		{int64(1) << 50, 16, 6},            // absurd estimate must not overflow
		{PartitionTargetBytes / 24, 16, 0}, // exactly at the budget edge
	}
	for _, c := range cases {
		if got := ChoosePartitionBits(c.rows, c.hotWidth); got != c.want {
			t.Errorf("ChoosePartitionBits(%d, %d) = %d, want %d", c.rows, c.hotWidth, got, c.want)
		}
	}
}

func TestPartTableRecRoundTrip(t *testing.T) {
	store := strs.NewStore(false)
	schema, err := NewKeySchema(Vanilla(), intKeyCols(), store)
	if err != nil {
		t.Fatal(err)
	}
	for _, bits := range []int{0, 1, 3, 6} {
		pt := NewPartTable(schema, 0, 0, 64, bits)
		if pt.NParts() != 1<<bits {
			t.Fatalf("bits=%d: %d partitions", bits, pt.NParts())
		}
		for _, part := range []uint32{0, uint32(pt.NParts() - 1)} {
			for _, local := range []int32{0, 1, 1 << 20} {
				grec := pt.EncodeRec(part, local)
				gp, gl := pt.DecodeRec(grec)
				if gp != part || gl != local {
					t.Fatalf("bits=%d: (%d,%d) round-trips to (%d,%d)", bits, part, local, gp, gl)
				}
			}
		}
	}
}

// TestPartitionedProbeEquivalence builds the same data into a monolithic
// table and partitioned tables at several radix widths, and checks that
// ProbeChainsStaged returns exactly the matches ProbeChains does.
func TestPartitionedProbeEquivalence(t *testing.T) {
	for _, flags := range []Flags{Vanilla(), {Compress: true}, All()} {
		t.Run(flagName(flags), func(t *testing.T) {
			store := strs.NewStore(flags.UseUSSR)
			schema, err := NewKeySchema(flags, intKeyCols(), store)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			const nb = 2000
			cols, rows := buildIntBatch(nb, rng)
			p := schema.Prepare(cols, rows)
			hashes := make([]uint64, nb)
			schema.Hash(p, rows, hashes)
			recOut := make([]int32, nb)

			mono := NewTable(schema, 0, 0, 16)
			mono.InsertBatch(p, hashes, rows, recOut)

			const np = 512
			pcols, prows := buildIntBatch(np, rng)
			pp := schema.Prepare(pcols, prows)
			phashes := make([]uint64, np)
			schema.Hash(pp, prows, phashes)
			wantRows, _ := mono.ProbeChains(pp, phashes, prows, nil, nil)
			// Order-insensitive oracle: matched probe rows with multiplicity.
			want := append([]int32(nil), wantRows...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

			for _, bits := range []int{0, 3, 6} {
				pt := NewPartTable(schema, 0, 0, 16, bits)
				// Prepare holds per-schema scratch shared with the probe
				// Prepare above, so re-derive the build-side state here.
				p = schema.Prepare(cols, rows)
				groups := pt.PartitionRows(hashes, rows)
				inserted := 0
				for pi, g := range groups {
					if len(g) == 0 {
						continue
					}
					pt.Part(pi).InsertBatch(p, hashes, g, recOut)
					inserted += len(g)
				}
				if inserted != nb || pt.Len() != nb {
					t.Fatalf("bits=%d: inserted %d rows, table holds %d", bits, inserted, pt.Len())
				}

				heads := make([]int32, np)
				pp = schema.Prepare(pcols, prows)
				gotRows, gotRecs := pt.ProbeChainsStaged(pp, phashes, prows, heads, nil, nil)
				if len(gotRows) != len(gotRecs) {
					t.Fatalf("bits=%d: rows/recs length mismatch", bits)
				}
				got := append([]int32(nil), gotRows...)
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if len(got) != len(want) {
					t.Fatalf("bits=%d: %d matches, monolithic found %d", bits, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("bits=%d: match multiset diverges at %d: %d vs %d", bits, i, got[i], want[i])
					}
				}
				// Every returned record must decode to a valid local record
				// whose key matches the probe row.
				ka := vec.New(vec.I64, 1)
				kb := vec.New(vec.I32, 1)
				one := []int32{0}
				for i, grec := range gotRecs {
					part, local := pt.DecodeRec(grec)
					tab := pt.Part(int(part))
					if local < 0 || int(local) >= tab.Len() {
						t.Fatalf("bits=%d: record %d out of range for partition %d", bits, local, part)
					}
					tab.LoadKey(0, []int32{local}, ka, one)
					tab.LoadKey(1, []int32{local}, kb, one)
					r := gotRows[i]
					if ka.I64[0] != pcols[0].I64[r] || kb.I32[0] != pcols[1].I32[r] {
						t.Fatalf("bits=%d: record key (%d,%d) != probe key (%d,%d)",
							bits, ka.I64[0], kb.I32[0], pcols[0].I64[r], pcols[1].I32[r])
					}
				}
			}
		})
	}
}

func TestPartitionRowsGrouping(t *testing.T) {
	store := strs.NewStore(false)
	schema, _ := NewKeySchema(Vanilla(), intKeyCols(), store)
	pt := NewPartTable(schema, 0, 0, 16, 4)
	const n = 4096
	hashes := make([]uint64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range hashes {
		hashes[i] = rng.Uint64()
	}
	rows := make([]int32, 0, n/2)
	for i := 0; i < n; i += 2 { // selective: even rows only
		rows = append(rows, int32(i))
	}
	groups := pt.PartitionRows(hashes, rows)
	total := 0
	for pi, g := range groups {
		for _, r := range g {
			if r%2 != 0 {
				t.Fatalf("row %d not in the selection vector", r)
			}
			if got := pt.PartOf(hashes[r]); got != uint32(pi) {
				t.Fatalf("row %d routed to partition %d, hash says %d", r, pi, got)
			}
		}
		total += len(g)
	}
	if total != len(rows) {
		t.Fatalf("grouping lost rows: %d of %d", total, len(rows))
	}
	// The scratch is reused: a second call with fewer rows must not leak
	// stale entries.
	groups = pt.PartitionRows(hashes, rows[:4])
	total = 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 4 {
		t.Fatalf("stale scratch rows: %d", total)
	}
}
