// Package core implements the paper's primary contribution: the
// optimistically compressed hash table. A table is split into a *hot*
// area of narrow NSM records — prefix-suppressed key words (Section II),
// USSR slot codes for strings (Section IV-F) and optimistic aggregate
// slices (Section III) — and a *cold* area holding the exceptions: full
// string references, overflow carries and full-width aggregates.
//
// The same machinery also runs in "vanilla" mode (all flags off), storing
// full-width NSM records, which is the baseline every experiment compares
// against.
package core

import (
	"ocht/internal/domain"
	"ocht/internal/pack"
	"ocht/internal/strs"
	"ocht/internal/ussr"
	"ocht/internal/vec"
)

// Flags selects which of the paper's three techniques are active.
type Flags struct {
	Compress bool // Domain-Guided Prefix Suppression on keys/payloads
	Split    bool // Optimistic Splitting of aggregates and exceptions
	UseUSSR  bool // Unique Strings Self-aligned Region
}

// Vanilla returns the baseline configuration: no compression, no
// splitting, heap-backed strings.
func Vanilla() Flags { return Flags{} }

// All returns the full configuration (CHT + Optimistic + USSR in the
// paper's figure legends).
func All() Flags { return Flags{Compress: true, Split: true, UseUSSR: true} }

// KeyCol describes one grouping/join key column.
type KeyCol struct {
	Name string
	Type vec.Type
	Dom  domain.D // ignored for Str columns
}

// ussrCodeDomain is the domain of USSR slot codes: 16-bit slot numbers,
// with 0 reserved as the exception marker (Section IV-F).
var ussrCodeDomain = domain.New(0, 1<<16-1)

// KeySchema resolves key columns into a physical key layout under the
// given flags and provides the vectorized hash, store, match and load
// kernels over that layout.
//
// Layout of the key area of a hot record:
//
//	compressed: [plan words: packed int columns + USSR slot codes]
//	            [8-byte references for strings that cannot be slot-coded]
//	direct:     [each column at its type width, strings as 8-byte refs]
//
// Heap string references are not canonical (equal strings get different
// references), so only USSR slot codes take part in packed-word equality;
// other string columns are compared by content through the store.
type KeySchema struct {
	Flags Flags
	Cols  []KeyCol
	Store *strs.Store

	plan     *pack.Plan
	planCols []int // plan column -> schema column
	codeCol  []int // schema column -> plan column of its slot code, or -1

	directOff []int // schema column -> byte offset in key area, or -1

	keyBytes  int
	strCold   []int // schema column -> cold byte offset of exception ref, or -1
	coldBytes int   // cold bytes owned by the key schema

	// intOnly marks schemas with no string columns: every key bit lives
	// in the plan words, enabling the single-word fast compare paths.
	intOnly bool

	// Per-batch scratch reused across Prepare calls. A KeySchema serves a
	// single query pipeline and is not safe for concurrent use.
	scratch Prepared
}

// NewKeySchema builds the key layout. store supplies string memory and may
// be nil when no Str columns exist.
func NewKeySchema(flags Flags, cols []KeyCol, store *strs.Store) (*KeySchema, error) {
	s := &KeySchema{
		Flags:     flags,
		Cols:      cols,
		Store:     store,
		codeCol:   make([]int, len(cols)),
		directOff: make([]int, len(cols)),
		strCold:   make([]int, len(cols)),
	}
	s.intOnly = true
	for i := range cols {
		s.codeCol[i] = -1
		s.directOff[i] = -1
		s.strCold[i] = -1
		if cols[i].Type == vec.Str {
			s.intOnly = false
		}
	}

	if flags.Compress {
		var pcols []pack.Col
		for i, c := range cols {
			switch {
			case c.Type == vec.Str && flags.UseUSSR && flags.Split:
				// 16-bit USSR slot code in the hot area; the full
				// reference moves to the cold area for exceptions.
				s.codeCol[i] = len(pcols)
				s.planCols = append(s.planCols, i)
				pcols = append(pcols, pack.Col{Name: c.Name, Type: vec.Str, Dom: ussrCodeDomain})
				s.strCold[i] = s.coldBytes
				s.coldBytes += 8
			case c.Type == vec.Str:
				// Stored directly after the packed words: a full 64-bit
				// reference (the paper's "at least 48 bits" limitation of
				// CHT alone), compared by content.
			default:
				s.planCols = append(s.planCols, i)
				pcols = append(pcols, pack.Col{Name: c.Name, Type: c.Type, Dom: c.Dom})
			}
		}
		plan, err := pack.ChoosePlan(pcols)
		if err != nil {
			return nil, err
		}
		s.plan = plan
		s.keyBytes = plan.RecordBytes()
		for i, c := range cols {
			if c.Type == vec.Str && s.codeCol[i] < 0 {
				s.directOff[i] = s.keyBytes
				s.keyBytes += 8
			}
		}
		return s, nil
	}

	// Direct mode: each column at its full type width (strings as 8-byte
	// references), like the uncompressed Vectorwise NSM records.
	for i, c := range cols {
		s.directOff[i] = s.keyBytes
		s.keyBytes += c.Type.Width()
	}
	return s, nil
}

// KeyBytes returns the width of the key area inside a hot record.
func (s *KeySchema) KeyBytes() int { return s.keyBytes }

// ColdBytes returns the cold bytes the key schema owns per record
// (exception string references).
func (s *KeySchema) ColdBytes() int { return s.coldBytes }

// Plan exposes the packing plan in compressed mode (nil otherwise).
func (s *KeySchema) Plan() *pack.Plan { return s.plan }

// UncompressedKeyBytes returns the vanilla key-record width for the same
// columns, the baseline of the footprint experiments.
func (s *KeySchema) UncompressedKeyBytes() int {
	n := 0
	for _, c := range s.Cols {
		n += c.Type.Width()
	}
	return n
}

// Prepared carries the per-batch working state of the key kernels.
type Prepared struct {
	orig     []*vec.Vector // original key vectors
	planVecs []*vec.Vector // plan-ordered working vectors (codes for USSR strings)
	codeVecs []*vec.Vector // owned slot-code buffers, reused across batches
	words    [][]uint64    // packed probe words, compressed mode
	inDom    []bool        // per-row: all packed values inside their domains
	store    *strs.Store   // the preparing schema's store; match kernels use
	// this rather than the table's schema store, so probes of a shared
	// build table account their fast/slow counters on the probing side
	// (each parallel worker's private store) instead of racing on the
	// build side's.
}

// Prepare resolves a batch's key columns into the working representation:
// in USSR-split mode string references become 16-bit slot codes (exception
// code 0), and in compressed mode the probe words are packed once per
// batch so that hashing, matching and storing all reuse them.
func (s *KeySchema) Prepare(cols []*vec.Vector, rows []int32) *Prepared {
	p := &s.scratch
	p.orig = cols
	p.store = s.Store
	if s.plan == nil {
		return p
	}
	phys := 0
	for _, c := range cols {
		if l := c.Len(); l > phys {
			phys = l
		}
	}
	for _, r := range rows { // no key columns: size buffers by row positions
		if int(r)+1 > phys {
			phys = int(r) + 1
		}
	}
	if p.planVecs == nil {
		p.planVecs = make([]*vec.Vector, len(s.planCols))
	}
	if p.codeVecs == nil {
		p.codeVecs = make([]*vec.Vector, len(s.planCols))
	}
	for pi, ci := range s.planCols {
		c := cols[ci]
		if s.codeCol[ci] >= 0 {
			codes := p.codeVecs[pi]
			if codes == nil {
				codes = &vec.Vector{Typ: vec.Str}
				p.codeVecs[pi] = codes
			}
			if cap(codes.Str) < phys {
				codes.Str = make([]vec.StrRef, phys)
			}
			// View exactly the batch's physical length so the kernels'
			// full-vector mode stays in bounds.
			codes.Str = codes.Str[:phys]
			src, dst := c.Str, codes.Str
			for _, r := range rows {
				if ref := src[r]; ref.InUSSR() {
					dst[r] = vec.StrRef(ref.USSRSlot())
				} else {
					dst[r] = 0 // exception
				}
			}
			p.planVecs[pi] = codes
			continue
		}
		p.planVecs[pi] = c
	}
	if len(p.words) != s.plan.Words {
		p.words = make([][]uint64, s.plan.Words)
	}
	for w := range p.words {
		if len(p.words[w]) < phys {
			p.words[w] = make([]uint64, phys)
		}
		s.plan.PackWord(w, p.planVecs, rows, p.words[w])
	}
	// Probe values outside the build-side domain wrap around during
	// packing and could collide with valid codes; they can never match,
	// so they are filtered before the word comparison (Section II-D).
	if len(p.inDom) < phys {
		p.inDom = make([]bool, phys)
	}
	s.plan.InDomain(p.planVecs, rows, p.inDom)
	return p
}

// Hash writes the key hash of every active row into out. In compressed
// mode the hash folds the packed key words — multiple key columns packed
// into one word are hashed as one (Section II-F) — while string columns
// outside the plan and all direct-mode columns are hashed by content, with
// string hashes going through the store's pre-computed fast path when
// resident.
func (s *KeySchema) Hash(p *Prepared, rows []int32, out []uint64) {
	first := true
	if s.plan != nil {
		if s.plan.Words > 0 {
			pack.HashWords(p.words, rows, out)
			first = false
		}
		for ci, c := range s.Cols {
			if c.Type == vec.Str && s.codeCol[ci] < 0 {
				s.hashStrInto(p.orig[ci].Str, rows, out, first)
				first = false
			}
		}
	} else {
		for ci, c := range s.Cols {
			if c.Type == vec.Str {
				s.hashStrInto(p.orig[ci].Str, rows, out, first)
			} else {
				v := p.orig[ci]
				if first {
					for _, r := range rows {
						out[r] = pack.Mix64(uint64(v.Int64At(int(r))))
					}
				} else {
					for _, r := range rows {
						out[r] = pack.Mix64(out[r] ^ pack.Mix64(uint64(v.Int64At(int(r)))))
					}
				}
			}
			first = false
		}
	}
	if first { // no key columns: global aggregate
		for _, r := range rows {
			out[r] = 0
		}
	}
}

func (s *KeySchema) hashStrInto(refs []vec.StrRef, rows []int32, out []uint64, first bool) {
	if first {
		for _, r := range rows {
			out[r] = s.Store.Hash(refs[r])
		}
		return
	}
	for _, r := range rows {
		out[r] = pack.Mix64(out[r] ^ s.Store.Hash(refs[r]))
	}
}

// refForCode rebuilds the string reference of a hot-area slot code.
func refForCode(code uint16) vec.StrRef { return ussr.RefForSlot(code) }
