package core

import (
	"encoding/binary"

	"ocht/internal/pack"
	"ocht/internal/vec"
)

// Table is the optimistically compressed hash table: a bucket-chained
// directory over hot NSM records, plus a parallel cold area for
// exceptions. The key area layout comes from the KeySchema; callers
// (hash join, hash aggregation) own extra hot and cold bytes per record
// for payloads and aggregate state.
type Table struct {
	Schema    *KeySchema
	HotExtra  int // caller-owned bytes after the key area in each hot record
	ColdExtra int // caller-owned bytes after the key schema's cold bytes

	hotWidth  int
	coldWidth int

	heads []int32
	next  []int32
	mask  uint64
	hot   []byte
	cold  []byte
	n     int
}

// NewTable creates a table; capacityHint sizes the initial directory.
func NewTable(schema *KeySchema, hotExtra, coldExtra, capacityHint int) *Table {
	t := &Table{
		Schema:    schema,
		HotExtra:  hotExtra,
		ColdExtra: coldExtra,
		hotWidth:  schema.KeyBytes() + hotExtra,
		coldWidth: schema.ColdBytes() + coldExtra,
	}
	size := 16
	for size < capacityHint {
		size <<= 1
	}
	t.heads = make([]int32, size)
	for i := range t.heads {
		t.heads[i] = -1
	}
	t.mask = uint64(size - 1)
	return t
}

// Len returns the number of records.
func (t *Table) Len() int { return t.n }

// HotWidth returns the hot record width in bytes.
func (t *Table) HotWidth() int { return t.hotWidth }

// ColdWidth returns the cold record width in bytes.
func (t *Table) ColdWidth() int { return t.coldWidth }

// HotAreaBytes returns the hot working set: directory, chain links and hot
// records — the footprint that determines cache residency (Figure 4's
// "CHT + Optimistic (hot area)").
func (t *Table) HotAreaBytes() int {
	return len(t.heads)*4 + len(t.next)*4 + len(t.hot)
}

// ColdAreaBytes returns the cold (exception) area footprint.
func (t *Table) ColdAreaBytes() int { return len(t.cold) }

// MemoryBytes returns the total footprint (Table II measures this
// against the vanilla baseline).
func (t *Table) MemoryBytes() int { return t.HotAreaBytes() + t.ColdAreaBytes() }

// HotRow returns the caller-owned extra bytes of hot record rec.
func (t *Table) HotRow(rec int32) []byte {
	off := int(rec)*t.hotWidth + t.Schema.KeyBytes()
	return t.hot[off : off+t.HotExtra]
}

// ColdRow returns the caller-owned extra bytes of cold record rec.
func (t *Table) ColdRow(rec int32) []byte {
	off := int(rec)*t.coldWidth + t.Schema.ColdBytes()
	return t.cold[off : off+t.ColdExtra]
}

// Head returns the first record of the chain for hash h, or -1.
func (t *Table) Head(h uint64) int32 { return t.heads[h&t.mask] }

// Next returns the chain successor of rec, or -1.
func (t *Table) Next(rec int32) int32 { return t.next[rec] }

// grow doubles the directory and relinks every record except `skip`
// (the record currently being inserted, which the caller links itself).
func (t *Table) grow(skip int32) {
	size := len(t.heads) * 2
	t.heads = make([]int32, size)
	for i := range t.heads {
		t.heads[i] = -1
	}
	t.mask = uint64(size - 1)
	for rec := 0; rec < t.n; rec++ {
		if int32(rec) == skip {
			continue
		}
		h := t.hashRecord(int32(rec)) & t.mask
		t.next[rec] = t.heads[h]
		t.heads[h] = int32(rec)
	}
}

// alloc appends a zeroed record and returns its index (not yet linked).
func (t *Table) alloc() int32 {
	rec := int32(t.n)
	t.hot = growZeroed(t.hot, t.hotWidth)
	if t.coldWidth > 0 {
		t.cold = growZeroed(t.cold, t.coldWidth)
	}
	t.next = append(t.next, -1)
	t.n++
	return rec
}

// growZeroed extends b by n zero bytes without a per-call allocation:
// fresh capacity from make is already zeroed, and the buffer is never
// truncated, so reslicing within capacity exposes zeroes.
func growZeroed(b []byte, n int) []byte {
	need := len(b) + n
	if need > cap(b) {
		newCap := 2 * cap(b)
		if newCap < need {
			newCap = need + 1024
		}
		nb := make([]byte, len(b), newCap)
		copy(nb, b)
		b = nb
	}
	return b[:need]
}

func (t *Table) link(rec int32, h uint64) {
	if t.n > len(t.heads) {
		t.grow(rec)
	}
	b := h & t.mask
	t.next[rec] = t.heads[b]
	t.heads[b] = rec
}

// word loads plan word w of hot record rec.
func (t *Table) word(rec int32, w int) uint64 {
	s := t.Schema
	off := int(rec)*t.hotWidth + w*s.plan.WordBits/8
	if s.plan.WordBits == 32 {
		return uint64(binary.LittleEndian.Uint32(t.hot[off:]))
	}
	return binary.LittleEndian.Uint64(t.hot[off:])
}

func (t *Table) putWord(rec int32, w int, v uint64) {
	s := t.Schema
	off := int(rec)*t.hotWidth + w*s.plan.WordBits/8
	if s.plan.WordBits == 32 {
		binary.LittleEndian.PutUint32(t.hot[off:], uint32(v))
	} else {
		binary.LittleEndian.PutUint64(t.hot[off:], v)
	}
}

// directRef loads the string reference stored directly at column ci.
func (t *Table) directRef(rec int32, ci int) vec.StrRef {
	off := int(rec)*t.hotWidth + t.Schema.directOff[ci]
	return vec.StrRef(binary.LittleEndian.Uint64(t.hot[off:]))
}

// coldRef loads the exception string reference of column ci.
func (t *Table) coldRef(rec int32, ci int) vec.StrRef {
	off := int(rec)*t.coldWidth + t.Schema.strCold[ci]
	return vec.StrRef(binary.LittleEndian.Uint64(t.cold[off:]))
}

// storeKeyOne writes the key area (and exception refs) of record rec from
// row `row` of the prepared batch.
func (t *Table) storeKeyOne(p *Prepared, row int, rec int32) {
	s := t.Schema
	if s.plan != nil {
		for w := 0; w < s.plan.Words; w++ {
			t.putWord(rec, w, p.words[w][row])
		}
		for ci, c := range s.Cols {
			switch {
			case s.directOff[ci] >= 0 && c.Type == vec.Str:
				off := int(rec)*t.hotWidth + s.directOff[ci]
				binary.LittleEndian.PutUint64(t.hot[off:], uint64(p.orig[ci].Str[row]))
			case s.strCold[ci] >= 0:
				// Exception ref: only needed when the slot code is 0,
				// but stored unconditionally costs one write and keeps
				// LoadKeys branch-free for exceptions.
				if p.planVecs[s.codeCol[ci]].Str[row] == 0 {
					off := int(rec)*t.coldWidth + s.strCold[ci]
					binary.LittleEndian.PutUint64(t.cold[off:], uint64(p.orig[ci].Str[row]))
				}
			}
		}
		return
	}
	base := int(rec) * t.hotWidth
	for ci, c := range s.Cols {
		off := base + s.directOff[ci]
		switch c.Type {
		case vec.Str:
			binary.LittleEndian.PutUint64(t.hot[off:], uint64(p.orig[ci].Str[row]))
		case vec.I64, vec.F64:
			var u uint64
			if c.Type == vec.F64 {
				u = f64bits(p.orig[ci].F64[row])
			} else {
				u = uint64(p.orig[ci].I64[row])
			}
			binary.LittleEndian.PutUint64(t.hot[off:], u)
		case vec.I32:
			binary.LittleEndian.PutUint32(t.hot[off:], uint32(p.orig[ci].I32[row]))
		case vec.I16:
			binary.LittleEndian.PutUint16(t.hot[off:], uint16(p.orig[ci].I16[row]))
		case vec.I8:
			t.hot[off] = byte(p.orig[ci].I8[row])
		case vec.Bool:
			if p.orig[ci].Bool[row] {
				t.hot[off] = 1
			} else {
				t.hot[off] = 0
			}
		}
	}
}

// matchOne reports whether record rec's key equals row `row` of the
// prepared batch. In compressed mode this is the paper's Section II-D
// comparison: the probe key was compressed once per batch, and the check
// is a word compare — plus content comparisons for strings that are not
// slot-coded, and the cold-reference fallback when both slot codes are 0.
func (t *Table) matchOne(p *Prepared, row int, rec int32) bool {
	s := t.Schema
	if s.plan != nil {
		if !p.inDom[row] {
			return false
		}
		for w := 0; w < s.plan.Words; w++ {
			if t.word(rec, w) != p.words[w][row] {
				return false
			}
		}
		for ci, c := range s.Cols {
			switch {
			case s.directOff[ci] >= 0 && c.Type == vec.Str:
				if !p.store.Equal(p.orig[ci].Str[row], t.directRef(rec, ci)) {
					return false
				}
			case s.strCold[ci] >= 0:
				// Slot codes already compared equal inside the words.
				// Both 0 means both are exceptions: compare contents.
				if p.planVecs[s.codeCol[ci]].Str[row] == 0 {
					if !p.store.Equal(p.orig[ci].Str[row], t.coldRef(rec, ci)) {
						return false
					}
				}
			}
		}
		return true
	}
	base := int(rec) * t.hotWidth
	for ci, c := range s.Cols {
		off := base + s.directOff[ci]
		switch c.Type {
		case vec.Str:
			stored := vec.StrRef(binary.LittleEndian.Uint64(t.hot[off:]))
			if !p.store.Equal(p.orig[ci].Str[row], stored) {
				return false
			}
		case vec.I64, vec.F64:
			var u uint64
			if c.Type == vec.F64 {
				u = f64bits(p.orig[ci].F64[row])
			} else {
				u = uint64(p.orig[ci].I64[row])
			}
			if binary.LittleEndian.Uint64(t.hot[off:]) != u {
				return false
			}
		case vec.I32:
			if binary.LittleEndian.Uint32(t.hot[off:]) != uint32(p.orig[ci].I32[row]) {
				return false
			}
		case vec.I16:
			if binary.LittleEndian.Uint16(t.hot[off:]) != uint16(p.orig[ci].I16[row]) {
				return false
			}
		case vec.I8:
			if t.hot[off] != byte(p.orig[ci].I8[row]) {
				return false
			}
		case vec.Bool:
			b := t.hot[off] != 0
			if b != p.orig[ci].Bool[row] {
				return false
			}
		}
	}
	return true
}

// hashRecord recomputes the key hash of a stored record; used when the
// directory grows. It mirrors KeySchema.Hash exactly.
func (t *Table) hashRecord(rec int32) uint64 {
	s := t.Schema
	var h uint64
	first := true
	if s.plan != nil {
		if s.plan.Words > 0 {
			h = pack.Mix64(t.word(rec, 0))
			for w := 1; w < s.plan.Words; w++ {
				h = pack.Mix64(h ^ pack.Mix64(t.word(rec, w)))
			}
			first = false
		}
		for ci, c := range s.Cols {
			if c.Type == vec.Str && s.directOff[ci] >= 0 {
				sh := s.Store.Hash(t.directRef(rec, ci))
				if first {
					h = sh
				} else {
					h = pack.Mix64(h ^ sh)
				}
				first = false
			}
		}
		return h
	}
	base := int(rec) * t.hotWidth
	for ci, c := range s.Cols {
		off := base + s.directOff[ci]
		var hv uint64
		if c.Type == vec.Str {
			hv = s.Store.Hash(vec.StrRef(binary.LittleEndian.Uint64(t.hot[off:])))
		} else {
			hv = pack.Mix64(t.loadDirect(rec, ci))
		}
		if first {
			h = hv
		} else {
			h = pack.Mix64(h ^ hv)
		}
		first = false
	}
	return h
}

// loadDirect loads a direct-mode integer column value sign-extended.
func (t *Table) loadDirect(rec int32, ci int) uint64 {
	off := int(rec)*t.hotWidth + t.Schema.directOff[ci]
	switch t.Schema.Cols[ci].Type {
	case vec.I64, vec.F64, vec.Str:
		return binary.LittleEndian.Uint64(t.hot[off:])
	case vec.I32:
		return uint64(int64(int32(binary.LittleEndian.Uint32(t.hot[off:]))))
	case vec.I16:
		return uint64(int64(int16(binary.LittleEndian.Uint16(t.hot[off:]))))
	case vec.I8:
		return uint64(int64(int8(t.hot[off])))
	case vec.Bool:
		return uint64(t.hot[off])
	}
	return 0
}

// FindOrInsert resolves each active row to its group record, inserting
// missing groups. recOut[row] receives the record index; the returned
// slices give the rows and record indices of newly created groups, so the
// caller can initialize aggregate state.
func (t *Table) FindOrInsert(p *Prepared, hashes []uint64, rows []int32, recOut []int32) (newRows, newRecs []int32) {
	if s := t.Schema; s.intOnly && s.plan != nil && s.plan.Words == 1 && s.plan.WordBits == 64 {
		// Single-word fast path (Section II-F): grouping on the packed
		// word is one compare, fewer branches.
		w0 := p.words[0]
		hw := t.hotWidth
		for _, r := range rows {
			h := hashes[r]
			key := w0[r]
			rec := t.heads[h&t.mask]
			for rec >= 0 {
				if binary.LittleEndian.Uint64(t.hot[int(rec)*hw:]) == key && p.inDom[r] {
					break
				}
				rec = t.next[rec]
			}
			if rec < 0 {
				rec = t.alloc()
				t.storeKeyOne(p, int(r), rec)
				t.link(rec, h)
				newRows = append(newRows, r)
				newRecs = append(newRecs, rec)
			}
			recOut[r] = rec
		}
		return newRows, newRecs
	}
	for _, r := range rows {
		row := int(r)
		h := hashes[r]
		rec := t.heads[h&t.mask]
		for rec >= 0 {
			if t.matchOne(p, row, rec) {
				break
			}
			rec = t.next[rec]
		}
		if rec < 0 {
			rec = t.alloc()
			t.storeKeyOne(p, row, rec)
			t.link(rec, h)
			newRows = append(newRows, r)
			newRecs = append(newRecs, rec)
		}
		recOut[r] = rec
	}
	return newRows, newRecs
}

// InsertBatch inserts every active row as a new record (hash-join build:
// duplicates allowed). recOut[row] receives the record index.
func (t *Table) InsertBatch(p *Prepared, hashes []uint64, rows []int32, recOut []int32) {
	for _, r := range rows {
		rec := t.alloc()
		t.storeKeyOne(p, int(r), rec)
		t.link(rec, hashes[r])
		recOut[r] = rec
	}
}

// ProbeChains walks the chain of each active row and appends every
// matching (row, record) pair: the hash-join probe. The pairs are appended
// to the provided slices and returned.
func (t *Table) ProbeChains(p *Prepared, hashes []uint64, rows []int32, outRows, outRecs []int32) ([]int32, []int32) {
	if s := t.Schema; s.intOnly && s.plan != nil && s.plan.Words == 1 && s.plan.WordBits == 64 {
		// Fast path: the whole key is one packed 64-bit word
		// (Section II-F's "execute the join as if there were just one
		// column"): one load, one compare per chain record.
		w0 := p.words[0]
		hw := t.hotWidth
		hot := t.hot
		for _, r := range rows {
			if !p.inDom[r] {
				continue
			}
			key := w0[r]
			for rec := t.heads[hashes[r]&t.mask]; rec >= 0; rec = t.next[rec] {
				if binary.LittleEndian.Uint64(hot[int(rec)*hw:]) == key {
					outRows = append(outRows, r)
					outRecs = append(outRecs, rec)
				}
			}
		}
		return outRows, outRecs
	}
	for _, r := range rows {
		row := int(r)
		for rec := t.heads[hashes[r]&t.mask]; rec >= 0; rec = t.next[rec] {
			if t.matchOne(p, row, rec) {
				outRows = append(outRows, r)
				outRecs = append(outRecs, rec)
			}
		}
	}
	return outRows, outRecs
}

// LoadKey reconstructs key column ci of the given records into out at the
// given row positions: integer columns are decompressed, slot codes are
// turned back into USSR references (base + slot*8) or, when 0, the cold
// exception reference is fetched (Section IV-F).
func (t *Table) LoadKey(ci int, recIdx []int32, out *vec.Vector, rows []int32) {
	s := t.Schema
	switch {
	case s.plan != nil && s.codeCol[ci] >= 0:
		codes := vec.New(vec.Str, out.Len())
		s.plan.UnpackColumn(s.codeCol[ci], t.hot, recIdx, t.hotWidth, 0, codes, rows)
		for i, r := range rows {
			code := uint16(codes.Str[r])
			if code != 0 {
				out.Str[r] = refForCode(code)
			} else {
				out.Str[r] = t.coldRef(recIdx[i], ci)
			}
		}
	case s.plan != nil && s.directOff[ci] >= 0:
		for i, r := range rows {
			out.Str[r] = t.directRef(recIdx[i], ci)
		}
	case s.plan != nil:
		// Find the plan column for this schema column.
		pi := -1
		for j, cj := range s.planCols {
			if cj == ci {
				pi = j
				break
			}
		}
		s.plan.UnpackColumn(pi, t.hot, recIdx, t.hotWidth, 0, out, rows)
	default:
		c := s.Cols[ci]
		for i, r := range rows {
			u := t.loadDirect(recIdx[i], ci)
			switch c.Type {
			case vec.Str:
				out.Str[r] = vec.StrRef(u)
			case vec.F64:
				out.F64[r] = f64frombits(u)
			default:
				out.SetInt64(int(r), int64(u))
			}
		}
	}
}

// RawHot exposes the hot record area for payload codecs; records are laid
// out at rec*HotWidth(). The slice is invalidated by further inserts.
func (t *Table) RawHot() []byte { return t.hot }

// RawCold exposes the cold record area; records are laid out at
// rec*ColdWidth(). The slice is invalidated by further inserts.
func (t *Table) RawCold() []byte { return t.cold }
