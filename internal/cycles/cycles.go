// Package cycles converts wall-clock measurements into nominal CPU cycles
// so the benchmark harness can print figures in the paper's units
// (cycles/value, MCycles, GCycles). The paper reads rdtsc; Go has no
// portable equivalent, so a nominal clock of 3 GHz stands in. Only
// relative comparisons matter for every reproduced figure.
package cycles

import "time"

// NominalGHz is the assumed clock rate for cycle conversion.
const NominalGHz = 3.0

// FromDuration converts a duration to nominal cycles.
func FromDuration(d time.Duration) float64 {
	return d.Seconds() * NominalGHz * 1e9
}

// PerItem converts a duration over n items to nominal cycles per item.
func PerItem(d time.Duration, n int) float64 {
	if n == 0 {
		return 0
	}
	return FromDuration(d) / float64(n)
}

// Measure runs f and returns its duration.
func Measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// MeasureBest runs f `reps` times and returns the fastest run, the
// hot-run discipline of the paper's experiments.
func MeasureBest(reps int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		if d := Measure(f); d < best {
			best = d
		}
	}
	return best
}
