package cycles

import (
	"testing"
	"time"
)

func TestFromDuration(t *testing.T) {
	if got := FromDuration(time.Second); got != NominalGHz*1e9 {
		t.Errorf("1s = %f cycles", got)
	}
	if got := FromDuration(time.Microsecond); got != NominalGHz*1e3 {
		t.Errorf("1us = %f cycles", got)
	}
}

func TestPerItem(t *testing.T) {
	if got := PerItem(time.Microsecond, 1000); got != NominalGHz {
		t.Errorf("PerItem = %f", got)
	}
	if PerItem(time.Second, 0) != 0 {
		t.Error("zero items")
	}
}

func TestMeasure(t *testing.T) {
	d := Measure(func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Errorf("measured %v", d)
	}
}

func TestMeasureBestTakesMin(t *testing.T) {
	calls := 0
	d := MeasureBest(3, func() {
		calls++
		if calls == 1 {
			time.Sleep(5 * time.Millisecond)
		}
	})
	if calls != 3 {
		t.Errorf("calls = %d", calls)
	}
	if d >= 5*time.Millisecond {
		t.Errorf("best should skip the slow first run: %v", d)
	}
}
