// Package dist is the scatter-gather distribution layer: a coordinator
// that hash-partitions ingest across shard engine processes, plans
// distributed queries by pushing filters and partial aggregation below
// the exchange boundary (sql.PlanDistributed), fans the shard subqueries
// out over the engines' HTTP protocol with deadlines, retries and hedged
// requests, and merges the partials through the same agg.Merge path the
// single-node parallel workers use. It also houses the read-replica
// puller, which ships WAL segments off a primary and replays them
// through the ordinary crash-recovery code.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"ocht/internal/exec"
	"ocht/internal/i128"
	"ocht/internal/server"
	"ocht/internal/sql"
	"ocht/internal/vec"
)

// Client speaks the engine server's HTTP protocol: /query for writes,
// /shard/query for distributed subqueries, /wal/* for replication.
type Client struct {
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) hc() *http.Client {
	if c != nil && c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Error is a failed engine call, keeping the HTTP status so the fanout
// can tell transient saturation from a genuinely bad query.
type Error struct {
	Status int // 0 = transport-level failure
	Msg    string
}

func (e *Error) Error() string {
	if e.Status == 0 {
		return e.Msg
	}
	return fmt.Sprintf("http %d: %s", e.Status, e.Msg)
}

// Transient reports whether an error is worth retrying or hedging:
// transport failures (connection refused/reset — the process may be
// restarting), server saturation (429), gateway-style unavailability
// (502/503/504), and a replica mid-catch-up (409). Compile errors and
// other 4xx are fatal: retrying cannot fix the query.
func Transient(err error) bool {
	var ce *Error
	if !asError(err, &ce) {
		return true // transport errors arrive as url.Error
	}
	switch ce.Status {
	case 0, http.StatusTooManyRequests, http.StatusConflict,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// asError is errors.As specialized to *Error without importing errors in
// every call site's hot path.
func asError(err error, target **Error) bool {
	for err != nil {
		if e, ok := err.(*Error); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// ShardResult is a decoded shard subquery response: rows re-typed into
// engine values, ready to feed an exec.Exchange.
type ShardResult struct {
	Columns        []string
	Types          []vec.Type
	Rows           [][]exec.Value
	CatalogVersion uint64
}

// ShardQuery runs one shard subquery against base and decodes the typed
// result rows.
func (c *Client) ShardQuery(ctx context.Context, base string, req server.ShardRequest) (*ShardResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/shard/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.hc().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()

	dec := json.NewDecoder(hresp.Body)
	dec.UseNumber() // int64 cells must not round-trip through float64
	var sr server.ShardResponse
	if derr := dec.Decode(&sr); derr != nil {
		if hresp.StatusCode != http.StatusOK {
			return nil, &Error{Status: hresp.StatusCode, Msg: "undecodable error body"}
		}
		return nil, derr
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, &Error{Status: hresp.StatusCode, Msg: sr.Error}
	}

	types, err := sql.ShardTypes(sr.Types)
	if err != nil {
		return nil, err
	}
	out := &ShardResult{Columns: sr.Columns, Types: types, CatalogVersion: sr.CatalogVersion}
	out.Rows = make([][]exec.Value, len(sr.Rows))
	for i, r := range sr.Rows {
		if len(r) != len(types) {
			return nil, fmt.Errorf("dist: shard row %d has %d cells, want %d", i, len(r), len(types))
		}
		row := make([]exec.Value, len(r))
		for j, cell := range r {
			v, cerr := decodeCell(types[j], cell)
			if cerr != nil {
				return nil, fmt.Errorf("dist: shard row %d col %s: %w", i, sr.Columns[j], cerr)
			}
			row[j] = v
		}
		out.Rows[i] = row
	}
	return out, nil
}

// decodeCell rebuilds one engine value from its wire form (see
// server.shardCell): JSON null for NULL, json.Number for integers and
// floats, string for strings, [hi, lo] for 128-bit values.
func decodeCell(t vec.Type, cell any) (exec.Value, error) {
	if cell == nil {
		return exec.Value{Typ: t, Null: true}, nil
	}
	switch t {
	case vec.Str:
		s, ok := cell.(string)
		if !ok {
			return exec.Value{}, fmt.Errorf("want string, got %T", cell)
		}
		return exec.Value{Typ: t, S: s}, nil
	case vec.F64:
		n, ok := cell.(json.Number)
		if !ok {
			return exec.Value{}, fmt.Errorf("want number, got %T", cell)
		}
		f, err := n.Float64()
		if err != nil {
			return exec.Value{}, err
		}
		return exec.Value{Typ: t, F: f}, nil
	case vec.I128:
		pair, ok := cell.([]any)
		if !ok || len(pair) != 2 {
			return exec.Value{}, fmt.Errorf("want [hi, lo] pair, got %T", cell)
		}
		hn, hok := pair[0].(json.Number)
		ln, lok := pair[1].(json.Number)
		if !hok || !lok {
			return exec.Value{}, fmt.Errorf("bad [hi, lo] pair %v", pair)
		}
		hi, err := strconv.ParseInt(hn.String(), 10, 64)
		if err != nil {
			return exec.Value{}, err
		}
		lo, err := strconv.ParseUint(ln.String(), 10, 64)
		if err != nil {
			return exec.Value{}, err
		}
		return exec.Value{Typ: t, I128: i128.Int{Hi: hi, Lo: lo}}, nil
	default:
		n, ok := cell.(json.Number)
		if !ok {
			return exec.Value{}, fmt.Errorf("want number, got %T", cell)
		}
		i, err := strconv.ParseInt(n.String(), 10, 64)
		if err != nil {
			return exec.Value{}, err
		}
		return exec.Value{Typ: t, I: i}, nil
	}
}

// Exec runs one write statement (CREATE / INSERT / COPY) against base
// through the ordinary /query endpoint and returns rows affected.
func (c *Client) Exec(ctx context.Context, base, sqlText string) (int64, error) {
	body, err := json.Marshal(server.QueryRequest{SQL: sqlText})
	if err != nil {
		return 0, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/query", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.hc().Do(hreq)
	if err != nil {
		return 0, err
	}
	defer hresp.Body.Close()
	var qr server.QueryResponse
	if derr := json.NewDecoder(hresp.Body).Decode(&qr); derr != nil {
		if hresp.StatusCode != http.StatusOK {
			return 0, &Error{Status: hresp.StatusCode, Msg: "undecodable error body"}
		}
		return 0, derr
	}
	if hresp.StatusCode != http.StatusOK {
		return 0, &Error{Status: hresp.StatusCode, Msg: qr.Error}
	}
	return qr.RowsAffected, nil
}

// WALStatus fetches base's per-table replication LSNs.
func (c *Client) WALStatus(ctx context.Context, base string) (map[string]int64, uint64, error) {
	var doc struct {
		CatalogVersion uint64           `json:"catalog_version"`
		Tables         map[string]int64 `json:"tables"`
		Error          string           `json:"error"`
	}
	status, err := c.getJSON(ctx, base+"/wal/status", &doc)
	if err != nil {
		return nil, 0, err
	}
	if status != http.StatusOK {
		return nil, 0, &Error{Status: status, Msg: doc.Error}
	}
	return doc.Tables, doc.CatalogVersion, nil
}

// WALExport pulls one replication segment and the next fetch position.
func (c *Client) WALExport(ctx context.Context, base, table string, from int64, maxRows int) ([]byte, int64, error) {
	url := fmt.Sprintf("%s/wal/export?table=%s&from=%d", base, table, from)
	if maxRows > 0 {
		url += fmt.Sprintf("&max=%d", maxRows)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	hresp, err := c.hc().Do(hreq)
	if err != nil {
		return nil, 0, err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, 0, err
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, 0, &Error{Status: hresp.StatusCode, Msg: string(body)}
	}
	next, err := strconv.ParseInt(hresp.Header.Get("X-Ocht-Next-Lsn"), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("dist: bad X-Ocht-Next-Lsn header: %w", err)
	}
	return body, next, nil
}

// ReplicationStatus fetches a replica's catch-up state.
func (c *Client) ReplicationStatus(ctx context.Context, base string) (server.ReplicaStatus, error) {
	var rs server.ReplicaStatus
	status, err := c.getJSON(ctx, base+"/replication/status", &rs)
	if err != nil {
		return rs, err
	}
	if status != http.StatusOK {
		return rs, &Error{Status: status, Msg: rs.LastErr}
	}
	return rs, nil
}

// Tables fetches base's table listing and catalog version.
func (c *Client) Tables(ctx context.Context, base string) ([]server.TableInfo, uint64, error) {
	var doc struct {
		CatalogVersion uint64             `json:"catalog_version"`
		Tables         []server.TableInfo `json:"tables"`
		Error          string             `json:"error"`
	}
	status, err := c.getJSON(ctx, base+"/tables", &doc)
	if err != nil {
		return nil, 0, err
	}
	if status != http.StatusOK {
		return nil, 0, &Error{Status: status, Msg: doc.Error}
	}
	return doc.Tables, doc.CatalogVersion, nil
}

func (c *Client) getJSON(ctx context.Context, url string, out any) (int, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	hresp, err := c.hc().Do(hreq)
	if err != nil {
		return 0, err
	}
	defer hresp.Body.Close()
	if derr := json.NewDecoder(hresp.Body).Decode(out); derr != nil && hresp.StatusCode == http.StatusOK {
		return hresp.StatusCode, derr
	}
	return hresp.StatusCode, nil
}
