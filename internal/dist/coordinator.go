package dist

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/i128"
	"ocht/internal/server"
	"ocht/internal/sql"
	"ocht/internal/vec"
)

// ShardConfig is one shard of the cluster: the writable primary plus any
// read replicas tailing its WAL.
type ShardConfig struct {
	Primary  string
	Replicas []string
}

// Config configures a Coordinator.
type Config struct {
	Shards []ShardConfig
	// PartitionKeys overrides the partition column per table (default:
	// the first integer or string column).
	PartitionKeys map[string]string
	// Broadcast marks tables replicated to every shard instead of
	// partitioned (small dimension tables, so joins stay shard-local).
	Broadcast map[string]bool
	// Workers is the per-shard subquery parallelism (0 = shard default).
	Workers int
	// Flags drive the coordinator's merge fragment execution.
	Flags core.Flags
	// Fanout tunes scatter deadlines, retries and hedging.
	Fanout FanoutConfig
	// ReplicaReads routes read-only queries to caught-up replicas,
	// keeping the primaries free for ingest.
	ReplicaReads bool
	// StatusTTL bounds how stale the cached replica catch-up state may be
	// when routing reads (default 1s).
	StatusTTL time.Duration
}

// tableRoute is what the coordinator knows about one table's placement.
type tableRoute struct {
	cols    []sql.ColDef
	partCol int // index into cols; -1 = broadcast to every shard
}

// shardHealth is the TTL-cached replication state of one shard: the
// primary's per-table LSNs and each replica's catch-up LSNs.
type shardHealth struct {
	at time.Time
	// catVer is the primary's catalog version at the snapshot; it rides
	// on replica-routed subqueries as MinCatalogVersion so a replica
	// that has not replayed a schema change yet answers 409 (transient)
	// and the fan-out falls through to the primary.
	catVer   uint64
	primary  map[string]int64
	replicas map[string]map[string]int64
}

// Coordinator fans queries out over the shards: writes are routed by
// partition hash (or broadcast), reads are split by sql.PlanDistributed
// into shard subqueries plus a local merge fragment over an Exchange.
type Coordinator struct {
	cfg    Config
	client *Client

	mu sync.Mutex
	//ocht:guarded-by mu
	routes map[string]tableRoute
	//ocht:guarded-by mu
	health []shardHealth
}

// New builds a coordinator over the given cluster layout.
func New(cfg Config, client *Client) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("dist: coordinator needs at least one shard")
	}
	if cfg.StatusTTL <= 0 {
		cfg.StatusTTL = time.Second
	}
	if client == nil {
		client = &Client{}
	}
	return &Coordinator{
		cfg:    cfg,
		client: client,
		routes: map[string]tableRoute{},
		health: make([]shardHealth, len(cfg.Shards)),
	}, nil
}

// Result is a completed coordinator statement.
type Result struct {
	Columns      []string
	Rows         [][]exec.Value
	RowsAffected int64
}

// RenderCell formats one result value the way the single-node server's
// JSON encoder does, with one twist: the merge operator re-sums shard
// partials without the domain bounds a single node uses to prove
// SumFitsInt64, so merged sums are conservatively 128-bit even when the
// total is small. Narrow those back to a JSON number when they fit so
// distributed output matches single-node output; only genuinely large
// values render as decimal strings.
func RenderCell(v exec.Value) any {
	if v.Null {
		return nil
	}
	switch v.Typ {
	case vec.F64:
		return v.F
	case vec.Str:
		return v.S
	case vec.I128:
		if v.I128.IsInt64() {
			return v.I128.Int64()
		}
		return v.I128.String()
	default:
		return v.I
	}
}

// Query parses and runs one statement against the cluster.
func (c *Coordinator) Query(ctx context.Context, text string) (*Result, error) {
	stmt, err := sql.ParseStatement(text)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		return c.read(ctx, s)
	case *sql.CreateTableStmt:
		return c.create(ctx, s, text)
	case *sql.InsertStmt:
		return c.insert(ctx, s)
	case *sql.CopyStmt:
		return c.copyCSV(ctx, s)
	}
	return nil, fmt.Errorf("dist: unsupported statement %T", stmt)
}

// ---- write path ----------------------------------------------------

// create broadcasts the DDL to every shard primary (replicas replay it
// off the WAL) and records the table's routing.
func (c *Coordinator) create(ctx context.Context, s *sql.CreateTableStmt, text string) (*Result, error) {
	route := tableRoute{cols: s.Cols, partCol: -1}
	if !c.cfg.Broadcast[s.Name] {
		pc, err := pickPartitionCol(s.Name, s.Cols, c.cfg.PartitionKeys)
		if err != nil {
			return nil, err
		}
		route.partCol = pc
	}
	if err := c.execAll(ctx, text); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.routes[s.Name] = route
	c.mu.Unlock()
	return &Result{}, nil
}

// pickPartitionCol resolves the partition column: the configured
// override, else the first integer or string column (floats make poor
// hash keys), else column zero.
func pickPartitionCol(table string, cols []sql.ColDef, overrides map[string]string) (int, error) {
	if name, ok := overrides[table]; ok {
		for i, cd := range cols {
			if cd.Name == name {
				return i, nil
			}
		}
		return 0, fmt.Errorf("dist: table %s has no partition column %s", table, name)
	}
	for i, cd := range cols {
		if cd.Type != vec.F64 {
			return i, nil
		}
	}
	return 0, nil
}

// route returns the table's routing, learning it from the shards'
// /tables listing when the coordinator has not seen the CREATE (e.g.
// after a coordinator restart). Lazily learned routes assume nullable
// columns; hashing only needs names and types.
func (c *Coordinator) route(ctx context.Context, table string) (tableRoute, error) {
	c.mu.Lock()
	r, ok := c.routes[table]
	c.mu.Unlock()
	if ok {
		return r, nil
	}
	infos, _, err := c.client.Tables(ctx, c.cfg.Shards[0].Primary)
	if err != nil {
		return tableRoute{}, fmt.Errorf("dist: discovering table %s: %w", table, err)
	}
	for _, ti := range infos {
		if ti.Name != table {
			continue
		}
		types, terr := sql.ShardTypes(ti.Types)
		if terr != nil {
			return tableRoute{}, terr
		}
		cols := make([]sql.ColDef, len(ti.Columns))
		for i := range ti.Columns {
			cols[i] = sql.ColDef{Name: ti.Columns[i], Type: types[i], Nullable: true}
		}
		r = tableRoute{cols: cols, partCol: -1}
		if !c.cfg.Broadcast[table] {
			pc, perr := pickPartitionCol(table, cols, c.cfg.PartitionKeys)
			if perr != nil {
				return tableRoute{}, perr
			}
			r.partCol = pc
		}
		c.mu.Lock()
		c.routes[table] = r
		c.mu.Unlock()
		return r, nil
	}
	return tableRoute{}, fmt.Errorf("dist: unknown table %s", table)
}

// execAll runs one write statement on every shard primary concurrently.
func (c *Coordinator) execAll(ctx context.Context, text string) error {
	errs := make([]error, len(c.cfg.Shards))
	var wg sync.WaitGroup
	for i, sh := range c.cfg.Shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			_, errs[i] = c.client.Exec(ctx, base, text)
		}(i, sh.Primary)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("dist: shard %d: %w", i, err)
		}
	}
	return nil
}

// insert hash-routes each VALUES row to its shard and re-renders one
// INSERT per shard; broadcast tables get every row everywhere.
func (c *Coordinator) insert(ctx context.Context, s *sql.InsertStmt) (*Result, error) {
	route, err := c.route(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	if route.partCol < 0 {
		text := renderInsert(s.Table, s.Columns, s.Rows)
		if err := c.execAll(ctx, text); err != nil {
			return nil, err
		}
		return &Result{RowsAffected: int64(len(s.Rows))}, nil
	}

	// Locate the partition column inside the VALUES row layout.
	vi := route.partCol
	if s.Columns != nil {
		vi = -1
		for i, name := range s.Columns {
			if name == route.cols[route.partCol].Name {
				vi = i
				break
			}
		}
	}
	perShard := make([][][]sql.Node, len(c.cfg.Shards))
	for _, row := range s.Rows {
		si := 0
		if vi >= 0 {
			si, err = literalShard(row[vi], route.cols[route.partCol], len(c.cfg.Shards))
			if err != nil {
				return nil, fmt.Errorf("dist: %s: %w", s.Table, err)
			}
		}
		perShard[si] = append(perShard[si], row)
	}
	return c.scatterWrite(ctx, s.Table, s.Columns, perShard)
}

// scatterWrite ships each shard its slice of rows concurrently.
func (c *Coordinator) scatterWrite(ctx context.Context, table string, columns []string, perShard [][][]sql.Node) (*Result, error) {
	var total int64
	errs := make([]error, len(c.cfg.Shards))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := range perShard {
		if len(perShard[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := c.client.Exec(ctx, c.cfg.Shards[i].Primary, renderInsert(table, columns, perShard[i]))
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dist: shard %d: %w", i, err)
		}
	}
	return &Result{RowsAffected: total}, nil
}

// renderInsert rebuilds INSERT text for one shard's rows. VALUES only
// holds literals (and negations), which FormatNode round-trips exactly.
func renderInsert(table string, columns []string, rows [][]sql.Node) string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(table)
	if len(columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(columns, ", "))
		b.WriteString(")")
	}
	b.WriteString(" VALUES ")
	for ri, row := range rows {
		if ri > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for ci, n := range row {
			if ci > 0 {
				b.WriteString(", ")
			}
			b.WriteString(sql.FormatNode(n))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// literalShard hashes one VALUES literal to a shard. The canonical hash
// input depends on the column type so INSERT and COPY agree: integers as
// decimal, floats as shortest 'g' form, strings as raw bytes. NULL keys
// all land on shard 0.
func literalShard(n sql.Node, cd sql.ColDef, nshards int) (int, error) {
	neg := false
	if ng, ok := n.(*sql.NegOp); ok {
		neg = true
		n = ng.L
	}
	switch e := n.(type) {
	case *sql.NullLit:
		return 0, nil
	case *sql.IntLit:
		v := e.V
		if neg {
			v = -v
		}
		return cellShard(strconv.FormatInt(v, 10), cd, nshards)
	case *sql.FloatLit:
		v := e.V
		if neg {
			v = -v
		}
		return cellShard(strconv.FormatFloat(v, 'g', -1, 64), cd, nshards)
	case *sql.StrLit:
		return int(fnv64(e.V) % uint64(nshards)), nil
	}
	return 0, fmt.Errorf("partition key must be a literal, got %T", n)
}

// cellShard hashes one canonical cell string per the column type.
func cellShard(cell string, cd sql.ColDef, nshards int) (int, error) {
	switch cd.Type {
	case vec.Str:
		return int(fnv64(cell) % uint64(nshards)), nil
	case vec.F64:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return 0, fmt.Errorf("column %s: %q is not a number", cd.Name, cell)
		}
		return int(fnv64(strconv.FormatFloat(f, 'g', -1, 64)) % uint64(nshards)), nil
	default:
		v, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("column %s: %q is not an integer", cd.Name, cell)
		}
		return int(fnv64(strconv.FormatInt(v, 10)) % uint64(nshards)), nil
	}
}

// fnv64 is FNV-1a; the routing hash must be stable across coordinator
// versions because it determines data placement.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// copyCSV bulk-loads a coordinator-local CSV by routing each record to
// its shard and shipping per-shard INSERT batches through the ordinary
// ingest path, so sharded COPY and sharded INSERT are the same machinery.
func (c *Coordinator) copyCSV(ctx context.Context, s *sql.CopyStmt) (*Result, error) {
	route, err := c.route(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, fmt.Errorf("dist: COPY %s: %w", s.Table, err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	if s.Delimiter != 0 {
		r.Comma = s.Delimiter
	}
	r.ReuseRecord = true

	var header []string
	if s.Header {
		rec, herr := r.Read()
		if herr != nil {
			return nil, fmt.Errorf("dist: COPY %s: reading header: %w", s.Table, herr)
		}
		header = append(header, rec...)
		for _, name := range header {
			found := false
			for _, cd := range route.cols {
				if cd.Name == name {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("dist: COPY %s: no column %s", s.Table, name)
			}
		}
	} else {
		for _, cd := range route.cols {
			header = append(header, cd.Name)
		}
	}
	colDef := make([]sql.ColDef, len(header))
	for i, name := range header {
		for _, cd := range route.cols {
			if cd.Name == name {
				colDef[i] = cd
			}
		}
	}
	partIdx := -1
	for i, name := range header {
		if route.partCol >= 0 && name == route.cols[route.partCol].Name {
			partIdx = i
		}
	}

	var total int64
	perShard := make([][][]sql.Node, len(c.cfg.Shards))
	flush := func() error {
		res, ferr := c.scatterWrite(ctx, s.Table, header, perShard)
		if ferr != nil {
			return ferr
		}
		total += res.RowsAffected
		for i := range perShard {
			perShard[i] = perShard[i][:0]
		}
		return nil
	}
	const batchRows = 4096
	batched := 0
	for {
		rec, rerr := r.Read()
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return nil, fmt.Errorf("dist: COPY %s: %w", s.Table, rerr)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dist: COPY %s: record has %d fields, want %d", s.Table, len(rec), len(header))
		}
		row := make([]sql.Node, len(rec))
		for i, cell := range rec {
			n, nerr := csvLiteral(cell, colDef[i])
			if nerr != nil {
				return nil, fmt.Errorf("dist: COPY %s: %w", s.Table, nerr)
			}
			row[i] = n
		}
		si := 0
		if route.partCol >= 0 && partIdx >= 0 && rec[partIdx] != "" {
			si, err = cellShard(rec[partIdx], route.cols[route.partCol], len(c.cfg.Shards))
			if err != nil {
				return nil, fmt.Errorf("dist: COPY %s: %w", s.Table, err)
			}
		}
		if route.partCol < 0 {
			for i := range perShard {
				perShard[i] = append(perShard[i], row)
			}
		} else {
			perShard[si] = append(perShard[si], row)
		}
		batched++
		if batched >= batchRows {
			if err := flush(); err != nil {
				return nil, err
			}
			batched = 0
		}
	}
	if batched > 0 {
		if err := flush(); err != nil {
			return nil, err
		}
	}
	if route.partCol < 0 {
		total /= int64(len(c.cfg.Shards))
	}
	return &Result{RowsAffected: total}, nil
}

// csvLiteral converts one CSV cell into the literal node the shard's
// INSERT path will coerce, mirroring the engine's own CSV rules: empty
// is NULL for nullable columns and the empty string for NOT NULL text.
func csvLiteral(cell string, cd sql.ColDef) (sql.Node, error) {
	if cell == "" {
		if cd.Nullable {
			return &sql.NullLit{}, nil
		}
		if cd.Type == vec.Str {
			return &sql.StrLit{V: ""}, nil
		}
		return nil, fmt.Errorf("empty cell for NOT NULL %s column %s", cd.Type, cd.Name)
	}
	switch cd.Type {
	case vec.Str:
		return &sql.StrLit{V: cell}, nil
	case vec.F64:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return nil, fmt.Errorf("column %s: %q is not a number", cd.Name, cell)
		}
		return &sql.FloatLit{V: f}, nil
	default:
		v, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("column %s: %q is not an integer", cd.Name, cell)
		}
		return &sql.IntLit{V: v}, nil
	}
}

// ---- read path -----------------------------------------------------

// read splits the SELECT, scatters the shard subquery, and runs the
// merge fragment locally over an Exchange of the gathered rows.
func (c *Coordinator) read(ctx context.Context, stmt *sql.SelectStmt) (*Result, error) {
	d, err := sql.PlanDistributed(stmt)
	if err != nil {
		return nil, err
	}
	eps, vers := c.endpoints(ctx, sql.JoinTables(stmt))
	req := server.ShardRequest{SQL: d.ShardSQL, Workers: c.cfg.Workers}
	if c.cfg.Fanout.ShardTimeout > 0 {
		req.TimeoutMs = int(c.cfg.Fanout.ShardTimeout / time.Millisecond)
	}
	calls := make([]ShardCall, len(c.cfg.Shards))
	for i := range calls {
		calls[i] = ShardCall{Endpoints: eps[i], Req: req}
		// Gate replica-routed subqueries on the primary's catalog
		// version: a replica still replaying a schema change answers
		// 409 and the fan-out advances to the primary.
		calls[i].Req.MinCatalogVersion = vers[i]
	}
	parts, err := Fanout(ctx, c.client, c.cfg.Fanout, calls)
	if err != nil {
		return nil, err
	}

	names, types, rows, err := unifyParts(parts)
	if err != nil {
		return nil, err
	}
	root, order, limit, err := d.Merge(exec.NewExchange(names, types, rows))
	if err != nil {
		return nil, err
	}
	qc := exec.NewQCtx(c.cfg.Flags)
	qc.Workers = 1 // the merge fragment is small; shards did the heavy lifting
	res, err := exec.RunCtx(ctx, qc, root)
	if err != nil {
		return nil, err
	}
	if len(order) > 0 {
		res.OrderBy(order...)
	}
	if limit >= 0 {
		res.Limit(limit)
	}
	return &Result{Columns: res.Names, Rows: res.Rows}, nil
}

// unifyParts unions the shard results under one column typing. Shards
// may disagree on integer width — one shard's value domain can prove a
// SUM fits int64 while another's cannot — so integer columns widen to
// the largest width seen, with I128 cells rebuilt from the narrow form.
func unifyParts(parts []*ShardResult) ([]string, []vec.Type, [][]exec.Value, error) {
	names := parts[0].Columns
	types := append([]vec.Type(nil), parts[0].Types...)
	nrows := 0
	for _, p := range parts[1:] {
		if len(p.Types) != len(types) {
			return nil, nil, nil, fmt.Errorf("dist: shard arity mismatch: %d vs %d columns", len(p.Types), len(types))
		}
		for i, t := range p.Types {
			w, err := widen(types[i], t)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("dist: column %s: %w", names[i], err)
			}
			types[i] = w
		}
	}
	for _, p := range parts {
		nrows += len(p.Rows)
	}
	rows := make([][]exec.Value, 0, nrows)
	for _, p := range parts {
		for _, r := range p.Rows {
			for i := range r {
				if types[i] == vec.I128 && r[i].Typ != vec.I128 {
					r[i] = exec.Value{Typ: vec.I128, Null: r[i].Null, I128: i128.FromInt64(r[i].I)}
				}
			}
			rows = append(rows, r)
		}
	}
	return names, types, rows, nil
}

// widen merges two column types across shards.
func widen(a, b vec.Type) (vec.Type, error) {
	if a == b {
		return a, nil
	}
	ra, ok1 := intRank[a]
	rb, ok2 := intRank[b]
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("type mismatch: %v vs %v", a, b)
	}
	if ra > rb {
		return a, nil
	}
	return b, nil
}

var intRank = map[vec.Type]int{vec.Bool: 0, vec.I8: 1, vec.I16: 2, vec.I32: 3, vec.I64: 4, vec.I128: 5}

// endpoints computes each shard's candidate endpoints for a read over
// the given tables: caught-up replicas first (when enabled), the
// primary as the final fallback.
func (c *Coordinator) endpoints(ctx context.Context, tables []string) ([][]string, []uint64) {
	out := make([][]string, len(c.cfg.Shards))
	vers := make([]uint64, len(c.cfg.Shards))
	for i, sh := range c.cfg.Shards {
		if !c.cfg.ReplicaReads || len(sh.Replicas) == 0 {
			out[i] = []string{sh.Primary}
			continue
		}
		h := c.shardHealth(ctx, i)
		vers[i] = h.catVer
		var eps []string
		for _, rep := range sh.Replicas {
			if caughtUp(h, rep, tables) {
				eps = append(eps, rep)
			}
		}
		out[i] = append(eps, sh.Primary)
	}
	return out, vers
}

// caughtUp reports whether replica rep has replayed every queried table
// up to the primary's LSN as of the last health poll.
func caughtUp(h shardHealth, rep string, tables []string) bool {
	rl, ok := h.replicas[rep]
	if !ok || h.primary == nil {
		return false
	}
	for _, t := range tables {
		if rl[t] < h.primary[t] {
			return false
		}
	}
	return true
}

// shardHealth returns the shard's replication state, refreshing the
// TTL-cached snapshot from the primary's /wal/status and each replica's
// /replication/status when stale.
func (c *Coordinator) shardHealth(ctx context.Context, i int) shardHealth {
	c.mu.Lock()
	h := c.health[i]
	c.mu.Unlock()
	if h.at.After(time.Now().Add(-c.cfg.StatusTTL)) {
		return h
	}

	sh := c.cfg.Shards[i]
	fresh := shardHealth{at: time.Now(), replicas: map[string]map[string]int64{}}
	if lsns, ver, err := c.client.WALStatus(ctx, sh.Primary); err == nil {
		fresh.primary = lsns
		fresh.catVer = ver
		for _, rep := range sh.Replicas {
			if rs, rerr := c.client.ReplicationStatus(ctx, rep); rerr == nil {
				fresh.replicas[rep] = rs.Tables
			}
		}
	}
	c.mu.Lock()
	c.health[i] = fresh
	c.mu.Unlock()
	return fresh
}

// ReplicaState exposes the cached per-replica catch-up LSNs (primary
// LSN map first, then one map per replica endpoint), for operators and
// the coordinator's status endpoint.
func (c *Coordinator) ReplicaState() []map[string]map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]map[string]map[string]int64, len(c.health))
	for i, h := range c.health {
		m := map[string]map[string]int64{c.cfg.Shards[i].Primary: h.primary}
		for rep, lsns := range h.replicas {
			m[rep] = lsns
		}
		out[i] = m
	}
	return out
}
