package dist

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/ingest"
	"ocht/internal/server"
	"ocht/internal/sql"
	"ocht/internal/storage"
)

// shardProc is one in-test engine process: catalog, WAL-backed engine,
// HTTP server.
type shardProc struct {
	cat *storage.Catalog
	eng *ingest.Engine
	ts  *httptest.Server
}

func startShard(t *testing.T, cfg server.Config) *shardProc {
	t.Helper()
	cat := storage.NewCatalog()
	eng, err := ingest.Open(t.TempDir(), cat, ingest.Config{DisableSealer: true})
	if err != nil {
		t.Fatalf("open shard engine: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	cfg.Flags = core.All()
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	cfg.Ingest = eng
	srv := server.New(cat, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &shardProc{cat: cat, eng: eng, ts: ts}
}

// render sorts and flattens coordinator rows for order-insensitive
// comparison; ordered queries compare unsorted.
func render(rows [][]exec.Value, ordered bool) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += "|"
			}
			s += fmt.Sprint(RenderCell(v))
		}
		out[i] = s
	}
	if !ordered {
		sort.Strings(out)
	}
	return out
}

func renderRef(res *exec.Result, ordered bool) []string {
	rows := make([][]exec.Value, len(res.Rows))
	copy(rows, res.Rows)
	return render(rows, ordered)
}

// TestDistributedEquivalence is the tentpole's oracle: the same writes
// through the coordinator at 1, 2 and 4 shards must answer every query
// identically to a single-node engine holding all the data.
func TestDistributedEquivalence(t *testing.T) {
	writes := []string{
		"CREATE TABLE ord (okey BIGINT NOT NULL, status TEXT, price DOUBLE, qty BIGINT)",
		"CREATE TABLE dim (dstatus TEXT NOT NULL, region TEXT NOT NULL)",
		"INSERT INTO dim VALUES ('O', 'west'), ('F', 'east'), ('P', 'west')",
	}
	statuses := []string{"O", "F", "P"}
	for i := 0; i < 300; i += 25 {
		stmt := fmt.Sprintf("INSERT INTO ord VALUES (%d, '%s', %d.5, %d)", i, statuses[i%3], i%40, i%7)
		for j := i + 1; j < i+25; j++ {
			cell := fmt.Sprintf("'%s'", statuses[j%3])
			if j%11 == 0 {
				cell = "NULL"
			}
			qty := fmt.Sprintf("%d", j%7)
			if j%13 == 0 {
				qty = fmt.Sprintf("(- %d)", j%7)
			}
			stmt += fmt.Sprintf(", (%d, %s, %d.5, %s)", j, cell, j%40, qty)
		}
		writes = append(writes, stmt)
	}

	queries := []struct {
		sql     string
		ordered bool
	}{
		{"SELECT COUNT(*) FROM ord", false},
		{"SELECT status, COUNT(*), SUM(qty), MIN(qty), MAX(okey) FROM ord GROUP BY status", false},
		{"SELECT status, AVG(okey) FROM ord WHERE okey < 200 GROUP BY status", false},
		{"SELECT status, SUM(qty) FROM ord GROUP BY status HAVING SUM(qty) > 20", false},
		{"SELECT COUNT(*) FROM ord WHERE status IS NULL", false},
		{"SELECT okey, price FROM ord WHERE qty = 3 ORDER BY okey LIMIT 7", true},
		{"SELECT region, SUM(qty) FROM ord JOIN dim ON status = dstatus GROUP BY region", false},
		{"SELECT status FROM ord WHERE okey = 131", false},
		{"SELECT AVG(qty) FROM ord", false},
	}

	// Single-node reference.
	refCat := storage.NewCatalog()
	refEng, err := ingest.Open(t.TempDir(), refCat, ingest.Config{DisableSealer: true})
	if err != nil {
		t.Fatalf("open reference engine: %v", err)
	}
	defer refEng.Close()
	for _, w := range writes {
		stmt, perr := sql.ParseStatement(w)
		if perr != nil {
			t.Fatalf("parse %q: %v", w, perr)
		}
		if _, aerr := refEng.Apply(stmt); aerr != nil {
			t.Fatalf("apply %q: %v", w, aerr)
		}
	}

	for _, nShards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", nShards), func(t *testing.T) {
			var shards []ShardConfig
			for i := 0; i < nShards; i++ {
				p := startShard(t, server.Config{})
				shards = append(shards, ShardConfig{Primary: p.ts.URL})
			}
			coord, err := New(Config{
				Shards:    shards,
				Broadcast: map[string]bool{"dim": true},
				Flags:     core.All(),
				Fanout:    FanoutConfig{ShardTimeout: 30 * time.Second, Retries: 1},
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for _, w := range writes {
				if _, werr := coord.Query(ctx, w); werr != nil {
					t.Fatalf("coordinator write %q: %v", w, werr)
				}
			}
			for _, q := range queries {
				got, gerr := coord.Query(ctx, q.sql)
				if gerr != nil {
					t.Fatalf("distributed %q: %v", q.sql, gerr)
				}
				want, rerr := sql.Run(q.sql, refCat, exec.NewQCtx(core.All()))
				if rerr != nil {
					t.Fatalf("reference %q: %v", q.sql, rerr)
				}
				g := render(got.Rows, q.ordered)
				w := renderRef(want, q.ordered)
				if fmt.Sprint(g) != fmt.Sprint(w) {
					t.Errorf("%q diverged\n got: %v\nwant: %v", q.sql, g, w)
				}
			}
		})
	}
}

// TestCoordinatorCopy routes a coordinator-local CSV through the sharded
// write path and checks the load against a single-node COPY.
func TestCoordinatorCopy(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "in.csv")
	data := "id,name,score\n"
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("n%d", i%17)
		if i%19 == 0 {
			name = ""
		}
		data += fmt.Sprintf("%d,%s,%d.25\n", i, name, i%9)
	}
	if err := os.WriteFile(csvPath, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	const create = "CREATE TABLE cp (id BIGINT NOT NULL, name TEXT, score DOUBLE)"

	refCat := storage.NewCatalog()
	refEng, err := ingest.Open(t.TempDir(), refCat, ingest.Config{DisableSealer: true})
	if err != nil {
		t.Fatal(err)
	}
	defer refEng.Close()
	for _, w := range []string{create, fmt.Sprintf("COPY cp FROM '%s' WITH HEADER", csvPath)} {
		stmt, _ := sql.ParseStatement(w)
		if _, aerr := refEng.Apply(stmt); aerr != nil {
			t.Fatalf("reference %q: %v", w, aerr)
		}
	}

	var shards []ShardConfig
	for i := 0; i < 3; i++ {
		shards = append(shards, ShardConfig{Primary: startShard(t, server.Config{}).ts.URL})
	}
	coord, err := New(Config{Shards: shards, Flags: core.All()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := coord.Query(ctx, create); err != nil {
		t.Fatal(err)
	}
	res, err := coord.Query(ctx, fmt.Sprintf("COPY cp FROM '%s' WITH HEADER", csvPath))
	if err != nil {
		t.Fatalf("distributed COPY: %v", err)
	}
	if res.RowsAffected != 100 {
		t.Fatalf("COPY loaded %d rows, want 100", res.RowsAffected)
	}
	for _, q := range []string{
		"SELECT COUNT(*) FROM cp",
		"SELECT name, COUNT(*), SUM(id) FROM cp GROUP BY name",
		"SELECT COUNT(*) FROM cp WHERE name IS NULL",
		"SELECT MIN(id), MAX(id), AVG(id) FROM cp",
		"SELECT COUNT(*) FROM cp WHERE score > 4.0",
	} {
		got, gerr := coord.Query(ctx, q)
		if gerr != nil {
			t.Fatalf("distributed %q: %v", q, gerr)
		}
		want, rerr := sql.Run(q, refCat, exec.NewQCtx(core.All()))
		if rerr != nil {
			t.Fatalf("reference %q: %v", q, rerr)
		}
		if fmt.Sprint(render(got.Rows, false)) != fmt.Sprint(renderRef(want, false)) {
			t.Errorf("%q diverged\n got: %v\nwant: %v", q, render(got.Rows, false), renderRef(want, false))
		}
	}
}

// TestReplicaReadsRouting checks the read-routing half of replication:
// with a caught-up replica and replica reads enabled, shard subqueries
// land on the replica, not the primary, and still answer correctly.
func TestReplicaReadsRouting(t *testing.T) {
	primary := startShard(t, server.Config{})
	ctx := context.Background()
	cl := &Client{}
	if _, err := cl.Exec(ctx, primary.ts.URL, "CREATE TABLE rr (k BIGINT NOT NULL, v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(ctx, primary.ts.URL, "INSERT INTO rr VALUES (1, 10), (2, 20), (3, NULL)"); err != nil {
		t.Fatal(err)
	}

	// Replica engine tails the primary, then serves behind a counting
	// proxy so the test can prove reads landed on it.
	rcat := storage.NewCatalog()
	reng, err := ingest.Open(t.TempDir(), rcat, ingest.Config{DisableSealer: true})
	if err != nil {
		t.Fatal(err)
	}
	defer reng.Close()
	repl := &Replica{Primary: primary.ts.URL, Engine: reng}
	if _, err := repl.CatchUp(ctx); err != nil {
		t.Fatalf("catch up: %v", err)
	}
	rsrv := server.New(rcat, server.Config{
		Flags: core.All(), Workers: 1, Ingest: reng, ReadOnly: true,
		ReplicaStatus: repl.Status,
	})
	var replicaHits atomic.Int64
	rts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/shard/query" {
			replicaHits.Add(1)
		}
		rsrv.Handler().ServeHTTP(w, r)
	}))
	defer rts.Close()

	coord, err := New(Config{
		Shards:       []ShardConfig{{Primary: primary.ts.URL, Replicas: []string{rts.URL}}},
		Flags:        core.All(),
		ReplicaReads: true,
		StatusTTL:    time.Minute,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Query(ctx, "SELECT k, v FROM rr ORDER BY k")
	if err != nil {
		t.Fatalf("replica-routed read: %v", err)
	}
	if got := fmt.Sprint(render(res.Rows, true)); got != "[1|10 2|20 3|<nil>]" {
		t.Fatalf("replica rows = %s", got)
	}
	if replicaHits.Load() == 0 {
		t.Fatal("read did not hit the replica")
	}

	// A stale replica must be skipped: write to the primary, expire the
	// health cache, and the next read must fall back to the primary's
	// data (the replica has not replayed the new rows).
	if _, err := cl.Exec(ctx, primary.ts.URL, "INSERT INTO rr VALUES (4, 40)"); err != nil {
		t.Fatal(err)
	}
	coord2, err := New(Config{
		Shards:       []ShardConfig{{Primary: primary.ts.URL, Replicas: []string{rts.URL}}},
		Flags:        core.All(),
		ReplicaReads: true,
		StatusTTL:    time.Minute,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err = coord2.Query(ctx, "SELECT COUNT(*) FROM rr")
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(render(res.Rows, false)); got != "[4]" {
		t.Fatalf("post-write count = %s, want [4] (stale replica served the read?)", got)
	}
}

// scriptedShard fakes a shard endpoint with a canned per-call behavior
// sequence.
func scriptedShard(t *testing.T, script func(call int, w http.ResponseWriter, r *http.Request)) *httptest.Server {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the net/http server only watches for
		// client disconnects (canceling r.Context()) once the handler has
		// consumed the request body, and the cancellation tests rely on it.
		io.Copy(io.Discard, r.Body)
		script(int(calls.Add(1))-1, w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func okShardResponse(w http.ResponseWriter, rows [][]any) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"columns":["a"],"types":["I64"],"rows":%s,"row_count":%d}`,
		jsonRows(rows), len(rows))
}

func jsonRows(rows [][]any) string {
	if len(rows) == 0 {
		return "[]"
	}
	s := "["
	for i, r := range rows {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("[%v]", r[0])
	}
	return s + "]"
}

// TestFanoutRetriesTransient proves a shard that fails transiently twice
// still answers within the retry budget, and that a fatal error is not
// retried.
func TestFanoutRetriesTransient(t *testing.T) {
	flaky := scriptedShard(t, func(call int, w http.ResponseWriter, r *http.Request) {
		if call < 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"restarting"}`)
			return
		}
		okShardResponse(w, [][]any{{7}})
	})
	cl := &Client{}
	cfg := FanoutConfig{Retries: 2, RetryBackoff: time.Millisecond}
	res, err := Fanout(context.Background(), cl, cfg,
		[]ShardCall{{Endpoints: []string{flaky.URL}, Req: server.ShardRequest{SQL: "SELECT 1"}}})
	if err != nil {
		t.Fatalf("fanout with retries: %v", err)
	}
	if len(res[0].Rows) != 1 || res[0].Rows[0][0].I != 7 {
		t.Fatalf("rows = %+v", res[0].Rows)
	}

	var fatalCalls atomic.Int64
	fatal := scriptedShard(t, func(call int, w http.ResponseWriter, r *http.Request) {
		fatalCalls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"no such table"}`)
	})
	_, err = Fanout(context.Background(), cl, cfg,
		[]ShardCall{{Endpoints: []string{fatal.URL}, Req: server.ShardRequest{SQL: "SELECT 1"}}})
	if err == nil {
		t.Fatal("fatal shard error did not surface")
	}
	if n := fatalCalls.Load(); n != 1 {
		t.Fatalf("fatal error was retried %d times", n-1)
	}
}

// TestFanoutHedgesStragglers proves the hedge fires: a straggling first
// endpoint is overtaken by the hedge to the second.
func TestFanoutHedgesStragglers(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	slow := scriptedShard(t, func(call int, w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		okShardResponse(w, [][]any{{1}})
	})
	fast := scriptedShard(t, func(call int, w http.ResponseWriter, r *http.Request) {
		okShardResponse(w, [][]any{{2}})
	})
	cl := &Client{}
	start := time.Now()
	res, err := Fanout(context.Background(), cl, FanoutConfig{HedgeDelay: 20 * time.Millisecond},
		[]ShardCall{{Endpoints: []string{slow.URL, fast.URL}, Req: server.ShardRequest{SQL: "SELECT 1"}}})
	if err != nil {
		t.Fatalf("hedged fanout: %v", err)
	}
	if res[0].Rows[0][0].I != 2 {
		t.Fatalf("hedge did not win: got %d", res[0].Rows[0][0].I)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("hedged call took %v, straggler was awaited", d)
	}
}

// TestFanoutCancelsSiblingsOnFatal is the cancellation satellite: the
// first fatal shard error must cancel the in-flight sibling subqueries
// rather than waiting them out.
func TestFanoutCancelsSiblingsOnFatal(t *testing.T) {
	siblingCanceled := make(chan struct{})
	hang := scriptedShard(t, func(call int, w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		close(siblingCanceled)
	})
	fatal := scriptedShard(t, func(call int, w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"boom"}`)
	})
	cl := &Client{}
	done := make(chan error, 1)
	go func() {
		_, err := Fanout(context.Background(), cl, FanoutConfig{},
			[]ShardCall{
				{Endpoints: []string{hang.URL}, Req: server.ShardRequest{SQL: "SELECT 1"}},
				{Endpoints: []string{fatal.URL}, Req: server.ShardRequest{SQL: "SELECT 1"}},
			})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("fanout succeeded despite fatal shard")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fanout waited out the hanging sibling")
	}
	select {
	case <-siblingCanceled:
	case <-time.After(10 * time.Second):
		t.Fatal("sibling subquery was not canceled")
	}
}

// TestCoordinatorShardDown checks the partial-failure contract: with a
// shard down, a distributed query fails with a clean error naming the
// shard instead of returning partial data.
func TestCoordinatorShardDown(t *testing.T) {
	up := startShard(t, server.Config{})
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close() // connection refused from here on

	coord, err := New(Config{
		Shards: []ShardConfig{{Primary: up.ts.URL}, {Primary: down.URL}},
		Flags:  core.All(),
		Fanout: FanoutConfig{Retries: 1, RetryBackoff: time.Millisecond},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := (&Client{}).Exec(ctx, up.ts.URL, "CREATE TABLE pd (x BIGINT NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	_, err = coord.Query(ctx, "SELECT COUNT(*) FROM pd")
	if err == nil {
		t.Fatal("query over a dead shard returned data")
	}
	if got := err.Error(); !strings.Contains(got, "shard 1") {
		t.Fatalf("error %q does not name the failed shard", got)
	}
}
