package dist

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ocht/internal/server"
)

// FanoutConfig tunes the scatter phase of a distributed query.
type FanoutConfig struct {
	// ShardTimeout bounds each individual shard attempt (0 = rely on the
	// parent context only).
	ShardTimeout time.Duration
	// Retries is how many additional attempts a shard gets after a
	// transient failure.
	Retries int
	// RetryBackoff is the wait before the first retry; it doubles per
	// attempt.
	RetryBackoff time.Duration
	// HedgeDelay starts a duplicate request at the shard's next endpoint
	// when the current one has not answered in time (0 = no hedging).
	// Hedging trades duplicate work on the slow tail for latency: shard
	// subqueries are read-only and idempotent, so the duplicate is safe.
	HedgeDelay time.Duration
}

// ShardCall is one shard's slice of the scatter: the subquery plus the
// endpoints that can serve it in preference order (caught-up replicas
// first when replica reads are enabled, the primary as the fallback).
type ShardCall struct {
	Endpoints []string
	Req       server.ShardRequest
}

// Fanout scatters the calls concurrently and gathers every shard's
// result. The first fatal shard error cancels all in-flight siblings —
// there is no point finishing a scatter that can no longer produce a
// complete answer — and cancellation of ctx (e.g. the client hung up on
// the coordinator) propagates into every outstanding shard request.
func Fanout(ctx context.Context, c *Client, cfg FanoutConfig, calls []ShardCall) ([]*ShardResult, error) {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*ShardResult, len(calls))
	errs := make([]error, len(calls))
	var wg sync.WaitGroup
	for i := range calls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.callShard(fctx, cfg, calls[i])
			if err != nil {
				errs[i] = err
				cancel() // first failure: stop paying for the rest
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	// Prefer reporting the root cause over the "context canceled" noise
	// that cancellation fans out to the sibling shards.
	var firstErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("shard %d: %w", i, err)
		if firstErr == nil {
			firstErr = wrapped
		}
		if !isCancel(err) {
			firstErr = wrapped
			break
		}
	}
	if firstErr != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, firstErr
	}
	return results, nil
}

func isCancel(err error) bool {
	return err == context.Canceled || err == context.DeadlineExceeded
}

// callShard runs one shard's subquery to completion: hedged across the
// shard's endpoints, retried with exponential backoff on transient
// failure, abandoned immediately on a fatal error (a query that failed
// to compile fails everywhere — retrying cannot fix it).
func (c *Client) callShard(ctx context.Context, cfg FanoutConfig, call ShardCall) (*ShardResult, error) {
	if len(call.Endpoints) == 0 {
		return nil, fmt.Errorf("dist: shard has no endpoints")
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		res, err := c.hedged(ctx, cfg, call)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !Transient(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// hedged issues the subquery to call.Endpoints[0], starting the next
// endpoint when HedgeDelay passes without an answer or immediately when
// an endpoint fails transiently. The first success wins; a fatal error
// from any endpoint ends the round (the same query fails the same way
// everywhere).
func (c *Client) hedged(ctx context.Context, cfg FanoutConfig, call ShardCall) (*ShardResult, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // reels in the losing duplicate

	type outcome struct {
		res *ShardResult
		err error
		ep  string
	}
	outcomes := make(chan outcome, len(call.Endpoints))
	started := 0
	launch := func() {
		ep := call.Endpoints[started]
		started++
		go func() {
			attempt := hctx
			if cfg.ShardTimeout > 0 {
				var acancel context.CancelFunc
				attempt, acancel = context.WithTimeout(hctx, cfg.ShardTimeout)
				defer acancel()
			}
			res, err := c.ShardQuery(attempt, ep, call.Req)
			outcomes <- outcome{res: res, err: err, ep: ep}
		}()
	}

	launch()
	inflight := 1
	var hedgeAt <-chan time.Time
	if cfg.HedgeDelay > 0 && started < len(call.Endpoints) {
		t := time.NewTimer(cfg.HedgeDelay)
		defer t.Stop()
		hedgeAt = t.C
	}
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedgeAt:
			hedgeAt = nil
			if started < len(call.Endpoints) {
				launch()
				inflight++
			}
		case o := <-outcomes:
			inflight--
			switch {
			case o.err == nil:
				return o.res, nil
			case !Transient(o.err):
				return nil, fmt.Errorf("%s: %w", o.ep, o.err)
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", o.ep, o.err)
			}
			// A transient failure frees this slot: move on to the next
			// endpoint right away rather than waiting out the hedge timer.
			if started < len(call.Endpoints) {
				launch()
				inflight++
			} else if inflight == 0 {
				return nil, firstErr
			}
		}
	}
}
