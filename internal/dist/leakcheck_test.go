package dist

import (
	"runtime"
	"testing"
	"time"
)

// leakCheck is the runtime twin of the goctx analyzer: it snapshots the
// goroutine count and, at cleanup, polls until the count returns to the
// snapshot (finished goroutines unwind asynchronously) or a deadline
// passes — at which point some spawned goroutine had no working shutdown
// path. Call it at the top of any test that exercises the fan-out or
// replica background machinery.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// TestReplicaRunStopNoLeak drives the replica poll loop against an
// unreachable primary and checks Stop reclaims every goroutine Run
// spawned — including the per-pass cancellation watcher.
func TestReplicaRunStopNoLeak(t *testing.T) {
	leakCheck(t)
	r := &Replica{
		Primary:  "http://127.0.0.1:1", // nothing listens: every pass errors
		Interval: 5 * time.Millisecond,
	}
	go r.Run()
	time.Sleep(50 * time.Millisecond)
	r.Stop()
}
