package dist

import (
	"context"
	"sync"
	"time"

	"ocht/internal/ingest"
	"ocht/internal/server"
)

// Replica tails a primary's WAL over HTTP: it polls /wal/status for new
// work, pulls segments through /wal/export, and replays them into its
// local engine via ApplySegment — the same code path crash recovery
// uses, so a replica that dies mid-replay recovers like any engine.
type Replica struct {
	// Primary is the base URL of the primary being tailed.
	Primary string
	// Engine is the local engine segments replay into.
	Engine *ingest.Engine
	// Client is the HTTP client (nil = default).
	Client *Client
	// Interval is the poll period when caught up (default 250ms).
	Interval time.Duration
	// SegmentRows caps rows per pulled segment (0 = primary's default).
	SegmentRows int

	mu sync.Mutex
	//ocht:guarded-by mu
	caughtUp bool
	//ocht:guarded-by mu
	lastErr string

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// CatchUp performs one full pull pass: for every table the primary
// reports, pull and apply segments until the replica reaches the LSN
// the status poll observed. Returns whether the pass found nothing
// missing (the replica was already caught up when it started).
func (r *Replica) CatchUp(ctx context.Context) (bool, error) {
	targets, _, err := r.client().WALStatus(ctx, r.Primary)
	if err != nil {
		r.note(false, err)
		return false, err
	}
	clean := true
	for table, target := range targets {
		lsn, _ := r.Engine.TableLSN(table)
		if lsn < target {
			clean = false
		}
		for lsn < target {
			seg, next, gerr := r.client().WALExport(ctx, r.Primary, table, lsn, r.SegmentRows)
			if gerr != nil {
				r.note(false, gerr)
				return false, gerr
			}
			_, newLSN, aerr := r.Engine.ApplySegment(table, seg)
			if aerr != nil {
				r.note(false, aerr)
				return false, aerr
			}
			if newLSN == lsn && next == lsn {
				break // the primary has nothing past lsn; avoid spinning
			}
			lsn = newLSN
		}
	}
	r.note(true, nil)
	return clean, nil
}

func (r *Replica) client() *Client {
	if r.Client != nil {
		return r.Client
	}
	return &Client{}
}

func (r *Replica) note(caughtUp bool, err error) {
	r.mu.Lock()
	r.caughtUp = caughtUp
	if err != nil {
		r.lastErr = err.Error()
	} else {
		r.lastErr = ""
	}
	r.mu.Unlock()
}

// Run polls until Stop is called. Transient pull errors (the primary may
// be restarting) are recorded in the status and retried next period;
// non-transient errors — a protocol mismatch, a rejected segment — still
// retry (the replica has no other recovery path) but on a stretched
// interval, so a wedged replica doesn't hammer the primary while the
// status endpoint reports the error.
func (r *Replica) Run() {
	r.mu.Lock()
	if r.stop == nil {
		r.stop = make(chan struct{})
		r.done = make(chan struct{})
	}
	stop, done := r.stop, r.done
	r.mu.Unlock()
	defer close(done)

	interval := r.Interval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	for {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			select {
			case <-stop:
				cancel()
			case <-ctx.Done():
			}
		}()
		_, err := r.CatchUp(ctx)
		cancel()
		wait := interval
		if err != nil && !Transient(err) {
			wait = interval * 8
		}
		select {
		case <-stop:
			return
		case <-time.After(wait):
		}
	}
}

// Stop ends Run and waits for the in-flight pass to finish.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.stop == nil {
		r.stop = make(chan struct{})
		r.done = make(chan struct{})
		close(r.done)
	}
	stop, done := r.stop, r.done
	r.mu.Unlock()
	r.stopOnce.Do(func() { close(stop) })
	<-done
}

// Status implements the server's Config.ReplicaStatus hook.
func (r *Replica) Status() server.ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return server.ReplicaStatus{
		Primary:  r.Primary,
		Tables:   r.Engine.TableLSNs(),
		CaughtUp: r.caughtUp,
		LastErr:  r.lastErr,
	}
}
