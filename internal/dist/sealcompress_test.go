package dist

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/server"
	"ocht/internal/sql"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// sealCompressedTable seals the given row subset of a synthetic orders-like
// table under the given compression policy.
func sealCompressedTable(mode storage.CompressMode, idx []int) *storage.Table {
	storage.SetSealCompression(mode)
	storage.SetCompressMinRows(1)
	defer func() {
		storage.SetSealCompression(storage.CompressAuto)
		storage.SetCompressMinRows(4096)
	}()
	words := []string{"pending", "deposits", "furiously", "ironic", "requests",
		"carefully", "final", "accounts", "bold", "theodolites"}
	k := storage.NewColumn("k", vec.I64, false)
	s := storage.NewColumn("s", vec.Str, true)
	v := storage.NewColumn("v", vec.I64, false)
	for _, i := range idx {
		k.AppendInt(int64(i))
		if i%23 == 0 {
			s.AppendNull()
		} else {
			s.AppendString(fmt.Sprintf("%s %s %s #%d",
				words[i%10], words[(i/3)%10], words[(i/7)%10], i%50))
		}
		v.AppendInt(int64(i % 97))
	}
	t := storage.NewTable("ct", k, s, v)
	t.Seal()
	return t
}

// TestCompressedShardsMatchPlain routes queries through a 2-shard
// coordinator whose shards hold compressed sealed string blocks and checks
// every answer against a single node holding the same rows sealed plain —
// the distributed leg of the seal-compression equivalence satellite.
func TestCompressedShardsMatchPlain(t *testing.T) {
	const rows = 900
	var all, even, odd []int
	for i := 0; i < rows; i++ {
		all = append(all, i)
		if i%2 == 0 {
			even = append(even, i)
		} else {
			odd = append(odd, i)
		}
	}
	refCat := storage.NewCatalog()
	refCat.Add(sealCompressedTable(storage.CompressOff, all))

	var shards []ShardConfig
	for _, idx := range [][]int{even, odd} {
		tab := sealCompressedTable(storage.CompressOn, idx)
		if !tab.Col("s").Block(0).DictCompressed() {
			t.Fatal("shard table did not seal compressed")
		}
		cat := storage.NewCatalog()
		cat.Add(tab)
		srv := server.New(cat, server.Config{Flags: core.All(), Workers: 2, ReadOnly: true})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		shards = append(shards, ShardConfig{Primary: ts.URL})
	}
	coord, err := New(Config{
		Shards: shards,
		Flags:  core.All(),
		Fanout: FanoutConfig{ShardTimeout: 30 * time.Second, Retries: 1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	queries := []struct {
		sql     string
		ordered bool
	}{
		{"SELECT COUNT(*) FROM ct", false},
		{"SELECT s, COUNT(*), SUM(v) FROM ct GROUP BY s", false},
		{"SELECT COUNT(*) FROM ct WHERE s LIKE '%pending%'", false},
		{"SELECT s, MAX(k) FROM ct WHERE s LIKE 'ironic%' GROUP BY s", false},
		{"SELECT COUNT(*) FROM ct WHERE s IS NULL", false},
		{"SELECT k, s FROM ct WHERE v = 13 ORDER BY k LIMIT 9", true},
		{"SELECT s FROM ct WHERE k = 131", false},
		{"SELECT MIN(v), MAX(v), AVG(v) FROM ct WHERE s LIKE '%final%'", false},
	}
	ctx := context.Background()
	for _, q := range queries {
		got, gerr := coord.Query(ctx, q.sql)
		if gerr != nil {
			t.Fatalf("distributed %q: %v", q.sql, gerr)
		}
		want, rerr := sql.Run(q.sql, refCat, exec.NewQCtx(core.All()))
		if rerr != nil {
			t.Fatalf("reference %q: %v", q.sql, rerr)
		}
		g := render(got.Rows, q.ordered)
		w := renderRef(want, q.ordered)
		if fmt.Sprint(g) != fmt.Sprint(w) {
			t.Errorf("%q diverged\n got: %v\nwant: %v", q.sql, g, w)
		}
	}
}
