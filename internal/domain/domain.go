// Package domain implements value-domain derivation (Section II-A of the
// paper). A domain is a [Min, Max] interval on int64. Domains originate
// from per-block zone maps at table scans and propagate bottom-up through
// expression trees under worst-case assumptions, allowing the engine to
// choose minimal bit widths and to prove the absence of overflow or of
// negative values.
package domain

import (
	"fmt"
	"math"
	"math/bits"

	"ocht/internal/i128"
)

// D is a value domain: every value of the expression is known to lie in
// [Min, Max]. The zero value is an invalid (unknown/unbounded) domain.
type D struct {
	Min, Max int64
	Valid    bool
}

// New returns the domain [min, max].
func New(min, max int64) D {
	if min > max {
		min, max = max, min
	}
	return D{Min: min, Max: max, Valid: true}
}

// Const returns the singleton domain {v}.
func Const(v int64) D { return D{Min: v, Max: v, Valid: true} }

// Unknown is the unbounded domain.
var Unknown = D{}

// ForType returns the full domain of an integer type of the given bit
// width (8, 16, 32 or 64).
func ForType(bitWidth int) D {
	switch bitWidth {
	case 8:
		return New(math.MinInt8, math.MaxInt8)
	case 16:
		return New(math.MinInt16, math.MaxInt16)
	case 32:
		return New(math.MinInt32, math.MaxInt32)
	case 64:
		return New(math.MinInt64, math.MaxInt64)
	default:
		return Unknown
	}
}

// String renders the domain.
func (d D) String() string {
	if !d.Valid {
		return "[?]"
	}
	return fmt.Sprintf("[%d,%d]", d.Min, d.Max)
}

// Contains reports whether v lies in the domain. The unknown domain
// contains everything.
func (d D) Contains(v int64) bool {
	return !d.Valid || (v >= d.Min && v <= d.Max)
}

// Cardinality returns max-min+1 as an unsigned count; 0 means 2^64 (the
// full unknown domain).
func (d D) Cardinality() uint64 {
	if !d.Valid {
		return 0
	}
	return uint64(d.Max) - uint64(d.Min) + 1
}

// BitWidth returns the number of bits required to represent any value of
// the domain as a non-negative offset from Min:
// ceil(log2(max-min+1)). The unknown domain needs 64 bits. A singleton
// domain needs 0 bits.
func (d D) BitWidth() int {
	if !d.Valid {
		return 64
	}
	c := d.Cardinality()
	if c == 0 { // full 2^64 range
		return 64
	}
	return bits.Len64(c - 1)
}

// NonNegative reports whether the domain proves all values are >= 0,
// enabling the positive-only Optimistic SUM fast path (Section III-A).
func (d D) NonNegative() bool { return d.Valid && d.Min >= 0 }

// Union returns the smallest domain containing both a and b.
func Union(a, b D) D {
	if !a.Valid || !b.Valid {
		return Unknown
	}
	return D{Min: min64(a.Min, b.Min), Max: max64(a.Max, b.Max), Valid: true}
}

// Intersect returns the intersection; if disjoint, the result collapses to
// an empty-ish singleton at the boundary (callers treat Min>Max as empty
// via New's normalization, so we keep the raw interval and mark invalid
// when disjoint).
func Intersect(a, b D) D {
	if !a.Valid {
		return b
	}
	if !b.Valid {
		return a
	}
	lo, hi := max64(a.Min, b.Min), min64(a.Max, b.Max)
	if lo > hi {
		return Unknown
	}
	return D{Min: lo, Max: hi, Valid: true}
}

// Add derives the domain of a+b under worst-case bounds:
// [aMin+bMin, aMax+bMax]. If the bound computation overflows int64 the
// result is Unknown (the value must be widened past 64 bits).
func Add(a, b D) D {
	if !a.Valid || !b.Valid {
		return Unknown
	}
	lo, ok1 := addChecked(a.Min, b.Min)
	hi, ok2 := addChecked(a.Max, b.Max)
	if !ok1 || !ok2 {
		return Unknown
	}
	return D{Min: lo, Max: hi, Valid: true}
}

// Sub derives the domain of a-b: [aMin-bMax, aMax-bMin].
func Sub(a, b D) D {
	if !a.Valid || !b.Valid {
		return Unknown
	}
	lo, ok1 := subChecked(a.Min, b.Max)
	hi, ok2 := subChecked(a.Max, b.Min)
	if !ok1 || !ok2 {
		return Unknown
	}
	return D{Min: lo, Max: hi, Valid: true}
}

// Mul derives the domain of a*b by taking the extrema of the four corner
// products.
func Mul(a, b D) D {
	if !a.Valid || !b.Valid {
		return Unknown
	}
	corners := [4]i128.Int{
		i128.MulInt64(a.Min, b.Min),
		i128.MulInt64(a.Min, b.Max),
		i128.MulInt64(a.Max, b.Min),
		i128.MulInt64(a.Max, b.Max),
	}
	lo, hi := corners[0], corners[0]
	for _, c := range corners[1:] {
		if i128.Cmp(c, lo) < 0 {
			lo = c
		}
		if i128.Cmp(c, hi) > 0 {
			hi = c
		}
	}
	if !lo.IsInt64() || !hi.IsInt64() {
		return Unknown
	}
	return D{Min: lo.Int64(), Max: hi.Int64(), Valid: true}
}

// Neg derives the domain of -a.
func Neg(a D) D {
	if !a.Valid || a.Min == math.MinInt64 {
		return Unknown
	}
	return D{Min: -a.Max, Max: -a.Min, Valid: true}
}

// SumBound derives the worst-case bounds of SUM over at most n values from
// domain d, as 128-bit numbers (Section III-A: a SUM of up to 2^48 values
// from an 18-bit domain would overflow 64 bits).
func SumBound(d D, n int64) (lo, hi i128.Int, ok bool) {
	if !d.Valid || n < 0 {
		return i128.Int{}, i128.Int{}, false
	}
	lo = i128.MulInt64(d.Min, n)
	hi = i128.MulInt64(d.Max, n)
	if d.Min > 0 {
		lo = i128.Int{} // the empty sum (0) can be smaller
	}
	if d.Max < 0 {
		hi = i128.Int{}
	}
	return lo, hi, true
}

// SumFitsInt64 reports whether a SUM of at most n values from domain d is
// provably representable in 64 bits, allowing the engine to skip the
// 128-bit aggregate entirely.
func SumFitsInt64(d D, n int64) bool {
	lo, hi, ok := SumBound(d, n)
	return ok && lo.IsInt64() && hi.IsInt64()
}

func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subChecked(a, b int64) (int64, bool) {
	s := a - b
	if (a >= 0 && b < 0 && s < 0) || (a < 0 && b > 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
