package domain

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBitWidth(t *testing.T) {
	cases := []struct {
		d    D
		want int
	}{
		{Const(7), 0},
		{New(0, 1), 1},
		{New(-4, 42), 6},   // the paper's Figure 2 example: 47 values -> 6 bits
		{New(3, 1000), 10}, // Figure 2 column B: 998 values -> 10 bits
		{New(0, 255), 8},
		{New(0, 256), 9},
		{New(1, 23), 5},
		{Unknown, 64},
		{New(math.MinInt64, math.MaxInt64), 64},
	}
	for _, c := range cases {
		if got := c.d.BitWidth(); got != c.want {
			t.Errorf("BitWidth(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestAddExample(t *testing.T) {
	// Section II-A: rmin = amin+bmin, rmax = amax+bmax.
	a, b := New(-4, 42), New(3, 23)
	r := Add(a, b)
	if r != New(-1, 65) {
		t.Errorf("Add = %v", r)
	}
}

func TestAddOverflowWidens(t *testing.T) {
	a := New(0, math.MaxInt64)
	if Add(a, Const(1)).Valid {
		t.Error("overflowing add bound must yield Unknown (widen past 64 bits)")
	}
	if Sub(New(math.MinInt64, 0), Const(1)).Valid {
		t.Error("overflowing sub bound must yield Unknown")
	}
}

func TestAddSoundness(t *testing.T) {
	f := func(aMin, aMax, bMin, bMax, x, y int32) bool {
		a := New(int64(aMin), int64(aMax))
		b := New(int64(bMin), int64(bMax))
		r := Add(a, b)
		// Pick witnesses inside the input domains.
		vx := clamp(int64(x), a)
		vy := clamp(int64(y), b)
		return r.Contains(vx + vy)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubSoundness(t *testing.T) {
	f := func(aMin, aMax, bMin, bMax, x, y int32) bool {
		a := New(int64(aMin), int64(aMax))
		b := New(int64(bMin), int64(bMax))
		r := Sub(a, b)
		vx := clamp(int64(x), a)
		vy := clamp(int64(y), b)
		return r.Contains(vx - vy)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulSoundness(t *testing.T) {
	f := func(aMin, aMax, bMin, bMax, x, y int32) bool {
		a := New(int64(aMin), int64(aMax))
		b := New(int64(bMin), int64(bMax))
		r := Mul(a, b)
		vx := clamp(int64(x), a)
		vy := clamp(int64(y), b)
		return r.Contains(vx * vy)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulOverflow(t *testing.T) {
	big := New(0, math.MaxInt64)
	if Mul(big, Const(3)).Valid {
		t.Error("overflowing mul bound must yield Unknown")
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := New(0, 10), New(5, 20)
	if Union(a, b) != New(0, 20) {
		t.Error("union")
	}
	if Intersect(a, b) != New(5, 10) {
		t.Error("intersect")
	}
	if Intersect(New(0, 1), New(5, 6)).Valid {
		t.Error("disjoint intersect should be invalid")
	}
	if Union(a, Unknown).Valid {
		t.Error("union with unknown")
	}
	if Intersect(a, Unknown) != a {
		t.Error("intersect with unknown keeps the known side")
	}
}

func TestNeg(t *testing.T) {
	if Neg(New(-3, 7)) != New(-7, 3) {
		t.Error("neg")
	}
	if Neg(New(math.MinInt64, 0)).Valid {
		t.Error("neg of MinInt64 must widen")
	}
}

func TestSumBound(t *testing.T) {
	// 18-bit domain summed 2^48 times: must NOT fit in 64 bits (the
	// paper's Section III-A example).
	d := New(0, 1<<18-1)
	if SumFitsInt64(d, 1<<48) {
		t.Error("2^48 x 18-bit values must require 128 bits")
	}
	// A small number of small values fits easily.
	if !SumFitsInt64(New(-100, 100), 1_000_000) {
		t.Error("1M x [-100,100] fits in 64 bits")
	}
	// Empty-sum zero must be inside the bounds even for all-positive domains.
	lo, _, ok := SumBound(New(5, 10), 100)
	if !ok || lo.Sign() > 0 {
		t.Error("sum lower bound must include the empty sum 0")
	}
}

func TestNonNegative(t *testing.T) {
	if !New(0, 5).NonNegative() || New(-1, 5).NonNegative() || Unknown.NonNegative() {
		t.Error("NonNegative")
	}
}

func TestForType(t *testing.T) {
	if ForType(8) != New(math.MinInt8, math.MaxInt8) {
		t.Error("ForType(8)")
	}
	if ForType(64).BitWidth() != 64 {
		t.Error("ForType(64) width")
	}
	if ForType(7).Valid {
		t.Error("ForType(7) should be unknown")
	}
}

func TestCardinality(t *testing.T) {
	if New(-4, 42).Cardinality() != 47 {
		t.Error("cardinality of [-4,42]")
	}
	if Const(9).Cardinality() != 1 {
		t.Error("singleton cardinality")
	}
}

func clamp(v int64, d D) int64 {
	if v < d.Min {
		return d.Min
	}
	if v > d.Max {
		return d.Max
	}
	return v
}
