package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// slowFixture builds a probe/build pair whose join explodes: every probe
// row matches `dup` build rows, so a COUNT(*) over the join touches
// probeRows*dup matched rows — enough work to run for seconds from tables
// that generate in milliseconds.
func slowFixture(probeRows, keys, dup int) (*storage.Table, *storage.Table) {
	pk := storage.NewColumn("pk", vec.I64, false)
	for i := 0; i < probeRows; i++ {
		pk.AppendInt(int64(i % keys))
	}
	probe := storage.NewTable("probe", pk)
	probe.Seal()

	bk := storage.NewColumn("bk", vec.I64, false)
	bv := storage.NewColumn("bv", vec.I64, false)
	for k := 0; k < keys; k++ {
		for d := 0; d < dup; d++ {
			bk.AppendInt(int64(k))
			bv.AppendInt(int64(d))
		}
	}
	build := storage.NewTable("build", bk, bv)
	build.Seal()
	return probe, build
}

// slowPlan is scan → join (×dup multiplicity) → count(*), the cheapest
// plan shape that runs for over a second on laptop-scale inputs.
func slowPlan(probe, build *storage.Table) Op {
	ps := NewScan(probe, "pk")
	bs := NewScan(build, "bk", "bv")
	j := NewHashJoin(Inner, ps, bs, []string{"pk"}, []string{"bk"}, []string{"bv"})
	jm := j.Meta()
	return NewHashAgg(j,
		[]string{"pk"},
		[]*Expr{Col(jm, "pk")},
		[]AggExpr{{Func: agg.CountStar, Name: "n"}, {Func: agg.Sum, Arg: Col(jm, "bv"), Name: "s"}})
}

// TestCancelDeadline is the acceptance check: a query with a 50 ms
// deadline against work that takes >1 s must return a cancellation error
// within ~100 ms with every worker goroutine exited.
func TestCancelDeadline(t *testing.T) {
	probe, build := slowFixture(1<<19, 500, 200) // ~100M matched rows uncanceled
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			before := runtime.NumGoroutine()
			qc := NewQCtx(core.All())
			qc.Workers = workers
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			start := time.Now()
			res, err := RunCtx(ctx, qc, slowPlan(probe, build))
			elapsed := time.Since(start)
			if err == nil {
				t.Fatalf("query finished in %v with %d rows; expected cancellation", elapsed, len(res.Rows))
			}
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("error %v does not wrap ErrCanceled", err)
			}
			// The deadline is 50 ms and checks run per 1024-row batch, so
			// the overshoot is microseconds of engine work; 100 ms of slack
			// absorbs scheduler noise on loaded CI machines.
			if elapsed > 150*time.Millisecond {
				t.Errorf("canceled after %v; want within ~100ms of the 50ms deadline", elapsed)
			}
			// RunCtx joins the workers before unwinding, so no goroutine of
			// this query may outlive it. Allow unrelated runtime goroutines
			// a moment to settle.
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if g := runtime.NumGoroutine(); g > before {
				t.Errorf("goroutines leaked: %d before, %d after cancellation", before, g)
			}
		})
	}
}

// TestCancelClientGone covers caller cancellation (client disconnect)
// rather than a deadline.
func TestCancelClientGone(t *testing.T) {
	probe, build := slowFixture(1<<19, 500, 200)
	qc := NewQCtx(core.All())
	qc.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunCtx(ctx, qc, slowPlan(probe, build))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v after %v; want ErrCanceled", err, time.Since(start))
	}
}

// TestRunCtxNoDeadline checks that an un-pressured RunCtx matches Run
// exactly, and that the context is disarmed afterwards so the QCtx can be
// pooled.
func TestRunCtxNoDeadline(t *testing.T) {
	probe, build := slowFixture(1<<14, 50, 3)
	serial := NewQCtx(core.All())
	want := Run(serial, slowPlan(probe, build))

	qc := NewQCtx(core.All())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	got, err := RunCtx(ctx, qc, slowPlan(probe, build))
	if err != nil {
		t.Fatal(err)
	}
	if qc.done != nil {
		t.Error("RunCtx left the context armed")
	}
	ws, gs := sortedRows(want), sortedRows(got)
	if fmt.Sprint(ws) != fmt.Sprint(gs) {
		t.Errorf("RunCtx result differs from Run")
	}
}
