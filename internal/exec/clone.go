package exec

import (
	"fmt"

	"ocht/internal/storage"
)

// This file clones operator pipelines for the parallel workers. A clone
// shares everything immutable — stored tables, prebuilt join hash tables,
// compiled LIKE patterns — and owns everything an Open/Next cycle mutates:
// expression buffers, selection vectors, scan positions, probe scratch.

// cloneExpr deep-copies an expression tree. Configuration and derived
// typing are copied by value; the per-batch output buffer and string
// scratch stay nil so each clone lazily allocates its own.
func cloneExpr(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	c := *e
	c.buf = nil
	c.scratch = nil
	c.codeOK = nil
	c.codeDict = nil
	c.codeStale = false
	c.l = cloneExpr(e.l)
	c.r = cloneExpr(e.r)
	c.el = cloneExpr(e.el)
	return &c
}

// clonePipeline copies the operator chain rooted at o for one worker.
// Scans claim their blocks from morsels (as the given worker, so affinity
// queues serve each clone its own contiguous range first); HashJoins keep
// the original (shared) build subtree but mark the already-built join
// table as prebuilt so the clone's Open only prepares a private probe
// cursor. HashAgg clones get a private hash table (skipBuild false),
// built from the clone's own morsel stream and merged by the driver
// afterwards.
func clonePipeline(o Op, morsels *storage.MorselQueue, worker int) Op {
	switch t := o.(type) {
	case *Scan:
		return &Scan{Table: t.Table, Columns: t.Columns, Morsels: morsels, MorselWorker: worker, Zones: t.Zones}
	case *Filter:
		return NewFilter(clonePipeline(t.Child, morsels, worker), cloneExpr(t.Pred))
	case *Project:
		return NewProject(clonePipeline(t.Child, morsels, worker), t.Names, cloneExprs(t.Exprs))
	case *HashJoin:
		if t.j == nil {
			panic("exec: cloning a HashJoin whose build has not run")
		}
		return &HashJoin{
			Build:         t.Build, // shared, never opened by the clone
			Probe:         clonePipeline(t.Probe, morsels, worker),
			BuildKeys:     t.BuildKeys,
			ProbeKeys:     t.ProbeKeys,
			Payload:       t.Payload,
			Kind:          t.Kind,
			Selective:     t.Selective,
			PartitionBits: t.PartitionBits,
			BloomMode:     t.BloomMode,
			prebuilt:      t.j,
		}
	case *HashAgg:
		c := NewHashAgg(clonePipeline(t.Child, morsels, worker), t.KeyNames, cloneExprs(t.Keys), cloneAggs(t.Aggs))
		c.PartitionBits = t.PartitionBits
		return c
	default:
		panic(fmt.Sprintf("exec: cannot clone operator %T", o))
	}
}

// ClonePlan deep-copies an unexecuted operator tree: every operator,
// expression and join build subtree is cloned, sharing only the immutable
// stored tables. Unlike the worker clones above it does not expect join
// tables to be prebuilt, which makes it safe for reusing a cached plan
// template across queries — each execution opens and builds its own
// operator state.
func ClonePlan(o Op) Op {
	switch t := o.(type) {
	case *Scan:
		return &Scan{Table: t.Table, Columns: t.Columns, Zones: t.Zones}
	case *Filter:
		return NewFilter(ClonePlan(t.Child), cloneExpr(t.Pred))
	case *Project:
		return NewProject(ClonePlan(t.Child), t.Names, cloneExprs(t.Exprs))
	case *HashJoin:
		c := NewHashJoin(t.Kind, ClonePlan(t.Probe), ClonePlan(t.Build), t.ProbeKeys, t.BuildKeys, t.Payload)
		c.Selective = t.Selective
		c.PartitionBits = t.PartitionBits
		c.BloomMode = t.BloomMode
		return c
	case *HashAgg:
		c := NewHashAgg(ClonePlan(t.Child), t.KeyNames, cloneExprs(t.Keys), cloneAggs(t.Aggs))
		c.PartitionBits = t.PartitionBits
		return c
	case *Exchange:
		// Rows are never mutated by execution; clones may share them.
		return NewExchange(t.Names, t.Types, t.Rows)
	case *MergeAgg:
		return NewMergeAgg(ClonePlan(t.Child), t.NKeys, t.Specs)
	default:
		panic(fmt.Sprintf("exec: cannot clone operator %T", o))
	}
}

func cloneExprs(es []*Expr) []*Expr {
	out := make([]*Expr, len(es))
	for i, e := range es {
		out[i] = cloneExpr(e)
	}
	return out
}

func cloneAggs(as []AggExpr) []AggExpr {
	out := make([]AggExpr, len(as))
	for i, a := range as {
		out[i] = AggExpr{Func: a.Func, Arg: cloneExpr(a.Arg), Name: a.Name}
	}
	return out
}
