package exec

import (
	"testing"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// scanConfigs are the compressed-execution knob settings every plan in
// this file is checked under: the default (encoded blocks, zone skipping),
// each knob alone, and the fully materialized fallback. All must agree.
func scanConfigs() map[string]func(*QCtx) {
	return map[string]func(*QCtx){
		"compressed":   func(qc *QCtx) {},
		"noskip":       func(qc *QCtx) { qc.DisableZoneSkip = true },
		"eager":        func(qc *QCtx) { qc.EagerMaterialize = true },
		"eager-noskip": func(qc *QCtx) { qc.EagerMaterialize = true; qc.DisableZoneSkip = true },
	}
}

func runScanConfigs(t *testing.T, build func() Op) map[string]*Result {
	t.Helper()
	results := map[string]*Result{}
	for name, tune := range scanConfigs() {
		qc := NewQCtx(core.All())
		tune(qc)
		results[name] = Run(qc, build())
	}
	return results
}

// TestCompressedMatchesEager drives plans whose inputs hit every encoded
// path — pack-domain comparisons, dictionary-code pre-filtering, late
// materialization in joins and aggregates — and checks the compressed
// pipeline against the eager-materialize oracle.
func TestCompressedMatchesEager(t *testing.T) {
	tab := salesTable(20_000)
	dim, fact := buildJoinTables()
	plans := map[string]func() Op{
		// Pack-domain integer compare + dictionary-code string compare.
		"filter-project": func() Op {
			scan := NewScan(tab, "region", "qty", "price")
			m := scan.Meta()
			f := NewFilter(scan, And(Gt(Col(m, "qty"), Int(25)), Eq(Col(m, "region"), Str("north"))))
			return NewProject(f, []string{"qty", "revenue"}, []*Expr{
				Col(m, "qty"),
				Mul(Col(m, "qty"), Col(m, "price")),
			})
		},
		// Constant outside the pack domain: verdict is decided without
		// touching a single packed word.
		"filter-out-of-domain": func() Op {
			scan := NewScan(tab, "qty")
			m := scan.Meta()
			return NewFilter(scan, Or(Gt(Col(m, "qty"), Int(1_000_000)), Lt(Col(m, "qty"), Int(-5))))
		},
		// Dictionary code absent from the block: constant-false fast path.
		"filter-absent-dict-code": func() Op {
			scan := NewScan(tab, "region", "qty")
			m := scan.Meta()
			return NewFilter(scan, Ne(Col(m, "region"), Str("atlantis")))
		},
		// LIKE over a nullable dictionary column: per-code verdict table
		// plus NULL handling.
		"like-nullable-dict": func() Op {
			scan := NewScan(tab, "note", "qty")
			m := scan.Meta()
			return NewFilter(scan, Like(Col(m, "note"), "note-1%"))
		},
		// Join keys arrive packed (fact.fk) and the payload is a dict
		// string: both sides materialize late at the operator boundary.
		"join": func() Op {
			return NewHashJoin(Inner,
				NewScan(fact, "fk", "val"),
				NewScan(dim, "id", "name"),
				[]string{"fk"}, []string{"id"}, []string{"name"})
		},
		// Aggregate with a dict group key and packed aggregate inputs.
		"agg": func() Op {
			scan := NewScan(tab, "region", "qty", "price")
			m := scan.Meta()
			return NewHashAgg(scan,
				[]string{"region"}, []*Expr{Col(m, "region")},
				[]AggExpr{
					{Func: agg.Sum, Arg: Mul(Col(m, "qty"), Col(m, "price")), Name: "rev"},
					{Func: agg.Min, Arg: Col(m, "qty"), Name: "min_qty"},
					{Func: agg.CountStar, Name: "cnt"},
				})
		},
		// Nullable dict key: NULL groups must survive code-path switches.
		"agg-nullable-key": func() Op {
			scan := NewScan(tab, "note")
			m := scan.Meta()
			return NewHashAgg(scan,
				[]string{"note"}, []*Expr{Col(m, "note")},
				[]AggExpr{{Func: agg.CountStar, Name: "cnt"}})
		},
	}
	for name, build := range plans {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			results := runScanConfigs(t, build)
			var ref []string
			var refName string
			for cfg, r := range results {
				got := sortedRows(r)
				if ref == nil {
					ref, refName = got, cfg
					continue
				}
				if len(ref) != len(got) {
					t.Fatalf("%s: %d rows vs %s: %d rows", refName, len(ref), cfg, len(got))
				}
				for i := range ref {
					if ref[i] != got[i] {
						t.Fatalf("row %d differs between %s and %s:\n  %s\n  %s",
							i, refName, cfg, ref[i], got[i])
					}
				}
			}
			if name == "filter-out-of-domain" && len(results["compressed"].Rows) != 0 {
				t.Fatal("out-of-domain predicate must select nothing")
			}
			if name == "filter-absent-dict-code" && len(results["compressed"].Rows) != 20_000 {
				t.Fatal("NE against an absent dictionary code must keep every row")
			}
		})
	}
}

// sortedTable builds blocks*BlockRows rows of a sorted key so each block's
// zone map covers a disjoint range — the shape zone skipping is built for.
func sortedTable(blocks int) *storage.Table {
	id := storage.NewColumn("id", vec.I64, false)
	grp := storage.NewColumn("grp", vec.Str, false)
	names := []string{"g0", "g1", "g2", "g3"}
	n := blocks * storage.BlockRows
	for i := 0; i < n; i++ {
		id.AppendInt(int64(i))
		grp.AppendString(names[i%len(names)])
	}
	t := storage.NewTable("sorted", id, grp)
	t.Seal()
	return t
}

// TestZoneSkipBlocks checks that a pushed-down predicate skips exactly the
// blocks its range excludes, that DisableZoneSkip restores full reads, and
// that the answer is identical either way.
func TestZoneSkipBlocks(t *testing.T) {
	tab := sortedTable(3)
	lo := int64(2 * storage.BlockRows) // entirely inside the last block
	build := func() Op {
		scan := NewScan(tab, "id", "grp")
		m := scan.Meta()
		return NewFilter(scan, Ge(Col(m, "id"), Int(lo)))
	}

	qc := NewQCtx(core.All())
	res := Run(qc, build())
	if got := len(res.Rows); got != storage.BlockRows {
		t.Fatalf("filter kept %d rows, want %d", got, storage.BlockRows)
	}
	if skipped := qc.Stats.Counter(CtrBlocksSkipped); skipped != 2 {
		t.Fatalf("zone map skipped %d blocks, want 2", skipped)
	}
	if read := qc.Stats.Counter(CtrBlocksRead); read != 1 {
		t.Fatalf("read %d blocks, want 1", read)
	}

	off := NewQCtx(core.All())
	off.DisableZoneSkip = true
	resOff := Run(off, build())
	if skipped := off.Stats.Counter(CtrBlocksSkipped); skipped != 0 {
		t.Fatalf("DisableZoneSkip still skipped %d blocks", skipped)
	}
	if read := off.Stats.Counter(CtrBlocksRead); read != 3 {
		t.Fatalf("DisableZoneSkip read %d blocks, want 3", read)
	}
	if len(resOff.Rows) != len(res.Rows) {
		t.Fatalf("skipping changed the answer: %d vs %d rows", len(res.Rows), len(resOff.Rows))
	}

	// A contradictory range skips everything and returns nothing.
	empty := NewQCtx(core.All())
	resEmpty := Run(empty, NewFilter(NewScan(tab, "id"), func() *Expr {
		m := NewScan(tab, "id").Meta()
		return Lt(Col(m, "id"), Int(0))
	}()))
	if len(resEmpty.Rows) != 0 {
		t.Fatalf("contradictory predicate returned %d rows", len(resEmpty.Rows))
	}
	if skipped := empty.Stats.Counter(CtrBlocksSkipped); skipped != 3 {
		t.Fatalf("contradictory predicate skipped %d blocks, want 3", skipped)
	}
}

// TestZoneSkipParallel checks that skip/read counters merged across
// workers account for every block exactly once per morsel pass and the
// parallel answer matches serial.
func TestZoneSkipParallel(t *testing.T) {
	tab := sortedTable(3)
	lo := int64(2 * storage.BlockRows)
	build := func() Op {
		scan := NewScan(tab, "id", "grp")
		m := scan.Meta()
		f := NewFilter(scan, Ge(Col(m, "id"), Int(lo)))
		return NewHashAgg(f, []string{"grp"}, []*Expr{Col(f.Meta(), "grp")},
			[]AggExpr{{Func: agg.CountStar, Name: "cnt"}})
	}
	serial := Run(NewQCtx(core.All()), build())
	for _, workers := range []int{2, 4, 8} {
		qc := NewQCtx(core.All())
		qc.Workers = workers
		got := Run(qc, build())
		a, b := sortedRows(serial), sortedRows(got)
		if len(a) != len(b) {
			t.Fatalf("w=%d: %d groups vs %d serial", workers, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("w=%d row %d: %s vs %s", workers, i, b[i], a[i])
			}
		}
		read := qc.Stats.Counter(CtrBlocksRead)
		skipped := qc.Stats.Counter(CtrBlocksSkipped)
		if read+skipped != 3 {
			t.Fatalf("w=%d: read %d + skipped %d != 3 blocks", workers, read, skipped)
		}
		if skipped == 0 {
			t.Fatalf("w=%d: no blocks skipped", workers)
		}
	}
}

// TestScanNextSteadyStateAllocs pins the block-view reuse contract: after
// the first batch of a block, pulling further batches from a scan performs
// zero allocations — windows are re-sliced into scratch vectors.
func TestScanNextSteadyStateAllocs(t *testing.T) {
	tab := sortedTable(1)
	scan := NewScan(tab, "id", "grp")
	qc := NewQCtx(core.All())
	scan.Open(qc)
	if b := scan.Next(qc); b == nil {
		t.Fatal("first batch is nil")
	}
	// Stay inside the first block (64 batches of 1024): the per-block
	// view setup ran once above; steady-state windowing must not allocate.
	allocs := testing.AllocsPerRun(40, func() {
		if b := scan.Next(qc); b == nil {
			t.Fatal("scan exhausted during steady-state measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("Scan.Next allocates %v times per batch in steady state, want 0", allocs)
	}
}

// TestScanCrossBlockAllocs bounds the per-block cost: crossing block
// boundaries reuses the view scratch, so draining a multi-block table
// after warm-up stays allocation-free as well.
func TestScanCrossBlockAllocs(t *testing.T) {
	tab := sortedTable(2)
	scan := NewScan(tab, "id", "grp")
	qc := NewQCtx(core.All())
	scan.Open(qc)
	// Warm one full block plus the first batch of the second, so every
	// lazily-grown scratch (dict ref tables included) reaches final size.
	warm := storage.BlockRows/vec.Size + 1
	for i := 0; i < warm; i++ {
		if scan.Next(qc) == nil {
			t.Fatal("table too small for warm-up")
		}
	}
	allocs := testing.AllocsPerRun(40, func() {
		if b := scan.Next(qc); b == nil {
			t.Fatal("scan exhausted during measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("Scan.Next allocates %v times per batch after block crossing, want 0", allocs)
	}
}
