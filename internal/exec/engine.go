// Package exec implements the vectorized query engine the three paper
// techniques are integrated into: pull-based operators exchanging batches
// of 1024 values with selection vectors, expression evaluation with
// bottom-up domain derivation, and hash join / hash aggregation on
// optimistically compressed hash tables.
package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"ocht/internal/core"
	"ocht/internal/i128"
	"ocht/internal/strs"
	"ocht/internal/ussr"
	"ocht/internal/vec"
)

// nullStrRef marks SQL NULL string values in-flight.
const nullStrRef = strs.NullRef

// QCtx is the per-query execution context: technique flags, the query's
// string store (heap + USSR), the primitive-time breakdown, and the
// registry of hash tables for footprint accounting.
type QCtx struct {
	Flags core.Flags
	Store *strs.Store
	Stats *Stats

	// Workers selects the degree of morsel-driven parallelism. Values <= 1
	// run the classic serial pull loop; higher values split table scans
	// into block-aligned morsels executed by Workers goroutines, each with
	// a private compressed hash table and string heap, followed by a merge
	// phase (DESIGN.md, "Parallel execution").
	Workers int

	// EagerMaterialize forces scans to decompress every block into plain
	// vectors before any operator runs — the pre-compressed-execution
	// behavior, kept as the mandatory fallback and equivalence oracle. The
	// default (false) is holistic compressed execution: scans emit
	// dictionary codes and bit-packed words zero-copy and operators
	// materialize late.
	EagerMaterialize bool

	// DisableZoneSkip turns off zone-map block skipping independent of the
	// scan encoding; the scansel experiment uses it as its measurement
	// baseline.
	DisableZoneSkip bool

	tables []*core.Table

	// workerFootprints records, per parallel worker, the bytes of the
	// private hash table(s) it built during the last Run.
	workerFootprints []int

	// done, when non-nil, is the query's cancellation signal (a
	// context.Done() channel). Operators poll it at batch/morsel
	// granularity via checkCancel and unwind with an internal panic that
	// RunCtx (or CatchCancel) converts into ErrCanceled.
	done <-chan struct{}
}

// NewQCtx creates a query context under the given flags.
func NewQCtx(flags core.Flags) *QCtx {
	return &QCtx{Flags: flags, Store: strs.NewStore(flags.UseUSSR), Stats: NewStats()}
}

// NewQCtxUSSR creates a query context whose string store wraps the given
// (pooled) USSR instead of allocating a fresh 768 kB region. u must be
// unfrozen and empty; a nil u behaves exactly like NewQCtx.
func NewQCtxUSSR(flags core.Flags, u *ussr.USSR) *QCtx {
	if u == nil || !flags.UseUSSR {
		return NewQCtx(flags)
	}
	return &QCtx{Flags: flags, Store: strs.NewStoreUSSR(u), Stats: NewStats()}
}

// AttachContext arms cancellation: from here on the engine polls
// ctx.Done() once per batch/morsel and aborts execution when it fires.
// Pass nil to disarm (contexts reused from a pool must be disarmed
// between queries).
func (qc *QCtx) AttachContext(ctx context.Context) {
	if ctx == nil {
		qc.done = nil
		return
	}
	qc.done = ctx.Done()
}

// canceledPanic is the internal unwinding sentinel thrown by checkCancel
// and recovered by CatchCancel; it never escapes the package API.
type canceledPanic struct{}

// ErrCanceled is returned by RunCtx when the query was aborted by its
// context (deadline exceeded or caller cancellation).
var ErrCanceled = errors.New("exec: query canceled")

// checkCancel aborts execution when the attached context is done. It is
// called at batch/morsel granularity on every long-running operator loop,
// so a canceled query stops within one vector of work per worker.
func (qc *QCtx) checkCancel() {
	if qc.done == nil {
		return
	}
	select {
	case <-qc.done:
		panic(canceledPanic{})
	default:
	}
}

// CatchCancel invokes f and converts the engine's internal cancellation
// unwind into ErrCanceled; every other panic passes through. Callers that
// drive plans directly (the CLIs, tpch.QContext) wrap Run with it.
func CatchCancel(f func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(canceledPanic); ok {
				err = ErrCanceled
				return
			}
			panic(p)
		}
	}()
	f()
	return nil
}

// RunCtx executes the plan under ctx: the context's deadline and
// cancellation are polled per batch by every operator loop (including the
// parallel workers), so long scans actually stop. On cancellation all
// worker goroutines have exited by the time RunCtx returns (the parallel
// driver joins them before unwinding) and the error wraps ErrCanceled.
func RunCtx(ctx context.Context, qc *QCtx, root Op) (res *Result, err error) {
	qc.AttachContext(ctx)
	defer qc.AttachContext(nil)
	err = CatchCancel(func() { res = Run(qc, root) })
	if err != nil && ctx != nil && ctx.Err() != nil {
		err = fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
	return res, err
}

func (qc *QCtx) register(t *core.Table) { qc.tables = append(qc.tables, t) }

// WorkerFootprints returns the per-worker private hash-table footprints of
// the last parallel Run (nil after a serial run).
func (qc *QCtx) WorkerFootprints() []int { return qc.workerFootprints }

// HashTableBytes returns the summed footprint of all hash tables built by
// the query (Figure 4's baseline measurements).
func (qc *QCtx) HashTableBytes() int {
	n := 0
	for _, t := range qc.tables {
		n += t.MemoryBytes()
	}
	return n
}

// HashTableHotBytes returns the summed hot-area footprint.
func (qc *QCtx) HashTableHotBytes() int {
	n := 0
	for _, t := range qc.tables {
		n += t.HotAreaBytes()
	}
	return n
}

// PeakMemoryBytes approximates the query's peak memory: hash tables plus
// string memory.
func (qc *QCtx) PeakMemoryBytes() int {
	return qc.HashTableBytes() + qc.Store.MemoryBytes()
}

// Op is a vectorized pull-based operator.
type Op interface {
	// Meta describes the output columns.
	Meta() []Meta
	// MaxRows is a worst-case bound on the number of output rows,
	// saturating at rowsCap. It drives aggregate width derivation.
	MaxRows() int64
	// Open prepares the operator tree for execution.
	Open(qc *QCtx)
	// Next returns the next batch, or nil when exhausted. The batch is
	// owned by the operator and valid until the next call.
	Next(qc *QCtx) *vec.Batch
}

// rowsCap saturates cardinality estimates.
const rowsCap = int64(1) << 62

// CompressMinBuildRows is the optimizer threshold below which hash tables
// are left uncompressed: Domain-Guided Prefix Suppression "does not make
// sense for CPU cache-resident hash tables, so we do not enable it if the
// hash table is small, based on optimizer estimates" (Section V-A). The
// estimate compared against it is the table's worst-case row bound.
var CompressMinBuildRows = int64(2048)

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > rowsCap/b {
		return rowsCap
	}
	return a * b
}

// Value is one result cell.
type Value struct {
	Typ  vec.Type
	Null bool
	I    int64
	F    float64
	S    string
	I128 i128.Int
}

// String renders the value.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Typ {
	case vec.F64:
		return fmt.Sprintf("%.4f", v.F)
	case vec.Str:
		return v.S
	case vec.I128:
		return v.I128.String()
	default:
		return fmt.Sprintf("%d", v.I)
	}
}

// Less orders two values of the same type.
func (v Value) Less(o Value) bool {
	if v.Null != o.Null {
		return v.Null // NULLs first
	}
	switch v.Typ {
	case vec.F64:
		return v.F < o.F
	case vec.Str:
		return v.S < o.S
	case vec.I128:
		return i128.Cmp(v.I128, o.I128) < 0
	default:
		return v.I < o.I
	}
}

// Result is a fully materialized query result.
type Result struct {
	Names []string
	Types []vec.Type
	Rows  [][]Value
}

// Run executes the operator tree to completion and materializes the
// result. With qc.Workers > 1 execution is morsel-driven parallel when the
// plan shape supports it (see runParallel); otherwise, and always at
// Workers <= 1, it is the classic serial pull loop, so serial execution is
// byte-identical to the pre-parallel engine.
func Run(qc *QCtx, root Op) *Result {
	if qc.Workers > 1 {
		if res, ok := runParallel(qc, root); ok {
			return res
		}
	}
	root.Open(qc)
	return materialize(qc, root)
}

// materialize drains an opened operator tree into a Result.
func materialize(qc *QCtx, root Op) *Result {
	meta := root.Meta()
	res := &Result{}
	for _, m := range meta {
		res.Names = append(res.Names, m.Name)
		res.Types = append(res.Types, m.Type)
	}
	for {
		qc.checkCancel()
		b := root.Next(qc)
		if b == nil {
			break
		}
		for _, r := range b.Rows() {
			row := make([]Value, len(meta))
			for ci, m := range meta {
				row[ci] = cellValue(qc, b.Vecs[ci], m.Type, int(r))
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

func cellValue(qc *QCtx, v *vec.Vector, t vec.Type, i int) Value {
	val := Value{Typ: t}
	if v.IsNull(i) {
		val.Null = true
		return val
	}
	switch t {
	case vec.F64:
		val.F = v.F64[i]
	case vec.Str:
		ref := v.StrRefAt(i)
		if ref == nullStrRef {
			val.Null = true
			return val
		}
		val.S = qc.Store.Get(ref)
	case vec.I128:
		val.I128 = v.I128[i]
	default:
		val.I = v.Int64At(i)
	}
	return val
}

// ensurePlain returns v unchanged when it is plain; otherwise it decodes
// the given physical rows into *bufp — a reusable per-slot scratch vector,
// (re)allocated only on first use or growth — and returns the scratch.
// This is the late-materialization boundary in front of the hash-table
// kernels (core/join/agg), which operate on raw slices: only rows that
// survived filtering pay decompression. The scratch grows to the largest
// batch and is then allocation-free.
func ensurePlain(v *vec.Vector, rows []int32, bufp **vec.Vector, phys int) *vec.Vector {
	// Runtime twin of the encswitch rule: a fourth encoding added to the
	// enum must teach this boundary about itself (debug builds panic).
	vec.AssertEncHandled(v, vec.EncPlain, vec.EncDict, vec.EncPacked)
	if v.Enc == vec.EncPlain {
		return v
	}
	buf := *bufp
	if buf == nil || buf.Typ != v.Typ || buf.Len() < phys {
		buf = vec.New(v.Typ, phys)
		*bufp = buf
	}
	v.MaterializeRowsInto(buf, rows)
	return buf
}

// SortKey orders a result column.
type SortKey struct {
	Col  int
	Desc bool
}

// OrderBy sorts the result rows in place. Rows tying on every sort key
// are ordered by their remaining columns (ascending, left to right):
// group emission order is unspecified after a parallel merge, and a total
// order keeps OrderBy+Limit pipelines deterministic across worker counts
// and merge strategies.
func (r *Result) OrderBy(keys ...SortKey) *Result {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		for _, k := range keys {
			a, b := r.Rows[i][k.Col], r.Rows[j][k.Col]
			if a.Less(b) {
				return !k.Desc
			}
			if b.Less(a) {
				return k.Desc
			}
		}
		for c := range r.Rows[i] {
			a, b := r.Rows[i][c], r.Rows[j][c]
			if a.Less(b) {
				return true
			}
			if b.Less(a) {
				return false
			}
		}
		return false
	})
	return r
}

// Limit truncates the result to the first n rows.
func (r *Result) Limit(n int) *Result {
	if len(r.Rows) > n {
		r.Rows = r.Rows[:n]
	}
	return r
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Names, " | "))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		b.WriteString(strings.Join(cells, " | "))
		b.WriteByte('\n')
	}
	return b.String()
}
