package exec

import (
	"ocht/internal/vec"
)

// ensureBuf (re)allocates the expression's output buffer.
func (e *Expr) ensureBuf(t vec.Type, n int) *vec.Vector {
	if e.buf == nil || e.buf.Typ != t || e.buf.Len() < n {
		e.buf = vec.New(t, n)
	}
	if e.buf.Nulls != nil {
		for i := range e.buf.Nulls {
			e.buf.Nulls[i] = false
		}
	}
	return e.buf
}

func physOf(b *vec.Batch) int {
	n := 0
	for _, v := range b.Vecs {
		if l := v.Len(); l > n {
			n = l
		}
	}
	if b.Sel != nil {
		for _, r := range b.Sel[:b.N] {
			if int(r)+1 > n {
				n = int(r) + 1
			}
		}
	} else if b.N > n {
		n = b.N
	}
	return n
}

// Eval computes the expression for the active rows of b. The returned
// vector is owned by the expression and valid until its next Eval.
func (e *Expr) Eval(qc *QCtx, b *vec.Batch) *vec.Vector {
	rows := b.Rows()
	phys := physOf(b)
	switch e.kind {
	case eCol:
		return b.Vecs[e.col]

	case eConstInt:
		out := e.ensureBuf(vec.I64, phys)
		for _, r := range rows {
			out.I64[r] = e.cInt
		}
		return out

	case eConstF64:
		out := e.ensureBuf(vec.F64, phys)
		for _, r := range rows {
			out.F64[r] = e.cF64
		}
		return out

	case eConstStr:
		out := e.ensureBuf(vec.Str, phys)
		ref := vec.StrRef(e.cInt)
		for _, r := range rows {
			out.Str[r] = ref
		}
		return out

	case eAdd, eSub, eMul, eDiv, eMod:
		l := e.l.Eval(qc, b)
		r := e.r.Eval(qc, b)
		out := e.ensureBuf(e.typ, phys)
		if e.typ == vec.F64 {
			for _, i := range rows {
				a, bb := asF64(l, int(i)), asF64(r, int(i))
				var v float64
				switch e.kind {
				case eAdd:
					v = a + bb
				case eSub:
					v = a - bb
				case eMul:
					v = a * bb
				case eDiv:
					if bb != 0 {
						v = a / bb
					}
				}
				out.F64[i] = v
			}
		} else {
			for _, i := range rows {
				a, bb := l.Int64At(int(i)), r.Int64At(int(i))
				var v int64
				switch e.kind {
				case eAdd:
					v = a + bb
				case eSub:
					v = a - bb
				case eMul:
					v = a * bb
				case eDiv:
					if bb != 0 {
						v = a / bb
					}
				case eMod:
					if bb != 0 {
						v = a % bb
					}
				}
				out.I64[i] = v
			}
		}
		propagateNulls(out, rows, e.l.nullable, l, e.r.nullable, r)
		return out

	case eF64:
		l := e.l.Eval(qc, b)
		out := e.ensureBuf(vec.F64, phys)
		switch l.Typ {
		case vec.F64:
			for _, i := range rows {
				out.F64[i] = l.F64[i]
			}
		case vec.I128:
			for _, i := range rows {
				x := l.I128[i]
				out.F64[i] = float64(x.Hi)*(1<<32)*(1<<32) + float64(x.Lo)
			}
		default:
			for _, i := range rows {
				out.F64[i] = float64(l.Int64At(int(i)))
			}
		}
		propagateNulls(out, rows, e.l.nullable, l, false, nil)
		return out

	case eCmp:
		l := e.l.Eval(qc, b)
		r := e.r.Eval(qc, b)
		out := e.ensureBuf(vec.Bool, phys)
		e.evalCmp(qc, l, r, rows, out)
		return out

	case eAnd:
		l := e.l.Eval(qc, b)
		r := e.r.Eval(qc, b)
		out := e.ensureBuf(vec.Bool, phys)
		for _, i := range rows {
			out.Bool[i] = l.Bool[i] && r.Bool[i]
		}
		return out

	case eOr:
		l := e.l.Eval(qc, b)
		r := e.r.Eval(qc, b)
		out := e.ensureBuf(vec.Bool, phys)
		for _, i := range rows {
			out.Bool[i] = l.Bool[i] || r.Bool[i]
		}
		return out

	case eNot:
		l := e.l.Eval(qc, b)
		out := e.ensureBuf(vec.Bool, phys)
		for _, i := range rows {
			out.Bool[i] = !l.Bool[i]
		}
		return out

	case eIsNull, eNotNull:
		l := e.l.Eval(qc, b)
		out := e.ensureBuf(vec.Bool, phys)
		want := e.kind == eIsNull
		for _, i := range rows {
			null := l.IsNull(int(i)) || (l.Typ == vec.Str && l.Str[i] == nullStrRef)
			out.Bool[i] = null == want
		}
		return out

	case eLike, eNotLike:
		l := e.l.Eval(qc, b)
		out := e.ensureBuf(vec.Bool, phys)
		want := e.kind == eLike
		if e.scratch == nil {
			e.scratch = make([]byte, 0, 64)
		}
		for _, i := range rows {
			if l.IsNull(int(i)) || l.Str[i] == nullStrRef {
				out.Bool[i] = false
				continue
			}
			var raw []byte
			raw, e.scratch = qc.Store.Raw(l.Str[i], e.scratch)
			out.Bool[i] = e.like.match(raw) == want
		}
		return out

	case eSubstr:
		l := e.l.Eval(qc, b)
		out := e.ensureBuf(vec.Str, phys)
		for _, i := range rows {
			if l.IsNull(int(i)) || l.Str[i] == nullStrRef {
				out.Str[i] = nullStrRef
				continue
			}
			s := qc.Store.Get(l.Str[i])
			if int64(len(s)) > e.cInt {
				s = s[:e.cInt]
			}
			out.Str[i] = qc.Store.Intern(s)
		}
		return out

	case eCase:
		cond := e.r.Eval(qc, b)
		then := e.l.Eval(qc, b)
		els := e.el.Eval(qc, b)
		out := e.ensureBuf(e.typ, phys)
		if e.typ == vec.F64 {
			for _, i := range rows {
				if cond.Bool[i] {
					out.F64[i] = asF64(then, int(i))
				} else {
					out.F64[i] = asF64(els, int(i))
				}
			}
		} else {
			for _, i := range rows {
				if cond.Bool[i] {
					out.SetInt64(int(i), then.Int64At(int(i)))
				} else {
					out.SetInt64(int(i), els.Int64At(int(i)))
				}
			}
		}
		return out
	}
	panic("exec: unhandled expression kind")
}

func (e *Expr) evalCmp(qc *QCtx, l, r *vec.Vector, rows []int32, out *vec.Vector) {
	nullFalse := func(i int32) bool {
		return l.IsNull(int(i)) || r.IsNull(int(i)) ||
			(l.Typ == vec.Str && l.Str[i] == nullStrRef) ||
			(r.Typ == vec.Str && r.Str[i] == nullStrRef)
	}
	switch {
	case l.Typ == vec.Str:
		st := qc.Store
		for _, i := range rows {
			if nullFalse(i) {
				out.Bool[i] = false
				continue
			}
			var v bool
			switch e.op {
			case opEQ:
				v = st.Equal(l.Str[i], r.Str[i])
			case opNE:
				v = !st.Equal(l.Str[i], r.Str[i])
			default:
				c := st.Compare(l.Str[i], r.Str[i])
				v = cmpHolds(e.op, c)
			}
			out.Bool[i] = v
		}
	case l.Typ == vec.F64 || r.Typ == vec.F64:
		for _, i := range rows {
			if nullFalse(i) {
				out.Bool[i] = false
				continue
			}
			a, b := asF64(l, int(i)), asF64(r, int(i))
			var c int
			if a < b {
				c = -1
			} else if a > b {
				c = 1
			}
			out.Bool[i] = cmpHolds(e.op, c)
		}
	default:
		for _, i := range rows {
			if nullFalse(i) {
				out.Bool[i] = false
				continue
			}
			a, b := l.Int64At(int(i)), r.Int64At(int(i))
			var c int
			if a < b {
				c = -1
			} else if a > b {
				c = 1
			}
			out.Bool[i] = cmpHolds(e.op, c)
		}
	}
}

func cmpHolds(op cmpOp, c int) bool {
	switch op {
	case opEQ:
		return c == 0
	case opNE:
		return c != 0
	case opLT:
		return c < 0
	case opLE:
		return c <= 0
	case opGT:
		return c > 0
	case opGE:
		return c >= 0
	}
	return false
}

func asF64(v *vec.Vector, i int) float64 {
	if v.Typ == vec.F64 {
		return v.F64[i]
	}
	return float64(v.Int64At(i))
}

func propagateNulls(out *vec.Vector, rows []int32, ln bool, l *vec.Vector, rn bool, r *vec.Vector) {
	if !ln && !rn {
		return
	}
	for _, i := range rows {
		if (ln && l.IsNull(int(i))) || (rn && r != nil && r.IsNull(int(i))) {
			out.SetNull(int(i))
		}
	}
}
