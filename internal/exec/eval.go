package exec

import (
	"ocht/internal/i128"
	"ocht/internal/pack"
	"ocht/internal/vec"
)

// ensureBuf (re)allocates the expression's output buffer.
func (e *Expr) ensureBuf(t vec.Type, n int) *vec.Vector {
	if e.buf == nil || e.buf.Typ != t || e.buf.Len() < n {
		e.buf = vec.New(t, n)
	}
	if e.buf.Nulls != nil {
		for i := range e.buf.Nulls {
			e.buf.Nulls[i] = false
		}
	}
	return e.buf
}

func physOf(b *vec.Batch) int {
	n := 0
	for _, v := range b.Vecs {
		if l := v.Len(); l > n {
			n = l
		}
	}
	if b.Sel != nil {
		for _, r := range b.Sel[:b.N] {
			if int(r)+1 > n {
				n = int(r) + 1
			}
		}
	} else if b.N > n {
		n = b.N
	}
	return n
}

// Eval computes the expression for the active rows of b. The returned
// vector is owned by the expression and valid until its next Eval.
func (e *Expr) Eval(qc *QCtx, b *vec.Batch) *vec.Vector {
	rows := b.Rows()
	phys := physOf(b)
	switch e.kind {
	case eCol:
		return b.Vecs[e.col]

	case eConstInt:
		out := e.ensureBuf(vec.I64, phys)
		for _, r := range rows {
			out.I64[r] = e.cInt
		}
		return out

	case eConstF64:
		out := e.ensureBuf(vec.F64, phys)
		for _, r := range rows {
			out.F64[r] = e.cF64
		}
		return out

	case eConstStr:
		out := e.ensureBuf(vec.Str, phys)
		ref := vec.StrRef(e.cInt)
		for _, r := range rows {
			out.Str[r] = ref
		}
		return out

	case eAdd, eSub, eMul, eDiv, eMod:
		l := e.l.Eval(qc, b)
		r := e.r.Eval(qc, b)
		out := e.ensureBuf(e.typ, phys)
		if e.typ == vec.F64 {
			for _, i := range rows {
				a, bb := asF64(l, int(i)), asF64(r, int(i))
				var v float64
				switch e.kind {
				case eAdd:
					v = a + bb
				case eSub:
					v = a - bb
				case eMul:
					v = a * bb
				case eDiv:
					if bb != 0 {
						v = a / bb
					}
				}
				out.F64[i] = v
			}
		} else if e.typ == vec.I128 {
			for _, i := range rows {
				a, bb := asI128(l, int(i)), asI128(r, int(i))
				var v i128.Int
				switch e.kind {
				case eAdd:
					v = i128.Add(a, bb)
				case eSub:
					v = i128.Sub(a, bb)
				case eMul:
					v = i128.MulInt64(a.Int64(), bb.Int64())
				case eDiv:
					if d := bb.Int64(); d != 0 {
						v = i128.FromInt64(a.Int64() / d)
					}
				case eMod:
					if d := bb.Int64(); d != 0 {
						v = i128.FromInt64(a.Int64() % d)
					}
				}
				out.I128[i] = v
			}
		} else {
			for _, i := range rows {
				a, bb := l.Int64At(int(i)), r.Int64At(int(i))
				var v int64
				switch e.kind {
				case eAdd:
					v = a + bb
				case eSub:
					v = a - bb
				case eMul:
					v = a * bb
				case eDiv:
					if bb != 0 {
						v = a / bb
					}
				case eMod:
					if bb != 0 {
						v = a % bb
					}
				}
				out.I64[i] = v
			}
		}
		propagateNulls(out, rows, e.l.nullable, l, e.r.nullable, r)
		return out

	case eF64:
		l := e.l.Eval(qc, b)
		out := e.ensureBuf(vec.F64, phys)
		switch l.Typ {
		case vec.F64:
			for _, i := range rows {
				out.F64[i] = l.F64[i]
			}
		case vec.I128:
			for _, i := range rows {
				x := l.I128[i]
				out.F64[i] = float64(x.Hi)*(1<<32)*(1<<32) + float64(x.Lo)
			}
		default:
			for _, i := range rows {
				out.F64[i] = float64(l.Int64At(int(i)))
			}
		}
		propagateNulls(out, rows, e.l.nullable, l, false, nil)
		return out

	case eCmp:
		l := e.l.Eval(qc, b)
		out := e.ensureBuf(vec.Bool, phys)
		// Compressed-execution fast paths: compare packed vectors in the
		// pack domain (constant translated once per batch) and
		// dictionary-coded vectors on their codes (code table pre-filtered
		// once per block's dictionary). Neither materializes the column.
		if l.Enc == vec.EncPacked && e.r.kind == eConstInt {
			e.cmpPackedConst(l, e.r.cInt, rows, out)
			return out
		}
		if l.Enc == vec.EncDict && e.r.kind == eConstStr {
			e.cmpDictConst(qc, l, rows, out)
			return out
		}
		r := e.r.Eval(qc, b)
		e.evalCmp(qc, l, r, rows, out)
		return out

	case eAnd:
		l := e.l.Eval(qc, b)
		r := e.r.Eval(qc, b)
		out := e.ensureBuf(vec.Bool, phys)
		for _, i := range rows {
			out.Bool[i] = l.Bool[i] && r.Bool[i]
		}
		return out

	case eOr:
		l := e.l.Eval(qc, b)
		r := e.r.Eval(qc, b)
		out := e.ensureBuf(vec.Bool, phys)
		for _, i := range rows {
			out.Bool[i] = l.Bool[i] || r.Bool[i]
		}
		return out

	case eNot:
		l := e.l.Eval(qc, b)
		out := e.ensureBuf(vec.Bool, phys)
		for _, i := range rows {
			out.Bool[i] = !l.Bool[i]
		}
		return out

	case eIsNull, eNotNull:
		l := e.l.Eval(qc, b)
		out := e.ensureBuf(vec.Bool, phys)
		want := e.kind == eIsNull
		for _, i := range rows {
			null := l.IsNull(int(i)) || (l.Typ == vec.Str && l.StrRefAt(int(i)) == nullStrRef)
			out.Bool[i] = null == want
		}
		return out

	case eLike, eNotLike:
		l := e.l.Eval(qc, b)
		out := e.ensureBuf(vec.Bool, phys)
		want := e.kind == eLike
		if e.scratch == nil {
			e.scratch = make([]byte, 0, 64)
		}
		if l.Enc == vec.EncDict {
			// Dictionary fast path: run the pattern over each distinct
			// string once per block, then map codes through the verdict
			// table.
			e.likeDictTable(qc, l, want)
			if l.Codes != nil {
				for _, i := range rows {
					out.Bool[i] = e.codeOK[l.Codes[i]] && !l.IsNull(int(i))
				}
			} else { // bit-packed codes (compressed sealed block)
				for _, i := range rows {
					out.Bool[i] = e.codeOK[l.CodeAt(int(i))] && !l.IsNull(int(i))
				}
			}
			return out
		}
		for _, i := range rows {
			ref := l.StrRefAt(int(i))
			if l.IsNull(int(i)) || ref == nullStrRef {
				out.Bool[i] = false
				continue
			}
			var raw []byte
			raw, e.scratch = qc.Store.Raw(ref, e.scratch)
			out.Bool[i] = e.like.match(raw) == want
		}
		return out

	case eSubstr:
		l := e.l.Eval(qc, b)
		out := e.ensureBuf(vec.Str, phys)
		for _, i := range rows {
			ref := l.StrRefAt(int(i))
			if l.IsNull(int(i)) || ref == nullStrRef {
				out.Str[i] = nullStrRef
				continue
			}
			s := qc.Store.Get(ref)
			if int64(len(s)) > e.cInt {
				s = s[:e.cInt]
			}
			out.Str[i] = qc.Store.Intern(s)
		}
		return out

	case eCase:
		cond := e.r.Eval(qc, b)
		then := e.l.Eval(qc, b)
		els := e.el.Eval(qc, b)
		out := e.ensureBuf(e.typ, phys)
		if e.typ == vec.F64 {
			for _, i := range rows {
				if cond.Bool[i] {
					out.F64[i] = asF64(then, int(i))
				} else {
					out.F64[i] = asF64(els, int(i))
				}
			}
		} else {
			for _, i := range rows {
				if cond.Bool[i] {
					out.SetInt64(int(i), then.Int64At(int(i)))
				} else {
					out.SetInt64(int(i), els.Int64At(int(i)))
				}
			}
		}
		return out
	}
	panic("exec: unhandled expression kind")
}

func (e *Expr) evalCmp(qc *QCtx, l, r *vec.Vector, rows []int32, out *vec.Vector) {
	nullFalse := func(i int32) bool {
		return l.IsNull(int(i)) || r.IsNull(int(i)) ||
			(l.Typ == vec.Str && l.StrRefAt(int(i)) == nullStrRef) ||
			(r.Typ == vec.Str && r.StrRefAt(int(i)) == nullStrRef)
	}
	switch {
	case l.Typ == vec.Str:
		st := qc.Store
		for _, i := range rows {
			if nullFalse(i) {
				out.Bool[i] = false
				continue
			}
			lr, rr := l.StrRefAt(int(i)), r.StrRefAt(int(i))
			var v bool
			switch e.op {
			case opEQ:
				v = st.Equal(lr, rr)
			case opNE:
				v = !st.Equal(lr, rr)
			default:
				v = cmpHolds(e.op, st.Compare(lr, rr))
			}
			out.Bool[i] = v
		}
	case l.Typ == vec.F64 || r.Typ == vec.F64:
		for _, i := range rows {
			if nullFalse(i) {
				out.Bool[i] = false
				continue
			}
			a, b := asF64(l, int(i)), asF64(r, int(i))
			var c int
			if a < b {
				c = -1
			} else if a > b {
				c = 1
			}
			out.Bool[i] = cmpHolds(e.op, c)
		}
	case l.Typ == vec.I128 || r.Typ == vec.I128:
		for _, i := range rows {
			if nullFalse(i) {
				out.Bool[i] = false
				continue
			}
			out.Bool[i] = cmpHolds(e.op, i128.Cmp(asI128(l, int(i)), asI128(r, int(i))))
		}
	default:
		for _, i := range rows {
			if nullFalse(i) {
				out.Bool[i] = false
				continue
			}
			a, b := l.Int64At(int(i)), r.Int64At(int(i))
			var c int
			if a < b {
				c = -1
			} else if a > b {
				c = 1
			}
			out.Bool[i] = cmpHolds(e.op, c)
		}
	}
}

// cmpPackedConst compares a frame-of-reference packed vector against an
// integer constant without unpacking: the constant is translated into the
// pack domain once, then each row compares its raw bit-packed offset.
// Constants outside the pack domain collapse to a constant verdict.
//
//ocht:hot
func (e *Expr) cmpPackedConst(l *vec.Vector, c int64, rows []int32, out *vec.Vector) {
	co := c - l.PackMin
	bits := uint(l.PackBits)
	per := 64 / l.PackBits
	mask := uint64(1)<<bits - 1
	if co < 0 || uint64(co) > mask {
		// The constant lies outside any representable offset, so every
		// non-NULL row resolves the same way.
		var res bool
		switch e.op {
		case opEQ:
			res = false
		case opNE:
			res = true
		case opLT, opLE:
			res = co > int64(mask)
		case opGT, opGE:
			res = co < 0
		}
		for _, i := range rows {
			out.Bool[i] = res && !l.IsNull(int(i))
		}
		return
	}
	cu := uint64(co)
	op := e.op
	if pack.DenseRows(rows) {
		// Unfiltered batches take the SWAR kernel: one guard-bit subtract
		// compares up to 32 packed lanes per word (CmpOp mirrors cmpOp's
		// constant order). NULLs are cleared in a second pass.
		n := len(rows)
		pack.SwarCmpConst(l.Packed, l.PackBits, l.PackOff, n, cu, pack.CmpOp(op), out.Bool)
		if l.Nulls != nil {
			for i := 0; i < n; i++ {
				out.Bool[i] = out.Bool[i] && !l.Nulls[i]
			}
		}
		return
	}
	for _, i := range rows {
		j := l.PackOff + int(i)
		off := (l.Packed[j/per] >> (uint(j%per) * bits)) & mask
		var v bool
		switch op {
		case opEQ:
			v = off == cu
		case opNE:
			v = off != cu
		case opLT:
			v = off < cu
		case opLE:
			v = off <= cu
		case opGT:
			v = off > cu
		case opGE:
			v = off >= cu
		}
		out.Bool[i] = v && !l.IsNull(int(i))
	}
}

// cmpDictConst compares a dictionary-coded string vector against a string
// constant by pre-filtering the code table: each distinct string is
// compared once per block, then rows just index the verdict table.
//
//ocht:hot
func (e *Expr) cmpDictConst(qc *QCtx, l *vec.Vector, rows []int32, out *vec.Vector) {
	e.ensureCodeOK(l)
	if e.codeStale {
		e.codeStale = false
		st := qc.Store
		cref := vec.StrRef(e.r.cInt)
		for c, ref := range l.DictRefs {
			var v bool
			switch e.op {
			case opEQ:
				v = st.Equal(ref, cref)
			case opNE:
				v = !st.Equal(ref, cref)
			default:
				v = cmpHolds(e.op, st.Compare(ref, cref))
			}
			e.codeOK[c] = v
		}
	}
	if l.Codes != nil {
		for _, i := range rows {
			out.Bool[i] = e.codeOK[l.Codes[i]] && !l.IsNull(int(i))
		}
	} else { // bit-packed codes (compressed sealed block)
		for _, i := range rows {
			out.Bool[i] = e.codeOK[l.CodeAt(int(i))] && !l.IsNull(int(i))
		}
	}
}

// likeDictTable (re)builds the per-code LIKE verdict table when the block's
// dictionary changed since the last batch.
func (e *Expr) likeDictTable(qc *QCtx, l *vec.Vector, want bool) {
	e.ensureCodeOK(l)
	if !e.codeStale {
		return
	}
	e.codeStale = false
	for c, ref := range l.DictRefs {
		var raw []byte
		raw, e.scratch = qc.Store.Raw(ref, e.scratch)
		e.codeOK[c] = e.like.match(raw) == want
	}
}

// ensureCodeOK sizes the per-code verdict table for l's dictionary and
// marks it stale when the dictionary is not the one it was built for.
// Batches windowed out of one block share the same DictRefs slice, so the
// identity check amortizes the rebuild over the whole block.
func (e *Expr) ensureCodeOK(l *vec.Vector) {
	d := l.DictRefs
	if len(e.codeDict) == len(d) && len(d) > 0 && &e.codeDict[0] == &d[0] {
		return
	}
	if cap(e.codeOK) < len(d) {
		e.codeOK = make([]bool, len(d))
	}
	e.codeOK = e.codeOK[:len(d)]
	e.codeDict = d
	e.codeStale = true
}

func cmpHolds(op cmpOp, c int) bool {
	switch op {
	case opEQ:
		return c == 0
	case opNE:
		return c != 0
	case opLT:
		return c < 0
	case opLE:
		return c <= 0
	case opGT:
		return c > 0
	case opGE:
		return c >= 0
	}
	return false
}

func asF64(v *vec.Vector, i int) float64 {
	switch v.Typ {
	case vec.F64:
		return v.F64[i]
	case vec.I128:
		x := v.I128[i]
		return float64(x.Hi)*(1<<32)*(1<<32) + float64(x.Lo)
	}
	return float64(v.Int64At(i))
}

// asI128 reads a row as a 128-bit integer, widening narrow integers.
func asI128(v *vec.Vector, i int) i128.Int {
	if v.Typ == vec.I128 {
		return v.I128[i]
	}
	return i128.FromInt64(v.Int64At(i))
}

func propagateNulls(out *vec.Vector, rows []int32, ln bool, l *vec.Vector, rn bool, r *vec.Vector) {
	if !ln && !rn {
		return
	}
	for _, i := range rows {
		if (ln && l.IsNull(int(i))) || (rn && r != nil && r.IsNull(int(i))) {
			out.SetNull(int(i))
		}
	}
}
