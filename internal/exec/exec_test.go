package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

var allFlags = []core.Flags{
	{},
	{Compress: true},
	{UseUSSR: true},
	{Split: true},
	{Compress: true, Split: true},
	core.All(),
}

func flagName(f core.Flags) string {
	return fmt.Sprintf("c%v-s%v-u%v", f.Compress, f.Split, f.UseUSSR)
}

// fixtures

func salesTable(n int) *storage.Table {
	region := storage.NewColumn("region", vec.Str, false)
	qty := storage.NewColumn("qty", vec.I32, false)
	price := storage.NewColumn("price", vec.I64, false)
	note := storage.NewColumn("note", vec.Str, true)
	regions := []string{"north", "south", "east", "west"}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < n; i++ {
		region.AppendString(regions[i%len(regions)])
		qty.AppendInt(int64(rng.Intn(50)) + 1)
		price.AppendInt(int64(rng.Intn(10000)) + 100)
		if i%7 == 0 {
			note.AppendNull()
		} else {
			note.AppendString(fmt.Sprintf("note-%d", i%10))
		}
	}
	t := storage.NewTable("sales", region, qty, price, note)
	t.Seal()
	return t
}

func runAll(t *testing.T, build func() Op) map[string]*Result {
	t.Helper()
	results := map[string]*Result{}
	for _, f := range allFlags {
		qc := NewQCtx(f)
		res := Run(qc, build())
		results[flagName(f)] = res
	}
	return results
}

// sortedRows renders rows as sorted strings for order-insensitive
// comparison.
func sortedRows(r *Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		s := ""
		for _, v := range row {
			s += v.String() + "|"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func assertAllEqual(t *testing.T, results map[string]*Result) {
	t.Helper()
	var ref []string
	var refName string
	for name, r := range results {
		got := sortedRows(r)
		if ref == nil {
			ref, refName = got, name
			continue
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("results differ between %s and %s:\n%v\nvs\n%v", refName, name, ref, got)
		}
	}
}

func TestScanFilterProject(t *testing.T) {
	tab := salesTable(5000)
	results := runAll(t, func() Op {
		scan := NewScan(tab, "region", "qty", "price")
		m := scan.Meta()
		f := NewFilter(scan, And(Gt(Col(m, "qty"), Int(25)), Eq(Col(m, "region"), Str("north"))))
		return NewProject(f, []string{"qty", "revenue"}, []*Expr{
			Col(m, "qty"),
			Mul(Col(m, "qty"), Col(m, "price")),
		})
	})
	assertAllEqual(t, results)
	// Spot-check against a scalar reimplementation.
	r := results["c%v-s%v-u%v"]
	_ = r
	any := results[flagName(core.All())]
	if len(any.Rows) == 0 {
		t.Fatal("filter killed everything")
	}
	for _, row := range any.Rows {
		if row[0].I <= 25 {
			t.Fatal("filter violated")
		}
	}
}

func TestGroupByStringKey(t *testing.T) {
	tab := salesTable(20_000)
	results := runAll(t, func() Op {
		scan := NewScan(tab, "region", "qty")
		m := scan.Meta()
		return NewHashAgg(scan,
			[]string{"region"}, []*Expr{Col(m, "region")},
			[]AggExpr{
				{Func: agg.Sum, Arg: Col(m, "qty"), Name: "sum_qty"},
				{Func: agg.CountStar, Name: "cnt"},
				{Func: agg.Min, Arg: Col(m, "qty"), Name: "min_qty"},
				{Func: agg.Max, Arg: Col(m, "qty"), Name: "max_qty"},
				{Func: Avg, Arg: Col(m, "qty"), Name: "avg_qty"},
			})
	})
	assertAllEqual(t, results)
	r := results[flagName(core.Flags{})]
	if len(r.Rows) != 4 {
		t.Fatalf("expected 4 regions, got %d", len(r.Rows))
	}
	var total int64
	for _, row := range r.Rows {
		total += row[2].I // cnt
	}
	if total != 20_000 {
		t.Fatalf("counts sum to %d", total)
	}
}

func TestGroupByNullableKey(t *testing.T) {
	tab := salesTable(10_000)
	results := runAll(t, func() Op {
		scan := NewScan(tab, "note")
		m := scan.Meta()
		return NewHashAgg(scan,
			[]string{"note"}, []*Expr{Col(m, "note")},
			[]AggExpr{{Func: agg.CountStar, Name: "cnt"}})
	})
	assertAllEqual(t, results)
	r := results[flagName(core.All())]
	// 10 distinct notes + the NULL group.
	if len(r.Rows) != 11 {
		t.Fatalf("expected 11 groups, got %d:\n%s", len(r.Rows), r)
	}
	nullCnt := int64(0)
	for _, row := range r.Rows {
		if row[0].Null {
			nullCnt = row[1].I
		}
	}
	// i%7==0 for i in [0,10000): 1429 rows.
	if nullCnt != 1429 {
		t.Fatalf("NULL group count %d", nullCnt)
	}
}

func TestNullableIntKeyAndAggregateSkipsNulls(t *testing.T) {
	v := storage.NewColumn("v", vec.I64, true)
	k := storage.NewColumn("k", vec.I64, true)
	// k: 0,1,NULL cycling; v: NULL every 4th.
	for i := 0; i < 1200; i++ {
		switch i % 3 {
		case 2:
			k.AppendNull()
		default:
			k.AppendInt(int64(i % 3))
		}
		if i%4 == 0 {
			v.AppendNull()
		} else {
			v.AppendInt(1)
		}
	}
	tab := storage.NewTable("t", k, v)
	tab.Seal()
	results := runAll(t, func() Op {
		scan := NewScan(tab, "k", "v")
		m := scan.Meta()
		return NewHashAgg(scan,
			[]string{"k"}, []*Expr{Col(m, "k")},
			[]AggExpr{
				{Func: agg.Count, Arg: Col(m, "v"), Name: "cnt_v"},
				{Func: agg.CountStar, Name: "cnt"},
			})
	})
	assertAllEqual(t, results)
	r := results[flagName(core.Flags{Compress: true})]
	if len(r.Rows) != 3 {
		t.Fatalf("expected 3 groups (0, 1, NULL), got %d:\n%s", len(r.Rows), r)
	}
	for _, row := range r.Rows {
		if row[1].I >= row[2].I {
			t.Fatalf("COUNT(v) must be below COUNT(*) (NULLs skipped): %s", r)
		}
	}
}

func buildJoinTables() (*storage.Table, *storage.Table) {
	// dim: 100 rows (id, name); fact: 5000 rows (fk, val), fk in [0,150)
	// so ~1/3 of fact rows miss.
	id := storage.NewColumn("id", vec.I64, false)
	name := storage.NewColumn("name", vec.Str, false)
	for i := 0; i < 100; i++ {
		id.AppendInt(int64(i))
		name.AppendString(fmt.Sprintf("dim-%02d", i))
	}
	dim := storage.NewTable("dim", id, name)
	dim.Seal()

	fk := storage.NewColumn("fk", vec.I64, false)
	val := storage.NewColumn("val", vec.I64, false)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		fk.AppendInt(int64(rng.Intn(150)))
		val.AppendInt(int64(i))
	}
	fact := storage.NewTable("fact", fk, val)
	fact.Seal()
	return dim, fact
}

func TestHashJoinInner(t *testing.T) {
	dim, fact := buildJoinTables()
	results := runAll(t, func() Op {
		return NewHashJoin(Inner,
			NewScan(fact, "fk", "val"),
			NewScan(dim, "id", "name"),
			[]string{"fk"}, []string{"id"}, []string{"name"})
	})
	assertAllEqual(t, results)
	r := results[flagName(core.All())]
	// Expected matches: fact rows with fk < 100.
	want := 0
	qc := NewQCtx(core.Vanilla())
	full := Run(qc, NewScan(fact, "fk"))
	for _, row := range full.Rows {
		if row[0].I < 100 {
			want++
		}
	}
	if len(r.Rows) != want {
		t.Fatalf("join found %d rows, want %d", len(r.Rows), want)
	}
	for _, row := range r.Rows {
		wantName := fmt.Sprintf("dim-%02d", row[0].I)
		if row[2].S != wantName {
			t.Fatalf("payload %q for fk %d", row[2].S, row[0].I)
		}
	}
}

func TestHashJoinSemiAnti(t *testing.T) {
	dim, fact := buildJoinTables()
	semi := runAll(t, func() Op {
		return NewHashJoin(Semi,
			NewScan(fact, "fk", "val"),
			NewScan(dim, "id"),
			[]string{"fk"}, []string{"id"}, nil)
	})
	assertAllEqual(t, semi)
	anti := runAll(t, func() Op {
		return NewHashJoin(Anti,
			NewScan(fact, "fk", "val"),
			NewScan(dim, "id"),
			[]string{"fk"}, []string{"id"}, nil)
	})
	assertAllEqual(t, anti)
	nSemi := len(semi[flagName(core.All())].Rows)
	nAnti := len(anti[flagName(core.All())].Rows)
	if nSemi+nAnti != 5000 {
		t.Fatalf("semi %d + anti %d != 5000", nSemi, nAnti)
	}
	if nSemi == 0 || nAnti == 0 {
		t.Fatal("both sides must be non-empty")
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	dim, fact := buildJoinTables()
	results := runAll(t, func() Op {
		return NewHashJoin(LeftOuter,
			NewScan(fact, "fk", "val"),
			NewScan(dim, "id", "name"),
			[]string{"fk"}, []string{"id"}, []string{"name"})
	})
	assertAllEqual(t, results)
	r := results[flagName(core.Flags{Compress: true})]
	if len(r.Rows) != 5000 {
		t.Fatalf("left outer must keep all %d probe rows, got %d", 5000, len(r.Rows))
	}
	nulls := 0
	for _, row := range r.Rows {
		if row[2].Null {
			nulls++
			if row[0].I < 100 {
				t.Fatal("matched row emitted with NULL payload")
			}
		}
	}
	if nulls == 0 {
		t.Fatal("expected NULL payloads for fk >= 100")
	}
}

func TestLikeAndCase(t *testing.T) {
	tab := salesTable(2000)
	results := runAll(t, func() Op {
		scan := NewScan(tab, "region", "qty")
		m := scan.Meta()
		proj := NewProject(scan, []string{"is_no", "qty2"}, []*Expr{
			Like(Col(m, "region"), "no%"),
			Case(Eq(Col(m, "region"), Str("north")), Col(m, "qty"), Int(0)),
		})
		pm := proj.Meta()
		return NewHashAgg(proj, nil, nil, []AggExpr{
			{Func: agg.Sum, Arg: Col(pm, "qty2"), Name: "north_qty"},
			{Func: agg.CountStar, Name: "cnt"},
		})
	})
	assertAllEqual(t, results)
}

func TestResultOrderLimit(t *testing.T) {
	tab := salesTable(1000)
	qc := NewQCtx(core.All())
	scan := NewScan(tab, "region", "qty")
	m := scan.Meta()
	h := NewHashAgg(scan, []string{"region"}, []*Expr{Col(m, "region")},
		[]AggExpr{{Func: agg.Sum, Arg: Col(m, "qty"), Name: "s"}})
	r := Run(qc, h).OrderBy(SortKey{Col: 1, Desc: true}).Limit(2)
	if len(r.Rows) != 2 {
		t.Fatal("limit")
	}
	if r.Rows[0][1].Less(r.Rows[1][1]) {
		t.Fatal("descending order violated")
	}
}

func TestFootprintReductionEndToEnd(t *testing.T) {
	tab := salesTable(60_000)
	mk := func(flags core.Flags) *QCtx {
		qc := NewQCtx(flags)
		scan := NewScan(tab, "qty", "price")
		m := scan.Meta()
		h := NewHashAgg(scan,
			[]string{"qty", "price"}, []*Expr{Col(m, "qty"), Col(m, "price")},
			[]AggExpr{{Func: agg.Sum, Arg: Mul(Col(m, "qty"), Col(m, "price")), Name: "rev"}})
		Run(qc, h)
		return qc
	}
	vanilla := mk(core.Vanilla())
	opt := mk(core.Flags{Compress: true, Split: true})
	if opt.HashTableBytes() >= vanilla.HashTableBytes() {
		t.Errorf("optimized table %dB must undercut vanilla %dB",
			opt.HashTableBytes(), vanilla.HashTableBytes())
	}
}

func TestStatsCollected(t *testing.T) {
	tab := salesTable(5000)
	qc := NewQCtx(core.All())
	scan := NewScan(tab, "region")
	m := scan.Meta()
	Run(qc, NewHashAgg(scan, []string{"region"}, []*Expr{Col(m, "region")},
		[]AggExpr{{Func: agg.CountStar, Name: "c"}}))
	if qc.Stats.Get(StatScan) == 0 || qc.Stats.Get(StatHash) == 0 || qc.Stats.Get(StatLookup) == 0 {
		t.Errorf("missing stats buckets:\n%s", qc.Stats)
	}
}
