package exec

import (
	"bytes"
	"fmt"
	"strings"

	"ocht/internal/domain"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

// Meta describes one column of an operator's output.
type Meta struct {
	Name     string
	Type     vec.Type
	Dom      domain.D
	Nullable bool

	// Distinct is an upper bound on the column's distinct value count, 0
	// when unknown. Scans derive it from per-block dictionary sizes for
	// string columns (whose Dom carries no cardinality); it feeds the
	// group-count estimate behind partition-width choice and the
	// partition-wise parallel aggregation gate, never result layouts.
	Distinct int64
}

type exprKind uint8

const (
	eCol exprKind = iota
	eConstInt
	eConstStr
	eConstF64
	eAdd
	eSub
	eMul
	eDiv
	eMod
	eCmp // with cmpOp
	eAnd
	eOr
	eNot
	eIsNull
	eNotNull
	eLike
	eNotLike
	eCase // cond ? then : else
	eF64  // int -> float conversion
	eSubstr
)

type cmpOp uint8

const (
	opEQ cmpOp = iota
	opNE
	opLT
	opLE
	opGT
	opGE
)

// Expr is a bound scalar expression over an operator's output schema.
// Expressions carry their derived domain (Section II-A: "if a value stems
// from a computation, the domain minimum and maximum can be derived bottom
// up").
type Expr struct {
	kind     exprKind
	op       cmpOp
	col      int
	cInt     int64
	cF64     float64
	cStr     string
	like     likePattern
	l, r, el *Expr  // operands; el is CASE's else branch
	scratch  []byte // reusable string buffer (LIKE, SUBSTRING)

	// Per-dictionary verdict table for comparisons/LIKE over
	// dictionary-coded vectors: one bool per code, rebuilt only when the
	// block dictionary (identified by codeDict) changes.
	codeOK    []bool
	codeDict  []vec.StrRef
	codeStale bool

	typ      vec.Type
	dom      domain.D
	nullable bool
	distinct int64 // column references: Meta.Distinct, else 0

	buf *vec.Vector // reusable output buffer
}

// Type returns the expression's output type.
func (e *Expr) Type() vec.Type { return e.typ }

// Dom returns the expression's derived domain.
func (e *Expr) Dom() domain.D { return e.dom }

// Nullable reports whether the expression can produce NULL.
func (e *Expr) Nullable() bool { return e.nullable }

// DistinctBound returns an upper bound on the expression's distinct value
// count, 0 when unknown. Only column references carry one (from the
// scan's per-block dictionary metadata); derived expressions estimate
// through their domain instead.
func (e *Expr) DistinctBound() int64 { return e.distinct }

// Col references column i of the input schema.
func Col(schema []Meta, name string) *Expr {
	for i, m := range schema {
		if m.Name == name {
			return &Expr{kind: eCol, col: i, typ: m.Type, dom: m.Dom, nullable: m.Nullable, distinct: m.Distinct}
		}
	}
	panic(fmt.Sprintf("exec: unknown column %q in schema %v", name, names(schema)))
}

// ColIdx references column i of the input schema by position.
func ColIdx(schema []Meta, i int) *Expr {
	m := schema[i]
	return &Expr{kind: eCol, col: i, typ: m.Type, dom: m.Dom, nullable: m.Nullable, distinct: m.Distinct}
}

func names(schema []Meta) []string {
	out := make([]string, len(schema))
	for i, m := range schema {
		out[i] = m.Name
	}
	return out
}

// Int is an integer literal.
func Int(v int64) *Expr {
	return &Expr{kind: eConstInt, cInt: v, typ: vec.I64, dom: domain.Const(v)}
}

// F64Const is a float literal.
func F64Const(v float64) *Expr {
	return &Expr{kind: eConstF64, cF64: v, typ: vec.F64, dom: domain.Unknown}
}

// Str is a string literal. The literal is interned per query at Open time
// (query constants get USSR priority, Section IV-D).
func Str(s string) *Expr {
	return &Expr{kind: eConstStr, cStr: s, typ: vec.Str, dom: domain.Unknown}
}

func arith(kind exprKind, l, r *Expr) *Expr {
	e := &Expr{kind: kind, l: l, r: r, nullable: l.nullable || r.nullable}
	if l.typ == vec.F64 || r.typ == vec.F64 {
		e.typ = vec.F64
		e.dom = domain.Unknown
		return e
	}
	if l.typ == vec.I128 || r.typ == vec.I128 {
		// Wide operands (merged SUM partials) stay wide: addition and
		// subtraction are exact in 128 bits; multiplicative ops compute on
		// the wrapped low 64 bits, matching int64 overflow semantics.
		e.typ = vec.I128
		e.dom = domain.Unknown
		return e
	}
	e.typ = vec.I64
	switch kind {
	case eAdd:
		e.dom = domain.Add(l.dom, r.dom)
	case eSub:
		e.dom = domain.Sub(l.dom, r.dom)
	case eMul:
		e.dom = domain.Mul(l.dom, r.dom)
	case eDiv:
		// Division bounds: conservative, derived only for positive
		// constant divisors (the year-extraction pattern date/10000).
		if r.kind == eConstInt && r.cInt > 0 && l.dom.Valid {
			e.dom = domain.New(floorDiv(l.dom.Min, r.cInt), floorDiv(l.dom.Max, r.cInt))
		} else {
			e.dom = domain.Unknown
		}
	case eMod:
		if r.kind == eConstInt && r.cInt > 0 {
			e.dom = domain.New(0, r.cInt-1)
			if l.dom.Valid && l.dom.Min < 0 {
				e.dom = domain.New(-(r.cInt - 1), r.cInt-1)
			}
		} else {
			e.dom = domain.Unknown
		}
	}
	return e
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Add returns l+r.
func Add(l, r *Expr) *Expr { return arith(eAdd, l, r) }

// Sub returns l-r.
func Sub(l, r *Expr) *Expr { return arith(eSub, l, r) }

// Mul returns l*r.
func Mul(l, r *Expr) *Expr { return arith(eMul, l, r) }

// Div returns l/r (integer or float division by type).
func Div(l, r *Expr) *Expr { return arith(eDiv, l, r) }

// Mod returns l%r.
func Mod(l, r *Expr) *Expr { return arith(eMod, l, r) }

// ToF64 converts an integer expression to float64.
func ToF64(l *Expr) *Expr {
	return &Expr{kind: eF64, l: l, typ: vec.F64, dom: domain.Unknown, nullable: l.nullable}
}

func cmp(op cmpOp, l, r *Expr) *Expr {
	return &Expr{kind: eCmp, op: op, l: l, r: r, typ: vec.Bool, dom: domain.New(0, 1)}
}

// Eq returns l == r.
func Eq(l, r *Expr) *Expr { return cmp(opEQ, l, r) }

// Ne returns l != r.
func Ne(l, r *Expr) *Expr { return cmp(opNE, l, r) }

// Lt returns l < r.
func Lt(l, r *Expr) *Expr { return cmp(opLT, l, r) }

// Le returns l <= r.
func Le(l, r *Expr) *Expr { return cmp(opLE, l, r) }

// Gt returns l > r.
func Gt(l, r *Expr) *Expr { return cmp(opGT, l, r) }

// Ge returns l >= r.
func Ge(l, r *Expr) *Expr { return cmp(opGE, l, r) }

// Between returns lo <= e AND e <= hi.
func Between(e, lo, hi *Expr) *Expr { return And(Ge(e, lo), Le(e, hi)) }

// And returns l AND r.
func And(l, r *Expr) *Expr {
	return &Expr{kind: eAnd, l: l, r: r, typ: vec.Bool, dom: domain.New(0, 1)}
}

// Or returns l OR r.
func Or(l, r *Expr) *Expr {
	return &Expr{kind: eOr, l: l, r: r, typ: vec.Bool, dom: domain.New(0, 1)}
}

// Not returns NOT l.
func Not(l *Expr) *Expr {
	return &Expr{kind: eNot, l: l, typ: vec.Bool, dom: domain.New(0, 1)}
}

// IsNull tests l IS NULL.
func IsNull(l *Expr) *Expr {
	return &Expr{kind: eIsNull, l: l, typ: vec.Bool, dom: domain.New(0, 1)}
}

// IsNotNull tests l IS NOT NULL.
func IsNotNull(l *Expr) *Expr {
	return &Expr{kind: eNotNull, l: l, typ: vec.Bool, dom: domain.New(0, 1)}
}

// In returns e = v1 OR e = v2 OR ...
func In(e *Expr, vals ...*Expr) *Expr {
	out := Eq(e, vals[0])
	for _, v := range vals[1:] {
		out = Or(out, Eq(e, v))
	}
	return out
}

// Like matches a SQL LIKE pattern with % wildcards (no _ support — the
// TPC-H and BI query texts only use %).
func Like(l *Expr, pattern string) *Expr {
	return &Expr{kind: eLike, l: l, like: compileLike(pattern), typ: vec.Bool, dom: domain.New(0, 1)}
}

// NotLike is NOT (l LIKE pattern).
func NotLike(l *Expr, pattern string) *Expr {
	return &Expr{kind: eNotLike, l: l, like: compileLike(pattern), typ: vec.Bool, dom: domain.New(0, 1)}
}

// Substr returns the first n bytes of a string expression (SQL
// substring(e, 1, n)), interned into the query's string store.
func Substr(l *Expr, n int) *Expr {
	return &Expr{kind: eSubstr, l: l, cInt: int64(n), typ: vec.Str, nullable: l.nullable}
}

// Case returns CASE WHEN cond THEN then ELSE els END.
func Case(cond, then, els *Expr) *Expr {
	e := &Expr{kind: eCase, l: then, r: cond, el: els,
		typ: then.typ, nullable: then.nullable || els.nullable}
	if then.typ == vec.F64 || els.typ == vec.F64 {
		e.typ = vec.F64
		e.dom = domain.Unknown
	} else {
		e.dom = domain.Union(then.dom, els.dom)
	}
	return e
}

type likePattern struct {
	segments    []string
	startAnchor bool
	endAnchor   bool
}

func compileLike(p string) likePattern {
	lp := likePattern{
		startAnchor: !strings.HasPrefix(p, "%"),
		endAnchor:   !strings.HasSuffix(p, "%"),
	}
	for _, seg := range strings.Split(p, "%") {
		if seg != "" {
			lp.segments = append(lp.segments, seg)
		}
	}
	return lp
}

func (lp likePattern) match(s []byte) bool {
	segs := lp.segments
	if len(segs) == 0 {
		return true
	}
	if lp.startAnchor {
		if len(s) < len(segs[0]) || string(s[:len(segs[0])]) != segs[0] {
			return false
		}
		s = s[len(segs[0]):]
		segs = segs[1:]
	}
	endSeg := ""
	if lp.endAnchor && len(segs) > 0 {
		endSeg = segs[len(segs)-1]
		segs = segs[:len(segs)-1]
	}
	for _, seg := range segs {
		i := bytes.Index(s, []byte(seg))
		if i < 0 {
			return false
		}
		s = s[i+len(seg):]
	}
	if lp.endAnchor {
		if endSeg == "" {
			// The pattern had no % at all: the prefix must consume
			// everything.
			return len(s) == 0
		}
		return len(s) >= len(endSeg) && string(s[len(s)-len(endSeg):]) == endSeg
	}
	return true
}

// interned resolves the string constants of an expression tree at query
// open, giving query-text constants USSR insertion priority.
func (e *Expr) intern(st *strs.Store) {
	if e == nil {
		return
	}
	if e.kind == eConstStr {
		e.cInt = int64(st.InternConstant(e.cStr))
	}
	e.l.intern(st)
	e.r.intern(st)
	e.el.intern(st)
}
