package exec

import (
	"testing"

	"ocht/internal/core"
	"ocht/internal/domain"
	"ocht/internal/vec"
)

func likeMatches(pattern, s string) bool {
	return compileLike(pattern).match([]byte(s))
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		pattern string
		s       string
		want    bool
	}{
		{"PROMO%", "PROMO BURNISHED TIN", true},
		{"PROMO%", "STANDARD PROMO", false},
		{"%BRASS", "LARGE POLISHED BRASS", true},
		{"%BRASS", "BRASS PLATED TIN", false},
		{"%green%", "dark green metallic", true},
		{"%green%", "greenish", true},
		{"%green%", "red blue", false},
		{"%special%requests%", "very special case requests pending", true},
		{"%special%requests%", "requests special", false}, // order matters
		{"forest%", "forest green", true},
		{"forest%", "the forest", false},
		{"MEDIUM POLISHED%", "MEDIUM POLISHED TIN", true},
		{"MEDIUM POLISHED%", "MEDIUM PLATED TIN", false},
		{"%", "anything", true},
		{"%", "", true},
		{"abc", "abc", true},
		{"abc", "abcd", false},
		{"a%c", "abbbc", true},
		{"a%c", "abbb", false},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "acb", false},
	}
	for _, c := range cases {
		if got := likeMatches(c.pattern, c.s); got != c.want {
			t.Errorf("LIKE %q on %q = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestExprDomains(t *testing.T) {
	schema := []Meta{
		{Name: "a", Type: vec.I64, Dom: domain.New(-4, 42)},
		{Name: "b", Type: vec.I32, Dom: domain.New(3, 1000)},
	}
	a, b := Col(schema, "a"), Col(schema, "b")
	if got := Add(a, b).Dom(); got != domain.New(-1, 1042) {
		t.Errorf("Add dom %v", got)
	}
	if got := Sub(a, b).Dom(); got != domain.New(-1004, 39) {
		t.Errorf("Sub dom %v", got)
	}
	if got := Mul(a, Int(10)).Dom(); got != domain.New(-40, 420) {
		t.Errorf("Mul dom %v", got)
	}
	if got := Div(b, Int(100)).Dom(); got != domain.New(0, 10) {
		t.Errorf("Div dom %v", got)
	}
	if got := Mod(a, Int(7)).Dom(); got != domain.New(-6, 6) {
		t.Errorf("Mod dom %v", got)
	}
	if got := Case(Eq(a, Int(1)), a, Int(0)).Dom(); got != domain.New(-4, 42) {
		t.Errorf("Case dom %v", got)
	}
	if Eq(a, b).Type() != vec.Bool {
		t.Error("cmp type")
	}
}

// evalBatch builds a one-column batch and evaluates e for all rows.
func evalBatch(t *testing.T, e *Expr, col *vec.Vector, n int) *vec.Vector {
	t.Helper()
	qc := NewQCtx(core.All())
	e.intern(qc.Store)
	b := &vec.Batch{Vecs: []*vec.Vector{col}, N: n}
	return e.Eval(qc, b)
}

func TestArithmeticEval(t *testing.T) {
	schema := []Meta{{Name: "x", Type: vec.I64, Dom: domain.New(0, 100)}}
	col := vec.New(vec.I64, 4)
	col.I64 = []int64{0, 7, 50, 100}
	x := Col(schema, "x")
	out := evalBatch(t, Add(Mul(x, Int(3)), Int(1)), col, 4)
	want := []int64{1, 22, 151, 301}
	for i, w := range want {
		if out.I64[i] != w {
			t.Errorf("row %d: %d want %d", i, out.I64[i], w)
		}
	}
	// Division by zero yields zero, not a panic.
	out = evalBatch(t, Div(Int(10), Sub(Col(schema, "x"), Col(schema, "x"))), col, 4)
	if out.I64[0] != 0 {
		t.Error("x/0 must be 0")
	}
}

func TestFloatEval(t *testing.T) {
	schema := []Meta{{Name: "x", Type: vec.I64, Dom: domain.New(1, 10)}}
	col := vec.New(vec.I64, 2)
	col.I64 = []int64{4, 8}
	e := Div(ToF64(Col(schema, "x")), F64Const(2))
	out := evalBatch(t, e, col, 2)
	if out.F64[0] != 2 || out.F64[1] != 4 {
		t.Errorf("float eval: %v", out.F64[:2])
	}
}

func TestNullPropagation(t *testing.T) {
	schema := []Meta{{Name: "x", Type: vec.I64, Dom: domain.New(0, 10), Nullable: true}}
	col := vec.New(vec.I64, 3)
	col.I64 = []int64{1, 2, 3}
	col.Nulls = []bool{false, true, false}
	x := Col(schema, "x")

	sum := evalBatch(t, Add(x, Int(1)), col, 3)
	if !sum.IsNull(1) || sum.IsNull(0) {
		t.Error("arithmetic null propagation")
	}
	cmp := evalBatch(t, Gt(x, Int(0)), col, 3)
	if cmp.Bool[1] {
		t.Error("NULL > 0 must be false")
	}
	isn := evalBatch(t, IsNull(x), col, 3)
	if !isn.Bool[1] || isn.Bool[0] {
		t.Error("IS NULL")
	}
}

func TestSubstrEval(t *testing.T) {
	qc := NewQCtx(core.All())
	schema := []Meta{{Name: "s", Type: vec.Str}}
	col := vec.New(vec.Str, 2)
	col.Str[0] = qc.Store.Intern("hello world")
	col.Str[1] = qc.Store.Intern("a")
	e := Substr(Col(schema, "s"), 5)
	e.intern(qc.Store)
	b := &vec.Batch{Vecs: []*vec.Vector{col}, N: 2}
	out := e.Eval(qc, b)
	if qc.Store.Get(out.Str[0]) != "hello" {
		t.Errorf("substr: %q", qc.Store.Get(out.Str[0]))
	}
	if qc.Store.Get(out.Str[1]) != "a" {
		t.Error("short strings pass through")
	}
}

func TestStrEqualityWithConstant(t *testing.T) {
	qc := NewQCtx(core.All())
	schema := []Meta{{Name: "s", Type: vec.Str}}
	col := vec.New(vec.Str, 3)
	col.Str[0] = qc.Store.Intern("north")
	col.Str[1] = qc.Store.Intern("south")
	col.Str[2] = qc.Store.Intern("north")
	e := Eq(Col(schema, "s"), Str("north"))
	e.intern(qc.Store)
	b := &vec.Batch{Vecs: []*vec.Vector{col}, N: 3}
	out := e.Eval(qc, b)
	if !out.Bool[0] || out.Bool[1] || !out.Bool[2] {
		t.Error("string equality")
	}
	// Constant interning means the comparison hits the USSR fast path.
	qc.Store.ResetCounters()
	e.Eval(qc, b)
	if qc.Store.EqualFast != 3 || qc.Store.EqualSlow != 0 {
		t.Errorf("expected all-fast comparisons: fast=%d slow=%d",
			qc.Store.EqualFast, qc.Store.EqualSlow)
	}
}

func TestColUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Col([]Meta{{Name: "a"}}, "zzz")
}
