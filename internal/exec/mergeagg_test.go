package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// shardSales splits the sales fixture into k disjoint storage tables the
// way hash partitioning would, with deliberately skewed shard sizes.
func shardSales(n, k int) []*storage.Table {
	regions := []string{"north", "south", "east", "west"}
	rng := rand.New(rand.NewSource(77)) // same stream as salesTable
	cols := make([][]*storage.Column, k)
	for s := range cols {
		cols[s] = []*storage.Column{
			storage.NewColumn("region", vec.Str, false),
			storage.NewColumn("qty", vec.I32, false),
			storage.NewColumn("price", vec.I64, false),
			storage.NewColumn("note", vec.Str, true),
		}
	}
	for i := 0; i < n; i++ {
		// Skew: shard 0 takes half of everything.
		s := (i * 2) % (2 * k)
		if s >= k {
			s = 0
		}
		c := cols[s]
		c[0].AppendString(regions[i%len(regions)])
		c[1].AppendInt(int64(rng.Intn(50)) + 1)
		c[2].AppendInt(int64(rng.Intn(10000)) + 100)
		if i%7 == 0 {
			c[3].AppendNull()
		} else {
			c[3].AppendString(fmt.Sprintf("note-%d", i%10))
		}
	}
	out := make([]*storage.Table, k)
	for s := range out {
		out[s] = storage.NewTable("sales", cols[s]...)
		out[s].Seal()
	}
	return out
}

// shardAggPlan is the pushed-down shard fragment: group keys plus
// decomposed partial aggregates (AVG shipped as SUM + COUNT).
func shardAggPlan(tbl *storage.Table, keyCol string) *HashAgg {
	scan := NewScan(tbl, "region", "qty", "price", "note")
	meta := scan.Meta()
	col := func(name string) *Expr {
		for i, m := range meta {
			if m.Name == name {
				return ColIdx(meta, i)
			}
		}
		panic("no column " + name)
	}
	return NewHashAgg(scan,
		[]string{keyCol}, []*Expr{col(keyCol)},
		[]AggExpr{
			{Func: agg.Sum, Arg: col("price"), Name: "s_price"},
			{Func: agg.Count, Arg: col("note"), Name: "c_note"},
			{Func: agg.CountStar, Name: "c_star"},
			{Func: agg.Min, Arg: col("qty"), Name: "min_qty"},
			{Func: agg.Max, Arg: col("qty"), Name: "max_qty"},
			{Func: agg.Min, Arg: col("note"), Name: "min_note"},
			{Func: agg.Max, Arg: col("note"), Name: "max_note"},
			{Func: agg.Sum, Arg: col("price"), Name: "a_sum"},
			{Func: agg.Count, Arg: col("price"), Name: "a_cnt"},
		})
}

// TestMergeAggMatchesSingleNode runs the full scatter-gather path
// in-process: per-shard HashAgg fragments produce finalized partials,
// their materialized rows cross a (simulated) exchange boundary, and
// MergeAgg reduces them. The result must match running the equivalent
// single aggregation over the whole data set, for every flag combination
// and shard count, with AVG finalized from shipped SUM/COUNT pairs.
func TestMergeAggMatchesSingleNode(t *testing.T) {
	const n = 4000
	whole := salesTable(n)
	for _, keyCol := range []string{"region", "note"} {
		for _, k := range []int{1, 2, 4} {
			shards := shardSales(n, k)
			for _, f := range allFlags {
				// Single-node oracle (AVG computed natively).
				oc := NewQCtx(f)
				scan := NewScan(whole, "region", "qty", "price", "note")
				meta := scan.Meta()
				col := func(name string) *Expr {
					for i, m := range meta {
						if m.Name == name {
							return ColIdx(meta, i)
						}
					}
					panic("no column " + name)
				}
				oracle := Run(oc, NewHashAgg(scan,
					[]string{keyCol}, []*Expr{col(keyCol)},
					[]AggExpr{
						{Func: agg.Sum, Arg: col("price"), Name: "s_price"},
						{Func: agg.Count, Arg: col("note"), Name: "c_note"},
						{Func: agg.CountStar, Name: "c_star"},
						{Func: agg.Min, Arg: col("qty"), Name: "min_qty"},
						{Func: agg.Max, Arg: col("qty"), Name: "max_qty"},
						{Func: agg.Min, Arg: col("note"), Name: "min_note"},
						{Func: agg.Max, Arg: col("note"), Name: "max_note"},
						{Func: Avg, Arg: col("price"), Name: "avg_price"},
					}))

				// Shard fragments, then the coordinator reduction.
				var rows [][]Value
				var types []vec.Type
				var names []string
				for _, st := range shards {
					sq := NewQCtx(f)
					r := Run(sq, shardAggPlan(st, keyCol))
					if types == nil {
						types, names = r.Types, r.Names
					}
					rows = append(rows, r.Rows...)
				}
				mc := NewQCtx(f)
				merge := NewMergeAgg(NewExchange(names, types, rows), 1, []MergeSpec{
					{Func: agg.Sum, Col: 1, Cnt: -1, Name: "s_price"},
					{Func: agg.Count, Col: 2, Cnt: -1, Name: "c_note"},
					{Func: agg.CountStar, Col: 3, Cnt: -1, Name: "c_star"},
					{Func: agg.Min, Col: 4, Cnt: -1, Name: "min_qty"},
					{Func: agg.Max, Col: 5, Cnt: -1, Name: "max_qty"},
					{Func: agg.Min, Col: 6, Cnt: -1, Name: "min_note"},
					{Func: agg.Max, Col: 7, Cnt: -1, Name: "max_note"},
					{Func: Avg, Col: 8, Cnt: 9, Name: "avg_price"},
				})
				got := Run(mc, merge)

				if len(got.Rows) != len(oracle.Rows) {
					t.Fatalf("key %s shards %d flags %s: %d merged groups, oracle %d",
						keyCol, k, flagName(f), len(got.Rows), len(oracle.Rows))
				}
				// Value.String renders I64 and I128 identically, so textual
				// comparison is numeric comparison here.
				if !reflect.DeepEqual(sortedRows(got), sortedRows(oracle)) {
					t.Errorf("key %s shards %d flags %s: merged result differs\n got: %v\nwant: %v",
						keyCol, k, flagName(f), sortedRows(got), sortedRows(oracle))
				}
			}
		}
	}
}

// TestMergeAggClone checks that a cached distributed merge plan clones
// cleanly and the clone reproduces the original's result.
func TestMergeAggClone(t *testing.T) {
	rows := [][]Value{
		{{Typ: vec.Str, S: "a"}, {Typ: vec.I64, I: 3}},
		{{Typ: vec.Str, S: "a"}, {Typ: vec.I64, I: 4}},
		{{Typ: vec.Str, Null: true}, {Typ: vec.I64, I: 5}},
	}
	mk := func() Op {
		return NewMergeAgg(
			NewExchange([]string{"k", "c"}, []vec.Type{vec.Str, vec.I64}, rows),
			1, []MergeSpec{{Func: agg.Count, Col: 1, Cnt: -1, Name: "c"}})
	}
	base := mk()
	clone := ClonePlan(base)
	f := core.Flags{}
	a := Run(NewQCtx(f), base)
	b := Run(NewQCtx(f), clone)
	if !reflect.DeepEqual(sortedRows(a), sortedRows(b)) {
		t.Errorf("cloned merge plan differs: %v vs %v", sortedRows(a), sortedRows(b))
	}
	want := map[string]int64{"a": 7, "NULL": 5}
	for _, row := range a.Rows {
		if row[1].I != want[row[0].String()] {
			t.Errorf("group %s count %d, want %d", row[0].String(), row[1].I, want[row[0].String()])
		}
	}
}
