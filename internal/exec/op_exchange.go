package exec

import (
	"ocht/internal/domain"
	"ocht/internal/vec"
)

// Exchange is the receive side of a distributed exchange boundary: a
// source operator over rows that crossed the process boundary as
// materialized values (shard subquery results gathered by the
// coordinator). It re-vectorizes them into standard batches so the plan
// fragment above the exchange — merge aggregation, HAVING filters, final
// projections — runs through the ordinary engine unchanged. Strings are
// interned into the query's store on the way in, so downstream operators
// compare references exactly as they would against scanned columns.
type Exchange struct {
	// Names and Types describe the columns of Rows. Column domains are
	// unknown by construction (the values come from another process) and
	// every column is treated as nullable.
	Names []string
	Types []vec.Type
	// Rows is the gathered row set. It is never mutated by execution, so
	// cloned plans may share it.
	Rows [][]Value

	meta []Meta
	next int
	out  vec.Batch
}

// NewExchange builds an exchange source over gathered rows.
func NewExchange(names []string, types []vec.Type, rows [][]Value) *Exchange {
	return &Exchange{Names: names, Types: types, Rows: rows}
}

// Meta implements Op.
func (e *Exchange) Meta() []Meta {
	if e.meta != nil {
		return e.meta
	}
	for i, n := range e.Names {
		e.meta = append(e.meta, Meta{Name: n, Type: e.Types[i], Dom: domain.Unknown, Nullable: true})
	}
	return e.meta
}

// MaxRows implements Op.
func (e *Exchange) MaxRows() int64 { return int64(len(e.Rows)) }

// Open implements Op.
func (e *Exchange) Open(qc *QCtx) {
	e.Meta()
	e.next = 0
	if e.out.Vecs == nil {
		e.out.Vecs = make([]*vec.Vector, len(e.Types))
		for i, t := range e.Types {
			v := vec.New(t, vec.Size)
			v.Nulls = make([]bool, vec.Size)
			e.out.Vecs[i] = v
		}
	}
}

// Next implements Op.
func (e *Exchange) Next(qc *QCtx) *vec.Batch {
	qc.checkCancel()
	if e.next >= len(e.Rows) {
		return nil
	}
	n := len(e.Rows) - e.next
	if n > vec.Size {
		n = vec.Size
	}
	for ci, t := range e.Types {
		out := e.out.Vecs[ci]
		for i := 0; i < n; i++ {
			cell := e.Rows[e.next+i][ci]
			out.Nulls[i] = cell.Null
			switch t {
			case vec.Str:
				if cell.Null {
					out.Str[i] = nullStrRef
				} else {
					out.Str[i] = qc.Store.Intern(cell.S)
				}
			case vec.F64:
				out.F64[i] = cell.F
			case vec.I128:
				out.I128[i] = cell.I128
			default:
				if !cell.Null {
					out.SetInt64(i, cell.I)
				} else {
					out.SetInt64(i, 0)
				}
			}
		}
	}
	e.next += n
	e.out.Sel = nil
	e.out.N = n
	return &e.out
}
