package exec

import "ocht/internal/vec"

// Filter keeps the rows satisfying a boolean predicate, narrowing the
// selection vector (never copying data).
type Filter struct {
	Child Op
	Pred  *Expr

	sel []int32
	out vec.Batch
}

// NewFilter wraps child with a predicate.
func NewFilter(child Op, pred *Expr) *Filter {
	return &Filter{Child: child, Pred: pred}
}

// Meta implements Op.
func (f *Filter) Meta() []Meta { return f.Child.Meta() }

// MaxRows implements Op.
func (f *Filter) MaxRows() int64 { return f.Child.MaxRows() }

// Open implements Op.
func (f *Filter) Open(qc *QCtx) {
	// A filter sitting directly on a scan pushes its conjunctive integer
	// ranges down as zone ranges before the scan opens, letting it skip
	// whole blocks by zone map. Derived every Open so cloned worker
	// pipelines get it too.
	if sc, ok := f.Child.(*Scan); ok {
		sc.Zones = zoneRangesOf(f.Pred, sc.Meta())
	}
	f.Child.Open(qc)
	f.Pred.intern(qc.Store)
	if f.sel == nil {
		f.sel = make([]int32, 0, vec.Size)
	}
}

// Next implements Op.
func (f *Filter) Next(qc *QCtx) *vec.Batch {
	for {
		qc.checkCancel()
		b := f.Child.Next(qc)
		if b == nil {
			return nil
		}
		pred := f.Pred.Eval(qc, b)
		f.sel = f.sel[:0]
		for _, r := range b.Rows() {
			if pred.Bool[r] {
				f.sel = append(f.sel, r)
			}
		}
		if len(f.sel) == 0 {
			continue
		}
		if vec.DebugAsserts {
			vec.AssertSel(f.sel, vec.MaxLen)
		}
		f.out.Vecs = b.Vecs
		f.out.Sel = f.sel
		f.out.N = len(f.sel)
		return &f.out
	}
}

// Project computes one output column per expression.
type Project struct {
	Child Op
	Exprs []*Expr
	Names []string

	meta []Meta
	out  vec.Batch
}

// NewProject wraps child with computed columns.
func NewProject(child Op, names []string, exprs []*Expr) *Project {
	return &Project{Child: child, Exprs: exprs, Names: names}
}

// Meta implements Op.
func (p *Project) Meta() []Meta {
	if p.meta == nil {
		for i, e := range p.Exprs {
			p.meta = append(p.meta, Meta{
				Name:     p.Names[i],
				Type:     e.Type(),
				Dom:      e.Dom(),
				Nullable: e.Nullable(),
				Distinct: e.DistinctBound(),
			})
		}
	}
	return p.meta
}

// MaxRows implements Op.
func (p *Project) MaxRows() int64 { return p.Child.MaxRows() }

// Open implements Op.
func (p *Project) Open(qc *QCtx) {
	p.Child.Open(qc)
	for _, e := range p.Exprs {
		e.intern(qc.Store)
	}
	p.Meta()
	p.out.Vecs = make([]*vec.Vector, len(p.Exprs))
}

// Next implements Op.
func (p *Project) Next(qc *QCtx) *vec.Batch {
	b := p.Child.Next(qc)
	if b == nil {
		return nil
	}
	for i, e := range p.Exprs {
		p.out.Vecs[i] = e.Eval(qc, b)
	}
	p.out.Sel = b.Sel
	p.out.N = b.N
	return &p.out
}
