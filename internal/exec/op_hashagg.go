package exec

import (
	"math"
	"time"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/domain"
	"ocht/internal/i128"
	"ocht/internal/vec"
)

// Avg marks an AVG aggregate; the operator rewrites it into SUM and COUNT
// (Table I) and finalizes the division at emission.
const Avg = agg.Func(100)

// AggExpr is one aggregate of a HashAgg.
type AggExpr struct {
	Func agg.Func
	Arg  *Expr // nil for CountStar
	Name string
}

// HashAgg groups the child's rows by key expressions and maintains
// aggregates in an optimistically compressed hash table: prefix-suppressed
// keys, USSR slot codes for string keys, and hot/cold-split aggregate
// state, all depending on the query flags.
type HashAgg struct {
	Child    Op
	Keys     []*Expr
	KeyNames []string
	Aggs     []AggExpr

	meta     []Meta
	keyCols  []core.KeyCol
	nullCode []int64 // per key: NULL code for int keys, math.MinInt64 = none
	schema   *core.KeySchema
	ag       *agg.Aggregator
	tab      *core.Table

	// skipBuild makes Open set up the schema, aggregator and (empty)
	// table without draining the child. The parallel driver opens the
	// template frontier this way, then fills the table in the merge phase.
	skipBuild bool
	// driverOpened marks that the parallel driver has already opened this
	// operator and populated its table; the next Open call (the serial
	// pass over the plan above the frontier) must not rebuild anything.
	driverOpened bool

	specs   []agg.Spec
	specOf  []aggMap // output aggregate -> internal spec(s)
	scratch struct {
		keys   []*vec.Vector
		hashes []uint64
		recs   []int32
		subset []int32
	}
	emit int
	out  vec.Batch
}

type aggMap struct {
	spec  int // internal spec index (sum for AVG)
	cnt   int // count spec index for AVG, else -1
	isAvg bool
}

// NewHashAgg builds a grouped aggregation.
func NewHashAgg(child Op, keyNames []string, keys []*Expr, aggs []AggExpr) *HashAgg {
	return &HashAgg{Child: child, Keys: keys, KeyNames: keyNames, Aggs: aggs}
}

// Meta implements Op. Aggregate output types are flag-independent so that
// vanilla and optimized plans produce comparable results: SUM emits a
// 128-bit integer unless the domain proves 64 bits suffice.
func (h *HashAgg) Meta() []Meta {
	if h.meta != nil {
		return h.meta
	}
	for i, k := range h.Keys {
		h.meta = append(h.meta, Meta{
			Name:     h.KeyNames[i],
			Type:     k.Type(),
			Dom:      k.Dom(),
			Nullable: k.Nullable(),
		})
	}
	maxRows := h.Child.MaxRows()
	for _, a := range h.Aggs {
		m := Meta{Name: a.Name}
		switch a.Func {
		case Avg:
			m.Type = vec.F64
			m.Dom = domain.Unknown
		case agg.Sum:
			if domain.SumFitsInt64(a.Arg.Dom(), maxRows) {
				m.Type = vec.I64
				lo, hi, _ := domain.SumBound(a.Arg.Dom(), maxRows)
				m.Dom = domain.New(lo.Int64(), hi.Int64())
			} else {
				m.Type = vec.I128
				m.Dom = domain.Unknown
			}
		case agg.Count, agg.CountStar:
			m.Type = vec.I64
			m.Dom = domain.New(0, maxRows)
		case agg.Min, agg.Max:
			if a.Arg.Type() == vec.Str {
				m.Type = vec.Str
				m.Nullable = true // all-NULL groups yield NULL
			} else {
				m.Type = vec.I64
				m.Dom = a.Arg.Dom()
			}
		}
		h.meta = append(h.meta, m)
	}
	return h.meta
}

// MaxRows implements Op.
func (h *HashAgg) MaxRows() int64 {
	n := h.Child.MaxRows()
	// The number of groups is bounded by the product of key domain
	// cardinalities when known.
	prod := int64(1)
	for _, k := range h.Keys {
		c := k.Dom().Cardinality()
		if c == 0 || c > uint64(rowsCap) {
			return n
		}
		prod = satMul(prod, int64(c)+1) // +1 for a possible NULL group
	}
	if prod < n {
		return prod
	}
	return n
}

// Open implements Op: it drains the child and builds the table.
func (h *HashAgg) Open(qc *QCtx) {
	if h.driverOpened {
		// Already built and merged by the parallel driver; this call comes
		// from the serial pass over the plan above the frontier and must
		// only rewind emission.
		h.driverOpened = false
		h.emit = 0
		return
	}
	h.Child.Open(qc)
	for _, k := range h.Keys {
		k.intern(qc.Store)
	}
	for _, a := range h.Aggs {
		if a.Arg != nil {
			a.Arg.intern(qc.Store)
		}
	}
	h.Meta()

	// Resolve key columns with NULL codes folded into the domain.
	h.keyCols = h.keyCols[:0]
	h.nullCode = h.nullCode[:0]
	for i, k := range h.Keys {
		kc := core.KeyCol{Name: h.KeyNames[i], Type: k.Type(), Dom: k.Dom()}
		code := int64(math.MinInt64) // no remapping
		if k.Nullable() && k.Type() != vec.Str {
			if kc.Dom.Valid && kc.Dom.Max < math.MaxInt64 {
				code = kc.Dom.Max + 1
				kc.Dom = domain.New(kc.Dom.Min, code)
			} else {
				// Unknown domain: use an improbable sentinel.
				code = math.MinInt64 + 1
			}
		}
		if k.Type() == vec.Str {
			// Arithmetic never produces Str, so key vectors keep their
			// source type; NULL strings are remapped to the null ref.
		} else if !k.Type().IsInt() && k.Type() != vec.Bool {
			kc.Type = vec.F64
		}
		h.nullCode = append(h.nullCode, code)
		h.keyCols = append(h.keyCols, kc)
	}

	// Internal aggregate specs (AVG -> SUM + COUNT).
	maxRows := h.Child.MaxRows()
	h.specs = h.specs[:0]
	h.specOf = h.specOf[:0]
	for _, a := range h.Aggs {
		mk := func(f agg.Func, arg *Expr) int {
			s := agg.Spec{Func: f, MaxRows: maxRows}
			if arg != nil {
				s.InType = arg.Type()
				s.InDom = arg.Dom()
			}
			h.specs = append(h.specs, s)
			return len(h.specs) - 1
		}
		switch a.Func {
		case Avg:
			si := mk(agg.Sum, a.Arg)
			ci := mk(agg.Count, a.Arg)
			h.specOf = append(h.specOf, aggMap{spec: si, cnt: ci, isAvg: true})
		default:
			h.specOf = append(h.specOf, aggMap{spec: mk(a.Func, a.Arg), cnt: -1})
		}
	}

	// The paper does not enable compression for hash tables that are
	// small (CPU-cache-resident) based on optimizer estimates
	// (Section V-A, limitation (c)); the group-count bound is that
	// estimate here.
	flags := qc.Flags
	if flags.Compress && h.MaxRows() < CompressMinBuildRows {
		flags.Compress = false
	}
	var err error
	h.schema, err = core.NewKeySchema(flags, h.keyCols, qc.Store)
	if err != nil {
		panic(err)
	}
	h.ag = agg.NewAggregator(flags, h.specs)
	hint := h.MaxRows()
	if hint > 1<<12 {
		hint = 1 << 12 // the directory grows with the table
	}
	h.tab = core.NewTable(h.schema, h.ag.HotBytes, h.ag.ColdBytes, int(hint))
	qc.register(h.tab)

	h.scratch.keys = make([]*vec.Vector, len(h.Keys))
	h.scratch.hashes = make([]uint64, vec.Size)
	h.scratch.recs = make([]int32, vec.Size)
	h.scratch.subset = make([]int32, 0, vec.Size)
	if !h.skipBuild {
		h.build(qc)
	}
	h.emit = 0
	h.prepareOut()
}

func (h *HashAgg) build(qc *QCtx) {
	for {
		qc.checkCancel()
		b := h.Child.Next(qc)
		if b == nil {
			return
		}
		rows := b.Rows()
		phys := physOf(b)
		if phys > len(h.scratch.hashes) {
			h.scratch.hashes = make([]uint64, phys)
			h.scratch.recs = make([]int32, phys)
		}

		// Evaluate and NULL-remap the key columns.
		for i, k := range h.Keys {
			v := k.Eval(qc, b)
			h.scratch.keys[i] = h.remapKey(i, k, v, rows, phys)
		}

		p := h.schema.Prepare(h.scratch.keys, rows)
		start := time.Now()
		h.schema.Hash(p, rows, h.scratch.hashes)
		qc.Stats.Add(StatHash, time.Since(start))

		start = time.Now()
		_, newRecs := h.tab.FindOrInsert(p, h.scratch.hashes, rows, h.scratch.recs)
		qc.Stats.Add(StatLookup, time.Since(start))
		h.ag.Init(h.tab, newRecs)

		for si, spec := range h.specs {
			var arg *vec.Vector
			var argExpr *Expr
			for oi, m := range h.specOf {
				if m.spec == si || m.cnt == si {
					argExpr = h.Aggs[oi].Arg
				}
			}
			updateRows := rows
			if argExpr != nil {
				arg = argExpr.Eval(qc, b)
				// SQL semantics: NULL inputs do not contribute.
				if argExpr.Nullable() && arg.Nulls != nil {
					h.scratch.subset = h.scratch.subset[:0]
					for _, r := range rows {
						if !arg.Nulls[r] {
							h.scratch.subset = append(h.scratch.subset, r)
						}
					}
					updateRows = h.scratch.subset
				}
			} else if spec.Func == agg.Count {
				// COUNT over a NULL-free column behaves like COUNT(*).
			}
			start = time.Now()
			h.ag.Update(h.tab, si, h.scratch.recs, updateRows, arg)
			qc.Stats.Add(StatAggregate, time.Since(start))
		}
	}
}

// remapKey folds SQL NULLs into the key coding: integer NULLs become the
// extended domain code, string NULLs the null reference.
func (h *HashAgg) remapKey(i int, k *Expr, v *vec.Vector, rows []int32, phys int) *vec.Vector {
	if !k.Nullable() {
		return v
	}
	out := vec.New(v.Typ, phys)
	if v.Typ == vec.Str {
		for _, r := range rows {
			if v.IsNull(int(r)) {
				out.Str[r] = nullStrRef
			} else {
				out.Str[r] = v.Str[r]
			}
		}
		return out
	}
	code := h.nullCode[i]
	for _, r := range rows {
		if v.IsNull(int(r)) {
			out.SetInt64(int(r), code)
		} else {
			out.SetInt64(int(r), v.Int64At(int(r)))
		}
	}
	return out
}

func (h *HashAgg) prepareOut() {
	h.out.Vecs = make([]*vec.Vector, len(h.meta))
	for i, m := range h.meta {
		h.out.Vecs[i] = vec.New(m.Type, vec.Size)
	}
}

// Next implements Op: emits the group results.
func (h *HashAgg) Next(qc *QCtx) *vec.Batch {
	qc.checkCancel() // emission never touches a scan; poll here too
	if h.emit >= h.tab.Len() {
		return nil
	}
	n := h.tab.Len() - h.emit
	if n > vec.Size {
		n = vec.Size
	}
	recIdx := make([]int32, n)
	rows := make([]int32, n)
	for i := 0; i < n; i++ {
		recIdx[i] = int32(h.emit + i)
		rows[i] = int32(i)
	}

	for ci := range h.Keys {
		out := h.out.Vecs[ci]
		h.tab.LoadKey(ci, recIdx, out, rows)
		// Remap NULL codes back to SQL NULLs.
		if h.Keys[ci].Nullable() {
			if out.Nulls == nil {
				out.Nulls = make([]bool, out.Len())
			}
			for i := 0; i < n; i++ {
				if out.Typ == vec.Str {
					out.Nulls[i] = out.Str[i] == nullStrRef
				} else {
					out.Nulls[i] = out.Int64At(i) == h.nullCode[ci]
				}
			}
		}
	}

	for oi, m := range h.specOf {
		out := h.out.Vecs[len(h.Keys)+oi]
		if m.isAvg {
			sum := vec.New(h.ag.ResultType(m.spec), n)
			cnt := vec.New(vec.I64, n)
			h.ag.Result(h.tab, m.spec, recIdx, sum, rows)
			h.ag.Result(h.tab, m.cnt, recIdx, cnt, rows)
			for i := 0; i < n; i++ {
				c := cnt.I64[i]
				if c == 0 {
					out.F64[i] = 0
					continue
				}
				out.F64[i] = sumAsF64(sum, i) / float64(c)
			}
			continue
		}
		want := h.meta[len(h.Keys)+oi].Type
		got := h.ag.ResultType(m.spec)
		if want == got {
			h.ag.Result(h.tab, m.spec, recIdx, out, rows)
			continue
		}
		// Storage kind differs from the declared output type (e.g. an
		// optimistic 128-bit sum emitted where vanilla declared I64, or
		// vice versa): convert through a temporary.
		tmp := vec.New(got, n)
		h.ag.Result(h.tab, m.spec, recIdx, tmp, rows)
		for i := 0; i < n; i++ {
			if want == vec.I128 {
				out.I128[i] = i128.FromInt64(tmp.I64[i])
			} else {
				out.I64[i] = tmp.I128[i].Int64()
			}
		}
	}

	h.emit += n
	h.out.Sel = nil
	h.out.N = n
	return &h.out
}

// Table exposes the aggregation hash table for footprint experiments.
func (h *HashAgg) Table() *core.Table { return h.tab }

func sumAsF64(v *vec.Vector, i int) float64 {
	if v.Typ == vec.I64 {
		return float64(v.I64[i])
	}
	x := v.I128[i]
	return float64(x.Hi)*math.Pow(2, 64) + float64(x.Lo)
}
