package exec

import (
	"math"
	"time"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/domain"
	"ocht/internal/i128"
	"ocht/internal/vec"
)

// Avg marks an AVG aggregate; the operator rewrites it into SUM and COUNT
// (Table I) and finalizes the division at emission.
const Avg = agg.Func(100)

// AggExpr is one aggregate of a HashAgg.
type AggExpr struct {
	Func agg.Func
	Arg  *Expr // nil for CountStar
	Name string
}

// HashAgg groups the child's rows by key expressions and maintains
// aggregates in an optimistically compressed hash table: prefix-suppressed
// keys, USSR slot codes for string keys, and hot/cold-split aggregate
// state, all depending on the query flags.
type HashAgg struct {
	Child    Op
	Keys     []*Expr
	KeyNames []string
	Aggs     []AggExpr
	// PartitionBits sets the radix width of the group table: negative
	// (the constructor default) picks it adaptively from the group-count
	// bound, 0 forces one monolithic table, positive forces 2^bits.
	PartitionBits int

	meta     []Meta
	keyCols  []core.KeyCol
	nullCode []int64 // per key: NULL code for int keys, math.MinInt64 = none
	schema   *core.KeySchema
	ag       *agg.Aggregator
	pt       *core.PartTable

	// skipBuild makes Open set up the schema, aggregator and (empty)
	// table without draining the child. The parallel driver opens the
	// template frontier this way, then fills the table in the merge phase.
	skipBuild bool
	// driverOpened marks that the parallel driver has already opened this
	// operator and populated its table; the next Open call (the serial
	// pass over the plan above the frontier) must not rebuild anything.
	driverOpened bool

	specs  []agg.Spec
	specOf []aggMap // output aggregate -> internal spec(s)
	argOf  []*Expr  // per spec: the aggregate argument expression, or nil
	// keyBufs/argBufs are the late-materialization scratch at the
	// aggregation boundary: encoded or NULL-remapped key vectors and
	// encoded aggregate arguments are decoded into them (active rows only),
	// reused across batches.
	keyBufs []*vec.Vector
	argBufs []*vec.Vector
	scratch struct {
		keys    []*vec.Vector
		args    []*vec.Vector
		hashes  []uint64
		recs    []int32
		subset  []int32
		partLen []int32 // per-partition record count before the batch
	}
	// order logs each group's encoded (partition, record) in insertion
	// order. Emission walks it so result order stays the first-occurrence
	// order of the input stream — independent of the radix width and of
	// the flag-dependent hash that routes rows to partitions.
	order    []int32
	emit     int       // orders already emitted
	emitRecs [][]int32 // per-partition local records of the current chunk
	emitRows [][]int32 // matching output positions
	out      vec.Batch
}

type aggMap struct {
	spec  int // internal spec index (sum for AVG)
	cnt   int // count spec index for AVG, else -1
	isAvg bool
}

// NewHashAgg builds a grouped aggregation with adaptive radix
// partitioning.
func NewHashAgg(child Op, keyNames []string, keys []*Expr, aggs []AggExpr) *HashAgg {
	return &HashAgg{Child: child, Keys: keys, KeyNames: keyNames, Aggs: aggs, PartitionBits: DefaultPartitionBits}
}

// Meta implements Op. Aggregate output types are flag-independent so that
// vanilla and optimized plans produce comparable results: SUM emits a
// 128-bit integer unless the domain proves 64 bits suffice.
func (h *HashAgg) Meta() []Meta {
	if h.meta != nil {
		return h.meta
	}
	for i, k := range h.Keys {
		h.meta = append(h.meta, Meta{
			Name:     h.KeyNames[i],
			Type:     k.Type(),
			Dom:      k.Dom(),
			Nullable: k.Nullable(),
		})
	}
	maxRows := h.Child.MaxRows()
	for _, a := range h.Aggs {
		m := Meta{Name: a.Name}
		switch a.Func {
		case Avg:
			m.Type = vec.F64
			m.Dom = domain.Unknown
		case agg.Sum:
			if domain.SumFitsInt64(a.Arg.Dom(), maxRows) {
				m.Type = vec.I64
				lo, hi, _ := domain.SumBound(a.Arg.Dom(), maxRows)
				m.Dom = domain.New(lo.Int64(), hi.Int64())
			} else {
				m.Type = vec.I128
				m.Dom = domain.Unknown
			}
		case agg.Count, agg.CountStar:
			m.Type = vec.I64
			m.Dom = domain.New(0, maxRows)
		case agg.Min, agg.Max:
			if a.Arg.Type() == vec.Str {
				m.Type = vec.Str
				m.Nullable = true // all-NULL groups yield NULL
			} else {
				m.Type = vec.I64
				m.Dom = a.Arg.Dom()
			}
		}
		h.meta = append(h.meta, m)
	}
	return h.meta
}

// MaxRows implements Op.
func (h *HashAgg) MaxRows() int64 {
	n := h.Child.MaxRows()
	// The number of groups is bounded by the product of key domain
	// cardinalities when known.
	prod := int64(1)
	for _, k := range h.Keys {
		c := k.Dom().Cardinality()
		if c == 0 || c > uint64(rowsCap) {
			return n
		}
		prod = satMul(prod, int64(c)+1) // +1 for a possible NULL group
	}
	if prod < n {
		return prod
	}
	return n
}

// PartitionMinGroups is the group-count estimate below which the adaptive
// radix choice keeps the aggregation table monolithic (bits = 0): a
// low-group-count aggregate (TPC-H Q1's 6 groups) is CPU-cache-resident
// whatever its width, so radix routing and — under parallel execution —
// partition-wise spilling only add overhead. Forcing PartitionBits
// bypasses the floor. Exported for tests and experiments.
var PartitionMinGroups = int64(1 << 13)

// groupEstimate bounds the group count like MaxRows, but string key
// columns, whose value domain carries no cardinality, fall back to the
// scan's per-block dictionary bound (Meta.Distinct) before giving up.
// Only partition-width choice and the partition-wise parallel gate
// consume it; result layouts and the compression gate keep using MaxRows,
// so plans are byte-compatible with the estimate-free engine.
func (h *HashAgg) groupEstimate() int64 {
	n := h.Child.MaxRows()
	prod := int64(1)
	for _, k := range h.Keys {
		var card int64
		if c := k.Dom().Cardinality(); c != 0 && c <= uint64(rowsCap) {
			card = int64(c)
		} else if d := k.DistinctBound(); d > 0 {
			card = d
		} else {
			return n
		}
		prod = satMul(prod, card+1) // +1 for a possible NULL group
	}
	if prod < n {
		return prod
	}
	return n
}

// Open implements Op: it drains the child and builds the table.
func (h *HashAgg) Open(qc *QCtx) {
	if h.driverOpened {
		// Already built and merged by the parallel driver; this call comes
		// from the serial pass over the plan above the frontier and must
		// only rewind emission.
		h.driverOpened = false
		h.emit = 0
		return
	}
	h.Child.Open(qc)
	for _, k := range h.Keys {
		k.intern(qc.Store)
	}
	for _, a := range h.Aggs {
		if a.Arg != nil {
			a.Arg.intern(qc.Store)
		}
	}
	h.Meta()

	// Resolve key columns with NULL codes folded into the domain.
	h.keyCols = h.keyCols[:0]
	h.nullCode = h.nullCode[:0]
	for i, k := range h.Keys {
		kc := core.KeyCol{Name: h.KeyNames[i], Type: k.Type(), Dom: k.Dom()}
		code := int64(math.MinInt64) // no remapping
		if k.Nullable() && k.Type() != vec.Str {
			if kc.Dom.Valid && kc.Dom.Max < math.MaxInt64 {
				code = kc.Dom.Max + 1
				kc.Dom = domain.New(kc.Dom.Min, code)
			} else {
				// Unknown domain: use an improbable sentinel.
				code = math.MinInt64 + 1
			}
		}
		if k.Type() == vec.Str {
			// Arithmetic never produces Str, so key vectors keep their
			// source type; NULL strings are remapped to the null ref.
		} else if !k.Type().IsInt() && k.Type() != vec.Bool {
			kc.Type = vec.F64
		}
		h.nullCode = append(h.nullCode, code)
		h.keyCols = append(h.keyCols, kc)
	}

	// Internal aggregate specs (AVG -> SUM + COUNT).
	maxRows := h.Child.MaxRows()
	h.specs = h.specs[:0]
	h.specOf = h.specOf[:0]
	for _, a := range h.Aggs {
		mk := func(f agg.Func, arg *Expr) int {
			s := agg.Spec{Func: f, MaxRows: maxRows}
			if arg != nil {
				s.InType = arg.Type()
				s.InDom = arg.Dom()
			}
			h.specs = append(h.specs, s)
			return len(h.specs) - 1
		}
		switch a.Func {
		case Avg:
			si := mk(agg.Sum, a.Arg)
			ci := mk(agg.Count, a.Arg)
			h.specOf = append(h.specOf, aggMap{spec: si, cnt: ci, isAvg: true})
		default:
			h.specOf = append(h.specOf, aggMap{spec: mk(a.Func, a.Arg), cnt: -1})
		}
	}

	// The paper does not enable compression for hash tables that are
	// small (CPU-cache-resident) based on optimizer estimates
	// (Section V-A, limitation (c)); the group-count bound is that
	// estimate here.
	flags := qc.Flags
	if flags.Compress && h.MaxRows() < CompressMinBuildRows {
		flags.Compress = false
	}
	var err error
	h.schema, err = core.NewKeySchema(flags, h.keyCols, qc.Store)
	if err != nil {
		panic(err)
	}
	h.ag = agg.NewAggregator(flags, h.specs)

	// Per-spec argument expressions, resolved once so the build loop does
	// not rescan specOf per batch.
	h.argOf = make([]*Expr, len(h.specs))
	for oi, m := range h.specOf {
		h.argOf[m.spec] = h.Aggs[oi].Arg
		if m.cnt >= 0 {
			h.argOf[m.cnt] = h.Aggs[oi].Arg
		}
	}

	hint := h.MaxRows()
	if hint > 1<<12 {
		hint = 1 << 12 // the directory grows with the table
	}
	bits := h.PartitionBits
	if bits < 0 {
		est := h.groupEstimate()
		if est < PartitionMinGroups {
			bits = 0 // cache-resident: radix routing cannot pay for itself
		} else {
			bits = core.ChoosePartitionBits(est, h.schema.KeyBytes()+h.ag.HotBytes)
			// Partition-wise parallel aggregation assigns whole partitions
			// to workers; give it enough of them to load-balance across.
			for qc.Workers > 1 && 1<<bits < 4*qc.Workers && bits < core.MaxPartitionBits {
				bits++
			}
		}
	}
	h.pt = core.NewPartTable(h.schema, h.ag.HotBytes, h.ag.ColdBytes, int(hint), bits)
	for _, t := range h.pt.Parts() {
		qc.register(t)
	}

	h.scratch.keys = make([]*vec.Vector, len(h.Keys))
	h.scratch.args = make([]*vec.Vector, len(h.specs))
	h.keyBufs = make([]*vec.Vector, len(h.Keys))
	h.argBufs = make([]*vec.Vector, len(h.specs))
	h.scratch.hashes = make([]uint64, vec.Size)
	h.scratch.recs = make([]int32, vec.Size)
	h.scratch.subset = make([]int32, 0, vec.Size)
	h.order = h.order[:0]
	h.scratch.partLen = make([]int32, h.pt.NParts())
	h.emitRecs = make([][]int32, h.pt.NParts())
	h.emitRows = make([][]int32, h.pt.NParts())
	if !h.skipBuild {
		h.build(qc)
	}
	h.emit = 0
	h.prepareOut()
}

func (h *HashAgg) build(qc *QCtx) {
	for {
		qc.checkCancel()
		b := h.Child.Next(qc)
		if b == nil {
			return
		}
		rows := b.Rows()
		phys := physOf(b)
		if phys > len(h.scratch.hashes) {
			h.scratch.hashes = make([]uint64, phys)
			h.scratch.recs = make([]int32, phys)
		}

		// Evaluate and NULL-remap the key columns.
		for i, k := range h.Keys {
			v := k.Eval(qc, b)
			h.scratch.keys[i] = h.remapKey(i, k, v, rows, phys)
		}

		// Evaluate every aggregate argument once, before the partition
		// loop, so the per-partition updates share one set of input
		// vectors.
		for si := range h.specs {
			if e := h.argOf[si]; e != nil {
				// The aggregate kernels consume raw slices; encoded column
				// arguments materialize (active rows only) into reusable
				// per-spec scratch.
				h.scratch.args[si] = ensurePlain(e.Eval(qc, b), rows, &h.argBufs[si], phys)
			} else {
				h.scratch.args[si] = nil
			}
		}

		p := h.schema.Prepare(h.scratch.keys, rows)
		start := time.Now()
		h.schema.Hash(p, rows, h.scratch.hashes)
		qc.Stats.Add(StatHash, time.Since(start))

		// Route each row to its radix partition, then insert and update
		// partition by partition: each sub-table stays cache-resident
		// while its rows are applied. scratch.recs is row-indexed, and
		// partitions own disjoint row sets, so one buffer serves all.
		for pi := range h.scratch.partLen {
			h.scratch.partLen[pi] = int32(h.pt.Part(pi).Len())
		}
		groups := h.pt.PartitionRows(h.scratch.hashes, rows)
		for pi, g := range groups {
			if len(g) == 0 {
				continue
			}
			t := h.pt.Part(pi)
			start = time.Now()
			_, newRecs := t.FindOrInsert(p, h.scratch.hashes, g, h.scratch.recs)
			qc.Stats.Add(StatLookup, time.Since(start))
			h.ag.Init(t, newRecs)

			for si := range h.specs {
				arg := h.scratch.args[si]
				argExpr := h.argOf[si]
				updateRows := g
				if argExpr != nil && argExpr.Nullable() && arg.Nulls != nil {
					// SQL semantics: NULL inputs do not contribute.
					h.scratch.subset = h.scratch.subset[:0]
					for _, r := range g {
						if !arg.Nulls[r] {
							h.scratch.subset = append(h.scratch.subset, r)
						}
					}
					updateRows = h.scratch.subset
				}
				start = time.Now()
				h.ag.Update(t, si, h.scratch.recs, updateRows, arg)
				qc.Stats.Add(StatAggregate, time.Since(start))
			}
		}
		// Log new groups in first-occurrence row order, so emission order
		// matches the monolithic table's insertion order. Records append
		// sequentially within a partition, so a per-partition watermark
		// identifies each group's creating row in one ordered pass.
		for _, r := range rows {
			pi := h.pt.PartOf(h.scratch.hashes[r])
			if rec := h.scratch.recs[r]; rec >= h.scratch.partLen[pi] {
				h.order = append(h.order, h.pt.EncodeRec(pi, rec))
				h.scratch.partLen[pi] = rec + 1
			}
		}
	}
}

// remapKey folds SQL NULLs into the key coding: integer NULLs become the
// extended domain code, string NULLs the null reference. Encoded key
// vectors materialize into the per-key scratch on the way (the key schema
// hashes raw slices); plain non-nullable keys pass through untouched.
func (h *HashAgg) remapKey(i int, k *Expr, v *vec.Vector, rows []int32, phys int) *vec.Vector {
	if !k.Nullable() {
		return ensurePlain(v, rows, &h.keyBufs[i], phys)
	}
	out := h.keyBufs[i]
	if out == nil || out.Typ != v.Typ || out.Len() < phys {
		out = vec.New(v.Typ, phys)
		h.keyBufs[i] = out
	}
	if v.Typ == vec.Str {
		for _, r := range rows {
			if v.IsNull(int(r)) {
				out.Str[r] = nullStrRef
			} else {
				out.Str[r] = v.StrRefAt(int(r))
			}
		}
		return out
	}
	code := h.nullCode[i]
	for _, r := range rows {
		if v.IsNull(int(r)) {
			out.SetInt64(int(r), code)
		} else {
			out.SetInt64(int(r), v.Int64At(int(r)))
		}
	}
	return out
}

func (h *HashAgg) prepareOut() {
	h.out.Vecs = make([]*vec.Vector, len(h.meta))
	for i, m := range h.meta {
		h.out.Vecs[i] = vec.New(m.Type, vec.Size)
	}
}

// Next implements Op: emits the group results in insertion order.
func (h *HashAgg) Next(qc *QCtx) *vec.Batch {
	qc.checkCancel() // emission never touches a scan; poll here too
	if h.emit >= len(h.order) {
		return nil
	}
	n := len(h.order) - h.emit
	if n > vec.Size {
		n = vec.Size
	}
	// Split the chunk by partition: output positions keep insertion
	// order, the per-partition record lists feed the gather calls.
	for pi := range h.emitRecs {
		h.emitRecs[pi] = h.emitRecs[pi][:0]
		h.emitRows[pi] = h.emitRows[pi][:0]
	}
	for i, grec := range h.order[h.emit : h.emit+n] {
		pi, local := h.pt.DecodeRec(grec)
		h.emitRecs[pi] = append(h.emitRecs[pi], local)
		h.emitRows[pi] = append(h.emitRows[pi], int32(i))
	}

	for ci := range h.Keys {
		out := h.out.Vecs[ci]
		for pi := range h.emitRecs {
			if len(h.emitRecs[pi]) == 0 {
				continue
			}
			h.pt.Part(pi).LoadKey(ci, h.emitRecs[pi], out, h.emitRows[pi])
		}
		// Remap NULL codes back to SQL NULLs.
		if h.Keys[ci].Nullable() {
			if out.Nulls == nil {
				out.Nulls = make([]bool, out.Len())
			}
			for i := 0; i < n; i++ {
				if out.Typ == vec.Str {
					out.Nulls[i] = out.Str[i] == nullStrRef
				} else {
					out.Nulls[i] = out.Int64At(i) == h.nullCode[ci]
				}
			}
		}
	}

	for oi, m := range h.specOf {
		out := h.out.Vecs[len(h.Keys)+oi]
		if m.isAvg {
			sum := vec.New(h.ag.ResultType(m.spec), n)
			cnt := vec.New(vec.I64, n)
			h.resultParts(m.spec, sum)
			h.resultParts(m.cnt, cnt)
			for i := 0; i < n; i++ {
				c := cnt.I64[i]
				if c == 0 {
					out.F64[i] = 0
					continue
				}
				out.F64[i] = sumAsF64(sum, i) / float64(c)
			}
			continue
		}
		want := h.meta[len(h.Keys)+oi].Type
		got := h.ag.ResultType(m.spec)
		if want == got {
			h.resultParts(m.spec, out)
			continue
		}
		// Storage kind differs from the declared output type (e.g. an
		// optimistic 128-bit sum emitted where vanilla declared I64, or
		// vice versa): convert through a temporary.
		tmp := vec.New(got, n)
		h.resultParts(m.spec, tmp)
		for i := 0; i < n; i++ {
			if want == vec.I128 {
				out.I128[i] = i128.FromInt64(tmp.I64[i])
			} else {
				out.I64[i] = tmp.I128[i].Int64()
			}
		}
	}

	h.emit += n
	h.out.Sel = nil
	h.out.N = n
	return &h.out
}

// resultParts gathers one aggregate of the current emission chunk across
// its partitions.
func (h *HashAgg) resultParts(spec int, out *vec.Vector) {
	for pi := range h.emitRecs {
		if len(h.emitRecs[pi]) == 0 {
			continue
		}
		h.ag.Result(h.pt.Part(pi), spec, h.emitRecs[pi], out, h.emitRows[pi])
	}
}

// Table exposes the aggregation hash table for footprint experiments.
// With PartitionBits != 0 it returns partition 0 only; use Tables for
// the full radix set.
func (h *HashAgg) Table() *core.Table { return h.pt.Part(0) }

// Tables exposes every radix partition of the aggregation table.
func (h *HashAgg) Tables() []*core.Table { return h.pt.Parts() }

// Len reports the total group count across all partitions.
func (h *HashAgg) Len() int { return h.pt.Len() }

func sumAsF64(v *vec.Vector, i int) float64 {
	if v.Typ == vec.I64 {
		return float64(v.I64[i])
	}
	x := v.I128[i]
	return float64(x.Hi)*math.Pow(2, 64) + float64(x.Lo)
}
