package exec

import (
	"time"

	"ocht/internal/core"
	"ocht/internal/join"
	"ocht/internal/vec"
)

// JoinKind selects the join semantics.
type JoinKind uint8

// Join kinds.
const (
	Inner     JoinKind = iota
	Semi               // EXISTS: emit probe rows with at least one match
	Anti               // NOT EXISTS: emit probe rows with no match
	LeftOuter          // emit all probe rows; NULL payload on misses
)

// HashJoin joins Probe (outer/left) against Build (inner/right) on equal
// keys, materializing the build side into an optimistically compressed
// hash table. Payload lists the build columns carried to the output.
//
// The probe pipeline is cache-conscious: each probe batch is hashed once
// (PrepareProbe), a Bloom pre-pass sheds proven misses for selective
// joins, and the surviving selection vector is walked in a staged
// two-phase sweep over the radix-partitioned build tables.
type HashJoin struct {
	Build, Probe Op
	BuildKeys    []string
	ProbeKeys    []string
	Payload      []string
	Kind         JoinKind
	// Selective hints that most probes miss; with Optimistic Splitting
	// the payload then moves to the cold area (Section III-B) and the
	// join carries a Bloom filter under join.BloomAuto.
	Selective bool
	// PartitionBits sets the build side's radix-partitioning width:
	// negative (the constructor default) picks it adaptively from the
	// build-side cardinality bound, 0 forces one monolithic table, and
	// positive values force 2^bits partitions.
	PartitionBits int
	// BloomMode is the join.Bloom* pre-pass mode; the zero value
	// (BloomAuto) enables the filter exactly for selective joins.
	BloomMode int

	// prebuilt, when set, is a join whose hash table was already built
	// (serially, by the parallel driver on the template pipeline). Open
	// then skips the build drain entirely and probes a per-worker clone of
	// the shared read-only table.
	prebuilt *join.Join

	meta       []Meta
	buildIdx   []int
	probeIdx   []int
	payloadIdx []int
	j          *join.Join

	// Emission state for chunking inner/outer matches.
	curBatch  *vec.Batch
	matchRows []int32
	matchRecs []int32
	matchPos  int
	sel       []int32
	nullSel   []int32 // dropNullKeyRows scratch, reused across batches
	matched   []bool  // per physical row, reused across batches
	keyVecs   []*vec.Vector
	// probeKeyBufs holds the per-key materialization scratch for encoded
	// probe batches (see startBatch); valid across the chunked sweeps of
	// one batch, rewritten by the next.
	probeKeyBufs []*vec.Vector
	out          vec.Batch
	outBufs      []*vec.Vector

	// Match-list scratch reused across probe chunks, and emitChunk's
	// (row, record, null-row) gather scratch — no per-Next allocations.
	mRows, mRecs                 []int32
	emitRows, emitRecs, emitNull []int32

	// Probe chunking state: the Bloom-surviving rows of curBatch still to
	// be probed, plus running multiplicity totals sizing the next chunk.
	probeRows    []int32
	probePos     int
	probedRows   int64
	matchedTotal int64
}

// One staged probe sweep is uninterruptible: it walks every matching
// chain entry before returning, so a high-multiplicity join (many build
// rows per key) could emit millions of matches between cancellation
// polls and blow the match-list allocation. Probe calls are therefore
// sized from the multiplicity observed so far to yield about
// probeTargetMatches matches, with a small bootstrap chunk while the
// first estimate is collected. The chunks (and the multiplicity
// estimate) are taken over post-Bloom survivors — rows the pre-pass
// sheds never reach a sweep, so they must not inflate its budget.
const (
	probeBootstrapRows = 64
	probeTargetMatches = 16 * vec.Size
)

// probeChunkRows picks how many surviving probe rows the next staged
// sweep gets.
func (h *HashJoin) probeChunkRows(remaining int) int {
	n := remaining
	if h.probedRows == 0 {
		n = probeBootstrapRows
	} else if avg := float64(h.matchedTotal) / float64(h.probedRows); avg > 1 {
		if limit := int(probeTargetMatches / avg); limit < n {
			n = limit
		}
	}
	if n < probeBootstrapRows {
		n = probeBootstrapRows
	}
	if n > remaining {
		n = remaining
	}
	return n
}

// matchedMask returns a cleared per-row mask of at least n entries.
func (h *HashJoin) matchedMask(n int) []bool {
	if len(h.matched) < n {
		h.matched = make([]bool, n)
	}
	m := h.matched[:n]
	for i := range m {
		m[i] = false
	}
	return m
}

// NewHashJoin constructs a join with adaptive radix partitioning.
// DefaultPartitionBits is the PartitionBits the operator constructors
// assign: -1 picks the radix width adaptively from cardinality
// estimates, 0 forces monolithic tables, positive pins 2^bits. The
// benchmark CLIs override it to compare widths engine-wide.
var DefaultPartitionBits = -1

func NewHashJoin(kind JoinKind, probe, build Op, probeKeys, buildKeys, payload []string) *HashJoin {
	return &HashJoin{
		Build: build, Probe: probe,
		BuildKeys: buildKeys, ProbeKeys: probeKeys,
		Payload: payload, Kind: kind,
		PartitionBits: DefaultPartitionBits,
	}
}

func colIndex(meta []Meta, name string) int {
	for i, m := range meta {
		if m.Name == name {
			return i
		}
	}
	panic("exec: join references unknown column " + name)
}

// Meta implements Op: probe columns, then payload columns (for Inner and
// LeftOuter).
func (h *HashJoin) Meta() []Meta {
	if h.meta != nil {
		return h.meta
	}
	h.meta = append(h.meta, h.Probe.Meta()...)
	if h.Kind == Inner || h.Kind == LeftOuter {
		bm := h.Build.Meta()
		for _, name := range h.Payload {
			m := bm[colIndex(bm, name)]
			if h.Kind == LeftOuter {
				m.Nullable = true
			}
			h.meta = append(h.meta, m)
		}
	}
	return h.meta
}

// MaxRows implements Op.
func (h *HashJoin) MaxRows() int64 {
	switch h.Kind {
	case Semi, Anti:
		return h.Probe.MaxRows()
	case LeftOuter:
		return satMul(h.Probe.MaxRows(), h.Build.MaxRows())
	default:
		return satMul(h.Probe.MaxRows(), h.Build.MaxRows())
	}
}

// Open implements Op: drains the build side into the hash table. When a
// prebuilt join is attached, only the probe side is opened and the shared
// build table is probed through a worker-private clone.
func (h *HashJoin) Open(qc *QCtx) {
	if h.prebuilt != nil {
		h.Probe.Open(qc)
		h.Meta()
		bm := h.Build.Meta()
		pm := h.Probe.Meta()
		h.probeIdx = h.probeIdx[:0]
		for _, k := range h.ProbeKeys {
			h.probeIdx = append(h.probeIdx, colIndex(pm, k))
		}
		h.payloadIdx = h.payloadIdx[:0]
		for _, p := range h.Payload {
			h.payloadIdx = append(h.payloadIdx, colIndex(bm, p))
		}
		// Clone with this worker's store so probe-side fast/slow counters
		// and scratch buffers stay private; the underlying tables are shared
		// read-only and were already registered by the template, so they are
		// not registered again here.
		h.j = h.prebuilt.ProbeClone(qc.Store)
		h.outBufs = make([]*vec.Vector, len(h.meta))
		for i, m := range h.meta {
			h.outBufs[i] = vec.New(m.Type, vec.Size)
		}
		h.curBatch = nil
		h.matchPos = 0
		h.probeRows, h.probePos = nil, 0
		h.probedRows, h.matchedTotal = 0, 0
		return
	}

	h.Build.Open(qc)
	h.Probe.Open(qc)
	h.Meta()

	bm := h.Build.Meta()
	pm := h.Probe.Meta()
	h.buildIdx = h.buildIdx[:0]
	for _, k := range h.BuildKeys {
		h.buildIdx = append(h.buildIdx, colIndex(bm, k))
	}
	h.probeIdx = h.probeIdx[:0]
	for _, k := range h.ProbeKeys {
		h.probeIdx = append(h.probeIdx, colIndex(pm, k))
	}
	h.payloadIdx = h.payloadIdx[:0]
	for _, p := range h.Payload {
		h.payloadIdx = append(h.payloadIdx, colIndex(bm, p))
	}

	// Key columns: the stored keys take the build-side domains. The
	// compressed probe comparison filters probe values outside them
	// (Section II-D).
	var keyCols []core.KeyCol
	for i, bi := range h.buildIdx {
		m := bm[bi]
		keyCols = append(keyCols, core.KeyCol{Name: h.BuildKeys[i], Type: m.Type, Dom: m.Dom})
	}
	var payloadCols []join.PayloadCol
	for _, pi := range h.payloadIdx {
		m := bm[pi]
		payloadCols = append(payloadCols, join.PayloadCol{Name: m.Name, Type: m.Type, Dom: m.Dom})
	}
	hint := h.Build.MaxRows()
	if hint > 1<<12 {
		hint = 1 << 12 // the directory grows with the table
	}
	// Small build sides stay uncompressed, mirroring the paper's
	// optimizer gating for cache-resident hash tables (Section V-A).
	flags := qc.Flags
	if flags.Compress && h.Build.MaxRows() < CompressMinBuildRows {
		flags.Compress = false
	}
	var err error
	h.j, err = join.New(flags, keyCols, payloadCols, qc.Store, join.Options{
		Selective:     h.Selective || h.Kind == Semi || h.Kind == Anti,
		CapacityHint:  int(hint),
		PartitionBits: h.PartitionBits,
		EstRows:       h.Build.MaxRows(),
		Bloom:         h.BloomMode,
	})
	if err != nil {
		panic(err)
	}
	for _, t := range h.j.Tables() {
		qc.register(t)
	}

	// Drain the build side. The hash-table kernels (core.KeySchema,
	// join.Build) read raw slices, so encoded vectors are materialized here
	// at the operator boundary — but only the rows that survived the NULL
	// drop, into per-slot scratch reused across batches.
	keyVecs := make([]*vec.Vector, len(h.buildIdx))
	plVecs := make([]*vec.Vector, len(h.payloadIdx))
	keyBufs := make([]*vec.Vector, len(h.buildIdx))
	plBufs := make([]*vec.Vector, len(h.payloadIdx))
	var sel []int32
	for {
		qc.checkCancel()
		b := h.Build.Next(qc)
		if b == nil {
			break
		}
		for i, bi := range h.buildIdx {
			keyVecs[i] = b.Vecs[bi]
		}
		for i, pi := range h.payloadIdx {
			plVecs[i] = b.Vecs[pi]
		}
		rows := b.Rows()
		// SQL: NULL keys never join; drop them at build.
		rows, sel = dropNullKeyRows(rows, keyVecs, sel)
		if len(rows) == 0 {
			continue
		}
		phys := physOf(b)
		for i := range keyVecs {
			keyVecs[i] = ensurePlain(keyVecs[i], rows, &keyBufs[i], phys)
		}
		for i := range plVecs {
			plVecs[i] = ensurePlain(plVecs[i], rows, &plBufs[i], phys)
		}
		start := time.Now()
		h.j.Build(keyVecs, plVecs, rows)
		qc.Stats.Add(StatLookup, time.Since(start))
	}

	h.outBufs = make([]*vec.Vector, len(h.meta))
	for i, m := range h.meta {
		h.outBufs[i] = vec.New(m.Type, vec.Size)
	}
	h.curBatch = nil
	h.matchPos = 0
	h.probeRows, h.probePos = nil, 0
	h.probedRows, h.matchedTotal = 0, 0
}

func dropNullKeyRows(rows []int32, keys []*vec.Vector, sel []int32) ([]int32, []int32) {
	any := false
	for _, k := range keys {
		if k.Nulls != nil || k.Typ == vec.Str {
			any = true
		}
	}
	if !any {
		return rows, sel
	}
	sel = sel[:0]
	for _, r := range rows {
		null := false
		for _, k := range keys {
			if k.IsNull(int(r)) || (k.Typ == vec.Str && k.StrRefAt(int(r)) == nullStrRef) {
				null = true
				break
			}
		}
		if !null {
			sel = append(sel, r)
		}
	}
	return sel, sel
}

// Next implements Op.
func (h *HashJoin) Next(qc *QCtx) *vec.Batch {
	switch h.Kind {
	case Semi, Anti:
		return h.nextSemiAnti(qc)
	default:
		return h.nextInner(qc)
	}
}

// startBatch readies a fresh probe batch: bind key vectors, drop NULL
// keys, hash once and run the Bloom pre-pass. It returns the surviving
// selection vector (owned by the join handle, valid until the next
// PrepareProbe).
func (h *HashJoin) startBatch(qc *QCtx, b *vec.Batch) []int32 {
	rows := b.Rows()
	if h.keyVecs == nil {
		h.keyVecs = make([]*vec.Vector, len(h.probeIdx))
	}
	for i, pi := range h.probeIdx {
		h.keyVecs[i] = b.Vecs[pi]
	}
	probeRows, nsel := dropNullKeyRows(rows, h.keyVecs, h.nullSel)
	h.nullSel = nsel
	// Late materialization at the probe boundary: hashing and key checks
	// read raw slices, so encoded key vectors are decoded — NULL-surviving
	// rows only — into per-slot scratch that stays valid across the staged
	// probe chunks of this batch.
	if h.probeKeyBufs == nil {
		h.probeKeyBufs = make([]*vec.Vector, len(h.probeIdx))
	}
	phys := physOf(b)
	for i := range h.keyVecs {
		h.keyVecs[i] = ensurePlain(h.keyVecs[i], probeRows, &h.probeKeyBufs[i], phys)
	}
	start := time.Now()
	survivors := h.j.PrepareProbe(h.keyVecs, probeRows)
	qc.Stats.Add(StatLookup, time.Since(start))
	return survivors
}

// nextInner emits (probe row, payload) pairs, chunking when one probe
// batch yields more than a vector of matches. For LeftOuter, unmatched
// probe rows are emitted with NULL payloads.
func (h *HashJoin) nextInner(qc *QCtx) *vec.Batch {
	for {
		qc.checkCancel()
		if h.curBatch != nil && h.matchPos < len(h.matchRows) {
			return h.emitChunk(qc)
		}
		if h.curBatch != nil && h.probePos < len(h.probeRows) {
			// Sweep a bounded slice of the surviving rows. A row's matches
			// all come from its own sweep, so per-chunk outer-join
			// bookkeeping stays correct.
			chunk := h.probeRows[h.probePos : h.probePos+h.probeChunkRows(len(h.probeRows)-h.probePos)]
			h.probePos += len(chunk)
			start := time.Now()
			mr, mc := h.j.ProbeStaged(chunk, h.mRows[:0], h.mRecs[:0])
			qc.Stats.Add(StatLookup, time.Since(start))
			h.probedRows += int64(len(chunk))
			h.matchedTotal += int64(len(mr))
			if h.Kind == LeftOuter {
				matched := h.matchedMask(physOf(h.curBatch))
				for _, r := range mr {
					matched[r] = true
				}
				for _, r := range chunk {
					if !matched[r] {
						mr = append(mr, r)
						mc = append(mc, -1) // NULL payload marker
					}
				}
			}
			h.mRows, h.mRecs = mr, mc
			if len(mr) == 0 {
				continue
			}
			h.matchRows, h.matchRecs = mr, mc
			h.matchPos = 0
			continue
		}
		b := h.Probe.Next(qc)
		if b == nil {
			return nil
		}
		survivors := h.startBatch(qc, b)
		h.curBatch = b
		h.probeRows = survivors
		h.probePos = 0
		h.matchRows, h.matchRecs = nil, nil
		h.matchPos = 0
		rows := b.Rows()
		if h.Kind == LeftOuter && len(survivors) < len(rows) {
			// Rows shed before any table sweep — NULL keys and Bloom
			// rejects — are proven misses; queue their NULL emissions for
			// the outer join up front.
			inProbe := h.matchedMask(physOf(b))
			for _, r := range survivors {
				inProbe[r] = true
			}
			mr, mc := h.mRows[:0], h.mRecs[:0]
			for _, r := range rows {
				if !inProbe[r] {
					mr = append(mr, r)
					mc = append(mc, -1)
				}
			}
			h.mRows, h.mRecs = mr, mc
			h.matchRows, h.matchRecs = mr, mc
		}
	}
}

func (h *HashJoin) emitChunk(qc *QCtx) *vec.Batch {
	n := len(h.matchRows) - h.matchPos
	if n > vec.Size {
		n = vec.Size
	}
	mr := h.matchRows[h.matchPos : h.matchPos+n]
	mc := h.matchRecs[h.matchPos : h.matchPos+n]
	h.matchPos += n

	pm := h.Probe.Meta()
	// Gather probe columns.
	for ci := range pm {
		src := h.curBatch.Vecs[ci]
		dst := h.outBufs[ci]
		if src.Nulls != nil && dst.Nulls == nil {
			dst.Nulls = make([]bool, dst.Len())
		}
		gather(dst, src, mr)
	}
	// Fetch build payloads; rows with record -1 (outer misses) get NULL.
	h.emitRows = h.emitRows[:0]
	h.emitRecs = h.emitRecs[:0]
	h.emitNull = h.emitNull[:0]
	for i, rec := range mc {
		if rec < 0 {
			h.emitNull = append(h.emitNull, int32(i))
			continue
		}
		h.emitRows = append(h.emitRows, int32(i))
		h.emitRecs = append(h.emitRecs, rec)
	}
	for pi := range h.payloadIdx {
		dst := h.outBufs[len(pm)+pi]
		if dst.Nulls != nil {
			for i := range dst.Nulls {
				dst.Nulls[i] = false
			}
		}
		h.j.FetchPayload(pi, h.emitRecs, dst, h.emitRows)
		for _, i := range h.emitNull {
			dst.SetNull(int(i))
		}
	}
	h.out.Vecs = h.outBufs
	h.out.Sel = nil
	h.out.N = n
	return &h.out
}

// nextSemiAnti emits probe rows filtered by match existence, reusing the
// probe batch with a narrowed selection (no copying). Bloom-shed rows are
// proven misses (the filter has no false negatives), so they simply never
// reach the table sweep and stay unmatched.
func (h *HashJoin) nextSemiAnti(qc *QCtx) *vec.Batch {
	for {
		qc.checkCancel()
		b := h.Probe.Next(qc)
		if b == nil {
			return nil
		}
		rows := b.Rows()
		survivors := h.startBatch(qc, b)
		matched := h.matchedMask(physOf(b))
		if len(survivors) > 0 {
			start := time.Now()
			mr, mc := h.j.ProbeStaged(survivors, h.mRows[:0], h.mRecs[:0])
			qc.Stats.Add(StatLookup, time.Since(start))
			h.mRows, h.mRecs = mr, mc
			for _, r := range mr {
				matched[r] = true
			}
		}
		h.sel = h.sel[:0]
		for _, r := range rows {
			if matched[r] == (h.Kind == Semi) {
				h.sel = append(h.sel, r)
			}
		}
		if len(h.sel) == 0 {
			continue
		}
		h.out.Vecs = h.curVecs(b)
		h.out.Sel = h.sel
		h.out.N = len(h.sel)
		return &h.out
	}
}

func (h *HashJoin) curVecs(b *vec.Batch) []*vec.Vector { return b.Vecs }

// Table exposes the first partition of the join hash table for footprint
// experiments; Join exposes the full handle (all partitions, Bloom).
func (h *HashJoin) Table() *core.Table { return h.j.Table() }

// Join exposes the underlying join handle (Bloom counters, partitions).
func (h *HashJoin) Join() *join.Join { return h.j }

// gather copies src values at the given physical rows densely into
// dst[0:len(rows)]. The caller pre-sizes dst.Nulls when src carries a
// NULL mask.
//
//ocht:hot
func gather(dst, src *vec.Vector, rows []int32) {
	if src.Nulls != nil {
		for i, r := range rows {
			dst.Nulls[i] = src.Nulls[r]
		}
	} else if dst.Nulls != nil {
		for i := range rows {
			dst.Nulls[i] = false
		}
	}
	if src.Enc != vec.EncPlain {
		// Encoded probe columns decode per gathered row — this is where
		// late materialization pays off: only rows that matched the join
		// reach here.
		if src.Typ == vec.Str {
			for i, r := range rows {
				dst.Str[i] = src.StrRefAt(int(r))
			}
		} else {
			for i, r := range rows {
				dst.SetInt64(i, src.Int64At(int(r)))
			}
		}
		return
	}
	switch src.Typ {
	case vec.Bool:
		for i, r := range rows {
			dst.Bool[i] = src.Bool[r]
		}
	case vec.I8:
		for i, r := range rows {
			dst.I8[i] = src.I8[r]
		}
	case vec.I16:
		for i, r := range rows {
			dst.I16[i] = src.I16[r]
		}
	case vec.I32:
		for i, r := range rows {
			dst.I32[i] = src.I32[r]
		}
	case vec.I64:
		for i, r := range rows {
			dst.I64[i] = src.I64[r]
		}
	case vec.I128:
		for i, r := range rows {
			dst.I128[i] = src.I128[r]
		}
	case vec.F64:
		for i, r := range rows {
			dst.F64[i] = src.F64[r]
		}
	case vec.Str:
		for i, r := range rows {
			dst.Str[i] = src.Str[r]
		}
	}
}
