package exec

import (
	"math"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/domain"
	"ocht/internal/i128"
	"ocht/internal/vec"
)

// MergeSpec is one output aggregate of a MergeAgg: it names the child
// column carrying the shard-level partial value and the aggregate
// function whose merge rule combines partials across shards. For AVG the
// shards return the decomposed SUM and COUNT partials in two columns
// (Col and Cnt) and the coordinator finalizes the division.
type MergeSpec struct {
	Func agg.Func // agg.Sum/Count/Min/Max or Avg
	Col  int      // child column of the partial (the SUM partial for AVG)
	Cnt  int      // child column of the COUNT partial for AVG, else -1
	Name string
}

// MergeAgg is the coordinator side of distributed aggregation: the child
// (an Exchange over gathered shard results) yields one row per
// (shard, group) with finalized partial aggregates, and MergeAgg folds
// rows of the same group through agg.LoadPartial + agg.Merge — the exact
// code path the parallel driver uses to combine per-worker partial
// tables, so distributed and single-node results agree by construction.
// The first NKeys child columns are the group keys; emission preserves
// first-occurrence order of the gathered stream.
type MergeAgg struct {
	Child Op
	NKeys int
	Specs []MergeSpec

	meta     []Meta
	keyCols  []core.KeyCol
	nullCode []int64
	schema   *core.KeySchema
	ag       *agg.Aggregator
	tab      *core.Table
	scratch  *core.Table
	srec     int32

	specs   []agg.Spec // internal layouts (AVG -> SUM + COUNT)
	specOf  []aggMap
	colOf   []int // per internal spec: the child column of its partial
	keyBufs []*vec.Vector
	emit    int
	out     vec.Batch
}

// NewMergeAgg builds a merge aggregation over the child's partial rows.
func NewMergeAgg(child Op, nKeys int, specs []MergeSpec) *MergeAgg {
	return &MergeAgg{Child: child, NKeys: nKeys, Specs: specs}
}

// Meta implements Op. SUM merges in exact 128-bit arithmetic and emits
// I128 (the shard partial may itself be a wide sum); MIN/MAX keep the
// child partial's type; AVG finalizes to F64.
func (m *MergeAgg) Meta() []Meta {
	if m.meta != nil {
		return m.meta
	}
	cm := m.Child.Meta()
	for i := 0; i < m.NKeys; i++ {
		m.meta = append(m.meta, cm[i])
	}
	for _, s := range m.Specs {
		out := Meta{Name: s.Name, Dom: domain.Unknown}
		switch s.Func {
		case Avg:
			out.Type = vec.F64
		case agg.Sum:
			out.Type = vec.I128
		case agg.Count, agg.CountStar:
			out.Type = vec.I64
			out.Dom = domain.New(0, m.Child.MaxRows())
		case agg.Min, agg.Max:
			if cm[s.Col].Type == vec.Str {
				out.Type = vec.Str
				out.Nullable = true // all-NULL groups stay NULL
			} else {
				out.Type = vec.I64
			}
		}
		m.meta = append(m.meta, out)
	}
	return m.meta
}

// MaxRows implements Op: every gathered row could be its own group.
func (m *MergeAgg) MaxRows() int64 { return m.Child.MaxRows() }

// Open implements Op: drains the child and folds every partial row.
func (m *MergeAgg) Open(qc *QCtx) {
	m.Child.Open(qc)
	m.Meta()
	cm := m.Child.Meta()

	// Group-key columns, with NULL codes folded in exactly as HashAgg
	// does, so NULL groups from different shards land in one record.
	m.keyCols = m.keyCols[:0]
	m.nullCode = m.nullCode[:0]
	for i := 0; i < m.NKeys; i++ {
		kc := core.KeyCol{Name: cm[i].Name, Type: cm[i].Type, Dom: cm[i].Dom}
		code := int64(math.MinInt64)
		if cm[i].Type != vec.Str {
			if kc.Dom.Valid && kc.Dom.Max < math.MaxInt64 {
				code = kc.Dom.Max + 1
				kc.Dom = domain.New(kc.Dom.Min, code)
			} else {
				code = math.MinInt64 + 1
			}
			if !kc.Type.IsInt() && kc.Type != vec.Bool {
				kc.Type = vec.F64
			}
		}
		m.nullCode = append(m.nullCode, code)
		m.keyCols = append(m.keyCols, kc)
	}

	// Internal merge layouts. Sum partials use an unknown input domain on
	// purpose: SumFitsInt64 never proves a 64-bit fit for it, so the
	// layout is always one of the exact 128-bit forms (split or full) and
	// reloading the partial's (Lo, Hi) words loses nothing.
	maxRows := m.Child.MaxRows()
	m.specs = m.specs[:0]
	m.specOf = m.specOf[:0]
	m.colOf = m.colOf[:0]
	mk := func(f agg.Func, col int) int {
		s := agg.Spec{Func: f, MaxRows: maxRows, InType: vec.I64, InDom: domain.Unknown}
		if f == agg.Min || f == agg.Max {
			s.InType = cm[col].Type
		}
		m.specs = append(m.specs, s)
		m.colOf = append(m.colOf, col)
		return len(m.specs) - 1
	}
	for _, s := range m.Specs {
		switch s.Func {
		case Avg:
			si := mk(agg.Sum, s.Col)
			ci := mk(agg.Count, s.Cnt)
			m.specOf = append(m.specOf, aggMap{spec: si, cnt: ci, isAvg: true})
		default:
			m.specOf = append(m.specOf, aggMap{spec: mk(s.Func, s.Col), cnt: -1})
		}
	}

	var err error
	m.schema, err = core.NewKeySchema(qc.Flags, m.keyCols, qc.Store)
	if err != nil {
		panic(err)
	}
	m.ag = agg.NewAggregator(qc.Flags, m.specs)
	hint := maxRows
	if hint > 1<<12 {
		hint = 1 << 12
	}
	if hint < 4 {
		hint = 4
	}
	m.tab = core.NewTable(m.schema, m.ag.HotBytes, m.ag.ColdBytes, int(hint))
	qc.register(m.tab)
	// The scratch table holds exactly one record whose state is
	// overwritten by LoadPartial for every incoming partial row.
	m.scratch = core.NewTable(m.schema, m.ag.HotBytes, m.ag.ColdBytes, 4)
	m.srec = -1

	m.keyBufs = make([]*vec.Vector, m.NKeys)
	m.build(qc)
	m.emit = 0
	if m.out.Vecs == nil {
		m.out.Vecs = make([]*vec.Vector, len(m.meta))
		for i, mt := range m.meta {
			m.out.Vecs[i] = vec.New(mt.Type, vec.Size)
		}
	}
}

func (m *MergeAgg) build(qc *QCtx) {
	keys := make([]*vec.Vector, m.NKeys)
	hashes := make([]uint64, vec.Size)
	recs := make([]int32, vec.Size)
	one := []int32{0}
	srecOut := make([]int32, 1)
	for {
		qc.checkCancel()
		b := m.Child.Next(qc)
		if b == nil {
			return
		}
		rows := b.Rows()
		phys := physOf(b)
		if phys > len(hashes) {
			hashes = make([]uint64, phys)
			recs = make([]int32, phys)
		}
		for i := 0; i < m.NKeys; i++ {
			keys[i] = m.remapKey(i, b.Vecs[i], rows, phys)
		}
		p := m.schema.Prepare(keys, rows)
		m.schema.Hash(p, rows, hashes)
		_, newRecs := m.tab.FindOrInsert(p, hashes, rows, recs)
		m.ag.Init(m.tab, newRecs)
		if m.srec < 0 {
			// First batch: seed the scratch table with one record (any key
			// works; only its aggregate area is ever read).
			sp := m.schema.Prepare(keys, one)
			var h [1]uint64
			m.schema.Hash(sp, one, h[:])
			m.scratch.FindOrInsert(sp, h[:], one, srecOut)
			m.srec = srecOut[0]
		}
		for _, r := range rows {
			for si, col := range m.colOf {
				m.ag.LoadPartial(m.scratch, m.srec, si, m.partialAt(qc, b.Vecs[col], int(r), si))
			}
			m.ag.Merge(m.tab, recs[r], m.scratch, m.srec)
		}
	}
}

// partialAt extracts one partial value from a child cell. NULL cells load
// the aggregate's merge identity (zero sums and counts, MIN/MAX
// sentinels, the string no-value marker), so a shard that had nothing to
// say about a group contributes nothing.
func (m *MergeAgg) partialAt(qc *QCtx, v *vec.Vector, row int, si int) agg.Partial {
	s := m.specs[si]
	null := v.IsNull(row)
	switch s.Func {
	case agg.Sum:
		if null {
			return agg.Partial{}
		}
		if v.Typ == vec.I128 {
			return agg.Partial{Sum: v.I128[row]}
		}
		return agg.Partial{Sum: i128.FromInt64(v.Int64At(row))}
	case agg.Count, agg.CountStar:
		if null {
			return agg.Partial{}
		}
		return agg.Partial{I: v.Int64At(row)}
	case agg.Min, agg.Max:
		if s.InType == vec.Str {
			if null {
				return agg.Partial{} // Str ref 0: the no-value marker
			}
			ref := v.StrRefAt(row)
			if ref == nullStrRef {
				return agg.Partial{}
			}
			return agg.Partial{Str: ref}
		}
		if null {
			if s.Func == agg.Min {
				return agg.Partial{I: agg.MinInitExcept}
			}
			return agg.Partial{I: agg.MaxInitExcept}
		}
		return agg.Partial{I: v.Int64At(row)}
	}
	panic("exec: partial of unsupported merge func")
}

// remapKey folds NULL keys into the key coding (HashAgg's rule) and
// materializes encoded vectors; Exchange emits plain vectors, so the
// scratch path only runs for NULL remapping.
func (m *MergeAgg) remapKey(i int, v *vec.Vector, rows []int32, phys int) *vec.Vector {
	out := m.keyBufs[i]
	typ := v.Typ
	if out == nil || out.Typ != typ || out.Len() < phys {
		out = vec.New(typ, phys)
		m.keyBufs[i] = out
	}
	if typ == vec.Str {
		for _, r := range rows {
			if v.IsNull(int(r)) {
				out.Str[r] = nullStrRef
			} else {
				out.Str[r] = v.StrRefAt(int(r))
			}
		}
		return out
	}
	if typ == vec.F64 {
		for _, r := range rows {
			if v.IsNull(int(r)) {
				out.F64[r] = math.Float64frombits(uint64(m.nullCode[i]))
			} else {
				out.F64[r] = v.F64[r]
			}
		}
		return out
	}
	code := m.nullCode[i]
	for _, r := range rows {
		if v.IsNull(int(r)) {
			out.SetInt64(int(r), code)
		} else {
			out.SetInt64(int(r), v.Int64At(int(r)))
		}
	}
	return out
}

// Next implements Op: emits merged groups in insertion order. The table
// is monolithic, so record order is first-occurrence order.
func (m *MergeAgg) Next(qc *QCtx) *vec.Batch {
	qc.checkCancel()
	total := m.tab.Len()
	if m.emit >= total {
		return nil
	}
	n := total - m.emit
	if n > vec.Size {
		n = vec.Size
	}
	recIdx := make([]int32, n)
	rows := make([]int32, n)
	for i := 0; i < n; i++ {
		recIdx[i], rows[i] = int32(m.emit+i), int32(i)
	}
	for ci := 0; ci < m.NKeys; ci++ {
		out := m.out.Vecs[ci]
		m.tab.LoadKey(ci, recIdx, out, rows)
		if out.Nulls == nil {
			out.Nulls = make([]bool, out.Len())
		}
		for i := 0; i < n; i++ {
			if out.Typ == vec.Str {
				out.Nulls[i] = out.Str[i] == nullStrRef
			} else if out.Typ == vec.F64 {
				out.Nulls[i] = math.Float64bits(out.F64[i]) == uint64(m.nullCode[ci])
			} else {
				out.Nulls[i] = out.Int64At(i) == m.nullCode[ci]
			}
		}
	}
	for oi, am := range m.specOf {
		out := m.out.Vecs[m.NKeys+oi]
		if am.isAvg {
			sum := vec.New(m.ag.ResultType(am.spec), n)
			cnt := vec.New(vec.I64, n)
			m.ag.Result(m.tab, am.spec, recIdx, sum, rows)
			m.ag.Result(m.tab, am.cnt, recIdx, cnt, rows)
			for i := 0; i < n; i++ {
				if c := cnt.I64[i]; c == 0 {
					out.F64[i] = 0
				} else {
					out.F64[i] = sumAsF64(sum, i) / float64(c)
				}
			}
			continue
		}
		want := m.meta[m.NKeys+oi].Type
		got := m.ag.ResultType(am.spec)
		if want == got {
			m.ag.Result(m.tab, am.spec, recIdx, out, rows)
			continue
		}
		tmp := vec.New(got, n)
		m.ag.Result(m.tab, am.spec, recIdx, tmp, rows)
		for i := 0; i < n; i++ {
			if want == vec.I128 {
				out.I128[i] = i128.FromInt64(tmp.I64[i])
			} else {
				out.I64[i] = tmp.I128[i].Int64()
			}
		}
	}
	m.emit += n
	m.out.Sel = nil
	m.out.N = n
	return &m.out
}

// Len reports the merged group count.
func (m *MergeAgg) Len() int { return m.tab.Len() }
