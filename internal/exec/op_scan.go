package exec

import (
	"time"

	"ocht/internal/storage"
	"ocht/internal/vec"
)

// Scan reads a stored table block by block, decompressing per-block string
// dictionaries through the query's string store (priming the USSR,
// Section IV-D) and deriving column domains from the out-of-band zone maps
// (Section II-A).
type Scan struct {
	Table   *storage.Table
	Columns []string

	// Morsels, when set, makes the scan claim its blocks from a shared
	// morsel queue instead of walking them sequentially; this is how the
	// parallel driver distributes one table over many cloned pipelines.
	// When nil (serial execution) block order is exactly 0..Blocks-1.
	Morsels *storage.MorselQueue

	cols     []*storage.Column
	meta     []Meta
	bufs     []*vec.Vector
	out      *vec.Batch
	block    int
	blockLen int
	pos      int
}

// NewScan creates a scan over the named columns (all columns when nil).
func NewScan(t *storage.Table, columns ...string) *Scan {
	if len(columns) == 0 {
		for _, c := range t.Cols {
			columns = append(columns, c.Name)
		}
	}
	return &Scan{Table: t, Columns: columns}
}

// Meta implements Op.
func (s *Scan) Meta() []Meta {
	if s.meta == nil {
		for _, name := range s.Columns {
			c := s.Table.Col(name)
			s.meta = append(s.meta, Meta{
				Name:     name,
				Type:     c.Type,
				Dom:      c.TotalDomain(),
				Nullable: c.Nullable,
			})
		}
	}
	return s.meta
}

// MaxRows implements Op.
func (s *Scan) MaxRows() int64 { return int64(s.Table.Rows()) }

// Open implements Op.
func (s *Scan) Open(qc *QCtx) {
	s.Meta()
	s.cols = s.cols[:0]
	s.bufs = s.bufs[:0]
	for _, name := range s.Columns {
		c := s.Table.Col(name)
		s.cols = append(s.cols, c)
		buf := vec.New(c.Type, storage.BlockRows)
		if c.Nullable {
			buf.Nulls = make([]bool, storage.BlockRows)
		}
		s.bufs = append(s.bufs, buf)
	}
	s.out = &vec.Batch{Vecs: make([]*vec.Vector, len(s.cols))}
	s.block, s.blockLen, s.pos = 0, 0, 0
}

// Next implements Op.
func (s *Scan) Next(qc *QCtx) *vec.Batch {
	qc.checkCancel() // scans are the leaves every pull loop bottoms out in
	if s.pos >= s.blockLen {
		bi, ok := s.nextBlock()
		if !ok {
			return nil
		}
		start := time.Now()
		for i, c := range s.cols {
			s.blockLen = c.ScanBlock(bi, s.bufs[i], qc.Store)
		}
		qc.Stats.Add(StatScan, time.Since(start))
		s.pos = 0
	}
	n := s.blockLen - s.pos
	if n > vec.Size {
		n = vec.Size
	}
	for i, buf := range s.bufs {
		s.out.Vecs[i] = viewOf(buf, s.pos, n)
	}
	s.out.Sel = nil
	s.out.N = n
	s.pos += n
	return s.out
}

// nextBlock claims the next block to read: from the morsel queue when one
// is attached, sequentially otherwise.
func (s *Scan) nextBlock() (int, bool) {
	if len(s.cols) == 0 {
		return 0, false
	}
	if s.Morsels != nil {
		return s.Morsels.Next()
	}
	if s.block >= s.cols[0].Blocks() {
		return 0, false
	}
	bi := s.block
	s.block++
	return bi, true
}

// viewOf returns a window [pos, pos+n) of v without copying.
func viewOf(v *vec.Vector, pos, n int) *vec.Vector {
	out := &vec.Vector{Typ: v.Typ}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[pos : pos+n]
	}
	switch v.Typ {
	case vec.Bool:
		out.Bool = v.Bool[pos : pos+n]
	case vec.I8:
		out.I8 = v.I8[pos : pos+n]
	case vec.I16:
		out.I16 = v.I16[pos : pos+n]
	case vec.I32:
		out.I32 = v.I32[pos : pos+n]
	case vec.I64:
		out.I64 = v.I64[pos : pos+n]
	case vec.I128:
		out.I128 = v.I128[pos : pos+n]
	case vec.F64:
		out.F64 = v.F64[pos : pos+n]
	case vec.Str:
		out.Str = v.Str[pos : pos+n]
	}
	return out
}
