package exec

import (
	"time"

	"ocht/internal/storage"
	"ocht/internal/vec"
)

// Scan reads a stored table block by block. By default it emits each block
// in its stored encoding — dictionary codes with a per-block reference
// table for strings (priming the USSR, Section IV-D), frame-of-reference
// packed words for narrow integers — as zero-copy views, and uses the
// out-of-band zone maps (Section II-A) both for domain derivation and to
// skip blocks that cannot satisfy pushed-down predicate ranges. With
// qc.EagerMaterialize it decompresses every block into plain vectors, the
// classic pipeline all operators still accept.
type Scan struct {
	Table   *storage.Table
	Columns []string

	// Morsels, when set, makes the scan claim its blocks from a shared
	// morsel queue instead of walking them sequentially; this is how the
	// parallel driver distributes one table over many cloned pipelines.
	// When nil (serial execution) block order is exactly 0..Blocks-1.
	Morsels *storage.MorselQueue

	// MorselWorker identifies this scan's worker to an affinity morsel
	// queue: claims drain the worker's own contiguous block range before
	// stealing from others (storage.NewMorselQueueAffinity). Ignored by
	// single-range queues.
	MorselWorker int

	// Zones holds conjunctive per-column value ranges pushed down from the
	// predicate directly above the scan (Filter.Open derives and attaches
	// them). A block whose zone map proves some range unsatisfiable is
	// skipped without touching its data. Rows of surviving blocks still
	// flow through the filter, so zone ranges are purely an optimization.
	Zones []ZoneRange

	cols     []*storage.Column
	zcols    []*storage.Column // resolved Zones columns, parallel to Zones
	meta     []Meta
	bufs     []*vec.Vector // eager materialization buffers (eager path only)
	views    []*vec.Vector // per-column whole-block views, reused per block
	win      []*vec.Vector // per-column window views handed out, reused per Next
	dictRefs [][]vec.StrRef
	out      *vec.Batch
	block    int
	blockLen int
	pos      int
	eager    bool
}

// NewScan creates a scan over the named columns (all columns when nil).
func NewScan(t *storage.Table, columns ...string) *Scan {
	if len(columns) == 0 {
		for _, c := range t.Cols {
			columns = append(columns, c.Name)
		}
	}
	return &Scan{Table: t, Columns: columns}
}

// Meta implements Op.
func (s *Scan) Meta() []Meta {
	if s.meta == nil {
		for _, name := range s.Columns {
			c := s.Table.Col(name)
			s.meta = append(s.meta, Meta{
				Name:     name,
				Type:     c.Type,
				Dom:      c.TotalDomain(),
				Nullable: c.Nullable,
				Distinct: c.DistinctBound(),
			})
		}
	}
	return s.meta
}

// MaxRows implements Op.
func (s *Scan) MaxRows() int64 { return int64(s.Table.Rows()) }

// Open implements Op.
func (s *Scan) Open(qc *QCtx) {
	s.Meta()
	s.eager = qc.EagerMaterialize
	s.cols = s.cols[:0]
	for _, name := range s.Columns {
		s.cols = append(s.cols, s.Table.Col(name))
	}
	if s.eager {
		s.bufs = s.bufs[:0]
		for _, c := range s.cols {
			buf := vec.New(c.Type, storage.BlockRows)
			if c.Nullable {
				buf.Nulls = make([]bool, storage.BlockRows)
			}
			s.bufs = append(s.bufs, buf)
		}
	}
	if len(s.views) != len(s.cols) {
		s.views = make([]*vec.Vector, len(s.cols))
		s.win = make([]*vec.Vector, len(s.cols))
		s.dictRefs = make([][]vec.StrRef, len(s.cols))
		for i := range s.views {
			s.views[i] = &vec.Vector{}
			s.win[i] = &vec.Vector{}
		}
	}
	s.zcols = s.zcols[:0]
	for _, zr := range s.Zones {
		s.zcols = append(s.zcols, s.Table.Col(zr.Col))
	}
	s.out = &vec.Batch{Vecs: make([]*vec.Vector, len(s.cols))}
	s.block, s.blockLen, s.pos = 0, 0, 0
}

// Next implements Op.
func (s *Scan) Next(qc *QCtx) *vec.Batch {
	qc.checkCancel() // scans are the leaves every pull loop bottoms out in
	if s.pos >= s.blockLen {
		var bi int
		for {
			var ok bool
			bi, ok = s.nextBlock()
			if !ok {
				return nil
			}
			if s.skipBlock(qc, bi) {
				qc.Stats.Count(CtrBlocksSkipped, 1)
				continue
			}
			break
		}
		qc.Stats.Count(CtrBlocksRead, 1)
		start := time.Now()
		bytes := 0
		for i, c := range s.cols {
			if s.eager {
				s.blockLen = c.ScanBlock(bi, s.bufs[i], qc.Store)
				bytes += s.blockLen * c.Type.Width()
			} else {
				n, refs, db := c.ViewBlock(bi, s.views[i], qc.Store, s.dictRefs[i])
				//ocht:retain-checked the scan owns this scratch: refs is handed back to the next ViewBlock call for reuse and is never read after that call
				s.dictRefs[i] = refs
				s.blockLen = n
				bytes += db
			}
		}
		qc.Stats.Count(CtrBytesDecompressed, int64(bytes))
		qc.Stats.Add(StatScan, time.Since(start))
		s.pos = 0
	}
	n := s.blockLen - s.pos
	if n > vec.Size {
		n = vec.Size
	}
	for i := range s.cols {
		src := s.views[i]
		if s.eager {
			src = s.bufs[i]
		}
		windowInto(s.win[i], src, s.pos, n)
		s.out.Vecs[i] = s.win[i]
	}
	s.out.Sel = nil
	s.out.N = n
	s.pos += n
	return s.out
}

// skipBlock reports whether block bi provably fails a pushed-down range.
// NULL rows never satisfy a comparison predicate and zone maps cover only
// non-NULL values, so skipping on the zone interval is exact.
func (s *Scan) skipBlock(qc *QCtx, bi int) bool {
	if qc.DisableZoneSkip || len(s.zcols) == 0 {
		return false
	}
	for i, zr := range s.Zones {
		min, max, ok := s.zcols[i].Zone(bi)
		if ok && (max < zr.Lo || min > zr.Hi) {
			return true
		}
	}
	return false
}

// nextBlock claims the next block to read: from the morsel queue when one
// is attached, sequentially otherwise.
func (s *Scan) nextBlock() (int, bool) {
	if len(s.cols) == 0 {
		return 0, false
	}
	if s.Morsels != nil {
		return s.Morsels.NextFor(s.MorselWorker)
	}
	if s.block >= s.cols[0].Blocks() {
		return 0, false
	}
	bi := s.block
	s.block++
	return bi, true
}

// windowInto points out at the window [pos, pos+n) of v without copying
// and without allocating: the same scratch vector is rewritten every Next.
// Encoded views stay encoded — dictionary windows share the block's code
// table, packed windows shift their word offset.
//
//ocht:hot
func windowInto(out, v *vec.Vector, pos, n int) {
	w := vec.Vector{Typ: v.Typ, Enc: v.Enc}
	if v.Nulls != nil {
		w.Nulls = v.Nulls[pos : pos+n]
	}
	switch v.Enc {
	case vec.EncDict:
		if v.Codes != nil {
			w.Codes = v.Codes[pos : pos+n]
		} else {
			// Bit-packed codes from a compressed sealed block: the window
			// shares the words and shifts its offset, like EncPacked.
			w.Packed = v.Packed
			w.PackBits = v.PackBits
			w.PackOff = v.PackOff + pos
			w.PackLen = n
		}
		w.DictRefs = v.DictRefs
	case vec.EncPacked:
		w.Packed = v.Packed
		w.PackBits = v.PackBits
		w.PackMin = v.PackMin
		w.PackOff = v.PackOff + pos
		w.PackLen = n
	default:
		switch v.Typ {
		case vec.Bool:
			w.Bool = v.Bool[pos : pos+n]
		case vec.I8:
			w.I8 = v.I8[pos : pos+n]
		case vec.I16:
			w.I16 = v.I16[pos : pos+n]
		case vec.I32:
			w.I32 = v.I32[pos : pos+n]
		case vec.I64:
			w.I64 = v.I64[pos : pos+n]
		case vec.I128:
			w.I128 = v.I128[pos : pos+n]
		case vec.F64:
			w.F64 = v.F64[pos : pos+n]
		case vec.Str:
			w.Str = v.Str[pos : pos+n]
		}
	}
	*out = w
}
