package exec

import (
	"sync"

	"ocht/internal/storage"
	"ocht/internal/vec"
)

// Morsel-driven parallel execution (DESIGN.md, "Parallel execution").
//
// The driver splits a plan at its lowest hash aggregation (the frontier):
// everything below the frontier — scan, filters, projections, join probes —
// is cloned per worker and driven by a shared morsel queue over the scan's
// blocks, with each worker building a private optimistically compressed
// aggregate table against a private string heap; join build sides and the
// USSR are built once, single-threaded, and shared read-only. A final merge
// phase re-aggregates the per-worker tables into the template's table,
// after which the plan above the frontier runs serially as before.
//
// Plans without an aggregation frontier (pure scan→filter→project→probe
// pipelines) are instead range-partitioned: each worker runs a full clone
// over a contiguous slab of blocks and the per-worker results are
// concatenated in worker order, which reproduces the serial row order.

// spine is the root→scan path of a plan.
type spine struct {
	frontier *HashAgg // lowest HashAgg on the path, nil for pure pipelines
	scan     *Scan
}

// analyze walks the plan's spine. ok is false when the plan contains an
// operator shape the parallel driver does not support, in which case Run
// falls back to serial execution.
func analyze(root Op) (sp spine, ok bool) {
	o := root
	for {
		switch t := o.(type) {
		case *Scan:
			if t.Morsels != nil {
				return sp, false // already driven by another queue
			}
			sp.scan = t
			return sp, true
		case *Filter:
			o = t.Child
		case *Project:
			o = t.Child
		case *HashAgg:
			sp.frontier = t // keep descending: the lowest one wins
			o = t.Child
		case *HashJoin:
			o = t.Probe
		default:
			return sp, false
		}
	}
}

// warmTree inserts every string the workers could otherwise try to insert
// concurrently into the USSR: query-text constants of all expressions
// (which keep their Section IV-D priority by going first) and then every
// scanned column's per-block dictionaries. Runs single-threaded before the
// region is frozen.
func warmTree(qc *QCtx, root Op) {
	walkOps(root, func(o Op) {
		switch t := o.(type) {
		case *Filter:
			warmExpr(qc, t.Pred)
		case *Project:
			for _, e := range t.Exprs {
				warmExpr(qc, e)
			}
		case *HashAgg:
			for _, e := range t.Keys {
				warmExpr(qc, e)
			}
			for _, a := range t.Aggs {
				warmExpr(qc, a.Arg)
			}
		}
	})
	walkOps(root, func(o Op) {
		if s, isScan := o.(*Scan); isScan {
			for _, name := range s.Columns {
				s.Table.Col(name).WarmDictionaries(qc.Store)
			}
		}
	})
}

func walkOps(o Op, f func(Op)) {
	f(o)
	switch t := o.(type) {
	case *Filter:
		walkOps(t.Child, f)
	case *Project:
		walkOps(t.Child, f)
	case *HashAgg:
		walkOps(t.Child, f)
	case *HashJoin:
		walkOps(t.Build, f)
		walkOps(t.Probe, f)
	}
}

func warmExpr(qc *QCtx, e *Expr) {
	if e == nil {
		return
	}
	if e.kind == eConstStr {
		qc.Store.Warm(e.cStr)
	}
	warmExpr(qc, e.l)
	warmExpr(qc, e.r)
	warmExpr(qc, e.el)
}

// runParallel executes the plan with qc.Workers workers. ok is false when
// the plan shape is unsupported; the caller then runs serially.
func runParallel(qc *QCtx, root Op) (res *Result, ok bool) {
	sp, ok := analyze(root)
	if !ok {
		return nil, false
	}
	if sp.frontier != nil {
		return runParallelAgg(qc, root, sp), true
	}
	return runParallelPipeline(qc, root, sp), true
}

// forkCtx builds the per-worker execution contexts: private string heaps
// over a shared shard table, private Stats, serial-mode sub-contexts.
func forkCtx(qc *QCtx, n int) []*QCtx {
	stores := qc.Store.Shard(n)
	wqcs := make([]*QCtx, n)
	for i := range wqcs {
		// Workers share the query's cancellation signal so a deadline or
		// client disconnect stops every morsel loop, not just the driver.
		wqcs[i] = &QCtx{
			Flags: qc.Flags, Store: stores[i], Stats: NewStats(), done: qc.done,
			EagerMaterialize: qc.EagerMaterialize, DisableZoneSkip: qc.DisableZoneSkip,
		}
	}
	return wqcs
}

// joinCtx folds the workers' stats, counters and hash-table footprints
// back into the query context.
func joinCtx(qc *QCtx, wqcs []*QCtx) {
	qc.workerFootprints = qc.workerFootprints[:0]
	for _, w := range wqcs {
		qc.Stats.Merge(w.Stats)
		qc.Store.HashFast += w.Store.HashFast
		qc.Store.HashSlow += w.Store.HashSlow
		qc.Store.EqualFast += w.Store.EqualFast
		qc.Store.EqualSlow += w.Store.EqualSlow
		fp := 0
		for _, t := range w.tables {
			fp += t.MemoryBytes()
		}
		qc.workerFootprints = append(qc.workerFootprints, fp)
	}
}

// spawn runs one task per worker and re-panics the first worker panic in
// the driver goroutine.
func spawn(n int, task func(i int)) {
	var wg sync.WaitGroup
	panics := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			task(i)
		}(i)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// runParallelAgg is the frontier case. It opens the template frontier
// with an empty table, freezes the USSR, and then picks the parallel
// build strategy by the template's radix width:
//
//   - bits > 0: partition-wise owner-computes (partagg.go) — workers
//     spill hash-routed rows during the scan, each partition is built
//     whole by one owner worker, and the merge is a contention-free
//     partition concatenation.
//   - bits == 0 (cache-resident group count): per-worker private tables
//     re-aggregated into the template through agg.Merge. With few groups
//     the merge touches almost nothing, so the classic path stays the
//     cheaper one.
func runParallelAgg(qc *QCtx, root Op, sp spine) *Result {
	tpl := sp.frontier

	// 1. Open the frontier subtree serially with an empty table: this
	// builds (and registers) every join hash table below the frontier and
	// fixes the template's key schema, aggregate layout and radix width.
	tpl.skipBuild = true
	tpl.Open(qc)
	tpl.skipBuild = false

	// 2–3. Single-threaded USSR warmup, then freeze: from here on the
	// region is shared read-only and worker Interns fall back to their
	// private heaps.
	warmTree(qc, root)
	wqcs := forkCtx(qc, qc.Workers)
	if qc.Store.U != nil {
		qc.Store.U.Freeze()
	}

	if tpl.pt.Bits() > 0 {
		runPartitionWiseAgg(qc, tpl, sp, wqcs)
	} else {
		runMergeAgg(qc, tpl, sp, wqcs)
	}

	// Serial tail: the plan above the frontier runs exactly as before;
	// the frontier's Open is short-circuited onto the built table.
	tpl.driverOpened = true
	root.Open(qc)
	return materialize(qc, root)
}

// runMergeAgg is the classic parallel build: each worker drives a full
// clone of the frontier over the shared affinity morsel queue (opening a
// HashAgg drains its child, so Open alone builds the worker's partial
// table), then the per-worker tables fold into the template serially.
func runMergeAgg(qc *QCtx, tpl *HashAgg, sp spine, wqcs []*QCtx) {
	n := len(wqcs)
	morsels := sp.scan.Table.MorselsFor(n)
	clones := make([]*HashAgg, n)
	for i := range clones {
		clones[i] = clonePipeline(tpl, morsels, i).(*HashAgg)
	}
	spawn(n, func(i int) { clones[i].Open(wqcs[i]) })
	joinCtx(qc, wqcs)
	for _, c := range clones {
		mergePartial(tpl, c)
	}
}

// mergePartial re-aggregates every group of a worker's partial table into
// the template's table: group keys are loaded back from the partial
// records (string keys resolve across worker heaps through the shared
// shard table), located-or-inserted in the template, and the aggregate
// states combined by agg.Merge — including the carries of optimistically
// split aggregates, whose hot/cold exception handling is the reason this
// is aggregate-kind-specific rather than a byte copy.
func mergePartial(dst, src *HashAgg) {
	n := len(src.order)
	if n == 0 {
		return
	}
	keyVecs := make([]*vec.Vector, len(dst.Keys))
	for ci := range keyVecs {
		keyVecs[ci] = vec.New(dst.meta[ci].Type, vec.Size)
	}
	hashes := make([]uint64, vec.Size)
	recs := make([]int32, vec.Size)
	rows := make([]int32, vec.Size)
	srcRecs := make([][]int32, src.pt.NParts())
	srcRows := make([][]int32, src.pt.NParts())
	for base := 0; base < n; base += vec.Size {
		cnt := n - base
		if cnt > vec.Size {
			cnt = vec.Size
		}
		// Walk the worker's groups in ITS insertion order (src.order), so
		// the template's order log — and with it the final emission order
		// — is independent of how either side was partitioned.
		chunk := src.order[base : base+cnt]
		for pi := range srcRecs {
			srcRecs[pi] = srcRecs[pi][:0]
			srcRows[pi] = srcRows[pi][:0]
		}
		for i, grec := range chunk {
			pi, local := src.pt.DecodeRec(grec)
			srcRecs[pi] = append(srcRecs[pi], local)
			srcRows[pi] = append(srcRows[pi], int32(i))
		}
		for i := 0; i < cnt; i++ {
			rows[i] = int32(i)
		}
		rr := rows[:cnt]
		// Keys come back NULL-coded exactly as stored, so they feed the
		// template's Prepare without re-remapping.
		for ci := range keyVecs {
			for pi := range srcRecs {
				if len(srcRecs[pi]) == 0 {
					continue
				}
				src.pt.Part(pi).LoadKey(ci, srcRecs[pi], keyVecs[ci], srcRows[pi])
			}
		}
		p := dst.schema.Prepare(keyVecs, rr)
		dst.schema.Hash(p, rr, hashes)
		// Worker and template tables may use different radix widths, so
		// the rows are re-routed against the template's partitions.
		for dpi := range dst.scratch.partLen {
			dst.scratch.partLen[dpi] = int32(dst.pt.Part(dpi).Len())
		}
		groups := dst.pt.PartitionRows(hashes, rr)
		for dpi, g := range groups {
			if len(g) == 0 {
				continue
			}
			dt := dst.pt.Part(dpi)
			_, newRecs := dt.FindOrInsert(p, hashes, g, recs)
			dst.ag.Init(dt, newRecs)
		}
		for i, grec := range chunk {
			spi, slocal := src.pt.DecodeRec(grec)
			dpi := dst.pt.PartOf(hashes[i])
			dst.ag.Merge(dst.pt.Part(int(dpi)), recs[i], src.pt.Part(int(spi)), slocal)
			if rec := recs[i]; rec >= dst.scratch.partLen[dpi] {
				dst.order = append(dst.order, dst.pt.EncodeRec(dpi, rec))
				dst.scratch.partLen[dpi] = rec + 1
			}
		}
	}
}

// runParallelPipeline is the no-frontier case: contiguous block ranges per
// worker, full per-worker pipelines, results concatenated in worker order
// (which is serial row order).
func runParallelPipeline(qc *QCtx, root Op, sp spine) *Result {
	// Build all join tables once, serially, with normal USSR priority.
	root.Open(qc)

	warmTree(qc, root)
	wqcs := forkCtx(qc, qc.Workers)
	if qc.Store.U != nil {
		qc.Store.U.Freeze()
	}

	blocks := 0
	if len(sp.scan.Table.Cols) > 0 {
		blocks = sp.scan.Table.Cols[0].Blocks()
	}
	n := len(wqcs)
	results := make([]*Result, n)
	spawn(n, func(i int) {
		lo, hi := i*blocks/n, (i+1)*blocks/n
		clone := clonePipeline(root, storage.NewMorselQueueRange(lo, hi), i)
		clone.Open(wqcs[i])
		results[i] = materialize(wqcs[i], clone)
	})
	joinCtx(qc, wqcs)

	res := &Result{}
	for _, m := range root.Meta() {
		res.Names = append(res.Names, m.Name)
		res.Types = append(res.Types, m.Type)
	}
	for _, r := range results {
		res.Rows = append(res.Rows, r.Rows...)
	}
	return res
}
