package exec

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// buildFixture creates a fact table spanning several storage blocks (the
// catalogs of the tpch/bi test suites fit in one block, which would leave
// all but one worker idle) plus a small dimension table for join plans.
func buildFixture(rows int) (*storage.Table, *storage.Table) {
	g := storage.NewColumn("g", vec.I32, false)
	s := storage.NewColumn("s", vec.Str, false)
	v := storage.NewColumn("v", vec.I64, false)
	d := storage.NewColumn("d", vec.I32, false)
	for i := 0; i < rows; i++ {
		g.AppendInt(int64(i*2654435761) % 1000)
		s.AppendString(fmt.Sprintf("tag-%04d", (i*40503)%2000))
		v.AppendInt(int64(i%10000) - 5000)
		d.AppendInt(int64(i % 100))
	}
	fact := storage.NewTable("fact", g, s, v, d)
	fact.Seal()

	dk := storage.NewColumn("dk", vec.I32, false)
	dn := storage.NewColumn("dn", vec.Str, false)
	for i := 0; i < 100; i++ {
		dk.AppendInt(int64(i))
		dn.AppendString(fmt.Sprintf("dim-%02d", i))
	}
	dim := storage.NewTable("dim", dk, dn)
	dim.Seal()
	return fact, dim
}

// sortedRows is shared with exec_test.go.

func renderedRows(r *Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		var parts []string
		for _, c := range row {
			parts = append(parts, c.String())
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// aggPlan is a frontier-shaped plan: scan → filter → hash aggregation with
// an int and a string grouping key and every merge-relevant aggregate kind
// (split and full sums, counts, int and string min/max, avg).
func aggPlan(fact *storage.Table) Op {
	sc := NewScan(fact, "g", "s", "v")
	m := sc.Meta()
	fl := NewFilter(sc, Gt(Col(m, "v"), Int(-4500)))
	fm := fl.Meta()
	return NewHashAgg(fl,
		[]string{"g", "s"},
		[]*Expr{Col(fm, "g"), Col(fm, "s")},
		[]AggExpr{
			{Func: agg.Sum, Arg: Col(fm, "v"), Name: "sum_v"},
			{Func: agg.CountStar, Name: "n"},
			{Func: agg.Min, Arg: Col(fm, "v"), Name: "min_v"},
			{Func: agg.Max, Arg: Col(fm, "v"), Name: "max_v"},
			{Func: agg.Min, Arg: Col(fm, "s"), Name: "min_s"},
			{Func: Avg, Arg: Col(fm, "v"), Name: "avg_v"},
		})
}

// joinAggPlan puts a join probe below the aggregation frontier, so the
// build side is shared read-only across workers.
func joinAggPlan(fact, dim *storage.Table) Op {
	sc := NewScan(fact, "d", "v")
	dsc := NewScan(dim, "dk", "dn")
	j := NewHashJoin(Inner, sc, dsc, []string{"d"}, []string{"dk"}, []string{"dn"})
	jm := j.Meta()
	return NewHashAgg(j,
		[]string{"dn"},
		[]*Expr{Col(jm, "dn")},
		[]AggExpr{
			{Func: agg.Sum, Arg: Col(jm, "v"), Name: "sum_v"},
			{Func: agg.Count, Arg: Col(jm, "v"), Name: "n"},
		})
}

func flagSets() []core.Flags {
	return []core.Flags{core.Vanilla(), core.All(), {Compress: true}, {Split: true, UseUSSR: true}}
}

func TestParallelAggMatchesSerial(t *testing.T) {
	fact, _ := buildFixture(300_000)
	for fi, flags := range flagSets() {
		serial := sortedRows(Run(NewQCtx(flags), aggPlan(fact)))
		for _, workers := range []int{2, 3, 4, 8} {
			t.Run(fmt.Sprintf("flags%d/w%d", fi, workers), func(t *testing.T) {
				qc := NewQCtx(flags)
				qc.Workers = workers
				got := sortedRows(Run(qc, aggPlan(fact)))
				if len(got) != len(serial) {
					t.Fatalf("%d rows, serial %d", len(got), len(serial))
				}
				for i := range got {
					if got[i] != serial[i] {
						t.Fatalf("row %d:\n parallel %s\n serial   %s", i, got[i], serial[i])
					}
				}
				if fp := qc.WorkerFootprints(); len(fp) != workers {
					t.Fatalf("worker footprints %v, want %d entries", fp, workers)
				} else {
					nonEmpty := 0
					for _, b := range fp {
						if b > 0 {
							nonEmpty++
						}
					}
					if nonEmpty < 2 {
						t.Errorf("only %d workers built tables; fixture should span blocks", nonEmpty)
					}
				}
			})
		}
	}
}

func TestParallelJoinAggMatchesSerial(t *testing.T) {
	fact, dim := buildFixture(200_000)
	for fi, flags := range flagSets() {
		serial := sortedRows(Run(NewQCtx(flags), joinAggPlan(fact, dim)))
		t.Run(fmt.Sprintf("flags%d", fi), func(t *testing.T) {
			qc := NewQCtx(flags)
			qc.Workers = 4
			got := sortedRows(Run(qc, joinAggPlan(fact, dim)))
			if len(got) != len(serial) {
				t.Fatalf("%d rows, serial %d", len(got), len(serial))
			}
			for i := range got {
				if got[i] != serial[i] {
					t.Fatalf("row %d:\n parallel %s\n serial   %s", i, got[i], serial[i])
				}
			}
		})
	}
}

// TestParallelPipelinePreservesOrder covers the no-frontier case: a pure
// scan→filter→project pipeline must come back in exact serial row order,
// because workers own contiguous block ranges.
func TestParallelPipelinePreservesOrder(t *testing.T) {
	fact, _ := buildFixture(300_000)
	plan := func() Op {
		sc := NewScan(fact, "g", "s", "v")
		m := sc.Meta()
		fl := NewFilter(sc, Lt(Col(m, "v"), Int(-4000)))
		fm := fl.Meta()
		return NewProject(fl, []string{"g2", "s"}, []*Expr{
			Mul(Col(fm, "g"), Int(3)),
			Col(fm, "s"),
		})
	}
	for _, flags := range []core.Flags{core.Vanilla(), core.All()} {
		serial := renderedRows(Run(NewQCtx(flags), plan()))
		for _, workers := range []int{2, 5} {
			qc := NewQCtx(flags)
			qc.Workers = workers
			got := renderedRows(Run(qc, plan()))
			if len(got) != len(serial) {
				t.Fatalf("w%d: %d rows, serial %d", workers, len(got), len(serial))
			}
			for i := range got {
				if got[i] != serial[i] {
					t.Fatalf("w%d row %d: %s vs serial %s", workers, i, got[i], serial[i])
				}
			}
		}
	}
}

// TestParallelRunReuseContext reuses one query context for several
// parallel runs, the benchmark-loop pattern: the shard table must grow,
// not reset, so references from earlier runs keep resolving.
func TestParallelRunReuseContext(t *testing.T) {
	fact, _ := buildFixture(150_000)
	qc := NewQCtx(core.All())
	qc.Workers = 4
	var first []string
	for it := 0; it < 3; it++ {
		got := sortedRows(Run(qc, aggPlan(fact)))
		if it == 0 {
			first = got
			continue
		}
		if len(got) != len(first) {
			t.Fatalf("iteration %d: %d rows vs %d", it, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("iteration %d row %d: %s vs %s", it, i, got[i], first[i])
			}
		}
	}
}

func TestStatsMerge(t *testing.T) {
	a, b := NewStats(), NewStats()
	a.Add(StatScan, 2*time.Second)
	a.Add(StatHash, time.Second)
	b.Add(StatScan, 3*time.Second)
	b.Add(StatAggregate, 4*time.Second)
	a.Merge(b)
	if got := a.Get(StatScan); got != 5*time.Second {
		t.Errorf("scan bucket %v", got)
	}
	if got := a.Get(StatHash); got != time.Second {
		t.Errorf("hash bucket %v", got)
	}
	if got := a.Get(StatAggregate); got != 4*time.Second {
		t.Errorf("aggregate bucket %v", got)
	}
	if got := b.Get(StatScan); got != 3*time.Second {
		t.Errorf("merge must not change the source: %v", got)
	}
	if got := a.Total(); got != 10*time.Second {
		t.Errorf("total %v", got)
	}
	var nilStats *Stats
	nilStats.Merge(a) // must not panic
	a.Merge(nil)
}
