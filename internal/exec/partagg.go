package exec

import (
	"time"

	"ocht/internal/core"
	"ocht/internal/i128"
	"ocht/internal/vec"
)

// Partition-wise parallel aggregation (DESIGN.md, "Partition-wise
// parallel aggregation").
//
// The classic parallel-agg path has every worker build a whole private
// group table and re-aggregates them serially through agg.Merge — the
// merge phase grows with the total group count and throttles scaling.
// This file is the owner-computes alternative the radix-partitioned
// tables (PR 5) make possible:
//
//	Phase 1 (scan + spill):   every worker drains its morsels through a
//	    private pipeline clone, evaluates/NULL-remaps keys and aggregate
//	    arguments, hashes once, and routes each row by the top hash bits
//	    into per-(worker, partition) columnar spill buffers. No hash
//	    table is touched.
//	Phase 2 (owner build):    each radix partition is assigned whole to
//	    one worker. The owner replays every worker's spill for its
//	    partitions — reusing the phase-1 hashes — into a partition table
//	    built with the owner's own key schema, so find-or-insert, string
//	    compares and aggregate updates run with zero cross-worker
//	    synchronization (the ocht_debug owner assertion pins this).
//	Phase 3 (concatenate):    the template adopts the built partitions
//	    (core.NewPartTableFromParts) and its emission order becomes a
//	    plain partition-major concatenation. No agg.Merge re-aggregation
//	    happens anywhere on this path.
//
// Emission order is scheduling-dependent (as it already is for the merge
// path, whose morsel-to-worker assignment is dynamic); parallel results
// are order-normalized by their consumers.

// aggSpill is one worker's phase-1 output: per radix partition, the
// columnar key/argument values, NULL masks and key hashes of every row
// the worker scanned into that partition.
type aggSpill struct {
	parts []spillPart
}

// spillPart accumulates the rows of one (worker, partition) pair.
type spillPart struct {
	rows   int
	hashes []uint64
	keys   []spillCol
	args   []spillCol // indexed by spec; empty for arg-less specs
	nulls  [][]bool   // indexed by spec; nil unless the arg is nullable
}

// spillCol is a typed columnar append buffer mirroring one plain vector.
type spillCol struct {
	typ  vec.Type
	i64  []int64 // Bool and I8..I64, widened
	f64  []float64
	str  []vec.StrRef
	i128 []i128.Int
}

// appendRows copies the active rows of v (a plain vector, as the
// aggregation boundary produces) into the buffer.
//
//ocht:hot
func (c *spillCol) appendRows(v *vec.Vector, rows []int32) {
	c.typ = v.Typ
	switch v.Typ {
	case vec.F64:
		for _, r := range rows {
			c.f64 = append(c.f64, v.F64[r])
		}
	case vec.Str:
		for _, r := range rows {
			c.str = append(c.str, v.Str[r])
		}
	case vec.I128:
		for _, r := range rows {
			c.i128 = append(c.i128, v.I128[r])
		}
	default:
		for _, r := range rows {
			c.i64 = append(c.i64, v.Int64At(int(r)))
		}
	}
}

// fill materializes buffer positions [base, base+n) into dst[0..n).
//
//ocht:hot
func (c *spillCol) fill(dst *vec.Vector, base, n int) {
	switch c.typ {
	case vec.F64:
		copy(dst.F64, c.f64[base:base+n])
	case vec.Str:
		copy(dst.Str, c.str[base:base+n])
	case vec.I128:
		copy(dst.I128, c.i128[base:base+n])
	default:
		for i := 0; i < n; i++ {
			dst.SetInt64(i, c.i64[base+i])
		}
	}
}

// newAggSpill sizes a worker's spill set for the template's shape.
func newAggSpill(h *HashAgg) *aggSpill {
	sp := &aggSpill{parts: make([]spillPart, h.pt.NParts())}
	for pi := range sp.parts {
		p := &sp.parts[pi]
		p.keys = make([]spillCol, len(h.Keys))
		p.args = make([]spillCol, len(h.specs))
		p.nulls = make([][]bool, len(h.specs))
	}
	return sp
}

// appendBatch spills one batch's routed rows into partition pi.
func (p *spillPart) appendBatch(h *HashAgg, g []int32) {
	for ci := range h.scratch.keys {
		p.keys[ci].appendRows(h.scratch.keys[ci], g)
	}
	for si := range h.specs {
		arg := h.scratch.args[si]
		if arg == nil {
			continue
		}
		p.args[si].appendRows(arg, g)
		if e := h.argOf[si]; e != nil && e.Nullable() {
			nulls := p.nulls[si]
			if arg.Nulls != nil {
				for _, r := range g {
					nulls = append(nulls, arg.Nulls[r])
				}
			} else {
				for range g {
					nulls = append(nulls, false)
				}
			}
			p.nulls[si] = nulls
		}
	}
	for _, r := range g {
		p.hashes = append(p.hashes, h.scratch.hashes[r])
	}
	p.rows += len(g)
}

// spillBuild is the phase-1 worker loop: build()'s evaluation front end
// with the table writes replaced by spill appends. The operator must have
// been opened with skipBuild (schema, aggregator and routing table set
// up, child open, no rows drained).
func (h *HashAgg) spillBuild(qc *QCtx) *aggSpill {
	sp := newAggSpill(h)
	total := int64(0)
	for {
		qc.checkCancel()
		b := h.Child.Next(qc)
		if b == nil {
			break
		}
		rows := b.Rows()
		phys := physOf(b)
		if phys > len(h.scratch.hashes) {
			h.scratch.hashes = make([]uint64, phys)
			h.scratch.recs = make([]int32, phys)
		}
		for i, k := range h.Keys {
			v := k.Eval(qc, b)
			h.scratch.keys[i] = h.remapKey(i, k, v, rows, phys)
		}
		for si := range h.specs {
			if e := h.argOf[si]; e != nil {
				h.scratch.args[si] = ensurePlain(e.Eval(qc, b), rows, &h.argBufs[si], phys)
			} else {
				h.scratch.args[si] = nil
			}
		}
		p := h.schema.Prepare(h.scratch.keys, rows)
		start := time.Now()
		h.schema.Hash(p, rows, h.scratch.hashes)
		qc.Stats.Add(StatHash, time.Since(start))

		groups := h.pt.PartitionRows(h.scratch.hashes, rows)
		for pi, g := range groups {
			if len(g) == 0 {
				continue
			}
			sp.parts[pi].appendBatch(h, g)
		}
		total += int64(len(rows))
	}
	qc.Stats.Count(CtrAggRowsSpilled, total)
	return sp
}

// partReplay is the per-owner phase-2 scratch: reusable key/argument
// vectors, dense row indices and hash/record buffers the spilled chunks
// are replayed through.
type partReplay struct {
	keys   []*vec.Vector
	args   []*vec.Vector
	rows   []int32
	subset []int32
	hashes []uint64
	recs   []int32
}

func newPartReplay(h *HashAgg) *partReplay {
	rs := &partReplay{
		keys:   make([]*vec.Vector, len(h.Keys)),
		args:   make([]*vec.Vector, len(h.specs)),
		rows:   make([]int32, vec.Size),
		subset: make([]int32, 0, vec.Size),
		hashes: make([]uint64, vec.Size),
		recs:   make([]int32, vec.Size),
	}
	for i := range rs.rows {
		rs.rows[i] = int32(i)
	}
	return rs
}

func (rs *partReplay) vecFor(slot []*vec.Vector, i int, typ vec.Type) *vec.Vector {
	if v := slot[i]; v != nil && v.Typ == typ {
		return v
	}
	slot[i] = vec.New(typ, vec.Size)
	return slot[i]
}

// buildPartition replays every worker's spill for partition pi into a
// fresh table built against h's (the owner clone's) key schema, so all
// hashing, matching and string accounting stays on the owner's store.
// The phase-1 hashes are reused — keys are re-packed for the insert path
// but never re-hashed.
func (h *HashAgg) buildPartition(qc *QCtx, pi, hint int, spills []*aggSpill, rs *partReplay) *core.Table {
	t := core.NewTable(h.schema, h.ag.HotBytes, h.ag.ColdBytes, hint)
	qc.register(t)
	for _, sp := range spills {
		p := &sp.parts[pi]
		for base := 0; base < p.rows; base += vec.Size {
			qc.checkCancel()
			cnt := p.rows - base
			if cnt > vec.Size {
				cnt = vec.Size
			}
			rr := rs.rows[:cnt]
			for ci := range p.keys {
				kv := rs.vecFor(rs.keys, ci, p.keys[ci].typ)
				p.keys[ci].fill(kv, base, cnt)
				rs.keys[ci] = kv
			}
			copy(rs.hashes[:cnt], p.hashes[base:base+cnt])

			prep := h.schema.Prepare(rs.keys, rr)
			start := time.Now()
			_, newRecs := t.FindOrInsert(prep, rs.hashes, rr, rs.recs)
			qc.Stats.Add(StatLookup, time.Since(start))
			h.ag.Init(t, newRecs)

			for si := range h.specs {
				var arg *vec.Vector
				updateRows := rr
				if h.argOf[si] != nil {
					arg = rs.vecFor(rs.args, si, p.args[si].typ)
					p.args[si].fill(arg, base, cnt)
					if nulls := p.nulls[si]; nulls != nil {
						// SQL semantics: NULL inputs do not contribute.
						rs.subset = rs.subset[:0]
						for i := 0; i < cnt; i++ {
							if !nulls[base+i] {
								rs.subset = append(rs.subset, int32(i))
							}
						}
						updateRows = rs.subset
					}
				}
				start = time.Now()
				h.ag.Update(t, si, rs.recs, updateRows, arg)
				qc.Stats.Add(StatAggregate, time.Since(start))
			}
		}
	}
	return t
}

// runPartitionWiseAgg is the owner-computes driver, entered by
// runParallelAgg when the template table is radix-partitioned. The
// template tpl has been opened with skipBuild and the USSR is frozen.
func runPartitionWiseAgg(qc *QCtx, tpl *HashAgg, sp spine, wqcs []*QCtx) {
	n := len(wqcs)
	bits := tpl.pt.Bits()
	nparts := tpl.pt.NParts()
	morsels := sp.scan.Table.MorselsFor(n)

	clones := make([]*HashAgg, n)
	for i := range clones {
		c := clonePipeline(tpl, morsels, i).(*HashAgg)
		// Clones must route rows exactly like the template: pin the radix
		// width (an adaptive clone could re-derive a different one).
		c.PartitionBits = bits
		clones[i] = c
	}

	// Phase 1: scan + spill. skipBuild sets up each clone's schema,
	// aggregator and routing table without draining the child.
	spills := make([]*aggSpill, n)
	spawn(n, func(i int) {
		c := clones[i]
		c.skipBuild = true
		c.Open(wqcs[i])
		c.skipBuild = false
		spills[i] = c.spillBuild(wqcs[i])
	})

	// Phase 2: owner-computes. Partition pi belongs to worker
	// pi*n/nparts; owners build their partitions one at a time so each
	// table stays cache-resident through its whole build.
	owners := make([]int32, nparts)
	for pi := range owners {
		owners[pi] = int32(pi * n / nparts)
	}
	claims := newPartOwnerAssert(nparts)
	hint := int(tpl.MaxRows())
	if hint > 1<<12 {
		hint = 1 << 12
	}
	hint >>= uint(bits)
	parts := make([]*core.Table, nparts)
	spawn(n, func(w int) {
		rs := newPartReplay(clones[w])
		for pi := 0; pi < nparts; pi++ {
			if owners[pi] != int32(w) {
				continue
			}
			debugAssertPartOwner(claims, pi, w)
			parts[pi] = clones[w].buildPartition(wqcs[w], pi, hint, spills, rs)
		}
	})
	joinCtx(qc, wqcs)

	// Phase 3: the template adopts the partitions; emission order is the
	// partition-major concatenation of their (insertion-ordered) records.
	newPT := core.NewPartTableFromParts(tpl.schema, parts)
	old := map[*core.Table]bool{}
	for _, t := range tpl.pt.Parts() {
		old[t] = true
	}
	kept := qc.tables[:0]
	for _, t := range qc.tables {
		if !old[t] {
			kept = append(kept, t)
		}
	}
	qc.tables = append(kept, parts...)
	tpl.pt = newPT
	tpl.order = tpl.order[:0]
	for pi := 0; pi < nparts; pi++ {
		for local := int32(0); local < int32(newPT.Part(pi).Len()); local++ {
			tpl.order = append(tpl.order, newPT.EncodeRec(uint32(pi), local))
		}
	}
	qc.Stats.Count(CtrPartitionWiseAggs, 1)
}
