package exec

import (
	"fmt"
	"testing"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// nullableFixture spans several blocks and exercises every spill column
// shape: a nullable int key, a nullable string key and a nullable int
// argument.
func nullableFixture(rows int) *storage.Table {
	g := storage.NewColumn("g", vec.I32, true)
	s := storage.NewColumn("s", vec.Str, true)
	v := storage.NewColumn("v", vec.I64, true)
	for i := 0; i < rows; i++ {
		if i%11 == 3 {
			g.AppendNull()
		} else {
			g.AppendInt(int64(i*2654435761) % 500)
		}
		if i%13 == 5 {
			s.AppendNull()
		} else {
			s.AppendString(fmt.Sprintf("tag-%04d", (i*40503)%1500))
		}
		if i%7 == 2 {
			v.AppendNull()
		} else {
			v.AppendInt(int64(i%9000) - 4500)
		}
	}
	tab := storage.NewTable("nfact", g, s, v)
	tab.Seal()
	return tab
}

func nullableAggPlan(tab *storage.Table, bits int) *HashAgg {
	sc := NewScan(tab, "g", "s", "v")
	m := sc.Meta()
	h := NewHashAgg(sc,
		[]string{"g", "s"},
		[]*Expr{Col(m, "g"), Col(m, "s")},
		[]AggExpr{
			{Func: agg.Sum, Arg: Col(m, "v"), Name: "sum_v"},
			{Func: agg.Count, Arg: Col(m, "v"), Name: "n_v"},
			{Func: agg.CountStar, Name: "n"},
			{Func: agg.Min, Arg: Col(m, "v"), Name: "min_v"},
			{Func: agg.Max, Arg: Col(m, "s"), Name: "max_s"},
			{Func: Avg, Arg: Col(m, "v"), Name: "avg_v"},
		})
	h.PartitionBits = bits
	return h
}

// TestPartitionWiseAggMatchesSerial pins the owner-computes path against
// serial execution across forced radix widths, worker counts and flag
// sets, on a fixture with NULLs in both keys and arguments.
func TestPartitionWiseAggMatchesSerial(t *testing.T) {
	tab := nullableFixture(200_000)
	for fi, flags := range flagSets() {
		serial := sortedRows(Run(NewQCtx(flags), nullableAggPlan(tab, DefaultPartitionBits)))
		for _, bits := range []int{1, 3, 6} {
			for _, workers := range []int{2, 4, 8} {
				t.Run(fmt.Sprintf("flags%d/bits%d/w%d", fi, bits, workers), func(t *testing.T) {
					qc := NewQCtx(flags)
					qc.Workers = workers
					got := sortedRows(Run(qc, nullableAggPlan(tab, bits)))
					if qc.Stats.Counter(CtrPartitionWiseAggs) != 1 {
						t.Fatalf("forced bits=%d must take the partition-wise path", bits)
					}
					if qc.Stats.Counter(CtrAggRowsSpilled) != int64(tab.Rows()) {
						t.Fatalf("spilled %d rows, want %d",
							qc.Stats.Counter(CtrAggRowsSpilled), tab.Rows())
					}
					if len(got) != len(serial) {
						t.Fatalf("%d rows, serial %d", len(got), len(serial))
					}
					for i := range got {
						if got[i] != serial[i] {
							t.Fatalf("row %d:\n partition-wise %s\n serial         %s", i, got[i], serial[i])
						}
					}
				})
			}
		}
	}
}

// TestPartitionWiseGate pins the path dispatch: forced monolithic tables
// merge through agg.Merge, forced radix tables go owner-computes, and the
// adaptive choice falls back to the merge path below PartitionMinGroups.
func TestPartitionWiseGate(t *testing.T) {
	fact, _ := buildFixture(150_000)
	run := func(bits, workers int) (*QCtx, []string) {
		sc := NewScan(fact, "d", "v")
		m := sc.Meta()
		h := NewHashAgg(sc, []string{"d"}, []*Expr{Col(m, "d")}, []AggExpr{
			{Func: agg.Sum, Arg: Col(m, "v"), Name: "sum_v"},
		})
		h.PartitionBits = bits
		qc := NewQCtx(core.All())
		qc.Workers = workers
		return qc, sortedRows(Run(qc, h))
	}

	_, serial := run(DefaultPartitionBits, 1)

	// d has 100 distinct values: far below PartitionMinGroups, so the
	// adaptive parallel plan must keep the merge path.
	qc, got := run(DefaultPartitionBits, 4)
	if qc.Stats.Counter(CtrPartitionWiseAggs) != 0 {
		t.Fatal("low-cardinality adaptive plan must not partition")
	}
	for i := range got {
		if got[i] != serial[i] {
			t.Fatalf("merge path row %d: %s vs %s", i, got[i], serial[i])
		}
	}

	// Forcing a radix width flips the same plan onto the owner-computes
	// path.
	qc, got = run(4, 4)
	if qc.Stats.Counter(CtrPartitionWiseAggs) != 1 {
		t.Fatal("forced bits=4 must take the partition-wise path")
	}
	for i := range got {
		if got[i] != serial[i] {
			t.Fatalf("partition-wise row %d: %s vs %s", i, got[i], serial[i])
		}
	}

	// Dropping the floor lets the adaptive chooser partition even this
	// aggregation under parallel workers.
	defer func(old int64) { PartitionMinGroups = old }(PartitionMinGroups)
	PartitionMinGroups = 0
	qc, got = run(DefaultPartitionBits, 4)
	if qc.Stats.Counter(CtrPartitionWiseAggs) != 1 {
		t.Fatal("with no floor the adaptive parallel plan must partition")
	}
	for i := range got {
		if got[i] != serial[i] {
			t.Fatalf("floorless row %d: %s vs %s", i, got[i], serial[i])
		}
	}
}

// TestPartitionWiseJoinAgg runs the owner-computes path with a shared
// read-only join build side below the spill frontier.
func TestPartitionWiseJoinAgg(t *testing.T) {
	fact, dim := buildFixture(150_000)
	plan := func() Op {
		h := joinAggPlan(fact, dim).(*HashAgg)
		h.PartitionBits = 3
		return h
	}
	for fi, flags := range flagSets() {
		serial := sortedRows(Run(NewQCtx(flags), plan()))
		t.Run(fmt.Sprintf("flags%d", fi), func(t *testing.T) {
			qc := NewQCtx(flags)
			qc.Workers = 4
			got := sortedRows(Run(qc, plan()))
			if qc.Stats.Counter(CtrPartitionWiseAggs) != 1 {
				t.Fatal("forced bits must take the partition-wise path")
			}
			if len(got) != len(serial) {
				t.Fatalf("%d rows, serial %d", len(got), len(serial))
			}
			for i := range got {
				if got[i] != serial[i] {
					t.Fatalf("row %d:\n partition-wise %s\n serial         %s", i, got[i], serial[i])
				}
			}
		})
	}
}

// TestPartitionWiseFootprint checks the installed partitions are accounted
// to the query context: after a partition-wise run the frontier's table
// bytes must appear in HashTableBytes.
func TestPartitionWiseFootprint(t *testing.T) {
	fact, _ := buildFixture(150_000)
	h := aggPlan(fact).(*HashAgg)
	h.PartitionBits = 3
	qc := NewQCtx(core.All())
	qc.Workers = 2
	Run(qc, h)
	if qc.Stats.Counter(CtrPartitionWiseAggs) != 1 {
		t.Fatal("expected the partition-wise path")
	}
	if got, want := qc.HashTableBytes(), h.Tables(); true {
		sum := 0
		for _, tab := range want {
			sum += tab.MemoryBytes()
		}
		if got < sum || sum == 0 {
			t.Fatalf("HashTableBytes %d, frontier partitions hold %d", got, sum)
		}
	}
}
