//go:build !ocht_debug

package exec

// Release builds skip the partition-ownership bookkeeping entirely; see
// partassert_on.go for the checked twin.

func newPartOwnerAssert(n int) []int32 { return nil }

func debugAssertPartOwner(claims []int32, pi, w int) {}
