//go:build ocht_debug

package exec

import (
	"fmt"
	"sync/atomic"
)

// newPartOwnerAssert allocates the partition-claim table the ocht_debug
// build uses to pin the owner-computes contract: after the phase-1→phase-2
// handoff every partition is built by exactly one worker — its assigned
// owner — and never revisited.
func newPartOwnerAssert(n int) []int32 {
	claims := make([]int32, n)
	for i := range claims {
		claims[i] = -1
	}
	return claims
}

// debugAssertPartOwner atomically claims partition pi for worker w and
// panics when some worker already built it: a scheduling bug that would
// silently double-count every group in the partition.
func debugAssertPartOwner(claims []int32, pi, w int) {
	if !atomic.CompareAndSwapInt32(&claims[pi], -1, int32(w)) {
		panic(fmt.Sprintf("exec: partition %d built by worker %d but already claimed by worker %d",
			pi, w, atomic.LoadInt32(&claims[pi])))
	}
}
