//go:build ocht_debug

package exec

import (
	"sync"
	"testing"
)

// TestDebugAssertPartOwner pins the ocht_debug ownership contract: the
// first claim of a partition succeeds, any second claim — same or
// different worker — panics.
func TestDebugAssertPartOwner(t *testing.T) {
	claims := newPartOwnerAssert(4)
	debugAssertPartOwner(claims, 2, 1)
	for _, w := range []int{0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("double claim of partition 2 by worker %d must panic", w)
				}
			}()
			debugAssertPartOwner(claims, 2, w)
		}()
	}
	// Other partitions stay claimable.
	debugAssertPartOwner(claims, 0, 0)
	debugAssertPartOwner(claims, 3, 0)
}

// TestDebugAssertPartOwnerConcurrent races many claimants at one
// partition: exactly one wins, all others panic.
func TestDebugAssertPartOwnerConcurrent(t *testing.T) {
	claims := newPartOwnerAssert(1)
	const n = 8
	var wg sync.WaitGroup
	panics := make([]bool, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() { panics[w] = recover() != nil }()
			debugAssertPartOwner(claims, 0, w)
		}(w)
	}
	wg.Wait()
	losers := 0
	for _, p := range panics {
		if p {
			losers++
		}
	}
	if losers != n-1 {
		t.Fatalf("%d of %d claimants panicked, want %d", losers, n, n-1)
	}
}
