package exec

import (
	"fmt"
	"testing"

	"ocht/internal/core"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// partitionFixture builds a multi-block probe table with a nullable join
// key (every 13th row NULL) and a build-side dimension big enough to pass
// the compression gate. Half the probe keys have no build match, so the
// selective kinds exercise the Bloom pre-pass.
func partitionFixture(probeRows, buildRows int) (*storage.Table, *storage.Table) {
	fk := storage.NewColumn("fk", vec.I32, true)
	v := storage.NewColumn("v", vec.I64, false)
	for i := 0; i < probeRows; i++ {
		if i%13 == 0 {
			fk.AppendNull()
		} else {
			fk.AppendInt(int64(i*2654435761) % int64(2*buildRows))
		}
		v.AppendInt(int64(i%1000) - 500)
	}
	fact := storage.NewTable("pfact", fk, v)
	fact.Seal()

	bk := storage.NewColumn("bk", vec.I32, false)
	bn := storage.NewColumn("bn", vec.Str, false)
	for i := 0; i < buildRows; i++ {
		bk.AppendInt(int64(i))
		bn.AppendString(fmt.Sprintf("d-%05d", i))
	}
	dim := storage.NewTable("pdim", bk, bn)
	dim.Seal()
	return fact, dim
}

func partitionJoinPlan(fact, dim *storage.Table, kind JoinKind, bits, bloom int) Op {
	sc := NewScan(fact, "fk", "v")
	dsc := NewScan(dim, "bk", "bn")
	var payload []string
	if kind == Inner || kind == LeftOuter {
		payload = []string{"bn"}
	}
	j := NewHashJoin(kind, sc, dsc, []string{"fk"}, []string{"bk"}, payload)
	j.PartitionBits = bits
	j.BloomMode = bloom
	return j
}

// TestPartitionedJoinMatchesMonolithic drives every join kind over NULL
// probe keys for each radix width and worker count, against the serial
// monolithic Bloom-free oracle: the match multiset must never change.
func TestPartitionedJoinMatchesMonolithic(t *testing.T) {
	fact, dim := partitionFixture(150_000, 4000)
	kinds := []struct {
		name string
		kind JoinKind
	}{
		{"inner", Inner}, {"semi", Semi}, {"anti", Anti}, {"leftouter", LeftOuter},
	}
	for fi, flags := range []core.Flags{core.Vanilla(), core.All()} {
		for _, k := range kinds {
			oracle := sortedRows(Run(NewQCtx(flags),
				partitionJoinPlan(fact, dim, k.kind, 0, 0)))
			if len(oracle) == 0 {
				t.Fatalf("%s oracle found no rows", k.name)
			}
			for _, bits := range []int{0, 3, 6, -1} {
				for _, workers := range []int{1, 2, 4, 8} {
					t.Run(fmt.Sprintf("flags%d/%s/bits%d/w%d", fi, k.name, bits, workers), func(t *testing.T) {
						qc := NewQCtx(flags)
						qc.Workers = workers
						got := sortedRows(Run(qc,
							partitionJoinPlan(fact, dim, k.kind, bits, 0)))
						if len(got) != len(oracle) {
							t.Fatalf("%d rows, oracle %d", len(got), len(oracle))
						}
						for i := range got {
							if got[i] != oracle[i] {
								t.Fatalf("row %d:\n got    %s\n oracle %s", i, got[i], oracle[i])
							}
						}
					})
				}
			}
		}
	}
}

// TestPartitionedAggMatchesMonolithic pins the aggregation path the same
// way: explicit radix widths at several worker counts must reproduce the
// monolithic serial groups, including emission order (checked unsorted).
func TestPartitionedAggMatchesMonolithic(t *testing.T) {
	fact, _ := buildFixture(150_000)
	mkPlan := func(bits int) Op {
		p := aggPlan(fact).(*HashAgg)
		p.PartitionBits = bits
		return p
	}
	oracle := renderedRows(Run(NewQCtx(core.All()), mkPlan(0)))
	for _, bits := range []int{0, 3, 6, -1} {
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("bits%d/w%d", bits, workers), func(t *testing.T) {
				qc := NewQCtx(core.All())
				qc.Workers = workers
				var got []string
				if workers == 1 {
					// Serial runs must preserve the monolithic emission
					// order exactly; parallel merges only the multiset.
					got = renderedRows(Run(qc, mkPlan(bits)))
				} else {
					got = sortedRows(Run(qc, mkPlan(bits)))
				}
				want := oracle
				if workers > 1 {
					want = sortedRows(Run(NewQCtx(core.All()), mkPlan(0)))
				}
				if len(got) != len(want) {
					t.Fatalf("%d rows, oracle %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("row %d:\n got    %s\n oracle %s", i, got[i], want[i])
					}
				}
			})
		}
	}
}
