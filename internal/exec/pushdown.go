package exec

import (
	"math"

	"ocht/internal/vec"
)

// ZoneRange is a per-column value interval [Lo, Hi] implied by a
// conjunctive predicate. A scan skips any block whose zone map proves the
// column never intersects the interval (Section II-A: zone maps are kept
// out-of-band per block). Ranges are necessary, not sufficient: surviving
// blocks still run through the filter, so an over-wide range is only a
// missed optimization, never a wrong result.
type ZoneRange struct {
	Col    string
	Lo, Hi int64
}

// zoneRangesOf derives the zone ranges implied by predicate e over the
// given scan schema. Only top-level AND conjuncts of the shape
// <int column> <cmp> <int constant> (either operand order) contribute;
// everything else — OR branches, NE, string and float comparisons,
// computed expressions — is conservatively ignored.
func zoneRangesOf(e *Expr, schema []Meta) []ZoneRange {
	var out []ZoneRange
	collectZoneRanges(e, schema, &out)
	return out
}

func collectZoneRanges(e *Expr, schema []Meta, out *[]ZoneRange) {
	if e == nil {
		return
	}
	switch e.kind {
	case eAnd:
		collectZoneRanges(e.l, schema, out)
		collectZoneRanges(e.r, schema, out)
	case eCmp:
		col, c, op, ok := splitColConst(e)
		if !ok {
			return
		}
		m := schema[col]
		switch m.Type {
		case vec.I8, vec.I16, vec.I32, vec.I64:
		default:
			return
		}
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		switch op {
		case opEQ:
			lo, hi = c, c
		case opLT:
			if c == math.MinInt64 {
				return
			}
			hi = c - 1
		case opLE:
			hi = c
		case opGT:
			if c == math.MaxInt64 {
				return
			}
			lo = c + 1
		case opGE:
			lo = c
		default: // opNE prunes at most one value; not worth a range
			return
		}
		*out = append(*out, ZoneRange{Col: m.Name, Lo: lo, Hi: hi})
	}
}

// splitColConst decomposes a comparison into (column, constant, op) with
// the column on the left, mirroring the operator when the constant leads.
func splitColConst(e *Expr) (col int, c int64, op cmpOp, ok bool) {
	if e.l.kind == eCol && e.r.kind == eConstInt {
		return e.l.col, e.r.cInt, e.op, true
	}
	if e.l.kind == eConstInt && e.r.kind == eCol {
		switch e.op {
		case opLT:
			return e.r.col, e.l.cInt, opGT, true
		case opLE:
			return e.r.col, e.l.cInt, opGE, true
		case opGT:
			return e.r.col, e.l.cInt, opLT, true
		case opGE:
			return e.r.col, e.l.cInt, opLE, true
		default: // EQ and NE are symmetric
			return e.r.col, e.l.cInt, e.op, true
		}
	}
	return 0, 0, 0, false
}
