package exec

import (
	"testing"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// TestMultiBlockScan pushes a table across multiple storage blocks and
// checks that scans, filters and aggregations see every row exactly once,
// including the partial last block.
func TestMultiBlockScan(t *testing.T) {
	n := storage.BlockRows*2 + 777
	c := storage.NewColumn("v", vec.I64, false)
	s := storage.NewColumn("s", vec.Str, false)
	for i := 0; i < n; i++ {
		c.AppendInt(int64(i % 1000))
		s.AppendString([]string{"x", "y", "z"}[i%3])
	}
	tab := storage.NewTable("big", c, s)
	tab.Seal()
	if tab.Cols[0].Blocks() != 3 {
		t.Fatalf("expected 3 blocks, got %d", tab.Cols[0].Blocks())
	}

	for _, flags := range []core.Flags{core.Vanilla(), core.All()} {
		qc := NewQCtx(flags)
		scan := NewScan(tab, "v", "s")
		m := scan.Meta()
		h := NewHashAgg(scan,
			[]string{"s"}, []*Expr{Col(m, "s")},
			[]AggExpr{
				{Func: agg.CountStar, Name: "cnt"},
				{Func: agg.Sum, Arg: Col(m, "v"), Name: "sum"},
			})
		res := Run(qc, h)
		if len(res.Rows) != 3 {
			t.Fatalf("groups: %d", len(res.Rows))
		}
		var total int64
		for _, row := range res.Rows {
			total += row[1].I
		}
		if total != int64(n) {
			t.Fatalf("flags %+v: counted %d rows, want %d", flags, total, n)
		}
	}
}

// TestScanColumnSubset checks that scans project only the requested
// columns and derive their domains from the zone maps.
func TestScanColumnSubset(t *testing.T) {
	a := storage.NewColumn("a", vec.I64, false)
	b := storage.NewColumn("b", vec.I32, false)
	for i := 0; i < 100; i++ {
		a.AppendInt(int64(i + 10))
		b.AppendInt(int64(i % 7))
	}
	tab := storage.NewTable("t", a, b)
	tab.Seal()
	scan := NewScan(tab, "b")
	m := scan.Meta()
	if len(m) != 1 || m[0].Name != "b" {
		t.Fatalf("meta: %v", m)
	}
	if !m[0].Dom.Valid || m[0].Dom.Min != 0 || m[0].Dom.Max != 6 {
		t.Errorf("zone-map domain: %v", m[0].Dom)
	}
	if scan.MaxRows() != 100 {
		t.Errorf("MaxRows %d", scan.MaxRows())
	}
}

// TestFilterSelectivityChain stacks filters and checks selection vectors
// compose without copying data.
func TestFilterSelectivityChain(t *testing.T) {
	c := storage.NewColumn("v", vec.I64, false)
	for i := 0; i < 10_000; i++ {
		c.AppendInt(int64(i))
	}
	tab := storage.NewTable("t", c)
	tab.Seal()
	qc := NewQCtx(core.All())
	scan := NewScan(tab, "v")
	m := scan.Meta()
	f1 := NewFilter(scan, Ge(Col(m, "v"), Int(100)))
	f2 := NewFilter(f1, Lt(Col(m, "v"), Int(200)))
	f3 := NewFilter(f2, Eq(Mod(Col(m, "v"), Int(2)), Int(0)))
	res := Run(qc, f3)
	if len(res.Rows) != 50 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		v := row[0].I
		if v < 100 || v >= 200 || v%2 != 0 {
			t.Fatalf("filtered value %d escaped", v)
		}
	}
}
