package exec

import (
	"testing"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// idTable builds n rows with id = 0..n-1 and a 4-way group key, sized so
// every batch is exactly full and the last physical position of a batch
// (vec.MaxLen-1) is reachable by predicate.
func idTable(n int) *storage.Table {
	id := storage.NewColumn("id", vec.I64, false)
	k := storage.NewColumn("k", vec.I64, false)
	for i := 0; i < n; i++ {
		id.AppendInt(int64(i))
		k.AppendInt(int64(i % 4))
	}
	t := storage.NewTable("ids", id, k)
	t.Seal()
	return t
}

// trailingDim maps the trailing id of each batch to a label, so a join
// probed through a trailing-max selection finds exactly those rows.
func trailingDim(n int) *storage.Table {
	id := storage.NewColumn("did", vec.I64, false)
	name := storage.NewColumn("name", vec.Str, false)
	for i := vec.MaxLen - 1; i < n; i += vec.MaxLen {
		id.AppendInt(int64(i))
		name.AppendString("tail")
	}
	t := storage.NewTable("dim", id, name)
	t.Seal()
	return t
}

// selPredicates are the three selection-vector edge shapes, expressed as
// filter predicates over the id column: a selection with no entries, the
// full identity selection, and a selection whose only entry is the last
// physical position of each batch (vec.MaxLen-1, the trailing max index).
func selPredicates(n int, m []Meta) map[string]*Expr {
	return map[string]*Expr{
		"empty": Lt(Col(m, "id"), Int(0)),
		"full":  Ge(Col(m, "id"), Int(0)),
		"trailing-max": Eq(
			Mod(Col(m, "id"), Int(int64(vec.MaxLen))),
			Int(int64(vec.MaxLen-1)),
		),
	}
}

// TestFilterSelEdges drives the filter through each edge selection and
// checks exact row membership under every engine configuration.
func TestFilterSelEdges(t *testing.T) {
	const n = 3 * vec.MaxLen
	tab := idTable(n)
	wantRows := map[string]int{"empty": 0, "full": n, "trailing-max": 3}
	for name := range wantRows {
		name := name
		t.Run(name, func(t *testing.T) {
			results := runAll(t, func() Op {
				scan := NewScan(tab, "id", "k")
				m := scan.Meta()
				return NewFilter(scan, selPredicates(n, m)[name])
			})
			assertAllEqual(t, results)
			r := results[flagName(core.Flags{})]
			if len(r.Rows) != wantRows[name] {
				t.Fatalf("%s: got %d rows, want %d", name, len(r.Rows), wantRows[name])
			}
			if name == "trailing-max" {
				for _, row := range r.Rows {
					if (row[0].I+1)%int64(vec.MaxLen) != 0 {
						t.Fatalf("trailing-max selected id %d, not a batch-final row", row[0].I)
					}
				}
			}
		})
	}
}

// TestAggSelEdges aggregates through each edge selection: counts and sums
// must reflect exactly the selected rows.
func TestAggSelEdges(t *testing.T) {
	const n = 3 * vec.MaxLen
	tab := idTable(n)
	type want struct {
		groups int
		count  int64
	}
	wants := map[string]want{
		"empty":        {0, 0},
		"full":         {4, n},
		"trailing-max": {1, 3}, // ids 1023, 2047, 3071 are all k=3
	}
	for name := range wants {
		name := name
		t.Run(name, func(t *testing.T) {
			results := runAll(t, func() Op {
				scan := NewScan(tab, "id", "k")
				m := scan.Meta()
				f := NewFilter(scan, selPredicates(n, m)[name])
				return NewHashAgg(f,
					[]string{"k"}, []*Expr{Col(m, "k")},
					[]AggExpr{
						{Func: agg.CountStar, Name: "cnt"},
						{Func: agg.Sum, Arg: Col(m, "id"), Name: "sum_id"},
					})
			})
			assertAllEqual(t, results)
			r := results[flagName(core.All())]
			w := wants[name]
			if len(r.Rows) != w.groups {
				t.Fatalf("%s: got %d groups, want %d", name, len(r.Rows), w.groups)
			}
			var total int64
			for _, row := range r.Rows {
				total += row[1].I
			}
			if total != w.count {
				t.Fatalf("%s: counts sum to %d, want %d", name, total, w.count)
			}
		})
	}
}

// TestJoinSelEdges probes a hash join through each edge selection; the
// build side holds only batch-trailing ids, so matches exist exactly when
// the selection reaches position vec.MaxLen-1.
func TestJoinSelEdges(t *testing.T) {
	const n = 3 * vec.MaxLen
	tab := idTable(n)
	dim := trailingDim(n)
	wantRows := map[string]int{"empty": 0, "full": 3, "trailing-max": 3}
	for name := range wantRows {
		name := name
		t.Run(name, func(t *testing.T) {
			results := runAll(t, func() Op {
				scan := NewScan(tab, "id", "k")
				m := scan.Meta()
				f := NewFilter(scan, selPredicates(n, m)[name])
				return NewHashJoin(Inner, f,
					NewScan(dim, "did", "name"),
					[]string{"id"}, []string{"did"}, []string{"name"})
			})
			assertAllEqual(t, results)
			r := results[flagName(core.All())]
			if len(r.Rows) != wantRows[name] {
				t.Fatalf("%s: join produced %d rows, want %d", name, len(r.Rows), wantRows[name])
			}
			for _, row := range r.Rows {
				if (row[0].I+1)%int64(vec.MaxLen) != 0 {
					t.Fatalf("%s: joined id %d is not a batch-final row", name, row[0].I)
				}
			}
		})
	}
}
