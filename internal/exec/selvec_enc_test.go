package exec

import (
	"testing"

	"ocht/internal/agg"
	"ocht/internal/storage"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

// encEdgeTable mirrors idTable but adds a dictionary-coded tag column whose
// "edge" value marks exactly the batch-final physical positions, so the
// selection-vector edge shapes (empty / full / trailing-max) can be produced
// by predicates on the dictionary codes themselves.
func encEdgeTable(n int) *storage.Table {
	id := storage.NewColumn("id", vec.I64, false)
	grp := storage.NewColumn("grp", vec.Str, false)
	tag := storage.NewColumn("tag", vec.Str, false)
	names := []string{"g0", "g1", "g2", "g3"}
	for i := 0; i < n; i++ {
		id.AppendInt(int64(i))
		grp.AppendString(names[i%len(names)])
		if (i+1)%vec.MaxLen == 0 {
			tag.AppendString("edge")
		} else {
			tag.AppendString("mid")
		}
	}
	t := storage.NewTable("encids", id, grp, tag)
	t.Seal()
	return t
}

// TestEncEdgeTableEncodings pins the fixture's storage form: the test is
// only meaningful if id really is bit-packed and tag really is
// dictionary-coded when the scan views the block.
func TestEncEdgeTableEncodings(t *testing.T) {
	tab := encEdgeTable(3 * vec.MaxLen)
	st := strs.NewStore(false)
	out := &vec.Vector{}
	var refs []vec.StrRef
	if _, _, _ = tab.Col("id").ViewBlock(0, out, st, refs); out.Enc != vec.EncPacked {
		t.Fatalf("id block encoding %v, want packed", out.Enc)
	}
	if _, refs, _ = tab.Col("tag").ViewBlock(0, out, st, refs); out.Enc != vec.EncDict {
		t.Fatalf("tag block encoding %v, want dict", out.Enc)
	}
	_ = refs
}

// dictSelPredicates produces the three edge selections through the
// dictionary-code compare path: an absent code (empty), NE on an absent
// code (full), and EQ on the code that marks only batch-final positions
// (trailing-max).
func dictSelPredicates(m []Meta) map[string]*Expr {
	return map[string]*Expr{
		"empty":        Eq(Col(m, "tag"), Str("absent")),
		"full":         Ne(Col(m, "tag"), Str("absent")),
		"trailing-max": Eq(Col(m, "tag"), Str("edge")),
	}
}

// packedSelPredicates produces the same three shapes through the
// pack-domain compare path on the bit-packed id column.
func packedSelPredicates(n int, m []Meta) map[string]*Expr {
	return map[string]*Expr{
		"empty": Lt(Col(m, "id"), Int(0)),
		"full":  Ge(Col(m, "id"), Int(0)),
		"trailing-max": Eq(
			Mod(Col(m, "id"), Int(int64(vec.MaxLen))),
			Int(int64(vec.MaxLen-1)),
		),
	}
}

// TestEncFilterSelEdges drives both encoded compare paths through each
// edge shape and cross-checks the compressed pipeline against the
// eager-materialize oracle and every engine flag set.
func TestEncFilterSelEdges(t *testing.T) {
	const n = 3 * vec.MaxLen
	tab := encEdgeTable(n)
	wantRows := map[string]int{"empty": 0, "full": n, "trailing-max": 3}
	for _, path := range []string{"dict", "packed"} {
		path := path
		for name := range wantRows {
			name := name
			t.Run(path+"/"+name, func(t *testing.T) {
				build := func() Op {
					scan := NewScan(tab, "id", "grp", "tag")
					m := scan.Meta()
					if path == "dict" {
						return NewFilter(scan, dictSelPredicates(m)[name])
					}
					return NewFilter(scan, packedSelPredicates(n, m)[name])
				}
				results := runScanConfigs(t, build)
				flagResults := runAll(t, build)
				assertAllEqual(t, flagResults)
				var ref []string
				for cfg, r := range results {
					if len(r.Rows) != wantRows[name] {
						t.Fatalf("%s: got %d rows, want %d", cfg, len(r.Rows), wantRows[name])
					}
					got := sortedRows(r)
					if ref == nil {
						ref = got
						continue
					}
					for i := range ref {
						if ref[i] != got[i] {
							t.Fatalf("%s differs at row %d", cfg, i)
						}
					}
				}
				if name == "trailing-max" {
					for _, row := range results["compressed"].Rows {
						if (row[0].I+1)%int64(vec.MaxLen) != 0 {
							t.Fatalf("selected id %d is not a batch-final row", row[0].I)
						}
					}
				}
			})
		}
	}
}

// TestEncAggSelEdges pushes each edge selection into an aggregate whose
// group key is dictionary-coded and whose argument is bit-packed: the
// late-materialization gather must honor exactly the selected rows.
func TestEncAggSelEdges(t *testing.T) {
	const n = 3 * vec.MaxLen
	tab := encEdgeTable(n)
	type want struct {
		groups int
		count  int64
		sumID  int64
	}
	// Batch-final ids are 1023, 2047, 3071: all grp g3 ((i%4)==3).
	wants := map[string]want{
		"empty":        {0, 0, 0},
		"full":         {4, n, int64(n) * int64(n-1) / 2},
		"trailing-max": {1, 3, 1023 + 2047 + 3071},
	}
	for name := range wants {
		name := name
		t.Run(name, func(t *testing.T) {
			results := runScanConfigs(t, func() Op {
				scan := NewScan(tab, "id", "grp", "tag")
				m := scan.Meta()
				f := NewFilter(scan, dictSelPredicates(m)[name])
				return NewHashAgg(f,
					[]string{"grp"}, []*Expr{Col(m, "grp")},
					[]AggExpr{
						{Func: agg.CountStar, Name: "cnt"},
						{Func: agg.Sum, Arg: Col(m, "id"), Name: "sum_id"},
					})
			})
			w := wants[name]
			for cfg, r := range results {
				if len(r.Rows) != w.groups {
					t.Fatalf("%s: %d groups, want %d", cfg, len(r.Rows), w.groups)
				}
				var cnt, sum int64
				for _, row := range r.Rows {
					cnt += row[1].I
					sum += row[2].I
				}
				if cnt != w.count || sum != w.sumID {
					t.Fatalf("%s: count %d sum %d, want %d / %d", cfg, cnt, sum, w.count, w.sumID)
				}
			}
		})
	}
}

// TestEncJoinSelEdges probes a join through each dictionary-code edge
// selection with bit-packed probe keys; matches exist exactly when the
// selection reaches position vec.MaxLen-1 of a batch.
func TestEncJoinSelEdges(t *testing.T) {
	const n = 3 * vec.MaxLen
	tab := encEdgeTable(n)
	dim := trailingDim(n)
	wantRows := map[string]int{"empty": 0, "full": 3, "trailing-max": 3}
	for name := range wantRows {
		name := name
		t.Run(name, func(t *testing.T) {
			results := runScanConfigs(t, func() Op {
				scan := NewScan(tab, "id", "grp", "tag")
				m := scan.Meta()
				f := NewFilter(scan, dictSelPredicates(m)[name])
				return NewHashJoin(Inner, f,
					NewScan(dim, "did", "name"),
					[]string{"id"}, []string{"did"}, []string{"name"})
			})
			for cfg, r := range results {
				if len(r.Rows) != wantRows[name] {
					t.Fatalf("%s: join produced %d rows, want %d", cfg, len(r.Rows), wantRows[name])
				}
				for _, row := range r.Rows {
					if (row[0].I+1)%int64(vec.MaxLen) != 0 {
						t.Fatalf("%s: joined id %d is not a batch-final row", cfg, row[0].I)
					}
				}
			}
		})
	}
}
