package exec

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stats collects the per-primitive time breakdown reported in Figure 6:
// scan+decompress, hash computation, bucket lookup + key check,
// aggregation, and everything else.
type Stats struct {
	buckets map[string]time.Duration
}

// Breakdown bucket names.
const (
	StatScan      = "scan+decompress"
	StatHash      = "hash computation"
	StatLookup    = "bucket lookup + key check"
	StatAggregate = "aggregate update"
	StatPack      = "pack/unpack"
	StatOther     = "remaining primitives"
)

// NewStats creates an empty breakdown.
func NewStats() *Stats { return &Stats{buckets: map[string]time.Duration{}} }

// Add charges d to the named bucket.
func (s *Stats) Add(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.buckets[name] += d
}

// Get returns the accumulated time of a bucket.
func (s *Stats) Get(name string) time.Duration {
	if s == nil {
		return 0
	}
	return s.buckets[name]
}

// Total sums all buckets.
func (s *Stats) Total() time.Duration {
	var t time.Duration
	for _, d := range s.buckets {
		t += d
	}
	return t
}

// String renders the breakdown sorted by descending time.
func (s *Stats) String() string {
	type kv struct {
		k string
		v time.Duration
	}
	var items []kv
	for k, v := range s.buckets {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v > items[j].v })
	var b strings.Builder
	for _, it := range items {
		fmt.Fprintf(&b, "%-28s %12v\n", it.k, it.v)
	}
	return b.String()
}

// timed runs f and charges its duration to bucket name.
func (s *Stats) timed(name string, f func()) {
	if s == nil {
		f()
		return
	}
	start := time.Now()
	f()
	s.buckets[name] += time.Since(start)
}
