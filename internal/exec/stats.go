package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stats collects the per-primitive time breakdown reported in Figure 6:
// scan+decompress, hash computation, bucket lookup + key check,
// aggregation, and everything else.
//
// A Stats value is safe for concurrent use. Under parallel execution each
// worker owns a private Stats (so the hot Add path never contends) and the
// driver folds them into the query's Stats with Merge; the buckets then
// hold summed CPU time across workers, which can exceed wall-clock time.
type Stats struct {
	mu       sync.Mutex
	buckets  map[string]time.Duration
	counters map[string]int64
}

// Breakdown bucket names.
const (
	StatScan      = "scan+decompress"
	StatHash      = "hash computation"
	StatLookup    = "bucket lookup + key check"
	StatAggregate = "aggregate update"
	StatPack      = "pack/unpack"
	StatOther     = "remaining primitives"
)

// Counter names: the compressed-scan accounting behind the scansel
// experiment. BlocksRead and BlocksSkipped partition the blocks a scan
// considered; BytesDecompressed counts bytes actually written by
// decompression (zero-copy encoded views decompress nothing but their
// per-block dictionary reference tables).
const (
	CtrBlocksRead        = "blocks read"
	CtrBlocksSkipped     = "blocks zone-skipped"
	CtrBytesDecompressed = "bytes decompressed"
)

// Partition-wise parallel aggregation counters. AggRowsSpilled counts the
// rows routed through phase-1 spill buffers; PartitionWiseAggs counts
// frontier aggregations that took the owner-computes path instead of the
// agg.Merge path (tests assert on it to pin which path ran).
const (
	CtrAggRowsSpilled    = "agg rows spilled"
	CtrPartitionWiseAggs = "partition-wise aggs"
)

// NewStats creates an empty breakdown.
func NewStats() *Stats {
	return &Stats{buckets: map[string]time.Duration{}, counters: map[string]int64{}}
}

// Count adds n to the named counter.
func (s *Stats) Count(name string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.counters[name] += n
	s.mu.Unlock()
}

// Counter returns the accumulated value of a counter.
func (s *Stats) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Add charges d to the named bucket.
func (s *Stats) Add(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.buckets[name] += d
	s.mu.Unlock()
}

// Merge folds every bucket and counter of o into s. o is left unchanged.
func (s *Stats) Merge(o *Stats) {
	if s == nil || o == nil {
		return
	}
	o.mu.Lock()
	snapshot := make(map[string]time.Duration, len(o.buckets))
	for k, v := range o.buckets {
		snapshot[k] = v
	}
	ctrs := make(map[string]int64, len(o.counters))
	for k, v := range o.counters {
		ctrs[k] = v
	}
	o.mu.Unlock()
	s.mu.Lock()
	for k, v := range snapshot {
		s.buckets[k] += v
	}
	for k, v := range ctrs {
		s.counters[k] += v
	}
	s.mu.Unlock()
}

// Get returns the accumulated time of a bucket.
func (s *Stats) Get(name string) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buckets[name]
}

// Snapshot returns a copy of every bucket. It is safe to call while
// workers may still be flushing into the Stats (the server's /metrics
// endpoint reads live queries this way) and the returned map is owned by
// the caller.
func (s *Stats) Snapshot() map[string]time.Duration {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]time.Duration, len(s.buckets))
	for k, v := range s.buckets {
		out[k] = v
	}
	return out
}

// Total sums all buckets.
func (s *Stats) Total() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var t time.Duration
	for _, d := range s.buckets {
		t += d
	}
	return t
}

// String renders the breakdown sorted by descending time.
func (s *Stats) String() string {
	type kv struct {
		k string
		v time.Duration
	}
	var items []kv
	s.mu.Lock()
	for k, v := range s.buckets {
		items = append(items, kv{k, v})
	}
	s.mu.Unlock()
	sort.Slice(items, func(i, j int) bool { return items[i].v > items[j].v })
	var b strings.Builder
	for _, it := range items {
		fmt.Fprintf(&b, "%-28s %12v\n", it.k, it.v)
	}
	return b.String()
}

// timed runs f and charges its duration to bucket name.
func (s *Stats) timed(name string, f func()) {
	if s == nil {
		f()
		return
	}
	start := time.Now()
	f()
	s.Add(name, time.Since(start))
}
