//go:build ocht_debug

package hashtab

import (
	"encoding/binary"
	"testing"
)

// TestAssertPacked finalizes a CHT (which self-checks under ocht_debug),
// then corrupts the packed representation and checks the assertion fires.
func TestAssertPacked(t *testing.T) {
	c := NewConcise(16, 128)
	rec := make([]byte, 16)
	for k := uint64(1); k <= 100; k++ {
		binary.LittleEndian.PutUint64(rec, k)
		binary.LittleEndian.PutUint64(rec[8:], k*10)
		c.Insert(k, rec)
	}
	c.Finalize() // wired assertion: must pass on a healthy table
	c.AssertPacked()

	expectPanic := func(name string, corrupt, restore func()) {
		t.Helper()
		corrupt()
		defer restore()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected assertion panic, got none", name)
			}
		}()
		c.AssertPacked()
	}
	var savedPrefix uint32
	expectPanic("corrupted prefix count",
		func() { savedPrefix = c.prefix[len(c.prefix)-1]; c.prefix[len(c.prefix)-1]++ },
		func() { c.prefix[len(c.prefix)-1] = savedPrefix })
	var savedWord uint64
	expectPanic("corrupted bitmap word",
		func() { savedWord = c.words[0]; c.words[0] ^= 1 << 63 },
		func() { c.words[0] = savedWord })
	var savedDense []byte
	expectPanic("truncated dense array",
		func() { savedDense = c.dense; c.dense = c.dense[:len(c.dense)-1] },
		func() { c.dense = savedDense })
}
