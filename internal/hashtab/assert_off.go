//go:build !ocht_debug

package hashtab

// DebugAsserts reports whether the ocht_debug assertion layer is compiled
// in.
const DebugAsserts = false

// AssertPacked is a no-op in release builds; see assert_on.go.
func (t *Concise) AssertPacked() {}
