//go:build ocht_debug

package hashtab

import (
	"fmt"
	"math/bits"
)

// DebugAsserts reports whether the ocht_debug assertion layer is compiled
// in.
const DebugAsserts = true

// AssertPacked panics if the finalized CHT's packed representation is
// inconsistent: the prefix counts must equal the running popcount of the
// bitmap words, and the dense array must hold exactly one record per set
// bit. Lookup's rank arithmetic (prefix[w] + popcount of lower bits)
// silently reads the wrong record if any of this drifts.
func (t *Concise) AssertPacked() {
	if !t.final {
		panic("hashtab: AssertPacked on a non-finalized CHT")
	}
	if len(t.prefix) != len(t.words) {
		panic(fmt.Sprintf("hashtab: %d prefix counts for %d bitmap words", len(t.prefix), len(t.words)))
	}
	var total uint32
	for w, word := range t.words {
		if t.prefix[w] != total {
			panic(fmt.Sprintf("hashtab: prefix[%d] = %d, want running popcount %d", w, t.prefix[w], total))
		}
		total += uint32(bits.OnesCount64(word))
	}
	if len(t.dense) != int(total)*t.rowWidth {
		panic(fmt.Sprintf("hashtab: dense array holds %d bytes, want %d (%d records x %d)",
			len(t.dense), int(total)*t.rowWidth, total, t.rowWidth))
	}
}
