package hashtab

// Bloom is a cache-line-blocked Bloom filter for guarding hash-table
// probes: every key touches exactly one 64-byte block (eight 64-bit
// words), so a negative membership test costs a single cache line instead
// of the directory + chain + record lines of a full table probe. Selective
// joins consult it in a vectorized pre-pass that shrinks the selection
// vector before any table access.
//
// The filter derives its own bit positions by remixing the caller's key
// hash with an odd multiplier, so it stays independent of the two other
// consumers of that hash: the radix partition (top bits) and the bucket
// directory (low bits).
const (
	bloomWordsPerBlock = 8                  // 8 x 64-bit words = one cache line
	bloomBlockBits     = 512                // bits per block
	bloomBitsPerKey    = 10                 // target density; ~1% false positives at 4 probes
	bloomProbes        = 4                  // bits set/tested per key
	bloomMix           = 0x9E3779B97F4A7C15 // odd => bijective remix of the key hash
	bloomMaxBlocks     = 1 << 18            // 16 MiB cap; oversized estimates stop here
)

// Bloom blocks are selected by the top bits of the remixed hash; the four
// probe bits come from its low 36 bits (4 x 9-bit in-block positions).
type Bloom struct {
	words []uint64
	shift uint // 64 - log2(blocks); block index = remix >> shift
}

// NewBloom sizes a filter for about nKeys keys at bloomBitsPerKey bits
// per key, rounded up to a power-of-two block count. The estimate only
// shapes the false-positive rate: overshooting it keeps the filter
// correct, just denser.
func NewBloom(nKeys int) *Bloom {
	if nKeys < 1 {
		nKeys = 1
	}
	blocks := 1
	for blocks*bloomBlockBits < nKeys*bloomBitsPerKey && blocks < bloomMaxBlocks {
		blocks <<= 1
	}
	shift := uint(64)
	for s := blocks; s > 1; s >>= 1 {
		shift--
	}
	return &Bloom{words: make([]uint64, blocks*bloomWordsPerBlock), shift: shift}
}

// MemoryBytes returns the filter footprint.
func (b *Bloom) MemoryBytes() int { return len(b.words) * 8 }

// Add inserts the key hash.
//
//ocht:hot
func (b *Bloom) Add(h uint64) {
	g := h * bloomMix
	base := (g >> b.shift) * bloomWordsPerBlock
	for k := 0; k < bloomProbes; k++ {
		idx := (g >> (9 * uint(k))) & (bloomBlockBits - 1)
		b.words[base+idx>>6] |= 1 << (idx & 63)
	}
}

// Test reports whether the key hash may be present. False negatives never
// happen; false positives cost one redundant table probe.
//
//ocht:hot
func (b *Bloom) Test(h uint64) bool {
	g := h * bloomMix
	base := (g >> b.shift) * bloomWordsPerBlock
	for k := 0; k < bloomProbes; k++ {
		idx := (g >> (9 * uint(k))) & (bloomBlockBits - 1)
		if b.words[base+idx>>6]&(1<<(idx&63)) == 0 {
			return false
		}
	}
	return true
}

// Filter appends to out the active rows whose hash may be in the filter:
// the vectorized pre-pass of a Bloom-guarded probe. hashes is indexed by
// physical row position.
//
//ocht:hot
func (b *Bloom) Filter(hashes []uint64, rows []int32, out []int32) []int32 {
	for _, r := range rows {
		if b.Test(hashes[r]) {
			out = append(out, r)
		}
	}
	return out
}
