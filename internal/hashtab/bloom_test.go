package hashtab

import (
	"math/rand"
	"testing"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBloom(1 << 14)
	hashes := make([]uint64, 1<<14)
	for i := range hashes {
		hashes[i] = rng.Uint64()
		b.Add(hashes[i])
	}
	for i, h := range hashes {
		if !b.Test(h) {
			t.Fatalf("inserted hash %d reported absent", i)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := NewBloom(1 << 14)
	for i := 0; i < 1<<14; i++ {
		b.Add(rng.Uint64())
	}
	fp := 0
	const probes = 1 << 16
	for i := 0; i < probes; i++ {
		if b.Test(rng.Uint64()) {
			fp++
		}
	}
	// 10 bits/key with 4 probes lands near 1-2% in a blocked layout; the
	// Bloom-guarded probe contract needs >90% of misses filtered.
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Errorf("false positive rate %.4f, want <= 0.05", rate)
	}
}

func TestBloomFilterRows(t *testing.T) {
	b := NewBloom(64)
	hashes := make([]uint64, 8)
	rng := rand.New(rand.NewSource(9))
	for i := range hashes {
		hashes[i] = rng.Uint64()
	}
	b.Add(hashes[1])
	b.Add(hashes[5])
	rows := []int32{0, 1, 2, 5, 7}
	out := b.Filter(hashes, rows, nil)
	present := map[int32]bool{}
	for _, r := range out {
		present[r] = true
	}
	if !present[1] || !present[5] {
		t.Fatalf("inserted rows filtered out: %v", out)
	}
	// A tiny filter may keep false positives, but never rows 3/4/6 which
	// are not in the selection vector.
	for _, r := range out {
		if r != 0 && r != 1 && r != 2 && r != 5 && r != 7 {
			t.Fatalf("row %d not in the selection vector", r)
		}
	}
}

func TestBloomSizing(t *testing.T) {
	small := NewBloom(1)
	if small.MemoryBytes() != 64 {
		t.Errorf("minimum filter is one block, got %dB", small.MemoryBytes())
	}
	huge := NewBloom(1 << 30)
	if huge.MemoryBytes() > bloomMaxBlocks*64 {
		t.Errorf("filter exceeds cap: %dB", huge.MemoryBytes())
	}
}
