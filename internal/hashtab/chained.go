// Package hashtab implements the hash-table designs the paper compares
// against (Table IV): a vanilla bucket-chained NSM table, a linear-probing
// table, Robin Hood hashing, and the Concise Hash Table of Barber et al.
// All tables store fixed-width NSM byte records whose first 8 bytes are the
// key; the remaining bytes are payload.
//
// The optimistically compressed hash table itself lives in internal/core;
// it reuses the chained directory layout defined here.
package hashtab

import "encoding/binary"

// Table is the interface shared by the designs compared in Table IV.
type Table interface {
	// Insert stores a record; rec is rowWidth bytes with the key in the
	// first 8 bytes.
	Insert(key uint64, rec []byte)
	// Lookup returns the record for key, or nil.
	Lookup(key uint64) []byte
	// MemoryBytes reports the total footprint (directory + records).
	MemoryBytes() int
	// Len returns the number of stored records.
	Len() int
}

// Chained is a bucket-chained hash table in NSM layout: a directory of
// chain heads, a per-record next link, and a dense record area. This is
// the structure of Vectorwise's join/aggregation tables that the paper
// compresses.
type Chained struct {
	heads    []int32
	next     []int32
	rows     []byte
	rowWidth int
	n        int
	mask     uint64
}

// NewChained creates a chained table for records of rowWidth bytes
// (key included), sized for capacityHint records.
func NewChained(rowWidth, capacityHint int) *Chained {
	t := &Chained{rowWidth: rowWidth}
	t.rehash(directorySize(capacityHint))
	return t
}

func directorySize(n int) int {
	size := 16
	for size < n {
		size <<= 1
	}
	return size
}

func (t *Chained) rehash(buckets int) {
	t.heads = make([]int32, buckets)
	for i := range t.heads {
		t.heads[i] = -1
	}
	t.mask = uint64(buckets - 1)
	for i := 0; i < t.n; i++ {
		h := hash64(t.key(int32(i))) & t.mask
		t.next[i] = t.heads[h]
		t.heads[h] = int32(i)
	}
}

func (t *Chained) key(rec int32) uint64 {
	return binary.LittleEndian.Uint64(t.rows[int(rec)*t.rowWidth:])
}

// Row returns the record bytes at index rec.
func (t *Chained) Row(rec int32) []byte {
	off := int(rec) * t.rowWidth
	return t.rows[off : off+t.rowWidth]
}

// Insert implements Table.
func (t *Chained) Insert(key uint64, rec []byte) {
	if t.n >= len(t.heads) {
		t.rehash(len(t.heads) * 2)
	}
	idx := int32(t.n)
	t.rows = append(t.rows, rec...)
	h := hash64(key) & t.mask
	t.next = append(t.next, t.heads[h])
	t.heads[h] = idx
	t.n++
}

// Lookup implements Table.
func (t *Chained) Lookup(key uint64) []byte {
	h := hash64(key) & t.mask
	for rec := t.heads[h]; rec >= 0; rec = t.next[rec] {
		if t.key(rec) == key {
			return t.Row(rec)
		}
	}
	return nil
}

// Len implements Table.
func (t *Chained) Len() int { return t.n }

// MemoryBytes implements Table: directory + next links + record area.
func (t *Chained) MemoryBytes() int {
	return len(t.heads)*4 + len(t.next)*4 + len(t.rows)
}

func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
