package hashtab

import (
	"encoding/binary"
	"math/bits"
)

// Concise is the Concise Hash Table of Barber et al. [PVLDB 8(4)], one of
// the designs the paper compares footprints against (Table IV). It avoids
// storing empty slots: a bitmap over virtual slot positions marks occupied
// slots, a prefix-count per bitmap word maps a set bit to an index in a
// dense record array, and keys that lose the (bounded) probe race go to a
// small overflow table.
type Concise struct {
	rowWidth int

	// Build buffer; emptied by Finalize.
	bufKeys []uint64
	bufRecs []byte

	words    []uint64
	prefix   []uint32
	dense    []byte
	overflow *Chained
	mask     uint64
	n        int
	final    bool
}

// probeWindow is how many consecutive virtual positions a key may try
// before overflowing.
const probeWindow = 2

// NewConcise creates a CHT for records of rowWidth bytes. Inserts are
// buffered; the table is built on Finalize (or the first Lookup), as CHTs
// are bulk-built structures.
func NewConcise(rowWidth, capacityHint int) *Concise {
	return &Concise{
		rowWidth: rowWidth,
		bufKeys:  make([]uint64, 0, capacityHint),
	}
}

// Insert implements Table (buffered until Finalize).
func (t *Concise) Insert(key uint64, rec []byte) {
	if t.final {
		panic("hashtab: insert into finalized concise table")
	}
	t.bufKeys = append(t.bufKeys, key)
	t.bufRecs = append(t.bufRecs, rec...)
	t.n++
}

// Finalize builds the bitmap, prefix counts and dense array.
func (t *Concise) Finalize() {
	if t.final {
		return
	}
	t.final = true
	// Virtual positions: 2x cardinality for a 50% virtual fill.
	slots := directorySize(2 * max(t.n, 1))
	t.mask = uint64(slots - 1)
	nWords := slots / 64
	if nWords == 0 {
		nWords = 1
		t.mask = 63
	}
	t.words = make([]uint64, nWords)
	t.overflow = NewChained(t.rowWidth, 16)

	// Pass 1: claim virtual positions.
	pos := make([]int64, len(t.bufKeys)) // -1 = overflow
	for i, k := range t.bufKeys {
		p := hash64(k) & t.mask
		placed := false
		for j := 0; j < probeWindow; j++ {
			q := (p + uint64(j)) & t.mask
			w, b := q/64, q%64
			if t.words[w]&(1<<b) == 0 {
				t.words[w] |= 1 << b
				pos[i] = int64(q)
				placed = true
				break
			}
		}
		if !placed {
			pos[i] = -1
		}
	}
	// Prefix counts.
	t.prefix = make([]uint32, len(t.words))
	var total uint32
	for w, word := range t.words {
		t.prefix[w] = total
		total += uint32(bits.OnesCount64(word))
	}
	// Pass 2: scatter records into the dense array (or overflow).
	t.dense = make([]byte, int(total)*t.rowWidth)
	for i, k := range t.bufKeys {
		rec := t.bufRecs[i*t.rowWidth : (i+1)*t.rowWidth]
		if pos[i] < 0 {
			t.overflow.Insert(k, rec)
			continue
		}
		q := uint64(pos[i])
		copy(t.dense[t.denseIndex(q)*t.rowWidth:], rec)
	}
	t.bufKeys = nil
	t.bufRecs = nil
	if DebugAsserts {
		t.AssertPacked()
	}
}

// denseIndex maps an occupied virtual position to its dense array index:
// the word's prefix count plus the rank of the bit within the word.
func (t *Concise) denseIndex(q uint64) int {
	w, b := q/64, q%64
	return int(t.prefix[w]) + bits.OnesCount64(t.words[w]&(1<<b-1))
}

// Lookup implements Table.
func (t *Concise) Lookup(key uint64) []byte {
	if !t.final {
		t.Finalize()
	}
	p := hash64(key) & t.mask
	for j := 0; j < probeWindow; j++ {
		q := (p + uint64(j)) & t.mask
		w, b := q/64, q%64
		if t.words[w]&(1<<b) == 0 {
			return nil
		}
		off := t.denseIndex(q) * t.rowWidth
		if binary.LittleEndian.Uint64(t.dense[off:]) == key {
			return t.dense[off : off+t.rowWidth]
		}
	}
	return t.overflow.Lookup(key)
}

// Len implements Table.
func (t *Concise) Len() int { return t.n }

// MemoryBytes implements Table: bitmap + prefix counts + dense records +
// overflow.
func (t *Concise) MemoryBytes() int {
	if !t.final {
		t.Finalize()
	}
	return len(t.words)*8 + len(t.prefix)*4 + len(t.dense) + t.overflow.MemoryBytes()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
