package hashtab

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

func record(rowWidth int, key uint64, payload byte) []byte {
	rec := make([]byte, rowWidth)
	binary.LittleEndian.PutUint64(rec, key)
	for i := 8; i < rowWidth; i++ {
		rec[i] = payload
	}
	return rec
}

func tables(rowWidth, n int) map[string]Table {
	return map[string]Table{
		"chained":   NewChained(rowWidth, n),
		"linear":    NewLinear(rowWidth, n, 50),
		"robinhood": NewRobinHood(rowWidth, n, 85),
		"concise":   NewConcise(rowWidth, n),
	}
}

func TestAllDesignsBasic(t *testing.T) {
	const rowWidth = 24
	for name, tab := range tables(rowWidth, 100) {
		t.Run(name, func(t *testing.T) {
			for k := uint64(0); k < 100; k++ {
				tab.Insert(k, record(rowWidth, k, byte(k)))
			}
			if tab.Len() != 100 {
				t.Fatalf("Len = %d", tab.Len())
			}
			for k := uint64(0); k < 100; k++ {
				rec := tab.Lookup(k)
				if rec == nil {
					t.Fatalf("key %d missing", k)
				}
				if binary.LittleEndian.Uint64(rec) != k || rec[8] != byte(k) {
					t.Fatalf("key %d: wrong record", k)
				}
			}
			for k := uint64(100); k < 200; k++ {
				if tab.Lookup(k) != nil {
					t.Fatalf("key %d should miss", k)
				}
			}
			if tab.MemoryBytes() <= 0 {
				t.Error("memory accounting")
			}
		})
	}
}

func TestAllDesignsRandomized(t *testing.T) {
	const rowWidth = 16
	rng := rand.New(rand.NewSource(11))
	keys := make([]uint64, 5000)
	seen := map[uint64]bool{}
	for i := range keys {
		for {
			k := rng.Uint64() % (1 << 16) // the Table IV key domain
			if !seen[k] {
				seen[k] = true
				keys[i] = k
				break
			}
		}
	}
	for name, tab := range tables(rowWidth, len(keys)) {
		t.Run(name, func(t *testing.T) {
			for _, k := range keys {
				tab.Insert(k, record(rowWidth, k, byte(k)))
			}
			for _, k := range keys {
				rec := tab.Lookup(k)
				if rec == nil || binary.LittleEndian.Uint64(rec) != k {
					t.Fatalf("key %d lost", k)
				}
			}
			misses := 0
			for i := 0; i < 1000; i++ {
				k := rng.Uint64() | 1<<20 // outside the insert domain
				if tab.Lookup(k) == nil {
					misses++
				}
			}
			if misses != 1000 {
				t.Errorf("false positives: %d", 1000-misses)
			}
		})
	}
}

func TestChainedGrowth(t *testing.T) {
	tab := NewChained(16, 4)
	for k := uint64(0); k < 10_000; k++ {
		tab.Insert(k, record(16, k, 0))
	}
	for k := uint64(0); k < 10_000; k++ {
		if tab.Lookup(k) == nil {
			t.Fatalf("key %d lost after growth", k)
		}
	}
}

func TestConciseMemoryBeatsLinear(t *testing.T) {
	// The CHT's raison d'être: no empty slots in the record area.
	const rowWidth, n = 64, 10_000
	lin := NewLinear(rowWidth, n, 50)
	cht := NewConcise(rowWidth, n)
	for k := uint64(0); k < n; k++ {
		rec := record(rowWidth, k, 1)
		lin.Insert(k, rec)
		cht.Insert(k, rec)
	}
	if cht.MemoryBytes() >= lin.MemoryBytes() {
		t.Errorf("CHT %d B should undercut linear %d B for wide records",
			cht.MemoryBytes(), lin.MemoryBytes())
	}
}

func TestConciseOverflow(t *testing.T) {
	// Force heavy collisions by inserting more keys than virtual slots in
	// one region would comfortably hold; correctness must not depend on
	// the probe window.
	cht := NewConcise(16, 1000)
	for k := uint64(0); k < 1000; k++ {
		cht.Insert(k*64, record(16, k*64, 0)) // stride to provoke clustering
	}
	cht.Finalize()
	for k := uint64(0); k < 1000; k++ {
		if cht.Lookup(k*64) == nil {
			t.Fatalf("key %d lost (overflow handling broken)", k*64)
		}
	}
}

func TestRobinHoodHighFill(t *testing.T) {
	const n = 1 << 12
	rh := NewRobinHood(16, n, 90)
	for k := uint64(0); k < n-1; k++ {
		rh.Insert(k, record(16, k, 0))
	}
	for k := uint64(0); k < n-1; k++ {
		if rh.Lookup(k) == nil {
			t.Fatalf("key %d lost at high fill", k)
		}
	}
}

func TestMemoryOrdering(t *testing.T) {
	// Wider records: chained ≈ records + links; linear at 50% fill pays 2x
	// records. Sanity-check the relative footprints used in Table IV.
	const rowWidth, n = 136, 4096 // 1 key + 16 values
	lin := NewLinear(rowWidth, n, 50)
	ch := NewChained(rowWidth, n)
	for k := uint64(0); k < n; k++ {
		rec := record(rowWidth, k, 0)
		lin.Insert(k, rec)
		ch.Insert(k, rec)
	}
	if !(lin.MemoryBytes() > ch.MemoryBytes()) {
		t.Errorf("linear %d should exceed chained %d at 50%% fill",
			lin.MemoryBytes(), ch.MemoryBytes())
	}
}

func ExampleChained() {
	t := NewChained(16, 8)
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint64(rec, 7)
	binary.LittleEndian.PutUint64(rec[8:], 700)
	t.Insert(7, rec)
	got := t.Lookup(7)
	fmt.Println(binary.LittleEndian.Uint64(got[8:]))
	// Output: 700
}
