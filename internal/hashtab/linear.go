package hashtab

import "encoding/binary"

// Linear is an open-addressing hash table with linear probing. Slots are
// NSM records; an occupancy bitmap distinguishes empty slots so that any
// key value (including 0) can be stored. The paper's Table IV keeps linear
// tables at a 50% fill rate, so NewLinear sizes the slot array at twice
// the expected cardinality.
type Linear struct {
	slots    []byte
	occupied []bool
	rowWidth int
	mask     uint64
	n        int
}

// NewLinear creates a linear-probing table with capacity for n records at
// fillPercent fill rate (e.g. 50).
func NewLinear(rowWidth, n, fillPercent int) *Linear {
	if fillPercent <= 0 || fillPercent > 90 {
		fillPercent = 50
	}
	slots := directorySize(n * 100 / fillPercent)
	return &Linear{
		slots:    make([]byte, slots*rowWidth),
		occupied: make([]bool, slots),
		rowWidth: rowWidth,
		mask:     uint64(slots - 1),
	}
}

// Insert implements Table. It panics when the table is full.
func (t *Linear) Insert(key uint64, rec []byte) {
	if t.n >= len(t.occupied) {
		panic("hashtab: linear table full")
	}
	pos := hash64(key) & t.mask
	for t.occupied[pos] {
		pos = (pos + 1) & t.mask
	}
	t.occupied[pos] = true
	copy(t.slots[int(pos)*t.rowWidth:], rec)
	t.n++
}

// Lookup implements Table.
func (t *Linear) Lookup(key uint64) []byte {
	pos := hash64(key) & t.mask
	for t.occupied[pos] {
		off := int(pos) * t.rowWidth
		if binary.LittleEndian.Uint64(t.slots[off:]) == key {
			return t.slots[off : off+t.rowWidth]
		}
		pos = (pos + 1) & t.mask
	}
	return nil
}

// Len implements Table.
func (t *Linear) Len() int { return t.n }

// MemoryBytes implements Table. The occupancy bitmap is charged at one bit
// per slot, as a C implementation would pay.
func (t *Linear) MemoryBytes() int {
	return len(t.slots) + len(t.occupied)/8
}
