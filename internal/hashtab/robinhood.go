package hashtab

import "encoding/binary"

// RobinHood is an open-addressing table using Robin Hood hashing [Celis
// 1986]: on collision the record with the smaller displacement from its
// home slot yields, which bounds probe-sequence variance and lets the
// table run at high fill factors. The paper cites it as the orthogonal
// "increase the fill factor" approach to shrinking hash tables.
type RobinHood struct {
	slots    []byte
	dist     []int16 // displacement+1; 0 = empty
	rowWidth int
	mask     uint64
	n        int
}

// NewRobinHood creates a Robin Hood table with capacity for n records at
// fillPercent fill rate (e.g. 85).
func NewRobinHood(rowWidth, n, fillPercent int) *RobinHood {
	if fillPercent <= 0 || fillPercent > 95 {
		fillPercent = 85
	}
	slots := directorySize(n * 100 / fillPercent)
	return &RobinHood{
		slots:    make([]byte, slots*rowWidth),
		dist:     make([]int16, slots),
		rowWidth: rowWidth,
		mask:     uint64(slots - 1),
	}
}

// Insert implements Table.
func (t *RobinHood) Insert(key uint64, rec []byte) {
	if t.n >= len(t.dist) {
		panic("hashtab: robin hood table full")
	}
	cur := make([]byte, t.rowWidth)
	copy(cur, rec)
	pos := hash64(key) & t.mask
	d := int16(1)
	for {
		if t.dist[pos] == 0 {
			copy(t.slots[int(pos)*t.rowWidth:], cur)
			t.dist[pos] = d
			t.n++
			return
		}
		if t.dist[pos] < d {
			// Rob the rich: swap the resident record out.
			off := int(pos) * t.rowWidth
			tmp := make([]byte, t.rowWidth)
			copy(tmp, t.slots[off:off+t.rowWidth])
			copy(t.slots[off:], cur)
			cur = tmp
			d, t.dist[pos] = t.dist[pos], d
		}
		pos = (pos + 1) & t.mask
		d++
	}
}

// Lookup implements Table.
func (t *RobinHood) Lookup(key uint64) []byte {
	pos := hash64(key) & t.mask
	d := int16(1)
	for t.dist[pos] != 0 && t.dist[pos] >= d {
		off := int(pos) * t.rowWidth
		if binary.LittleEndian.Uint64(t.slots[off:]) == key {
			return t.slots[off : off+t.rowWidth]
		}
		pos = (pos + 1) & t.mask
		d++
	}
	return nil
}

// Len implements Table.
func (t *RobinHood) Len() int { return t.n }

// MemoryBytes implements Table.
func (t *RobinHood) MemoryBytes() int {
	return len(t.slots) + len(t.dist)*2
}
