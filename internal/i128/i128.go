// Package i128 implements 128-bit signed integer arithmetic.
//
// The paper's baseline SUM aggregate materializes results in 128-bit
// integers because worst-case domain derivation for SUM over large inputs
// overflows 64 bits (Section III-A). Go has no native int128, so this
// package provides the two-word representation the "full SUM" kernels use.
package i128

import (
	"fmt"
	"math/bits"
)

// Int is a 128-bit signed integer in two's complement, stored as a high
// signed word and a low unsigned word. The zero value is the number 0.
type Int struct {
	Hi int64  // upper 64 bits, including the sign
	Lo uint64 // lower 64 bits
}

// FromInt64 converts a 64-bit signed integer, sign-extending into Hi.
func FromInt64(v int64) Int {
	var hi int64
	if v < 0 {
		hi = -1
	}
	return Int{Hi: hi, Lo: uint64(v)}
}

// FromUint64 converts a 64-bit unsigned integer.
func FromUint64(v uint64) Int {
	return Int{Lo: v}
}

// Add returns a+b with wrap-around two's-complement semantics.
func Add(a, b Int) Int {
	lo, carry := bits.Add64(a.Lo, b.Lo, 0)
	hi := uint64(a.Hi) + uint64(b.Hi) + carry
	return Int{Hi: int64(hi), Lo: lo}
}

// Sub returns a-b with wrap-around two's-complement semantics.
func Sub(a, b Int) Int {
	lo, borrow := bits.Sub64(a.Lo, b.Lo, 0)
	hi := uint64(a.Hi) - uint64(b.Hi) - borrow
	return Int{Hi: int64(hi), Lo: lo}
}

// AddInt64 returns a + v where v is sign-extended to 128 bits.
// This is the hot operation of the full-width SUM kernel.
func AddInt64(a Int, v int64) Int {
	var vh uint64
	if v < 0 {
		vh = ^uint64(0)
	}
	lo, carry := bits.Add64(a.Lo, uint64(v), 0)
	hi := uint64(a.Hi) + vh + carry
	return Int{Hi: int64(hi), Lo: lo}
}

// Neg returns -a.
func Neg(a Int) Int {
	return Sub(Int{}, a)
}

// Cmp returns -1, 0 or +1 when a is smaller, equal or larger than b.
func Cmp(a, b Int) int {
	if a.Hi != b.Hi {
		if a.Hi < b.Hi {
			return -1
		}
		return 1
	}
	if a.Lo != b.Lo {
		if a.Lo < b.Lo {
			return -1
		}
		return 1
	}
	return 0
}

// Sign returns -1 for negative numbers, 0 for zero and +1 for positive.
func (x Int) Sign() int {
	if x.Hi < 0 {
		return -1
	}
	if x.Hi == 0 && x.Lo == 0 {
		return 0
	}
	return 1
}

// IsInt64 reports whether x fits in a signed 64-bit integer.
func (x Int) IsInt64() bool {
	// x fits iff Hi is the sign extension of Lo's top bit.
	return x.Hi == int64(x.Lo)>>63
}

// Int64 truncates x to 64 bits. Callers should check IsInt64 first when
// the value may not fit.
func (x Int) Int64() int64 { return int64(x.Lo) }

// MulInt64 returns a*b for two 64-bit signed inputs as a 128-bit result.
func MulInt64(a, b int64) Int {
	neg := false
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
		neg = !neg
	}
	if b < 0 {
		ub = uint64(-b)
		neg = !neg
	}
	hi, lo := bits.Mul64(ua, ub)
	r := Int{Hi: int64(hi), Lo: lo}
	if neg {
		r = Neg(r)
	}
	return r
}

// Shl returns x << n for 0 <= n < 128.
func Shl(x Int, n uint) Int {
	switch {
	case n == 0:
		return x
	case n < 64:
		return Int{Hi: x.Hi<<n | int64(x.Lo>>(64-n)), Lo: x.Lo << n}
	case n < 128:
		return Int{Hi: int64(x.Lo << (n - 64)), Lo: 0}
	default:
		return Int{}
	}
}

// Shr returns x >> n (arithmetic shift) for 0 <= n < 128.
func Shr(x Int, n uint) Int {
	switch {
	case n == 0:
		return x
	case n < 64:
		return Int{Hi: x.Hi >> n, Lo: x.Lo>>n | uint64(x.Hi)<<(64-n)}
	case n < 128:
		return Int{Hi: x.Hi >> 63, Lo: uint64(x.Hi >> (n - 64))}
	default:
		return Int{Hi: x.Hi >> 63, Lo: uint64(x.Hi >> 63)}
	}
}

// String renders x in decimal.
func (x Int) String() string {
	if x.Hi == 0 {
		return fmt.Sprintf("%d", x.Lo)
	}
	if x.Hi == -1 && int64(x.Lo) < 0 {
		return fmt.Sprintf("%d", int64(x.Lo))
	}
	neg := false
	v := x
	if v.Sign() < 0 {
		neg = true
		v = Neg(v)
	}
	// Repeated division by 1e19 (largest power of ten below 2^64).
	const chunk = 10_000_000_000_000_000_000
	var parts []uint64
	for v.Hi != 0 || v.Lo != 0 {
		var rem uint64
		v, rem = divmodSmall(v, chunk)
		parts = append(parts, rem)
	}
	if len(parts) == 0 {
		return "0"
	}
	s := fmt.Sprintf("%d", parts[len(parts)-1])
	for i := len(parts) - 2; i >= 0; i-- {
		s += fmt.Sprintf("%019d", parts[i])
	}
	if neg {
		s = "-" + s
	}
	return s
}

// divmodSmall divides a non-negative 128-bit value by a 64-bit divisor.
func divmodSmall(x Int, d uint64) (Int, uint64) {
	hiQ := uint64(x.Hi) / d
	hiR := uint64(x.Hi) % d
	loQ, rem := bits.Div64(hiR, x.Lo, d)
	return Int{Hi: int64(hiQ), Lo: loQ}, rem
}
