package i128

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func big128(x Int) *big.Int {
	b := new(big.Int).SetInt64(x.Hi)
	b.Lsh(b, 64)
	return b.Add(b, new(big.Int).SetUint64(x.Lo))
}

func TestFromInt64(t *testing.T) {
	cases := []int64{0, 1, -1, 42, -42, math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		x := FromInt64(v)
		if !x.IsInt64() || x.Int64() != v {
			t.Errorf("FromInt64(%d) round-trip failed: %+v", v, x)
		}
		if got := big128(x); got.Int64() != v {
			t.Errorf("FromInt64(%d) = %s", v, got)
		}
	}
}

func TestAddMatchesBig(t *testing.T) {
	f := func(ah, bh int64, al, bl uint64) bool {
		a, b := Int{ah, al}, Int{bh, bl}
		got := big128(Add(a, b))
		want := new(big.Int).Add(big128(a), big128(b))
		mod128(want)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubMatchesBig(t *testing.T) {
	f := func(ah, bh int64, al, bl uint64) bool {
		a, b := Int{ah, al}, Int{bh, bl}
		got := big128(Sub(a, b))
		want := new(big.Int).Sub(big128(a), big128(b))
		mod128(want)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddInt64MatchesAdd(t *testing.T) {
	f := func(ah int64, al uint64, v int64) bool {
		a := Int{ah, al}
		return AddInt64(a, v) == Add(a, FromInt64(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulInt64(t *testing.T) {
	f := func(a, b int64) bool {
		got := big128(MulInt64(a, b))
		want := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmp(t *testing.T) {
	f := func(ah, bh int64, al, bl uint64) bool {
		a, b := Int{ah, al}, Int{bh, bl}
		return Cmp(a, b) == big128(a).Cmp(big128(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegSign(t *testing.T) {
	if Neg(FromInt64(5)).Sign() != -1 {
		t.Error("Neg(5) should be negative")
	}
	if Neg(FromInt64(-5)) != FromInt64(5) {
		t.Error("Neg(-5) != 5")
	}
	if (Int{}).Sign() != 0 {
		t.Error("zero sign")
	}
}

func TestShifts(t *testing.T) {
	f := func(h int64, l uint64, nRaw uint8) bool {
		n := uint(nRaw) % 128
		x := Int{h, l}
		wantL := new(big.Int).Lsh(big128(x), n)
		mod128(wantL)
		if big128(Shl(x, n)).Cmp(wantL) != 0 {
			return false
		}
		wantR := new(big.Int).Rsh(big128(x), n)
		return big128(Shr(x, n)).Cmp(wantR) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		x    Int
		want string
	}{
		{FromInt64(0), "0"},
		{FromInt64(12345), "12345"},
		{FromInt64(-12345), "-12345"},
		{MulInt64(math.MaxInt64, 10), "92233720368547758070"},
		{Neg(MulInt64(math.MaxInt64, 10)), "-92233720368547758070"},
	}
	for _, c := range cases {
		if got := c.x.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.x, got, c.want)
		}
	}
}

func TestStringMatchesBig(t *testing.T) {
	f := func(h int64, l uint64) bool {
		x := Int{h, l}
		return x.String() == big128(x).String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mod128 reduces a big.Int into the signed 128-bit range, two's complement.
func mod128(b *big.Int) {
	mod := new(big.Int).Lsh(big.NewInt(1), 128)
	b.Mod(b, mod) // now in [0, 2^128)
	half := new(big.Int).Lsh(big.NewInt(1), 127)
	if b.Cmp(half) >= 0 {
		b.Sub(b, mod)
	}
}
