// Package ingest is the write path of the engine: CREATE TABLE, INSERT
// and COPY execute here. Each table gets a write-ahead log with group
// commit (one fsync covers every Insert waiting in line), committed rows
// are published to the shared catalog as copy-on-write table versions
// (readers pin a storage.Snapshot and never see a half-appended block),
// and a background sealer cuts full 64Ki-row blocks — zone maps and
// per-block string dictionaries included — and checkpoints them to disk
// in the OCHT binary format. On startup the engine replays each WAL past
// its checkpoint, truncating torn tails, so an unclean shutdown loses at
// most the commits the fsync policy had not yet made durable.
package ingest

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ocht/internal/sql"
	"ocht/internal/storage"
)

// FsyncPolicy says when WAL writes reach stable storage.
type FsyncPolicy uint8

const (
	// FsyncAlways syncs once per commit group before acknowledging.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval acknowledges after the write and syncs on a timer.
	FsyncInterval
	// FsyncNone leaves syncing to the OS page cache.
	FsyncNone
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNone:
		return "none"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", uint8(p))
}

// ParseFsyncPolicy parses "always", "interval" or "none".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("ingest: unknown fsync policy %q (want always, interval or none)", s)
}

// Config tunes an Engine. The zero value is a safe default.
type Config struct {
	Fsync        FsyncPolicy
	SyncInterval time.Duration // FsyncInterval period; default 50ms
	SealInterval time.Duration // sealer wake period; default 250ms
	// DisableSealer stops the background goroutine; tests drive sealing
	// deterministically through Flush instead.
	DisableSealer bool
	// Logf receives recovery and background-error messages. Nil discards.
	Logf func(format string, args ...interface{})
}

// ErrClosed is returned by writes against a closed engine.
var ErrClosed = errors.New("ingest: engine is closed")

// tableState is the per-table write state. The WAL writer goroutine is
// the only appender; mu guards the fields shared with the sealer and
// with readers of Stats.
type tableState struct {
	name   string
	schema []sql.ColDef

	mu            sync.Mutex
	sealed        *storage.Table // immutable prefix of full blocks
	sealedRows    int64
	persistedRows int64 // prefix of sealedRows already in the .ocht file
	tail          []Row // rows after the sealed prefix
	walErr        error // sticky WAL failure; poisons further writes

	reqCh     chan *walReq
	compactCh chan struct{}
	flushCh   chan chan error

	// Owned by the WAL writer goroutine (and Close, after it exits).
	wal     *os.File
	walPath string
	dirty   bool

	persistMu sync.Mutex // serializes checkpoint writes (sealer vs Flush/Close)
}

func newTableState(name string, schema []sql.ColDef, wal *os.File, walPath string) *tableState {
	return &tableState{
		name:      name,
		schema:    schema,
		reqCh:     make(chan *walReq, maxGroup),
		compactCh: make(chan struct{}, 1),
		flushCh:   make(chan chan error),
		wal:       wal,
		walPath:   walPath,
	}
}

// Engine owns a data directory and executes write statements against the
// shared catalog.
type Engine struct {
	dir string
	cat *storage.Catalog
	cfg Config

	mu sync.RWMutex
	//ocht:guarded-by mu
	tables map[string]*tableState
	//ocht:guarded-by mu
	closed bool

	sealCh    chan struct{}
	stopCh    chan struct{}
	wg        sync.WaitGroup
	abandoned atomic.Bool

	rowsIngested   atomic.Int64
	commitGroups   atomic.Int64
	commitReqs     atomic.Int64
	walSyncs       atomic.Int64
	walBytes       atomic.Int64
	walCompactions atomic.Int64
	blocksSealed   atomic.Int64
	checkpoints    atomic.Int64
	recoveredRows  atomic.Int64
}

var identRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]{0,63}$`)

// Open creates or recovers the ingest state in dir, registering every
// recovered table (checkpoint plus replayed WAL tail) in cat.
func Open(dir string, cat *storage.Catalog, cfg Config) (*Engine, error) {
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = 50 * time.Millisecond
	}
	if cfg.SealInterval <= 0 {
		cfg.SealInterval = 250 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	if err := os.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
		return nil, err
	}
	e := &Engine{
		dir:    dir,
		cat:    cat,
		cfg:    cfg,
		tables: map[string]*tableState{},
		sealCh: make(chan struct{}, 1),
		stopCh: make(chan struct{}),
	}
	names, err := e.scanTables()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if err := e.recoverTable(name); err != nil {
			return nil, fmt.Errorf("ingest: recover %s: %w", name, err)
		}
	}
	if !cfg.DisableSealer {
		e.wg.Add(1)
		go e.runSealer()
	}
	return e, nil
}

// Dir returns the data directory.
func (e *Engine) Dir() string { return e.dir }

func (e *Engine) walDir() string { return filepath.Join(e.dir, "wal") }

// scanTables lists table names present on disk: checkpoint files and/or
// WAL files.
func (e *Engine) scanTables() ([]string, error) {
	seen := map[string]bool{}
	ents, err := os.ReadDir(e.dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range ents {
		if n, ok := strings.CutSuffix(ent.Name(), ".ocht"); ok && identRe.MatchString(n) {
			seen[n] = true
		}
	}
	ents, err = os.ReadDir(e.walDir())
	if err != nil {
		return nil, err
	}
	for _, ent := range ents {
		if n, ok := strings.CutSuffix(ent.Name(), ".wal"); ok && identRe.MatchString(n) {
			seen[n] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// recoverTable rebuilds one table: load the checkpoint, replay the WAL
// past it (clipping records the checkpoint already covers via their
// startRow), truncate any torn tail, publish, and start the writer.
func (e *Engine) recoverTable(name string) error {
	ochtPath := filepath.Join(e.dir, name+".ocht")
	walPath := filepath.Join(e.walDir(), name+".wal")

	var sealed *storage.Table
	persisted := int64(0)
	if f, err := os.Open(ochtPath); err == nil {
		t, rerr := storage.ReadTable(bufio.NewReaderSize(f, 1<<20))
		_ = f.Close() // read-only descriptor; ReadTable's error is the signal
		if rerr != nil {
			return fmt.Errorf("read %s: %w", ochtPath, rerr)
		}
		if t.Name != name {
			return fmt.Errorf("%s holds table %q", ochtPath, t.Name)
		}
		sealed = t
		persisted = int64(t.Rows())
	} else if !os.IsNotExist(err) {
		return err
	}

	var schema []sql.ColDef
	var recs []insertRec
	if fi, err := os.Stat(walPath); err == nil {
		var keep int64
		schema, recs, keep, err = readWAL(walPath)
		if err != nil {
			return err
		}
		if keep < fi.Size() {
			e.cfg.Logf("ingest: %s: truncating torn WAL at byte %d (file was %d)", name, keep, fi.Size())
			if err := os.Truncate(walPath, keep); err != nil {
				return err
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	switch {
	case schema == nil && sealed == nil:
		e.cfg.Logf("ingest: %s: no schema record and no checkpoint; skipping", name)
		return nil
	case schema == nil:
		schema = schemaFromTable(sealed)
	case sealed != nil:
		if err := checkSchema(schema, sealed); err != nil {
			return err
		}
	}
	if sealed == nil {
		sealed = buildTable(name, schema, nil)
	}

	var tail []Row
	next := persisted
	for _, rec := range recs {
		end := rec.startRow + int64(len(rec.rows))
		if end <= persisted {
			continue // fully covered by the checkpoint
		}
		rows := rec.rows
		start := rec.startRow
		if start < persisted {
			rows = rows[persisted-start:]
			start = persisted
		}
		if start != next {
			e.cfg.Logf("ingest: %s: WAL gap at row %d (expected %d); dropping later records", name, start, next)
			break
		}
		tail = append(tail, rows...)
		next = end
	}
	e.recoveredRows.Add(int64(len(tail)))

	wf, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if fi, err := wf.Stat(); err == nil && fi.Size() == 0 {
		// Checkpoint-only table (or empty WAL): seed the log so future
		// appends have a schema record in front of them.
		var buf bytes.Buffer
		buf.WriteString(walMagic)
		appendRecord(&buf, walSchema, encodeSchema(schema))
		if _, err := wf.Write(buf.Bytes()); err != nil {
			_ = wf.Close()
			return err
		}
		if err := wf.Sync(); err != nil {
			_ = wf.Close()
			return err
		}
	}

	st := newTableState(name, schema, wf, walPath)
	st.sealed = sealed
	st.sealedRows = persisted
	st.persistedRows = persisted
	st.tail = tail
	//ocht:allow(guardedby) recovery runs from Open before the engine is shared with any other goroutine
	e.tables[name] = st
	e.cat.Add(storage.ExtendTable(sealed, buildTable(name, schema, tail)))
	e.wg.Add(1)
	go e.runWAL(st)
	return nil
}

// CreateTable registers a new writable table. The schema record is
// fsynced to the WAL before the (empty) table becomes visible, so a
// created table survives any crash.
func (e *Engine) CreateTable(name string, cols []sql.ColDef, ifNotExists bool) error {
	if !identRe.MatchString(name) {
		return fmt.Errorf("ingest: invalid table name %q", name)
	}
	if len(cols) == 0 {
		return fmt.Errorf("ingest: table %s needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, cd := range cols {
		if !identRe.MatchString(cd.Name) {
			return fmt.Errorf("ingest: invalid column name %q", cd.Name)
		}
		if seen[cd.Name] {
			return fmt.Errorf("ingest: duplicate column %s", cd.Name)
		}
		seen[cd.Name] = true
		if !validColType(cd.Type) {
			return fmt.Errorf("ingest: column %s has unsupported type %s", cd.Name, cd.Type)
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if _, ok := e.tables[name]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("ingest: table %s already exists", name)
	}
	if _, ok := e.cat.TableOK(name); ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("ingest: table %s already exists and is read-only", name)
	}

	walPath := filepath.Join(e.walDir(), name+".wal")
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(walMagic)
	appendRecord(&buf, walSchema, encodeSchema(cols))
	if _, err := f.Write(buf.Bytes()); err == nil {
		err = f.Sync()
	}
	if err != nil {
		_ = f.Close()
		os.Remove(walPath)
		return err
	}
	if err := syncDir(e.walDir()); err != nil {
		// The WAL's directory entry may not be durable; a created table
		// that could vanish on crash must not be acknowledged.
		_ = f.Close()
		os.Remove(walPath)
		return err
	}

	schema := append([]sql.ColDef(nil), cols...)
	st := newTableState(name, schema, f, walPath)
	st.sealed = buildTable(name, schema, nil)
	e.tables[name] = st
	e.cat.Add(st.sealed)
	e.wg.Add(1)
	go e.runWAL(st)
	return nil
}

// Schema returns the column definitions of a writable table.
func (e *Engine) Schema(table string) ([]sql.ColDef, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st, ok := e.tables[table]
	if !ok {
		return nil, false
	}
	return st.schema, true
}

// Managed reports whether the engine owns (can write to) the table.
func (e *Engine) Managed(table string) bool {
	_, ok := e.Schema(table)
	return ok
}

// Insert appends rows through the WAL. It returns once the commit group
// holding the rows is durable (per the fsync policy) and published —
// the next query, on any connection, sees them.
func (e *Engine) Insert(table string, rows []Row) (int64, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return 0, ErrClosed
	}
	st, ok := e.tables[table]
	if !ok {
		e.mu.RUnlock()
		return 0, e.tableErr(table)
	}
	for i, r := range rows {
		if err := validateRow(st.schema, r); err != nil {
			e.mu.RUnlock()
			return 0, fmt.Errorf("ingest: %s row %d: %w", table, i, err)
		}
	}
	req := &walReq{rows: rows, done: make(chan error, 1)}
	// Send under the read lock: Close closes reqCh only after taking the
	// write lock, so the channel cannot close mid-send.
	st.reqCh <- req
	e.mu.RUnlock()
	if err := <-req.done; err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

func (e *Engine) tableErr(table string) error {
	if _, ok := e.cat.TableOK(table); ok {
		return fmt.Errorf("ingest: table %s is read-only", table)
	}
	return fmt.Errorf("ingest: unknown table %s", table)
}

// Apply executes one parsed write statement and returns the number of
// rows it ingested.
func (e *Engine) Apply(stmt sql.Statement) (int64, error) {
	switch s := stmt.(type) {
	case *sql.CreateTableStmt:
		return 0, e.CreateTable(s.Name, s.Cols, s.IfNotExists)
	case *sql.InsertStmt:
		rows, err := e.coerceInsert(s)
		if err != nil {
			return 0, err
		}
		return e.Insert(s.Table, rows)
	case *sql.CopyStmt:
		delim := s.Delimiter
		if delim == 0 {
			delim = ','
		}
		return e.CopyCSV(s.Table, s.Path, s.Header, delim)
	}
	return 0, fmt.Errorf("ingest: %T is not a write statement", stmt)
}

// coerceInsert maps an INSERT's VALUES onto the table schema: explicit
// column lists may reorder or omit columns; omitted columns get NULL.
func (e *Engine) coerceInsert(s *sql.InsertStmt) ([]Row, error) {
	schema, ok := e.Schema(s.Table)
	if !ok {
		return nil, e.tableErr(s.Table)
	}
	colAt := make([]int, 0, len(schema)) // VALUES position -> schema index
	if s.Columns == nil {
		for i := range schema {
			colAt = append(colAt, i)
		}
	} else {
		used := map[int]bool{}
		for _, name := range s.Columns {
			idx := -1
			for i, cd := range schema {
				if cd.Name == name {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("ingest: table %s has no column %s", s.Table, name)
			}
			if used[idx] {
				return nil, fmt.Errorf("ingest: column %s listed twice", name)
			}
			used[idx] = true
			colAt = append(colAt, idx)
		}
	}
	rows := make([]Row, 0, len(s.Rows))
	for ri, vals := range s.Rows {
		if len(vals) != len(colAt) {
			return nil, fmt.Errorf("ingest: row %d has %d values, want %d", ri, len(vals), len(colAt))
		}
		row := make(Row, len(schema))
		for i := range row {
			row[i] = Datum{Null: true}
		}
		for vi, n := range vals {
			d, err := datumFromNode(n, schema[colAt[vi]])
			if err != nil {
				return nil, fmt.Errorf("ingest: row %d: %w", ri, err)
			}
			row[colAt[vi]] = d
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CopyCSV bulk-loads a server-local CSV file through the same commit
// path as Insert, in batches. Rows committed before an error stay
// committed; the returned count says how many made it in.
func (e *Engine) CopyCSV(table, path string, header bool, delim rune) (int64, error) {
	schema, ok := e.Schema(table)
	if !ok {
		return 0, e.tableErr(table)
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReaderSize(f, 1<<20))
	r.Comma = delim
	r.ReuseRecord = true

	colAt := make([]int, 0, len(schema)) // CSV field -> schema index
	if header {
		rec, err := r.Read()
		if err != nil {
			return 0, fmt.Errorf("ingest: %s: reading header: %w", path, err)
		}
		for _, name := range rec {
			idx := -1
			for i, cd := range schema {
				if cd.Name == name {
					idx = i
					break
				}
			}
			if idx < 0 {
				return 0, fmt.Errorf("ingest: table %s has no column %s (CSV header)", table, name)
			}
			colAt = append(colAt, idx)
		}
	} else {
		for i := range schema {
			colAt = append(colAt, i)
		}
	}
	r.FieldsPerRecord = len(colAt)

	const batchRows = 4096
	batch := make([]Row, 0, batchRows)
	var total int64
	line := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		n, err := e.Insert(table, batch)
		total += n
		batch = batch[:0]
		return err
	}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			flush()
			return total, fmt.Errorf("ingest: %s line %d: %w", path, line, err)
		}
		row := make(Row, len(schema))
		for i := range row {
			row[i] = Datum{Null: true}
		}
		for fi, cell := range rec {
			d, derr := datumFromCSV(cell, schema[colAt[fi]])
			if derr != nil {
				flush()
				return total, fmt.Errorf("ingest: %s line %d: %w", path, line, derr)
			}
			row[colAt[fi]] = d
		}
		batch = append(batch, row)
		if len(batch) == batchRows {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	return total, flush()
}

// Flush forces durability and a checkpoint regardless of policy: every
// pending commit group drains, the WALs are fsynced, full blocks are
// sealed and the sealed prefixes are persisted. Tests and benchmarks
// use it to reach a deterministic on-disk state.
func (e *Engine) Flush() error {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	sts := make([]*tableState, 0, len(e.tables))
	chans := make([]chan error, 0, len(e.tables))
	for _, st := range e.tables {
		ch := make(chan error, 1)
		// Safe for the same reason as Insert's send: the writer stays
		// alive until Close takes the write lock.
		st.flushCh <- ch
		sts = append(sts, st)
		chans = append(chans, ch)
	}
	e.mu.RUnlock()
	var firstErr error
	for _, ch := range chans {
		if err := <-ch; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, st := range sts {
		if err := e.sealTable(st); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close drains pending commits, stops the background goroutines and
// writes a final checkpoint of all sealed blocks. Rows still in tails
// remain durable in the WALs and replay on the next Open.
func (e *Engine) Close() error {
	sts, ok := e.shutdown()
	if !ok {
		return nil
	}
	var firstErr error
	for _, st := range sts {
		if err := e.sealTable(st); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Abandon stops the engine without flushing, syncing or checkpointing —
// it simulates a crash for recovery tests. WAL files are left exactly as
// the OS last saw them.
func (e *Engine) Abandon() {
	e.abandoned.Store(true)
	e.shutdown()
}

func (e *Engine) shutdown() ([]*tableState, bool) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, false
	}
	e.closed = true
	sts := make([]*tableState, 0, len(e.tables))
	for _, st := range e.tables {
		sts = append(sts, st)
	}
	e.mu.Unlock()
	close(e.stopCh)
	for _, st := range sts {
		close(st.reqCh)
	}
	e.wg.Wait()
	return sts, true
}

// Stats is a point-in-time snapshot of ingest counters, shaped for the
// server's /metrics endpoint.
type Stats struct {
	Tables         int   `json:"tables"`
	RowsIngested   int64 `json:"rows_ingested"`
	CommitGroups   int64 `json:"commit_groups"`
	CommitRequests int64 `json:"commit_requests"`
	WALSyncs       int64 `json:"wal_syncs"`
	WALBytes       int64 `json:"wal_bytes"`
	WALCompactions int64 `json:"wal_compactions"`
	BlocksSealed   int64 `json:"blocks_sealed"`
	Checkpoints    int64 `json:"checkpoints"`
	RecoveredRows  int64 `json:"recovered_rows"`
	TailRows       int64 `json:"tail_rows"`
}

// Stats returns current counter values.
func (e *Engine) Stats() Stats {
	s := Stats{
		RowsIngested:   e.rowsIngested.Load(),
		CommitGroups:   e.commitGroups.Load(),
		CommitRequests: e.commitReqs.Load(),
		WALSyncs:       e.walSyncs.Load(),
		WALBytes:       e.walBytes.Load(),
		WALCompactions: e.walCompactions.Load(),
		BlocksSealed:   e.blocksSealed.Load(),
		Checkpoints:    e.checkpoints.Load(),
		RecoveredRows:  e.recoveredRows.Load(),
	}
	e.mu.RLock()
	s.Tables = len(e.tables)
	sts := make([]*tableState, 0, len(e.tables))
	for _, st := range e.tables {
		sts = append(sts, st)
	}
	e.mu.RUnlock()
	for _, st := range sts {
		st.mu.Lock()
		s.TailRows += int64(len(st.tail))
		st.mu.Unlock()
	}
	return s
}
