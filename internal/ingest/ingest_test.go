package ingest_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/ingest"
	"ocht/internal/sql"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

func openEngine(t *testing.T, dir string, cfg ingest.Config) (*ingest.Engine, *storage.Catalog) {
	t.Helper()
	cat := storage.NewCatalog()
	eng, err := ingest.Open(dir, cat, cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return eng, cat
}

// query renders a result set as canonical sorted strings, so two table
// states can be compared for exact equality.
func query(t *testing.T, tabs sql.Tables, q string) []string {
	t.Helper()
	res, err := sql.Run(q, tabs, exec.NewQCtx(core.All()))
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = fmt.Sprint(v)
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return rows
}

func apply(t *testing.T, eng *ingest.Engine, stmt string) int64 {
	t.Helper()
	s, err := sql.ParseStatement(stmt)
	if err != nil {
		t.Fatalf("parse %q: %v", stmt, err)
	}
	n, err := eng.Apply(s)
	if err != nil {
		t.Fatalf("apply %q: %v", stmt, err)
	}
	return n
}

func eq(t *testing.T, got, want []string, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %q, want %q", label, i, got[i], want[i])
		}
	}
}

func TestApplyCreateInsertSelect(t *testing.T) {
	eng, cat := openEngine(t, t.TempDir(), ingest.Config{})
	defer eng.Close()

	apply(t, eng, `CREATE TABLE ev (id BIGINT NOT NULL, kind TEXT, score DOUBLE)`)
	v0 := cat.Version()
	if n := apply(t, eng, `INSERT INTO ev VALUES (1, 'click', 0.5), (2, 'view', 1.5), (3, NULL, 2.0)`); n != 3 {
		t.Fatalf("inserted %d rows, want 3", n)
	}
	if cat.Version() == v0 {
		t.Fatal("catalog version did not change after INSERT")
	}
	eq(t, query(t, cat, `SELECT COUNT(*), SUM(id) FROM ev`), []string{"3|6"}, "count/sum")
	eq(t, query(t, cat, `SELECT kind, COUNT(*) FROM ev WHERE kind IS NOT NULL GROUP BY kind`),
		[]string{"click|1", "view|1"}, "group by string")

	// Column-list insert: omitted columns become NULL.
	apply(t, eng, `INSERT INTO ev (score, id) VALUES (9.5, 10)`)
	eq(t, query(t, cat, `SELECT COUNT(*) FROM ev WHERE kind IS NULL`), []string{"2"}, "null kinds")
	eq(t, query(t, cat, `SELECT COUNT(*) FROM ev WHERE score >= 1.5`), []string{"3"}, "score filter")

	if !eng.Managed("ev") || eng.Managed("nope") {
		t.Fatal("Managed() wrong")
	}
}

func TestWriteErrors(t *testing.T) {
	eng, cat := openEngine(t, t.TempDir(), ingest.Config{})
	defer eng.Close()

	// A catalog table the engine does not own is read-only.
	c := storage.NewColumn("x", vec.I64, false)
	c.AppendInt(1)
	ro := storage.NewTable("frozen", c)
	ro.Seal()
	cat.Add(ro)

	apply(t, eng, `CREATE TABLE t (a TINYINT NOT NULL, b TEXT)`)
	bad := []string{
		`INSERT INTO nosuch VALUES (1)`,
		`INSERT INTO frozen VALUES (1)`,
		`CREATE TABLE t (a INT)`,
		`CREATE TABLE frozen (a INT)`,
		`INSERT INTO t VALUES (NULL, 'x')`,   // NULL into NOT NULL
		`INSERT INTO t VALUES (300, 'x')`,    // out of TINYINT range
		`INSERT INTO t VALUES (1, 2)`,        // int into TEXT
		`INSERT INTO t VALUES ('y', 'x')`,    // string into TINYINT
		`INSERT INTO t (a) VALUES (1, 'x')`,  // arity vs column list
		`INSERT INTO t (a, a) VALUES (1, 2)`, // duplicate column
		`INSERT INTO t (zz) VALUES (1)`,      // unknown column
		`COPY nosuch FROM 'x.csv'`,
	}
	for _, q := range bad {
		s, err := sql.ParseStatement(q)
		if err != nil {
			continue // rejected even earlier, at parse time
		}
		if _, err := eng.Apply(s); err == nil {
			t.Errorf("Apply(%q): expected error", q)
		}
	}
	// Errors must not have committed anything. (A global aggregate over
	// an empty table yields zero groups in this engine, hence no rows.)
	eq(t, query(t, cat, `SELECT COUNT(*) FROM t`), []string{}, "t empty")

	if err := apply(t, eng, `CREATE TABLE IF NOT EXISTS t (a INT)`); err != 0 {
		t.Fatal("IF NOT EXISTS should no-op")
	}
}

// TestSnapshotOracle is the concurrent ingest+query acceptance test:
// writers append batches while readers pin catalog snapshots. A pinned
// snapshot must stay frozen, every visible per-writer count must be a
// multiple of the batch size (commits are atomic), and after the writers
// join the catalog must hold exactly the committed rows.
func TestSnapshotOracle(t *testing.T) {
	eng, cat := openEngine(t, t.TempDir(), ingest.Config{
		Fsync:        ingest.FsyncNone,
		SealInterval: 10 * time.Millisecond,
	})
	defer eng.Close()
	apply(t, eng, `CREATE TABLE t (w BIGINT NOT NULL, v BIGINT NOT NULL)`)

	const (
		writers   = 4
		batches   = 30
		batchSize = 20
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := make([]ingest.Row, batchSize)
				for i := range rows {
					rows[i] = ingest.Row{ingest.Int(int64(w)), ingest.Int(int64(b*batchSize + i))}
				}
				if _, err := eng.Insert("t", rows); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	stopRead := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				snap := cat.Snapshot()
				before := query(t, snap, `SELECT w, COUNT(*) FROM t GROUP BY w`)
				for _, row := range before {
					var w, n int64
					if _, err := fmt.Sscanf(row, "%d|%d", &w, &n); err != nil {
						t.Errorf("bad row %q", row)
						return
					}
					if n%batchSize != 0 {
						t.Errorf("writer %d shows %d rows: torn batch visible", w, n)
						return
					}
				}
				time.Sleep(time.Millisecond)
				// The pinned snapshot must not have moved.
				after := query(t, snap, `SELECT w, COUNT(*) FROM t GROUP BY w`)
				if strings.Join(before, ";") != strings.Join(after, ";") {
					t.Errorf("snapshot moved:\nbefore %v\nafter  %v", before, after)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stopRead)
	rg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := int64(writers * batches * batchSize)
	perWriter := int64(batches * batchSize)
	sumV := int64(writers) * (perWriter - 1) * perWriter / 2
	eq(t, query(t, cat, `SELECT COUNT(*), SUM(v) FROM t`),
		[]string{fmt.Sprintf("%d|%d", total, sumV)}, "post-commit totals")
	want := make([]string, writers)
	for w := 0; w < writers; w++ {
		want[w] = fmt.Sprintf("%d|%d", w, perWriter)
	}
	sort.Strings(want)
	eq(t, query(t, cat, `SELECT w, COUNT(*) FROM t GROUP BY w`), want, "per-writer counts")
}

// oracleQueries fingerprint a table state for recovery comparisons.
func oracleTP(t *testing.T, tabs sql.Tables) []string {
	t.Helper()
	var out []string
	for _, q := range []string{
		`SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM tp`,
		`SELECT tag, COUNT(*), SUM(v) FROM tp GROUP BY tag`,
		`SELECT COUNT(*) FROM tp WHERE s IS NULL`,
	} {
		out = append(out, strings.Join(query(t, tabs, q), ";"))
	}
	return out
}

func fillTP(t *testing.T, eng *ingest.Engine, start, n int) {
	t.Helper()
	const batch = 8192
	tags := []string{"alpha", "beta", "gamma"}
	for lo := start; lo < start+n; lo += batch {
		hi := lo + batch
		if hi > start+n {
			hi = start + n
		}
		rows := make([]ingest.Row, 0, hi-lo)
		for i := lo; i < hi; i++ {
			r := ingest.Row{ingest.Int(int64(i)), ingest.Str(tags[i%len(tags)]), ingest.Float(float64(i) / 2)}
			if i%7 == 0 {
				r[2] = ingest.Null()
			}
			rows = append(rows, r)
		}
		if _, err := eng.Insert("tp", rows); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
}

const createTP = `CREATE TABLE tp (v BIGINT NOT NULL, tag TEXT NOT NULL, s DOUBLE)`

// TestKillRecover: ingest across a block boundary, checkpoint some of
// it, keep writing, then abandon the engine without any shutdown work (a
// simulated crash). Reopening must replay the WAL past the checkpoint
// and yield byte-identical query results.
func TestKillRecover(t *testing.T) {
	dir := t.TempDir()
	eng, cat := openEngine(t, dir, ingest.Config{Fsync: ingest.FsyncAlways, DisableSealer: true})
	apply(t, eng, createTP)

	fillTP(t, eng, 0, storage.BlockRows+500)
	if err := eng.Flush(); err != nil { // seals one full block, checkpoints it
		t.Fatalf("flush: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "tp.ocht")); err != nil {
		t.Fatalf("no checkpoint file: %v", err)
	}
	fillTP(t, eng, storage.BlockRows+500, 1234) // lives only in the WAL

	want := oracleTP(t, cat)
	st := eng.Stats()
	if st.BlocksSealed != 1 || st.Checkpoints == 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
	eng.Abandon() // crash: no final checkpoint, no WAL compaction

	eng2, cat2 := openEngine(t, dir, ingest.Config{Fsync: ingest.FsyncAlways, DisableSealer: true})
	defer eng2.Close()
	eq(t, oracleTP(t, cat2), want, "post-recovery oracle")
	if got := eng2.Stats().RecoveredRows; got < 1234 {
		t.Fatalf("RecoveredRows = %d, want >= 1234", got)
	}

	// The recovered table keeps accepting writes at the right row offset.
	fillTP(t, eng2, storage.BlockRows+1734, 100)
	eq(t, query(t, cat2, `SELECT COUNT(*) FROM tp`),
		[]string{fmt.Sprint(storage.BlockRows + 1834)}, "post-recovery insert")
}

// TestTornWALRecovery corrupts the log the way a crash mid-write does:
// once with a truncated trailing record, once with a flipped byte. Both
// must recover every record before the damage — loudly, never a panic.
func TestTornWALRecovery(t *testing.T) {
	dir := t.TempDir()
	eng, cat := openEngine(t, dir, ingest.Config{Fsync: ingest.FsyncAlways, DisableSealer: true})
	apply(t, eng, `CREATE TABLE t (v BIGINT NOT NULL)`)
	for b := 0; b < 10; b++ {
		rows := make([]ingest.Row, 10)
		for i := range rows {
			rows[i] = ingest.Row{ingest.Int(int64(b*10 + i))}
		}
		if _, err := eng.Insert("t", rows); err != nil {
			t.Fatal(err)
		}
	}
	full := query(t, cat, `SELECT COUNT(*), SUM(v) FROM t`)
	eng.Abandon()

	walPath := filepath.Join(dir, "wal", "t.wal")
	good, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Torn tail: a record header claiming more payload than exists.
	torn := append(append([]byte{}, good...), 2, 0xff, 0, 0, 0, 1, 2, 3, 4, 9, 9)
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	eng2, cat2 := openEngine(t, dir, ingest.Config{DisableSealer: true})
	eq(t, query(t, cat2, `SELECT COUNT(*), SUM(v) FROM t`), full, "torn tail keeps all commits")
	eng2.Abandon()
	if fi, err := os.Stat(walPath); err != nil || fi.Size() != int64(len(good)) {
		t.Fatalf("WAL not truncated back to %d bytes: %v %v", len(good), fi.Size(), err)
	}

	// Flipped byte inside the last record: that commit is lost, the 90
	// before it survive.
	flip := append([]byte{}, good...)
	flip[len(flip)-5] ^= 0x40
	if err := os.WriteFile(walPath, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	eng3, cat3 := openEngine(t, dir, ingest.Config{DisableSealer: true})
	defer eng3.Abandon()
	eq(t, query(t, cat3, `SELECT COUNT(*), MAX(v) FROM t`), []string{"90|89"}, "flip drops last commit only")

	// A destroyed header is a hard error, not a silent empty table.
	if err := os.WriteFile(walPath, []byte("not a wal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ingest.Open(dir, storage.NewCatalog(), ingest.Config{DisableSealer: true}); err == nil {
		t.Fatal("Open with corrupt WAL header should fail")
	}
}

func TestCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	eng, cat := openEngine(t, dir, ingest.Config{Fsync: ingest.FsyncNone, DisableSealer: true})
	apply(t, eng, createTP)
	fillTP(t, eng, 0, 2*storage.BlockRows+100)

	walPath := filepath.Join(dir, "wal", "tp.wal")
	before, _ := os.Stat(walPath)
	if err := eng.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	want := oracleTP(t, cat)
	st := eng.Stats()
	if st.BlocksSealed != 2 {
		t.Fatalf("BlocksSealed = %d, want 2", st.BlocksSealed)
	}

	// Compaction runs in the WAL writer shortly after the checkpoint:
	// the log shrinks to schema + unsealed tail.
	// The counter increments after the rename that shrinks the file, so
	// wait for both rather than racing the writer goroutine between them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		fi, err := os.Stat(walPath)
		if err == nil && fi.Size() < before.Size()/4 && eng.Stats().WALCompactions > 0 {
			break
		}
		if time.Now().After(deadline) {
			var size int64
			if fi != nil {
				size = fi.Size()
			}
			t.Fatalf("WAL never compacted: %d -> %d bytes, %d compactions counted",
				before.Size(), size, eng.Stats().WALCompactions)
		}
		time.Sleep(5 * time.Millisecond)
	}
	eq(t, oracleTP(t, cat), want, "compaction is invisible to queries")

	// Clean shutdown + reopen from checkpoint + compacted WAL.
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	eng2, cat2 := openEngine(t, dir, ingest.Config{DisableSealer: true})
	defer eng2.Close()
	eq(t, oracleTP(t, cat2), want, "reopen after compaction")
}

// TestBackgroundSealer checks the sealer goroutine does the cutting on
// its own when the tail crosses a block boundary.
func TestBackgroundSealer(t *testing.T) {
	dir := t.TempDir()
	eng, cat := openEngine(t, dir, ingest.Config{
		Fsync:        ingest.FsyncNone,
		SealInterval: 5 * time.Millisecond,
	})
	defer eng.Close()
	apply(t, eng, createTP)
	fillTP(t, eng, 0, storage.BlockRows+10)

	deadline := time.Now().Add(10 * time.Second)
	for eng.Stats().BlocksSealed == 0 || eng.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sealer never cut and checkpointed a block: %+v", eng.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(filepath.Join(dir, "tp.ocht")); err != nil {
		t.Fatalf("sealer did not checkpoint: %v", err)
	}
	// Sealing must not change what queries see.
	eq(t, query(t, cat, `SELECT COUNT(*) FROM tp`),
		[]string{fmt.Sprint(storage.BlockRows + 10)}, "rows after sealing")
}

func TestCopyCSV(t *testing.T) {
	dir := t.TempDir()
	eng, cat := openEngine(t, dir, ingest.Config{})
	defer eng.Close()
	apply(t, eng, `CREATE TABLE m (id BIGINT NOT NULL, name TEXT, score DOUBLE)`)

	// Header maps columns by name, in any order; empty cells are NULL.
	csvPath := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(csvPath, []byte("name;id;score\nann;1;2.5\n;2;\nbob;3;9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := apply(t, eng, fmt.Sprintf(`COPY m FROM '%s' WITH HEADER DELIMITER ';'`, csvPath)); n != 3 {
		t.Fatalf("copied %d rows, want 3", n)
	}
	eq(t, query(t, cat, `SELECT COUNT(*), SUM(id) FROM m`), []string{"3|6"}, "copy totals")
	eq(t, query(t, cat, `SELECT COUNT(*) FROM m WHERE score >= 2.5`), []string{"2"}, "copy floats")
	eq(t, query(t, cat, `SELECT COUNT(*) FROM m WHERE name IS NULL`), []string{"1"}, "copy nulls")

	// Positional (no header), default comma delimiter.
	csv2 := filepath.Join(dir, "in2.csv")
	if err := os.WriteFile(csv2, []byte("10,carol,1.5\n11,dave,2.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := apply(t, eng, fmt.Sprintf(`COPY m FROM '%s'`, csv2)); n != 2 {
		t.Fatalf("copied %d rows, want 2", n)
	}
	eq(t, query(t, cat, `SELECT COUNT(*) FROM m`), []string{"5"}, "total after second copy")

	// A bad cell aborts mid-file but keeps earlier batches; the count
	// reports what committed.
	csv3 := filepath.Join(dir, "in3.csv")
	if err := os.WriteFile(csv3, []byte("20,erin,1\nnot_an_int,frank,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _ := sql.ParseStatement(fmt.Sprintf(`COPY m FROM '%s'`, csv3))
	if _, err := eng.Apply(s); err == nil {
		t.Fatal("bad cell should error")
	}
	// Unknown header column is rejected before any row commits.
	csv4 := filepath.Join(dir, "in4.csv")
	os.WriteFile(csv4, []byte("id,wat\n1,2\n"), 0o644)
	s, _ = sql.ParseStatement(fmt.Sprintf(`COPY m FROM '%s' WITH HEADER`, csv4))
	if _, err := eng.Apply(s); err == nil {
		t.Fatal("unknown header column should error")
	}
}

func TestIntervalFsync(t *testing.T) {
	eng, cat := openEngine(t, t.TempDir(), ingest.Config{
		Fsync:        ingest.FsyncInterval,
		SyncInterval: 5 * time.Millisecond,
	})
	defer eng.Close()
	apply(t, eng, `CREATE TABLE t (v BIGINT NOT NULL)`)
	apply(t, eng, `INSERT INTO t VALUES (1), (2), (3)`)
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().WALSyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval fsync never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	eq(t, query(t, cat, `SELECT SUM(v) FROM t`), []string{"6"}, "rows visible")
}

func TestClosedEngine(t *testing.T) {
	dir := t.TempDir()
	eng, _ := openEngine(t, dir, ingest.Config{})
	apply(t, eng, `CREATE TABLE t (v BIGINT NOT NULL)`)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := eng.Insert("t", []ingest.Row{{ingest.Int(1)}}); err == nil {
		t.Fatal("Insert after Close should fail")
	}
	if err := eng.CreateTable("u", []sql.ColDef{{Name: "a", Type: vec.I64, Nullable: true}}, false); err == nil {
		t.Fatal("CreateTable after Close should fail")
	}
}
