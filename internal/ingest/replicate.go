package ingest

import (
	"bytes"
	"fmt"

	"ocht/internal/sql"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// Replication ships committed rows from a primary to read replicas as
// self-contained segments in the WAL's own record framing (magic, schema
// record, CRC-checked insert records with absolute start rows). A
// replica applies a segment through the ordinary Insert path, so shipped
// rows land in the replica's WAL, survive its crashes through the
// existing recovery code, and publish through the same copy-on-write
// catalog versions queries read.
//
// The replication position (LSN) of a table is simply its committed row
// count: the WAL writer is the only appender, so row numbering is dense
// and commit-ordered, and "replica caught up" means per-table row counts
// match the primary's.

// DefaultSegmentRows bounds how many rows one exported segment carries.
const DefaultSegmentRows = 1 << 14

// TableLSN returns the committed row count of one table.
func (e *Engine) TableLSN(table string) (int64, bool) {
	e.mu.RLock()
	st, ok := e.tables[table]
	e.mu.RUnlock()
	if !ok {
		return 0, false
	}
	st.mu.Lock()
	lsn := st.sealedRows + int64(len(st.tail))
	st.mu.Unlock()
	return lsn, true
}

// TableLSNs returns the committed row count of every writable table.
func (e *Engine) TableLSNs() map[string]int64 {
	e.mu.RLock()
	sts := make(map[string]*tableState, len(e.tables))
	for name, st := range e.tables {
		sts[name] = st
	}
	e.mu.RUnlock()
	out := make(map[string]int64, len(sts))
	for name, st := range sts {
		st.mu.Lock()
		out[name] = st.sealedRows + int64(len(st.tail))
		st.mu.Unlock()
	}
	return out
}

// ExportSegment builds a replication segment for table holding up to
// maxRows committed rows starting at absolute row fromRow (maxRows <= 0
// means DefaultSegmentRows). The segment always carries a schema record,
// so a zero-row segment still replicates CREATE TABLE. It returns the
// segment and the next fetch position (fromRow plus the rows included).
func (e *Engine) ExportSegment(table string, fromRow int64, maxRows int) ([]byte, int64, error) {
	e.mu.RLock()
	st, ok := e.tables[table]
	e.mu.RUnlock()
	if !ok {
		return nil, 0, e.tableErr(table)
	}
	if fromRow < 0 {
		fromRow = 0
	}
	if maxRows <= 0 {
		maxRows = DefaultSegmentRows
	}

	st.mu.Lock()
	sealed := st.sealed
	sealedRows := st.sealedRows
	committed := sealedRows + int64(len(st.tail))
	end := fromRow + int64(maxRows)
	if end > committed {
		end = committed
	}
	var tailPart []Row
	if end > sealedRows && end > fromRow {
		lo := fromRow
		if lo < sealedRows {
			lo = sealedRows
		}
		tailPart = append([]Row(nil), st.tail[lo-sealedRows:end-sealedRows]...)
	}
	st.mu.Unlock()
	if fromRow > committed {
		return nil, 0, fmt.Errorf("ingest: %s: export from row %d is past the %d committed rows", table, fromRow, committed)
	}

	var rows []Row
	if fromRow < sealedRows && end > fromRow {
		hi := end
		if hi > sealedRows {
			hi = sealedRows
		}
		rows = sealedRowRange(sealed, st.schema, fromRow, hi)
	}
	rows = append(rows, tailPart...)

	var buf bytes.Buffer
	buf.WriteString(walMagic)
	appendRecord(&buf, walSchema, encodeSchema(st.schema))
	if len(rows) > 0 {
		appendRecord(&buf, walInsert, encodeInsert(st.schema, fromRow, rows))
	}
	return buf.Bytes(), fromRow + int64(len(rows)), nil
}

// ApplySegment replays one replication segment. The table is created if
// it does not exist yet (replicating CREATE TABLE); rows the replica has
// already committed are clipped by their absolute start row, so applying
// the same segment twice — a retried ship — is a no-op. Unlike crash
// recovery, which truncates a torn tail, any framing or checksum defect
// here is a hard error: the transport delivered the bytes intact or not
// at all. It returns the rows applied and the table's new LSN.
func (e *Engine) ApplySegment(table string, seg []byte) (int64, int64, error) {
	schema, recs, keep, err := parseWAL(seg)
	if err != nil {
		return 0, 0, fmt.Errorf("ingest: %s: bad replication segment: %w", table, err)
	}
	if schema == nil || keep != int64(len(seg)) {
		return 0, 0, fmt.Errorf("ingest: %s: corrupt replication segment (valid prefix %d of %d bytes)", table, keep, len(seg))
	}

	if cur, ok := e.Schema(table); ok {
		if err := sameSchema(cur, schema); err != nil {
			return 0, 0, fmt.Errorf("ingest: %s: replication schema mismatch: %w", table, err)
		}
	} else {
		if err := e.CreateTable(table, schema, true); err != nil {
			return 0, 0, err
		}
	}

	lsn, _ := e.TableLSN(table)
	var applied int64
	for _, rec := range recs {
		end := rec.startRow + int64(len(rec.rows))
		if end <= lsn {
			continue // already committed here
		}
		rows := rec.rows
		start := rec.startRow
		if start < lsn {
			rows = rows[lsn-start:]
			start = lsn
		}
		if start != lsn {
			return applied, lsn, fmt.Errorf("ingest: %s: replication gap: segment resumes at row %d, replica is at %d", table, start, lsn)
		}
		n, err := e.Insert(table, rows)
		applied += n
		lsn += n
		if err != nil {
			return applied, lsn, err
		}
	}
	return applied, lsn, nil
}

func sameSchema(a, b []sql.ColDef) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d columns here, %d in segment", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("column %d is %s %s here, %s %s in segment",
				i, a[i].Name, a[i].Type, b[i].Name, b[i].Type)
		}
	}
	return nil
}

// sealedRowRange extracts rows [from, to) of a sealed table back into
// ingest rows, decoding each block form in place (plain, bit-packed,
// dictionary) without materializing whole vectors.
func sealedRowRange(t *storage.Table, schema []sql.ColDef, from, to int64) []Row {
	rows := make([]Row, to-from)
	for i := range rows {
		rows[i] = make(Row, len(schema))
	}
	for ci, c := range t.Cols {
		base := int64(0)
		for bi := 0; bi < c.Blocks(); bi++ {
			b := c.Block(bi)
			bend := base + int64(b.N)
			if bend <= from {
				base = bend
				continue
			}
			if base >= to {
				break
			}
			lo, hi := from, to
			if lo < base {
				lo = base
			}
			if hi > bend {
				hi = bend
			}
			for r := lo; r < hi; r++ {
				rows[r-from][ci] = blockDatum(b, c.Type, int(r-base))
			}
			base = bend
		}
	}
	return rows
}

// blockDatum reads one value out of a sealed block.
func blockDatum(b *storage.Block, t vec.Type, i int) Datum {
	if b.Nulls != nil && b.Nulls[i] {
		return Datum{Null: true}
	}
	if b.Packed() {
		bits := uint(b.PackBits)
		per := 64 / b.PackBits
		mask := uint64(1)<<bits - 1
		return Datum{I: b.PackMin + int64((b.PackWords[i/per]>>(uint(i%per)*bits))&mask)}
	}
	switch t {
	case vec.I8:
		return Datum{I: int64(b.I8[i])}
	case vec.I16:
		return Datum{I: int64(b.I16[i])}
	case vec.I32:
		return Datum{I: int64(b.I32[i])}
	case vec.I64:
		return Datum{I: b.I64[i]}
	case vec.F64:
		return Datum{F: b.F64[i]}
	case vec.Str:
		if b.DictCompressed() {
			s, _, _ := b.ZDict.StrAt(int(b.ZCodes.At(i)), nil)
			return Datum{S: string(s)}
		}
		return Datum{S: b.Dict[b.Codes[i]]}
	}
	panic("ingest: blockDatum on " + t.String())
}
