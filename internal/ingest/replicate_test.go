package ingest_test

import (
	"testing"

	"ocht/internal/ingest"
	"ocht/internal/storage"
)

// catchUp pulls segments from primary until replica's LSN matches, using
// small segment sizes to exercise multi-segment shipping.
func catchUp(t *testing.T, primary, replica *ingest.Engine, table string, segRows int) int64 {
	t.Helper()
	target, ok := primary.TableLSN(table)
	if !ok {
		t.Fatalf("primary has no table %s", table)
	}
	var lsn int64
	if cur, ok := replica.TableLSN(table); ok {
		lsn = cur
	}
	for {
		seg, next, err := primary.ExportSegment(table, lsn, segRows)
		if err != nil {
			t.Fatalf("export %s from %d: %v", table, lsn, err)
		}
		if _, got, err := replica.ApplySegment(table, seg); err != nil {
			t.Fatalf("apply %s at %d: %v", table, lsn, err)
		} else if got != next {
			t.Fatalf("apply %s: replica LSN %d, segment said next %d", table, got, next)
		}
		lsn = next
		if lsn >= target {
			return lsn
		}
	}
}

// TestReplicateSealedAndTail ships a table whose rows live partly in
// sealed checkpointed blocks (bit-packed and dictionary forms included)
// and partly in the in-memory WAL tail, and checks the replica serves
// byte-identical query results.
func TestReplicateSealedAndTail(t *testing.T) {
	primary, pcat := openEngine(t, t.TempDir(), ingest.Config{DisableSealer: true})
	defer primary.Close()
	apply(t, primary, createTP)
	fillTP(t, primary, 0, storage.BlockRows+300)
	if err := primary.Flush(); err != nil { // seal + checkpoint the full block
		t.Fatalf("flush: %v", err)
	}
	fillTP(t, primary, storage.BlockRows+300, 700) // stays in the tail

	replica, rcat := openEngine(t, t.TempDir(), ingest.Config{DisableSealer: true})
	defer replica.Close()
	lsn := catchUp(t, primary, replica, "tp", 10_000)
	if want, _ := primary.TableLSN("tp"); lsn != want {
		t.Fatalf("replica LSN %d, primary %d", lsn, want)
	}

	for _, q := range []string{
		"SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM tp",
		"SELECT tag, COUNT(*), SUM(v) FROM tp GROUP BY tag",
		"SELECT COUNT(*) FROM tp WHERE s IS NULL",
		"SELECT v, tag FROM tp WHERE v % 9997 = 0 ORDER BY v",
	} {
		eq(t, query(t, rcat, q), query(t, pcat, q), q)
	}
}

// TestReplicateIdempotentAndIncremental re-applies segments and ships
// increments, checking clipping by absolute row position.
func TestReplicateIdempotentAndIncremental(t *testing.T) {
	primary, pcat := openEngine(t, t.TempDir(), ingest.Config{DisableSealer: true})
	defer primary.Close()
	apply(t, primary, createTP)
	fillTP(t, primary, 0, 1000)

	replica, rcat := openEngine(t, t.TempDir(), ingest.Config{DisableSealer: true})
	defer replica.Close()
	catchUp(t, primary, replica, "tp", 300)

	// A retried ship of an already-applied prefix must be a no-op.
	seg, _, err := primary.ExportSegment("tp", 0, 500)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	applied, lsn, err := replica.ApplySegment("tp", seg)
	if err != nil {
		t.Fatalf("re-apply: %v", err)
	}
	if applied != 0 || lsn != 1000 {
		t.Fatalf("re-apply: applied %d rows, LSN %d; want 0 and 1000", applied, lsn)
	}

	// New primary writes ship incrementally.
	fillTP(t, primary, 1000, 250)
	catchUp(t, primary, replica, "tp", 100)
	eq(t, query(t, rcat, "SELECT COUNT(*), SUM(v) FROM tp"),
		query(t, pcat, "SELECT COUNT(*), SUM(v) FROM tp"), "after increment")

	// A gapped segment (beyond the replica's LSN) must be rejected.
	gap, _, err := primary.ExportSegment("tp", 1250, 10)
	if err != nil {
		t.Fatalf("export at head: %v", err)
	}
	fillTP(t, primary, 1250, 10)
	gap2, _, err := primary.ExportSegment("tp", 1255, 5)
	if err != nil {
		t.Fatalf("export past replica: %v", err)
	}
	_ = gap
	if _, _, err := replica.ApplySegment("tp", gap2); err == nil {
		t.Fatal("applying a gapped segment should fail")
	}

	// Export past the committed head errors.
	if _, _, err := primary.ExportSegment("tp", 99_999, 10); err == nil {
		t.Fatal("export past head should fail")
	}
}

// TestReplicateCreateOnly ships a zero-row table: the schema record alone
// must create it on the replica.
func TestReplicateCreateOnly(t *testing.T) {
	primary, _ := openEngine(t, t.TempDir(), ingest.Config{DisableSealer: true})
	defer primary.Close()
	apply(t, primary, `CREATE TABLE empty_t (a BIGINT NOT NULL, b TEXT)`)

	replica, rcat := openEngine(t, t.TempDir(), ingest.Config{DisableSealer: true})
	defer replica.Close()
	seg, next, err := primary.ExportSegment("empty_t", 0, 100)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if next != 0 {
		t.Fatalf("next LSN %d for empty table", next)
	}
	if _, _, err := replica.ApplySegment("empty_t", seg); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !replica.Managed("empty_t") {
		t.Fatal("replica did not create empty_t")
	}
	eq(t, query(t, rcat, "SELECT a, b FROM empty_t"), nil, "empty table")

	// Schema drift between primary and replica is a hard error.
	replica2, _ := openEngine(t, t.TempDir(), ingest.Config{DisableSealer: true})
	defer replica2.Close()
	apply(t, replica2, `CREATE TABLE empty_t (a BIGINT NOT NULL, b BIGINT)`)
	if _, _, err := replica2.ApplySegment("empty_t", seg); err == nil {
		t.Fatal("schema mismatch should fail")
	}
}
