package ingest

import (
	"fmt"
	"math"
	"strconv"

	"ocht/internal/sql"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// Datum is one cell of an ingested row. It is an untyped union: the
// table schema decides which field is meaningful, so a Datum destined
// for a BIGINT column carries I, one for DOUBLE carries F, and so on.
type Datum struct {
	Null bool
	I    int64
	F    float64
	S    string
}

// Row is one ingested row, positional against the table schema.
type Row []Datum

// Int, Float, Str and Null build datums for direct Engine.Insert calls.
func Int(v int64) Datum     { return Datum{I: v} }
func Float(v float64) Datum { return Datum{F: v} }
func Str(s string) Datum    { return Datum{S: s} }
func Null() Datum           { return Datum{Null: true} }

// buildTable materializes rows into a sealed table following the schema.
// Used for the published tail delta, for sealing full blocks, and (with
// no rows) for empty tables at CREATE time.
func buildTable(name string, schema []sql.ColDef, rows []Row) *storage.Table {
	cols := make([]*storage.Column, len(schema))
	for i, cd := range schema {
		cols[i] = storage.NewColumn(cd.Name, cd.Type, cd.Nullable)
	}
	for _, r := range rows {
		for i, cd := range schema {
			d := r[i]
			switch {
			case d.Null:
				cols[i].AppendNull()
			case cd.Type == vec.F64:
				cols[i].AppendFloat(d.F)
			case cd.Type == vec.Str:
				cols[i].AppendString(d.S)
			default:
				cols[i].AppendInt(d.I)
			}
		}
	}
	t := storage.NewTable(name, cols...)
	t.Seal()
	return t
}

// schemaFromTable recovers column definitions from a persisted table when
// the WAL holds no schema record (fully checkpointed table).
func schemaFromTable(t *storage.Table) []sql.ColDef {
	s := make([]sql.ColDef, len(t.Cols))
	for i, c := range t.Cols {
		s[i] = sql.ColDef{Name: c.Name, Type: c.Type, Nullable: c.Nullable}
	}
	return s
}

// checkSchema verifies that a WAL schema matches a persisted table: WAL
// replay appends to the persisted blocks, so names and types must agree.
func checkSchema(schema []sql.ColDef, t *storage.Table) error {
	if len(schema) != len(t.Cols) {
		return fmt.Errorf("WAL schema has %d columns, data file has %d", len(schema), len(t.Cols))
	}
	for i, cd := range schema {
		c := t.Cols[i]
		if cd.Name != c.Name || cd.Type != c.Type {
			return fmt.Errorf("column %d: WAL says %s %s, data file says %s %s",
				i, cd.Name, cd.Type, c.Name, c.Type)
		}
	}
	return nil
}

func isIntType(t vec.Type) bool {
	switch t {
	case vec.I8, vec.I16, vec.I32, vec.I64:
		return true
	}
	return false
}

func intFits(v int64, t vec.Type) bool {
	switch t {
	case vec.I8:
		return v >= math.MinInt8 && v <= math.MaxInt8
	case vec.I16:
		return v >= math.MinInt16 && v <= math.MaxInt16
	case vec.I32:
		return v >= math.MinInt32 && v <= math.MaxInt32
	}
	return true
}

// validateRow rejects rows the column builders could not store: wrong
// arity, NULL into a NOT NULL column, or out-of-range integers.
func validateRow(schema []sql.ColDef, r Row) error {
	if len(r) != len(schema) {
		return fmt.Errorf("row has %d values, want %d", len(r), len(schema))
	}
	for i, cd := range schema {
		d := r[i]
		if d.Null {
			if !cd.Nullable {
				return fmt.Errorf("column %s is NOT NULL", cd.Name)
			}
			continue
		}
		if isIntType(cd.Type) && !intFits(d.I, cd.Type) {
			return fmt.Errorf("value %d out of range for %s column %s", d.I, cd.Type, cd.Name)
		}
	}
	return nil
}

// datumFromNode coerces one parsed VALUES expression into a datum for
// the given column. Only literals, NULL and negated numeric literals are
// accepted — INSERT is a write path, not an expression evaluator.
func datumFromNode(n sql.Node, cd sql.ColDef) (Datum, error) {
	switch e := n.(type) {
	case *sql.NullLit:
		if !cd.Nullable {
			return Datum{}, fmt.Errorf("column %s is NOT NULL", cd.Name)
		}
		return Datum{Null: true}, nil
	case *sql.IntLit:
		return intDatum(e.V, cd)
	case *sql.FloatLit:
		if cd.Type != vec.F64 {
			return Datum{}, fmt.Errorf("column %s is %s, got float %v", cd.Name, cd.Type, e.V)
		}
		return Datum{F: e.V}, nil
	case *sql.StrLit:
		if cd.Type != vec.Str {
			return Datum{}, fmt.Errorf("column %s is %s, got string %q", cd.Name, cd.Type, e.V)
		}
		return Datum{S: e.V}, nil
	case *sql.NegOp:
		switch inner := e.L.(type) {
		case *sql.IntLit:
			return intDatum(-inner.V, cd)
		case *sql.FloatLit:
			if cd.Type != vec.F64 {
				return Datum{}, fmt.Errorf("column %s is %s, got float %v", cd.Name, cd.Type, -inner.V)
			}
			return Datum{F: -inner.V}, nil
		}
		return Datum{}, fmt.Errorf("column %s: only literal values are allowed in VALUES", cd.Name)
	}
	return Datum{}, fmt.Errorf("column %s: only literal values are allowed in VALUES", cd.Name)
}

func intDatum(v int64, cd sql.ColDef) (Datum, error) {
	switch {
	case cd.Type == vec.F64:
		return Datum{F: float64(v)}, nil
	case cd.Type == vec.Str:
		return Datum{}, fmt.Errorf("column %s is %s, got integer %d", cd.Name, cd.Type, v)
	case !intFits(v, cd.Type):
		return Datum{}, fmt.Errorf("value %d out of range for %s column %s", v, cd.Type, cd.Name)
	}
	return Datum{I: v}, nil
}

// datumFromCSV coerces one CSV cell. An empty cell is NULL for nullable
// columns (matching storage.ReadCSV) and the empty string for NOT NULL
// text columns.
func datumFromCSV(cell string, cd sql.ColDef) (Datum, error) {
	if cell == "" {
		if cd.Nullable {
			return Datum{Null: true}, nil
		}
		if cd.Type == vec.Str {
			return Datum{}, nil
		}
		return Datum{}, fmt.Errorf("empty cell for NOT NULL %s column %s", cd.Type, cd.Name)
	}
	switch cd.Type {
	case vec.Str:
		return Datum{S: cell}, nil
	case vec.F64:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return Datum{}, fmt.Errorf("column %s: %q is not a number", cd.Name, cell)
		}
		return Datum{F: f}, nil
	default:
		v, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Datum{}, fmt.Errorf("column %s: %q is not an integer", cd.Name, cell)
		}
		if !intFits(v, cd.Type) {
			return Datum{}, fmt.Errorf("value %d out of range for %s column %s", v, cd.Type, cd.Name)
		}
		return Datum{I: v}, nil
	}
}
