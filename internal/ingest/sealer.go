package ingest

import (
	"bufio"
	"os"
	"path/filepath"
	"time"

	"ocht/internal/storage"
)

// runSealer is the background goroutine that turns hot tails into cold
// blocks. It wakes when a table's tail crosses BlockRows (commitGroup
// pokes sealCh) or on a timer, and walks every table.
func (e *Engine) runSealer() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.SealInterval)
	defer t.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case <-e.sealCh:
		case <-t.C:
		}
		for _, st := range e.tableStates() {
			// Sealing a big tail takes real time per table; a shutdown
			// during the walk must not wait for the whole list.
			if e.stopped() {
				return
			}
			if err := e.sealTable(st); err != nil {
				e.cfg.Logf("ingest: %s: seal: %v", st.name, err)
			}
		}
	}
}

// stopped is the non-blocking poll background runners use between units
// of work.
func (e *Engine) stopped() bool {
	select {
	case <-e.stopCh:
		return true
	default:
		return false
	}
}

func (e *Engine) tableStates() []*tableState {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*tableState, 0, len(e.tables))
	for _, st := range e.tables {
		out = append(out, st)
	}
	return out
}

// sealTable cuts every full 64Ki-row block in the tail into the sealed
// immutable prefix — materializing zone maps and per-block string
// dictionaries as a side effect of the column builders — then persists
// the prefix and asks the WAL writer to compact. Queries never observe
// any of this: the published table's rows are unchanged, so there is no
// catalog version bump and cached plans stay valid.
func (e *Engine) sealTable(st *tableState) error {
	st.mu.Lock()
	full := len(st.tail) / storage.BlockRows
	if full > 0 {
		cut := full * storage.BlockRows
		_, fallbackBefore := storage.CompressionStats()
		delta := buildTable(st.name, st.schema, st.tail[:cut])
		// A dictionary-budget overrun during sealing is not silent: the
		// column records the error, falls back to the plain encoding, and
		// the event is logged here so operators see why footprint grew.
		if _, after := storage.CompressionStats(); after > fallbackBefore {
			for _, c := range delta.Cols {
				if err := c.CompressErr(); err != nil {
					e.cfg.Logf("ingest: %s: seal: column %s stays plain: %v", st.name, c.Name, err)
				}
			}
		}
		st.sealed = storage.ExtendTable(st.sealed, delta)
		st.sealedRows += int64(cut)
		st.tail = append([]Row(nil), st.tail[cut:]...)
		e.blocksSealed.Add(int64(full))
	}
	need := st.sealedRows > st.persistedRows
	st.mu.Unlock()
	if !need {
		return nil
	}
	if err := e.persistSealed(st); err != nil {
		return err
	}
	select {
	case st.compactCh <- struct{}{}:
	default:
	}
	return nil
}

// persistSealed checkpoints the sealed prefix to <dir>/<name>.ocht via
// write-to-temp, fsync, rename — a crash leaves either the old or the
// new checkpoint, never a torn one. The WAL covers everything past
// persistedRows, so this can lag arbitrarily without losing data.
func (e *Engine) persistSealed(st *tableState) error {
	st.persistMu.Lock()
	defer st.persistMu.Unlock()
	st.mu.Lock()
	t := st.sealed
	rows := st.sealedRows
	done := rows == st.persistedRows
	st.mu.Unlock()
	if done || rows == 0 {
		return nil
	}
	tmp, err := os.CreateTemp(e.dir, st.name+".ocht.tmp*")
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(tmp, 1<<20)
	err = storage.WriteTable(w, t)
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(e.dir, st.name+".ocht")); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := syncDir(e.dir); err != nil {
		return err
	}
	st.mu.Lock()
	if rows > st.persistedRows {
		st.persistedRows = rows
	}
	st.mu.Unlock()
	e.checkpoints.Add(1)
	return nil
}
