package ingest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"time"

	"ocht/internal/sql"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// WAL file layout: a 4-byte magic, then a sequence of self-checking
// records. Each record is
//
//	kind    u8   (1 = schema, 2 = insert)
//	len     u32  payload length
//	crc     u32  CRC-32 (IEEE) of the payload
//	payload len bytes
//
// A schema record holds the column definitions and is always the first
// record (CREATE TABLE writes it; compaction rewrites it). An insert
// record holds a batch of rows plus the absolute row offset (startRow)
// they were committed at, which recovery uses to clip records already
// covered by the checkpointed .ocht file — so a crash between
// checkpoint rename and WAL compaction never double-applies rows.
//
// Recovery trusts CRCs: replay stops at the first record that fails to
// frame or checksum, and the file is truncated there. Everything before
// that point was acknowledged durable (modulo fsync policy); everything
// after is a torn tail from the crash.
const walMagic = "OWL1"

const (
	walSchema byte = 1
	walInsert byte = 2
)

const (
	maxWalPayload = 1 << 30
	maxWalCols    = 1 << 14
	maxWalName    = 1 << 10
)

// appendRecord frames one record into buf.
func appendRecord(buf *bytes.Buffer, kind byte, payload []byte) {
	var h [9]byte
	h[0] = kind
	binary.LittleEndian.PutUint32(h[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[5:9], crc32.ChecksumIEEE(payload))
	buf.Write(h[:])
	buf.Write(payload)
}

func encodeSchema(schema []sql.ColDef) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(schema)))
	for _, cd := range schema {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(cd.Name)))
		b = append(b, cd.Name...)
		b = append(b, byte(cd.Type))
		if cd.Nullable {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func decodeSchema(p []byte) ([]sql.ColDef, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("schema record too short")
	}
	n := binary.LittleEndian.Uint32(p)
	if n == 0 || n > maxWalCols {
		return nil, fmt.Errorf("schema record has %d columns", n)
	}
	p = p[4:]
	schema := make([]sql.ColDef, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(p) < 2 {
			return nil, fmt.Errorf("schema record truncated")
		}
		nl := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if nl == 0 || nl > maxWalName || len(p) < nl+2 {
			return nil, fmt.Errorf("schema record truncated")
		}
		cd := sql.ColDef{Name: string(p[:nl])}
		p = p[nl:]
		cd.Type = vec.Type(p[0])
		if !validColType(cd.Type) {
			return nil, fmt.Errorf("schema record has bad column type %d", p[0])
		}
		if p[1] > 1 {
			return nil, fmt.Errorf("schema record has bad nullable flag %d", p[1])
		}
		cd.Nullable = p[1] == 1
		p = p[2:]
		schema = append(schema, cd)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("schema record has %d trailing bytes", len(p))
	}
	return schema, nil
}

func validColType(t vec.Type) bool {
	switch t {
	case vec.I8, vec.I16, vec.I32, vec.I64, vec.F64, vec.Str:
		return true
	}
	return false
}

// Datum tags inside insert payloads.
const (
	tagNull  byte = 0
	tagInt   byte = 1
	tagFloat byte = 2
	tagStr   byte = 3
)

// insertRec is one decoded insert record.
type insertRec struct {
	startRow int64
	rows     []Row
}

func encodeInsert(schema []sql.ColDef, startRow int64, rows []Row) []byte {
	b := make([]byte, 0, 16+len(rows)*len(schema)*9)
	b = binary.LittleEndian.AppendUint64(b, uint64(startRow))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(rows)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(schema)))
	for _, r := range rows {
		for i, cd := range schema {
			d := r[i]
			switch {
			case d.Null:
				b = append(b, tagNull)
			case cd.Type == vec.F64:
				b = append(b, tagFloat)
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.F))
			case cd.Type == vec.Str:
				b = append(b, tagStr)
				b = binary.LittleEndian.AppendUint32(b, uint32(len(d.S)))
				b = append(b, d.S...)
			default:
				b = append(b, tagInt)
				b = binary.LittleEndian.AppendUint64(b, uint64(d.I))
			}
		}
	}
	return b
}

func decodeInsert(schema []sql.ColDef, p []byte) (insertRec, error) {
	var rec insertRec
	if len(p) < 16 {
		return rec, fmt.Errorf("insert record too short")
	}
	rec.startRow = int64(binary.LittleEndian.Uint64(p))
	nRows := binary.LittleEndian.Uint32(p[8:])
	nCols := binary.LittleEndian.Uint32(p[12:])
	p = p[16:]
	if rec.startRow < 0 {
		return rec, fmt.Errorf("insert record has negative start row")
	}
	if int(nCols) != len(schema) {
		return rec, fmt.Errorf("insert record has %d columns, schema has %d", nCols, len(schema))
	}
	if nRows > maxWalPayload/uint32(len(schema)) {
		return rec, fmt.Errorf("insert record claims %d rows", nRows)
	}
	rec.rows = make([]Row, 0, nRows)
	for i := uint32(0); i < nRows; i++ {
		row := make(Row, len(schema))
		for c, cd := range schema {
			if len(p) < 1 {
				return rec, fmt.Errorf("insert record truncated")
			}
			tag := p[0]
			p = p[1:]
			switch tag {
			case tagNull:
				if !cd.Nullable {
					return rec, fmt.Errorf("NULL for NOT NULL column %s", cd.Name)
				}
				row[c] = Datum{Null: true}
			case tagInt:
				if !isIntType(cd.Type) || len(p) < 8 {
					return rec, fmt.Errorf("bad int datum for column %s", cd.Name)
				}
				row[c] = Datum{I: int64(binary.LittleEndian.Uint64(p))}
				p = p[8:]
			case tagFloat:
				if cd.Type != vec.F64 || len(p) < 8 {
					return rec, fmt.Errorf("bad float datum for column %s", cd.Name)
				}
				row[c] = Datum{F: math.Float64frombits(binary.LittleEndian.Uint64(p))}
				p = p[8:]
			case tagStr:
				if cd.Type != vec.Str || len(p) < 4 {
					return rec, fmt.Errorf("bad string datum for column %s", cd.Name)
				}
				sl := int(binary.LittleEndian.Uint32(p))
				p = p[4:]
				if sl > len(p) {
					return rec, fmt.Errorf("bad string datum for column %s", cd.Name)
				}
				row[c] = Datum{S: string(p[:sl])}
				p = p[sl:]
			default:
				return rec, fmt.Errorf("bad datum tag %d", tag)
			}
		}
		rec.rows = append(rec.rows, row)
	}
	if len(p) != 0 {
		return rec, fmt.Errorf("insert record has %d trailing bytes", len(p))
	}
	return rec, nil
}

// readWAL reads a table's WAL. It returns the schema (nil when no schema
// record was found), the insert records in commit order, and the byte
// offset after the last fully-valid record. A torn or corrupt tail is
// expected after a crash: the caller truncates the file at keep and
// replays what was acknowledged. A corrupt header, by contrast, is a
// hard error — it was written and fsynced at CREATE time.
func readWAL(path string) (schema []sql.ColDef, recs []insertRec, keep int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, err
	}
	return parseWAL(data)
}

// parseWAL decodes the WAL record stream from a byte slice. It backs both
// crash recovery (readWAL) and replication, which ships byte-identical
// framing over the wire (see ExportSegment / ApplySegment).
func parseWAL(data []byte) (schema []sql.ColDef, recs []insertRec, keep int64, err error) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return nil, nil, 0, fmt.Errorf("bad WAL header")
	}
	off := len(walMagic)
	for off < len(data) {
		if off+9 > len(data) {
			break // torn record header
		}
		kind := data[off]
		plen := int(binary.LittleEndian.Uint32(data[off+1:]))
		crc := binary.LittleEndian.Uint32(data[off+5:])
		if (kind != walSchema && kind != walInsert) || plen > maxWalPayload {
			break
		}
		if off+9+plen > len(data) {
			break // torn payload
		}
		payload := data[off+9 : off+9+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		switch kind {
		case walSchema:
			s, derr := decodeSchema(payload)
			if derr != nil {
				return schema, recs, int64(off), nil
			}
			if schema != nil {
				// Only compaction rewrites the schema record, and it
				// never changes the schema; a mismatch is corruption.
				if len(s) != len(schema) {
					return schema, recs, int64(off), nil
				}
				for i := range s {
					if s[i] != schema[i] {
						return schema, recs, int64(off), nil
					}
				}
			}
			schema = s
		case walInsert:
			if schema == nil {
				return nil, nil, int64(off), nil
			}
			rec, derr := decodeInsert(schema, payload)
			if derr != nil {
				return schema, recs, int64(off), nil
			}
			recs = append(recs, rec)
		}
		off += 9 + plen
	}
	return schema, recs, int64(off), nil
}

// walReq is one Insert call waiting for group commit.
type walReq struct {
	rows []Row
	done chan error
}

// maxGroup bounds how many pending Insert calls one commit group
// absorbs: one WAL write + at most one fsync for the whole group.
const maxGroup = 256

// runWAL is the per-table writer goroutine. It owns the WAL file: it is
// the only code that appends records, applies committed rows to the
// in-memory tail, publishes the new table version to the catalog, and
// rewrites the file on compaction. That single-writer discipline is what
// makes row numbering and commit order trivially consistent.
func (e *Engine) runWAL(st *tableState) {
	defer e.wg.Done()
	var tick <-chan time.Time
	if e.cfg.Fsync == FsyncInterval {
		t := time.NewTicker(e.cfg.SyncInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case req, ok := <-st.reqCh:
			if !ok {
				e.finishWAL(st)
				return
			}
			batch := append(make([]*walReq, 0, 8), req)
			closed := false
		fill:
			for len(batch) < maxGroup {
				select {
				case r, ok2 := <-st.reqCh:
					if !ok2 {
						closed = true
						break fill
					}
					batch = append(batch, r)
				default:
					break fill
				}
			}
			e.commitGroup(st, batch)
			if closed {
				e.finishWAL(st)
				return
			}
		case ch := <-st.flushCh:
			var err error
			if st.dirty {
				err = st.wal.Sync()
				st.dirty = false
				e.walSyncs.Add(1)
			}
			ch <- err
		case <-st.compactCh:
			e.compactWAL(st)
		case <-tick:
			if st.dirty {
				if err := st.wal.Sync(); err == nil {
					st.dirty = false
					e.walSyncs.Add(1)
				}
			}
		}
	}
}

func (e *Engine) finishWAL(st *tableState) {
	if !e.abandoned.Load() && st.dirty {
		if err := st.wal.Sync(); err != nil {
			e.cfg.Logf("ingest: %s: final WAL sync failed: %v", st.name, err)
		} else {
			st.dirty = false
		}
	}
	if err := st.wal.Close(); err != nil {
		e.cfg.Logf("ingest: %s: WAL close failed: %v", st.name, err)
	}
}

// commitGroup writes one batch of Insert requests as WAL records, makes
// them durable per the fsync policy, then applies them to the tail and
// publishes a new catalog version. Acks are sent only after publish, so
// a client that saw its INSERT succeed will see its rows in the very
// next query.
func (e *Engine) commitGroup(st *tableState, batch []*walReq) {
	st.mu.Lock()
	werr := st.walErr
	start := st.sealedRows + int64(len(st.tail))
	st.mu.Unlock()
	if werr != nil {
		for _, r := range batch {
			r.done <- werr
		}
		return
	}

	var buf bytes.Buffer
	total := 0
	for _, r := range batch {
		appendRecord(&buf, walInsert, encodeInsert(st.schema, start+int64(total), r.rows))
		total += len(r.rows)
	}
	_, err := st.wal.Write(buf.Bytes())
	if err == nil {
		if e.cfg.Fsync == FsyncAlways {
			err = st.wal.Sync()
			e.walSyncs.Add(1)
		} else {
			st.dirty = true
		}
	}
	if err != nil {
		// The file may now hold a torn record; poison the table rather
		// than commit rows that would follow garbage on disk.
		st.mu.Lock()
		st.walErr = fmt.Errorf("ingest: %s: WAL write failed: %w", st.name, err)
		werr = st.walErr
		st.mu.Unlock()
		for _, r := range batch {
			r.done <- werr
		}
		return
	}
	e.walBytes.Add(int64(buf.Len()))

	st.mu.Lock()
	for _, r := range batch {
		st.tail = append(st.tail, r.rows...)
	}
	pub := storage.ExtendTable(st.sealed, buildTable(st.name, st.schema, st.tail))
	tailLen := len(st.tail)
	st.mu.Unlock()
	e.cat.Add(pub)
	for _, r := range batch {
		r.done <- nil
	}
	e.rowsIngested.Add(int64(total))
	e.commitGroups.Add(1)
	e.commitReqs.Add(int64(len(batch)))
	if tailLen >= storage.BlockRows {
		select {
		case e.sealCh <- struct{}{}:
		default:
		}
	}
}

// compactWAL rewrites the WAL to just a schema record plus the rows not
// yet covered by the checkpointed .ocht file. Called (via compactCh)
// after the sealer persists the sealed prefix. Skipped unless
// persistedRows has caught up with sealedRows — otherwise rows living
// only in the sealed in-memory prefix would vanish from the log.
func (e *Engine) compactWAL(st *tableState) {
	st.mu.Lock()
	if st.walErr != nil || st.persistedRows != st.sealedRows {
		st.mu.Unlock()
		return
	}
	start := st.sealedRows
	tail := append([]Row(nil), st.tail...)
	st.mu.Unlock()

	var buf bytes.Buffer
	buf.WriteString(walMagic)
	appendRecord(&buf, walSchema, encodeSchema(st.schema))
	if len(tail) > 0 {
		appendRecord(&buf, walInsert, encodeInsert(st.schema, start, tail))
	}
	tmp := st.walPath + ".tmp"
	if err := writeFileSync(tmp, buf.Bytes()); err != nil {
		e.cfg.Logf("ingest: %s: WAL compaction failed: %v", st.name, err)
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, st.walPath); err != nil {
		e.cfg.Logf("ingest: %s: WAL compaction rename failed: %v", st.name, err)
		os.Remove(tmp)
		return
	}
	// The old descriptor now points at an unlinked inode; reopen before
	// the next append or those records would be lost.
	nf, err := os.OpenFile(st.walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		st.mu.Lock()
		st.walErr = fmt.Errorf("ingest: %s: reopen after compaction: %w", st.name, err)
		st.mu.Unlock()
		return
	}
	if err := st.wal.Close(); err != nil {
		// The old descriptor held the unlinked pre-compaction inode; its
		// close cannot lose data but is worth surfacing.
		e.cfg.Logf("ingest: %s: closing pre-compaction WAL: %v", st.name, err)
	}
	st.wal = nf
	st.dirty = false
	if err := syncDir(e.walDir()); err != nil {
		e.cfg.Logf("ingest: %s: WAL dir sync after compaction: %v", st.name, err)
	}
	e.walCompactions.Add(1)
}

func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
