package ingest

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ocht/internal/sql"
	"ocht/internal/vec"
)

func fuzzWALBytes() []byte {
	schema := []sql.ColDef{
		{Name: "id", Type: vec.I64, Nullable: false},
		{Name: "tag", Type: vec.Str, Nullable: true},
		{Name: "x", Type: vec.F64, Nullable: true},
	}
	rows := []Row{
		{Int(1), Str("a"), Float(0.5)},
		{Int(2), Null(), Null()},
		{Int(3), Str("bb"), Float(-1.25)},
	}
	var buf bytes.Buffer
	buf.WriteString(walMagic)
	appendRecord(&buf, walSchema, encodeSchema(schema))
	appendRecord(&buf, walInsert, encodeInsert(schema, 0, rows[:2]))
	appendRecord(&buf, walInsert, encodeInsert(schema, 2, rows[2:]))
	return buf.Bytes()
}

// FuzzReadWAL holds readWAL to the recovery contract: for arbitrary file
// contents it returns an error or a clean prefix — it never panics, and
// the reported keep offset never exceeds the file size. WAL replay
// trusts this reader after a crash, so corruption must fail loudly.
func FuzzReadWAL(f *testing.F) {
	good := fuzzWALBytes()
	f.Add(good)
	f.Add(good[:2])
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-3])
	f.Add([]byte(walMagic))
	f.Add([]byte{})
	for _, off := range []int{0, 3, 5, 9, 14, len(good) - 2} {
		bad := append([]byte{}, good...)
		bad[off] ^= 0x20
		f.Add(bad)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		schema, recs, keep, err := readWAL(path)
		if err != nil {
			return
		}
		if keep < 0 || keep > int64(len(data)) {
			t.Fatalf("keep offset %d outside file of %d bytes", keep, len(data))
		}
		// Whatever decoded must re-encode without panicking, and insert
		// records must match the schema the reader returned.
		if schema != nil {
			encodeSchema(schema)
			for _, rec := range recs {
				for _, r := range rec.rows {
					if len(r) != len(schema) {
						t.Fatalf("decoded row has %d datums, schema has %d cols", len(r), len(schema))
					}
				}
				encodeInsert(schema, rec.startRow, rec.rows)
			}
		} else if len(recs) != 0 {
			t.Fatal("insert records decoded without a schema")
		}
	})
}

func TestReadWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	good := fuzzWALBytes()
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	schema, recs, keep, err := readWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if keep != int64(len(good)) {
		t.Fatalf("keep = %d, want %d", keep, len(good))
	}
	if len(schema) != 3 || len(recs) != 2 {
		t.Fatalf("schema %d cols, %d records", len(schema), len(recs))
	}
	if recs[0].startRow != 0 || recs[1].startRow != 2 {
		t.Fatalf("start rows %d, %d", recs[0].startRow, recs[1].startRow)
	}
	if recs[0].rows[1][1] != (Datum{Null: true}) || recs[1].rows[0][1] != (Datum{S: "bb"}) {
		t.Fatalf("decoded datums wrong: %+v", recs)
	}
	// Every truncation of a valid WAL recovers a prefix without error.
	for cut := 0; cut < len(good); cut++ {
		if err := os.WriteFile(path, good[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, keep, err := readWAL(path)
		if cut < len(walMagic) {
			if err == nil {
				t.Fatalf("cut %d: header missing but no error", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if keep > int64(cut) {
			t.Fatalf("cut %d: keep %d past end", cut, keep)
		}
	}
}
