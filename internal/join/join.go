// Package join implements the single-table hash join on optimistically
// compressed hash tables. The packing problem is separated into two
// sub-problems as in Section II-F: one plan packs the key columns, a
// second plan packs the payload columns. With Optimistic Splitting
// enabled, selective joins can move payloads to the cold area so that
// probe misses only touch the thin key records (Section III-B).
//
// The build and probe paths are cache-conscious: the build side can be
// radix-partitioned into per-partition tables sized to fit L2
// (core.PartTable), probes run as a two-phase staged sweep over the
// selection vector, and selective joins consult a blocked Bloom filter
// in a vectorized pre-pass that shrinks the selection vector before any
// table access.
package join

import (
	"ocht/internal/core"
	"ocht/internal/domain"
	"ocht/internal/hashtab"
	"ocht/internal/pack"
	"ocht/internal/strs"
	"ocht/internal/ussr"
	"ocht/internal/vec"
)

// ussrCodeDomain is the domain of USSR slot codes (Section IV-F).
var ussrCodeDomain = domain.New(0, 1<<16-1)

// PayloadCol describes one build-side payload column.
type PayloadCol struct {
	Name string
	Type vec.Type
	Dom  domain.D

	// SampleDom, when valid, enables Sample-Guided Prefix Suppression
	// (Section III-B): the hot area stores the value as an offset into
	// this (sample-derived, outlier-free) domain with code 0 marking an
	// exception, and the full value moves to the cold area. This keeps
	// hot records narrow even when outliers ruin the global min/max
	// bounds. Requires Compress and Split.
	SampleDom domain.D
}

// Bloom filter modes for Options.Bloom.
const (
	// BloomAuto builds the filter exactly when the join is Selective:
	// that is where shedding misses before the table probe pays.
	BloomAuto = iota
	BloomOn
	BloomOff
)

// Options tunes the join layout.
type Options struct {
	// Selective marks joins where most probes are expected to miss; with
	// Optimistic Splitting this moves the payload columns to the cold
	// area (Section III-B).
	Selective bool
	// CapacityHint pre-sizes the table.
	CapacityHint int
	// PartitionBits sets the radix-partitioning width of the build side:
	// 0 keeps one monolithic table (the zero-value default preserves the
	// historical layout), positive values force 2^bits partitions, and a
	// negative value picks the width adaptively from EstRows so each
	// partition's hot area fits the L2 budget.
	PartitionBits int
	// EstRows is the optimizer's build-side cardinality bound (zone-map
	// derived); it drives the adaptive partition width and the Bloom
	// filter sizing. Zero falls back to CapacityHint.
	EstRows int64
	// Bloom selects the Bloom pre-pass mode (BloomAuto/BloomOn/BloomOff).
	Bloom int
}

// Join is a hash join: Build inserts the inner relation, Probe streams the
// outer relation and emits matching (row, record) pairs, FetchPayload
// reconstructs build-side columns for the matches. Probing is split into
// PrepareProbe (hash once per batch + Bloom pre-pass) and ProbeStaged
// (two-phase chain walk over any sub-chunk of the survivors).
type Join struct {
	Flags   core.Flags
	Schema  *core.KeySchema
	Payload []PayloadCol

	pt            *core.PartTable
	bloom         *hashtab.Bloom
	payloadPlan   *pack.Plan // compressed payloads (integer columns + codes)
	payloadOffs   []int      // direct payload offsets (vanilla mode / uncoded strings)
	payloadCode   []bool     // per column: stored as a 16-bit USSR slot code
	payloadSample []bool     // per column: sample-guided code (Section III-B)
	payloadCold   bool       // payload lives in the cold area
	codeColdOff   []int      // per coded column: cold offset of the exception value
	exceptBytes   int        // cold bytes for payload exceptions
	payloadSize   int

	// Per-handle scratch; ProbeClone resets all of it so clones never
	// share mutable state with the build-side handle.
	scratch   []uint64
	hashBuf   []uint64
	recBuf    []int32
	recIdx    []int32
	headBuf   []int32
	survivors []int32
	probePrep *core.Prepared
	gRecs     [][]int32 // fetch-side per-partition local records
	gRows     [][]int32 // fetch-side per-partition output rows

	bloomChecked int64
	bloomDropped int64
}

func (j *Join) buffers(n int) ([]uint64, []int32) {
	if len(j.hashBuf) < n {
		j.hashBuf = make([]uint64, n)
		j.recBuf = make([]int32, n)
	}
	return j.hashBuf, j.recBuf
}

// New creates a join for the given key and payload columns.
func New(flags core.Flags, keys []core.KeyCol, payload []PayloadCol, store *strs.Store, opts Options) (*Join, error) {
	schema, err := core.NewKeySchema(flags, keys, store)
	if err != nil {
		return nil, err
	}
	j := &Join{Flags: flags, Schema: schema, Payload: payload}
	j.payloadCold = flags.Split && opts.Selective

	if flags.Compress {
		var pcols []pack.Col
		j.payloadOffs = make([]int, len(payload))
		j.payloadCode = make([]bool, len(payload))
		j.payloadSample = make([]bool, len(payload))
		j.codeColdOff = make([]int, len(payload))
		strBytes := 0
		codeStrings := flags.UseUSSR && flags.Split && !j.payloadCold
		sampleCoding := flags.Split && !j.payloadCold
		for i, c := range payload {
			if c.Type != vec.Str && c.SampleDom.Valid && sampleCoding {
				// Sample-Guided Prefix Suppression: the hot code is the
				// offset+1 into the sample domain, 0 marks an outlier
				// whose full value lives in the cold area.
				card := c.SampleDom.Cardinality()
				if card > 0 && card < 1<<62 {
					j.payloadSample[i] = true
					j.payloadOffs[i] = -1
					j.codeColdOff[i] = j.exceptBytes
					j.exceptBytes += 8
					pcols = append(pcols, pack.Col{
						Name: c.Name, Type: vec.I64,
						Dom: domain.New(0, int64(card)), // +1 for code 0
					})
					continue
				}
			}
			if c.Type == vec.Str && codeStrings {
				// Section IV-F: USSR-backed payload strings stored as
				// 16-bit slot codes in the hot area; the full reference
				// moves to the cold area for exceptions (code 0).
				j.payloadCode[i] = true
				j.payloadOffs[i] = -1
				j.codeColdOff[i] = j.exceptBytes
				j.exceptBytes += 8
				pcols = append(pcols, pack.Col{Name: c.Name, Type: vec.Str, Dom: ussrCodeDomain})
				continue
			}
			if packable := c.Type.IsInt() && c.Type != vec.I128; !packable {
				// Uncoded strings (references) and floats are stored
				// directly after the packed words at their full width.
				j.payloadOffs[i] = strBytes // resolved after the plan width is known
				strBytes += 8
				continue
			}
			j.payloadOffs[i] = -1
			pcols = append(pcols, pack.Col{Name: c.Name, Type: c.Type, Dom: c.Dom})
		}
		j.payloadPlan, err = pack.ChoosePlan(pcols)
		if err != nil {
			return nil, err
		}
		for i := range payload {
			if j.payloadOffs[i] >= 0 {
				j.payloadOffs[i] += j.payloadPlan.RecordBytes()
			}
		}
		j.payloadSize = j.payloadPlan.RecordBytes() + strBytes
	} else {
		j.payloadOffs = make([]int, len(payload))
		for i, c := range payload {
			j.payloadOffs[i] = j.payloadSize
			j.payloadSize += c.Type.Width()
		}
	}

	hotExtra, coldExtra := j.payloadSize, j.exceptBytes
	if j.payloadCold {
		hotExtra, coldExtra = 0, j.payloadSize
	}
	cap := opts.CapacityHint
	if cap == 0 {
		cap = 1024
	}
	est := opts.EstRows
	if est <= 0 {
		est = int64(cap)
	}
	bits := opts.PartitionBits
	if bits < 0 {
		bits = core.ChoosePartitionBits(est, schema.KeyBytes()+hotExtra)
	}
	j.pt = core.NewPartTable(schema, hotExtra, coldExtra, cap, bits)
	if opts.Bloom == BloomOn || (opts.Bloom == BloomAuto && opts.Selective) {
		j.bloom = hashtab.NewBloom(int(est))
	}
	j.gRecs = make([][]int32, j.pt.NParts())
	j.gRows = make([][]int32, j.pt.NParts())
	return j, nil
}

// Table exposes the first partition's table. With the default monolithic
// layout (Bits() == 0) this is the whole join table; partitioned callers
// should use Tables() instead.
func (j *Join) Table() *core.Table { return j.pt.Part(0) }

// Tables exposes every partition's table (footprint accounting).
func (j *Join) Tables() []*core.Table { return j.pt.Parts() }

// Bits returns the radix-partitioning width of the build side.
func (j *Join) Bits() int { return j.pt.Bits() }

// Len returns the number of build-side records across partitions.
func (j *Join) Len() int { return j.pt.Len() }

// MemoryBytes returns the total table footprint, Bloom filter included.
func (j *Join) MemoryBytes() int {
	n := j.pt.MemoryBytes()
	if j.bloom != nil {
		n += j.bloom.MemoryBytes()
	}
	return n
}

// BloomStats reports how many probe rows the Bloom pre-pass inspected and
// how many it shed before any table access, for this handle.
func (j *Join) BloomStats() (checked, dropped int64) { return j.bloomChecked, j.bloomDropped }

// HasBloom reports whether the join carries a Bloom filter.
func (j *Join) HasBloom() bool { return j.bloom != nil }

// ProbeClone returns a handle on the same (fully built, now immutable)
// tables for concurrent probing by another goroutine. The clone shares
// the partitioned table, Bloom filter and payload layout but owns a fresh
// key schema — and therefore fresh per-batch scratch — bound to the
// caller's store, so probe-side hashing, matching and fast/slow
// accounting never touch shared state. The join must not be Built after
// cloning.
func (j *Join) ProbeClone(store *strs.Store) *Join {
	clone := *j
	schema, err := core.NewKeySchema(j.Flags, j.Schema.Cols, store)
	if err != nil {
		// The same columns and flags produced a valid layout at build time.
		panic("join: ProbeClone schema: " + err.Error())
	}
	clone.Schema = schema
	clone.scratch = nil
	clone.hashBuf = nil
	clone.recBuf = nil
	clone.recIdx = nil
	clone.headBuf = nil
	clone.survivors = nil
	clone.probePrep = nil
	clone.gRecs = make([][]int32, j.pt.NParts())
	clone.gRows = make([][]int32, j.pt.NParts())
	clone.bloomChecked = 0
	clone.bloomDropped = 0
	return &clone
}

// payloadArea returns the byte area, stride and base offset where
// payloads live in partition table t.
func (j *Join) payloadArea(t *core.Table) (buf []byte, stride, base int) {
	if j.payloadCold {
		return t.RawCold(), t.ColdWidth(), t.Schema.ColdBytes()
	}
	return t.RawHot(), t.HotWidth(), t.Schema.KeyBytes()
}

// bloomAddBatch inserts the active rows' hashes into the Bloom filter.
//
//ocht:hot
func (j *Join) bloomAddBatch(hashes []uint64, rows []int32) {
	b := j.bloom
	for _, r := range rows {
		b.Add(hashes[r])
	}
}

// Build inserts the active rows of the inner relation: hash once, feed
// the Bloom filter, group the batch by radix partition, then insert and
// scatter payloads partition at a time so each insert run stays inside
// one partition's working set.
func (j *Join) Build(keyCols, payloadCols []*vec.Vector, rows []int32) {
	n := physLen(keyCols, payloadCols, rows)
	p := j.Schema.Prepare(keyCols, rows)
	hashes, recs := j.buffers(n)
	j.Schema.Hash(p, rows, hashes)
	if j.bloom != nil {
		j.bloomAddBatch(hashes, rows)
	}

	// Translate coded payload columns once per batch, in row-position
	// space; the per-partition loop below only scatters.
	var ints []*vec.Vector
	var exVec []*vec.Vector // per payload col: cold exception source, or nil
	if j.payloadPlan != nil {
		exVec = make([]*vec.Vector, len(j.Payload))
		for i := range j.Payload {
			if j.payloadOffs[i] >= 0 {
				continue
			}
			v := payloadCols[i]
			switch {
			case j.payloadCode[i]:
				// Translate references to slot codes; exceptions get
				// code 0 and their full reference in the cold area.
				codes := vec.New(vec.Str, v.Len())
				for _, r := range rows {
					if ref := v.Str[r]; ref.InUSSR() {
						codes.Str[r] = vec.StrRef(ref.USSRSlot())
					} else {
						codes.Str[r] = 0
					}
				}
				exVec[i] = v
				v = codes
			case j.payloadSample[i]:
				// Sample-guided code: offset+1 inside the sample domain,
				// 0 for outliers (full value in the cold area).
				sd := j.Payload[i].SampleDom
				codes := vec.New(vec.I64, v.Len())
				for _, r := range rows {
					val := v.Int64At(int(r))
					if sd.Contains(val) {
						codes.I64[r] = val - sd.Min + 1
					} else {
						codes.I64[r] = 0
					}
				}
				exVec[i] = asI64(v, rows)
				v = codes
			}
			ints = append(ints, v)
		}
		if cap(j.scratch) < n {
			j.scratch = make([]uint64, n)
		}
	}

	groups := j.pt.PartitionRows(hashes, rows)
	for pi, g := range groups {
		if len(g) == 0 {
			continue
		}
		t := j.pt.Part(pi)
		t.InsertBatch(p, hashes, g, recs)
		if cap(j.recIdx) < len(g) {
			j.recIdx = make([]int32, len(g))
		}
		recIdx := j.recIdx[:len(g)]
		for k, r := range g {
			recIdx[k] = recs[r]
		}
		buf, stride, base := j.payloadArea(t)
		if j.payloadPlan != nil {
			for i := range j.Payload {
				if ev := exVec[i]; ev != nil {
					et := vec.I64
					if j.payloadCode[i] {
						et = vec.Str
					}
					storeDirect(t.RawCold(), t.ColdWidth(),
						t.Schema.ColdBytes()+j.codeColdOff[i], et, ev, g, recIdx)
				}
			}
			j.payloadPlan.PackRecords(ints, g, buf, recIdx, stride, base, j.scratch[:n])
		}
		for i, c := range j.Payload {
			off := j.payloadOffs[i]
			if off < 0 {
				continue // packed above
			}
			storeDirect(buf, stride, base+off, c.Type, payloadCols[i], g, recIdx)
		}
	}
}

// PrepareProbe readies a probe batch: one Prepare+Hash sweep, then the
// Bloom pre-pass that sheds rows whose key cannot be in the build side.
// It returns the surviving selection vector (in probe-row order), valid
// until the next PrepareProbe/Build on this handle. Bloom filters have no
// false negatives, so a shed row is a proven miss: selective joins can
// treat it as unmatched without ever touching the table.
func (j *Join) PrepareProbe(keyCols []*vec.Vector, rows []int32) []int32 {
	n := physLen(keyCols, nil, rows)
	p := j.Schema.Prepare(keyCols, rows)
	hashes, _ := j.buffers(n)
	j.Schema.Hash(p, rows, hashes)
	j.probePrep = p
	if j.bloom != nil {
		j.survivors = j.bloom.Filter(hashes, rows, j.survivors[:0])
		j.bloomChecked += int64(len(rows))
		j.bloomDropped += int64(len(rows) - len(j.survivors))
	} else {
		j.survivors = append(j.survivors[:0], rows...)
	}
	return j.survivors
}

// ProbeStaged walks the chains for rows (a sub-chunk of the selection
// vector returned by the last PrepareProbe) in the two-phase staged
// sweep, appending matching (probe row, build record) pairs to the given
// slices. Records are partition-encoded; pass them back to FetchPayload /
// FetchKey unchanged.
func (j *Join) ProbeStaged(rows []int32, outRows, outRecs []int32) ([]int32, []int32) {
	if cap(j.headBuf) < len(rows) {
		j.headBuf = make([]int32, len(rows))
	}
	return j.pt.ProbeChainsStaged(j.probePrep, j.hashBuf, rows, j.headBuf[:len(rows)], outRows, outRecs)
}

// Probe matches the active rows of the outer relation against the table
// and returns the matching (probe row, build record) pairs: PrepareProbe
// plus a single ProbeStaged sweep over the survivors.
func (j *Join) Probe(keyCols []*vec.Vector, rows []int32) (matchRows, matchRecs []int32) {
	surv := j.PrepareProbe(keyCols, rows)
	return j.ProbeStaged(surv, nil, nil)
}

// groupByPart splits parallel (record, row) pairs by record partition
// into reused scratch, so the per-partition fetch loops below touch one
// partition's area at a time. Identity (single group) when monolithic.
func (j *Join) groupByPart(recs, rows []int32) (gRecs, gRows [][]int32) {
	if j.pt.Bits() == 0 {
		j.gRecs[0] = append(j.gRecs[0][:0], recs...)
		j.gRows[0] = append(j.gRows[0][:0], rows...)
		return j.gRecs, j.gRows
	}
	for p := range j.gRecs {
		j.gRecs[p] = j.gRecs[p][:0]
		j.gRows[p] = j.gRows[p][:0]
	}
	for i, grec := range recs {
		part, local := j.pt.DecodeRec(grec)
		j.gRecs[part] = append(j.gRecs[part], local)
		j.gRows[part] = append(j.gRows[part], rows[i])
	}
	return j.gRecs, j.gRows
}

// FetchPayload reconstructs payload column ci of the given build records
// into out at positions rows (tuple reconstruction after the probe).
// recs are partition-encoded records as returned by the probe.
func (j *Join) FetchPayload(ci int, recs []int32, out *vec.Vector, rows []int32) {
	gRecs, gRows := j.groupByPart(recs, rows)
	for pi := range gRecs {
		if len(gRecs[pi]) == 0 {
			continue
		}
		j.fetchPayloadPart(j.pt.Part(pi), ci, gRecs[pi], out, gRows[pi])
	}
}

func (j *Join) fetchPayloadPart(t *core.Table, ci int, recs []int32, out *vec.Vector, rows []int32) {
	buf, stride, base := j.payloadArea(t)
	off := j.payloadOffs[ci]
	if off < 0 {
		// Packed column: find its plan index.
		pi := 0
		for i := 0; i < ci; i++ {
			if j.payloadOffs[i] < 0 {
				pi++
			}
		}
		j.payloadPlan.UnpackColumn(pi, buf, recs, stride, base, out, rows)
		switch {
		case j.payloadCode != nil && j.payloadCode[ci]:
			// Slot codes back to references: base + slot*8, or the cold
			// exception reference for code 0 (Section IV-F).
			cold := t.RawCold()
			coldOff := t.Schema.ColdBytes() + j.codeColdOff[ci]
			for i, r := range rows {
				if code := uint16(out.Str[r]); code != 0 {
					out.Str[r] = ussr.RefForSlot(code)
				} else {
					pos := int(recs[i])*t.ColdWidth() + coldOff
					out.Str[r] = vec.StrRef(getU64(cold[pos:]))
				}
			}
		case j.payloadSample != nil && j.payloadSample[ci]:
			// Sample-guided codes back to values; 0 fetches the cold
			// outlier (Section III-B).
			sd := j.Payload[ci].SampleDom
			cold := t.RawCold()
			coldOff := t.Schema.ColdBytes() + j.codeColdOff[ci]
			for i, r := range rows {
				code := out.Int64At(int(r))
				if code != 0 {
					out.SetInt64(int(r), sd.Min+code-1)
				} else {
					pos := int(recs[i])*t.ColdWidth() + coldOff
					out.SetInt64(int(r), int64(getU64(cold[pos:])))
				}
			}
		}
		return
	}
	loadDirect(buf, stride, base+off, j.Payload[ci].Type, out, recs, rows)
}

// FetchKey reconstructs key column ci for the given build records.
// recs are partition-encoded records as returned by the probe.
func (j *Join) FetchKey(ci int, recs []int32, out *vec.Vector, rows []int32) {
	gRecs, gRows := j.groupByPart(recs, rows)
	for pi := range gRecs {
		if len(gRecs[pi]) == 0 {
			continue
		}
		j.pt.Part(pi).LoadKey(ci, gRecs[pi], out, gRows[pi])
	}
}

// asI64 widens an integer vector to int64 at the active rows.
func asI64(v *vec.Vector, rows []int32) *vec.Vector {
	if v.Typ == vec.I64 {
		return v
	}
	out := vec.New(vec.I64, v.Len())
	for _, r := range rows {
		out.I64[r] = v.Int64At(int(r))
	}
	return out
}

func physLen(a, b []*vec.Vector, rows []int32) int {
	n := 0
	for _, c := range a {
		if l := c.Len(); l > n {
			n = l
		}
	}
	for _, c := range b {
		if l := c.Len(); l > n {
			n = l
		}
	}
	for _, r := range rows {
		if int(r)+1 > n {
			n = int(r) + 1
		}
	}
	return n
}

func storeDirect(buf []byte, stride, off int, t vec.Type, v *vec.Vector, rows, recIdx []int32) {
	for i, r := range rows {
		pos := int(recIdx[i])*stride + off
		switch t {
		case vec.Str:
			putU64(buf[pos:], uint64(v.Str[r]))
		case vec.I64:
			putU64(buf[pos:], uint64(v.I64[r]))
		case vec.F64:
			putU64(buf[pos:], f64bits(v.F64[r]))
		case vec.I32:
			putU32(buf[pos:], uint32(v.I32[r]))
		case vec.I16:
			putU16(buf[pos:], uint16(v.I16[r]))
		case vec.I8:
			buf[pos] = byte(v.I8[r])
		case vec.Bool:
			if v.Bool[r] {
				buf[pos] = 1
			} else {
				buf[pos] = 0
			}
		}
	}
}

func loadDirect(buf []byte, stride, off int, t vec.Type, out *vec.Vector, recs, rows []int32) {
	for i, rec := range recs {
		pos := int(rec)*stride + off
		r := int(rows[i])
		switch t {
		case vec.Str:
			out.Str[r] = vec.StrRef(getU64(buf[pos:]))
		case vec.I64:
			out.I64[r] = int64(getU64(buf[pos:]))
		case vec.F64:
			out.F64[r] = f64frombits(getU64(buf[pos:]))
		case vec.I32:
			out.I32[r] = int32(getU32(buf[pos:]))
		case vec.I16:
			out.I16[r] = int16(getU16(buf[pos:]))
		case vec.I8:
			out.I8[r] = int8(buf[pos])
		case vec.Bool:
			out.Bool[r] = buf[pos] != 0
		}
	}
}
