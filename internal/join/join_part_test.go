package join

import (
	"fmt"
	"sort"
	"testing"

	"ocht/internal/core"
	"ocht/internal/domain"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

// matchTuple is one (probe row, key, payloads) observation, the unit of
// the order-insensitive equivalence oracle.
type matchTuple struct {
	row int32
	key int64
	p1  int64
	p2  int32
}

func runPartJoin(t *testing.T, flags core.Flags, selective bool, opts Options) []matchTuple {
	t.Helper()
	store := strs.NewStore(flags.UseUSSR)
	keys := []core.KeyCol{
		{Name: "k1", Type: vec.I64, Dom: domain.New(0, 999)},
		{Name: "k2", Type: vec.I64, Dom: domain.New(0, 99)},
	}
	payload := []PayloadCol{
		{Name: "p1", Type: vec.I64, Dom: domain.New(0, 10)},
		{Name: "p2", Type: vec.I32, Dom: domain.New(-5, 5)},
	}
	opts.Selective = selective
	j, err := New(flags, keys, payload, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	const nb = 2000
	k1 := vec.New(vec.I64, nb)
	k2 := vec.New(vec.I64, nb)
	p1 := vec.New(vec.I64, nb)
	p2 := vec.New(vec.I32, nb)
	for i := 0; i < nb; i++ {
		k1.I64[i] = int64(i % 1000)
		k2.I64[i] = int64(i % 100)
		p1.I64[i] = int64(i % 11)
		p2.I32[i] = int32(i%11) - 5
	}
	// Build in two batches so partition scratch reuse is exercised.
	j.Build([]*vec.Vector{k1, k2}, []*vec.Vector{p1, p2}, batchRows(nb)[:nb/2])
	j.Build([]*vec.Vector{k1, k2}, []*vec.Vector{p1, p2}, batchRows(nb)[nb/2:])
	if j.Len() != nb {
		t.Fatalf("build stored %d", j.Len())
	}

	const np = 1000
	q1 := vec.New(vec.I64, np)
	q2 := vec.New(vec.I64, np)
	for i := 0; i < np; i++ {
		q1.I64[i] = int64(i)
		q2.I64[i] = int64(i % 100)
	}
	mrows, mrecs := j.Probe([]*vec.Vector{q1, q2}, batchRows(np))
	out1 := vec.New(vec.I64, len(mrecs))
	out2 := vec.New(vec.I32, len(mrecs))
	key1 := vec.New(vec.I64, len(mrecs))
	outRows := batchRows(len(mrecs))
	j.FetchPayload(0, mrecs, out1, outRows)
	j.FetchPayload(1, mrecs, out2, outRows)
	j.FetchKey(0, mrecs, key1, outRows)
	tuples := make([]matchTuple, len(mrows))
	for i := range mrows {
		tuples[i] = matchTuple{row: mrows[i], key: key1.I64[i], p1: out1.I64[i], p2: out2.I32[i]}
	}
	sort.Slice(tuples, func(a, b int) bool {
		x, y := tuples[a], tuples[b]
		if x.row != y.row {
			return x.row < y.row
		}
		if x.p1 != y.p1 {
			return x.p1 < y.p1
		}
		return x.p2 < y.p2
	})
	return tuples
}

// TestPartitionedJoinEquivalence checks that radix partitioning and the
// Bloom pre-pass never change the match multiset or the reconstructed
// payloads, across flag combos and radix widths.
func TestPartitionedJoinEquivalence(t *testing.T) {
	for _, flags := range flagCombos {
		for _, selective := range []bool{false, true} {
			want := runPartJoin(t, flags, selective, Options{Bloom: BloomOff})
			for _, bits := range []int{0, 3, 6, -1} {
				for _, bloom := range []int{BloomAuto, BloomOn, BloomOff} {
					name := fmt.Sprintf("%s/selective=%v/bits=%d/bloom=%d", flagName(flags), selective, bits, bloom)
					t.Run(name, func(t *testing.T) {
						got := runPartJoin(t, flags, selective, Options{PartitionBits: bits, Bloom: bloom})
						if len(got) != len(want) {
							t.Fatalf("%d matches, monolithic found %d", len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("tuple %d diverges: %+v vs %+v", i, got[i], want[i])
							}
						}
					})
				}
			}
		}
	}
}

// TestBloomShedsMisses drives an intentionally miss-heavy probe and
// checks the pre-pass sheds the bulk of it before any table access.
func TestBloomShedsMisses(t *testing.T) {
	store := strs.NewStore(false)
	keys := []core.KeyCol{{Name: "k", Type: vec.I64, Dom: domain.New(0, 1<<30)}}
	j, err := New(core.Flags{Compress: true}, keys, nil, store, Options{Selective: true, EstRows: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !j.HasBloom() {
		t.Fatal("selective join must carry a Bloom filter under BloomAuto")
	}
	const nb = 4096
	k := vec.New(vec.I64, nb)
	for i := range k.I64 {
		k.I64[i] = int64(i) * 1024 // sparse keys: probes mostly miss
	}
	j.Build([]*vec.Vector{k}, nil, batchRows(nb))

	q := vec.New(vec.I64, vec.Size)
	hits := 0
	for base := 0; base < 1<<16; base += vec.Size {
		for i := range q.I64 {
			q.I64[i] = int64(base + i) // dense probe: 1/1024 hit rate
		}
		mrows, _ := j.Probe([]*vec.Vector{q}, batchRows(vec.Size))
		hits += len(mrows)
	}
	if want := 1 << 6; hits != want { // multiples of 1024 below 2^16
		t.Fatalf("probe found %d matches, want %d", hits, want)
	}
	checked, dropped := j.BloomStats()
	if checked == 0 {
		t.Fatal("Bloom pre-pass never ran")
	}
	misses := checked - int64(hits)
	if float64(dropped) < 0.9*float64(misses) {
		t.Errorf("Bloom shed %d of %d misses (%.1f%%), want > 90%%",
			dropped, misses, 100*float64(dropped)/float64(misses))
	}
}
