package join

import (
	"fmt"
	"math/rand"
	"testing"

	"ocht/internal/core"
	"ocht/internal/domain"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

var flagCombos = []core.Flags{
	{},
	{Compress: true},
	{Compress: true, Split: true},
	core.All(),
}

func flagName(f core.Flags) string {
	return fmt.Sprintf("compress=%v,split=%v,ussr=%v", f.Compress, f.Split, f.UseUSSR)
}

func batchRows(n int) []int32 {
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	return rows
}

func TestJoinEndToEnd(t *testing.T) {
	for _, flags := range flagCombos {
		for _, selective := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/selective=%v", flagName(flags), selective), func(t *testing.T) {
				store := strs.NewStore(flags.UseUSSR)
				keys := []core.KeyCol{
					{Name: "k1", Type: vec.I64, Dom: domain.New(0, 999)},
					{Name: "k2", Type: vec.I64, Dom: domain.New(0, 99)},
				}
				payload := []PayloadCol{
					{Name: "p1", Type: vec.I64, Dom: domain.New(0, 10)},
					{Name: "p2", Type: vec.I32, Dom: domain.New(-5, 5)},
				}
				j, err := New(flags, keys, payload, store, Options{Selective: selective})
				if err != nil {
					t.Fatal(err)
				}
				// Build 2000 rows; key (i%1000, i%100), payload (i%11, i%11-5).
				const nb = 2000
				k1 := vec.New(vec.I64, nb)
				k2 := vec.New(vec.I64, nb)
				p1 := vec.New(vec.I64, nb)
				p2 := vec.New(vec.I32, nb)
				for i := 0; i < nb; i++ {
					k1.I64[i] = int64(i % 1000)
					k2.I64[i] = int64(i % 100)
					p1.I64[i] = int64(i % 11)
					p2.I32[i] = int32(i%11) - 5
				}
				j.Build([]*vec.Vector{k1, k2}, []*vec.Vector{p1, p2}, batchRows(nb))
				if j.Table().Len() != nb {
					t.Fatalf("build stored %d", j.Table().Len())
				}

				// Probe: keys (x, x%100) for x in 0..999; each matches the
				// 2 build rows i=x and i=x+1000.
				const np = 1000
				q1 := vec.New(vec.I64, np)
				q2 := vec.New(vec.I64, np)
				for i := 0; i < np; i++ {
					q1.I64[i] = int64(i)
					q2.I64[i] = int64(i % 100)
				}
				mrows, mrecs := j.Probe([]*vec.Vector{q1, q2}, batchRows(np))
				if len(mrows) != 2*np {
					t.Fatalf("got %d matches, want %d", len(mrows), 2*np)
				}
				// Fetch payloads and validate against the build function.
				out1 := vec.New(vec.I64, len(mrecs))
				out2 := vec.New(vec.I32, len(mrecs))
				outRows := batchRows(len(mrecs))
				j.FetchPayload(0, mrecs, out1, outRows)
				j.FetchPayload(1, mrecs, out2, outRows)
				key1 := vec.New(vec.I64, len(mrecs))
				j.FetchKey(0, mrecs, key1, outRows)
				for i := range mrecs {
					x := q1.I64[mrows[i]]
					if key1.I64[i] != x {
						t.Fatalf("match %d: key %d != probe %d", i, key1.I64[i], x)
					}
					// Build row was either x or x+1000; both have payload
					// derived from i%11 — validate consistency.
					v := out1.I64[i]
					if v != x%11 && v != (x+1000)%11 {
						t.Fatalf("match %d: payload p1=%d for key %d", i, v, x)
					}
					if int64(out2.I32[i]) != v-5 {
						t.Fatalf("match %d: p2=%d, want %d", i, out2.I32[i], v-5)
					}
				}
			})
		}
	}
}

func TestSelectiveJoinHotAreaThin(t *testing.T) {
	store := strs.NewStore(false)
	keys := []core.KeyCol{{Name: "k", Type: vec.I64, Dom: domain.New(0, 1<<20)}}
	payload := []PayloadCol{
		{Name: "p1", Type: vec.I64, Dom: domain.Unknown},
		{Name: "p2", Type: vec.I64, Dom: domain.Unknown},
		{Name: "p3", Type: vec.I64, Dom: domain.Unknown},
		{Name: "p4", Type: vec.I64, Dom: domain.Unknown},
	}
	flags := core.Flags{Compress: true, Split: true}
	sel, err := New(flags, keys, payload, store, Options{Selective: true})
	if err != nil {
		t.Fatal(err)
	}
	non, err := New(flags, keys, payload, store, Options{Selective: false})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Table().HotWidth() >= non.Table().HotWidth() {
		t.Errorf("selective hot record %dB must be thinner than %dB",
			sel.Table().HotWidth(), non.Table().HotWidth())
	}
	if sel.Table().ColdWidth() <= non.Table().ColdWidth() {
		t.Error("selective join must move payload to the cold area")
	}
}

func TestStringPayload(t *testing.T) {
	for _, flags := range flagCombos {
		t.Run(flagName(flags), func(t *testing.T) {
			store := strs.NewStore(flags.UseUSSR)
			keys := []core.KeyCol{{Name: "k", Type: vec.I64, Dom: domain.New(0, 99)}}
			payload := []PayloadCol{
				{Name: "name", Type: vec.Str},
				{Name: "v", Type: vec.I64, Dom: domain.New(0, 1000)},
			}
			j, err := New(flags, keys, payload, store, Options{})
			if err != nil {
				t.Fatal(err)
			}
			const nb = 100
			k := vec.New(vec.I64, nb)
			name := vec.New(vec.Str, nb)
			v := vec.New(vec.I64, nb)
			for i := 0; i < nb; i++ {
				k.I64[i] = int64(i)
				name.Str[i] = store.Intern(fmt.Sprintf("name-%03d", i))
				v.I64[i] = int64(i * 10)
			}
			j.Build([]*vec.Vector{k}, []*vec.Vector{name, v}, batchRows(nb))

			q := vec.New(vec.I64, nb)
			for i := 0; i < nb; i++ {
				q.I64[i] = int64(i)
			}
			mrows, mrecs := j.Probe([]*vec.Vector{q}, batchRows(nb))
			if len(mrows) != nb {
				t.Fatalf("matches: %d", len(mrows))
			}
			outName := vec.New(vec.Str, nb)
			outV := vec.New(vec.I64, nb)
			j.FetchPayload(0, mrecs, outName, batchRows(nb))
			j.FetchPayload(1, mrecs, outV, batchRows(nb))
			for i := range mrecs {
				kk := q.I64[mrows[i]]
				want := fmt.Sprintf("name-%03d", kk)
				if got := store.Get(outName.Str[i]); got != want {
					t.Fatalf("payload string %q, want %q", got, want)
				}
				if outV.I64[i] != kk*10 {
					t.Fatalf("payload int %d, want %d", outV.I64[i], kk*10)
				}
			}
		})
	}
}

func TestStringKeyJoin(t *testing.T) {
	for _, flags := range flagCombos {
		t.Run(flagName(flags), func(t *testing.T) {
			store := strs.NewStore(flags.UseUSSR)
			keys := []core.KeyCol{{Name: "s", Type: vec.Str}}
			payload := []PayloadCol{{Name: "v", Type: vec.I64, Dom: domain.New(0, 100)}}
			j, err := New(flags, keys, payload, store, Options{})
			if err != nil {
				t.Fatal(err)
			}
			const nb = 50
			s := vec.New(vec.Str, nb)
			v := vec.New(vec.I64, nb)
			for i := 0; i < nb; i++ {
				s.Str[i] = store.Intern(fmt.Sprintf("key-%02d", i))
				v.I64[i] = int64(i)
			}
			j.Build([]*vec.Vector{s}, []*vec.Vector{v}, batchRows(nb))

			// Probe with freshly interned strings (new refs in vanilla
			// mode: content comparison must still match).
			q := vec.New(vec.Str, nb)
			for i := 0; i < nb; i++ {
				q.Str[i] = store.Intern(fmt.Sprintf("key-%02d", i))
			}
			mrows, mrecs := j.Probe([]*vec.Vector{q}, batchRows(nb))
			if len(mrows) != nb {
				t.Fatalf("matches: %d, want %d", len(mrows), nb)
			}
			out := vec.New(vec.I64, nb)
			j.FetchPayload(0, mrecs, out, batchRows(nb))
			for i := range mrecs {
				if out.I64[i] != int64(mrows[i]) {
					t.Fatalf("payload mismatch at %d", i)
				}
			}
			// Probing with unseen strings must miss.
			for i := 0; i < nb; i++ {
				q.Str[i] = store.Intern(fmt.Sprintf("miss-%02d", i))
			}
			mrows, _ = j.Probe([]*vec.Vector{q}, batchRows(nb))
			if len(mrows) != 0 {
				t.Fatalf("unexpected matches: %d", len(mrows))
			}
		})
	}
}

func TestProbeMissesOnly(t *testing.T) {
	store := strs.NewStore(false)
	keys := []core.KeyCol{{Name: "k", Type: vec.I64, Dom: domain.New(0, 1000)}}
	j, err := New(core.All(), keys, nil, store, Options{Selective: true})
	if err != nil {
		t.Fatal(err)
	}
	k := vec.New(vec.I64, 100)
	for i := range k.I64 {
		k.I64[i] = int64(i)
	}
	j.Build([]*vec.Vector{k}, nil, batchRows(100))
	rng := rand.New(rand.NewSource(1))
	q := vec.New(vec.I64, 100)
	for i := range q.I64 {
		q.I64[i] = 500 + rng.Int63n(400) // all misses
	}
	mrows, _ := j.Probe([]*vec.Vector{q}, batchRows(100))
	if len(mrows) != 0 {
		t.Errorf("%d false matches", len(mrows))
	}
}

func TestCompressedJoinFootprint(t *testing.T) {
	build := func(flags core.Flags) *Join {
		store := strs.NewStore(flags.UseUSSR)
		keys := []core.KeyCol{
			{Name: "k1", Type: vec.I64, Dom: domain.New(0, 1000)},
			{Name: "k2", Type: vec.I64, Dom: domain.New(0, 1000)},
		}
		payload := []PayloadCol{
			{Name: "p1", Type: vec.I64, Dom: domain.New(0, 10)},
			{Name: "p2", Type: vec.I64, Dom: domain.New(0, 10)},
			{Name: "p3", Type: vec.I64, Dom: domain.New(0, 10)},
			{Name: "p4", Type: vec.I64, Dom: domain.New(0, 10)},
		}
		j, err := New(flags, keys, payload, store, Options{CapacityHint: 1 << 14})
		if err != nil {
			t.Fatal(err)
		}
		const nb = 10_000
		k1, k2 := vec.New(vec.I64, vec.Size), vec.New(vec.I64, vec.Size)
		ps := make([]*vec.Vector, 4)
		for i := range ps {
			ps[i] = vec.New(vec.I64, vec.Size)
		}
		rng := rand.New(rand.NewSource(2))
		for done := 0; done < nb; done += vec.Size {
			for i := 0; i < vec.Size; i++ {
				k1.I64[i] = rng.Int63n(1001)
				k2.I64[i] = rng.Int63n(1001)
				for _, p := range ps {
					p.I64[i] = rng.Int63n(11)
				}
			}
			j.Build([]*vec.Vector{k1, k2}, ps, batchRows(vec.Size))
		}
		return j
	}
	vanilla := build(core.Vanilla())
	comp := build(core.Flags{Compress: true})
	ratio := float64(vanilla.Table().MemoryBytes()) / float64(comp.Table().MemoryBytes())
	// 2 keys (10 bits each) + 4 payloads (4 bits each) = 36 bits -> one
	// 64-bit word + overhead, vs 48 bytes vanilla: expect >= 2x.
	if ratio < 2 {
		t.Errorf("compression ratio %.2f, want >= 2 (vanilla %dB, compressed %dB)",
			ratio, vanilla.Table().MemoryBytes(), comp.Table().MemoryBytes())
	}
}

func TestSampleGuidedPayload(t *testing.T) {
	// A payload whose global domain is ruined by outliers: 99% of values
	// in [0,1000], 1% at 2^40. Sample-guided coding keeps the hot record
	// narrow and still reconstructs outliers exactly from the cold area.
	store := strs.NewStore(false)
	keys := []core.KeyCol{{Name: "k", Type: vec.I64, Dom: domain.New(0, 1<<20)}}
	flags := core.Flags{Compress: true, Split: true}

	mk := func(sample domain.D) *Join {
		payload := []PayloadCol{{
			Name: "v", Type: vec.I64,
			Dom:       domain.New(0, 1<<40), // global bounds include outliers
			SampleDom: sample,
		}}
		j, err := New(flags, keys, payload, store, Options{CapacityHint: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	guided := mk(domain.New(0, 1000))
	global := mk(domain.Unknown)

	const n = 4096
	k := vec.New(vec.I64, vec.Size)
	v := vec.New(vec.I64, vec.Size)
	rows := batchRows(vec.Size)
	vals := make(map[int64]int64, n)
	rng := rand.New(rand.NewSource(8))
	for done := 0; done < n; done += vec.Size {
		for i := 0; i < vec.Size; i++ {
			key := int64(done + i)
			k.I64[i] = key
			if rng.Intn(100) == 0 {
				v.I64[i] = 1<<40 - int64(rng.Intn(5)) // outlier
			} else {
				v.I64[i] = int64(rng.Intn(1001))
			}
			vals[key] = v.I64[i]
		}
		guided.Build([]*vec.Vector{k}, []*vec.Vector{v}, rows)
		global.Build([]*vec.Vector{k}, []*vec.Vector{v}, rows)
	}

	// The sample-guided hot record must be thinner than the global-domain
	// one (11 bits + exception code vs 41 bits).
	if guided.Table().HotWidth() >= global.Table().HotWidth() {
		t.Errorf("sample-guided hot record %dB should undercut global %dB",
			guided.Table().HotWidth(), global.Table().HotWidth())
	}

	// Every value, including outliers, must reconstruct exactly.
	for done := 0; done < n; done += vec.Size {
		for i := 0; i < vec.Size; i++ {
			k.I64[i] = int64(done + i)
		}
		mr, mc := guided.Probe([]*vec.Vector{k}, rows)
		if len(mr) != vec.Size {
			t.Fatalf("probe matched %d", len(mr))
		}
		out := vec.New(vec.I64, len(mr))
		outRows := batchRows(len(mr))
		guided.FetchPayload(0, mc, out, outRows)
		for i, r := range mr {
			key := k.I64[r]
			if out.I64[i] != vals[key] {
				t.Fatalf("key %d: payload %d want %d", key, out.I64[i], vals[key])
			}
		}
	}
}
