package join

import (
	"encoding/binary"
	"math"
)

func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putU16(b []byte, v uint16) { binary.LittleEndian.PutUint16(b, v) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func getU16(b []byte) uint16    { return binary.LittleEndian.Uint16(b) }

func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f64frombits(u uint64) float64 { return math.Float64frombits(u) }
