package pack

import (
	"encoding/binary"

	"ocht/internal/vec"
)

// FullProcessThreshold is the micro-adaptive selectivity threshold of
// Section II-C: when at least this fraction of a batch is still active the
// pack kernels process the vector fully (branch-free) instead of gathering
// through the selection vector.
const FullProcessThreshold = 0.25

// wordSlice is a pre-resolved slice descriptor used by the kernels.
type wordSlice struct {
	get      func(int) uint64 // raw value accessor, sign-extended to 64 bits
	base     uint64           // domain minimum (as uint64, wrap-around subtract)
	srcShift uint
	mask     uint64
	outShift uint
}

// kernels returns the resolved slice parameters for output word w.
func (p *Plan) kernels(w int, cols []*vec.Vector) []wordSlice {
	var ks []wordSlice
	for _, s := range p.Slices {
		if s.Word != w {
			continue
		}
		c := p.Cols[s.Col]
		ks = append(ks, wordSlice{
			get:      getter(cols[s.Col]),
			base:     uint64(c.Dom.Min),
			srcShift: uint(s.SrcShift),
			mask:     s.Mask(),
			outShift: uint(s.OutShift),
		})
	}
	return ks
}

// getter returns an accessor producing the raw value at a physical
// position as a sign-extended uint64 (so wrap-around subtraction of the
// domain base yields the non-negative offset).
func getter(v *vec.Vector) func(int) uint64 {
	switch v.Typ {
	case vec.I8:
		d := v.I8
		return func(i int) uint64 { return uint64(int64(d[i])) }
	case vec.I16:
		d := v.I16
		return func(i int) uint64 { return uint64(int64(d[i])) }
	case vec.I32:
		d := v.I32
		return func(i int) uint64 { return uint64(int64(d[i])) }
	case vec.I64:
		d := v.I64
		return func(i int) uint64 { return uint64(d[i]) }
	case vec.Str:
		d := v.Str
		return func(i int) uint64 { return uint64(d[i]) }
	case vec.Bool:
		d := v.Bool
		return func(i int) uint64 {
			if d[i] {
				return 1
			}
			return 0
		}
	default:
		panic("pack: unsupported input type " + v.Typ.String())
	}
}

// PackWord computes output word w of the plan for the given rows, writing
// out[pos] for every active physical position pos. Implements the paper's
// pack2_i32_i16_to_i32-style kernels with runtime per-column parameters,
// including the micro-adaptive full-vector mode and the zero-base fast
// path (Section II-C).
//
// out must be at least as long as the physical vectors. When the active
// fraction is at least FullProcessThreshold the kernel computes all
// physical positions (cheaper than gathering); otherwise only the selected
// ones.
func (p *Plan) PackWord(w int, cols []*vec.Vector, rows []int32, out []uint64) {
	phys := physLen(cols)
	full := len(rows) >= int(FullProcessThreshold*float64(phys))
	p.PackWordMode(w, cols, rows, out, full)
}

// PackWordMode is PackWord with the micro-adaptive decision overridden:
// full=true processes every physical position, full=false gathers through
// the selection vector. Exposed for the micro-adaptivity ablation bench.
func (p *Plan) PackWordMode(w int, cols []*vec.Vector, rows []int32, out []uint64, full bool) {
	if p.packWordI64(w, cols, rows, out, full) {
		return
	}
	ks := p.kernels(w, cols)
	phys := physLen(cols)

	allZeroBase := true
	for _, k := range ks {
		if k.base != 0 {
			allZeroBase = false
			break
		}
	}

	if full {
		if allZeroBase {
			for i := 0; i < phys; i++ {
				var word uint64
				for _, k := range ks {
					word |= (k.get(i) >> k.srcShift & k.mask) << k.outShift
				}
				out[i] = word
			}
			return
		}
		for i := 0; i < phys; i++ {
			var word uint64
			for _, k := range ks {
				word |= ((k.get(i) - k.base) >> k.srcShift & k.mask) << k.outShift
			}
			out[i] = word
		}
		return
	}
	if allZeroBase {
		for _, r := range rows {
			i := int(r)
			var word uint64
			for _, k := range ks {
				word |= (k.get(i) >> k.srcShift & k.mask) << k.outShift
			}
			out[i] = word
		}
		return
	}
	for _, r := range rows {
		i := int(r)
		var word uint64
		for _, k := range ks {
			word |= ((k.get(i) - k.base) >> k.srcShift & k.mask) << k.outShift
		}
		out[i] = word
	}
}

// InDomain writes match[pos] = whether every plan column's value at the
// active positions lies inside its domain. Probe-side values outside the
// build-side domain cannot match any stored key, so compressed comparison
// first filters them out (Section II-D).
//
//ocht:hot
func (p *Plan) InDomain(cols []*vec.Vector, rows []int32, match []bool) {
	for _, r := range rows {
		match[r] = true
	}
	for ci, c := range p.Cols {
		if !c.Dom.Valid {
			continue
		}
		lo, hi := c.Dom.Min, c.Dom.Max
		if cols[ci].Typ == vec.I64 {
			d := cols[ci].I64
			for _, r := range rows {
				if v := d[r]; v < lo || v > hi {
					match[r] = false
				}
			}
			continue
		}
		get := getter(cols[ci])
		for _, r := range rows {
			v := int64(get(int(r)))
			if v < lo || v > hi {
				match[r] = false
			}
		}
	}
}

// PackRecords packs the given rows into NSM records: for active position
// rows[i], the record at byte offset recIdx[i]*stride (+off) inside dst.
// This is the pack-then-scatter step of the build phase (Section II-C).
// scratch must hold at least the physical vector length; it is reused
// across words.
func (p *Plan) PackRecords(cols []*vec.Vector, rows []int32, dst []byte, recIdx []int32, stride, off int, scratch []uint64) {
	wb := p.WordBits / 8
	for w := 0; w < p.Words; w++ {
		p.PackWord(w, cols, rows, scratch)
		wordOff := off + w*wb
		if p.WordBits == 32 {
			for i, r := range rows {
				pos := int(recIdx[i])*stride + wordOff
				binary.LittleEndian.PutUint32(dst[pos:], uint32(scratch[r]))
			}
		} else {
			for i, r := range rows {
				pos := int(recIdx[i])*stride + wordOff
				binary.LittleEndian.PutUint64(dst[pos:], scratch[r])
			}
		}
	}
}

// UnpackColumn decompresses column c of the plan from NSM records into
// out at the active positions: out[rows[i]] = base + unpacked bits of the
// record at recIdx[i]. It mirrors the paper's unpack2_i32_i16_to_i16
// fetch-decompress kernels: up to 4 slices are fetched from the record and
// stitched back together (Section II-C).
func (p *Plan) UnpackColumn(c int, recs []byte, recIdx []int32, stride, off int, out *vec.Vector, rows []int32) {
	base := uint64(p.Cols[c].Dom.Min)
	slices := p.byCol[c]
	wb := p.WordBits / 8
	set := setter(out)
	if len(slices) == 0 {
		// Constant column: singleton domain, value is the base.
		for _, r := range rows {
			set(int(r), base)
		}
		return
	}
	for i, ri := range recIdx {
		rec := recs[int(ri)*stride+off:]
		var v uint64
		for _, si := range slices {
			s := p.Slices[si]
			var word uint64
			if p.WordBits == 32 {
				word = uint64(binary.LittleEndian.Uint32(rec[s.Word*wb:]))
			} else {
				word = binary.LittleEndian.Uint64(rec[s.Word*wb:])
			}
			v |= (word >> uint(s.OutShift) & s.Mask()) << uint(s.SrcShift)
		}
		set(int(rows[i]), v+base)
	}
}

// setter returns a store function narrowing a reconstructed uint64 into
// the output vector's type.
func setter(v *vec.Vector) func(int, uint64) {
	switch v.Typ {
	case vec.I8:
		d := v.I8
		return func(i int, x uint64) { d[i] = int8(x) }
	case vec.I16:
		d := v.I16
		return func(i int, x uint64) { d[i] = int16(x) }
	case vec.I32:
		d := v.I32
		return func(i int, x uint64) { d[i] = int32(x) }
	case vec.I64:
		d := v.I64
		return func(i int, x uint64) { d[i] = int64(x) }
	case vec.Str:
		d := v.Str
		return func(i int, x uint64) { d[i] = vec.StrRef(x) }
	case vec.Bool:
		d := v.Bool
		return func(i int, x uint64) { d[i] = x != 0 }
	default:
		panic("pack: unsupported output type " + v.Typ.String())
	}
}

// MatchRecords compares pre-packed probe key words against stored records:
// match[rows[i]] &&= (all plan words of record recIdx[i] equal
// probeWords[w][rows[i]]). Comparison happens directly on compressed data;
// the probe key was brought into the stored representation first
// (Section II-D: compress B, compare to stored A).
func (p *Plan) MatchRecords(probeWords [][]uint64, recs []byte, recIdx []int32, stride, off int, rows []int32, match []bool) {
	wb := p.WordBits / 8
	for w := 0; w < p.Words; w++ {
		pw := probeWords[w]
		wordOff := off + w*wb
		if p.WordBits == 32 {
			for i, r := range rows {
				if !match[r] {
					continue
				}
				rec := int(recIdx[i])*stride + wordOff
				if uint32(pw[r]) != binary.LittleEndian.Uint32(recs[rec:]) {
					match[r] = false
				}
			}
		} else {
			for i, r := range rows {
				if !match[r] {
					continue
				}
				rec := int(recIdx[i])*stride + wordOff
				if pw[r] != binary.LittleEndian.Uint64(recs[rec:]) {
					match[r] = false
				}
			}
		}
	}
}

// HashWords folds the packed key words of each active row into a 64-bit
// hash. Packing multiple key columns into one word halves hashing work
// (Section II, PARTSUPP example): the hash is computed on the packed words
// rather than on each original column.
func HashWords(probeWords [][]uint64, rows []int32, out []uint64) {
	if len(probeWords) == 0 {
		for _, r := range rows {
			out[r] = 0
		}
		return
	}
	w0 := probeWords[0]
	if DenseRows(rows) {
		// Unfiltered batches hash through the word-parallel four-chain
		// kernels (bit-identical to the per-row loop below).
		n := len(rows)
		Mix64Batch(w0, out, n)
		for _, pw := range probeWords[1:] {
			Mix64BatchFold(pw, out, n)
		}
		return
	}
	for _, r := range rows {
		out[r] = Mix64(w0[r])
	}
	for _, pw := range probeWords[1:] {
		for _, r := range rows {
			out[r] = Mix64(out[r] ^ Mix64(pw[r]))
		}
	}
}

// Mix64 is a cheap invertible 64-bit finalizer (splitmix64 finalization),
// the hash function used across the hash tables in this repository.
//
//ocht:hot
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func physLen(cols []*vec.Vector) int {
	n := 0
	for _, c := range cols {
		if l := c.Len(); l > n {
			n = l
		}
	}
	return n
}

// i64Slice is a closure-free slice descriptor for the specialized int64
// kernel below.
type i64Slice struct {
	data     []int64
	base     uint64
	srcShift uint
	mask     uint64
	outShift uint
}

// packWordI64 is the specialized kernel for the common case where every
// input of word w is an int64 column: no accessor closures, direct slice
// loads. Reports whether it handled the word.
func (p *Plan) packWordI64(w int, cols []*vec.Vector, rows []int32, out []uint64, full bool) bool {
	var ks [MaxSlicesPerWord]i64Slice
	n := 0
	for _, s := range p.Slices {
		if s.Word != w {
			continue
		}
		if cols[s.Col].Typ != vec.I64 {
			return false
		}
		ks[n] = i64Slice{
			data:     cols[s.Col].I64,
			base:     uint64(p.Cols[s.Col].Dom.Min),
			srcShift: uint(s.SrcShift),
			mask:     s.Mask(),
			outShift: uint(s.OutShift),
		}
		n++
	}
	sl := ks[:n]
	if full {
		phys := physLen(cols)
		for i := 0; i < phys; i++ {
			var word uint64
			for _, k := range sl {
				word |= ((uint64(k.data[i]) - k.base) >> k.srcShift & k.mask) << k.outShift
			}
			out[i] = word
		}
		return true
	}
	for _, r := range rows {
		i := int(r)
		var word uint64
		for _, k := range sl {
			word |= ((uint64(k.data[i]) - k.base) >> k.srcShift & k.mask) << k.outShift
		}
		out[i] = word
	}
	return true
}
