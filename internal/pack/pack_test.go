package pack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ocht/internal/domain"
	"ocht/internal/vec"
)

// figure2Cols reproduces the running example of Figure 2: column A with
// domain [-4, 42] (6 bits) and column B with domain [3, 1000] (10 bits).
func figure2Cols() []Col {
	return []Col{
		{Name: "A", Type: vec.I32, Dom: domain.New(-4, 42)},
		{Name: "B", Type: vec.I32, Dom: domain.New(3, 1000)},
	}
}

func TestFigure2Plan(t *testing.T) {
	p, err := ChoosePlan(figure2Cols())
	if err != nil {
		t.Fatal(err)
	}
	// 6 + 10 = 16 bits fit one 32-bit word; the 32-bit solution wins
	// because it produces a smaller record (4B vs 8B).
	if p.WordBits != 32 || p.Words != 1 || p.RecordBytes() != 4 {
		t.Fatalf("unexpected plan: %s", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// 8 bytes uncompressed (two i32) -> 4 bytes packed: 2x.
	if UncompressedBytes(figure2Cols()) != 8 {
		t.Error("uncompressed width")
	}
}

func TestFigure2RoundTrip(t *testing.T) {
	p, err := ChoosePlan(figure2Cols())
	if err != nil {
		t.Fatal(err)
	}
	// The data rows of Figure 2.
	as := []int32{42, -4, 1, 23}
	bs := []int32{3, 23, 1000, 3}
	ca, cb := vec.New(vec.I32, 4), vec.New(vec.I32, 4)
	copy(ca.I32, as)
	copy(cb.I32, bs)
	rows := []int32{0, 1, 2, 3}
	recIdx := []int32{0, 1, 2, 3}
	recs := make([]byte, 4*p.RecordBytes())
	scratch := make([]uint64, 4)
	p.PackRecords([]*vec.Vector{ca, cb}, rows, recs, recIdx, p.RecordBytes(), 0, scratch)

	outA, outB := vec.New(vec.I32, 4), vec.New(vec.I32, 4)
	p.UnpackColumn(0, recs, recIdx, p.RecordBytes(), 0, outA, rows)
	p.UnpackColumn(1, recs, recIdx, p.RecordBytes(), 0, outB, rows)
	for i := range as {
		if outA.I32[i] != as[i] || outB.I32[i] != bs[i] {
			t.Errorf("row %d: got (%d,%d), want (%d,%d)", i, outA.I32[i], outB.I32[i], as[i], bs[i])
		}
	}
}

func TestPlannerSlicing(t *testing.T) {
	// Two 40-bit columns into 32-bit words: both must be sliced.
	cols := []Col{
		{Name: "x", Type: vec.I64, Dom: domain.New(0, 1<<40-1)},
		{Name: "y", Type: vec.I64, Dom: domain.New(0, 1<<40-1)},
	}
	p, err := NewPlan(cols, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, p)
	}
	if p.Words != 3 {
		t.Errorf("expected 3 words, got %d: %s", p.Words, p)
	}
	if len(p.SlicesOf(0)) < 2 && len(p.SlicesOf(1)) < 2 {
		t.Errorf("expected at least one sliced column: %s", p)
	}
}

func TestPlannerFreeBudget(t *testing.T) {
	// Three 30-bit columns into 32-bit words: 90 bits over 3 words leaves
	// a 6-bit budget, so no column should be sliced.
	cols := make([]Col, 3)
	for i := range cols {
		cols[i] = Col{Name: "c", Type: vec.I64, Dom: domain.New(0, 1<<30-1)}
	}
	p, err := NewPlan(cols, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Words != 3 || len(p.Slices) != 3 {
		t.Errorf("expected 3 unsliced columns in 3 words: %s", p)
	}
}

func TestConstantColumn(t *testing.T) {
	cols := []Col{
		{Name: "k", Type: vec.I32, Dom: domain.New(5, 100)},
		{Name: "const", Type: vec.I32, Dom: domain.Const(7)},
	}
	p, err := ChoosePlan(cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.SlicesOf(1)) != 0 {
		t.Fatal("constant column must occupy no bits")
	}
	ck, cc := vec.New(vec.I32, 2), vec.New(vec.I32, 2)
	ck.I32[0], ck.I32[1] = 5, 100
	cc.I32[0], cc.I32[1] = 7, 7
	rows := []int32{0, 1}
	recs := make([]byte, 2*p.RecordBytes())
	scratch := make([]uint64, 2)
	p.PackRecords([]*vec.Vector{ck, cc}, rows, recs, rows, p.RecordBytes(), 0, scratch)
	out := vec.New(vec.I32, 2)
	p.UnpackColumn(1, recs, rows, p.RecordBytes(), 0, out, rows)
	if out.I32[0] != 7 || out.I32[1] != 7 {
		t.Errorf("constant unpack: %v", out.I32)
	}
}

func TestTPCHPartsuppExample(t *testing.T) {
	// Section II-F: PS_PARTKEY and PS_SUPPKEY pack into one word so the
	// join runs as if there were one key column. At SF1 partkey has
	// 200,000 values (18 bits) and suppkey 10,000 (14 bits): one 32-bit
	// word.
	cols := []Col{
		{Name: "ps_partkey", Type: vec.I64, Dom: domain.New(1, 200_000)},
		{Name: "ps_suppkey", Type: vec.I64, Dom: domain.New(1, 10_000)},
	}
	p, err := ChoosePlan(cols)
	if err != nil {
		t.Fatal(err)
	}
	if p.Words != 1 {
		t.Errorf("partkey+suppkey must fit one word: %s", p)
	}
	if p.RecordBytes() != 4 {
		t.Errorf("expected a 4-byte record, got %d", p.RecordBytes())
	}
}

// TestPlanPropertyRoundTrip packs random in-domain values with random
// plans and checks pack->unpack is the identity, for both word sizes.
func TestPlanPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		nCols := 1 + rng.Intn(6)
		cols := make([]Col, nCols)
		vecs := make([]*vec.Vector, nCols)
		const n = 64
		for c := 0; c < nCols; c++ {
			bits := 1 + rng.Intn(48)
			lo := rng.Int63n(1<<20) - 1<<19
			hi := lo + rng.Int63n(1<<uint(bits))
			cols[c] = Col{Name: "c", Type: vec.I64, Dom: domain.New(lo, hi)}
			v := vec.New(vec.I64, n)
			for i := 0; i < n; i++ {
				v.I64[i] = lo + rng.Int63n(hi-lo+1)
			}
			vecs[c] = v
		}
		wordBits := 32
		if iter%2 == 0 {
			wordBits = 64
		}
		p, err := NewPlan(cols, wordBits)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, p)
		}
		rows := make([]int32, n)
		for i := range rows {
			rows[i] = int32(i)
		}
		recs := make([]byte, n*p.RecordBytes())
		scratch := make([]uint64, n)
		p.PackRecords(vecs, rows, recs, rows, p.RecordBytes(), 0, scratch)
		out := vec.New(vec.I64, n)
		for c := 0; c < nCols; c++ {
			p.UnpackColumn(c, recs, rows, p.RecordBytes(), 0, out, rows)
			for i := 0; i < n; i++ {
				if out.I64[i] != vecs[c].I64[i] {
					t.Fatalf("iter %d col %d row %d: got %d want %d\nplan: %s",
						iter, c, i, out.I64[i], vecs[c].I64[i], p)
				}
			}
		}
	}
}

func TestSelectiveRoundTrip(t *testing.T) {
	// Pack through a sparse selection vector (below the micro-adaptive
	// threshold) and verify only selected records round-trip.
	cols := figure2Cols()
	p, _ := ChoosePlan(cols)
	const n = 256
	ca, cb := vec.New(vec.I32, n), vec.New(vec.I32, n)
	for i := 0; i < n; i++ {
		ca.I32[i] = int32(i%47) - 4
		cb.I32[i] = int32(i%998) + 3
	}
	rows := []int32{3, 17, 99, 200} // 4/256 < 25%
	recIdx := []int32{0, 1, 2, 3}
	recs := make([]byte, 4*p.RecordBytes())
	scratch := make([]uint64, n)
	p.PackRecords([]*vec.Vector{ca, cb}, rows, recs, recIdx, p.RecordBytes(), 0, scratch)
	out := vec.New(vec.I32, n)
	p.UnpackColumn(0, recs, recIdx, p.RecordBytes(), 0, out, rows)
	for i, r := range rows {
		_ = recIdx[i]
		if out.I32[r] != ca.I32[r] {
			t.Errorf("row %d: got %d want %d", r, out.I32[r], ca.I32[r])
		}
	}
}

func TestMatchRecords(t *testing.T) {
	cols := figure2Cols()
	p, _ := ChoosePlan(cols)
	const n = 8
	ca, cb := vec.New(vec.I32, n), vec.New(vec.I32, n)
	for i := 0; i < n; i++ {
		ca.I32[i] = int32(i) - 4
		cb.I32[i] = int32(i) + 3
	}
	rows := make([]int32, n)
	recIdx := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
		recIdx[i] = int32(i)
	}
	recs := make([]byte, n*p.RecordBytes())
	scratch := make([]uint64, n)
	vecs := []*vec.Vector{ca, cb}
	p.PackRecords(vecs, rows, recs, recIdx, p.RecordBytes(), 0, scratch)

	// Probe with the same keys -> all match.
	probe := make([][]uint64, p.Words)
	for w := range probe {
		probe[w] = make([]uint64, n)
		p.PackWord(w, vecs, rows, probe[w])
	}
	match := make([]bool, n)
	for i := range match {
		match[i] = true
	}
	p.MatchRecords(probe, recs, recIdx, p.RecordBytes(), 0, rows, match)
	for i, m := range match {
		if !m {
			t.Errorf("row %d should match", i)
		}
	}
	// Probe against shifted records -> nothing matches.
	shifted := make([]int32, n)
	for i := range shifted {
		shifted[i] = int32((i + 1) % n)
	}
	for i := range match {
		match[i] = true
	}
	p.MatchRecords(probe, recs, shifted, p.RecordBytes(), 0, rows, match)
	for i, m := range match {
		if m {
			t.Errorf("row %d should not match", i)
		}
	}
}

func TestInDomain(t *testing.T) {
	p, _ := ChoosePlan(figure2Cols())
	ca, cb := vec.New(vec.I32, 4), vec.New(vec.I32, 4)
	ca.I32 = []int32{0, -5, 42, 43} // -5 and 43 are out of [-4,42]
	cb.I32 = []int32{3, 3, 1001, 3} // 1001 out of [3,1000]
	rows := []int32{0, 1, 2, 3}
	match := make([]bool, 4)
	p.InDomain([]*vec.Vector{ca, cb}, rows, match)
	want := []bool{true, false, false, false}
	for i := range want {
		if match[i] != want[i] {
			t.Errorf("row %d: got %v want %v", i, match[i], want[i])
		}
	}
}

func TestHashWordsDeterministic(t *testing.T) {
	w := [][]uint64{{1, 2, 3}, {9, 9, 9}}
	rows := []int32{0, 1, 2}
	a := make([]uint64, 3)
	b := make([]uint64, 3)
	HashWords(w, rows, a)
	HashWords(w, rows, b)
	for i := range a {
		if a[i] != b[i] {
			t.Error("hash must be deterministic")
		}
	}
	if a[0] == a[1] {
		t.Error("different keys should (almost surely) hash differently")
	}
}

func TestChoosePlanPrefers64WhenFewerWords(t *testing.T) {
	// One 40-bit column: 64-bit plan needs 1 word, 32-bit needs 2.
	cols := []Col{{Name: "x", Type: vec.I64, Dom: domain.New(0, 1<<40-1)}}
	p, err := ChoosePlan(cols)
	if err != nil {
		t.Fatal(err)
	}
	if p.WordBits != 64 || p.Words != 1 {
		t.Errorf("expected one 64-bit word: %s", p)
	}
}

func TestNewPlanRejects128(t *testing.T) {
	if _, err := NewPlan([]Col{{Type: vec.I128, Dom: domain.New(0, 10)}}, 64); err == nil {
		t.Error("128-bit inputs must be rejected")
	}
	if _, err := NewPlan(nil, 16); err == nil {
		t.Error("word size 16 must be rejected")
	}
}

func TestMix64Property(t *testing.T) {
	seen := map[uint64]bool{}
	f := func(x uint64) bool {
		h := Mix64(x)
		if seen[h] {
			return false // collision in a tiny sample is (nearly) impossible
		}
		seen[h] = true
		return Mix64(x) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestPlanQuickProperty drives the planner with quick-generated column
// sets and checks the structural invariants (full coverage, no overlap,
// fan-in) plus a value round-trip per case.
func TestPlanQuickProperty(t *testing.T) {
	f := func(widths []uint8, seed int64, use64 bool) bool {
		if len(widths) == 0 {
			return true
		}
		if len(widths) > 8 {
			widths = widths[:8]
		}
		rng := rand.New(rand.NewSource(seed))
		cols := make([]Col, len(widths))
		vecs := make([]*vec.Vector, len(widths))
		const n = 16
		for i, w := range widths {
			bits := int(w)%49 + 1 // 1..49 bits
			lo := rng.Int63n(1000) - 500
			hi := lo + rng.Int63n(1<<uint(bits))
			cols[i] = Col{Name: "c", Type: vec.I64, Dom: domain.New(lo, hi)}
			v := vec.New(vec.I64, n)
			for r := 0; r < n; r++ {
				v.I64[r] = lo + rng.Int63n(hi-lo+1)
			}
			vecs[i] = v
		}
		wordBits := 32
		if use64 {
			wordBits = 64
		}
		p, err := NewPlan(cols, wordBits)
		if err != nil {
			return false
		}
		if err := p.Validate(); err != nil {
			t.Logf("invalid plan: %v", err)
			return false
		}
		rows := make([]int32, n)
		for i := range rows {
			rows[i] = int32(i)
		}
		recs := make([]byte, n*p.RecordBytes())
		scratch := make([]uint64, n)
		p.PackRecords(vecs, rows, recs, rows, p.RecordBytes(), 0, scratch)
		out := vec.New(vec.I64, n)
		for c := range cols {
			p.UnpackColumn(c, recs, rows, p.RecordBytes(), 0, out, rows)
			for r := 0; r < n; r++ {
				if out.I64[r] != vecs[c].I64[r] {
					t.Logf("round-trip failed col %d row %d", c, r)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
