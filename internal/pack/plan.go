// Package pack implements Domain-Guided Prefix Suppression (Section II of
// the paper): normalizing values to non-negative offsets from their domain
// minimum, bit-packing multiple columns into few machine words, the greedy
// packing planner (Section II-F), and vectorized pack/unpack/compare
// kernels (Section II-C/II-D).
package pack

import (
	"fmt"
	"sort"
	"strings"

	"ocht/internal/domain"
	"ocht/internal/vec"
)

// Col describes one input column of a packing problem.
type Col struct {
	Name string
	Type vec.Type // physical source type
	Dom  domain.D // derived domain; drives the suppressed bit width
}

// Bits returns the suppressed bit width of the column: the bits needed to
// store (value - Dom.Min). Columns with unknown domains keep their full
// type width.
func (c Col) Bits() int {
	w := c.Dom.BitWidth()
	if tw := c.Type.Bits(); w > tw {
		w = tw
	}
	if w > 64 {
		w = 64 // packable inputs are at most 64 bits wide
	}
	return w
}

// Slice maps a contiguous bit range of an input column into an output word.
// Columns too large for a word's leftover space are cut into multiple
// slices (Section II-F: "the first popped column in the next round will be
// sliced").
type Slice struct {
	Col      int // input column index
	SrcShift int // right-shift applied to the normalized value first
	Bits     int // number of bits taken
	Word     int // output word index
	OutShift int // bit position within the output word
}

// Mask returns the bit mask of the slice, with Bits low bits set.
func (s Slice) Mask() uint64 {
	if s.Bits >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(s.Bits) - 1
}

// Plan is a complete packing plan: the layout of all input columns across
// the output words of an NSM record.
type Plan struct {
	Cols     []Col
	WordBits int     // output word size: 32 or 64
	Words    int     // number of output words
	Slices   []Slice // sorted by (Word, descending OutShift is not required)

	byCol [][]int // slice indices per column, ordered by ascending SrcShift
}

// RecordBytes returns the packed record width in bytes.
func (p *Plan) RecordBytes() int { return p.Words * p.WordBits / 8 }

// SlicesOf returns the indices into p.Slices belonging to column c,
// ordered by ascending SrcShift (low bits first).
func (p *Plan) SlicesOf(c int) []int { return p.byCol[c] }

// MaxSlicesPerWord bounds kernel fan-in, mirroring the paper's restriction
// of pre-compiled kernels to at most 4 inputs (Section II-E). The planner
// never assigns more than this many slices to one output word; if a word
// would receive a fifth slice the planner closes the word early.
const MaxSlicesPerWord = 4

// NewPlan runs the greedy packing algorithm of Section II-F for the given
// columns and output word size (32 or 64). It returns an error if wordBits
// is unsupported or any column is wider than 64 bits.
func NewPlan(cols []Col, wordBits int) (*Plan, error) {
	if wordBits != 32 && wordBits != 64 {
		return nil, fmt.Errorf("pack: unsupported word size %d", wordBits)
	}
	for _, c := range cols {
		if c.Type == vec.I128 {
			return nil, fmt.Errorf("pack: column %q: 128-bit inputs are not packable (use Optimistic Splitting)", c.Name)
		}
	}
	p := &Plan{Cols: cols, WordBits: wordBits}
	if len(cols) == 0 {
		p.buildIndex()
		return p, nil
	}

	// Queue of (column, remaining bits, bits already consumed) ordered by
	// remaining width, largest first.
	type item struct {
		col       int
		remaining int
		consumed  int // bits of the column already placed (its low bits)
	}
	q := make([]item, 0, len(cols))
	total := 0
	for i, c := range cols {
		b := c.Bits()
		if b == 0 {
			// Singleton domain: the column is a constant (always Dom.Min)
			// and occupies no bits; decompression reconstructs it from the
			// base alone.
			continue
		}
		q = append(q, item{col: i, remaining: b})
		total += b
	}
	if len(q) == 0 {
		p.buildIndex()
		return p, nil
	}
	sortQueue := func(s []item) {
		sort.SliceStable(s, func(a, b int) bool { return s[a].remaining > s[b].remaining })
	}
	sortQueue(q)

	// U: the global free-bit budget — the slack between the total bits and
	// the next multiple of the word size.
	words := (total + wordBits - 1) / wordBits
	if words == 0 {
		words = 1
	}
	u := words*wordBits - total

	var qNext []item
	var sliceCarry *item // column to slice into the just-closed word
	word := 0
	l := wordBits
	slicesInWord := 0

	place := func(it *item, bits int) {
		p.Slices = append(p.Slices, Slice{
			Col:      it.col,
			SrcShift: it.consumed,
			Bits:     bits,
			Word:     word,
			OutShift: wordBits - l,
		})
		it.consumed += bits
		it.remaining -= bits
		l -= bits
		slicesInWord++
	}

	for len(q) > 0 || len(qNext) > 0 || sliceCarry != nil {
		if sliceCarry != nil {
			// The previous round ended with leftover space that exceeded
			// the budget U: slice this column's highest unprocessed bits
			// into the previous word... but we already advanced; the carry
			// is handled before closing, see below. Here the carry starts
			// the new round with its remaining bits.
			it := *sliceCarry
			sliceCarry = nil
			if it.remaining > 0 {
				bits := it.remaining
				if bits > l {
					bits = l
				}
				place(&it, bits)
				if it.remaining > 0 {
					qNext = append(qNext, it)
				}
			}
		}
		// Fill the current word greedily: pop the largest column that fits.
		progress := true
		for progress {
			progress = false
			for i := 0; i < len(q); i++ {
				if slicesInWord >= MaxSlicesPerWord {
					break
				}
				if q[i].remaining <= l {
					it := q[i]
					q = append(q[:i], q[i+1:]...)
					place(&it, it.remaining)
					progress = true
					break
				}
			}
		}
		// Nothing fits anymore: defer the rest and close the word.
		qNext = append(qNext, q...)
		q = q[:0]
		if len(qNext) == 0 {
			// All columns placed; leftover bits are free.
			break
		}
		sortQueue(qNext)
		if l > 0 && slicesInWord < MaxSlicesPerWord {
			if l <= u {
				// Free bit budget available: leave these bits unused.
				u -= l
			} else {
				// Slice the next column: its *highest unprocessed* L bits
				// go into this word; the rest starts the next round.
				it := qNext[0]
				qNext = qNext[1:]
				high := l
				low := it.remaining - high
				// Place the high bits here...
				p.Slices = append(p.Slices, Slice{
					Col:      it.col,
					SrcShift: it.consumed + low,
					Bits:     high,
					Word:     word,
					OutShift: wordBits - l,
				})
				l = 0
				// ...and the low bits open the next word.
				it.remaining = low
				sliceCarry = &it
			}
		}
		q, qNext = qNext, q[:0]
		word++
		l = wordBits
		slicesInWord = 0
	}
	p.Words = word + 1
	if len(p.Slices) == 0 {
		p.Words = 0
	} else {
		maxW := 0
		for _, s := range p.Slices {
			if s.Word > maxW {
				maxW = s.Word
			}
		}
		p.Words = maxW + 1
	}
	p.buildIndex()
	return p, nil
}

func (p *Plan) buildIndex() {
	p.byCol = make([][]int, len(p.Cols))
	for i, s := range p.Slices {
		p.byCol[s.Col] = append(p.byCol[s.Col], i)
	}
	for c := range p.byCol {
		idx := p.byCol[c]
		sort.Slice(idx, func(a, b int) bool {
			return p.Slices[idx[a]].SrcShift < p.Slices[idx[b]].SrcShift
		})
	}
}

// ChoosePlan runs the planner twice — once for 64-bit and once for 32-bit
// output words — and applies the paper's selection rule: "use the 64-bit
// solution if this yields less hash table columns than the 32-bit
// solution, or otherwise, if the 64-bit solution produces a NSM record of
// the same size".
func ChoosePlan(cols []Col) (*Plan, error) {
	p64, err := NewPlan(cols, 64)
	if err != nil {
		return nil, err
	}
	p32, err := NewPlan(cols, 32)
	if err != nil {
		return nil, err
	}
	if p64.Words < p32.Words {
		return p64, nil
	}
	if p64.RecordBytes() == p32.RecordBytes() {
		return p64, nil
	}
	return p32, nil
}

// UncompressedBytes returns the NSM record width of the same columns
// without prefix suppression (each column stored at its type width),
// the baseline for the compression-ratio experiments.
func UncompressedBytes(cols []Col) int {
	n := 0
	for _, c := range cols {
		n += c.Type.Width()
	}
	return n
}

// String renders the plan layout for debugging and EXPERIMENTS.md.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan(%d-bit x %d words, %dB/record)", p.WordBits, p.Words, p.RecordBytes())
	for _, s := range p.Slices {
		fmt.Fprintf(&b, " [%s>>%d:%db -> w%d<<%d]",
			p.Cols[s.Col].Name, s.SrcShift, s.Bits, s.Word, s.OutShift)
	}
	return b.String()
}

// Validate checks plan invariants: every column fully covered by
// non-overlapping slices, no word overflow, fan-in respected. Used by
// property tests.
func (p *Plan) Validate() error {
	covered := make([]int, len(p.Cols))
	wordFill := make(map[int]uint64)
	wordFan := make(map[int]int)
	for _, s := range p.Slices {
		if s.Bits <= 0 || s.OutShift < 0 || s.OutShift+s.Bits > p.WordBits {
			return fmt.Errorf("slice out of word bounds: %+v", s)
		}
		m := s.Mask() << uint(s.OutShift)
		if wordFill[s.Word]&m != 0 {
			return fmt.Errorf("overlapping slices in word %d", s.Word)
		}
		wordFill[s.Word] |= m
		wordFan[s.Word]++
		covered[s.Col] += s.Bits
	}
	for c, col := range p.Cols {
		if covered[c] != col.Bits() {
			return fmt.Errorf("column %q: %d of %d bits covered", col.Name, covered[c], col.Bits())
		}
	}
	for w, fan := range wordFan {
		if fan > MaxSlicesPerWord {
			return fmt.Errorf("word %d has fan-in %d > %d", w, fan, MaxSlicesPerWord)
		}
	}
	// Ensure each column's slices partition its bit range without gaps.
	for c := range p.Cols {
		pos := 0
		for _, si := range p.byCol[c] {
			s := p.Slices[si]
			if s.SrcShift != pos {
				return fmt.Errorf("column %d: slice gap at bit %d", c, pos)
			}
			pos += s.Bits
		}
	}
	return nil
}
