package pack

// SWAR (SIMD-within-a-register) kernels over bit-packed words.
//
// A frame-of-reference packed vector stores per = 64/bits lanes per
// 64-bit word, lane j at word j/per, shift (j%per)*bits (the layout of
// vec.EncPacked and of the key words Plan.PackWord produces). Go has no
// SIMD intrinsics, but a 64-bit integer IS a vector register for lanes
// this narrow: one subtraction compares up to 32 packed keys at once
// (Upscaledb's integer-key lesson, PAPERS.md). The kernels here evaluate
// comparison verdicts and batch hashes word-parallel and are pinned
// byte-identical to their scalar references by the property tests in
// swar_test.go.
//
// The comparison trick is the classic guard-bit subtract. Active lanes
// are split into even and odd groups so every active k-bit lane has (at
// least) k zero bits above it; ORing a guard bit G at position (l+1)*k
// and subtracting the broadcast constant C makes each lane's guard bit a
// GE verdict:
//
//	field = a + 2^k          (guard ORed in; a, c <= mask < 2^k)
//	field - c ∈ [2^k - mask, 2^k + mask]   — never borrows out, so
//	guard(d) = 1  ⟺  a >= c                 lanes stay independent
//
// Equality uses the same subtract on z = a^c against the constant 1:
// guard set ⟺ z >= 1 ⟺ a != c. GT is GE against c+1; LT/LE/NE are
// complements. A lane whose guard bit would be bit 64 (the word's top
// lane when per*bits == 64) is evaluated scalar.

// CmpOp is a SWAR comparison operator.
type CmpOp uint8

// Comparison operators, in the order exec's expression compiler uses.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// swarGroup is the precomputed per-word state for one even/odd lane
// group: the lane mask, the broadcast guard bits, and the highest lane
// index (exclusive) the guard-bit trick covers.
type swarGroup struct {
	lanes uint64 // OR of lane value masks
	guard uint64 // OR of guard bits, one per covered lane
}

// SwarCmpConst writes out[i] = cmp(lane(off+i), c) for i in [0, n) over
// the packed little-endian-lane layout described above. c is in the pack
// domain and must satisfy c <= 2^bits - 1; out-of-domain constants
// collapse to constant verdicts and belong to the caller. bits must be in
// [1, 64]. The kernel is word-parallel for bits <= 32 and falls back to
// the scalar reference for wider lanes, partial head/tail words and
// guard-less top lanes.
//
//ocht:hot
func SwarCmpConst(words []uint64, bits, off, n int, c uint64, op CmpOp, out []bool) {
	if n <= 0 {
		return
	}
	per := 64 / bits
	if bits > 32 || per < 2 || n < 2*per {
		swarCmpScalar(words, bits, off, 0, n, c, op, out)
		return
	}
	// Canonicalize to one subtract + optional complement:
	//   GE(c):  EQ/NE -> nonzero test, GT -> GE(c+1), LT/LE -> inverted.
	mask := uint64(1)<<uint(bits) - 1
	var cc uint64
	eqMode, invert := false, false
	switch op {
	case CmpEQ:
		eqMode, invert = true, true
	case CmpNE:
		eqMode = true
	case CmpGE:
		cc = c
	case CmpLT:
		cc, invert = c, true
	case CmpGT:
		if c == mask { // nothing exceeds the top of the domain
			for i := 0; i < n; i++ {
				out[i] = false
			}
			return
		}
		cc = c + 1
	case CmpLE:
		if c == mask {
			for i := 0; i < n; i++ {
				out[i] = true
			}
			return
		}
		cc, invert = c+1, true
	}

	// Head: lanes before the first word boundary.
	i := 0
	if r := off % per; r != 0 {
		head := per - r
		if head > n {
			head = n
		}
		swarCmpScalar(words, bits, off, 0, head, c, op, out)
		i = head
	}

	// Precompute the even/odd group constants once per call. The top
	// lane's guard bit would be bit 64 when per*bits == 64; that lane is
	// excluded from its group and handled scalar per word.
	var groups [2]swarGroup
	var cEq, cGe, ones [2]uint64
	topScalar := per*bits == 64
	for l := 0; l < per; l++ {
		g := l & 1
		if topScalar && l == per-1 {
			continue
		}
		sh := uint(l * bits)
		groups[g].lanes |= mask << sh
		groups[g].guard |= 1 << (sh + uint(bits))
		cEq[g] |= c << sh
		cGe[g] |= cc << sh
		ones[g] |= 1 << sh
	}

	// Middle: full words, two guard-bit subtracts each.
	for ; i+per <= n; i += per {
		w := words[(off+i)/per]
		var verdicts uint64 // guard bit set per lane where cmp holds
		for g := 0; g < 2; g++ {
			x := w & groups[g].lanes
			var d uint64
			if eqMode {
				d = ((x ^ cEq[g]) | groups[g].guard) - ones[g]
			} else {
				d = (x | groups[g].guard) - cGe[g]
			}
			verdicts |= d & groups[g].guard
		}
		if invert {
			verdicts = ^verdicts
		}
		lanes := per
		if topScalar {
			lanes--
		}
		for l := 0; l < lanes; l++ {
			out[i+l] = verdicts>>(uint(l+1)*uint(bits))&1 == 1
		}
		if topScalar {
			a := w >> uint((per-1)*bits) & mask
			out[i+per-1] = swarCmpOne(a, c, op)
		}
	}

	// Tail: the final partial word.
	if i < n {
		swarCmpScalar(words, bits, off, i, n, c, op, out)
	}
}

// swarCmpScalar is the scalar reference: it evaluates lanes [lo, hi) of
// the same comparison one at a time. The property tests pin SwarCmpConst
// against it; the fast path uses it for heads, tails and narrow batches.
//
//ocht:hot
func swarCmpScalar(words []uint64, bits, off, lo, hi int, c uint64, op CmpOp, out []bool) {
	if bits == 64 {
		for i := lo; i < hi; i++ {
			out[i] = swarCmpOne(words[off+i], c, op)
		}
		return
	}
	per := 64 / bits
	mask := uint64(1)<<uint(bits) - 1
	for i := lo; i < hi; i++ {
		j := off + i
		a := words[j/per] >> (uint(j%per) * uint(bits)) & mask
		out[i] = swarCmpOne(a, c, op)
	}
}

func swarCmpOne(a, c uint64, op CmpOp) bool {
	switch op {
	case CmpEQ:
		return a == c
	case CmpNE:
		return a != c
	case CmpLT:
		return a < c
	case CmpLE:
		return a <= c
	case CmpGT:
		return a > c
	case CmpGE:
		return a >= c
	}
	return false
}

// Mix64Batch writes out[i] = Mix64(w[i]) for i in [0, n): the per-key
// splitmix64 finalizer unrolled into four independent chains so the three
// multiply/shift dependency chains of neighboring keys overlap in the
// pipeline instead of serializing behind one another. Bit-identical to
// calling Mix64 per key.
//
//ocht:hot
func Mix64Batch(w, out []uint64, n int) {
	i := 0
	for ; i+4 <= n; i += 4 {
		x0, x1, x2, x3 := w[i], w[i+1], w[i+2], w[i+3]
		x0 ^= x0 >> 30
		x1 ^= x1 >> 30
		x2 ^= x2 >> 30
		x3 ^= x3 >> 30
		x0 *= 0xbf58476d1ce4e5b9
		x1 *= 0xbf58476d1ce4e5b9
		x2 *= 0xbf58476d1ce4e5b9
		x3 *= 0xbf58476d1ce4e5b9
		x0 ^= x0 >> 27
		x1 ^= x1 >> 27
		x2 ^= x2 >> 27
		x3 ^= x3 >> 27
		x0 *= 0x94d049bb133111eb
		x1 *= 0x94d049bb133111eb
		x2 *= 0x94d049bb133111eb
		x3 *= 0x94d049bb133111eb
		x0 ^= x0 >> 31
		x1 ^= x1 >> 31
		x2 ^= x2 >> 31
		x3 ^= x3 >> 31
		out[i], out[i+1], out[i+2], out[i+3] = x0, x1, x2, x3
	}
	for ; i < n; i++ {
		out[i] = Mix64(w[i])
	}
}

// Mix64BatchFold writes out[i] = Mix64(out[i] ^ Mix64(w[i])), the
// multi-word hash-combining step of HashWords, with the same four-chain
// unroll as Mix64Batch.
//
//ocht:hot
func Mix64BatchFold(w, out []uint64, n int) {
	i := 0
	for ; i+4 <= n; i += 4 {
		x0, x1, x2, x3 := w[i], w[i+1], w[i+2], w[i+3]
		x0 ^= x0 >> 30
		x1 ^= x1 >> 30
		x2 ^= x2 >> 30
		x3 ^= x3 >> 30
		x0 *= 0xbf58476d1ce4e5b9
		x1 *= 0xbf58476d1ce4e5b9
		x2 *= 0xbf58476d1ce4e5b9
		x3 *= 0xbf58476d1ce4e5b9
		x0 ^= x0 >> 27
		x1 ^= x1 >> 27
		x2 ^= x2 >> 27
		x3 ^= x3 >> 27
		x0 *= 0x94d049bb133111eb
		x1 *= 0x94d049bb133111eb
		x2 *= 0x94d049bb133111eb
		x3 *= 0x94d049bb133111eb
		x0 ^= x0 >> 31
		x1 ^= x1 >> 31
		x2 ^= x2 >> 31
		x3 ^= x3 >> 31
		x0 ^= out[i]
		x1 ^= out[i+1]
		x2 ^= out[i+2]
		x3 ^= out[i+3]
		x0 ^= x0 >> 30
		x1 ^= x1 >> 30
		x2 ^= x2 >> 30
		x3 ^= x3 >> 30
		x0 *= 0xbf58476d1ce4e5b9
		x1 *= 0xbf58476d1ce4e5b9
		x2 *= 0xbf58476d1ce4e5b9
		x3 *= 0xbf58476d1ce4e5b9
		x0 ^= x0 >> 27
		x1 ^= x1 >> 27
		x2 ^= x2 >> 27
		x3 ^= x3 >> 27
		x0 *= 0x94d049bb133111eb
		x1 *= 0x94d049bb133111eb
		x2 *= 0x94d049bb133111eb
		x3 *= 0x94d049bb133111eb
		x0 ^= x0 >> 31
		x1 ^= x1 >> 31
		x2 ^= x2 >> 31
		x3 ^= x3 >> 31
		out[i], out[i+1], out[i+2], out[i+3] = x0, x1, x2, x3
	}
	for ; i < n; i++ {
		out[i] = Mix64(out[i] ^ Mix64(w[i]))
	}
}

// DenseRows reports whether rows is exactly the identity selection
// 0..len(rows)-1, the shape unfiltered batches arrive in. Selection
// vectors are strictly ascending (the selvec invariant), so checking the
// endpoints suffices.
func DenseRows(rows []int32) bool {
	n := len(rows)
	return n > 0 && rows[0] == 0 && int(rows[n-1]) == n-1
}
