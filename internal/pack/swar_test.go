package pack

import (
	"math/rand"
	"testing"
)

// laneAt extracts lane j of the packed layout the SWAR kernels operate on.
func laneAt(words []uint64, bits, j int) uint64 {
	if bits == 64 {
		return words[j]
	}
	per := 64 / bits
	mask := uint64(1)<<uint(bits) - 1
	return words[j/per] >> (uint(j%per) * uint(bits)) & mask
}

func cmpModel(a, c uint64, op CmpOp) bool {
	switch op {
	case CmpEQ:
		return a == c
	case CmpNE:
		return a != c
	case CmpLT:
		return a < c
	case CmpLE:
		return a <= c
	case CmpGT:
		return a > c
	case CmpGE:
		return a >= c
	}
	panic("bad op")
}

var allOps = []CmpOp{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE}

// TestSwarCmpConstProperty pins SwarCmpConst against the lane-at-a-time
// model over random widths, offsets, lengths and constants — including
// the domain boundaries c = 0 and c = mask, where GT and LE collapse to
// constant verdicts.
func TestSwarCmpConstProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 4000; iter++ {
		bits := 1 + rng.Intn(64)
		per := 64 / bits
		if bits == 64 {
			per = 1
		}
		maxLanes := 6*per + rng.Intn(3*per+1)
		words := make([]uint64, (maxLanes+per-1)/per+1)
		for i := range words {
			words[i] = rng.Uint64()
		}
		mask := uint64(1)<<uint(bits) - 1
		if bits == 64 {
			mask = ^uint64(0)
		}
		off := rng.Intn(2 * per)
		n := 1 + rng.Intn(maxLanes)
		if off+n > len(words)*per {
			n = len(words)*per - off
		}
		var c uint64
		switch rng.Intn(4) {
		case 0:
			c = 0
		case 1:
			c = mask
		default:
			c = rng.Uint64() & mask
		}
		op := allOps[rng.Intn(len(allOps))]

		out := make([]bool, n)
		SwarCmpConst(words, bits, off, n, c, op, out)
		for i := 0; i < n; i++ {
			want := cmpModel(laneAt(words, bits, off+i), c, op)
			if out[i] != want {
				t.Fatalf("bits=%d off=%d n=%d c=%#x op=%d lane %d: got %v want %v",
					bits, off, n, c, op, i, out[i], want)
			}
		}
	}
}

// TestSwarCmpConstWordBoundaries hits the exact shapes the fast path
// special-cases: identity offsets, offsets straddling a word boundary,
// lengths ending one lane short of / exactly at / one lane past a word,
// and the guard-less top lane of gapless layouts (per*bits == 64).
func TestSwarCmpConstWordBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, bits := range []int{1, 2, 3, 4, 5, 7, 8, 11, 16, 21, 31, 32} {
		per := 64 / bits
		words := make([]uint64, 8)
		for i := range words {
			words[i] = rng.Uint64()
		}
		mask := uint64(1)<<uint(bits) - 1
		for _, off := range []int{0, 1, per - 1, per, per + 1, 3*per - 1} {
			for _, n := range []int{1, 2, per - 1, per, per + 1, 2 * per, 4*per - 1, 4*per + 1} {
				if n <= 0 || off+n > len(words)*per {
					continue
				}
				for _, c := range []uint64{0, 1, mask >> 1, mask} {
					for _, op := range allOps {
						out := make([]bool, n)
						SwarCmpConst(words, bits, off, n, c, op, out)
						for i := 0; i < n; i++ {
							want := cmpModel(laneAt(words, bits, off+i), c, op)
							if out[i] != want {
								t.Fatalf("bits=%d off=%d n=%d c=%#x op=%d lane %d: got %v want %v",
									bits, off, n, c, op, i, out[i], want)
							}
						}
					}
				}
			}
		}
	}
}

// TestMix64BatchMatchesScalar pins the unrolled batch hashes bit-identical
// to the per-key Mix64 they replace, across every tail length of the
// four-chain unroll.
func TestMix64BatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 1021} {
		w := make([]uint64, n)
		for i := range w {
			w[i] = rng.Uint64()
		}
		out := make([]uint64, n)
		Mix64Batch(w, out, n)
		for i := 0; i < n; i++ {
			if want := Mix64(w[i]); out[i] != want {
				t.Fatalf("n=%d Mix64Batch[%d] = %#x, want %#x", n, i, out[i], want)
			}
		}

		seed := make([]uint64, n)
		for i := range seed {
			seed[i] = rng.Uint64()
		}
		fold := append([]uint64(nil), seed...)
		Mix64BatchFold(w, fold, n)
		for i := 0; i < n; i++ {
			if want := Mix64(seed[i] ^ Mix64(w[i])); fold[i] != want {
				t.Fatalf("n=%d Mix64BatchFold[%d] = %#x, want %#x", n, i, fold[i], want)
			}
		}
	}
}

// TestHashWordsDenseMatchesSparse pins the dense batch-hash fast path of
// HashWords against the per-row path on the same words.
func TestHashWordsDenseMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, nw := range []int{1, 2, 3} {
		n := 777
		words := make([][]uint64, nw)
		for w := range words {
			words[w] = make([]uint64, n)
			for i := range words[w] {
				words[w][i] = rng.Uint64()
			}
		}
		dense := make([]int32, n)
		for i := range dense {
			dense[i] = int32(i)
		}
		// Identity selection minus the first row: same rows, not dense.
		sparse := dense[1:]

		got := make([]uint64, n)
		HashWords(words, dense, got)
		want := make([]uint64, n)
		HashWords(words, sparse, want)
		for _, r := range sparse {
			if got[r] != want[r] {
				t.Fatalf("words=%d row %d: dense %#x, sparse %#x", nw, r, got[r], want[r])
			}
		}
	}
}

func TestDenseRows(t *testing.T) {
	cases := []struct {
		rows []int32
		want bool
	}{
		{nil, false},
		{[]int32{0}, true},
		{[]int32{1}, false},
		{[]int32{0, 1, 2, 3}, true},
		{[]int32{0, 1, 2, 4}, false},
		{[]int32{1, 2, 3}, false},
	}
	for _, c := range cases {
		if got := DenseRows(c.rows); got != c.want {
			t.Fatalf("DenseRows(%v) = %v, want %v", c.rows, got, c.want)
		}
	}
}
