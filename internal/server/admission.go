package server

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Admission-control errors, mapped to 429 by the HTTP layer.
var (
	// ErrSaturated means both every execution slot and every wait-queue
	// position were taken at arrival time.
	ErrSaturated = errors.New("server: saturated, admission queue full")
	// ErrQueueTimeout means the query waited its full queue timeout
	// without an execution slot freeing up.
	ErrQueueTimeout = errors.New("server: timed out waiting for an execution slot")
)

// admission is the bounded-concurrency gate in front of the engine: at
// most max queries execute at once, at most maxWait more wait in a FIFO
// queue, and everything beyond that is rejected immediately. Waiters give
// up on their queue timeout or when their request context dies.
type admission struct {
	mu      sync.Mutex
	inUse   int
	max     int
	maxWait int
	waiters []*waiter
}

// waiter is one queued acquire. granted flips under the mutex when a
// release hands the slot over, which closes the race between a grant and
// an abandoning waiter: whoever holds the mutex first wins, and a waiter
// that finds itself granted after timing out keeps the slot (its query
// context is typically dead too, so the query unwinds immediately and the
// slot frees right back up).
type waiter struct {
	ch      chan struct{}
	granted bool
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{max: maxInFlight, maxWait: maxQueue}
}

// acquire claims an execution slot, waiting in FIFO order up to timeout.
func (a *admission) acquire(ctx context.Context, timeout time.Duration) error {
	a.mu.Lock()
	if a.inUse < a.max {
		a.inUse++
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.maxWait {
		a.mu.Unlock()
		return ErrSaturated
	}
	w := &waiter{ch: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case <-w.ch:
		return nil
	case <-expired:
		return a.abandon(w, ErrQueueTimeout)
	case <-ctx.Done():
		return a.abandon(w, context.Cause(ctx))
	}
}

// abandon removes w from the queue, unless a release granted it the slot
// in the race window — then the slot is kept and the acquire succeeds.
func (a *admission) abandon(w *waiter, err error) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.granted {
		return nil
	}
	for i, x := range a.waiters {
		if x == w {
			a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
			break
		}
	}
	return err
}

// release returns a slot: the longest-waiting queued query gets it,
// otherwise the in-use count drops.
func (a *admission) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.waiters) > 0 {
		w := a.waiters[0]
		a.waiters = a.waiters[1:]
		w.granted = true
		close(w.ch)
		return
	}
	a.inUse--
}

// depth reports (in-flight, queued) for the metrics surface.
func (a *admission) depth() (inFlight, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse, len(a.waiters)
}
