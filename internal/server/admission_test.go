package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionImmediate(t *testing.T) {
	a := newAdmission(2, 2)
	ctx := context.Background()
	if err := a.acquire(ctx, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(ctx, time.Second); err != nil {
		t.Fatal(err)
	}
	if in, q := a.depth(); in != 2 || q != 0 {
		t.Fatalf("depth = (%d, %d), want (2, 0)", in, q)
	}
	a.release()
	a.release()
	if in, q := a.depth(); in != 0 || q != 0 {
		t.Fatalf("after release: depth = (%d, %d), want (0, 0)", in, q)
	}
}

func TestAdmissionSaturatedQueue(t *testing.T) {
	a := newAdmission(1, 1)
	ctx := context.Background()
	if err := a.acquire(ctx, time.Second); err != nil {
		t.Fatal(err)
	}

	// Second acquire queues; fill the queue from a goroutine, then a
	// third acquire must be turned away immediately.
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(ctx, 5*time.Second) }()
	for {
		if _, q := a.depth(); q == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := a.acquire(ctx, time.Second); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow acquire: %v, want ErrSaturated", err)
	}

	// Releasing the slot grants it to the queued waiter FIFO-style.
	a.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	a.release()
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := newAdmission(1, 4)
	ctx := context.Background()
	if err := a.acquire(ctx, time.Second); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := a.acquire(ctx, 30*time.Millisecond)
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("got %v, want ErrQueueTimeout", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("timeout took %v", d)
	}
	// The abandoned waiter must not hold a queue position.
	if _, q := a.depth(); q != 0 {
		t.Fatalf("queue depth = %d after timeout, want 0", q)
	}
	a.release()
}

func TestAdmissionContextCancel(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.acquire(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.acquire(ctx, time.Minute) }()
	for {
		if _, q := a.depth(); q == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if _, q := a.depth(); q != 0 {
		t.Fatalf("queue depth = %d after cancel, want 0", q)
	}
	a.release()
}

// TestAdmissionFIFO checks waiters are granted in arrival order.
func TestAdmissionFIFO(t *testing.T) {
	a := newAdmission(1, 8)
	if err := a.acquire(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	const n = 4
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			if err := a.acquire(context.Background(), time.Minute); err == nil {
				order <- i
				a.release()
			}
		}()
		// Serialize arrivals so queue order is deterministic.
		for {
			if _, q := a.depth(); q == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	a.release()
	for want := 0; want < n; want++ {
		if got := <-order; got != want {
			t.Fatalf("grant order: got waiter %d, want %d", got, want)
		}
	}
}

// TestAdmissionStress hammers acquire/release from many goroutines and
// checks the slot accounting ends balanced. Mostly a -race target.
func TestAdmissionStress(t *testing.T) {
	a := newAdmission(4, 16)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
				err := a.acquire(ctx, 10*time.Millisecond)
				cancel()
				if err == nil {
					a.release()
				}
			}
		}()
	}
	wg.Wait()
	if in, q := a.depth(); in != 0 || q != 0 {
		t.Fatalf("depth = (%d, %d) after stress, want (0, 0)", in, q)
	}
}
