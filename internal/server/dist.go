package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ocht/internal/exec"
	"ocht/internal/sql"
	"ocht/internal/ussr"
	"ocht/internal/vec"
)

// This file is the serving surface the distribution layer talks to: the
// shard subquery endpoint the coordinator fans out over, the WAL export
// endpoints replicas pull segments from, and the replication status a
// coordinator uses to route reads to caught-up replicas.

// ShardRequest is the POST /shard/query body: a shard subquery as
// produced by sql.PlanDistributed, plus the coordinator's routing
// constraints.
type ShardRequest struct {
	SQL       string `json:"sql"`
	TimeoutMs int    `json:"timeout_ms,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	// MinCatalogVersion rejects the query with 409 when this node's
	// catalog has not reached the given version — the coordinator sets it
	// when routing to a replica that must have replayed a DDL first.
	MinCatalogVersion uint64 `json:"min_catalog_version,omitempty"`
}

// ShardResponse carries a shard subquery's full result: declared column
// types (sql.TypeTag spelling) so the coordinator can rebuild typed
// vectors, and untruncated rows — partials feed a merge, so dropping any
// would corrupt the global result. Cells are JSON scalars except I128,
// which ships as a [hi, lo] pair to survive number precision limits.
type ShardResponse struct {
	Columns        []string `json:"columns,omitempty"`
	Types          []string `json:"types,omitempty"`
	Rows           [][]any  `json:"rows,omitempty"`
	RowCount       int      `json:"row_count"`
	CatalogVersion uint64   `json:"catalog_version"`
	ElapsedMs      float64  `json:"elapsed_ms"`
	Error          string   `json:"error,omitempty"`
}

func (s *Server) handleShardQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ShardResponse{Error: "POST only"})
		return
	}
	var req ShardRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ShardResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, ShardResponse{Error: "missing \"sql\""})
		return
	}

	s.met.started.Add(1)
	if err := s.adm.acquire(r.Context(), s.cfg.QueueTimeout); err != nil {
		s.met.rejected.Add(1)
		status := http.StatusTooManyRequests
		if !errors.Is(err, ErrSaturated) && !errors.Is(err, ErrQueueTimeout) {
			status = statusClientClosed
		}
		writeJSON(w, status, ShardResponse{Error: err.Error()})
		return
	}
	defer s.adm.release()

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	resp, status := s.executeShard(ctx, &req)
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	s.met.latency.observe(time.Since(start))
	switch {
	case status == http.StatusOK:
		s.met.finished.Add(1)
		s.met.rows.Add(int64(resp.RowCount))
	case status == http.StatusGatewayTimeout || status == statusClientClosed:
		s.met.canceled.Add(1)
	default:
		s.met.failed.Add(1)
	}
	writeJSON(w, status, resp)
}

// executeShard compiles and runs a shard subquery through the same plan
// cache and snapshot discipline as /query, differing in the response
// shape: typed columns, no row truncation.
func (s *Server) executeShard(ctx context.Context, req *ShardRequest) (resp ShardResponse, status int) {
	defer func() {
		if p := recover(); p != nil {
			resp = ShardResponse{Error: fmt.Sprint(p)}
			status = http.StatusBadRequest
		}
	}()

	snap := s.cat.Snapshot()
	resp.CatalogVersion = snap.Version()
	if req.MinCatalogVersion > 0 && snap.Version() < req.MinCatalogVersion {
		resp.Error = fmt.Sprintf("catalog at version %d, coordinator requires %d (replica catching up)",
			snap.Version(), req.MinCatalogVersion)
		return resp, http.StatusConflict
	}
	key := fmt.Sprintf("%d|%s", snap.Version(), normalizeSQL(req.SQL))
	entry, hit := s.cache.get(key)
	if !hit {
		stmt, err := sql.Parse(req.SQL)
		if err != nil {
			resp.Error = err.Error()
			return resp, http.StatusBadRequest
		}
		root, order, limit, err := sql.Plan(stmt, snap)
		if err != nil {
			resp.Error = err.Error()
			return resp, http.StatusBadRequest
		}
		entry = &planEntry{root: root, order: order, limit: limit}
		s.cache.put(key, entry)
	}

	var u *ussr.USSR
	if s.cfg.Flags.UseUSSR {
		u = s.pool.acquire()
	}
	qc := exec.NewQCtxUSSR(s.cfg.Flags, u)
	qc.Workers = s.cfg.Workers
	if req.Workers > 0 {
		qc.Workers = req.Workers
	}
	defer func() {
		s.stats.Merge(qc.Stats)
		s.pool.release(u)
	}()

	res, err := exec.RunCtx(ctx, qc, exec.ClonePlan(entry.root))
	if err != nil {
		resp.Error = err.Error()
		if ctx.Err() == context.DeadlineExceeded {
			return resp, http.StatusGatewayTimeout
		}
		return resp, statusClientClosed
	}
	if len(entry.order) > 0 {
		res.OrderBy(entry.order...)
	}
	if entry.limit >= 0 {
		res.Limit(entry.limit)
	}

	resp.Columns = res.Names
	resp.Types = make([]string, len(res.Types))
	for i, t := range res.Types {
		resp.Types[i] = sql.TypeTag(t)
	}
	resp.RowCount = len(res.Rows)
	resp.Rows = make([][]any, len(res.Rows))
	for i, r := range res.Rows {
		row := make([]any, len(r))
		for j, v := range r {
			row[j] = shardCell(v)
		}
		resp.Rows[i] = row
	}
	return resp, http.StatusOK
}

// shardCell encodes one result cell for the exchange wire format. Unlike
// cellJSON, 128-bit values keep their exact halves: the coordinator
// reassembles them instead of printing them.
func shardCell(v exec.Value) any {
	if v.Null {
		return nil
	}
	switch v.Typ {
	case vec.F64:
		return v.F
	case vec.Str:
		return v.S
	case vec.I128:
		return []any{v.I128.Hi, v.I128.Lo}
	default:
		return v.I
	}
}

// TableInfo describes one table for GET /tables.
type TableInfo struct {
	Name     string   `json:"name"`
	Columns  []string `json:"columns"`
	Types    []string `json:"types"`
	Rows     int      `json:"rows"`
	Writable bool     `json:"writable"`
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	snap := s.cat.Snapshot()
	infos := []TableInfo{}
	for _, name := range snap.Names() {
		t, ok := snap.TableOK(name)
		if !ok {
			continue
		}
		ti := TableInfo{Name: name, Rows: t.Rows()}
		for _, c := range t.Cols {
			ti.Columns = append(ti.Columns, c.Name)
			ti.Types = append(ti.Types, sql.TypeTag(c.Type))
		}
		if s.ing != nil {
			ti.Writable = s.ing.Managed(name)
		}
		infos = append(infos, ti)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"catalog_version": snap.Version(),
		"tables":          infos,
	})
}

// handleWALStatus reports the committed row count (replication LSN) per
// writable table. Replicas poll it to discover new tables and pull work.
func (s *Server) handleWALStatus(w http.ResponseWriter, r *http.Request) {
	if s.ing == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "no ingest engine attached"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"catalog_version": s.cat.Version(),
		"tables":          s.ing.TableLSNs(),
	})
}

// handleWALExport streams one replication segment:
// GET /wal/export?table=T&from=N&max=M. The body is the binary segment
// (WAL framing, self-checking); X-Ocht-Next-Lsn carries the follow-up
// fetch position.
func (s *Server) handleWALExport(w http.ResponseWriter, r *http.Request) {
	if s.ing == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "no ingest engine attached"})
		return
	}
	table := r.URL.Query().Get("table")
	if table == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "missing table parameter"})
		return
	}
	from, err := strconv.ParseInt(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad from parameter"})
		return
	}
	maxRows := 0
	if m := r.URL.Query().Get("max"); m != "" {
		if maxRows, err = strconv.Atoi(m); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad max parameter"})
			return
		}
	}
	seg, next, err := s.ing.ExportSegment(table, from, maxRows)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ocht-Next-Lsn", strconv.FormatInt(next, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(seg)
}

// ReplicaStatus is what a read replica reports about its catch-up state.
// The puller (internal/dist.Replica) supplies it through
// Config.ReplicaStatus.
type ReplicaStatus struct {
	Primary string `json:"primary"`
	// Tables maps table name to the replica's committed row count.
	Tables map[string]int64 `json:"tables"`
	// CaughtUp is true when the last poll found nothing left to pull.
	CaughtUp bool   `json:"caught_up"`
	LastErr  string `json:"last_error,omitempty"`
}

func (s *Server) handleReplicationStatus(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ReplicaStatus == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "not a replica"})
		return
	}
	st := s.cfg.ReplicaStatus()
	writeJSON(w, http.StatusOK, st)
}
