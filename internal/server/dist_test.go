package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"ocht/internal/core"
	"ocht/internal/ingest"
	"ocht/internal/sql"
	"ocht/internal/storage"
)

func postShard(tb testing.TB, url string, req ShardRequest) (ShardResponse, int) {
	tb.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/shard/query", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatalf("POST /shard/query: %v", err)
	}
	defer resp.Body.Close()
	var sr ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		tb.Fatalf("decode shard response: %v", err)
	}
	return sr, resp.StatusCode
}

// TestShardQueryEndpoint checks the exchange wire format: declared types,
// no truncation (partials must arrive whole), and the catalog-version
// gate replicas are routed through.
func TestShardQueryEndpoint(t *testing.T) {
	cat := testCatalog(t)
	srv := New(cat, Config{Flags: core.All(), Workers: 2, MaxResultRows: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sr, status := postShard(t, ts.URL, ShardRequest{
		SQL: "SELECT o_orderstatus AS __k0, COUNT(*) AS __a0 FROM orders GROUP BY o_orderstatus",
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, sr.Error)
	}
	if len(sr.Types) != 2 || sr.Types[0] != "STR" || sr.Types[1] != "I64" {
		t.Fatalf("types = %v", sr.Types)
	}
	// MaxResultRows is 1, yet every group must come back.
	if sr.RowCount < 2 || len(sr.Rows) != sr.RowCount {
		t.Fatalf("shard response truncated: row_count=%d rows=%d", sr.RowCount, len(sr.Rows))
	}

	// The staleness gate: demanding a future catalog version is a 409.
	_, status = postShard(t, ts.URL, ShardRequest{
		SQL:               "SELECT COUNT(*) AS __a0 FROM orders",
		MinCatalogVersion: cat.Version() + 100,
	})
	if status != http.StatusConflict {
		t.Fatalf("future min_catalog_version: status %d, want 409", status)
	}
}

// TestWALEndpointsAndReplicaServer drives the full replica loop over
// HTTP: a primary with a write path, a replica engine pulling segments
// through /wal/status + /wal/export, and a replica server that refuses
// writes but serves identical reads.
func TestWALEndpointsAndReplicaServer(t *testing.T) {
	pcat := storage.NewCatalog()
	peng, err := ingest.Open(t.TempDir(), pcat, ingest.Config{DisableSealer: true})
	if err != nil {
		t.Fatalf("open primary engine: %v", err)
	}
	defer peng.Close()
	psrv := New(pcat, Config{Flags: core.All(), Workers: 1, Ingest: peng})
	pts := httptest.NewServer(psrv.Handler())
	defer pts.Close()

	if qr, status := postQuery(t, pts.URL, QueryRequest{SQL: "CREATE TABLE kv (k BIGINT NOT NULL, v TEXT)"}); status != http.StatusOK {
		t.Fatalf("create: %d %s", status, qr.Error)
	}
	for i := 0; i < 3; i++ {
		stmt := fmt.Sprintf("INSERT INTO kv VALUES (%d, 'v%d'), (%d, NULL)", i*2, i, i*2+1)
		if qr, status := postQuery(t, pts.URL, QueryRequest{SQL: stmt}); status != http.StatusOK {
			t.Fatalf("insert: %d %s", status, qr.Error)
		}
	}

	// Pull loop against the HTTP surface.
	rcat := storage.NewCatalog()
	reng, err := ingest.Open(t.TempDir(), rcat, ingest.Config{DisableSealer: true})
	if err != nil {
		t.Fatalf("open replica engine: %v", err)
	}
	defer reng.Close()

	var status struct {
		Tables map[string]int64 `json:"tables"`
	}
	resp, err := http.Get(pts.URL + "/wal/status")
	if err != nil {
		t.Fatalf("GET /wal/status: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatalf("decode /wal/status: %v", err)
	}
	resp.Body.Close()
	if status.Tables["kv"] != 6 {
		t.Fatalf("/wal/status says kv at %d, want 6", status.Tables["kv"])
	}
	for table, target := range status.Tables {
		var lsn int64
		for lsn < target {
			resp, err := http.Get(fmt.Sprintf("%s/wal/export?table=%s&from=%d&max=2", pts.URL, table, lsn))
			if err != nil {
				t.Fatalf("GET /wal/export: %v", err)
			}
			seg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/wal/export status %d: %s", resp.StatusCode, seg)
			}
			next, err := strconv.ParseInt(resp.Header.Get("X-Ocht-Next-Lsn"), 10, 64)
			if err != nil {
				t.Fatalf("bad X-Ocht-Next-Lsn: %v", err)
			}
			if _, got, err := reng.ApplySegment(table, seg); err != nil {
				t.Fatalf("apply segment: %v", err)
			} else if got != next {
				t.Fatalf("replica at %d, header said %d", got, next)
			}
			lsn = next
		}
	}

	rsrv := New(rcat, Config{Flags: core.All(), Workers: 1, Ingest: reng, ReadOnly: true,
		ReplicaStatus: func() ReplicaStatus {
			return ReplicaStatus{Primary: pts.URL, Tables: reng.TableLSNs(), CaughtUp: true}
		}})
	rts := httptest.NewServer(rsrv.Handler())
	defer rts.Close()

	const q = "SELECT k, v FROM kv ORDER BY k"
	want, _ := postQuery(t, pts.URL, QueryRequest{SQL: q})
	got, st := postQuery(t, rts.URL, QueryRequest{SQL: q})
	if st != http.StatusOK {
		t.Fatalf("replica read: %d %s", st, got.Error)
	}
	if fmt.Sprint(renderResp(got)) != fmt.Sprint(renderResp(want)) {
		t.Fatalf("replica rows differ\n got: %v\nwant: %v", renderResp(got), renderResp(want))
	}

	// A replica must refuse direct writes even with an engine attached.
	if qr, st := postQuery(t, rts.URL, QueryRequest{SQL: "INSERT INTO kv VALUES (99, 'x')"}); st != http.StatusForbidden {
		t.Fatalf("replica write: status %d (%s), want 403", st, qr.Error)
	}

	var rs ReplicaStatus
	resp, err = http.Get(rts.URL + "/replication/status")
	if err != nil {
		t.Fatalf("GET /replication/status: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		t.Fatalf("decode /replication/status: %v", err)
	}
	resp.Body.Close()
	if !rs.CaughtUp || rs.Tables["kv"] != 6 {
		t.Fatalf("replication status = %+v", rs)
	}
}

// TestPlanCacheReplicationStaleness pins the satellite: a replica's plan
// cache entry must die when segment replay advances the catalog, both
// for new rows and for replayed DDL that changes what a query means.
func TestPlanCacheReplicationStaleness(t *testing.T) {
	pcat := storage.NewCatalog()
	peng, err := ingest.Open(t.TempDir(), pcat, ingest.Config{DisableSealer: true})
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	defer peng.Close()
	mustApply := func(eng *ingest.Engine, stmt string) {
		t.Helper()
		s, perr := sql.ParseStatement(stmt)
		if perr != nil {
			t.Fatalf("parse %q: %v", stmt, perr)
		}
		if _, aerr := eng.Apply(s); aerr != nil {
			t.Fatalf("apply %q: %v", stmt, aerr)
		}
	}
	mustApply(peng, "CREATE TABLE m (a BIGINT NOT NULL)")
	mustApply(peng, "INSERT INTO m VALUES (1), (2)")

	rcat := storage.NewCatalog()
	reng, err := ingest.Open(t.TempDir(), rcat, ingest.Config{DisableSealer: true})
	if err != nil {
		t.Fatalf("open replica: %v", err)
	}
	defer reng.Close()
	ship := func(table string) {
		t.Helper()
		var lsn int64
		if cur, ok := reng.TableLSN(table); ok {
			lsn = cur
		}
		for {
			seg, next, serr := peng.ExportSegment(table, lsn, 0)
			if serr != nil {
				t.Fatalf("export: %v", serr)
			}
			if _, _, aerr := reng.ApplySegment(table, seg); aerr != nil {
				t.Fatalf("apply: %v", aerr)
			}
			if next == lsn {
				return
			}
			lsn = next
		}
	}
	ship("m")

	rsrv := New(rcat, Config{Flags: core.All(), Workers: 1, Ingest: reng, ReadOnly: true})
	rts := httptest.NewServer(rsrv.Handler())
	defer rts.Close()

	const q = "SELECT COUNT(*) FROM m"
	qr, _ := postQuery(t, rts.URL, QueryRequest{SQL: q})
	if qr.PlanCache != "miss" {
		t.Fatalf("first query: plan_cache=%s", qr.PlanCache)
	}
	qr, _ = postQuery(t, rts.URL, QueryRequest{SQL: q})
	if qr.PlanCache != "hit" {
		t.Fatalf("second query: plan_cache=%s", qr.PlanCache)
	}
	if fmt.Sprint(qr.Rows) != "[[2]]" {
		t.Fatalf("count = %v", qr.Rows)
	}

	// New rows replayed through replication must retire the cached plan:
	// the stale plan's scan pins the old table version and would count 2.
	mustApply(peng, "INSERT INTO m VALUES (3), (4), (5)")
	ship("m")
	qr, _ = postQuery(t, rts.URL, QueryRequest{SQL: q})
	if qr.PlanCache != "miss" {
		t.Fatalf("after replay: plan_cache=%s, stale plan served", qr.PlanCache)
	}
	if fmt.Sprint(qr.Rows) != "[[5]]" {
		t.Fatalf("count after replay = %v, want [[5]]", qr.Rows)
	}

	// Replayed DDL: a table that did not exist when the query first
	// failed must become visible (the failure is not cached, and the
	// catalog version moved anyway).
	if _, st := postQuery(t, rts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM late_t"}); st == http.StatusOK {
		t.Fatal("query on missing table should fail")
	}
	mustApply(peng, "CREATE TABLE late_t (x BIGINT NOT NULL)")
	mustApply(peng, "INSERT INTO late_t VALUES (7)")
	ship("late_t")
	qr, st := postQuery(t, rts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM late_t"})
	if st != http.StatusOK || fmt.Sprint(qr.Rows) != "[[1]]" {
		t.Fatalf("replayed DDL not visible: status %d rows %v (%s)", st, qr.Rows, qr.Error)
	}
}
