package server

import (
	"sync/atomic"
	"time"
)

// latencyBounds are the histogram bucket upper bounds. Log-spaced from
// 1 ms to 10 s; everything slower lands in the overflow bucket.
var latencyBounds = [numBounds]time.Duration{
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

const numBounds = 13

// histogram is a fixed-bucket latency histogram with atomic counters, so
// the hot observe path never takes a lock and /metrics can read while
// queries finish concurrently.
type histogram struct {
	counts [numBounds + 1]atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// latencySummary is the JSON shape of the histogram on /metrics.
type latencySummary struct {
	Count   int64            `json:"count"`
	MeanMs  float64          `json:"mean_ms"`
	P50Ms   float64          `json:"p50_ms"`
	P90Ms   float64          `json:"p90_ms"`
	P99Ms   float64          `json:"p99_ms"`
	MaxMs   float64          `json:"max_ms"`
	Buckets map[string]int64 `json:"buckets"`
}

// summary renders counts, mean, max and bucket-interpolated quantiles.
func (h *histogram) summary() latencySummary {
	var counts [numBounds + 1]int64
	var total int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := latencySummary{Count: total, Buckets: make(map[string]int64, len(counts))}
	for i, c := range counts {
		label := "+inf"
		if i < len(latencyBounds) {
			label = latencyBounds[i].String()
		}
		if c > 0 {
			s.Buckets["le_"+label] = c
		}
	}
	if total == 0 {
		return s
	}
	s.MeanMs = float64(h.sumNs.Load()) / float64(total) / 1e6
	s.MaxMs = float64(h.maxNs.Load()) / 1e6
	quantile := func(q float64) float64 {
		rank := int64(q * float64(total))
		var cum int64
		for i, c := range counts {
			cum += c
			if cum > rank {
				// Upper bound of the bucket; good enough at log spacing.
				if i < len(latencyBounds) {
					return float64(latencyBounds[i]) / 1e6
				}
				return float64(h.maxNs.Load()) / 1e6
			}
		}
		return float64(h.maxNs.Load()) / 1e6
	}
	s.P50Ms = quantile(0.50)
	s.P90Ms = quantile(0.90)
	s.P99Ms = quantile(0.99)
	return s
}

// metrics is the server's counter surface. Everything is atomic; the
// /metrics handler assembles the JSON view in Server.metricsJSON, pulling
// plan-cache, admission, pool and engine-stat numbers from their owners.
type metrics struct {
	started  atomic.Int64 // requests that reached admission
	finished atomic.Int64 // queries that returned a result
	rejected atomic.Int64 // admission rejections (saturated or queue timeout)
	canceled atomic.Int64 // deadline exceeded or client disconnected
	failed   atomic.Int64 // parse/plan/execution errors
	rows     atomic.Int64 // result rows returned (pre-truncation)
	writes   atomic.Int64 // write statements durably committed
	latency  histogram    // wall time of finished queries (incl. canceled)
}
