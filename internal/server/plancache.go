package server

import (
	"strings"
	"sync"
	"sync/atomic"

	"ocht/internal/exec"
)

// planEntry is one cached compiled query: an operator-tree template that
// is never executed directly — every run clones it with exec.ClonePlan —
// plus the post-run ordering and limit the SQL layer derived.
type planEntry struct {
	root  exec.Op
	order []exec.SortKey
	limit int
}

// planCache maps normalized SQL text (already combined with the catalog
// version by the caller) to compiled plans, so repeated queries skip
// parse+compile. Eviction is FIFO: the workloads this serves re-issue a
// small set of statement shapes, so anything beyond recency bookkeeping
// buys nothing.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*planEntry
	order   []string

	hits   atomic.Int64
	misses atomic.Int64
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, entries: make(map[string]*planEntry)}
}

// get returns the cached entry and counts the hit or miss.
func (c *planCache) get(key string) (*planEntry, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// put stores a compiled plan, evicting the oldest entry at capacity.
// Concurrent compilations of the same statement may both put; the second
// simply overwrites the first with an equivalent plan.
func (c *planCache) put(key string, e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; !exists {
		for len(c.entries) >= c.max && len(c.order) > 0 {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
		c.order = append(c.order, key)
	}
	c.entries[key] = e
}

// size reports the number of cached plans.
func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// normalizeSQL collapses whitespace runs outside single-quoted string
// literals to a single space. Whitespace is only ever a token separator
// in the SQL dialect (no comments), so two statements with the same
// normalization always parse identically. Case is deliberately left
// alone: identifiers are matched as written, so folding case could alias
// distinct statements.
func normalizeSQL(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(q); i++ {
		ch := q[i]
		if inStr {
			b.WriteByte(ch)
			if ch == '\'' {
				inStr = false
			}
			continue
		}
		switch ch {
		case ' ', '\t', '\n', '\r':
			pendingSpace = true
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			if ch == '\'' {
				inStr = true
			}
			b.WriteByte(ch)
		}
	}
	return b.String()
}
