package server

import (
	"fmt"
	"testing"
)

func TestNormalizeSQL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT COUNT(*) FROM t", "SELECT COUNT(*) FROM t"},
		{"  SELECT   COUNT(*)\n\tFROM t  ", "SELECT COUNT(*) FROM t"},
		{"SELECT a FROM t WHERE s = 'two  spaces'", "SELECT a FROM t WHERE s = 'two  spaces'"},
		{"SELECT a FROM t WHERE s = 'tab\there'", "SELECT a FROM t WHERE s = 'tab\there'"},
		{"", ""},
		{"   ", ""},
	}
	for _, tc := range cases {
		if got := normalizeSQL(tc.in); got != tc.want {
			t.Errorf("normalizeSQL(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}

	// Equivalent whitespace variants share a key; literal-content and
	// identifier-case variants must not.
	same := []string{"SELECT a FROM t", "SELECT  a  FROM  t", "\nSELECT\ta\nFROM t\n"}
	for _, v := range same[1:] {
		if normalizeSQL(v) != normalizeSQL(same[0]) {
			t.Errorf("%q and %q should normalize identically", v, same[0])
		}
	}
	if normalizeSQL("SELECT a FROM t") == normalizeSQL("SELECT A FROM t") {
		t.Error("case folding must not alias distinct identifiers")
	}
	if normalizeSQL("SELECT a FROM t WHERE s = 'x y'") == normalizeSQL("SELECT a FROM t WHERE s = 'x  y'") {
		t.Error("whitespace inside string literals must be preserved")
	}
}

func TestPlanCacheHitMiss(t *testing.T) {
	c := newPlanCache(4)
	if _, ok := c.get("k1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("k1", &planEntry{limit: -1})
	if e, ok := c.get("k1"); !ok || e.limit != -1 {
		t.Fatal("expected hit after put")
	}
	if h, m := c.hits.Load(), c.misses.Load(); h != 1 || m != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", h, m)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(3)
	for i := 0; i < 5; i++ {
		c.put(fmt.Sprintf("k%d", i), &planEntry{limit: i})
	}
	if got := c.size(); got != 3 {
		t.Fatalf("size = %d, want 3", got)
	}
	// FIFO: oldest two evicted, newest three present.
	for i := 0; i < 2; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); ok {
			t.Errorf("k%d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d missing", i)
		}
	}
	// Overwriting an existing key must not grow the order list.
	c.put("k4", &planEntry{limit: 40})
	if e, _ := c.get("k4"); e.limit != 40 {
		t.Fatal("overwrite did not take")
	}
	if got := c.size(); got != 3 {
		t.Fatalf("size after overwrite = %d, want 3", got)
	}
}
