package server

import (
	"sync"
	"sync/atomic"

	"ocht/internal/ussr"
)

// ussrPool recycles USSR regions across queries. The USSR is a
// query-lifetime structure with a fixed 768 kB footprint; under load,
// allocating (and page-faulting) a fresh region per request is pure
// overhead, so finished queries return their region here and new queries
// acquire a zeroed one. Regions are Reset on release — never on the
// acquire path — so a frozen region (the parallel executor freezes the
// USSR for sharing) can never leak into a new query even if a release is
// forgotten somewhere: acquire refuses dirty regions outright.
type ussrPool struct {
	p         sync.Pool
	reused    atomic.Int64
	allocated atomic.Int64
	// dirty counts regions that arrived at acquire frozen or non-empty.
	// Always zero unless a release-path bug slips in; exported on
	// /metrics and asserted zero by the concurrency tests.
	dirty atomic.Int64
}

// acquire returns an unfrozen, empty region.
func (up *ussrPool) acquire() *ussr.USSR {
	if v := up.p.Get(); v != nil {
		u := v.(*ussr.USSR)
		if u.Frozen() || u.Stats().Count != 0 {
			up.dirty.Add(1)
			u.Reset()
		}
		up.reused.Add(1)
		return u
	}
	up.allocated.Add(1)
	return ussr.New()
}

// release zeroes the region and returns it to the pool. Safe to call with
// frozen regions (Reset unfreezes) and with nil.
func (up *ussrPool) release(u *ussr.USSR) {
	if u == nil {
		return
	}
	u.Reset()
	up.p.Put(u)
}
