// Package server turns the engine into a long-lived query service: an
// HTTP/JSON front end (POST /query, GET /metrics, GET /healthz, pprof)
// over the SQL compiler and the morsel-driven parallel executor, with the
// per-request lifecycle a serving stack needs — admission control with a
// FIFO wait queue, per-query deadlines and client-disconnect
// cancellation threaded through the engine, a plan cache keyed by
// normalized SQL + catalog version, USSR pooling across queries, and an
// atomic counter/histogram observability surface.
//
// When an ingest engine is attached the same /query endpoint also
// accepts CREATE TABLE / INSERT / COPY statements. Reads pin a catalog
// snapshot at compile time, so a concurrently committing write never
// shows a query a half-published table, and the snapshot version in the
// plan-cache key invalidates cached plans the moment a commit lands.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/ingest"
	"ocht/internal/sql"
	"ocht/internal/storage"
	"ocht/internal/ussr"
	"ocht/internal/vec"
)

// Config sizes the service. Zero values fall back to DefaultConfig.
type Config struct {
	Flags   core.Flags // engine technique flags for every query
	Workers int        // default parallel workers per query

	MaxInFlight  int           // concurrent executing queries
	MaxQueue     int           // additional queries allowed to wait
	QueueTimeout time.Duration // max wait for an execution slot

	DefaultTimeout time.Duration // per-query deadline when none requested
	MaxTimeout     time.Duration // cap on client-requested deadlines

	PlanCacheSize int // cached compiled statements
	MaxResultRows int // rows returned per response before truncation

	// Ingest is the optional write path. When nil the server is
	// read-only and write statements are rejected with 403.
	Ingest *ingest.Engine

	// ReadOnly rejects client writes even with an ingest engine attached.
	// Read replicas run this way: their engine exists solely to apply
	// replication segments, never to accept direct INSERTs that would
	// fork the replica's history from its primary.
	ReadOnly bool

	// ReplicaStatus, when set, marks this server as a read replica and
	// backs GET /replication/status; the WAL puller supplies it.
	ReplicaStatus func() ReplicaStatus
}

// DefaultConfig returns serving defaults sized for one machine.
func DefaultConfig() Config {
	return Config{
		Flags:          core.All(),
		Workers:        runtime.GOMAXPROCS(0),
		MaxInFlight:    runtime.GOMAXPROCS(0) * 2,
		MaxQueue:       64,
		QueueTimeout:   2 * time.Second,
		DefaultTimeout: 30 * time.Second,
		MaxTimeout:     5 * time.Minute,
		PlanCacheSize:  256,
		MaxResultRows:  1 << 20,
	}
}

// Server serves SQL queries over one catalog. Reads run against pinned
// copy-on-write snapshots; writes (when an ingest engine is attached)
// mutate the catalog through the WAL-backed write path.
type Server struct {
	cat   *storage.Catalog
	ing   *ingest.Engine // nil = read-only service
	cfg   Config
	adm   *admission
	cache *planCache
	pool  *ussrPool
	met   *metrics
	stats *exec.Stats // engine primitive breakdown summed over all queries
	start time.Time
	mux   *http.ServeMux
}

// New creates a server over the catalog. The catalog may be mutated
// concurrently through cfg.Ingest (or any other Catalog.Add caller):
// every query plans against a pinned Catalog.Snapshot and the plan cache
// keys on the snapshot version, so in-flight queries and cached plans
// never observe a half-published table.
func New(cat *storage.Catalog, cfg Config) *Server {
	def := DefaultConfig()
	if cfg.Workers <= 0 {
		cfg.Workers = def.Workers
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = def.MaxInFlight
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = def.MaxQueue
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = def.QueueTimeout
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = def.DefaultTimeout
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = def.MaxTimeout
	}
	if cfg.PlanCacheSize <= 0 {
		cfg.PlanCacheSize = def.PlanCacheSize
	}
	if cfg.MaxResultRows <= 0 {
		cfg.MaxResultRows = def.MaxResultRows
	}
	s := &Server{
		cat:   cat,
		ing:   cfg.Ingest,
		cfg:   cfg,
		adm:   newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		cache: newPlanCache(cfg.PlanCacheSize),
		pool:  &ussrPool{},
		met:   &metrics{},
		stats: exec.NewStats(),
		start: time.Now(),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/shard/query", s.handleShardQuery)
	s.mux.HandleFunc("/tables", s.handleTables)
	s.mux.HandleFunc("/wal/status", s.handleWALStatus)
	s.mux.HandleFunc("/wal/export", s.handleWALExport)
	s.mux.HandleFunc("/replication/status", s.handleReplicationStatus)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// QueryRequest is the POST /query body.
type QueryRequest struct {
	SQL string `json:"sql"`
	// TimeoutMs overrides the server's default per-query deadline,
	// capped at the configured maximum.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Workers overrides the per-query parallelism (1 = serial).
	Workers int `json:"workers,omitempty"`
}

// QueryResponse is the POST /query reply. Rows hold JSON scalars: int64
// and bool columns as numbers, f64 as floats, strings as strings, 128-bit
// sums as decimal strings, SQL NULL as null.
type QueryResponse struct {
	Columns   []string `json:"columns,omitempty"`
	Rows      [][]any  `json:"rows,omitempty"`
	RowCount  int      `json:"row_count"`
	Truncated bool     `json:"truncated,omitempty"`
	ElapsedMs float64  `json:"elapsed_ms"`
	PlanCache string   `json:"plan_cache,omitempty"` // "hit" or "miss"
	// RowsAffected reports rows durably committed by a write statement
	// (INSERT, COPY). The write is fsynced per the engine's policy and
	// visible to subsequent queries before the response is sent.
	RowsAffected int64  `json:"rows_affected,omitempty"`
	Error        string `json:"error,omitempty"`
}

// statusClientClosed is nginx's 499: the client went away before the
// response; no standard constant exists.
const statusClientClosed = 499

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, QueryResponse{Error: "POST only"})
		return
	}
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "missing \"sql\""})
		return
	}

	s.met.started.Add(1)
	// Admission: r.Context() dies with the client connection, so a
	// disconnected client never occupies a queue position.
	if err := s.adm.acquire(r.Context(), s.cfg.QueueTimeout); err != nil {
		s.met.rejected.Add(1)
		status := http.StatusTooManyRequests
		if !errors.Is(err, ErrSaturated) && !errors.Is(err, ErrQueueTimeout) {
			status = statusClientClosed
		}
		writeJSON(w, status, QueryResponse{Error: err.Error()})
		return
	}
	defer s.adm.release()

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	var resp QueryResponse
	var status int
	if isWriteSQL(req.SQL) {
		resp, status = s.executeWrite(&req)
	} else {
		resp, status = s.execute(ctx, &req)
	}
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	s.met.latency.observe(time.Since(start))
	switch {
	case status == http.StatusOK:
		s.met.finished.Add(1)
		s.met.rows.Add(int64(resp.RowCount))
	case status == http.StatusGatewayTimeout || status == statusClientClosed:
		s.met.canceled.Add(1)
	default:
		s.met.failed.Add(1)
	}
	writeJSON(w, status, resp)
}

// isWriteSQL sniffs the leading keyword so cached SELECTs keep their
// parse-free hot path: only CREATE / INSERT / COPY take the write route.
func isWriteSQL(q string) bool {
	i := 0
	for i < len(q) && (q[i] == ' ' || q[i] == '\t' || q[i] == '\n' || q[i] == '\r') {
		i++
	}
	j := i
	for j < len(q) && (q[j] >= 'a' && q[j] <= 'z' || q[j] >= 'A' && q[j] <= 'Z') {
		j++
	}
	switch strings.ToUpper(q[i:j]) {
	case "CREATE", "INSERT", "COPY":
		return true
	}
	return false
}

// executeWrite runs one DDL/DML statement through the ingest engine.
// It returns only after the rows are committed to the WAL and published
// to the catalog, so a client that sees the response can immediately
// query its own write.
func (s *Server) executeWrite(req *QueryRequest) (QueryResponse, int) {
	if s.cfg.ReadOnly {
		return QueryResponse{Error: "server is a read replica: writes must go to the primary"},
			http.StatusForbidden
	}
	if s.ing == nil {
		return QueryResponse{Error: "server is read-only: no ingest engine attached (start with -data-dir)"},
			http.StatusForbidden
	}
	stmt, err := sql.ParseStatement(req.SQL)
	if err != nil {
		return QueryResponse{Error: err.Error()}, http.StatusBadRequest
	}
	n, err := s.ing.Apply(stmt)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ingest.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		return QueryResponse{Error: err.Error()}, status
	}
	s.met.writes.Add(1)
	return QueryResponse{RowsAffected: n}, http.StatusOK
}

// execute compiles (or reuses) and runs one statement. The planner layer
// signals some errors by panicking (unknown tables, schema conflicts);
// recover turns those into client errors instead of killing the server.
func (s *Server) execute(ctx context.Context, req *QueryRequest) (resp QueryResponse, status int) {
	defer func() {
		if p := recover(); p != nil {
			resp = QueryResponse{Error: fmt.Sprint(p)}
			status = http.StatusBadRequest
		}
	}()

	// Pin a copy-on-write snapshot for the whole query: planning and
	// execution see one consistent set of tables even while the ingest
	// engine publishes commits, and the snapshot version in the cache
	// key retires stale plans the moment the catalog changes.
	snap := s.cat.Snapshot()
	key := fmt.Sprintf("%d|%s", snap.Version(), normalizeSQL(req.SQL))
	entry, hit := s.cache.get(key)
	resp.PlanCache = "hit"
	if !hit {
		resp.PlanCache = "miss"
		stmt, err := sql.Parse(req.SQL)
		if err != nil {
			return QueryResponse{Error: err.Error(), PlanCache: "miss"}, http.StatusBadRequest
		}
		root, order, limit, err := sql.Plan(stmt, snap)
		if err != nil {
			return QueryResponse{Error: err.Error(), PlanCache: "miss"}, http.StatusBadRequest
		}
		entry = &planEntry{root: root, order: order, limit: limit}
		s.cache.put(key, entry)
	}

	// Per-query engine context: pooled USSR, private stats, the query's
	// own clone of the cached plan template.
	var u *ussr.USSR
	if s.cfg.Flags.UseUSSR {
		u = s.pool.acquire()
	}
	qc := exec.NewQCtxUSSR(s.cfg.Flags, u)
	qc.Workers = s.cfg.Workers
	if req.Workers > 0 {
		qc.Workers = req.Workers
	}
	defer func() {
		s.stats.Merge(qc.Stats)
		s.pool.release(u)
	}()

	res, err := exec.RunCtx(ctx, qc, exec.ClonePlan(entry.root))
	if err != nil {
		pc := resp.PlanCache
		resp = QueryResponse{Error: err.Error(), PlanCache: pc}
		if ctx.Err() == context.DeadlineExceeded {
			return resp, http.StatusGatewayTimeout
		}
		return resp, statusClientClosed
	}
	if len(entry.order) > 0 {
		res.OrderBy(entry.order...)
	}
	if entry.limit >= 0 {
		res.Limit(entry.limit)
	}

	resp.Columns = res.Names
	resp.RowCount = len(res.Rows)
	n := len(res.Rows)
	if n > s.cfg.MaxResultRows {
		n = s.cfg.MaxResultRows
		resp.Truncated = true
	}
	resp.Rows = make([][]any, n)
	for i := 0; i < n; i++ {
		row := make([]any, len(res.Rows[i]))
		for j, v := range res.Rows[i] {
			row[j] = cellJSON(v)
		}
		resp.Rows[i] = row
	}
	return resp, http.StatusOK
}

func cellJSON(v exec.Value) any {
	if v.Null {
		return nil
	}
	switch v.Typ {
	case vec.F64:
		return v.F
	case vec.Str:
		return v.S
	case vec.I128:
		return v.I128.String()
	default:
		return v.I
	}
}

// metricsView is the GET /metrics JSON document. Flat keys on purpose:
// scrapers (and the CI smoke job) match them with plain string tools.
type metricsView struct {
	QueriesStarted  int64 `json:"queries_started"`
	QueriesFinished int64 `json:"queries_finished"`
	QueriesRejected int64 `json:"queries_rejected"`
	QueriesCanceled int64 `json:"queries_canceled"`
	QueriesFailed   int64 `json:"queries_failed"`
	RowsReturned    int64 `json:"rows_returned"`
	WritesCommitted int64 `json:"writes_committed"`

	PlanCacheHits    int64 `json:"plan_cache_hits"`
	PlanCacheMisses  int64 `json:"plan_cache_misses"`
	PlanCacheEntries int   `json:"plan_cache_entries"`

	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`

	USSRPoolReused    int64 `json:"ussr_pool_reused"`
	USSRPoolAllocated int64 `json:"ussr_pool_allocated"`
	USSRPoolDirty     int64 `json:"ussr_pool_dirty"`

	Latency latencySummary `json:"latency"`

	// EngineStatsMs is the paper's per-primitive breakdown (Figure 6
	// buckets) summed over every query served, read race-free via
	// exec.Stats.Snapshot while queries may still be flushing.
	EngineStatsMs map[string]float64 `json:"engine_stats_ms"`

	CatalogVersion uint64  `json:"catalog_version"`
	Tables         int     `json:"tables"`
	Workers        int     `json:"workers"`
	UptimeSec      float64 `json:"uptime_sec"`

	// Storage is the resident-footprint accounting of optimistic seal
	// compression: per-table compressed (actually resident) bytes against
	// the would-be-plain size, plus the process-wide seal counters.
	Storage storageView `json:"storage"`

	// Ingest is present only when a write path is attached; its fields
	// stay nested so read-only deployments keep a stable flat document.
	Ingest *ingest.Stats `json:"ingest,omitempty"`
}

// storageView is the /metrics storage-footprint section.
type storageView struct {
	CompressMode      string                    `json:"compress_mode"`
	CompressedBlocks  int64                     `json:"compressed_blocks"`
	CompressFallbacks int64                     `json:"compress_fallbacks"`
	ResidentBytes     int64                     `json:"resident_bytes"`
	WouldBePlainBytes int64                     `json:"would_be_plain_bytes"`
	Tables            map[string]tableFootprint `json:"tables"`
}

// tableFootprint is one table's resident-vs-plain byte accounting.
type tableFootprint struct {
	ResidentBytes     int64 `json:"resident_bytes"`
	WouldBePlainBytes int64 `json:"would_be_plain_bytes"`
}

// storageMetrics walks the catalog snapshot and sums per-table footprints.
func (s *Server) storageMetrics() storageView {
	snap := s.cat.Snapshot()
	comp, fb := storage.CompressionStats()
	sv := storageView{
		CompressMode:      storage.SealCompression().String(),
		CompressedBlocks:  comp,
		CompressFallbacks: fb,
		Tables:            map[string]tableFootprint{},
	}
	for _, name := range snap.Names() {
		t, ok := snap.TableOK(name)
		if !ok {
			continue
		}
		c, p := t.Footprint()
		sv.Tables[name] = tableFootprint{ResidentBytes: c, WouldBePlainBytes: p}
		sv.ResidentBytes += c
		sv.WouldBePlainBytes += p
	}
	return sv
}

// Metrics assembles the current counter snapshot.
func (s *Server) Metrics() any {
	inFlight, queued := s.adm.depth()
	engine := map[string]float64{}
	for k, d := range s.stats.Snapshot() {
		engine[k] = float64(d.Microseconds()) / 1000
	}
	var ing *ingest.Stats
	if s.ing != nil {
		st := s.ing.Stats()
		ing = &st
	}
	return metricsView{
		QueriesStarted:  s.met.started.Load(),
		QueriesFinished: s.met.finished.Load(),
		QueriesRejected: s.met.rejected.Load(),
		QueriesCanceled: s.met.canceled.Load(),
		QueriesFailed:   s.met.failed.Load(),
		RowsReturned:    s.met.rows.Load(),
		WritesCommitted: s.met.writes.Load(),

		PlanCacheHits:    s.cache.hits.Load(),
		PlanCacheMisses:  s.cache.misses.Load(),
		PlanCacheEntries: s.cache.size(),

		InFlight:   inFlight,
		QueueDepth: queued,

		USSRPoolReused:    s.pool.reused.Load(),
		USSRPoolAllocated: s.pool.allocated.Load(),
		USSRPoolDirty:     s.pool.dirty.Load(),

		Latency:       s.met.latency.summary(),
		EngineStatsMs: engine,

		CatalogVersion: s.cat.Version(),
		Tables:         s.cat.Tables(),
		Workers:        s.cfg.Workers,
		UptimeSec:      time.Since(s.start).Seconds(),

		Storage: s.storageMetrics(),

		Ingest: ing,
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"tables":   s.cat.Tables(),
		"writable": s.ing != nil,
		"uptime":   time.Since(s.start).String(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
