package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ocht/internal/core"
	"ocht/internal/ingest"
	"ocht/internal/storage"
)

// writableServer stands up a server with an attached ingest engine over
// an empty catalog. The engine is closed (checkpointing its tables) when
// the test ends.
func writableServer(t *testing.T, cfg ingest.Config) (*Server, *httptest.Server, *ingest.Engine) {
	t.Helper()
	cat := storage.NewCatalog()
	eng, err := ingest.Open(t.TempDir(), cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := New(cat, Config{Flags: core.All(), Workers: 2, Ingest: eng})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, eng
}

// TestWriteEndpoint drives DDL and DML through POST /query: CREATE, a
// couple of INSERTs, then reads that must observe the committed rows.
func TestWriteEndpoint(t *testing.T) {
	srv, ts, _ := writableServer(t, ingest.Config{Fsync: ingest.FsyncNone})

	qr, status := postQuery(t, ts.URL, QueryRequest{
		SQL: "CREATE TABLE ev (id BIGINT NOT NULL, kind TEXT NOT NULL, n INT)"})
	if status != http.StatusOK {
		t.Fatalf("CREATE: status %d: %s", status, qr.Error)
	}
	if qr.RowsAffected != 0 {
		t.Errorf("CREATE rows_affected = %d, want 0", qr.RowsAffected)
	}

	// Cache a plan against the empty table first, so the version bump
	// from the INSERT below must retire it.
	count := "SELECT COUNT(*) FROM ev"
	if qr, _ := postQuery(t, ts.URL, QueryRequest{SQL: count}); len(qr.Rows) != 0 {
		// COUNT over an empty table yields zero groups in this engine.
		t.Fatalf("empty table count rows = %v", qr.Rows)
	}

	qr, status = postQuery(t, ts.URL, QueryRequest{
		SQL: "INSERT INTO ev VALUES (1, 'put', 10), (2, 'get', NULL), (3, 'put', 30)"})
	if status != http.StatusOK || qr.RowsAffected != 3 {
		t.Fatalf("INSERT: status %d rows_affected %d: %s", status, qr.RowsAffected, qr.Error)
	}
	qr, status = postQuery(t, ts.URL, QueryRequest{
		SQL: "INSERT INTO ev (kind, id) VALUES ('del', 4)"})
	if status != http.StatusOK || qr.RowsAffected != 1 {
		t.Fatalf("column-list INSERT: status %d rows_affected %d: %s", status, qr.RowsAffected, qr.Error)
	}

	qr, status = postQuery(t, ts.URL, QueryRequest{SQL: count})
	if status != http.StatusOK {
		t.Fatalf("SELECT after write: status %d: %s", status, qr.Error)
	}
	if qr.PlanCache != "miss" {
		t.Errorf("plan_cache = %q after version bump, want miss", qr.PlanCache)
	}
	if got := renderResp(qr); fmt.Sprint(got) != fmt.Sprint([]string{"4"}) {
		t.Errorf("count = %v, want [4]", got)
	}

	qr, _ = postQuery(t, ts.URL, QueryRequest{
		SQL: "SELECT kind, COUNT(*) FROM ev GROUP BY kind"})
	got := renderResp(qr)
	want := []string{"del|1", "get|1", "put|2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("group by = %v, want %v", got, want)
	}

	// Bad writes are client errors, not 500s.
	for _, bad := range []string{
		"INSERT INTO nope VALUES (1)",
		"INSERT INTO ev VALUES (NULL, 'x', 1)",
		"CREATE TABLE ev (id BIGINT)",
	} {
		if _, status := postQuery(t, ts.URL, QueryRequest{SQL: bad}); status != http.StatusBadRequest {
			t.Errorf("%q: status %d, want 400", bad, status)
		}
	}

	mv := srv.Metrics().(metricsView)
	if mv.WritesCommitted != 3 {
		t.Errorf("writes_committed = %d, want 3", mv.WritesCommitted)
	}
	if mv.Ingest == nil || mv.Ingest.RowsIngested != 4 {
		t.Errorf("ingest stats = %+v, want rows_ingested 4", mv.Ingest)
	}
}

// TestReadOnlyServerRejectsWrites pins the behaviour of a server with no
// ingest engine: writes get 403 and /metrics has no ingest section.
func TestReadOnlyServerRejectsWrites(t *testing.T) {
	cat := testCatalog(t)
	srv := New(cat, Config{Flags: core.All()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	qr, status := postQuery(t, ts.URL, QueryRequest{SQL: "INSERT INTO lineitem VALUES (1)"})
	if status != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", status)
	}
	if !strings.Contains(qr.Error, "read-only") {
		t.Errorf("error %q does not mention read-only", qr.Error)
	}
	if mv := srv.Metrics().(metricsView); mv.Ingest != nil {
		t.Errorf("read-only metrics carry ingest stats: %+v", mv.Ingest)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hv map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hv); err != nil {
		t.Fatal(err)
	}
	if hv["writable"] != false {
		t.Errorf("healthz writable = %v, want false", hv["writable"])
	}
}

// TestConcurrentIngestAndQuery is the snapshot-isolation oracle over
// HTTP: writers stream INSERT batches while readers run aggregates. A
// reader must only ever see whole committed batches — a count that is
// not a multiple of the batch size means a query observed a
// half-published table.
func TestConcurrentIngestAndQuery(t *testing.T) {
	_, ts, _ := writableServer(t, ingest.Config{Fsync: ingest.FsyncNone})

	if qr, status := postQuery(t, ts.URL, QueryRequest{
		SQL: "CREATE TABLE feed (w BIGINT NOT NULL, v BIGINT NOT NULL)"}); status != http.StatusOK {
		t.Fatalf("CREATE: %s", qr.Error)
	}

	const (
		writers   = 3
		batches   = 20
		batchSize = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				vals := make([]string, batchSize)
				for i := range vals {
					vals[i] = fmt.Sprintf("(%d, %d)", w, b*batchSize+i)
				}
				q := "INSERT INTO feed VALUES " + strings.Join(vals, ", ")
				qr, status, err := doQuery(ts.URL, QueryRequest{SQL: q})
				if err != nil {
					errs <- err
					return
				}
				if status != http.StatusOK || qr.RowsAffected != batchSize {
					errs <- fmt.Errorf("writer %d batch %d: status %d rows %d: %s",
						w, b, status, qr.RowsAffected, qr.Error)
					return
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				qr, status, err := doQuery(ts.URL, QueryRequest{SQL: "SELECT w, COUNT(*) FROM feed GROUP BY w"})
				if err != nil || status != http.StatusOK {
					errs <- fmt.Errorf("reader: status %d err %v: %s", status, err, qr.Error)
					return
				}
				for _, row := range qr.Rows {
					n := int64(row[1].(float64))
					if n%batchSize != 0 {
						errs <- fmt.Errorf("reader saw torn batch: writer %v has %d rows (batch size %d)",
							row[0], n, batchSize)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	qr, _ := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM feed"})
	if got := renderResp(qr); fmt.Sprint(got) != fmt.Sprint([]string{fmt.Sprint(writers * batches * batchSize)}) {
		t.Errorf("final count = %v, want %d", got, writers*batches*batchSize)
	}
}

// TestIsWriteSQL pins the statement router.
func TestIsWriteSQL(t *testing.T) {
	for q, want := range map[string]bool{
		"INSERT INTO t VALUES (1)":   true,
		"  \n\tinsert into t values": true,
		"create table t (a INT)":     true,
		"COPY t FROM 'x.csv'":        true,
		"SELECT * FROM insert_log":   false,
		"SELECT COUNT(*) FROM t":     false,
		"":                           false,
	} {
		if got := isWriteSQL(q); got != want {
			t.Errorf("isWriteSQL(%q) = %v, want %v", q, got, want)
		}
	}
}
