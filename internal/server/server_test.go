package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ocht/internal/bi"
	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/sql"
	"ocht/internal/storage"
	"ocht/internal/tpch"
)

// testCatalog builds a small mixed TPC-H + BI catalog shared by the
// serving tests. SF 0.005 keeps lineitem around 30k rows: big enough
// that parallel plans actually fan out, small enough for -race runs.
func testCatalog(tb testing.TB) *storage.Catalog {
	tb.Helper()
	cat := storage.NewCatalog()
	th := tpch.Gen(0.005, 7)
	for _, n := range []string{"region", "nation", "supplier", "customer",
		"part", "partsupp", "orders", "lineitem"} {
		cat.Add(th.Table(n))
	}
	b := bi.Gen(5_000, 7)
	cat.Add(b.Table("contracts"))
	cat.Add(b.Table("vendors"))
	return cat
}

// testQueries is the mixed workload: aggregations, joins and string
// predicates over both datasets.
var testQueries = []string{
	"SELECT COUNT(*) FROM lineitem",
	"SELECT l_returnflag, l_linestatus, COUNT(*), SUM(l_quantity) FROM lineitem GROUP BY l_returnflag, l_linestatus",
	"SELECT o_orderstatus, COUNT(*) FROM orders GROUP BY o_orderstatus",
	"SELECT n_name, COUNT(*) FROM nation JOIN region ON n_regionkey = r_regionkey GROUP BY n_name",
	"SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment",
	"SELECT vendor, COUNT(*) FROM contracts GROUP BY vendor LIMIT 10",
	"SELECT status, COUNT(*), SUM(amount) FROM contracts GROUP BY status",
}

// serialOracle runs a query through the plain serial path and renders
// rows into a canonical sorted text form for comparison.
func serialOracle(tb testing.TB, cat *storage.Catalog, query string) []string {
	tb.Helper()
	qc := exec.NewQCtx(core.All())
	res, err := sql.Run(query, cat, qc)
	if err != nil {
		tb.Fatalf("oracle %q: %v", query, err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = fmt.Sprint(cellJSON(v))
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return rows
}

// doQuery posts one statement; safe to call from client goroutines
// (it never touches testing.T).
func doQuery(url string, req QueryRequest) (QueryResponse, int, error) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return QueryResponse{}, 0, fmt.Errorf("POST /query: %w", err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return QueryResponse{}, resp.StatusCode, fmt.Errorf("decode response: %w", err)
	}
	return qr, resp.StatusCode, nil
}

func postQuery(tb testing.TB, url string, req QueryRequest) (QueryResponse, int) {
	tb.Helper()
	qr, status, err := doQuery(url, req)
	if err != nil {
		tb.Fatal(err)
	}
	return qr, status
}

// renderResp canonicalizes a response's rows the same way serialOracle
// does, so both sides compare as sorted pipe-joined strings.
func renderResp(qr QueryResponse) []string {
	rows := make([]string, len(qr.Rows))
	for i, r := range qr.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			// JSON round-trips int64 as float64; normalize both sides
			// through %v of the decoded value.
			if f, ok := v.(float64); ok && f == float64(int64(f)) {
				parts[j] = fmt.Sprint(int64(f))
			} else {
				parts[j] = fmt.Sprint(v)
			}
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return rows
}

// TestConcurrentServing is the satellite's concurrency oracle: N client
// goroutines hammer one server with the mixed workload; every response
// must match the serial engine, the plan cache must get hits, and the
// USSR pool must never hand a frozen or non-empty region to a query.
func TestConcurrentServing(t *testing.T) {
	cat := testCatalog(t)
	srv := New(cat, Config{
		Flags:       core.All(),
		Workers:     2,
		MaxInFlight: 4,
		MaxQueue:    64,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	want := make(map[string][]string, len(testQueries))
	for _, q := range testQueries {
		want[q] = serialOracle(t, cat, q)
	}

	const clients = 8
	const perClient = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := testQueries[(c+i)%len(testQueries)]
				qr, status, err := doQuery(ts.URL, QueryRequest{SQL: q, Workers: 1 + (c+i)%3})
				if err != nil {
					errs <- err
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("%q: status %d: %s", q, status, qr.Error)
					return
				}
				got := renderResp(qr)
				if fmt.Sprint(got) != fmt.Sprint(want[q]) {
					errs <- fmt.Errorf("%q: concurrent result diverged from serial\n got: %v\nwant: %v", q, got, want[q])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	mv := srv.Metrics().(metricsView)
	if mv.QueriesFinished != clients*perClient {
		t.Errorf("queries_finished = %d, want %d", mv.QueriesFinished, clients*perClient)
	}
	if mv.PlanCacheHits == 0 {
		t.Errorf("plan cache saw no hits across %d repeated statements", clients*perClient)
	}
	if mv.PlanCacheEntries != len(testQueries) {
		t.Errorf("plan_cache_entries = %d, want %d", mv.PlanCacheEntries, len(testQueries))
	}
	if mv.USSRPoolDirty != 0 {
		t.Errorf("USSR pool handed out %d dirty (frozen or non-empty) regions", mv.USSRPoolDirty)
	}
	if mv.USSRPoolReused == 0 {
		t.Errorf("USSR pool never reused a region across %d queries", clients*perClient)
	}
}

// TestQueryDeadline verifies the acceptance scenario end to end over
// HTTP: a query with a 50 ms deadline against a slow plan comes back as
// 504 well within ~100 ms of the deadline, rather than running for the
// full query duration.
func TestQueryDeadline(t *testing.T) {
	cat := testCatalog(t)
	srv := New(cat, Config{Flags: core.All(), Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The join on the 3-value status column produces tens of millions of
	// matches at this scale (~30k lineitem x ~7.5k orders / 3), far past
	// any 50 ms budget on any hardware this runs on, so the query cannot
	// finish before the deadline. Running it uncanceled to prove that
	// would itself take seconds (x10 under -race); the engine-level
	// cancellation test measures the uncanceled baseline instead.
	slow := "SELECT l_returnflag, COUNT(*) FROM lineitem JOIN orders ON l_linestatus = o_orderstatus GROUP BY l_returnflag"

	start := time.Now()
	qr, status := postQuery(t, ts.URL, QueryRequest{SQL: slow, TimeoutMs: 50})
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, qr.Error)
	}
	// The strict ~100ms acceptance bound is asserted by the engine-level
	// deadline test; over HTTP allow headroom for the race detector and
	// request plumbing.
	if elapsed > 300*time.Millisecond {
		t.Errorf("cancellation took %v, want well under 300ms for a 50ms deadline", elapsed)
	}
	if !strings.Contains(qr.Error, "canceled") {
		t.Errorf("error %q does not mention cancellation", qr.Error)
	}

	mv := srv.Metrics().(metricsView)
	if mv.QueriesCanceled == 0 {
		t.Error("queries_canceled counter not incremented")
	}
}

// TestAdmissionSaturation floods a 1-slot server with a slow statement
// and checks that overflow beyond the queue is rejected with 429.
func TestAdmissionSaturation(t *testing.T) {
	cat := testCatalog(t)
	srv := New(cat, Config{
		Flags:        core.All(),
		Workers:      1,
		MaxInFlight:  1,
		MaxQueue:     1,
		QueueTimeout: 100 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	slow := "SELECT l_returnflag, COUNT(*) FROM lineitem JOIN orders ON l_linestatus = o_orderstatus GROUP BY l_returnflag"
	const n = 6
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, statuses[i], _ = doQuery(ts.URL, QueryRequest{SQL: slow, TimeoutMs: 2000})
		}(i)
	}
	wg.Wait()

	var rejected int
	for _, st := range statuses {
		switch st {
		case http.StatusOK, http.StatusGatewayTimeout:
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("unexpected status %d", st)
		}
	}
	if rejected == 0 {
		t.Errorf("no request was rejected: statuses %v (in-flight 1, queue 1, clients %d)", statuses, n)
	}
	if mv := srv.Metrics().(metricsView); mv.QueriesRejected == 0 {
		t.Error("queries_rejected counter not incremented")
	}
}

// TestBadRequests exercises the client-error paths.
func TestBadRequests(t *testing.T) {
	cat := testCatalog(t)
	srv := New(cat, Config{Flags: core.All()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		sql  string
	}{
		{"parse error", "SELEC COUNT(*) FROM lineitem"},
		{"unknown table", "SELECT COUNT(*) FROM nope"},
		{"unknown column", "SELECT wat FROM lineitem"},
		{"empty", ""},
	}
	for _, tc := range cases {
		qr, status := postQuery(t, ts.URL, QueryRequest{SQL: tc.sql})
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, status)
		}
		if qr.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}

	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status = %d, want 405", resp.StatusCode)
	}
}

// TestResultTruncation checks MaxResultRows caps the payload and sets
// the truncated flag while reporting the true row count.
func TestResultTruncation(t *testing.T) {
	cat := testCatalog(t)
	srv := New(cat, Config{Flags: core.All(), MaxResultRows: 3})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	qr, status := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT vendor, COUNT(*) FROM contracts GROUP BY vendor"})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, qr.Error)
	}
	if !qr.Truncated {
		t.Fatal("expected truncated response")
	}
	if len(qr.Rows) != 3 {
		t.Errorf("len(rows) = %d, want 3", len(qr.Rows))
	}
	if qr.RowCount <= 3 {
		t.Errorf("row_count = %d, want the pre-truncation count", qr.RowCount)
	}
}

// TestHealthAndMetricsEndpoints smoke-tests the observability routes.
func TestHealthAndMetricsEndpoints(t *testing.T) {
	cat := testCatalog(t)
	srv := New(cat, Config{Flags: core.All()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM lineitem"})

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mv metricsView
	if err := json.NewDecoder(mresp.Body).Decode(&mv); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if mv.QueriesFinished != 1 {
		t.Errorf("queries_finished = %d, want 1", mv.QueriesFinished)
	}
	if mv.Tables != 10 {
		t.Errorf("tables = %d, want 10", mv.Tables)
	}
	if len(mv.EngineStatsMs) == 0 {
		t.Error("engine_stats_ms is empty after a served query")
	}
	if mv.Latency.Count != mv.QueriesFinished+mv.QueriesCanceled+mv.QueriesFailed {
		t.Errorf("latency count %d does not cover all executed queries", mv.Latency.Count)
	}
}

// TestPlanCacheCatalogVersion ensures a catalog mutation changes cache
// keys so stale plans are never reused.
func TestPlanCacheCatalogVersion(t *testing.T) {
	cat := testCatalog(t)
	srv := New(cat, Config{Flags: core.All()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := "SELECT COUNT(*) FROM lineitem"
	if qr, _ := postQuery(t, ts.URL, QueryRequest{SQL: q}); qr.PlanCache != "miss" {
		t.Fatalf("first run: plan_cache = %q, want miss", qr.PlanCache)
	}
	if qr, _ := postQuery(t, ts.URL, QueryRequest{SQL: q}); qr.PlanCache != "hit" {
		t.Fatalf("second run: plan_cache = %q, want hit", qr.PlanCache)
	}

	// Re-adding a table bumps the version; same SQL must recompile.
	cat.Add(cat.Table("nation"))
	if qr, _ := postQuery(t, ts.URL, QueryRequest{SQL: q}); qr.PlanCache != "miss" {
		t.Fatalf("after catalog change: plan_cache = %q, want miss", qr.PlanCache)
	}
}
