package sql

import (
	"ocht/internal/exec"
)

// compile lowers an AST expression to an engine expression bound to the
// given schema.
func compile(n Node, meta []exec.Meta) (*exec.Expr, error) {
	switch x := n.(type) {
	case *ColRef:
		if !hasCol(meta, x.Name) {
			return nil, errf(x.nodePos(), "unknown column %q", x.Name)
		}
		return exec.Col(meta, x.Name), nil
	case *IntLit:
		return exec.Int(x.V), nil
	case *FloatLit:
		return exec.F64Const(x.V), nil
	case *StrLit:
		return exec.Str(x.V), nil
	case *NullLit:
		return nil, errf(x.nodePos(), "bare NULL literals are only supported in IS [NOT] NULL")
	case *BinOp:
		l, err := compile(x.L, meta)
		if err != nil {
			return nil, err
		}
		r, err := compile(x.R, meta)
		if err != nil {
			return nil, err
		}
		return binOp(x, l, r)
	case *NotOp:
		l, err := compile(x.L, meta)
		if err != nil {
			return nil, err
		}
		return exec.Not(l), nil
	case *NegOp:
		l, err := compile(x.L, meta)
		if err != nil {
			return nil, err
		}
		return exec.Sub(exec.Int(0), l), nil
	case *LikeOp:
		l, err := compile(x.L, meta)
		if err != nil {
			return nil, err
		}
		if x.Not {
			return exec.NotLike(l, x.Pattern), nil
		}
		return exec.Like(l, x.Pattern), nil
	case *InOp:
		l, err := compile(x.L, meta)
		if err != nil {
			return nil, err
		}
		var vals []*exec.Expr
		for _, e := range x.List {
			v, err := compile(e, meta)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		in := exec.In(l, vals...)
		if x.Not {
			return exec.Not(in), nil
		}
		return in, nil
	case *BetweenOp:
		l, err := compile(x.L, meta)
		if err != nil {
			return nil, err
		}
		lo, err := compile(x.Lo, meta)
		if err != nil {
			return nil, err
		}
		hi, err := compile(x.Hi, meta)
		if err != nil {
			return nil, err
		}
		return exec.Between(l, lo, hi), nil
	case *IsNullOp:
		l, err := compile(x.L, meta)
		if err != nil {
			return nil, err
		}
		if x.Not {
			return exec.IsNotNull(l), nil
		}
		return exec.IsNull(l), nil
	case *CaseOp:
		// Lower multi-WHEN to nested two-way cases, right to left.
		els := exec.Int(0)
		if x.Else != nil {
			e, err := compile(x.Else, meta)
			if err != nil {
				return nil, err
			}
			els = e
		}
		out := els
		for i := len(x.Whens) - 1; i >= 0; i-- {
			cond, err := compile(x.Whens[i].Cond, meta)
			if err != nil {
				return nil, err
			}
			then, err := compile(x.Whens[i].Then, meta)
			if err != nil {
				return nil, err
			}
			out = exec.Case(cond, then, out)
		}
		return out, nil
	case *FuncCall:
		switch x.Name {
		case "SUBSTRING":
			l, err := compile(x.Args[0], meta)
			if err != nil {
				return nil, err
			}
			start, sok := x.Args[1].(*IntLit)
			length, lok := x.Args[2].(*IntLit)
			if !sok || !lok || start.V != 1 {
				return nil, errf(x.nodePos(), "SUBSTRING supports (expr, 1, constant) only")
			}
			return exec.Substr(l, int(length.V)), nil
		case "CAST":
			l, err := compile(x.Args[0], meta)
			if err != nil {
				return nil, err
			}
			return exec.ToF64(l), nil
		default:
			return nil, errf(x.nodePos(), "aggregate %s is only allowed in SELECT/HAVING of a grouped query", x.Name)
		}
	}
	return nil, errf(n.nodePos(), "unsupported expression")
}

func binOp(x *BinOp, l, r *exec.Expr) (*exec.Expr, error) {
	switch x.Op {
	case "+":
		return exec.Add(l, r), nil
	case "-":
		return exec.Sub(l, r), nil
	case "*":
		return exec.Mul(l, r), nil
	case "/":
		return exec.Div(l, r), nil
	case "%":
		return exec.Mod(l, r), nil
	case "=":
		return exec.Eq(l, r), nil
	case "<>":
		return exec.Ne(l, r), nil
	case "<":
		return exec.Lt(l, r), nil
	case "<=":
		return exec.Le(l, r), nil
	case ">":
		return exec.Gt(l, r), nil
	case ">=":
		return exec.Ge(l, r), nil
	case "AND":
		return exec.And(l, r), nil
	case "OR":
		return exec.Or(l, r), nil
	}
	return nil, errf(x.nodePos(), "unknown operator %q", x.Op)
}

// compileRewritten compiles an expression against the aggregation output:
// group-key subexpressions become references to the key columns and
// aggregate calls become references to the agg columns.
func compileRewritten(n Node, aggMeta []exec.Meta, keyRender map[string]int, aggRender map[string]int, keyNames []string) (*exec.Expr, error) {
	if ki, ok := keyRender[render(n)]; ok {
		return exec.Col(aggMeta, keyNames[ki]), nil
	}
	if f, ok := n.(*FuncCall); ok && aggNames[f.Name] {
		ai, ok := aggRender[render(f)]
		if !ok {
			return nil, errf(f.nodePos(), "internal: aggregate not collected")
		}
		return exec.ColIdx(aggMeta, len(keyNames)+ai), nil
	}
	switch x := n.(type) {
	case *IntLit:
		return exec.Int(x.V), nil
	case *FloatLit:
		return exec.F64Const(x.V), nil
	case *StrLit:
		return exec.Str(x.V), nil
	case *ColRef:
		return nil, errf(x.nodePos(),
			"column %q must appear in GROUP BY or inside an aggregate", x.Name)
	case *BinOp:
		l, err := compileRewritten(x.L, aggMeta, keyRender, aggRender, keyNames)
		if err != nil {
			return nil, err
		}
		r, err := compileRewritten(x.R, aggMeta, keyRender, aggRender, keyNames)
		if err != nil {
			return nil, err
		}
		return binOp(x, l, r)
	case *NotOp:
		l, err := compileRewritten(x.L, aggMeta, keyRender, aggRender, keyNames)
		if err != nil {
			return nil, err
		}
		return exec.Not(l), nil
	case *NegOp:
		l, err := compileRewritten(x.L, aggMeta, keyRender, aggRender, keyNames)
		if err != nil {
			return nil, err
		}
		return exec.Sub(exec.Int(0), l), nil
	case *FuncCall:
		if x.Name == "CAST" {
			l, err := compileRewritten(x.Args[0], aggMeta, keyRender, aggRender, keyNames)
			if err != nil {
				return nil, err
			}
			return exec.ToF64(l), nil
		}
	}
	return nil, errf(n.nodePos(), "expression not supported above aggregation")
}
