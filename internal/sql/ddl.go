package sql

import (
	"ocht/internal/vec"
)

// This file parses the write-path statements the ingest subsystem
// executes: CREATE TABLE, INSERT INTO ... VALUES, and COPY ... FROM.
// SELECTs compile to operator trees; these compile to ingest ops.

// Statement is any parsed SQL statement. Use ParseStatement to get one;
// dispatch on the concrete type (*SelectStmt, *CreateTableStmt,
// *InsertStmt, *CopyStmt) to route reads to the executor and writes to
// the ingest engine.
type Statement interface{ stmt() }

func (*SelectStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*InsertStmt) stmt()      {}
func (*CopyStmt) stmt()        {}

// ColDef is one column of a CREATE TABLE.
type ColDef struct {
	Name     string
	Type     vec.Type
	Nullable bool
}

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (col type, ...).
type CreateTableStmt struct {
	Name        string
	Cols        []ColDef
	IfNotExists bool
}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...), (...). Values are
// literal expressions (literals, NULL, and negated numeric literals).
type InsertStmt struct {
	Table   string
	Columns []string // nil = positional, all columns
	Rows    [][]Node
}

// CopyStmt is COPY name FROM 'path' [WITH] [HEADER] [DELIMITER 'c']: bulk
// CSV load from a server-local file through the same ingest write path as
// INSERT.
type CopyStmt struct {
	Table     string
	Path      string
	Header    bool
	Delimiter rune // 0 = ','
}

// ParseStatement parses one statement of any kind.
func ParseStatement(query string) (Statement, error) {
	toks, err := lexAll(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Statement
	switch {
	case p.at(tKeyword, "SELECT"):
		stmt, err = p.selectStmt()
	case p.at(tKeyword, "CREATE"):
		stmt, err = p.createTableStmt()
	case p.at(tKeyword, "INSERT"):
		stmt, err = p.insertStmt()
	case p.at(tKeyword, "COPY"):
		stmt, err = p.copyStmt()
	default:
		return nil, errf(p.cur().pos, "expected SELECT, CREATE, INSERT or COPY, found %q", p.cur().text)
	}
	if err != nil {
		return nil, err
	}
	if !p.at(tEOF, "") {
		return nil, errf(p.cur().pos, "unexpected %q after statement", p.cur().text)
	}
	return stmt, nil
}

// typeKeywords maps SQL type names to engine column types.
var typeKeywords = map[string]vec.Type{
	"TINYINT":  vec.I8,
	"SMALLINT": vec.I16,
	"INT":      vec.I32,
	"INTEGER":  vec.I32,
	"BIGINT":   vec.I64,
	"DOUBLE":   vec.F64,
	"FLOAT":    vec.F64,
	"TEXT":     vec.Str,
	"STRING":   vec.Str,
	"VARCHAR":  vec.Str,
}

func (p *parser) createTableStmt() (*CreateTableStmt, error) {
	p.i++ // CREATE
	if _, err := p.expect(tKeyword, "TABLE"); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{}
	if p.at(tKeyword, "IF") {
		p.i++
		if _, err := p.expect(tKeyword, "NOT"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	t, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	stmt.Name = t.text
	if _, err := p.expect(tSymbol, "("); err != nil {
		return nil, err
	}
	for {
		ct, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		typTok := p.cur()
		typ, ok := typeKeywords[typTok.text]
		if typTok.kind != tKeyword || !ok {
			return nil, errf(typTok.pos, "expected a column type, found %q", typTok.text)
		}
		p.i++
		// VARCHAR(30)-style length parameters are accepted and ignored:
		// the engine stores all strings dictionary-compressed.
		if p.eat(tSymbol, "(") {
			if _, err := p.expect(tNumber, ""); err != nil {
				return nil, err
			}
			if _, err := p.expect(tSymbol, ")"); err != nil {
				return nil, err
			}
		}
		col := ColDef{Name: ct.text, Type: typ, Nullable: true}
		switch {
		case p.at(tKeyword, "NOT") && p.peek().text == "NULL":
			p.i += 2
			col.Nullable = false
		case p.at(tKeyword, "NULL"):
			p.i++
		}
		stmt.Cols = append(stmt.Cols, col)
		if !p.eat(tSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tSymbol, ")"); err != nil {
		return nil, err
	}
	if len(stmt.Cols) == 0 {
		return nil, errf(t.pos, "CREATE TABLE needs at least one column")
	}
	return stmt, nil
}

func (p *parser) insertStmt() (*InsertStmt, error) {
	p.i++ // INSERT
	if _, err := p.expect(tKeyword, "INTO"); err != nil {
		return nil, err
	}
	t, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: t.text}
	if p.eat(tSymbol, "(") {
		for {
			ct, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, ct.text)
			if !p.eat(tSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tSymbol, "("); err != nil {
			return nil, err
		}
		var row []Node
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.eat(tSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tSymbol, ")"); err != nil {
			return nil, err
		}
		if len(stmt.Columns) > 0 && len(row) != len(stmt.Columns) {
			return nil, errf(t.pos, "INSERT row has %d values, want %d", len(row), len(stmt.Columns))
		}
		if len(stmt.Rows) > 0 && len(row) != len(stmt.Rows[0]) {
			return nil, errf(t.pos, "INSERT rows have inconsistent arity")
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.eat(tSymbol, ",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) copyStmt() (*CopyStmt, error) {
	p.i++ // COPY
	t, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &CopyStmt{Table: t.text}
	if _, err := p.expect(tKeyword, "FROM"); err != nil {
		return nil, err
	}
	pt, err := p.expect(tString, "")
	if err != nil {
		return nil, err
	}
	stmt.Path = pt.text
	p.eat(tKeyword, "WITH")
	for {
		switch {
		case p.eat(tKeyword, "HEADER"):
			stmt.Header = true
		case p.at(tKeyword, "DELIMITER"):
			p.i++
			dt, err := p.expect(tString, "")
			if err != nil {
				return nil, err
			}
			r := []rune(dt.text)
			if len(r) != 1 {
				return nil, errf(dt.pos, "DELIMITER must be a single character, got %q", dt.text)
			}
			stmt.Delimiter = r[0]
		default:
			return stmt, nil
		}
	}
}
